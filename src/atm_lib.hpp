// Umbrella header: the public API of the ATM library.
//
// Quickstart:
//   atm::rt::Runtime runtime({.num_threads = 4});
//   atm::AtmEngine engine({.mode = atm::AtmMode::Static});
//   runtime.attach_memoizer(&engine);
//   const auto* type = runtime.register_type({.name = "price", .memoizable = true});
//   runtime.submit(type, [=] { price(block); },
//                  {atm::rt::in(block, n), atm::rt::out(prices, n)});
//   runtime.taskwait();
#pragma once

#include "atm/atm_stats.hpp"    // IWYU pragma: export
#include "atm/config.hpp"       // IWYU pragma: export
#include "atm/engine.hpp"       // IWYU pragma: export
#include "atm/error_metric.hpp" // IWYU pragma: export
#include "atm/hash_key.hpp"     // IWYU pragma: export
#include "atm/ikt.hpp"          // IWYU pragma: export
#include "atm/input_sampler.hpp"// IWYU pragma: export
#include "atm/tht.hpp"          // IWYU pragma: export
#include "atm/training.hpp"     // IWYU pragma: export
#include "runtime/runtime.hpp"  // IWYU pragma: export
#include "store/l2_store.hpp"   // IWYU pragma: export
#include "store/memo_store.hpp" // IWYU pragma: export
#include "store/snapshot_io.hpp"// IWYU pragma: export

#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"

namespace atm::obs {

namespace {

std::uint64_t earliest_ts(const std::vector<std::vector<rt::TraceEvent>>& lanes,
                          const std::vector<rt::DepthSample>& depth,
                          const std::vector<CounterTrack>& tracks) {
  std::uint64_t t0 = UINT64_MAX;
  for (const auto& lane : lanes) {
    if (!lane.empty()) t0 = std::min(t0, lane.front().t0);
  }
  for (const auto& d : depth) t0 = std::min(t0, d.t);
  for (const auto& tr : tracks) {
    if (!tr.points.empty()) t0 = std::min(t0, tr.points.front().first);
  }
  return t0 == UINT64_MAX ? 0 : t0;
}

void append_us(std::string& out, std::uint64_t ns_since_t0) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f",
                static_cast<double>(ns_since_t0) / 1000.0);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

std::string chrome_trace_json(
    const std::vector<std::vector<rt::TraceEvent>>& lanes,
    std::size_t master_lane, const std::vector<rt::DepthSample>& depth,
    const std::vector<CounterTrack>& counter_tracks) {
  const std::uint64_t t0 = earliest_ts(lanes, depth, counter_tracks);

  std::string out;
  std::size_t events = depth.size();
  for (const auto& lane : lanes) events += lane.size();
  out.reserve(512 + events * 96);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Thread-name metadata: chrome://tracing shows these as row labels.
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    sep();
    const std::string name = lane == master_lane
                                 ? "master"
                                 : "worker " + std::to_string(lane);
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":";
    out += std::to_string(lane);
    out += ",\"args\":{\"name\":";
    json_append_string(out, name);
    out += "}}";
  }

  // Complete ("X") events: one per recorded span, ts/dur in microseconds.
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    for (const rt::TraceEvent& e : lanes[lane]) {
      sep();
      out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
      out += std::to_string(lane);
      out += ",\"name\":";
      json_append_string(out, rt::trace_state_name(e.state));
      out += ",\"cat\":\"runtime\",\"ts\":";
      append_us(out, e.t0 - t0);
      out += ",\"dur\":";
      append_us(out, e.t1 >= e.t0 ? e.t1 - e.t0 : 0);
      out += '}';
    }
  }

  // Counter ("C") events: the ready-queue depth track plus caller tracks.
  for (const rt::DepthSample& d : depth) {
    sep();
    out += "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\"ready_tasks\",\"ts\":";
    append_us(out, d.t - t0);
    out += ",\"args\":{\"value\":";
    out += std::to_string(d.depth);
    out += "}}";
  }
  for (const CounterTrack& tr : counter_tracks) {
    for (const auto& [t, v] : tr.points) {
      sep();
      out += "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":";
      json_append_string(out, tr.name);
      out += ",\"ts\":";
      append_us(out, t >= t0 ? t - t0 : 0);
      out += ",\"args\":{\"value\":";
      append_double(out, v);
      out += "}}";
    }
  }

  out += "]}";
  return out;
}

std::size_t ParsedChromeTrace::count(const std::string& ph) const noexcept {
  std::size_t n = 0;
  for (const Event& e : events) {
    if (e.ph == ph) ++n;
  }
  return n;
}

namespace {

/// Extract `"key":<value>` where value is a bare token or quoted string,
/// searching only inside [begin, end). Returns empty string if absent.
std::string field(const std::string& s, std::size_t begin, std::size_t end,
                  const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = s.find(needle, begin);
  if (at == std::string::npos || at >= end) return {};
  std::size_t v = at + needle.size();
  if (v >= end) return {};
  if (s[v] == '"') {
    const std::size_t close = s.find('"', v + 1);
    if (close == std::string::npos || close > end) return {};
    return s.substr(v + 1, close - v - 1);
  }
  std::size_t stop = v;
  while (stop < end && s[stop] != ',' && s[stop] != '}' && s[stop] != ']') {
    ++stop;
  }
  return s.substr(v, stop - v);
}

}  // namespace

bool parse_chrome_trace(const std::string& json, ParsedChromeTrace& out) {
  const std::size_t arr = json.find("\"traceEvents\":[");
  if (arr == std::string::npos) return false;
  std::size_t pos = arr;
  while (true) {
    const std::size_t open = json.find("{\"ph\":", pos);
    if (open == std::string::npos) break;
    // Events are flat except for the one-level "args" object; find the
    // closing brace by depth counting (strings in our output never contain
    // braces worth worrying about beyond json escaping, which field() skips).
    std::size_t depth = 0;
    std::size_t close = open;
    for (; close < json.size(); ++close) {
      if (json[close] == '{') ++depth;
      if (json[close] == '}' && --depth == 0) break;
    }
    if (close >= json.size()) return false;

    ParsedChromeTrace::Event e;
    e.ph = field(json, open, close + 1, "ph");
    if (e.ph.empty()) return false;
    e.name = field(json, open, close + 1, "name");
    const std::string tid = field(json, open, close + 1, "tid");
    if (!tid.empty()) e.tid = static_cast<std::uint32_t>(std::stoul(tid));
    const std::string ts = field(json, open, close + 1, "ts");
    if (!ts.empty()) e.ts = std::stod(ts);
    const std::string dur = field(json, open, close + 1, "dur");
    if (!dur.empty()) e.dur = std::stod(dur);
    const std::string value = field(json, open, close + 1, "value");
    if (!value.empty()) e.value = std::stod(value);
    // "M" metadata carries the display name inside args.
    if (e.ph == "M") {
      const std::size_t args = json.find("\"args\":", open);
      if (args != std::string::npos && args < close) {
        const std::string display = field(json, args, close + 1, "name");
        if (!display.empty()) e.name = display;
      }
    }
    out.events.push_back(std::move(e));
    pos = close + 1;
  }
  return !out.events.empty();
}

}  // namespace atm::obs

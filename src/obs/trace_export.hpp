// Chrome trace-event JSON export: serializes TraceRecorder lanes, ready-depth
// samples and MetricsSampler counter tracks into the format chrome://tracing
// and Perfetto load directly ({"traceEvents":[...]} with "X" complete events,
// "C" counter events and "M" thread-name metadata).
//
// Operates on the plain TraceEvent/DepthSample structs from runtime/trace.hpp
// (header-only types), so atm_obs depends only on atm_common.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/trace.hpp"

namespace atm::obs {

/// One extra counter track to emit alongside the lanes (e.g. a sampled gauge
/// series from the MetricsSampler).
struct CounterTrack {
  std::string name;
  std::vector<std::pair<std::uint64_t, double>> points;  ///< (t ns, value)
};

/// Build the Chrome trace JSON document. `lanes` is one event vector per
/// thread (TraceRecorder layout: worker lanes first, master lane at
/// `master_lane`); `depth` becomes a "ready_tasks" counter track. Timestamps
/// are normalized so the earliest event lands at ts=0 (Perfetto dislikes
/// epoch-scale offsets) and converted to microseconds, the format's unit.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<std::vector<rt::TraceEvent>>& lanes,
    std::size_t master_lane, const std::vector<rt::DepthSample>& depth,
    const std::vector<CounterTrack>& counter_tracks = {});

/// Minimal parsed view of a Chrome trace produced by chrome_trace_json —
/// just enough structure for round-trip tests and CI validation. NOT a
/// general JSON parser: it understands only this writer's output shape.
struct ParsedChromeTrace {
  struct Event {
    std::string ph;      ///< "X", "C" or "M"
    std::string name;
    std::uint32_t tid = 0;
    double ts = 0.0;     ///< µs
    double dur = 0.0;    ///< µs ("X" only)
    double value = 0.0;  ///< "C" only
  };
  std::vector<Event> events;

  [[nodiscard]] std::size_t count(const std::string& ph) const noexcept;
};

/// Parse a document written by chrome_trace_json. Returns false (and leaves
/// `out` partially filled) on structural mismatch.
bool parse_chrome_trace(const std::string& json, ParsedChromeTrace& out);

}  // namespace atm::obs

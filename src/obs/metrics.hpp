// Unified observability: one MetricsRegistry behind which every runtime/
// engine telemetry surface registers typed instruments by name.
//
// Design goals (the paper's whole evaluation is an observability exercise —
// Figs. 7/8 are state timelines, Fig. 9 a reuse curve, §IV-C a hit-rate/
// overhead budget — and the adaptive-epsilon/`atm_serve` directions consume
// these numbers at runtime):
//
//  * Hot-path cost is one relaxed increment on a cache-line-isolated
//    per-worker slot. Counters and histograms shard their cells kShards
//    ways; a thread picks its slot once (thread_local) and never contends
//    with another worker on steady state. Aggregation happens only at
//    snapshot time.
//  * Compiles to nothing when disabled: -DATM_OBS_DISABLED (CMake
//    -DATM_OBS=OFF) turns inc()/record() into empty inline functions.
//  * Existing snapshot structs (AtmStatsSnapshot, SchedulerStats,
//    DepIndexStats, TaskArenaStats) stay as views: their owners export
//    through collector callbacks, so no call site or test churns.
//
// Instruments:
//  * Counter   — monotonic, sharded, relaxed inc.
//  * Gauge     — point-in-time signed value, single atomic (set/add are off
//                the hot path: queue depths, resident bytes, slot counts).
//  * LatencyHistogram — log2-bucketed (1ns..2^63ns), sharded; snapshot
//                derives count/sum/mean/max and p50/p95/p99 from the CDF.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"

namespace atm::obs {

#if defined(ATM_OBS_DISABLED)
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

/// Shard slots per instrument (power of two). 16 covers the container-sized
/// worker pools this repo targets; larger pools alias shards, which only
/// costs occasional cache-line sharing, never correctness.
inline constexpr std::size_t kObsShards = 16;

/// The calling thread's shard slot: assigned once per thread, round-robin.
[[nodiscard]] inline std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  // mo: relaxed — round-robin ticket; only uniqueness-ish matters, and even
  // duplicate slots merely share a cache line.
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kObsShards - 1);
  return shard;
}

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

[[nodiscard]] constexpr const char* metric_kind_name(MetricKind k) noexcept {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

/// Monotonic counter, sharded per worker. inc() is one relaxed fetch_add on
/// a cache line the calling thread effectively owns.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if constexpr (!kObsEnabled) {
      (void)n;
      return;
    }
    // mo: relaxed — monotonic statistic; value() is racy by contract.
    cells_[this_thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum across shards (racy; monitoring only).
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    // mo: relaxed — racy monitoring sum by contract.
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kObsShards];
};

/// Point-in-time signed value. set/add sit off the hot path (sampled queue
/// depths, resident bytes), so a single atomic cell suffices.
class Gauge {
 public:
  // mo: relaxed throughout — a gauge is a standalone sampled value; readers
  // never infer other memory state from it.
  void set(std::int64_t v) noexcept {
    if constexpr (kObsEnabled) v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    // mo: relaxed — standalone sampled value (see class comment).
    if constexpr (kObsEnabled) v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    // mo: relaxed — racy monitoring read by contract.
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram for latencies/sizes: bucket i holds samples in
/// [2^(i-1), 2^i) (bucket 0 holds 0). record() is one relaxed increment on
/// the calling thread's shard; quantiles are estimated from the bucket CDF
/// at snapshot time (geometric bucket midpoint, exact max tracked aside).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t x) noexcept {
    if constexpr (!kObsEnabled) {
      (void)x;
      return;
    }
    Shard& s = shards_[this_thread_shard()];
    // mo: relaxed — sharded statistics; snapshot() sums racily by contract.
    s.count[bucket_of(x)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(x, std::memory_order_relaxed);
    std::uint64_t cur = s.max.load(std::memory_order_relaxed);
    // mo: relaxed — max is a monotonic watermark; no payload published.
    while (x > cur &&
           !s.max.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t x) noexcept {
    const unsigned w = static_cast<unsigned>(std::bit_width(x));
    return w < kBuckets ? w : kBuckets - 1;
  }
  /// Lower bound of bucket i (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static constexpr std::uint64_t bucket_lo(std::size_t i) noexcept {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /// Raw per-bucket counts (shards summed), so exporters can emit the
    /// full distribution instead of point quantiles (PR 10: the sampler
    /// series carries these as a CDF; empty tail buckets compress to
    /// nothing in the JSON since only occupied buckets are written).
    std::uint64_t buckets[kBuckets] = {};
  };

  [[nodiscard]] Snapshot snapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count[kBuckets]{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  Shard shards_[kObsShards];
};

/// One metric's value at snapshot time.
struct MetricSample {
  std::string name;
  std::string unit;
  std::string owner;
  MetricKind kind = MetricKind::Counter;
  double value = 0.0;                   ///< counter/gauge value
  LatencyHistogram::Snapshot hist{};    ///< histogram payload (kind == Histogram)
};

/// Point-in-time copy of the whole registry.
struct RegistrySnapshot {
  std::uint64_t t_ns = 0;  ///< steady clock at snapshot time
  std::vector<MetricSample> metrics;

  [[nodiscard]] const MetricSample* find(std::string_view name) const noexcept;
  /// Full machine-readable dump: {"t_ns":..,"metrics":[{...},...]}.
  [[nodiscard]] std::string to_json() const;
};

/// Collector sink: owners of existing snapshot structs export their fields
/// through this at snapshot time (the "views, no churn" port path).
class SampleSink {
 public:
  void counter(std::string name, std::uint64_t v, std::string unit = "events",
               std::string owner = "");
  void gauge(std::string name, std::int64_t v, std::string unit = "",
             std::string owner = "");

 private:
  friend class MetricsRegistry;
  explicit SampleSink(std::vector<MetricSample>* out) : out_(out) {}
  std::vector<MetricSample>* out_;
};

/// The unified registry: typed instruments registered by name (get-or-create,
/// pointer-stable for the registry's lifetime) plus removable collector
/// callbacks for externally-owned counters.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. Kind mismatches on an existing name return
  /// nullptr (a registration bug worth surfacing, not crashing on).
  Counter* counter(std::string name, std::string unit = "events",
                   std::string owner = "");
  Gauge* gauge(std::string name, std::string unit = "", std::string owner = "");
  LatencyHistogram* histogram(std::string name, std::string unit = "ns",
                              std::string owner = "");

  /// Register a snapshot-time callback; returns an id for remove_collector.
  /// Collectors run OUTSIDE the registry mutex, so a collector may create
  /// or bump instruments on this registry; it must not call snapshot() or
  /// remove_collector() (those wait on the collector pass itself).
  std::size_t add_collector(std::function<void(SampleSink&)> fn);
  /// Detach a collector (an engine outliving or predeceasing the runtime
  /// must unhook before its captured state dies). Blocks until any
  /// in-flight snapshot's collector pass has drained, so the captured
  /// state is safe to destroy on return.
  void remove_collector(std::size_t id);

  [[nodiscard]] RegistrySnapshot snapshot() const;
  [[nodiscard]] std::size_t metric_count() const;

 private:
  struct Entry {
    std::string name;
    std::string unit;
    std::string owner;
    MetricKind kind = MetricKind::Counter;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<LatencyHistogram> h;
  };

  Entry* find_locked(std::string_view name) ATM_REQUIRES(mutex_);

  /// Serializes snapshot collector passes. snapshot() holds it across the
  /// collector invocations but releases mutex_ first, so collectors can
  /// register instruments without self-deadlocking; remove_collector takes
  /// it (never while holding mutex_ — no ordering cycle) as the drain
  /// barrier that makes detach safe.
  mutable Mutex collect_mutex_;
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_ ATM_GUARDED_BY(mutex_);
  std::vector<std::function<void(SampleSink&)>> collectors_ ATM_GUARDED_BY(mutex_);
};

/// Append a JSON-escaped string literal (quotes included) to `out`.
void json_append_string(std::string& out, std::string_view s);

}  // namespace atm::obs

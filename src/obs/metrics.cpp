#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace atm::obs {

namespace {

[[nodiscard]] std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Quantile estimate from a log2-bucket CDF: walk to the bucket holding the
/// q-th sample, then interpolate linearly inside it. Exact for the bucket
/// boundaries, geometric-resolution inside (good enough for p50/p95/p99 of
/// latency distributions spanning decades).
double bucket_quantile(const std::uint64_t (&counts)[LatencyHistogram::kBuckets],
                       std::uint64_t total, std::uint64_t max, double q) {
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const double lo_rank = static_cast<double>(seen);
    seen += counts[i];
    if (rank >= static_cast<double>(seen)) continue;
    const double lo = static_cast<double>(LatencyHistogram::bucket_lo(i));
    double hi = i + 1 < LatencyHistogram::kBuckets
                    ? static_cast<double>(LatencyHistogram::bucket_lo(i + 1))
                    : static_cast<double>(max);
    // Cap the top occupied bucket at the observed max so outliers don't
    // inflate the estimate to the bucket's theoretical upper bound.
    if (seen == total && static_cast<double>(max) > lo) {
      hi = static_cast<double>(max);
    }
    if (hi <= lo) return lo;
    const double frac = counts[i] > 1
                            ? (rank - lo_rank) / static_cast<double>(counts[i])
                            : 0.0;
    return lo + frac * (hi - lo);
  }
  return static_cast<double>(max);
}

}  // namespace

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  std::uint64_t counts[kBuckets] = {};
  Snapshot s;
  // mo: relaxed — snapshot sums racily by contract (record() publishes no
  // payload through these cells).
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      counts[i] += shard.count[i].load(std::memory_order_relaxed);
    }
    // mo: relaxed — same racy-snapshot contract as the bucket counts.
    s.sum += shard.sum.load(std::memory_order_relaxed);
    s.max = std::max(s.max, shard.max.load(std::memory_order_relaxed));
  }
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.count += counts[i];
    s.buckets[i] = counts[i];
  }
  if (s.count > 0) {
    s.mean = static_cast<double>(s.sum) / static_cast<double>(s.count);
    s.p50 = bucket_quantile(counts, s.count, s.max, 0.50);
    s.p95 = bucket_quantile(counts, s.count, s.max, 0.95);
    s.p99 = bucket_quantile(counts, s.count, s.max, 0.99);
  }
  return s;
}

void json_append_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {

void json_append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  // Integral values print without a fraction so counters stay exact.
  if (v == std::floor(v) && std::fabs(v) < 9e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
  }
}

}  // namespace

const MetricSample* RegistrySnapshot::find(std::string_view name) const noexcept {
  for (const MetricSample& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string RegistrySnapshot::to_json() const {
  std::string out;
  out.reserve(256 + metrics.size() * 128);
  out += "{\"t_ns\":";
  json_append_number(out, static_cast<double>(t_ns));
  out += ",\"metrics\":[";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const MetricSample& m = metrics[i];
    if (i > 0) out += ',';
    out += "{\"name\":";
    json_append_string(out, m.name);
    out += ",\"kind\":\"";
    out += metric_kind_name(m.kind);
    out += "\",\"unit\":";
    json_append_string(out, m.unit);
    out += ",\"owner\":";
    json_append_string(out, m.owner);
    if (m.kind == MetricKind::Histogram) {
      out += ",\"count\":";
      json_append_number(out, static_cast<double>(m.hist.count));
      out += ",\"sum\":";
      json_append_number(out, static_cast<double>(m.hist.sum));
      out += ",\"max\":";
      json_append_number(out, static_cast<double>(m.hist.max));
      out += ",\"mean\":";
      json_append_number(out, m.hist.mean);
      out += ",\"p50\":";
      json_append_number(out, m.hist.p50);
      out += ",\"p95\":";
      json_append_number(out, m.hist.p95);
      out += ",\"p99\":";
      json_append_number(out, m.hist.p99);
      // Full distribution as [bucket_lo, count] pairs, occupied buckets
      // only: consumers rebuild the exact CDF instead of trusting the
      // midpoint-interpolated quantiles above.
      out += ",\"buckets\":[";
      bool first = true;
      for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
        if (m.hist.buckets[b] == 0) continue;
        if (!first) out += ',';
        first = false;
        out += '[';
        json_append_number(out, static_cast<double>(LatencyHistogram::bucket_lo(b)));
        out += ',';
        json_append_number(out, static_cast<double>(m.hist.buckets[b]));
        out += ']';
      }
      out += ']';
    } else {
      out += ",\"value\":";
      json_append_number(out, m.value);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void SampleSink::counter(std::string name, std::uint64_t v, std::string unit,
                         std::string owner) {
  MetricSample m;
  m.name = std::move(name);
  m.unit = std::move(unit);
  m.owner = std::move(owner);
  m.kind = MetricKind::Counter;
  m.value = static_cast<double>(v);
  out_->push_back(std::move(m));
}

void SampleSink::gauge(std::string name, std::int64_t v, std::string unit,
                       std::string owner) {
  MetricSample m;
  m.name = std::move(name);
  m.unit = std::move(unit);
  m.owner = std::move(owner);
  m.kind = MetricKind::Gauge;
  m.value = static_cast<double>(v);
  out_->push_back(std::move(m));
}

MetricsRegistry::Entry* MetricsRegistry::find_locked(std::string_view name) {
  for (auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(std::string name, std::string unit,
                                  std::string owner) {
  MutexLock lock(mutex_);
  if (Entry* e = find_locked(name)) {
    return e->kind == MetricKind::Counter ? e->c.get() : nullptr;
  }
  auto e = std::make_unique<Entry>();
  e->name = std::move(name);
  e->unit = std::move(unit);
  e->owner = std::move(owner);
  e->kind = MetricKind::Counter;
  e->c = std::make_unique<Counter>();
  Counter* out = e->c.get();
  entries_.push_back(std::move(e));
  return out;
}

Gauge* MetricsRegistry::gauge(std::string name, std::string unit,
                              std::string owner) {
  MutexLock lock(mutex_);
  if (Entry* e = find_locked(name)) {
    return e->kind == MetricKind::Gauge ? e->g.get() : nullptr;
  }
  auto e = std::make_unique<Entry>();
  e->name = std::move(name);
  e->unit = std::move(unit);
  e->owner = std::move(owner);
  e->kind = MetricKind::Gauge;
  e->g = std::make_unique<Gauge>();
  Gauge* out = e->g.get();
  entries_.push_back(std::move(e));
  return out;
}

LatencyHistogram* MetricsRegistry::histogram(std::string name, std::string unit,
                                             std::string owner) {
  MutexLock lock(mutex_);
  if (Entry* e = find_locked(name)) {
    return e->kind == MetricKind::Histogram ? e->h.get() : nullptr;
  }
  auto e = std::make_unique<Entry>();
  e->name = std::move(name);
  e->unit = std::move(unit);
  e->owner = std::move(owner);
  e->kind = MetricKind::Histogram;
  e->h = std::make_unique<LatencyHistogram>();
  LatencyHistogram* out = e->h.get();
  entries_.push_back(std::move(e));
  return out;
}

std::size_t MetricsRegistry::add_collector(std::function<void(SampleSink&)> fn) {
  MutexLock lock(mutex_);
  collectors_.push_back(std::move(fn));
  return collectors_.size() - 1;
}

void MetricsRegistry::remove_collector(std::size_t id) {
  {
    MutexLock lock(mutex_);
    if (id < collectors_.size()) collectors_[id] = nullptr;
  }
  // Drain barrier: a concurrent snapshot() may have copied the collector
  // before the null above landed. It runs collectors under collect_mutex_,
  // so acquiring it here blocks until that pass finishes — after return,
  // the caller can safely destroy whatever the collector captured.
  MutexLock drain(collect_mutex_);
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot snap;
  snap.t_ns = steady_now_ns();
  // collect_mutex_ is held across the collector pass; mutex_ only while
  // copying registry state. Collectors therefore run lock-free from their
  // own perspective and may create/bump instruments (which take mutex_)
  // without deadlocking against this snapshot.
  MutexLock collect(collect_mutex_);
  std::vector<std::function<void(SampleSink&)>> collectors;
  {
    MutexLock lock(mutex_);
    snap.metrics.reserve(entries_.size() + collectors_.size() * 8);
    for (const auto& e : entries_) {
      MetricSample m;
      m.name = e->name;
      m.unit = e->unit;
      m.owner = e->owner;
      m.kind = e->kind;
      switch (e->kind) {
        case MetricKind::Counter:
          m.value = static_cast<double>(e->c->value());
          break;
        case MetricKind::Gauge:
          m.value = static_cast<double>(e->g->value());
          break;
        case MetricKind::Histogram:
          m.hist = e->h->snapshot();
          break;
      }
      snap.metrics.push_back(std::move(m));
    }
    collectors = collectors_;
  }
  SampleSink sink(&snap.metrics);
  for (const auto& fn : collectors) {
    if (fn) fn(sink);
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return snap;
}

std::size_t MetricsRegistry::metric_count() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

}  // namespace atm::obs

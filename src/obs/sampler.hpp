// Background metrics sampling: a thread that snapshots the registry's gauges
// (queue depths, arena slots, L2 bytes, index sizes) at a fixed interval into
// a bounded ring buffer, dumped at the end of the run as JSON/CSV and
// optionally echoed live to stderr — the surface a long-running `atm_serve`
// will expose (ROADMAP item 4).
#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "obs/metrics.hpp"

namespace atm::obs {

class MetricsSampler {
 public:
  struct Options {
    std::uint64_t interval_ms = 100;
    std::size_t ring_capacity = 4096;  ///< oldest snapshots drop past this
    bool live_stderr = false;          ///< print a one-line summary per tick
  };

  /// The sampled series, ordered oldest-first. `dropped` counts snapshots
  /// evicted from the ring (a bounded buffer, not an unbounded log).
  struct Series {
    std::uint64_t interval_ms = 0;
    std::uint64_t dropped = 0;
    std::vector<RegistrySnapshot> samples;

    /// {"interval_ms":..,"dropped":..,"samples":[{"t_ns":..,
    ///  "metrics":{name:value,...}},...]} — histograms flatten to their p50.
    [[nodiscard]] std::string to_json() const;
    /// Counters/gauges only: header row of metric names, one row per tick.
    [[nodiscard]] std::string to_csv() const;
  };

  /// Starts sampling `registry` immediately. The registry must outlive the
  /// sampler (Runtime owns both and stops the sampler first).
  MetricsSampler(const MetricsRegistry& registry, Options opts);
  ~MetricsSampler();
  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Stop the thread and take a final snapshot so short runs still record
  /// at least one sample. Idempotent.
  void stop();

  [[nodiscard]] Series series() const;

 private:
  void run();
  void take_sample();

  const MetricsRegistry& registry_;
  Options opts_;

  mutable Mutex mutex_;
  CondVar cv_;
  bool stopping_ ATM_GUARDED_BY(mutex_) = false;
  /// First stop() caller claims the join; later concurrent callers wait on
  /// cv_ until stopped_ rather than racing thread_.join().
  bool stop_claimed_ ATM_GUARDED_BY(mutex_) = false;
  bool stopped_ ATM_GUARDED_BY(mutex_) = false;
  std::vector<RegistrySnapshot> ring_ ATM_GUARDED_BY(mutex_);
  /// Index of oldest sample once wrapped.
  std::size_t ring_head_ ATM_GUARDED_BY(mutex_) = 0;
  bool wrapped_ ATM_GUARDED_BY(mutex_) = false;
  std::uint64_t dropped_ ATM_GUARDED_BY(mutex_) = 0;

  std::thread thread_;
};

}  // namespace atm::obs

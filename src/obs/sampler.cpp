#include "obs/sampler.hpp"

#include <chrono>
#include <cstdio>

namespace atm::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// Histogram series entry: summary stats plus the full per-bucket CDF as
/// [bucket_lo, cumulative_count] pairs over occupied buckets. Until PR 10
/// the series flattened histograms to a p50 scalar, which hid multi-modal
/// shapes (e.g. steal batch sizes clustering at both 1 and kMaxSteal);
/// consumers now get the whole distribution at every tick.
void append_hist(std::string& out, const LatencyHistogram::Snapshot& h) {
  out += "{\"count\":";
  out += std::to_string(h.count);
  out += ",\"max\":";
  out += std::to_string(h.max);
  out += ",\"mean\":";
  append_double(out, h.mean);
  out += ",\"p50\":";
  append_double(out, h.p50);
  out += ",\"p95\":";
  append_double(out, h.p95);
  out += ",\"p99\":";
  append_double(out, h.p99);
  out += ",\"cdf\":[";
  std::uint64_t cumulative = 0;
  bool first = true;
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    cumulative += h.buckets[b];
    if (!first) out += ',';
    first = false;
    out += '[';
    out += std::to_string(LatencyHistogram::bucket_lo(b));
    out += ',';
    out += std::to_string(cumulative);
    out += ']';
  }
  out += "]}";
}

}  // namespace

std::string MetricsSampler::Series::to_json() const {
  std::string out;
  out.reserve(256 + samples.size() * 256);
  out += "{\"interval_ms\":";
  out += std::to_string(interval_ms);
  out += ",\"dropped\":";
  out += std::to_string(dropped);
  out += ",\"samples\":[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) out += ',';
    out += "\n{\"t_ns\":";
    out += std::to_string(samples[i].t_ns);
    out += ",\"metrics\":{";
    for (std::size_t k = 0; k < samples[i].metrics.size(); ++k) {
      const MetricSample& m = samples[i].metrics[k];
      if (k > 0) out += ',';
      json_append_string(out, m.name);
      out += ':';
      if (m.kind == MetricKind::Histogram) {
        append_hist(out, m.hist);
      } else {
        append_double(out, m.value);
      }
    }
    out += "}}";
  }
  out += "\n]}";
  return out;
}

std::string MetricsSampler::Series::to_csv() const {
  std::string out;
  if (samples.empty()) return "t_ns\n";
  // Column set = scalar metrics of the first sample; the registry only grows
  // during warm-up, so later samples are a superset and extra names drop.
  std::vector<std::string> cols;
  out += "t_ns";
  for (const MetricSample& m : samples.front().metrics) {
    if (m.kind == MetricKind::Histogram) continue;
    cols.push_back(m.name);
    out += ',';
    out += m.name;
  }
  out += '\n';
  for (const RegistrySnapshot& s : samples) {
    out += std::to_string(s.t_ns);
    for (const std::string& col : cols) {
      out += ',';
      const MetricSample* m = s.find(col);
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", m != nullptr ? m->value : 0.0);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

MetricsSampler::MetricsSampler(const MetricsRegistry& registry, Options opts)
    : registry_(registry), opts_(opts) {
  if (opts_.interval_ms == 0) opts_.interval_ms = 1;
  if (opts_.ring_capacity == 0) opts_.ring_capacity = 1;
  ring_.reserve(std::min<std::size_t>(opts_.ring_capacity, 1024));
  thread_ = std::thread([this] { run(); });
}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::stop() {
  {
    MutexLock lock(mutex_);
    if (stopped_) return;
    if (stop_claimed_) {
      // Regression guard: a second concurrent stop() used to race the
      // first caller into thread_.join() (joining one std::thread from two
      // threads is undefined). Losers now wait for the winner to finish.
      while (!stopped_) cv_.wait(mutex_);
      return;
    }
    stop_claimed_ = true;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  take_sample();  // final snapshot: short runs still get >= 1 sample
  {
    MutexLock lock(mutex_);
    stopped_ = true;
  }
  cv_.notify_all();
}

void MetricsSampler::run() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(opts_.interval_ms);
      while (!stopping_) {
        if (cv_.wait_until(mutex_, deadline) == std::cv_status::timeout) break;
      }
      if (stopping_) return;
    }
    take_sample();
  }
}

void MetricsSampler::take_sample() {
  RegistrySnapshot snap = registry_.snapshot();
  if (opts_.live_stderr) {
    std::string line = "[atm-metrics t=" + std::to_string(snap.t_ns / 1000000) +
                       "ms]";
    for (const MetricSample& m : snap.metrics) {
      if (m.kind != MetricKind::Gauge) continue;
      line += ' ';
      line += m.name;
      line += '=';
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(m.value));
      line += buf;
    }
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  MutexLock lock(mutex_);
  if (ring_.size() < opts_.ring_capacity) {
    ring_.push_back(std::move(snap));
  } else {
    ring_[ring_head_] = std::move(snap);
    ring_head_ = (ring_head_ + 1) % opts_.ring_capacity;
    wrapped_ = true;
    ++dropped_;
  }
}

MetricsSampler::Series MetricsSampler::series() const {
  MutexLock lock(mutex_);
  Series s;
  s.interval_ms = opts_.interval_ms;
  s.dropped = dropped_;
  s.samples.reserve(ring_.size());
  if (wrapped_) {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      s.samples.push_back(ring_[(ring_head_ + i) % ring_.size()]);
    }
  } else {
    s.samples = ring_;
  }
  return s;
}

}  // namespace atm::obs

// Gauss-Seidel 2D 5-point stencil solver (paper Table I, §IV-A): the matrix
// is split into blocks, each swept in place by a `stencilComputation` task;
// neighbor rows/columns arrive through halo copy-tasks. Only the stencil
// task type is memoized. All iterations flow through the dependence graph
// without barriers — the classic OmpSs wavefront.
#pragma once

#include "apps/stencil_common.hpp"

namespace atm::apps {

class GaussSeidelApp final : public App {
 public:
  explicit GaussSeidelApp(StencilParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "Gauss-Seidel"; }
  [[nodiscard]] std::string domain() const override { return "stencil-computation"; }
  [[nodiscard]] std::string program_input_desc() const override;
  [[nodiscard]] std::string task_input_types() const override { return "float"; }
  [[nodiscard]] std::string memoized_task_type() const override {
    return "stencilComputation";
  }
  [[nodiscard]] std::string correctness_target() const override {
    return "Stencil Matrix";
  }
  [[nodiscard]] rt::AtmParams atm_params() const override {
    return {.l_training = params_.l_training, .tau_max = 0.01};  // Table II
  }

  /// Same smooth-field argument as Jacobi: a 1e-3 relative input cell is
  /// harmless to the relaxation output.
  [[nodiscard]] double tolerance_preset() const override { return 1e-3; }

  [[nodiscard]] RunResult run(const RunConfig& config) const override;

  [[nodiscard]] const StencilParams& params() const noexcept { return params_; }

 private:
  StencilParams params_;
};

}  // namespace atm::apps

#include "apps/sparse_lu.hpp"

#include <memory>
#include <sstream>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"

namespace atm::apps {

SparseLuParams SparseLuParams::preset(Preset preset) {
  SparseLuParams p;
  switch (preset) {
    case Preset::Test:
      p.nblocks = 6;
      p.block_dim = 16;
      p.l_training = 4;
      break;
    case Preset::Bench:
      break;  // defaults
    case Preset::Paper:
      p.nblocks = 20;
      p.block_dim = 256;
      p.l_training = 30;
      break;
  }
  return p;
}

std::string SparseLuApp::program_input_desc() const {
  std::ostringstream os;
  os << params_.nblocks << "x" << params_.nblocks << " blocks of " << params_.block_dim
     << "x" << params_.block_dim << " elements, density "
     << static_cast<int>(params_.density * 100.0) << "%";
  return os.str();
}

void lu0_kernel(float* diag, std::size_t b) noexcept {
  for (std::size_t k = 0; k < b; ++k) {
    const float pivot = diag[k * b + k];
    for (std::size_t i = k + 1; i < b; ++i) {
      diag[i * b + k] /= pivot;
      const float factor = diag[i * b + k];
      for (std::size_t j = k + 1; j < b; ++j) {
        diag[i * b + j] -= factor * diag[k * b + j];
      }
    }
  }
}

void fwd_kernel(const float* diag, float* col, std::size_t b) noexcept {
  // Apply L^-1 (unit lower triangle of diag) to the block right of it.
  for (std::size_t k = 0; k < b; ++k) {
    for (std::size_t i = k + 1; i < b; ++i) {
      const float factor = diag[i * b + k];
      for (std::size_t j = 0; j < b; ++j) {
        col[i * b + j] -= factor * col[k * b + j];
      }
    }
  }
}

void bdiv_kernel(const float* diag, float* row, std::size_t b) noexcept {
  // Apply U^-1 (upper triangle of diag) from the right to the block below.
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t k = 0; k < b; ++k) {
      row[i * b + k] /= diag[k * b + k];
      const float factor = row[i * b + k];
      for (std::size_t j = k + 1; j < b; ++j) {
        row[i * b + j] -= factor * diag[k * b + j];
      }
    }
  }
}

void bmod_kernel(const float* row, const float* col, float* inner,
                 std::size_t b) noexcept {
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t k = 0; k < b; ++k) {
      const float factor = row[i * b + k];
      for (std::size_t j = 0; j < b; ++j) {
        inner[i * b + j] -= factor * col[k * b + j];
      }
    }
  }
}

namespace {

struct BlockMatrix {
  std::size_t nb = 0;
  std::size_t bd = 0;
  std::vector<std::unique_ptr<AlignedBuffer<float>>> blocks;  // nb*nb, null = zero

  [[nodiscard]] float* at(std::size_t ii, std::size_t jj) {
    auto& cell = blocks[ii * nb + jj];
    return cell ? cell->data() : nullptr;
  }
  [[nodiscard]] const float* at(std::size_t ii, std::size_t jj) const {
    const auto& cell = blocks[ii * nb + jj];
    return cell ? cell->data() : nullptr;
  }
  float* ensure(std::size_t ii, std::size_t jj) {
    auto& cell = blocks[ii * nb + jj];
    if (!cell) cell = std::make_unique<AlignedBuffer<float>>(bd * bd);  // zeroed
    return cell->data();
  }
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t n = 0;
    for (const auto& cell : blocks) {
      if (cell) n += cell->size_bytes();
    }
    return n;
  }
};

/// Deterministic sparse matrix with pooled block contents: the repeated
/// patterns are the input redundancy bmod reuses (§V-D: "this redundancy is
/// both thanks to the algorithm and to the inputs").
BlockMatrix generate(const SparseLuParams& params) {
  BlockMatrix m;
  m.nb = params.nblocks;
  m.bd = params.block_dim;
  m.blocks.resize(m.nb * m.nb);

  const std::size_t pool_n = params.pattern_pool != 0 ? params.pattern_pool : 1;
  std::vector<std::vector<float>> pool(pool_n);
  for (std::size_t pi = 0; pi < pool_n; ++pi) {
    Rng rng(splitmix64(params.seed ^ (0xb10cULL + pi)));
    pool[pi].resize(m.bd * m.bd);
    for (auto& v : pool[pi]) v = rng.next_float(-1.0f, 1.0f);
  }

  Rng structure_rng(splitmix64(params.seed ^ 0x57a7ULL));
  for (std::size_t ii = 0; ii < m.nb; ++ii) {
    for (std::size_t jj = 0; jj < m.nb; ++jj) {
      const bool on_diag = ii == jj;
      const bool near_diag = ii == jj + 1 || jj == ii + 1;
      const bool present =
          on_diag || near_diag ||
          structure_rng.next_double() < params.density;
      if (!present) continue;
      float* blk = m.ensure(ii, jj);
      // Spatially periodic assignment: translated block positions share
      // contents, so bmod sees repeated (row, col, target) triples.
      const auto& pattern = pool[((ii % 2) * 2 + (jj % 2)) % pool_n];
      for (std::size_t i = 0; i < m.bd * m.bd; ++i) blk[i] = pattern[i];
      if (on_diag) {
        // Diagonal dominance keeps the pivot-free factorization stable.
        for (std::size_t i = 0; i < m.bd; ++i) {
          blk[i * m.bd + i] += static_cast<float>(2 * m.bd);
        }
      }
    }
  }
  return m;
}

/// Dense copy of the block matrix (row-major doubles).
std::vector<double> to_dense(const BlockMatrix& m) {
  const std::size_t n = m.nb * m.bd;
  std::vector<double> dense(n * n, 0.0);
  for (std::size_t ii = 0; ii < m.nb; ++ii) {
    for (std::size_t jj = 0; jj < m.nb; ++jj) {
      const float* blk = m.at(ii, jj);
      if (blk == nullptr) continue;
      for (std::size_t i = 0; i < m.bd; ++i) {
        for (std::size_t j = 0; j < m.bd; ++j) {
          dense[(ii * m.bd + i) * n + (jj * m.bd + j)] =
              static_cast<double>(blk[i * m.bd + j]);
        }
      }
    }
  }
  return dense;
}

/// Eq. 4: |A - L*U|^2 / |A|^2 with L unit-lower / U upper from the factored
/// dense matrix `lu` against the original `a`.
double lu_residual(const std::vector<double>& a, const std::vector<double>& lu,
                   std::size_t n) {
  double num = 0.0;
  double den = 0.0;
  std::vector<double> row_product(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) row_product[j] = 0.0;
    // (L*U)(i, j) = sum_k L(i,k) U(k,j), L unit-lower, U upper.
    for (std::size_t k = 0; k <= i; ++k) {
      const double l_ik = k == i ? 1.0 : lu[i * n + k];
      if (l_ik == 0.0) continue;
      const double* u_row = lu.data() + k * n;
      for (std::size_t j = k; j < n; ++j) {
        row_product[j] += l_ik * u_row[j];
      }
    }
    const double* a_row = a.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double diff = a_row[j] - row_product[j];
      num += diff * diff;
      den += a_row[j] * a_row[j];
    }
  }
  return den == 0.0 ? 0.0 : num / den;
}

}  // namespace

double SparseLuApp::program_error(const RunResult& reference,
                                  const RunResult& result) const {
  (void)reference;
  return result.app_specific_error;
}

RunResult SparseLuApp::run(const RunConfig& config) const {
  const std::size_t nb = params_.nblocks;
  const std::size_t bd = params_.block_dim;

  BlockMatrix matrix = generate(params_);
  const std::vector<double> original = to_dense(matrix);

  auto engine = make_engine(config);
  rt::Runtime runtime(runtime_config(config));
  if (engine != nullptr) runtime.attach_memoizer(engine.get());

  const auto* lu0_type = runtime.register_type({.name = "lu0", .memoizable = false, .atm = {}});
  const auto* fwd_type = runtime.register_type({.name = "fwd", .memoizable = false, .atm = {}});
  const auto* bdiv_type = runtime.register_type({.name = "bdiv", .memoizable = false, .atm = {}});
  const auto* bmod_type = runtime.register_type(
      {.name = "bmod", .memoizable = true, .atm = atm_params()});

  Timer timer;
  for (std::size_t kk = 0; kk < nb; ++kk) {
    float* diag = matrix.at(kk, kk);
    runtime.submit(lu0_type, [diag, bd] { lu0_kernel(diag, bd); },
                   {rt::inout(diag, bd * bd)});
    for (std::size_t jj = kk + 1; jj < nb; ++jj) {
      float* col = matrix.at(kk, jj);
      if (col == nullptr) continue;
      runtime.submit(fwd_type, [diag, col, bd] { fwd_kernel(diag, col, bd); },
                     {rt::in(static_cast<const float*>(diag), bd * bd),
                      rt::inout(col, bd * bd)});
    }
    for (std::size_t ii = kk + 1; ii < nb; ++ii) {
      float* row = matrix.at(ii, kk);
      if (row == nullptr) continue;
      runtime.submit(bdiv_type, [diag, row, bd] { bdiv_kernel(diag, row, bd); },
                     {rt::in(static_cast<const float*>(diag), bd * bd),
                      rt::inout(row, bd * bd)});
    }
    for (std::size_t ii = kk + 1; ii < nb; ++ii) {
      const float* row = matrix.at(ii, kk);
      if (row == nullptr) continue;
      for (std::size_t jj = kk + 1; jj < nb; ++jj) {
        const float* col = matrix.at(kk, jj);
        if (col == nullptr) continue;
        float* inner = matrix.ensure(ii, jj);  // allocate fill-in
        runtime.submit(bmod_type,
                       [row, col, inner, bd] { bmod_kernel(row, col, inner, bd); },
                       {rt::in(row, bd * bd), rt::in(col, bd * bd),
                        rt::inout(inner, bd * bd)});
      }
    }
  }
  runtime.taskwait();

  RunResult result;
  result.wall_seconds = timer.elapsed_s();
  result.output = to_dense(matrix);
  result.app_specific_error =
      lu_residual(original, result.output, nb * bd);
  result.app_memory_bytes = matrix.memory_bytes();
  result.task_input_bytes = 3 * bd * bd * sizeof(float);
  finalize_result(result, runtime, engine.get(), bmod_type, config);
  return result;
}

}  // namespace atm::apps

#include "apps/app_registry.hpp"

#include <cstdio>

#include "apps/blackscholes.hpp"
#include "apps/gauss_seidel.hpp"
#include "apps/jacobi.hpp"
#include "apps/kmeans.hpp"
#include "apps/sparse_lu.hpp"
#include "apps/swaptions.hpp"
#include "common/env.hpp"

namespace atm::apps {

double App::program_error(const RunResult& reference, const RunResult& result) const {
  if (result.app_specific_error >= 0.0) return result.app_specific_error;
  return euclidean_relative_error<double>(reference.output, result.output);
}

rt::RuntimeConfig runtime_config(const RunConfig& config) {
  return {.num_threads = config.threads,
          .enable_tracing = config.tracing,
          .sched = config.sched,
          .graph_log2_shards = config.graph_log2_shards,
          .arena_block_tasks = config.arena_block_tasks,
          .help_taskwait = config.help_taskwait,
          .metrics = config.metrics,
          .metrics_interval_ms = config.metrics_interval_ms,
          .metrics_live = config.metrics_live,
          .profile_tasks = config.profile_tasks,
          .profile_max_types = config.profile_max_types,
          .numa_policy = config.numa};
}

std::unique_ptr<AtmEngine> make_engine(const RunConfig& config) {
  if (config.mode == AtmMode::Off) return nullptr;
  AtmConfig c;
  c.mode = config.mode;
  c.log2_buckets = config.log2_buckets;
  c.bucket_capacity = config.bucket_capacity;
  c.use_ikt = config.use_ikt;
  c.type_aware = config.type_aware;
  c.fixed_p = config.fixed_p;
  c.shuffle_seed = config.shuffle_seed;
  c.verify_full_inputs = config.verify_full_inputs;
  c.eviction = config.eviction;
  c.tolerance_rel = config.tolerance_rel;
  c.tolerance_abs = config.tolerance_abs;
  c.tolerance_probes = config.tolerance_probes;
  c.l2_enabled = config.l2_enabled;
  c.l2_budget_bytes = config.l2_budget_bytes;
  c.l2_log2_shards = config.l2_log2_shards;
  c.l2_compress = config.l2_compress;
  c.reuse_log_cap = config.reuse_log_cap;
  c.profile_max_types = config.profile_max_types;
  auto engine = std::make_unique<AtmEngine>(c);
  if (!config.load_store_path.empty()) {
    std::string error;
    if (!engine->load_store(config.load_store_path, &error)) {
      // A cold start is the correct fallback: report and continue.
      std::fprintf(stderr, "atm: warm start skipped: %s\n", error.c_str());
    }
  }
  return engine;
}

void finalize_result(RunResult& result, rt::Runtime& runtime, AtmEngine* engine,
                     const rt::TaskType* memoized_type, const RunConfig& config) {
  result.counters = runtime.counters();
  if (engine != nullptr) {
    result.atm = engine->stats();
    result.atm_memory_bytes = engine->memory_bytes();
    if (!config.save_store_path.empty()) {
      std::string error;
      if (!engine->save_store(config.save_store_path, &error)) {
        std::fprintf(stderr, "atm: store save failed: %s\n", error.c_str());
      }
    }
    if (memoized_type != nullptr) {
      result.final_p = engine->current_p(*memoized_type);
      result.final_phase = engine->phase(*memoized_type);
      result.p_history = engine->p_history(*memoized_type);
      result.blacklist_size = engine->blacklist_size(*memoized_type);
    }
  }
  // Runtime-side observability rides in the ATM snapshot so the harnesses
  // see it uniformly — even in mode Off, where there is no engine at all.
  // (Filled after the engine snapshot copy: the engine knows nothing about
  // these fields and would zero them.)
  const rt::DepIndexStats dep = runtime.dep_index_stats();
  result.atm.dep_exact_hits = dep.exact_hits;
  result.atm.dep_tree_fallbacks = dep.tree_fallbacks;
  result.atm.prune_scans = dep.prune_scans;
  result.sched = runtime.sched_stats();
  if (config.tracing) {
    const auto& tracer = runtime.tracer();
    for (std::size_t lane = 0; lane < tracer.lane_count(); ++lane) {
      result.lane_summaries.push_back(tracer.summarize_lane(lane));
      result.trace_lanes.push_back(tracer.lane(lane));
    }
    result.trace_master_lane = tracer.master_lane();
    result.depth_samples = tracer.depth_samples();
    result.ascii_timeline = tracer.ascii_timeline();
  }
  // Harvest the sampler series first (stops the sampler thread), then take
  // the final registry snapshot — it includes everything the collectors see
  // at end-of-run, so harnesses get one coherent closing picture.
  result.metrics_series = runtime.metrics_series();
  if (config.metrics) result.metrics = runtime.metrics().snapshot();
}

namespace {
/// Jacobi trains longer than Gauss-Seidel (Table II: 150 vs 100).
StencilParams jacobi_params(Preset preset) {
  StencilParams p = StencilParams::preset(preset);
  switch (preset) {
    case Preset::Test: p.l_training = 14; break;
    case Preset::Bench: p.l_training = 64; break;
    case Preset::Paper: p.l_training = 150; break;
  }
  return p;
}
}  // namespace

std::vector<std::unique_ptr<App>> make_all_apps(Preset preset) {
  std::vector<std::unique_ptr<App>> apps;
  apps.push_back(std::make_unique<BlackscholesApp>(BlackscholesParams::preset(preset)));
  apps.push_back(std::make_unique<GaussSeidelApp>(StencilParams::preset(preset)));
  apps.push_back(std::make_unique<JacobiApp>(jacobi_params(preset)));
  apps.push_back(std::make_unique<KmeansApp>(KmeansParams::preset(preset)));
  apps.push_back(std::make_unique<SparseLuApp>(SparseLuParams::preset(preset)));
  apps.push_back(std::make_unique<SwaptionsApp>(SwaptionsParams::preset(preset)));
  return apps;
}

std::unique_ptr<App> make_app(const std::string& name, Preset preset) {
  if (name == "blackscholes")
    return std::make_unique<BlackscholesApp>(BlackscholesParams::preset(preset));
  if (name == "gauss-seidel" || name == "gs")
    return std::make_unique<GaussSeidelApp>(StencilParams::preset(preset));
  if (name == "jacobi") return std::make_unique<JacobiApp>(jacobi_params(preset));
  if (name == "kmeans") return std::make_unique<KmeansApp>(KmeansParams::preset(preset));
  if (name == "lu" || name == "sparselu")
    return std::make_unique<SparseLuApp>(SparseLuParams::preset(preset));
  if (name == "swaptions")
    return std::make_unique<SwaptionsApp>(SwaptionsParams::preset(preset));
  return nullptr;
}

Preset preset_from_env() {
  const std::string scale = env_string("ATM_SCALE", env_string("ATM_PRESET"));
  if (scale == "paper") return Preset::Paper;
  if (scale == "test" || scale == "tiny") return Preset::Test;
  return Preset::Bench;
}

}  // namespace atm::apps

// Swaptions (paper Table I, §IV-A): an HJM-framework-style Monte-Carlo
// swaption pricer. Each `HJM_Swaption_Blocking` task prices one swaption
// from a ~376-byte record (parameters + forward-rate curve + volatility
// curve + the MC seed, so tasks stay deterministic pure functions of their
// declared inputs, §III-E).
//
// The PARSEC native input replicates swaption records; our generator
// reproduces that: a few exact duplicates (static ATM's 7% reuse) plus
// near-duplicates that differ only in low-order mantissa bytes — invisible
// to a type-aware sampled key, which is how Dynamic ATM lifts reuse to ~20%
// (§V-D), and the reason Swaptions' correctness collapses once p drops to
// 12.5% (Fig. 5).
#pragma once

#include <cstdint>

#include "apps/app_registry.hpp"

namespace atm::apps {

/// Doubles per swaption record (47 doubles = 376 bytes, Table I).
inline constexpr std::size_t kSwaptionRecordDoubles = 47;

struct SwaptionsParams {
  std::size_t num_swaptions = 256;  ///< paper: 512 (native scaled up)
  std::size_t exact_dupes = 20;     ///< records byte-identical to a base
  std::size_t perturbed = 56;       ///< records with sub-ulp-ish noise
  std::size_t trials = 1'024;       ///< MC paths per swaption
  std::size_t steps = 40;           ///< time steps per path
  std::uint64_t seed = 0x5a71ULL;
  std::uint32_t l_training = 15;  ///< Table II

  [[nodiscard]] static SwaptionsParams preset(Preset preset);
};

class SwaptionsApp final : public App {
 public:
  explicit SwaptionsApp(SwaptionsParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "Swaptions"; }
  [[nodiscard]] std::string domain() const override { return "financial analysis"; }
  [[nodiscard]] std::string program_input_desc() const override;
  [[nodiscard]] std::string task_input_types() const override { return "double"; }
  [[nodiscard]] std::string memoized_task_type() const override {
    return "HJM_Swaption_Blocking";
  }
  [[nodiscard]] std::string correctness_target() const override { return "Prices Vector"; }
  [[nodiscard]] rt::AtmParams atm_params() const override {
    return {.l_training = params_.l_training, .tau_max = 0.20};  // Table II: tau_max = 20%
  }

  [[nodiscard]] RunResult run(const RunConfig& config) const override;

  [[nodiscard]] const SwaptionsParams& params() const noexcept { return params_; }

 private:
  SwaptionsParams params_;
};

/// Price one swaption record via the HJM-style MC simulation (exposed for
/// tests; deterministic in (record, seed, trials, steps)).
[[nodiscard]] double price_swaption(const double* record, std::uint64_t seed,
                                    std::size_t trials, std::size_t steps) noexcept;

}  // namespace atm::apps

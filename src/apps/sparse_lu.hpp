// Sparse blocked LU decomposition (paper Table I, §IV-A): the BSC SparseLU
// kernel — lu0 / fwd / bdiv / bmod tasks over an NB x NB grid of B x B
// blocks, null blocks skipped, fill-in allocated on demand. ATM is applied
// to `bmod`, "the most frequently called routine, which subtracts the
// result of a row-column dot product from the elements of a vector".
// Correctness uses the app-specific residual |A - L*U|^2 / |A|^2 (Eq. 4).
#pragma once

#include <cstdint>

#include "apps/app_registry.hpp"

namespace atm::apps {

struct SparseLuParams {
  std::size_t nblocks = 10;    ///< NB blocks per dimension (paper: 20)
  std::size_t block_dim = 40;  ///< B elements per block dimension (paper: 256)
  double density = 0.35;       ///< fraction of non-null off-diagonal blocks
  std::size_t pattern_pool = 4;///< distinct initial block patterns (redundancy)
  std::uint64_t seed = 0x10dec0deULL;
  std::uint32_t l_training = 5;   ///< Table II (preset-scaled)

  [[nodiscard]] static SparseLuParams preset(Preset preset);
};

class SparseLuApp final : public App {
 public:
  explicit SparseLuApp(SparseLuParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "LU"; }
  [[nodiscard]] std::string domain() const override { return "linear-algebra"; }
  [[nodiscard]] std::string program_input_desc() const override;
  [[nodiscard]] std::string task_input_types() const override { return "float"; }
  [[nodiscard]] std::string memoized_task_type() const override { return "bmod"; }
  [[nodiscard]] std::string correctness_target() const override { return "L*U - A"; }
  [[nodiscard]] rt::AtmParams atm_params() const override {
    return {.l_training = params_.l_training, .tau_max = 0.01};  // Table II
  }

  [[nodiscard]] RunResult run(const RunConfig& config) const override;

  /// Eq. 4: the residual is computed inside run(); reference output unused.
  [[nodiscard]] double program_error(const RunResult& reference,
                                     const RunResult& result) const override;

  [[nodiscard]] const SparseLuParams& params() const noexcept { return params_; }

 private:
  SparseLuParams params_;
};

// Block kernels (exposed for unit tests).
void lu0_kernel(float* diag, std::size_t b) noexcept;
void fwd_kernel(const float* diag, float* col, std::size_t b) noexcept;
void bdiv_kernel(const float* diag, float* row, std::size_t b) noexcept;
void bmod_kernel(const float* row, const float* col, float* inner,
                 std::size_t b) noexcept;

}  // namespace atm::apps

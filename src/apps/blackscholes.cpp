#include "apps/blackscholes.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"

namespace atm::apps {

BlackscholesParams BlackscholesParams::preset(Preset preset) {
  BlackscholesParams p;
  switch (preset) {
    case Preset::Test:
      p.num_options = 4'000;
      p.distinct_options = 2'000;
      p.block_size = 250;
      p.iterations = 4;
      p.l_training = 8;
      break;
    case Preset::Bench:
      break;  // defaults
    case Preset::Paper:
      p.num_options = 10'000'000;
      p.distinct_options = 1'000;  // the native input replicates ~1000 records
      p.block_size = 16'384;
      p.iterations = 10;
      break;
  }
  return p;
}

std::string BlackscholesApp::program_input_desc() const {
  std::ostringstream os;
  os << params_.num_options << " options (" << params_.distinct_options
     << " distinct, replicated), " << params_.iterations << " pricing runs";
  return os.str();
}

namespace {
/// Cumulative normal distribution, PARSEC-style polynomial approximation.
float cndf(float x) noexcept {
  const bool negative = x < 0.0f;
  if (negative) x = -x;
  const float k = 1.0f / (1.0f + 0.2316419f * x);
  const float k_pow = k * (0.319381530f +
                           k * (-0.356563782f +
                                k * (1.781477937f + k * (-1.821255978f + k * 1.330274429f))));
  const float n_prime = 0.3989422804f * std::exp(-0.5f * x * x);
  const float result = 1.0f - n_prime * k_pow;
  return negative ? 1.0f - result : result;
}
}  // namespace

float black_scholes_price(float spot, float strike, float rate, float volatility,
                          float time, float otype) noexcept {
  const float sqrt_t = std::sqrt(time);
  const float d1 = (std::log(spot / strike) + (rate + 0.5f * volatility * volatility) * time) /
                   (volatility * sqrt_t);
  const float d2 = d1 - volatility * sqrt_t;
  const float discounted_strike = strike * std::exp(-rate * time);
  if (otype > 0.5f) {  // put
    return discounted_strike * cndf(-d2) - spot * cndf(-d1);
  }
  return spot * cndf(d1) - discounted_strike * cndf(d2);
}

RunResult BlackscholesApp::run(const RunConfig& config) const {
  const std::size_t n = params_.num_options;
  const std::size_t distinct = std::min(params_.distinct_options, n);
  const std::size_t bs = params_.block_size;

  // SoA arrays, PARSEC layout.
  AlignedBuffer<float> spot(n), strike(n), rate(n), volatility(n), time(n), otype(n);
  AlignedBuffer<float> prices(n);
  {
    Rng rng(params_.seed);
    for (std::size_t i = 0; i < distinct; ++i) {
      spot[i] = rng.next_float(10.0f, 200.0f);
      strike[i] = rng.next_float(10.0f, 200.0f);
      rate[i] = rng.next_float(0.01f, 0.1f);
      volatility[i] = rng.next_float(0.05f, 0.65f);
      time[i] = rng.next_float(0.1f, 4.0f);
      otype[i] = rng.next_below(2) != 0 ? 1.0f : 0.0f;
    }
    // Replicate the base set cyclically: the redundancy structure of the
    // PARSEC native input.
    for (std::size_t i = distinct; i < n; ++i) {
      spot[i] = spot[i % distinct];
      strike[i] = strike[i % distinct];
      rate[i] = rate[i % distinct];
      volatility[i] = volatility[i % distinct];
      time[i] = time[i % distinct];
      otype[i] = otype[i % distinct];
    }
  }

  // Noisy-sensor mode (tolerance-matching demo): the portfolio is re-read
  // each pricing sweep with fresh per-element relative jitter — every key
  // input differs by ~noise from the previous sweep's, so exact keys never
  // repeat while quantized keys still match. The jitter is a deterministic
  // function of (seed, iteration), making a mode-Off run over the same
  // params an exact baseline for output-error measurement.
  const double noise = config.input_noise;
  std::vector<float> base_spot, base_strike, base_rate, base_vol, base_time;
  if (noise > 0.0) {
    base_spot.assign(spot.begin(), spot.end());
    base_strike.assign(strike.begin(), strike.end());
    base_rate.assign(rate.begin(), rate.end());
    base_vol.assign(volatility.begin(), volatility.end());
    base_time.assign(time.begin(), time.end());
  }

  auto engine = make_engine(config);
  rt::Runtime runtime(runtime_config(config));
  if (engine != nullptr) runtime.attach_memoizer(engine.get());

  const auto* bs_type = runtime.register_type(
      {.name = "bs_thread", .memoizable = true, .atm = atm_params()});

  Timer timer;
  for (unsigned iter = 0; iter < params_.iterations; ++iter) {
    if (noise > 0.0) {
      // Safe to mutate: the previous sweep's tasks drained at the taskwait.
      Rng rng(splitmix64(params_.seed ^ (0xA05Eull + iter)));
      auto jitter = [&rng, noise](float v) {
        return v * (1.0f + rng.next_float(-static_cast<float>(noise),
                                          static_cast<float>(noise)));
      };
      for (std::size_t i = 0; i < n; ++i) {
        spot[i] = jitter(base_spot[i]);
        strike[i] = jitter(base_strike[i]);
        rate[i] = jitter(base_rate[i]);
        volatility[i] = jitter(base_vol[i]);
        time[i] = jitter(base_time[i]);
        // otype is a put/call flag — sensors don't jitter an enum.
      }
    }
    for (std::size_t begin = 0; begin < n; begin += bs) {
      const std::size_t count = std::min(bs, n - begin);
      const float* s = spot.data() + begin;
      const float* k = strike.data() + begin;
      const float* r = rate.data() + begin;
      const float* v = volatility.data() + begin;
      const float* t = time.data() + begin;
      const float* o = otype.data() + begin;
      float* out = prices.data() + begin;
      runtime.submit(
          bs_type,
          [s, k, r, v, t, o, out, count] {
            for (std::size_t i = 0; i < count; ++i) {
              out[i] = black_scholes_price(s[i], k[i], r[i], v[i], t[i], o[i]);
            }
          },
          {rt::in(s, count), rt::in(k, count), rt::in(r, count), rt::in(v, count),
           rt::in(t, count), rt::in(o, count), rt::out(out, count)});
    }
    // PARSEC re-prices the portfolio NUM_RUNS times with a barrier between.
    runtime.taskwait();
  }

  RunResult result;
  result.wall_seconds = timer.elapsed_s();
  result.output.assign(prices.begin(), prices.end());
  result.app_memory_bytes = 7 * n * sizeof(float);
  result.task_input_bytes = 6 * bs * sizeof(float);
  finalize_result(result, runtime, engine.get(), bs_type, config);
  return result;
}

}  // namespace atm::apps

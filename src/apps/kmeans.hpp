// Kmeans clustering (paper Table I, §IV-A): blocks of points are assigned
// to their closest centers by the memoized `kmeans_calculate` task type; a
// second (non-memoized) task type recomputes the centers. Exact reuse never
// happens — the centers move every iteration — so this is the benchmark
// that *only* profits from task approximation: once clusters converge, the
// sampled input bytes stop changing and Dynamic ATM reuses the assignments
// (§V-D).
#pragma once

#include <cstdint>

#include "apps/app_registry.hpp"

namespace atm::apps {

struct KmeansParams {
  std::size_t num_points = 32'768;  ///< paper: 2e6
  std::size_t dims = 32;            ///< paper: 100
  std::size_t clusters = 16;        ///< paper: 16
  std::size_t block_points = 2'048; ///< points per assign task
  unsigned iterations = 20;
  std::uint32_t l_training = 15;  ///< Table II
  std::uint64_t seed = 0x142ea5ULL;

  [[nodiscard]] static KmeansParams preset(Preset preset);
};

class KmeansApp final : public App {
 public:
  explicit KmeansApp(KmeansParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "Kmeans"; }
  [[nodiscard]] std::string domain() const override { return "machine-learning"; }
  [[nodiscard]] std::string program_input_desc() const override;
  [[nodiscard]] std::string task_input_types() const override { return "float, int"; }
  [[nodiscard]] std::string memoized_task_type() const override {
    return "kmeans_calculate";
  }
  [[nodiscard]] std::string correctness_target() const override {
    return "Centers Vector";
  }
  [[nodiscard]] rt::AtmParams atm_params() const override {
    return {.l_training = params_.l_training, .tau_max = 0.20};  // Table II: tau_max = 20%
  }

  [[nodiscard]] RunResult run(const RunConfig& config) const override;

  [[nodiscard]] const KmeansParams& params() const noexcept { return params_; }

 private:
  KmeansParams params_;
};

}  // namespace atm::apps

// Blackscholes (paper Table I, §IV-A): analytic European option pricing via
// the Black-Scholes PDE closed form, PARSEC-style — SoA float arrays,
// blocks of options priced by `bs_thread` tasks, the whole portfolio priced
// repeatedly (NUM_RUNS iterations). Redundancy comes from the replicated
// option records of the native input (our generator reproduces that
// structure) and from the repeated iterations (§V-D).
#pragma once

#include <cstdint>

#include "apps/app_registry.hpp"

namespace atm::apps {

struct BlackscholesParams {
  std::size_t num_options = 40'000;       ///< paper: 10 million
  std::size_t distinct_options = 20'000;  ///< base set, replicated cyclically
  std::size_t block_size = 500;           ///< options per bs_thread task (paper: 16384)
  unsigned iterations = 10;               ///< NUM_RUNS re-pricing sweeps
  std::uint32_t l_training = 15;          ///< Table II (preset-scaled)
  std::uint64_t seed = 0xB1ac5c401e5ULL;

  [[nodiscard]] static BlackscholesParams preset(Preset preset);
};

class BlackscholesApp final : public App {
 public:
  explicit BlackscholesApp(BlackscholesParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "Blackscholes"; }
  [[nodiscard]] std::string domain() const override { return "financial analysis"; }
  [[nodiscard]] std::string program_input_desc() const override;
  [[nodiscard]] std::string task_input_types() const override { return "float"; }
  [[nodiscard]] std::string memoized_task_type() const override { return "bs_thread"; }
  [[nodiscard]] std::string correctness_target() const override { return "Prices Vector"; }
  [[nodiscard]] rt::AtmParams atm_params() const override {
    return {.l_training = params_.l_training, .tau_max = 0.01};  // Table II
  }

  /// Analytic pricing is smooth in every input: a 1e-3 relative input cell
  /// moves prices well under the 5% error ceiling.
  [[nodiscard]] double tolerance_preset() const override { return 1e-3; }

  [[nodiscard]] RunResult run(const RunConfig& config) const override;

  [[nodiscard]] const BlackscholesParams& params() const noexcept { return params_; }

 private:
  BlackscholesParams params_;
};

/// The closed-form Black-Scholes price of one option (exposed for tests).
/// `otype` > 0.5 prices a put, otherwise a call.
[[nodiscard]] float black_scholes_price(float spot, float strike, float rate,
                                        float volatility, float time,
                                        float otype) noexcept;

}  // namespace atm::apps

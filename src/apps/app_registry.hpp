// Uniform interface over the paper's six benchmark applications
// (Table I): construction by name, presets for workload scale, and a
// single run() entry point used by tests, examples and every bench binary.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "atm_lib.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

namespace atm::apps {

/// Workload sizing. `Test` keeps unit tests fast; `Bench` is the default
/// container-friendly scale; `Paper` matches the paper's input sizes
/// (Table I) and is selected with ATM_SCALE=paper.
enum class Preset { Test, Bench, Paper };

/// Per-run configuration shared by every app.
struct RunConfig {
  unsigned threads = 2;
  /// Ready-task scheduler: work stealing by default; Central is the paper's
  /// single locked RQ, kept for A/B runs (`atm_run --sched central`).
  rt::SchedPolicy sched = rt::SchedPolicy::Steal;
  AtmMode mode = AtmMode::Off;
  double fixed_p = 1.0;           ///< FixedP (Oracle) runs
  bool use_ikt = true;
  bool type_aware = true;
  unsigned log2_buckets = 8;      ///< THT N (§IV-B)
  unsigned bucket_capacity = 128; ///< THT M (§IV-B)
  bool verify_full_inputs = false;///< §III-E rejected original approach
  EvictionPolicy eviction = EvictionPolicy::Fifo;
  bool tracing = false;
  std::uint64_t shuffle_seed = 0x5eedULL;
  /// Submit-path tuning (PR 4): dependence-tracker shard count (log2) and
  /// task-arena slab size, plumbed into every app's Runtime via
  /// runtime_config(). Defaults match RuntimeConfig.
  unsigned graph_log2_shards = 4;
  unsigned arena_block_tasks = 256;
  /// Helping barrier (PR 5): the thread at a taskwait drains/steals tasks
  /// instead of parking. Off = the paper's parking barrier
  /// (`atm_run --taskwait=park`), kept for wave-boundary A/B runs.
  bool help_taskwait = true;

  // --- tolerance-quantized keys (src/atm/tolerance.hpp) ---
  /// Relative / absolute key-quantization epsilons (0 = exact keys) and the
  /// neighbor-probe count, forwarded to AtmConfig (`atm_run --tolerance`).
  double tolerance_rel = 0.0;
  double tolerance_abs = 0.0;
  unsigned tolerance_probes = 0;
  /// Per-iteration relative input jitter for the noisy-sensor demos
  /// (blackscholes and jacobi re-read their inputs each sweep with
  /// deterministic noise of this amplitude; other apps ignore it). Exact
  /// keys see ~0% reuse under any nonzero noise — the workload tolerance
  /// matching exists for.
  double input_noise = 0.0;

  // --- tiered memo store (src/store/) ---
  bool l2_enabled = false;        ///< byte-budgeted capacity tier behind the THT
  std::size_t l2_budget_bytes = std::size_t{64} << 20;
  unsigned l2_log2_shards = 4;
  bool l2_compress = false;       ///< RLE-compress demoted snapshots
  /// Warm-start: load this store snapshot before the run (empty = cold).
  std::string load_store_path{};
  /// Persist the trained store to this path after the run (empty = don't).
  std::string save_store_path{};

  // --- observability (src/obs/) ---
  /// Register the runtime/engine metric collectors on the unified registry.
  /// Off skips registration entirely (the A/B baseline for the overhead
  /// gate); the raw subsystem atomics still count either way.
  bool metrics = true;
  /// Background sampler period; 0 = no sampler thread. The sampled series
  /// lands in RunResult::metrics_series.
  std::uint64_t metrics_interval_ms = 0;
  /// Emit one stderr line per sampler tick (`atm_run --stats-interval`).
  bool metrics_live = false;
  /// Per-task-type execution-latency histograms (task.<name>.exec_ns).
  /// Opt-in: adds two clock reads around every task body.
  bool profile_tasks = false;
  /// Cap on the engine's per-hit reuse-creator log (AtmConfig::reuse_log_cap).
  std::size_t reuse_log_cap = std::size_t{1} << 20;
  /// Cap on distinct task-type ids that get per-type metric profiles
  /// (task.<name>.exec_ns / atm.type.<name>.*). Sets both
  /// rt::RuntimeConfig::profile_max_types and AtmConfig::profile_max_types
  /// (`atm_run --profile-types=N`); types with id >= the cap run unprofiled.
  std::size_t profile_max_types = 256;

  /// Best-effort NUMA placement for runtime slabs (`atm_run --numa`):
  /// task-arena blocks and dependence-tracker shards. Silently a no-op on
  /// single-node hosts; results are identical with any policy (PR 10).
  NumaPolicy numa = NumaPolicy::Off;
};

/// Everything a run reports back to the harnesses.
struct RunResult {
  double wall_seconds = 0.0;
  /// Flattened program output (prices / stencil matrix / centers / LU),
  /// the object the paper measures correctness on (Table I last column).
  std::vector<double> output;
  /// Eq. 4-style self-contained error; < 0 when the app has none and the
  /// harness should compare outputs against a reference run via Eq. 3.
  double app_specific_error = -1.0;

  rt::RuntimeCounters counters;
  AtmStatsSnapshot atm;
  double final_p = 0.0;             ///< memoized type's p after the run
  TrainingPhase final_phase = TrainingPhase::Steady;
  std::vector<double> p_history;    ///< p steps visited during training
  std::size_t blacklist_size = 0;

  std::size_t app_memory_bytes = 0; ///< application footprint (Table III denominator)
  std::size_t atm_memory_bytes = 0; ///< ATM structures (Table III numerator)
  std::size_t task_input_bytes = 0; ///< memoized task's input size (Table I)

  /// Scheduler observability (adaptive inbox batch cap, steal misses) read
  /// from the runtime before teardown.
  rt::SchedulerStats sched;

  /// Trace data (only when RunConfig::tracing): per-lane summaries etc. are
  /// read from the runtime before teardown and stored here.
  std::vector<rt::LaneSummary> lane_summaries;
  std::vector<rt::DepthSample> depth_samples;
  std::string ascii_timeline;
  /// Raw per-lane event timelines (only when RunConfig::tracing), copied
  /// out so the harness can export them (obs::chrome_trace_json) after the
  /// runtime is gone. trace_master_lane indexes the master thread's lane.
  std::vector<std::vector<rt::TraceEvent>> trace_lanes;
  std::size_t trace_master_lane = 0;

  /// Unified-registry snapshot taken at the end of the run (empty when
  /// RunConfig::metrics is off — nothing was registered).
  obs::RegistrySnapshot metrics;
  /// Background sampler series (empty unless RunConfig::metrics_interval_ms).
  obs::MetricsSampler::Series metrics_series;

  /// Reuse fraction: memoized tasks / total tasks of the memoized type
  /// (the paper's "Reuse" metric, §IV-C).
  [[nodiscard]] double reuse_fraction() const noexcept {
    const auto total = counters.executed + counters.memoized + counters.deferred;
    if (total == 0) return 0.0;
    return static_cast<double>(counters.memoized + counters.deferred) /
           static_cast<double>(total);
  }
};

/// Interface implemented by each benchmark.
class App {
 public:
  virtual ~App() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::string domain() const = 0;
  /// Table I columns.
  [[nodiscard]] virtual std::string program_input_desc() const = 0;
  [[nodiscard]] virtual std::string task_input_types() const = 0;
  [[nodiscard]] virtual std::string memoized_task_type() const = 0;
  [[nodiscard]] virtual std::string correctness_target() const = 0;
  /// Table II parameters for the memoized type.
  [[nodiscard]] virtual rt::AtmParams atm_params() const = 0;

  /// Recommended relative key-quantization epsilon for this workload
  /// (`atm_run --tolerance` with no value). 0 = no preset: the app's
  /// outputs are too input-sensitive for tolerance matching to be safe.
  [[nodiscard]] virtual double tolerance_preset() const { return 0.0; }

  /// Output-error ceiling the tolerance preset is expected to hold
  /// (measured max relative output error vs an exact baseline under the
  /// noisy-input demos; asserted by the acceptance tests).
  [[nodiscard]] virtual double tolerance_error_bound() const { return 0.05; }

  /// Execute the full benchmark under `config` (fresh state every call).
  [[nodiscard]] virtual RunResult run(const RunConfig& config) const = 0;

  /// Whole-program Euclidean relative error (Eq. 3) between a reference
  /// (mode Off) output and this run's output. LU overrides this to use its
  /// app-specific residual (Eq. 4).
  [[nodiscard]] virtual double program_error(const RunResult& reference,
                                             const RunResult& result) const;
};

/// All six paper benchmarks at the given scale, Table I order.
[[nodiscard]] std::vector<std::unique_ptr<App>> make_all_apps(Preset preset);

/// One benchmark by name ("blackscholes", "gauss-seidel", "jacobi",
/// "kmeans", "lu", "swaptions"); nullptr if unknown.
[[nodiscard]] std::unique_ptr<App> make_app(const std::string& name, Preset preset);

/// Shared helper: build an engine for `config` (nullptr when mode == Off).
[[nodiscard]] std::unique_ptr<AtmEngine> make_engine(const RunConfig& config);

/// Shared helper: the RuntimeConfig every app runs under — one place to
/// plumb threads/sched/tracing plus the PR-4 submit-path tuning knobs.
[[nodiscard]] rt::RuntimeConfig runtime_config(const RunConfig& config);

/// Shared helper: fill the generic parts of a RunResult from a finished
/// runtime/engine pair (counters, ATM stats, memory, traces).
void finalize_result(RunResult& result, rt::Runtime& runtime, AtmEngine* engine,
                     const rt::TaskType* memoized_type, const RunConfig& config);

/// The preset selected by the ATM_SCALE / ATM_PRESET environment variables
/// (default Bench; "paper" => Paper, "test" => Test).
[[nodiscard]] Preset preset_from_env();

}  // namespace atm::apps

#include "apps/kmeans.hpp"

#include <cmath>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"

namespace atm::apps {

KmeansParams KmeansParams::preset(Preset preset) {
  KmeansParams p;
  switch (preset) {
    case Preset::Test:
      p.num_points = 4'096;
      p.dims = 8;
      p.clusters = 4;
      p.block_points = 512;
      p.iterations = 8;
      break;
    case Preset::Bench:
      break;  // defaults
    case Preset::Paper:
      p.num_points = 2'000'000;
      p.dims = 100;
      p.clusters = 16;
      p.block_points = 512;
      p.iterations = 40;
      break;
  }
  return p;
}

std::string KmeansApp::program_input_desc() const {
  std::ostringstream os;
  os << params_.num_points << " points, " << params_.clusters << " centers, "
     << params_.dims << " dimensions, " << params_.iterations << " iterations";
  return os.str();
}

namespace {

/// Assign every point of a block to its nearest center; accumulate the
/// block's per-cluster coordinate sums and counts (the memoized task body).
void assign_block(const float* points, std::size_t npts, const float* centers,
                  std::size_t k, std::size_t d, float* sums, std::int32_t* counts) noexcept {
  for (std::size_t c = 0; c < k * d; ++c) sums[c] = 0.0f;
  for (std::size_t c = 0; c < k; ++c) counts[c] = 0;
  for (std::size_t i = 0; i < npts; ++i) {
    const float* pt = points + i * d;
    std::size_t best = 0;
    float best_dist = HUGE_VALF;
    for (std::size_t c = 0; c < k; ++c) {
      const float* ctr = centers + c * d;
      float dist = 0.0f;
      for (std::size_t j = 0; j < d; ++j) {
        const float delta = pt[j] - ctr[j];
        dist += delta * delta;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    float* sum = sums + best * d;
    for (std::size_t j = 0; j < d; ++j) sum[j] += pt[j];
    ++counts[best];
  }
}

}  // namespace

RunResult KmeansApp::run(const RunConfig& config) const {
  const std::size_t n = params_.num_points;
  const std::size_t d = params_.dims;
  const std::size_t k = params_.clusters;
  const std::size_t bp = params_.block_points;
  const std::size_t num_blocks = (n + bp - 1) / bp;

  AlignedBuffer<float> points(n * d);
  AlignedBuffer<float> centers(k * d);
  AlignedBuffer<float> partial_sums(num_blocks * k * d);
  AlignedBuffer<std::int32_t> partial_counts(num_blocks * k);

  {
    // Points scattered around k well-separated ground-truth centroids.
    Rng rng(params_.seed);
    std::vector<float> truth(k * d);
    for (auto& v : truth) v = rng.next_float(-50.0f, 50.0f);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = static_cast<std::size_t>(rng.next_below(k));
      for (std::size_t j = 0; j < d; ++j) {
        points[i * d + j] = truth[c * d + j] + rng.next_float(-2.0f, 2.0f);
      }
    }
    // Initial centers: the first k points (deterministic).
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t j = 0; j < d; ++j) centers[c * d + j] = points[c * d + j];
    }
  }

  auto engine = make_engine(config);
  rt::Runtime runtime(runtime_config(config));
  if (engine != nullptr) runtime.attach_memoizer(engine.get());

  const auto* assign_type = runtime.register_type(
      {.name = "kmeans_calculate", .memoizable = true, .atm = atm_params()});
  const auto* update_type =
      runtime.register_type({.name = "kmeans_update_centers", .memoizable = false, .atm = {}});

  float* ctr = centers.data();
  float* sums_base = partial_sums.data();
  std::int32_t* counts_base = partial_counts.data();

  Timer timer;
  for (unsigned iter = 0; iter < params_.iterations; ++iter) {
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const std::size_t begin = b * bp;
      const std::size_t npts = std::min(bp, n - begin);
      const float* pts = points.data() + begin * d;
      float* sums = sums_base + b * k * d;
      std::int32_t* counts = counts_base + b * k;
      runtime.submit(
          assign_type,
          [pts, npts, ctr, k, d, sums, counts] {
            assign_block(pts, npts, ctr, k, d, sums, counts);
          },
          {rt::in(pts, npts * d), rt::in(static_cast<const float*>(ctr), k * d),
           rt::out(sums, k * d), rt::out(counts, k)});
    }
    // Single reduction task recomputing the centers (not memoized).
    runtime.submit(
        update_type,
        [ctr, sums_base, counts_base, num_blocks, k, d] {
          for (std::size_t c = 0; c < k; ++c) {
            std::int64_t count = 0;
            for (std::size_t b = 0; b < num_blocks; ++b) count += counts_base[b * k + c];
            if (count == 0) continue;  // keep an empty cluster's center
            for (std::size_t j = 0; j < d; ++j) {
              double sum = 0.0;
              for (std::size_t b = 0; b < num_blocks; ++b) {
                sum += static_cast<double>(sums_base[(b * k + c) * d + j]);
              }
              ctr[c * d + j] = static_cast<float>(sum / static_cast<double>(count));
            }
          }
        },
        {rt::in(static_cast<const float*>(sums_base), num_blocks * k * d),
         rt::in(static_cast<const std::int32_t*>(counts_base), num_blocks * k),
         rt::inout(ctr, k * d)});
    runtime.taskwait();
  }

  RunResult result;
  result.wall_seconds = timer.elapsed_s();
  result.output.assign(centers.begin(), centers.end());
  result.app_memory_bytes = points.size_bytes() + centers.size_bytes() +
                            partial_sums.size_bytes() + partial_counts.size_bytes();
  result.task_input_bytes = bp * d * sizeof(float) + k * d * sizeof(float);
  finalize_result(result, runtime, engine.get(), assign_type, config);
  return result;
}

}  // namespace atm::apps

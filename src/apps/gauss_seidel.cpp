#include "apps/gauss_seidel.hpp"

#include <sstream>

#include "common/timing.hpp"

namespace atm::apps {

std::string GaussSeidelApp::program_input_desc() const {
  std::ostringstream os;
  os << params_.grid_blocks << "x" << params_.grid_blocks << " blocks of "
     << params_.block_dim << "x" << params_.block_dim << " elements, "
     << params_.iterations << " iterations";
  return os.str();
}

RunResult GaussSeidelApp::run(const RunConfig& config) const {
  const std::size_t gb = params_.grid_blocks;
  const std::size_t bd = params_.block_dim;

  BlockedGrid grid(gb, bd);
  grid.initialize(params_.seed, params_.init_patterns, params_.wall_temp);

  auto engine = make_engine(config);
  rt::Runtime runtime(runtime_config(config));
  if (engine != nullptr) runtime.attach_memoizer(engine.get());

  const auto* stencil_type = runtime.register_type(
      {.name = "stencilComputation", .memoizable = true, .atm = atm_params()});
  const auto* copy_type = runtime.register_type({.name = "copy_edge", .memoizable = false, .atm = {}});

  Timer timer;
  for (unsigned iter = 0; iter < params_.iterations; ++iter) {
    for (std::size_t bi = 0; bi < gb; ++bi) {
      for (std::size_t bj = 0; bj < gb; ++bj) {
        // Halo copy-tasks from the four existing neighbors. Submission
        // order realizes Gauss-Seidel: top/left neighbors were already
        // updated this iteration (their stencil task precedes this copy in
        // program order), bottom/right still carry last iteration's values.
        if (bi > 0) {
          const float* nb = grid.block(bi - 1, bj);
          float* halo = grid.halo_top(bi, bj);
          runtime.submit(copy_type, [nb, halo, bd] { copy_edge_row(nb, bd - 1, halo, bd); },
                         {rt::in(nb, bd * bd), rt::out(halo, bd)});
        }
        if (bi + 1 < gb) {
          const float* nb = grid.block(bi + 1, bj);
          float* halo = grid.halo_bottom(bi, bj);
          runtime.submit(copy_type, [nb, halo, bd] { copy_edge_row(nb, 0, halo, bd); },
                         {rt::in(nb, bd * bd), rt::out(halo, bd)});
        }
        if (bj > 0) {
          const float* nb = grid.block(bi, bj - 1);
          float* halo = grid.halo_left(bi, bj);
          runtime.submit(copy_type, [nb, halo, bd] { copy_edge_col(nb, bd - 1, halo, bd); },
                         {rt::in(nb, bd * bd), rt::out(halo, bd)});
        }
        if (bj + 1 < gb) {
          const float* nb = grid.block(bi, bj + 1);
          float* halo = grid.halo_right(bi, bj);
          runtime.submit(copy_type, [nb, halo, bd] { copy_edge_col(nb, 0, halo, bd); },
                         {rt::in(nb, bd * bd), rt::out(halo, bd)});
        }

        float* blk = grid.block(bi, bj);
        const float* top = grid.halo_top(bi, bj);
        const float* bottom = grid.halo_bottom(bi, bj);
        const float* left = grid.halo_left(bi, bj);
        const float* right = grid.halo_right(bi, bj);
        const unsigned sweeps = params_.inner_sweeps;
        runtime.submit(
            stencil_type,
            [blk, top, bottom, left, right, bd, sweeps] {
              stencil_sweep_inplace(blk, top, bottom, left, right, bd, sweeps);
            },
            {rt::inout(blk, bd * bd), rt::in(top, bd), rt::in(bottom, bd),
             rt::in(left, bd), rt::in(right, bd)});
      }
    }
  }
  runtime.taskwait();

  RunResult result;
  result.wall_seconds = timer.elapsed_s();
  result.output = grid.flatten();
  result.app_memory_bytes = grid.memory_bytes();
  result.task_input_bytes = bd * bd * sizeof(float) + 4 * bd * sizeof(float);
  finalize_result(result, runtime, engine.get(), stencil_type, config);
  return result;
}

}  // namespace atm::apps

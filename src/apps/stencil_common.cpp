#include "apps/stencil_common.hpp"

#include "common/rng.hpp"

namespace atm::apps {

StencilParams StencilParams::preset(Preset preset) {
  StencilParams p;
  switch (preset) {
    case Preset::Test:
      p.grid_blocks = 4;
      p.block_dim = 24;
      p.iterations = 4;
      p.l_training = 12;
      break;
    case Preset::Bench:
      p.grid_blocks = 12;
      p.block_dim = 96;
      p.iterations = 12;
      break;
    case Preset::Paper:
      p.grid_blocks = 32;
      p.block_dim = 1024;
      p.iterations = 20;
      p.l_training = 100;
      break;
  }
  return p;
}

BlockedGrid::BlockedGrid(std::size_t grid_blocks, std::size_t block_dim)
    : gb_(grid_blocks),
      bd_(block_dim),
      cells_(grid_blocks * grid_blocks * block_dim * block_dim),
      halos_(grid_blocks * grid_blocks * 4 * block_dim) {}

void BlockedGrid::initialize(std::uint64_t seed, std::size_t patterns, float wall_temp) {
  if (patterns == 0) patterns = 1;
  // A small pool of random block patterns (quantized, like a saturated RNG)
  // assigned cyclically: distinct blocks share identical initial contents,
  // the paper's initialization redundancy.
  // Patterns keep full float precision so that *different* blocks differ in
  // nearly every byte — the property that makes sampled hash keys
  // discriminating while duplicate patterns still provide real reuse.
  std::vector<std::vector<float>> pool(patterns);
  for (std::size_t pi = 0; pi < patterns; ++pi) {
    Rng rng(splitmix64(seed ^ (pi * 0x9e37ULL)));
    pool[pi].resize(bd_ * bd_);
    for (auto& v : pool[pi]) v = rng.next_float(0.0f, 4.0f);
  }
  for (std::size_t bi = 0; bi < gb_; ++bi) {
    for (std::size_t bj = 0; bj < gb_; ++bj) {
      const auto& pattern = pool[(bi * gb_ + bj) % patterns];
      float* dst = block(bi, bj);
      for (std::size_t i = 0; i < bd_ * bd_; ++i) dst[i] = pattern[i];
    }
  }
  // Wall halos: fixed emission temperature; interior halos start at zero
  // and are refreshed by the copy tasks.
  for (std::size_t bi = 0; bi < gb_; ++bi) {
    for (std::size_t bj = 0; bj < gb_; ++bj) {
      for (std::size_t k = 0; k < bd_; ++k) {
        halo_top(bi, bj)[k] = bi == 0 ? wall_temp : 0.0f;
        halo_bottom(bi, bj)[k] = bi == gb_ - 1 ? wall_temp : 0.0f;
        halo_left(bi, bj)[k] = bj == 0 ? wall_temp : 0.0f;
        halo_right(bi, bj)[k] = bj == gb_ - 1 ? wall_temp : 0.0f;
      }
    }
  }
}

void BlockedGrid::perturb_from(const BlockedGrid& base, std::uint64_t seed,
                               double noise) {
  const auto amp = static_cast<float>(noise);
  for (std::size_t bi = 0; bi < gb_; ++bi) {
    for (std::size_t bj = 0; bj < gb_; ++bj) {
      Rng rng(splitmix64(seed ^ ((bi * gb_ + bj) * 0x9e3779b97f4a7c15ull)));
      const float* s = base.block(bi, bj);
      float* d = block(bi, bj);
      for (std::size_t i = 0; i < bd_ * bd_; ++i) {
        d[i] = s[i] * (1.0f + rng.next_float(-amp, amp));
      }
    }
  }
}

std::vector<double> BlockedGrid::flatten() const {
  std::vector<double> out(gb_ * bd_ * gb_ * bd_);
  const std::size_t n = gb_ * bd_;
  for (std::size_t bi = 0; bi < gb_; ++bi) {
    for (std::size_t bj = 0; bj < gb_; ++bj) {
      const float* b = block(bi, bj);
      for (std::size_t i = 0; i < bd_; ++i) {
        for (std::size_t j = 0; j < bd_; ++j) {
          out[(bi * bd_ + i) * n + (bj * bd_ + j)] = static_cast<double>(b[i * bd_ + j]);
        }
      }
    }
  }
  return out;
}

namespace {
void sweep_once_inplace(float* block, const float* top, const float* bottom,
                        const float* left, const float* right, std::size_t bd) noexcept {
  for (std::size_t i = 0; i < bd; ++i) {
    for (std::size_t j = 0; j < bd; ++j) {
      const float north = i == 0 ? top[j] : block[(i - 1) * bd + j];
      const float south = i == bd - 1 ? bottom[j] : block[(i + 1) * bd + j];
      const float west = j == 0 ? left[i] : block[i * bd + j - 1];
      const float east = j == bd - 1 ? right[i] : block[i * bd + j + 1];
      block[i * bd + j] = 0.25f * (north + south + west + east);
    }
  }
}
}  // namespace

void stencil_sweep_inplace(float* block, const float* top, const float* bottom,
                           const float* left, const float* right, std::size_t bd,
                           unsigned sweeps) noexcept {
  for (unsigned s = 0; s < (sweeps != 0 ? sweeps : 1); ++s) {
    sweep_once_inplace(block, top, bottom, left, right, bd);
  }
}

void stencil_sweep_jacobi(const float* src, const float* top, const float* bottom,
                          const float* left, const float* right, float* dst,
                          std::size_t bd, unsigned sweeps) noexcept {
  for (std::size_t i = 0; i < bd; ++i) {
    for (std::size_t j = 0; j < bd; ++j) {
      const float north = i == 0 ? top[j] : src[(i - 1) * bd + j];
      const float south = i == bd - 1 ? bottom[j] : src[(i + 1) * bd + j];
      const float west = j == 0 ? left[i] : src[i * bd + j - 1];
      const float east = j == bd - 1 ? right[i] : src[i * bd + j + 1];
      dst[i * bd + j] = 0.25f * (north + south + west + east);
    }
  }
  for (unsigned s = 1; s < sweeps; ++s) {
    sweep_once_inplace(dst, top, bottom, left, right, bd);
  }
}

void copy_edge_row(const float* block, std::size_t row, float* halo,
                   std::size_t bd) noexcept {
  const float* src = block + row * bd;
  for (std::size_t j = 0; j < bd; ++j) halo[j] = src[j];
}

void copy_edge_col(const float* block, std::size_t col, float* halo,
                   std::size_t bd) noexcept {
  for (std::size_t i = 0; i < bd; ++i) halo[i] = block[i * bd + col];
}

}  // namespace atm::apps

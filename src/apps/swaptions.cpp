#include "apps/swaptions.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"

namespace atm::apps {

SwaptionsParams SwaptionsParams::preset(Preset preset) {
  SwaptionsParams p;
  switch (preset) {
    case Preset::Test:
      p.num_swaptions = 48;
      p.exact_dupes = 4;
      p.perturbed = 12;
      p.trials = 256;
      p.steps = 16;
      p.l_training = 8;
      break;
    case Preset::Bench:
      break;  // defaults
    case Preset::Paper:
      p.num_swaptions = 512;  // "we increase the size ... from 128 to 512"
      p.exact_dupes = 36;
      p.perturbed = 100;
      p.trials = 10'000;
      p.steps = 55;
      break;
  }
  return p;
}

std::string SwaptionsApp::program_input_desc() const {
  std::ostringstream os;
  os << params_.num_swaptions << " swaptions (" << params_.exact_dupes
     << " exact dupes, " << params_.perturbed << " near-dupes), " << params_.trials
     << " MC trials";
  return os.str();
}

namespace {
// Record layout (47 doubles): [0]=strike, [1]=maturity, [2]=tenor(payments),
// [3]=notional, [4]=payer flag, [5..36]=forward curve (32), [37..42]=vol
// curve (6), [43..46]=reserved model params.
constexpr std::size_t kStrike = 0;
constexpr std::size_t kMaturity = 1;
constexpr std::size_t kTenor = 2;
constexpr std::size_t kNotional = 3;
constexpr std::size_t kPayer = 4;
constexpr std::size_t kFwdCurve = 5;
constexpr std::size_t kFwdCurveLen = 32;
constexpr std::size_t kVolCurve = 37;
constexpr std::size_t kVolCurveLen = 6;
}  // namespace

double price_swaption(const double* record, std::uint64_t seed, std::size_t trials,
                      std::size_t steps) noexcept {
  const double strike = record[kStrike];
  const double maturity = record[kMaturity];
  const auto tenor = static_cast<std::size_t>(record[kTenor]);
  const double notional = record[kNotional];
  const bool payer = record[kPayer] > 0.5;
  const double* fwd = record + kFwdCurve;
  const double* vol = record + kVolCurve;

  const double dt = maturity / static_cast<double>(steps);
  Rng rng(seed);
  double payoff_sum = 0.0;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    // Evolve a compact forward-rate state under lognormal HJM-style
    // dynamics with a 2-factor volatility mix.
    double short_rate = fwd[0];
    double discount = 1.0;
    for (std::size_t s = 0; s < steps; ++s) {
      discount *= std::exp(-short_rate * dt);
      const double sigma1 = vol[0] + vol[1] * short_rate;
      const double sigma2 = vol[2];
      // Two pseudo-Gaussian shocks from sums of uniforms (Irwin-Hall(4)).
      const double z1 = (rng.next_double() + rng.next_double() + rng.next_double() +
                         rng.next_double() - 2.0) *
                        1.7320508;
      const double z2 = (rng.next_double() + rng.next_double() + rng.next_double() +
                         rng.next_double() - 2.0) *
                        1.7320508;
      const double drift = 0.5 * (sigma1 * sigma1 + sigma2 * sigma2);
      short_rate *= std::exp((drift - 0.5 * sigma1 * sigma1 - 0.5 * sigma2 * sigma2) * dt +
                             std::sqrt(dt) * (sigma1 * z1 + sigma2 * z2) * 0.1);
      // Mean-revert toward the forward curve.
      const std::size_t curve_idx =
          std::min(kFwdCurveLen - 1, (s * kFwdCurveLen) / (steps ? steps : 1));
      short_rate += 0.05 * (fwd[curve_idx] - short_rate) * dt;
    }
    // Value the underlying swap at maturity: fixed leg at `strike` vs the
    // floating curve seen from the simulated terminal short rate.
    double swap_value = 0.0;
    double annuity_df = discount;
    for (std::size_t pay = 0; pay < tenor; ++pay) {
      const std::size_t curve_idx = std::min(kFwdCurveLen - 1, pay);
      const double floating = 0.5 * (short_rate + fwd[curve_idx]);
      annuity_df *= std::exp(-floating * 1.0);  // yearly payments
      swap_value += (floating - strike) * annuity_df;
    }
    if (!payer) swap_value = -swap_value;
    payoff_sum += swap_value > 0.0 ? swap_value : 0.0;
  }
  return notional * payoff_sum / static_cast<double>(trials);
}

RunResult SwaptionsApp::run(const RunConfig& config) const {
  const std::size_t n = params_.num_swaptions;
  const std::size_t dupes = std::min(params_.exact_dupes, n / 2);
  const std::size_t perturbed = std::min(params_.perturbed, n / 2);
  const std::size_t uniques = n - dupes - perturbed;

  AlignedBuffer<double> records(n * kSwaptionRecordDoubles);
  AlignedBuffer<std::uint64_t> seeds(n);
  AlignedBuffer<double> prices(n);

  {
    Rng rng(params_.seed);
    auto fill_unique = [&](double* r, std::uint64_t* seed) {
      r[kStrike] = rng.next_double(0.02, 0.12);
      r[kMaturity] = rng.next_double(0.5, 10.0);
      r[kTenor] = static_cast<double>(2 + rng.next_below(18));
      r[kNotional] = 100.0;
      r[kPayer] = rng.next_below(2) != 0 ? 1.0 : 0.0;
      double level = rng.next_double(0.01, 0.09);
      for (std::size_t i = 0; i < kFwdCurveLen; ++i) {
        level += rng.next_double(-0.002, 0.003);
        r[kFwdCurve + i] = level;
      }
      for (std::size_t i = 0; i < kVolCurveLen; ++i) {
        r[kVolCurve + i] = rng.next_double(0.05, 0.35);
      }
      for (std::size_t i = kVolCurve + kVolCurveLen; i < kSwaptionRecordDoubles; ++i) {
        r[i] = rng.next_double(0.0, 1.0);
      }
      *seed = rng.next_u64();
    };

    for (std::size_t i = 0; i < uniques; ++i) {
      fill_unique(records.data() + i * kSwaptionRecordDoubles, &seeds[i]);
    }
    // Exact duplicates (the PARSEC native input replicates records).
    for (std::size_t i = 0; i < dupes; ++i) {
      const std::size_t base = rng.next_below(uniques);
      const std::size_t idx = uniques + i;
      for (std::size_t j = 0; j < kSwaptionRecordDoubles; ++j) {
        records[idx * kSwaptionRecordDoubles + j] =
            records[base * kSwaptionRecordDoubles + j];
      }
      seeds[idx] = seeds[base];
    }
    // Near-duplicates: relative noise ~1e-12 touches only the low-order
    // mantissa bytes, so a type-aware sampled key at p <= 50% cannot see it.
    for (std::size_t i = 0; i < perturbed; ++i) {
      const std::size_t base = rng.next_below(uniques);
      const std::size_t idx = uniques + dupes + i;
      for (std::size_t j = 0; j < kSwaptionRecordDoubles; ++j) {
        double v = records[base * kSwaptionRecordDoubles + j];
        if (j != kTenor && j != kPayer) {
          v *= 1.0 + rng.next_double(-1e-12, 1e-12);
        }
        records[idx * kSwaptionRecordDoubles + j] = v;
      }
      seeds[idx] = seeds[base];
    }
  }

  auto engine = make_engine(config);
  rt::Runtime runtime(runtime_config(config));
  if (engine != nullptr) runtime.attach_memoizer(engine.get());

  const auto* swaption_type = runtime.register_type(
      {.name = "HJM_Swaption_Blocking", .memoizable = true, .atm = atm_params()});

  const std::size_t trials = params_.trials;
  const std::size_t steps = params_.steps;

  Timer timer;
  for (std::size_t i = 0; i < n; ++i) {
    const double* record = records.data() + i * kSwaptionRecordDoubles;
    const std::uint64_t* seed_ptr = seeds.data() + i;
    double* out = prices.data() + i;
    runtime.submit(
        swaption_type,
        [record, seed_ptr, out, trials, steps] {
          *out = price_swaption(record, *seed_ptr, trials, steps);
        },
        {rt::in(record, kSwaptionRecordDoubles), rt::in(seed_ptr, 1), rt::out(out, 1)});
  }
  runtime.taskwait();

  RunResult result;
  result.wall_seconds = timer.elapsed_s();
  result.output.assign(prices.begin(), prices.end());
  result.app_memory_bytes =
      records.size_bytes() + seeds.size_bytes() + prices.size_bytes();
  result.task_input_bytes = kSwaptionRecordDoubles * sizeof(double) + sizeof(std::uint64_t);
  finalize_result(result, runtime, engine.get(), swaption_type, config);
  return result;
}

}  // namespace atm::apps

// Jacobi 2D 5-point stencil solver (paper Table I, §IV-A): same workload as
// Gauss-Seidel but ping-pong buffered — no dependences between tasks of one
// iteration, a barrier at the end of each (the paper's description). The
// stencil task type is memoized; Jacobi is the benchmark whose chaotic
// output pointers exercise Dynamic ATM's blacklist (§III-D).
#pragma once

#include "apps/stencil_common.hpp"

namespace atm::apps {

class JacobiApp final : public App {
 public:
  explicit JacobiApp(StencilParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "Jacobi"; }
  [[nodiscard]] std::string domain() const override { return "stencil-computation"; }
  [[nodiscard]] std::string program_input_desc() const override;
  [[nodiscard]] std::string task_input_types() const override { return "float"; }
  [[nodiscard]] std::string memoized_task_type() const override {
    return "stencilComputation";
  }
  [[nodiscard]] std::string correctness_target() const override {
    return "Stencil Matrix";
  }
  [[nodiscard]] rt::AtmParams atm_params() const override {
    return {.l_training = params_.l_training, .tau_max = 0.01};  // Table II
  }

  /// A 1e-3 relative cell on the smooth diffusion field keeps the averaged
  /// output well under the default 5% error ceiling.
  [[nodiscard]] double tolerance_preset() const override { return 1e-3; }

  [[nodiscard]] RunResult run(const RunConfig& config) const override;

  [[nodiscard]] const StencilParams& params() const noexcept { return params_; }

 private:
  StencilParams params_;
};

}  // namespace atm::apps

#include "apps/jacobi.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "common/rng.hpp"
#include "common/timing.hpp"

namespace atm::apps {

std::string JacobiApp::program_input_desc() const {
  std::ostringstream os;
  os << params_.grid_blocks << "x" << params_.grid_blocks << " blocks of "
     << params_.block_dim << "x" << params_.block_dim << " elements, "
     << params_.iterations << " iterations";
  return os.str();
}

RunResult JacobiApp::run(const RunConfig& config) const {
  const std::size_t gb = params_.grid_blocks;
  const std::size_t bd = params_.block_dim;

  BlockedGrid grid_a(gb, bd);
  BlockedGrid grid_b(gb, bd);
  grid_a.initialize(params_.seed, params_.init_patterns, params_.wall_temp);
  grid_b.initialize(params_.seed, params_.init_patterns, params_.wall_temp);

  // Noisy-sensor frame mode (tolerance-matching demo): each iteration
  // re-reads the *same* physical frame with fresh per-cell jitter instead of
  // advancing the ping-pong diffusion — a sensor re-sampling a scene. Exact
  // keys never repeat across frames; quantized keys match both across
  // frames and across blocks that share an init pattern. The jitter is
  // deterministic in (seed, iteration), so a mode-Off run is an exact
  // baseline for output-error measurement.
  const double noise = config.input_noise;
  std::unique_ptr<BlockedGrid> base;
  if (noise > 0.0) {
    base = std::make_unique<BlockedGrid>(gb, bd);
    base->initialize(params_.seed, params_.init_patterns, params_.wall_temp);
  }

  auto engine = make_engine(config);
  rt::Runtime runtime(runtime_config(config));
  if (engine != nullptr) runtime.attach_memoizer(engine.get());

  const auto* stencil_type = runtime.register_type(
      {.name = "stencilComputation", .memoizable = true, .atm = atm_params()});
  const auto* copy_type = runtime.register_type({.name = "copy_edge", .memoizable = false, .atm = {}});

  BlockedGrid* src = &grid_a;
  BlockedGrid* dst = &grid_b;

  Timer timer;
  for (unsigned iter = 0; iter < params_.iterations; ++iter) {
    if (noise > 0.0) {
      // Safe to mutate: the previous wave drained at the taskwait below.
      src->perturb_from(*base, splitmix64(params_.seed ^ (0xF4A3Eull + iter)), noise);
    }
    for (std::size_t bi = 0; bi < gb; ++bi) {
      for (std::size_t bj = 0; bj < gb; ++bj) {
        // Halos are read from src (last iteration's values everywhere):
        // Jacobi has no intra-iteration dependences.
        if (bi > 0) {
          const float* nb = src->block(bi - 1, bj);
          float* halo = src->halo_top(bi, bj);
          runtime.submit(copy_type, [nb, halo, bd] { copy_edge_row(nb, bd - 1, halo, bd); },
                         {rt::in(nb, bd * bd), rt::out(halo, bd)});
        }
        if (bi + 1 < gb) {
          const float* nb = src->block(bi + 1, bj);
          float* halo = src->halo_bottom(bi, bj);
          runtime.submit(copy_type, [nb, halo, bd] { copy_edge_row(nb, 0, halo, bd); },
                         {rt::in(nb, bd * bd), rt::out(halo, bd)});
        }
        if (bj > 0) {
          const float* nb = src->block(bi, bj - 1);
          float* halo = src->halo_left(bi, bj);
          runtime.submit(copy_type, [nb, halo, bd] { copy_edge_col(nb, bd - 1, halo, bd); },
                         {rt::in(nb, bd * bd), rt::out(halo, bd)});
        }
        if (bj + 1 < gb) {
          const float* nb = src->block(bi, bj + 1);
          float* halo = src->halo_right(bi, bj);
          runtime.submit(copy_type, [nb, halo, bd] { copy_edge_col(nb, 0, halo, bd); },
                         {rt::in(nb, bd * bd), rt::out(halo, bd)});
        }

        const float* sblk = src->block(bi, bj);
        float* dblk = dst->block(bi, bj);
        const float* top = src->halo_top(bi, bj);
        const float* bottom = src->halo_bottom(bi, bj);
        const float* left = src->halo_left(bi, bj);
        const float* right = src->halo_right(bi, bj);
        const unsigned sweeps = params_.inner_sweeps;
        runtime.submit(
            stencil_type,
            [sblk, top, bottom, left, right, dblk, bd, sweeps] {
              stencil_sweep_jacobi(sblk, top, bottom, left, right, dblk, bd, sweeps);
            },
            {rt::in(sblk, bd * bd), rt::in(top, bd), rt::in(bottom, bd),
             rt::in(left, bd), rt::in(right, bd), rt::out(dblk, bd * bd)});
      }
    }
    // The paper's Jacobi synchronizes at the end of each iteration.
    runtime.taskwait();
    // Frame mode never advances the diffusion: src is re-perturbed from the
    // base frame next iteration, dst keeps the latest smoothed result.
    if (noise == 0.0) std::swap(src, dst);
  }

  RunResult result;
  result.wall_seconds = timer.elapsed_s();
  // src holds the last-written grid after the swap; in frame mode the
  // results live in dst (no swap happened).
  result.output = (noise > 0.0 ? dst : src)->flatten();
  result.app_memory_bytes = grid_a.memory_bytes() + grid_b.memory_bytes();
  result.task_input_bytes = bd * bd * sizeof(float) + 4 * bd * sizeof(float);
  finalize_result(result, runtime, engine.get(), stencil_type, config);
  return result;
}

}  // namespace atm::apps

// Shared infrastructure for the two stencil benchmarks (Gauss-Seidel and
// Jacobi, Table I): a block-major 2D grid with per-block halo buffers, the
// 5-point kernels, and the halo copy-task bodies ("neighboring columns and
// rows are obtained via copy-tasks", §IV-A).
//
// The grid models the paper's heated room: walls emit at a constant
// temperature (fixed halo boundary), the interior starts from a small pool
// of random block patterns (the paper observes initialization redundancy
// from RNG saturation), and heat diffuses inward — interior blocks stay
// unchanged for many iterations, which is exactly the task redundancy ATM
// harvests (§V-D).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/app_registry.hpp"
#include "common/aligned_buffer.hpp"

namespace atm::apps {

struct StencilParams {
  std::size_t grid_blocks = 8;   ///< blocks per dimension (paper: 32)
  std::size_t block_dim = 96;    ///< elements per block dimension (paper: 1024)
  unsigned iterations = 10;      ///< sweeps (paper: 20)
  /// Relaxation sweeps performed inside one task (block-smoother style).
  /// Keeps the compute-per-input-byte ratio of the paper's 4 MB blocks at
  /// our scaled-down block sizes (see docs/DESIGN.md §3).
  unsigned inner_sweeps = 4;
  float wall_temp = 100.0f;      ///< boundary emission temperature
  std::size_t init_patterns = 8; ///< distinct random init patterns (redundancy)
  std::uint32_t l_training = 40; ///< Table II (preset-scaled; Jacobi overridden)
  std::uint64_t seed = 0x57e4c11ULL;

  [[nodiscard]] static StencilParams preset(Preset preset);

  [[nodiscard]] std::size_t matrix_dim() const noexcept {
    return grid_blocks * block_dim;
  }
  [[nodiscard]] std::size_t block_cells() const noexcept {
    return block_dim * block_dim;
  }
};

/// Block-major float grid with 4 halo buffers per block.
class BlockedGrid {
 public:
  BlockedGrid(std::size_t grid_blocks, std::size_t block_dim);

  [[nodiscard]] float* block(std::size_t bi, std::size_t bj) noexcept {
    return cells_.data() + (bi * gb_ + bj) * bd_ * bd_;
  }
  [[nodiscard]] const float* block(std::size_t bi, std::size_t bj) const noexcept {
    return cells_.data() + (bi * gb_ + bj) * bd_ * bd_;
  }

  // Halo buffers of block (bi, bj): the neighbor edge values it consumes.
  [[nodiscard]] float* halo_top(std::size_t bi, std::size_t bj) noexcept {
    return halo_ptr(bi, bj, 0);
  }
  [[nodiscard]] float* halo_bottom(std::size_t bi, std::size_t bj) noexcept {
    return halo_ptr(bi, bj, 1);
  }
  [[nodiscard]] float* halo_left(std::size_t bi, std::size_t bj) noexcept {
    return halo_ptr(bi, bj, 2);
  }
  [[nodiscard]] float* halo_right(std::size_t bi, std::size_t bj) noexcept {
    return halo_ptr(bi, bj, 3);
  }

  [[nodiscard]] std::size_t grid_blocks() const noexcept { return gb_; }
  [[nodiscard]] std::size_t block_dim() const noexcept { return bd_; }

  /// Fill interior blocks from a pool of `patterns` deterministic random
  /// patterns and arm the wall halos at `wall_temp`.
  void initialize(std::uint64_t seed, std::size_t patterns, float wall_temp);

  /// Sensor-frame refresh (tolerance-matching demo): rewrite every interior
  /// block as `base`'s block with per-cell relative jitter of amplitude
  /// `noise`, deterministic in (seed, block). Halos are left alone — walls
  /// keep their emission temperature, interior halos are refreshed by the
  /// copy tasks. Every block gets distinct jitter, so exact keys never
  /// repeat across frames while quantized keys still match.
  void perturb_from(const BlockedGrid& base, std::uint64_t seed, double noise);

  /// Row-major global matrix as doubles (the correctness target).
  [[nodiscard]] std::vector<double> flatten() const;

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return cells_.size_bytes() + halos_.size_bytes();
  }

 private:
  [[nodiscard]] float* halo_ptr(std::size_t bi, std::size_t bj, std::size_t dir) noexcept {
    return halos_.data() + ((bi * gb_ + bj) * 4 + dir) * bd_;
  }

  std::size_t gb_;
  std::size_t bd_;
  AlignedBuffer<float> cells_;
  AlignedBuffer<float> halos_;
};

// --- task bodies -----------------------------------------------------------

/// Gauss-Seidel in-place 5-point sweep of one block: cells are updated
/// row-major, so north/west neighbors are already new while south/east are
/// old — the classic GS ordering within the block. `sweeps` relaxations are
/// applied back to back (block smoother).
void stencil_sweep_inplace(float* block, const float* top, const float* bottom,
                           const float* left, const float* right, std::size_t bd,
                           unsigned sweeps = 1) noexcept;

/// Jacobi 5-point sweep: reads `src` (+ halos) into `dst`, then applies
/// `sweeps - 1` in-place smoothing passes on `dst` with the same halos.
void stencil_sweep_jacobi(const float* src, const float* top, const float* bottom,
                          const float* left, const float* right, float* dst,
                          std::size_t bd, unsigned sweeps = 1) noexcept;

/// Halo copy-task bodies: extract an edge row/column of `block` into `halo`.
void copy_edge_row(const float* block, std::size_t row, float* halo,
                   std::size_t bd) noexcept;
void copy_edge_col(const float* block, std::size_t col, float* halo,
                   std::size_t bd) noexcept;

}  // namespace atm::apps

#include "runtime/scheduler.hpp"

#include <thread>

#include "common/timing.hpp"

namespace atm::rt {

namespace {
/// Acquire rounds a worker attempts (yielding between rounds) before it
/// parks. Each round sweeps every victim, so even a short budget gives the
/// whole pool several chances to hand work over without a futex round trip;
/// keeping it small matters on oversubscribed machines where spinning steals
/// cycles from the thread that would produce the work.
constexpr int kSpinRounds = 64;
}  // namespace

std::unique_ptr<Scheduler> Scheduler::make(SchedPolicy policy, unsigned workers,
                                           TraceRecorder* tracer) {
  switch (policy) {
    case SchedPolicy::Central: return std::make_unique<CentralScheduler>(tracer);
    case SchedPolicy::Steal: return std::make_unique<StealScheduler>(workers, tracer);
  }
  return std::make_unique<CentralScheduler>(tracer);
}

StealScheduler::StealScheduler(unsigned workers, TraceRecorder* tracer)
    : workers_(workers > 0 ? workers : 1), tracer_(tracer) {
  slots_.reserve(workers_);
  for (unsigned w = 0; w < workers_; ++w) {
    auto slot = std::make_unique<WorkerSlot>();
    // Stagger the steal sweep so idle workers do not all mob victim 0.
    slot->victim_cursor = w + 1;
    slots_.push_back(std::move(slot));
  }
}

void StealScheduler::note_push() {
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->sample_depth(now_ns(), items_.load(std::memory_order_relaxed));
  }
  // seq_cst pairs with the sleeper registration in pop_blocking: either this
  // load sees the registered sleeper (and we wake it), or the sleeper's
  // predicate load sees the item increment made in push() (so it never
  // sleeps).
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    // The lock orders the notify against a sleeper that passed its predicate
    // check but has not yet suspended.
    std::lock_guard<std::mutex> lock(park_mutex_);
    park_cv_.notify_one();
  }
}

Task* StealScheduler::acquired(Task* task) {
  items_.fetch_sub(1, std::memory_order_relaxed);
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->sample_depth(now_ns(), items_.load(std::memory_order_relaxed));
  }
  return task;
}

void StealScheduler::push(Task* task, std::size_t lane) {
  // Count the task BEFORE publishing it: a thief can steal it (and run the
  // fetch_sub in acquired()) the instant it lands in a deque, and the
  // counter must never transiently underflow — it feeds depth() and the
  // Figure-8 ready-depth samples.
  items_.fetch_add(1, std::memory_order_seq_cst);
  if (lane < workers_) {
    // Owner push: the worker making a successor ready keeps it local (LIFO,
    // still warm in its cache); thieves pick it up from the top if not.
    slots_[lane]->deque.push(task);
  } else {
    // External submission (master or any non-worker thread): spread across
    // inboxes by task id (dense in submission order — round-robin without a
    // shared cursor). Lock-free MPSC push: one CAS, no mutex anywhere.
    WorkerSlot& slot = *slots_[task->id % workers_];
    Task* head = slot.inbox_head.load(std::memory_order_relaxed);
    do {
      task->inbox_next.store(head, std::memory_order_relaxed);
    } while (!slot.inbox_head.compare_exchange_weak(
        head, task, std::memory_order_release, std::memory_order_relaxed));
  }
  note_push();
}

Task* StealScheduler::take_inbox_chain(WorkerSlot& victim, std::size_t* n) {
  *n = 0;
  if (victim.inbox_head.load(std::memory_order_relaxed) == nullptr) return nullptr;
  Task* chain = victim.inbox_head.exchange(nullptr, std::memory_order_acquire);
  if (chain == nullptr) return nullptr;
  // Reverse the LIFO chain back to submission order.
  Task* ordered = nullptr;
  std::size_t count = 0;
  while (chain != nullptr) {
    Task* next = chain->inbox_next.load(std::memory_order_relaxed);
    chain->inbox_next.store(ordered, std::memory_order_relaxed);
    ordered = chain;
    chain = next;
    ++count;
  }
  *n = count;
  return ordered;
}

std::size_t StealScheduler::drain_inbox(WorkerSlot& victim, WorkStealDeque& into) {
  std::size_t n = 0;
  Task* ordered = take_inbox_chain(victim, &n);
  while (ordered != nullptr) {
    Task* next = ordered->inbox_next.load(std::memory_order_relaxed);
    ordered->inbox_next.store(nullptr, std::memory_order_relaxed);
    into.push(ordered);
    ordered = next;
  }
  return n;
}

Task* StealScheduler::acquire_local(unsigned worker) {
  WorkerSlot& slot = *slots_[worker];
  if (slot.batch_head != nullptr) {
    // Private batch: two pointer moves, no deque fence, no items_ traffic
    // (the whole batch was accounted when it was carved off).
    Task* task = slot.batch_head;
    slot.batch_head = task->inbox_next.load(std::memory_order_relaxed);
    task->inbox_next.store(nullptr, std::memory_order_relaxed);
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->sample_depth(now_ns(), items_.load(std::memory_order_relaxed));
    }
    return task;
  }
  if (Task* task = slot.deque.pop()) return acquired(task);
  // Drain the inbox wholesale: a k-task submission burst costs one exchange
  // here, not k acquires. The first kBatchMax stay in the private FIFO; the
  // remainder spills to the deque where thieves can reach it. The cap
  // trades deque-fence amortization against steal visibility: batched
  // tasks are invisible to thieves until consumed, so it is kept small
  // enough that a worker landing in a long task strands at most 31
  // followers (the spill, and every later burst, remain stealable) while
  // still amortizing the pop fence to ~3% of per-task cost.
  constexpr std::size_t kBatchMax = 32;
  std::size_t n = 0;
  Task* chain = take_inbox_chain(slot, &n);
  if (chain == nullptr) return nullptr;
  slot.batch_head = chain;
  Task* tail = chain;
  std::size_t kept = 1;
  for (; kept < kBatchMax; ++kept) {
    Task* next = tail->inbox_next.load(std::memory_order_relaxed);
    if (next == nullptr) break;
    tail = next;
  }
  Task* spill = tail->inbox_next.load(std::memory_order_relaxed);
  tail->inbox_next.store(nullptr, std::memory_order_relaxed);
  if (spill == nullptr) kept = n;  // whole chain fit in the batch
  // The batched tasks leave the globally-visible pool now: account them in
  // one bulk decrement instead of one per task.
  items_.fetch_sub(kept, std::memory_order_relaxed);
  while (spill != nullptr) {
    Task* next = spill->inbox_next.load(std::memory_order_relaxed);
    spill->inbox_next.store(nullptr, std::memory_order_relaxed);
    slot.deque.push(spill);
    spill = next;
  }
  Task* task = slot.batch_head;
  slot.batch_head = task->inbox_next.load(std::memory_order_relaxed);
  task->inbox_next.store(nullptr, std::memory_order_relaxed);
  return task;
}

Task* StealScheduler::acquire_steal(unsigned worker) {
  WorkerSlot& me = *slots_[worker];
  // One full sweep over the other workers starting at the rotating cursor:
  // deque top first (the victim's oldest task — the classic FIFO steal),
  // then the victim's inbox so a long-running victim cannot strand external
  // submissions behind its back.
  for (unsigned i = 0; i < workers_; ++i) {
    const unsigned v = (me.victim_cursor + i) % workers_;
    if (v == worker) continue;  // every other lane is probed exactly once
    WorkerSlot& victim = *slots_[v];
    if (Task* task = victim.deque.steal()) {
      me.victim_cursor = v;  // keep milking a productive victim
      return acquired(task);
    }
    // Drain the victim's stranded inbox into our own deque and take from
    // there: redistributes a whole burst in one exchange.
    if (drain_inbox(victim, me.deque) != 0) {
      if (Task* task = me.deque.pop()) {
        me.victim_cursor = v;
        return acquired(task);
      }
    }
  }
  me.victim_cursor = (me.victim_cursor + 1) % workers_;
  return nullptr;
}

Task* StealScheduler::try_pop(unsigned worker) {
  if (Task* task = acquire_local(worker)) return task;
  return acquire_steal(worker);
}

Task* StealScheduler::pop_blocking(unsigned worker) {
  for (;;) {
    // Spin phase: bounded acquire rounds with yields between them.
    for (int round = 0; round < kSpinRounds; ++round) {
      if (Task* task = try_pop(worker)) return task;
      if (shutdown_.load(std::memory_order_acquire)) {
        // Drain semantics: after shutdown keep acquiring until the system
        // is globally empty, then exit. taskwait() ran before shutdown in
        // the runtime, so this terminates immediately in practice.
        if (items_.load(std::memory_order_seq_cst) == 0) return nullptr;
      }
      std::this_thread::yield();
    }
    if (shutdown_.load(std::memory_order_acquire)) continue;  // drain, never park

    // Park. Register as a sleeper first (seq_cst, pairing with note_push),
    // then re-check for work under the predicate: a push that raced our
    // registration is seen either here or by its sleeper check.
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(park_mutex_);
      park_cv_.wait(lock, [&] {
        return shutdown_.load(std::memory_order_acquire) ||
               items_.load(std::memory_order_seq_cst) > 0;
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void StealScheduler::shutdown() {
  shutdown_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(park_mutex_);
  park_cv_.notify_all();
}

void StealScheduler::reset() { shutdown_.store(false, std::memory_order_release); }

}  // namespace atm::rt

#include "runtime/scheduler.hpp"

#include <thread>
#include <utility>

#include "common/timing.hpp"

namespace atm::rt {

namespace {
/// Acquire rounds a worker attempts (yielding between rounds) before it
/// parks. Each round sweeps every victim, so even a short budget gives the
/// whole pool several chances to hand work over without a futex round trip;
/// keeping it small matters on oversubscribed machines where spinning steals
/// cycles from the thread that would produce the work.
constexpr int kSpinRounds = 64;
/// The helper (master at a taskwait) spins far less before parking: it is
/// an opportunistic extra lane, and on few-core hosts every cycle it burns
/// spinning is a cycle the workers — who own the backlog — do not get.
constexpr int kHelperSpinRounds = 8;
}  // namespace

std::unique_ptr<Scheduler> Scheduler::make(SchedPolicy policy, unsigned workers,
                                           TraceRecorder* tracer,
                                           obs::MetricsRegistry* metrics) {
  switch (policy) {
    case SchedPolicy::Central: return std::make_unique<CentralScheduler>(tracer);
    case SchedPolicy::Steal:
      return std::make_unique<StealScheduler>(workers, tracer, metrics);
  }
  return std::make_unique<CentralScheduler>(tracer);
}

namespace {
/// Ring distance between two lane ids on a `total`-lane ring (>= 1 for
/// distinct lanes); the victim-distance histogram's sample value.
[[nodiscard]] unsigned ring_distance(unsigned a, unsigned b, unsigned total) noexcept {
  const unsigned d = a > b ? a - b : b - a;
  return d < total - d ? d : total - d;
}
}  // namespace

StealScheduler::StealScheduler(unsigned workers, TraceRecorder* tracer,
                               obs::MetricsRegistry* metrics)
    : workers_(workers > 0 ? workers : 1),
      inbox_mask_((workers_ & (workers_ - 1)) == 0 ? workers_ - 1 : 0),
      tracer_(tracer) {
  const unsigned total = lane_count();
  slots_.reserve(total);
  for (unsigned w = 0; w < total; ++w) {
    auto slot = std::make_unique<WorkerSlot>();
    // Locality-ordered victim ring: nearest lane ids first, widening
    // outward, probe direction alternating by lane parity. Every lane gets
    // a distinct order (its own ring) so idle thieves fan out across the
    // pool instead of mobbing one victim.
    slot->victim_order.reserve(total - 1);
    for (unsigned d = 1; d <= total / 2; ++d) {
      unsigned first = (w + d) % total;
      unsigned second = (w + total - d) % total;
      if ((w & 1U) != 0) std::swap(first, second);
      slot->victim_order.push_back(first);
      if (second != first) slot->victim_order.push_back(second);
    }
    slots_.push_back(std::move(slot));
  }
  if (metrics != nullptr) {
    steal_batch_hist_ = metrics->histogram("sched.steal_batch_size", "tasks", "sched");
    victim_distance_hist_ = metrics->histogram("sched.victim_distance", "lanes", "sched");
  }
}

void StealScheduler::note_push() {
  if (tracer_ != nullptr && tracer_->enabled()) {
    // mo: relaxed — depth sample is monitoring only.
    tracer_->sample_depth(now_ns(), items_.load(std::memory_order_relaxed));
  }
  // seq_cst pairs with the sleeper registration in pop_blocking/helper_pop:
  // either this load sees the registered sleeper (and we wake it), or the
  // sleeper's predicate load sees the item increment made in push() (so it
  // never sleeps).
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    // The lock orders the notify against a sleeper that passed its predicate
    // check but has not yet suspended.
    MutexLock lock(park_mutex_);
    park_cv_.notify_one();
  }
}

Task* StealScheduler::acquired(Task* task) {
  // mo: relaxed — items_ is a conservatively-ordered gauge; the push side
  // (seq_cst fetch_add before publish) provides the never-underflow bound.
  items_.fetch_sub(1, std::memory_order_relaxed);
  if (tracer_ != nullptr && tracer_->enabled()) {
    // mo: relaxed — depth sample is monitoring only.
    tracer_->sample_depth(now_ns(), items_.load(std::memory_order_relaxed));
  }
  return task;
}

void StealScheduler::push(Task* task, std::size_t lane) {
  // Count the task BEFORE publishing it: a thief can steal it (and run the
  // fetch_sub in acquired()) the instant it lands in a deque, and the
  // counter must never transiently underflow — it feeds depth() and the
  // Figure-8 ready-depth samples.
  items_.fetch_add(1, std::memory_order_seq_cst);
  if (lane < lane_count()) {
    // Owner push: the lane making a successor ready keeps it local (LIFO,
    // still warm in its cache); thieves pick it up from the top if not.
    // Lane workers_ is the helper — the master acting as a transient worker
    // during a taskwait; its deque is in every worker's steal sweep.
    slots_[lane]->deque.push(task);
  } else {
    // External submission (master outside taskwait or any non-worker
    // thread): spread across the worker inboxes by task id (dense in
    // submission order — round-robin without a shared cursor). Lock-free
    // MPSC push: one CAS, no mutex anywhere. The helper slot gets no inbox
    // traffic: it is not always manned. Power-of-two pools (the common
    // sizes) mask instead of dividing — the modulo sits on every external
    // submit.
    const std::size_t victim = inbox_mask_ != 0 ? (task->id & inbox_mask_)
                                                : (task->id % workers_);
    WorkerSlot& slot = *slots_[victim];
    // mo: relaxed — head is only a CAS expected value; the CAS re-validates.
    Task* head = slot.inbox_head.load(std::memory_order_relaxed);
    do {
      // mo: relaxed — the publishing CAS below releases the link write.
      task->inbox_next.store(head, std::memory_order_relaxed);
      // mo: release publishes task->inbox_next to the acquiring drainer;
      // relaxed on failure (retry rereads head).
    } while (!slot.inbox_head.compare_exchange_weak(
        head, task, std::memory_order_release, std::memory_order_relaxed));
  }
  note_push();
}

Task* StealScheduler::take_inbox_chain(WorkerSlot& victim, std::size_t* n) {
  *n = 0;
  // mo: relaxed peek — empty inboxes are skipped without a fence; the
  // exchange below is the synchronizing read.
  if (victim.inbox_head.load(std::memory_order_relaxed) == nullptr) return nullptr;
  // mo: acquire pairs with the producers' release CAS so every inbox_next
  // link in the chain is visible.
  Task* chain = victim.inbox_head.exchange(nullptr, std::memory_order_acquire);
  if (chain == nullptr) return nullptr;
  // Reverse the LIFO chain back to submission order.
  Task* ordered = nullptr;
  std::size_t count = 0;
  while (chain != nullptr) {
    // mo: relaxed — the chain is exclusively owned after the exchange.
    Task* next = chain->inbox_next.load(std::memory_order_relaxed);
    // mo: relaxed — exclusively-owned chain rewrite.
    chain->inbox_next.store(ordered, std::memory_order_relaxed);
    ordered = chain;
    chain = next;
    ++count;
  }
  *n = count;
  return ordered;
}

Task* StealScheduler::adopt_chain(WorkerSlot& me, Task* chain, std::size_t n,
                                  std::uint32_t cap) {
  // Install a drained inbox chain (submission order) as `me`'s private
  // batch: the first `cap` tasks become two-pointer-move acquisitions, the
  // remainder spills to the deque where other thieves can reach it. The
  // batched tasks leave the globally-visible pool now: account them in one
  // bulk decrement instead of one per task (the batch_size gauge keeps them
  // visible to starvation detection). Returns the first task, consumed.
  me.batch_head = chain;
  Task* tail = chain;
  std::size_t kept = 1;
  for (; kept < cap; ++kept) {
    // mo: relaxed — exclusively-owned chain walk (drained above).
    Task* next = tail->inbox_next.load(std::memory_order_relaxed);
    if (next == nullptr) break;
    tail = next;
  }
  // mo: relaxed — exclusively-owned chain split.
  Task* spill = tail->inbox_next.load(std::memory_order_relaxed);
  tail->inbox_next.store(nullptr, std::memory_order_relaxed);
  if (spill == nullptr) kept = n;  // whole chain fit in the batch
  // mo: relaxed — bulk gauge decrement; see acquired() for the bound.
  items_.fetch_sub(kept, std::memory_order_relaxed);
  while (spill != nullptr) {
    // mo: relaxed — exclusively-owned spill walk; deque.push publishes.
    Task* next = spill->inbox_next.load(std::memory_order_relaxed);
    spill->inbox_next.store(nullptr, std::memory_order_relaxed);
    me.deque.push(spill);
    spill = next;
  }
  Task* task = me.batch_head;
  // mo: relaxed — batch links are owner-private from here on.
  me.batch_head = task->inbox_next.load(std::memory_order_relaxed);
  task->inbox_next.store(nullptr, std::memory_order_relaxed);
  me.batch_size.store(static_cast<std::uint32_t>(kept) - 1);
  return task;
}

Task* StealScheduler::adopt_batch(WorkerSlot& me, Task* const* tasks,
                                  std::size_t n) {
  // Install a steal_many() batch as `me`'s private FIFO — the same shape
  // inbox adoption produces: tasks[0] is consumed now, tasks[1..n) chain
  // through inbox_next in age order (oldest first, preserving the FIFO
  // steal discipline). The winning top-CAS made the batch exclusively ours,
  // so the links are plain owner-private writes; one bulk items_ decrement
  // accounts the whole batch and batch_size keeps it visible to starvation
  // detection, exactly like adopt_chain.
  for (std::size_t i = 1; i < n; ++i) {
    // mo: relaxed — exclusively-owned chain build.
    tasks[i]->inbox_next.store(i + 1 < n ? tasks[i + 1] : nullptr,
                               std::memory_order_relaxed);
  }
  me.batch_head = n > 1 ? tasks[1] : nullptr;
  // mo: relaxed — the consumed task leaves every chain now.
  tasks[0]->inbox_next.store(nullptr, std::memory_order_relaxed);
  me.batch_size.store(static_cast<std::uint32_t>(n) - 1);
  // mo: relaxed — bulk gauge decrement; see acquired() for the bound.
  items_.fetch_sub(n, std::memory_order_relaxed);
  if (tracer_ != nullptr && tracer_->enabled()) {
    // mo: relaxed — depth sample is monitoring only.
    tracer_->sample_depth(now_ns(), items_.load(std::memory_order_relaxed));
  }
  return tasks[0];
}

Task* StealScheduler::acquire_local(unsigned lane) {
  WorkerSlot& slot = *slots_[lane];
  if (slot.batch_head != nullptr) {
    // Private batch: two pointer moves, no deque fence, no items_ traffic
    // (the whole batch was accounted when it was carved off).
    Task* task = slot.batch_head;
    // mo: relaxed — batch links are owner-private.
    slot.batch_head = task->inbox_next.load(std::memory_order_relaxed);
    task->inbox_next.store(nullptr, std::memory_order_relaxed);
    slot.batch_size.store(slot.batch_size.load() - 1);
    if (tracer_ != nullptr && tracer_->enabled()) {
      // mo: relaxed — depth sample is monitoring only.
      tracer_->sample_depth(now_ns(), items_.load(std::memory_order_relaxed));
    }
    return task;
  }
  if (Task* task = slot.deque.pop()) return acquired(task);
  // Drain the inbox wholesale: a k-task submission burst costs one exchange
  // here, not k acquires. The first batch_cap_ stay in the private FIFO;
  // the remainder spills to the deque where thieves can reach it. The cap
  // trades deque-fence amortization against steal visibility: batched
  // tasks are invisible to thieves until consumed, so the cap adapts —
  // doubling per SUCCESSFUL drain while no thief has starved since this
  // owner's last drain (an idle lane probing an empty inbox is not
  // evidence that batching is safe, so empty probes leave it alone),
  // halved (in acquire_steal) whenever a sweep misses while work exists.
  std::size_t n = 0;
  Task* chain = take_inbox_chain(slot, &n);
  if (chain == nullptr) return nullptr;
  slot.inbox_drains.store(slot.inbox_drains.load() + 1);
  slot.inbox_drained_tasks.store(slot.inbox_drained_tasks.load() + n);
  // mo: relaxed — the miss counter and cap are heuristics; stale reads only
  // delay an adaptation step.
  const std::uint64_t misses = steal_misses_.load(std::memory_order_relaxed);
  std::uint32_t cap = batch_cap_.load(std::memory_order_relaxed);
  if (misses == slot.last_misses) {
    if (cap < kBatchMax) {
      cap *= 2;
      // mo: relaxed — heuristic knob; no data is published through it.
      batch_cap_.store(cap, std::memory_order_relaxed);
    }
  } else {
    slot.last_misses = misses;
  }
  return adopt_chain(slot, chain, n, cap);
}

Task* StealScheduler::acquire_steal(unsigned lane) {
  WorkerSlot& me = *slots_[lane];
  // One full sweep over the other lanes (workers + the helper slot) in this
  // lane's locality ring order, starting at the last productive victim:
  // deque top first (steal-half — up to half the victim's backlog in one
  // CAS, bounded by the adaptive batch cap), then the victim's inbox so a
  // long-running victim cannot strand external submissions behind its back.
  bool hoarded = false;
  me.steal_attempts.store(me.steal_attempts.load() + 1);
  // mo: relaxed — the cap is a heuristic; any recent value serves.
  const auto cap = static_cast<std::size_t>(batch_cap_.load(std::memory_order_relaxed));
  Task* batch[WorkStealDeque::kMaxSteal];
  const auto order_n = static_cast<std::uint32_t>(me.victim_order.size());
  const std::uint32_t start = me.victim_cursor < order_n ? me.victim_cursor : 0;
  for (std::uint32_t i = 0; i < order_n; ++i) {
    const std::uint32_t idx = start + i < order_n ? start + i : start + i - order_n;
    const std::uint32_t v = me.victim_order[idx];
    WorkerSlot& victim = *slots_[v];
    if (const std::size_t got = victim.deque.steal_many(batch, cap)) {
      me.victim_cursor = idx;  // keep milking a productive victim
      me.backoff_skip = 0;
      me.backoff_width = 0;
      if (steal_batch_hist_ != nullptr) steal_batch_hist_->record(got);
      if (victim_distance_hist_ != nullptr) {
        victim_distance_hist_->record(ring_distance(lane, v, lane_count()));
      }
      return adopt_batch(me, batch, got);
    }
    // Adopt the victim's stranded inbox as our own batch (+ deque spill):
    // redistributes a whole burst in one exchange, and the adopted tasks
    // cost two pointer moves each instead of a deque fence round trip —
    // this is the helper's main acquisition path during a wave drain.
    std::size_t n = 0;
    if (Task* chain = take_inbox_chain(victim, &n)) {
      me.victim_cursor = idx;
      me.backoff_skip = 0;
      me.backoff_width = 0;
      if (victim_distance_hist_ != nullptr) {
        victim_distance_hist_->record(ring_distance(lane, v, lane_count()));
      }
      me.inbox_drains.store(me.inbox_drains.load() + 1);
      me.inbox_drained_tasks.store(me.inbox_drained_tasks.load() + n);
      return adopt_chain(me, chain, n, static_cast<std::uint32_t>(cap));
    }
    if (victim.batch_size.load() > 0) hoarded = true;
  }
  me.victim_cursor = 0;  // full miss: restart at the nearest ring next time
  // Full miss. Remember whether work existed — queued (items_) or hoarded
  // in an owner's private batch; the miss is only COUNTED (and the batch
  // cap halved) if this lane ends up parking with the flag set: a sweep
  // that misses transiently between productive acquires is noise, but a
  // lane that gives up and sleeps while work sits in someone's private
  // batch genuinely starved because of batching.
  // mo: relaxed — starvation heuristic; pop_blocking re-checks with seq_cst
  // before actually sleeping.
  me.missed_with_work = hoarded || items_.load(std::memory_order_relaxed) > 0;
  me.steal_fails.store(me.steal_fails.load() + 1);
  // Exponential steal backoff: consecutive full misses double the number of
  // sweeps this lane sits out (local acquires are never skipped), capped so
  // the lane keeps re-probing. Any successful acquire resets it.
  me.backoff_width = me.backoff_width == 0
                         ? 1
                         : (me.backoff_width * 2 < kBackoffMaxSkips
                                ? me.backoff_width * 2
                                : kBackoffMaxSkips);
  me.backoff_skip = me.backoff_width;
  return nullptr;
}

SchedulerStats StealScheduler::stats() const noexcept {
  SchedulerStats s;
  // mo: relaxed — racy monitoring snapshot by contract.
  s.depth = items_.load(std::memory_order_relaxed);
  s.inbox_batch_cap = batch_cap_.load(std::memory_order_relaxed);
  s.steal_misses = steal_misses_.load(std::memory_order_relaxed);
  for (const auto& slot : slots_) {
    s.steal_attempts += slot->steal_attempts.load();
    s.steal_fails += slot->steal_fails.load();
    s.inbox_drains += slot->inbox_drains.load();
    s.inbox_drained_tasks += slot->inbox_drained_tasks.load();
  }
  return s;
}

void StealScheduler::note_starved(unsigned lane) {
  WorkerSlot& me = *slots_[lane];
  if (!me.missed_with_work) return;
  me.missed_with_work = false;
  // mo: relaxed — heuristic counters/knobs; no data published through them.
  steal_misses_.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t cap = batch_cap_.load(std::memory_order_relaxed);
  if (cap > kBatchMin) {
    batch_cap_.store(cap / 2 > kBatchMin ? cap / 2 : kBatchMin,
                     std::memory_order_relaxed);
  }
}

Task* StealScheduler::try_pop(unsigned lane) {
  WorkerSlot& me = *slots_[lane];
  if (Task* task = acquire_local(lane)) {
    // Work arrived locally: stop sitting out steal sweeps.
    me.backoff_skip = 0;
    me.backoff_width = 0;
    return task;
  }
  if (me.backoff_skip > 0) {
    // Steal backoff: sit this sweep out (the caller yields between rounds),
    // so an idle lane stops hammering every victim's top cacheline. The
    // budget is finite and local work was just checked, so no task is ever
    // stranded behind the skip.
    --me.backoff_skip;
    return nullptr;
  }
  return acquire_steal(lane);
}

Task* StealScheduler::pop_blocking(unsigned worker) {
  for (;;) {
    // Spin phase: bounded acquire rounds with yields between them.
    for (int round = 0; round < kSpinRounds; ++round) {
      if (Task* task = try_pop(worker)) return task;
      // mo: acquire pairs with shutdown()'s release store.
      if (shutdown_.load(std::memory_order_acquire)) {
        // Drain semantics: after shutdown keep acquiring until the system
        // is globally empty, then exit. taskwait() ran before shutdown in
        // the runtime, so this terminates immediately in practice.
        if (items_.load(std::memory_order_seq_cst) == 0) return nullptr;
      }
      std::this_thread::yield();
    }
    // mo: acquire pairs with shutdown()'s release store.
    if (shutdown_.load(std::memory_order_acquire)) continue;  // drain, never park
    note_starved(worker);

    // Park. Register as a sleeper first (seq_cst, pairing with note_push),
    // then re-check for work under the lock: a push that raced our
    // registration is seen either here or by its sleeper check.
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      MutexLock lock(park_mutex_);
      // mo: acquire on shutdown_ pairs with shutdown()'s release store;
      // items_ stays seq_cst to close the sleep/wake race with note_push.
      while (!shutdown_.load(std::memory_order_acquire) &&
             items_.load(std::memory_order_seq_cst) == 0) {
        park_cv_.wait(park_mutex_);
      }
    }
    // mo: relaxed — deregistering needs no ordering; a spurious notify to a
    // lane that just woke is harmless.
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

Task* StealScheduler::helper_pop(const std::function<bool()>& quit) {
  const unsigned lane = workers_;  // the helper slot
  for (;;) {
    // mo: acquire pairs with shutdown()'s release store.
    if (quit() || shutdown_.load(std::memory_order_acquire)) return nullptr;
    if (Task* task = try_pop(lane)) return task;
    // Short spin only: the helper is a bonus lane; on few-core hosts the
    // workers own the backlog and need the cycles more.
    for (int round = 0; round < kHelperSpinRounds; ++round) {
      // mo: acquire pairs with shutdown()'s release store.
      if (quit() || shutdown_.load(std::memory_order_acquire)) return nullptr;
      if (Task* task = try_pop(lane)) return task;
      std::this_thread::yield();
    }
    note_starved(lane);
    // Park on the shared lot. Same seq_cst sleeper/item pairing as the
    // workers, with the quit condition folded into the wait loop — the
    // runtime calls notify_helpers() when it flips, so the wakeup is
    // exactly the push/quit/shutdown union, never a timeout poll.
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      MutexLock lock(park_mutex_);
      // mo: acquire on shutdown_ pairs with shutdown()'s release store;
      // items_ stays seq_cst to close the sleep/wake race with note_push.
      while (!shutdown_.load(std::memory_order_acquire) &&
             items_.load(std::memory_order_seq_cst) == 0 && !quit()) {
        park_cv_.wait(park_mutex_);
      }
    }
    // mo: relaxed — deregistering needs no ordering.
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void StealScheduler::notify_helpers() {
  // notify_all, not notify_one: the lot is shared with the workers and the
  // wakeup must reach the helper specifically.
  MutexLock lock(park_mutex_);
  park_cv_.notify_all();
}

void StealScheduler::shutdown() {
  // mo: release pairs with the acquire loads in the pop paths so a worker
  // that observes shutdown also observes everything queued before it.
  shutdown_.store(true, std::memory_order_release);
  MutexLock lock(park_mutex_);
  park_cv_.notify_all();
}

void StealScheduler::reset() {
  // mo: release mirrors shutdown(); pairs with the pop-side acquire loads.
  shutdown_.store(false, std::memory_order_release);
}

}  // namespace atm::rt

#include "runtime/scheduler.hpp"

#include <thread>

#include "common/timing.hpp"

namespace atm::rt {

namespace {
/// Acquire rounds a worker attempts (yielding between rounds) before it
/// parks. Each round sweeps every victim, so even a short budget gives the
/// whole pool several chances to hand work over without a futex round trip;
/// keeping it small matters on oversubscribed machines where spinning steals
/// cycles from the thread that would produce the work.
constexpr int kSpinRounds = 64;
}  // namespace

std::unique_ptr<Scheduler> Scheduler::make(SchedPolicy policy, unsigned workers,
                                           TraceRecorder* tracer) {
  switch (policy) {
    case SchedPolicy::Central: return std::make_unique<CentralScheduler>(tracer);
    case SchedPolicy::Steal: return std::make_unique<StealScheduler>(workers, tracer);
  }
  return std::make_unique<CentralScheduler>(tracer);
}

StealScheduler::StealScheduler(unsigned workers, TraceRecorder* tracer)
    : workers_(workers > 0 ? workers : 1), tracer_(tracer) {
  slots_.reserve(workers_);
  for (unsigned w = 0; w < workers_; ++w) {
    auto slot = std::make_unique<WorkerSlot>();
    // Stagger the steal sweep so idle workers do not all mob victim 0.
    slot->victim_cursor = w + 1;
    slots_.push_back(std::move(slot));
  }
}

void StealScheduler::note_push() {
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->sample_depth(now_ns(), items_.load(std::memory_order_relaxed));
  }
  // seq_cst pairs with the sleeper registration in pop_blocking: either this
  // load sees the registered sleeper (and we wake it), or the sleeper's
  // predicate load sees the item increment made in push() (so it never
  // sleeps).
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    // The lock orders the notify against a sleeper that passed its predicate
    // check but has not yet suspended.
    std::lock_guard<std::mutex> lock(park_mutex_);
    park_cv_.notify_one();
  }
}

Task* StealScheduler::acquired(Task* task) {
  items_.fetch_sub(1, std::memory_order_relaxed);
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->sample_depth(now_ns(), items_.load(std::memory_order_relaxed));
  }
  return task;
}

void StealScheduler::push(Task* task, std::size_t lane) {
  // Count the task BEFORE publishing it: a thief can steal it (and run the
  // fetch_sub in acquired()) the instant it lands in a deque, and the
  // counter must never transiently underflow — it feeds depth() and the
  // Figure-8 ready-depth samples.
  items_.fetch_add(1, std::memory_order_seq_cst);
  if (lane < workers_) {
    // Owner push: the worker making a successor ready keeps it local (LIFO,
    // still warm in its cache); thieves pick it up from the top if not.
    slots_[lane]->deque.push(task);
  } else {
    // External submission (master or any non-worker thread): round-robin
    // across inboxes so a storm spreads over the pool.
    const std::uint32_t w = rr_.fetch_add(1, std::memory_order_relaxed) % workers_;
    std::lock_guard<std::mutex> lock(slots_[w]->inbox_mutex);
    slots_[w]->inbox.push_back(task);
    slots_[w]->inbox_size.store(static_cast<std::uint32_t>(slots_[w]->inbox.size()),
                                std::memory_order_relaxed);
  }
  note_push();
}

Task* StealScheduler::acquire_local(unsigned worker) {
  WorkerSlot& slot = *slots_[worker];
  if (Task* task = slot.deque.pop()) return acquired(task);
  // Drain the inbox wholesale under one lock: a k-task submission burst
  // costs one lock acquisition here, not k. Submission order is preserved
  // in the deque; the worker then works LIFO while thieves take FIFO.
  if (slot.inbox_size.load(std::memory_order_relaxed) != 0) {
    std::lock_guard<std::mutex> lock(slot.inbox_mutex);
    for (Task* task : slot.inbox) slot.deque.push(task);
    slot.inbox.clear();
    slot.inbox_size.store(0, std::memory_order_relaxed);
  }
  if (Task* task = slot.deque.pop()) return acquired(task);
  return nullptr;
}

Task* StealScheduler::acquire_steal(unsigned worker) {
  WorkerSlot& me = *slots_[worker];
  // One full sweep over the other workers starting at the rotating cursor:
  // deque top first (the victim's oldest task — the classic FIFO steal),
  // then the victim's inbox so a long-running victim cannot strand external
  // submissions behind its back.
  for (unsigned i = 0; i < workers_; ++i) {
    const unsigned v = (me.victim_cursor + i) % workers_;
    if (v == worker) continue;  // every other lane is probed exactly once
    WorkerSlot& victim = *slots_[v];
    if (Task* task = victim.deque.steal()) {
      me.victim_cursor = v;  // keep milking a productive victim
      return acquired(task);
    }
    Task* task = nullptr;
    if (victim.inbox_size.load(std::memory_order_relaxed) != 0 &&
        victim.inbox_mutex.try_lock()) {
      std::lock_guard<std::mutex> lock(victim.inbox_mutex, std::adopt_lock);
      if (!victim.inbox.empty()) {
        task = victim.inbox.front();
        victim.inbox.pop_front();
        victim.inbox_size.store(static_cast<std::uint32_t>(victim.inbox.size()),
                                std::memory_order_relaxed);
      }
    }
    if (task != nullptr) {
      me.victim_cursor = v;
      return acquired(task);
    }
  }
  me.victim_cursor = (me.victim_cursor + 1) % workers_;
  return nullptr;
}

Task* StealScheduler::try_pop(unsigned worker) {
  if (Task* task = acquire_local(worker)) return task;
  return acquire_steal(worker);
}

Task* StealScheduler::pop_blocking(unsigned worker) {
  for (;;) {
    // Spin phase: bounded acquire rounds with yields between them.
    for (int round = 0; round < kSpinRounds; ++round) {
      if (Task* task = try_pop(worker)) return task;
      if (shutdown_.load(std::memory_order_acquire)) {
        // Drain semantics: after shutdown keep acquiring until the system
        // is globally empty, then exit. taskwait() ran before shutdown in
        // the runtime, so this terminates immediately in practice.
        if (items_.load(std::memory_order_seq_cst) == 0) return nullptr;
      }
      std::this_thread::yield();
    }
    if (shutdown_.load(std::memory_order_acquire)) continue;  // drain, never park

    // Park. Register as a sleeper first (seq_cst, pairing with note_push),
    // then re-check for work under the predicate: a push that raced our
    // registration is seen either here or by its sleeper check.
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(park_mutex_);
      park_cv_.wait(lock, [&] {
        return shutdown_.load(std::memory_order_acquire) ||
               items_.load(std::memory_order_seq_cst) > 0;
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void StealScheduler::shutdown() {
  shutdown_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(park_mutex_);
  park_cv_.notify_all();
}

void StealScheduler::reset() { shutdown_.store(false, std::memory_order_release); }

}  // namespace atm::rt

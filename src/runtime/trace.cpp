#include "runtime/trace.hpp"

#include <algorithm>

#include "common/timing.hpp"

namespace atm::rt {

TraceRecorder::TraceRecorder(std::size_t lanes, bool enabled)
    : enabled_(enabled), lanes_(lanes) {
  if (enabled_) {
    for (auto& lane : lanes_) lane.reserve(4096);
    depth_.reserve(8192);
  }
}

void TraceRecorder::record(std::size_t lane, TraceState state, std::uint64_t t0,
                           std::uint64_t t1) {
  if (!enabled_ || lane >= lanes_.size()) return;
  lanes_[lane].push_back(TraceEvent{t0, t1, state});
}

void TraceRecorder::sample_depth(std::uint64_t t, std::size_t depth) {
  if (!enabled_) return;
  MutexLock lock(depth_mutex_);
  depth_.push_back(DepthSample{t, static_cast<std::uint32_t>(depth)});
}

std::vector<DepthSample> TraceRecorder::depth_samples() const {
  MutexLock lock(depth_mutex_);
  auto copy = depth_;
  std::sort(copy.begin(), copy.end(),
            [](const DepthSample& a, const DepthSample& b) { return a.t < b.t; });
  return copy;
}

LaneSummary TraceRecorder::summarize_lane(std::size_t i) const {
  LaneSummary s;
  for (const TraceEvent& e : lanes_[i]) {
    const auto idx = static_cast<std::size_t>(e.state);
    s.total_ns[idx] += e.t1 - e.t0;
    ++s.event_count[idx];
  }
  return s;
}

LaneSummary TraceRecorder::summarize_all() const {
  LaneSummary s;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const LaneSummary li = summarize_lane(i);
    for (std::size_t k = 0; k < kTraceStateCount; ++k) {
      s.total_ns[k] += li.total_ns[k];
      s.event_count[k] += li.event_count[k];
    }
  }
  return s;
}

std::uint64_t TraceRecorder::first_event_ns() const {
  std::uint64_t first = UINT64_MAX;
  for (const auto& lane : lanes_) {
    if (!lane.empty()) first = std::min(first, lane.front().t0);
  }
  return first == UINT64_MAX ? 0 : first;
}

std::uint64_t TraceRecorder::last_event_ns() const {
  std::uint64_t last = 0;
  for (const auto& lane : lanes_) {
    for (const auto& e : lane) last = std::max(last, e.t1);
  }
  return last;
}

std::string TraceRecorder::ascii_timeline(std::size_t width) const {
  static constexpr char kGlyph[kTraceStateCount] = {'.', 'X', 'h', 'm',
                                                    'c', 'r', 'H'};
  const std::uint64_t t0 = first_event_ns();
  const std::uint64_t t1 = last_event_ns();
  if (t1 <= t0 || width == 0) return {};
  const double span = static_cast<double>(t1 - t0);

  std::string out;
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    // Pick the state owning the most time within each column.
    std::vector<std::uint64_t> col_time(width * kTraceStateCount, 0);
    for (const TraceEvent& e : lanes_[lane]) {
      const double c0 = static_cast<double>(e.t0 - t0) / span * static_cast<double>(width);
      const double c1 = static_cast<double>(e.t1 - t0) / span * static_cast<double>(width);
      auto first_col = static_cast<std::size_t>(std::max(0.0, c0));
      auto last_col = static_cast<std::size_t>(std::max(0.0, c1));
      last_col = std::min(last_col, width - 1);
      first_col = std::min(first_col, width - 1);
      for (std::size_t c = first_col; c <= last_col; ++c) {
        const double lo = std::max(c0, static_cast<double>(c));
        const double hi = std::min(c1, static_cast<double>(c + 1));
        if (hi > lo) {
          col_time[c * kTraceStateCount + static_cast<std::size_t>(e.state)] +=
              static_cast<std::uint64_t>((hi - lo) * span / static_cast<double>(width));
        }
      }
    }
    std::string row(width, ' ');
    for (std::size_t c = 0; c < width; ++c) {
      std::uint64_t best = 0;
      char glyph = ' ';
      for (std::size_t k = 0; k < kTraceStateCount; ++k) {
        if (col_time[c * kTraceStateCount + k] > best) {
          best = col_time[c * kTraceStateCount + k];
          glyph = kGlyph[k];
        }
      }
      row[c] = glyph;
    }
    const bool is_master = lane == master_lane();
    out += (is_master ? "master " : "core " + std::to_string(lane + 1) + "  ");
    out += '|';
    out += row;
    out += "|\n";
  }
  return out;
}

void TraceRecorder::clear() {
  for (auto& lane : lanes_) lane.clear();
  MutexLock lock(depth_mutex_);
  depth_.clear();
}

TraceScope::TraceScope(TraceRecorder* rec, std::size_t lane, TraceState state) noexcept
    : rec_(rec != nullptr && rec->enabled() ? rec : nullptr),
      lane_(lane),
      state_(state),
      t0_(rec_ != nullptr ? now_ns() : 0) {}

TraceScope::~TraceScope() {
  if (rec_ != nullptr) rec_->record(lane_, state_, t0_, now_ns());
}

}  // namespace atm::rt

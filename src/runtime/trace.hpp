// Execution tracing: per-worker state timelines and ready-queue depth
// samples. This is the raw data behind the paper's Figure 7 (Gauss-Seidel
// state trace at 2 vs 8 cores) and Figure 8 (Blackscholes ready-task count
// with and without ATM).
//
// Lanes are written single-threaded (lane i by worker i, the last lane by
// the master thread), so event recording is lock-free; only the depth
// sample buffer takes a mutex.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.hpp"

namespace atm::rt {

/// Thread states mirroring the paper's trace legends.
enum class TraceState : std::uint8_t {
  Idle,        ///< no ready task available
  TaskExec,    ///< running a task body
  HashKey,     ///< ATM: hash-key computation
  Memoize,     ///< ATM: output copies from/to the THT (copyOuts/updateTHT)
  Creation,    ///< master: task creation & dependence registration
  RuntimeOther,///< scheduling, completion bookkeeping
  Helping      ///< blocked in taskwait, executing other ready tasks
};

[[nodiscard]] constexpr const char* trace_state_name(TraceState s) noexcept {
  switch (s) {
    case TraceState::Idle: return "Idle";
    case TraceState::TaskExec: return "TaskExec";
    case TraceState::HashKey: return "ATM:HashKey";
    case TraceState::Memoize: return "ATM:Memoize";
    case TraceState::Creation: return "Creation";
    case TraceState::RuntimeOther: return "RuntimeOther";
    case TraceState::Helping: return "Helping";
  }
  return "?";
}

inline constexpr std::size_t kTraceStateCount = 7;

struct TraceEvent {
  std::uint64_t t0 = 0;  ///< ns, steady clock
  std::uint64_t t1 = 0;
  TraceState state = TraceState::Idle;
};

struct DepthSample {
  std::uint64_t t = 0;   ///< ns, steady clock
  std::uint32_t depth = 0;
};

/// Aggregate view of one lane (thread) for reporting.
struct LaneSummary {
  std::uint64_t total_ns[kTraceStateCount] = {};
  std::uint64_t event_count[kTraceStateCount] = {};

  [[nodiscard]] double mean_ns(TraceState s) const noexcept {
    const auto i = static_cast<std::size_t>(s);
    return event_count[i] ? static_cast<double>(total_ns[i]) /
                                static_cast<double>(event_count[i])
                          : 0.0;
  }
};

class TraceRecorder {
 public:
  /// `lanes` = worker count + 1 (the extra lane is the master thread).
  /// A disabled recorder ignores all records at negligible cost.
  TraceRecorder(std::size_t lanes, bool enabled);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] std::size_t lane_count() const noexcept { return lanes_.size(); }
  [[nodiscard]] std::size_t master_lane() const noexcept { return lanes_.size() - 1; }

  void record(std::size_t lane, TraceState state, std::uint64_t t0, std::uint64_t t1);
  void sample_depth(std::uint64_t t, std::size_t depth);

  [[nodiscard]] const std::vector<TraceEvent>& lane(std::size_t i) const {
    return lanes_[i];
  }
  [[nodiscard]] std::vector<DepthSample> depth_samples() const;

  [[nodiscard]] LaneSummary summarize_lane(std::size_t i) const;
  [[nodiscard]] LaneSummary summarize_all() const;

  /// First/last event timestamps across lanes (0 if empty).
  [[nodiscard]] std::uint64_t first_event_ns() const;
  [[nodiscard]] std::uint64_t last_event_ns() const;

  /// Render a compact ASCII timeline: one row per lane, `width` columns,
  /// dominant state per column encoded as a character
  /// (.=idle X=exec h=hash m=memoize c=creation r=other H=helping).
  [[nodiscard]] std::string ascii_timeline(std::size_t width = 100) const;

  void clear();

 private:
  bool enabled_;
  std::vector<std::vector<TraceEvent>> lanes_;
  mutable Mutex depth_mutex_;
  std::vector<DepthSample> depth_ ATM_GUARDED_BY(depth_mutex_);
};

/// RAII scope that records one event on a lane.
class TraceScope {
 public:
  TraceScope(TraceRecorder* rec, std::size_t lane, TraceState state) noexcept;
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder* rec_;
  std::size_t lane_;
  TraceState state_;
  std::uint64_t t0_;
};

}  // namespace atm::rt

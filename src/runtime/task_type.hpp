// Task types: one per source-level task annotation. The programmer marks the
// types eligible for ATM (paper §III-E proposes extending the OpenMP pragmas
// with exactly this) and supplies the per-type Dynamic-ATM parameters of
// Table II (L_training, tau_max).
#pragma once

#include <cstdint>
#include <string>

namespace atm::rt {

/// Per-type Dynamic ATM tuning knobs (paper Table II).
struct AtmParams {
  /// Tasks that must be *correctly* approximated at the current p before the
  /// training phase ends (L_training).
  std::uint32_t l_training = 15;
  /// Per-task Chebyshev relative-error acceptance threshold (tau_max),
  /// expressed as a fraction (0.01 == 1%).
  double tau_max = 0.01;
  /// Per-type key-quantization epsilons (tolerance-matching keys). Negative
  /// (default) inherits the engine-wide AtmConfig value; 0 forces exact
  /// keys for this type even when the engine default is tolerant.
  double tolerance_rel = -1.0;
  double tolerance_abs = -1.0;
};

/// Immutable description of a task type, registered once with the Runtime.
struct TaskTypeDesc {
  std::string name;
  /// Programmer opt-in: only deterministic tasks with fully declared
  /// inputs/outputs may set this (paper §III-E).
  bool memoizable = false;
  AtmParams atm;
};

/// Registered task type. Owned by the Runtime; identified by a dense id used
/// to index ATM's per-type sampler and training state.
class TaskType {
 public:
  TaskType(std::uint32_t id, TaskTypeDesc desc) : id_(id), desc_(std::move(desc)) {}

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return desc_.name; }
  [[nodiscard]] bool memoizable() const noexcept { return desc_.memoizable; }
  [[nodiscard]] const AtmParams& atm_params() const noexcept { return desc_.atm; }

 private:
  std::uint32_t id_;
  TaskTypeDesc desc_;
};

}  // namespace atm::rt

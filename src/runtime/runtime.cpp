#include "runtime/runtime.hpp"

#include <cassert>

#include "common/timing.hpp"

namespace atm::rt {

namespace {
/// Lane id of the calling thread: workers set this on startup; any other
/// thread (the master, test threads) maps to the master lane.
thread_local std::ptrdiff_t tls_lane = -1;
}  // namespace

Runtime::Runtime(RuntimeConfig config)
    : num_threads_(config.num_threads != 0 ? config.num_threads
                                           : std::max(1u, std::thread::hardware_concurrency())),
      sched_policy_(config.sched),
      tracer_(std::make_unique<TraceRecorder>(num_threads_ + 1, config.enable_tracing)),
      sched_(Scheduler::make(config.sched, num_threads_, tracer_.get())) {
  workers_.reserve(num_threads_);
  for (unsigned w = 0; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
  started_.store(true, std::memory_order_release);
}

Runtime::~Runtime() {
  taskwait();
  sched_->shutdown();
  for (auto& t : workers_) t.join();
}

const TaskType* Runtime::register_type(TaskTypeDesc desc) {
  std::lock_guard<std::mutex> lock(types_mutex_);
  const auto id = static_cast<std::uint32_t>(types_.size());
  types_.push_back(std::make_unique<TaskType>(id, std::move(desc)));
  return types_.back().get();
}

std::size_t Runtime::type_count() const {
  std::lock_guard<std::mutex> lock(types_mutex_);
  return types_.size();
}

void Runtime::attach_memoizer(MemoizationHook* hook) {
  hook_ = hook;
  if (hook != nullptr) hook->on_attach(*this);
}

std::size_t Runtime::current_lane() const noexcept {
  return tls_lane >= 0 ? static_cast<std::size_t>(tls_lane) : tracer_->master_lane();
}

void Runtime::submit(const TaskType* type, std::function<void()> fn,
                     std::vector<DataAccess> accesses) {
  assert(type != nullptr);
  auto owned = std::make_unique<Task>();
  Task* task = owned.get();
  task->type = type;
  task->fn = std::move(fn);
  task->accesses = std::move(accesses);

  bool ready = false;
  {
    TraceScope creation(tracer_.get(), current_lane(), TraceState::Creation);
    std::lock_guard<std::mutex> lock(graph_mutex_);
    task->id = next_task_id_++;
    deps_scratch_.clear();
    tracker_.register_task(*task, deps_scratch_);
    for (Task* dep : deps_scratch_) {
      if (dep->state != TaskState::Finished) {
        dep->successors.push_back(task);
        ++task->pending_preds;
      }
    }
    ++pending_tasks_;
    tasks_.push_back(std::move(owned));
    if (task->pending_preds == 0) {
      task->state = TaskState::Ready;
      ready = true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.submitted;
  }
  if (ready) sched_->push(task, current_lane());
}

void Runtime::taskwait() {
  std::unique_lock<std::mutex> lock(graph_mutex_);
  all_done_cv_.wait(lock, [&] { return pending_tasks_ == 0; });
  // Barrier semantics: every submitted task finished; future tasks can only
  // depend on finished work, so the segment map and task records can go.
  tracker_.clear();
  tasks_.clear();
}

void Runtime::worker_main(unsigned worker_id) {
  tls_lane = static_cast<std::ptrdiff_t>(worker_id);
  for (;;) {
    Task* task = nullptr;
    {
      TraceScope idle(tracer_.get(), worker_id, TraceState::Idle);
      task = sched_->pop_blocking(worker_id);
    }
    if (task == nullptr) return;
    process_task(task, worker_id);
  }
}

void Runtime::process_task(Task* task, std::size_t lane) {
  MemoizationHook::Decision decision = MemoizationHook::Decision::Execute;
  if (hook_ != nullptr && task->type->memoizable()) {
    decision = hook_->on_task_ready(*task, lane);
  }
  switch (decision) {
    case MemoizationHook::Decision::Hit: {
      task->atm_memoized = true;
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.memoized;
      }
      complete_task(*task);
      return;
    }
    case MemoizationHook::Decision::Deferred: {
      // The in-flight twin fulfills the output copy and calls
      // complete_without_execution(); nothing more to do on this worker.
      return;
    }
    case MemoizationHook::Decision::Execute: {
      task->state = TaskState::Running;
      {
        TraceScope exec(tracer_.get(), lane, TraceState::TaskExec);
        task->fn();
      }
      if (hook_ != nullptr && task->type->memoizable()) {
        hook_->on_task_executed(*task, lane);
      }
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.executed;
      }
      complete_task(*task);
      return;
    }
  }
}

void Runtime::complete_without_execution(Task& task, bool via_ikt) {
  task.atm_memoized = true;
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    if (via_ikt) {
      ++counters_.deferred;
    } else {
      ++counters_.memoized;
    }
  }
  complete_task(task);
}

void Runtime::complete_task(Task& task) {
  std::vector<Task*> newly_ready;
  bool all_done = false;
  {
    std::lock_guard<std::mutex> lock(graph_mutex_);
    task.state = TaskState::Finished;
    for (Task* succ : task.successors) {
      if (--succ->pending_preds == 0) {
        succ->state = TaskState::Ready;
        newly_ready.push_back(succ);
      }
    }
    --pending_tasks_;
    all_done = pending_tasks_ == 0;
  }
  const std::size_t lane = current_lane();
  for (Task* succ : newly_ready) sched_->push(succ, lane);
  if (all_done) all_done_cv_.notify_all();
}

RuntimeCounters Runtime::counters() const {
  std::lock_guard<std::mutex> lock(counters_mutex_);
  return counters_;
}

}  // namespace atm::rt

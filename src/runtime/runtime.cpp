#include "runtime/runtime.hpp"

#include <cassert>

#include "common/timing.hpp"

namespace atm::rt {

namespace {
/// Lane id of the calling thread: workers set this on startup; the master
/// sets it to the helper lane while it helps at a taskwait; any other
/// thread (the master outside taskwait, test threads) maps to the master
/// lane for tracing and to the external lane for scheduler pushes.
thread_local std::ptrdiff_t tls_lane = -1;

/// Scheduler push lane of the calling thread: a worker (or the helping
/// master) pushes into its own slot; everyone else submits externally.
[[nodiscard]] std::size_t tls_push_lane() noexcept {
  return tls_lane >= 0 ? static_cast<std::size_t>(tls_lane)
                       : ~std::size_t{0};
}
}  // namespace

Runtime::Runtime(RuntimeConfig config)
    : num_threads_(config.num_threads != 0 ? config.num_threads
                                           : std::max(1u, std::thread::hardware_concurrency())),
      sched_policy_(config.sched),
      help_taskwait_(config.help_taskwait),
      profile_tasks_(config.profile_tasks),
      tracer_(std::make_unique<TraceRecorder>(num_threads_ + 1, config.enable_tracing)),
      sched_(Scheduler::make(config.sched, num_threads_, tracer_.get(), &metrics_)),
      arena_(config.arena_block_tasks, config.numa_policy),
      tracker_(config.graph_log2_shards, ShardedDependencyTracker::kDefaultRegionShift,
               config.numa_policy),
      profile_max_types_(config.profile_max_types),
      exec_hist_(std::make_unique<std::atomic<obs::LatencyHistogram*>[]>(
          config.profile_max_types)) {
  help_sessions_ = metrics_.counter("sched.help_sessions", "sessions", "runtime");
  help_tasks_ = metrics_.counter("sched.help_tasks", "tasks", "runtime");
  if (config.metrics) register_collectors();
  workers_.reserve(num_threads_);
  for (unsigned w = 0; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
  // mo: release publishes the fully-constructed runtime to late observers.
  started_.store(true, std::memory_order_release);
  if (config.metrics_interval_ms > 0) {
    obs::MetricsSampler::Options opts;
    opts.interval_ms = config.metrics_interval_ms;
    opts.live_stderr = config.metrics_live;
    sampler_ = std::make_unique<obs::MetricsSampler>(metrics_, opts);
  }
}

Runtime::~Runtime() {
  if (sampler_ != nullptr) sampler_->stop();
  taskwait();
  sched_->shutdown();
  for (auto& t : workers_) t.join();
  // Workers and sampler are gone: nothing can run the hook's collector
  // anymore, so let it drop its registry state before the registry dies.
  if (hook_ != nullptr) {
    hook_->on_detach(*this);
    hook_ = nullptr;
  }
}

void Runtime::register_collectors() {
  // One collector for everything the runtime already counts: the existing
  // snapshot structs (RuntimeCounters, TaskArenaStats, DepIndexStats,
  // SchedulerStats) stay the C++ views, this is the by-name export of the
  // same atomics — no new hot-path cost.
  metrics_.add_collector([this](obs::SampleSink& sink) {
    const RuntimeCounters c = counters();
    sink.counter("runtime.tasks_submitted", c.submitted, "tasks", "runtime");
    sink.counter("runtime.tasks_executed", c.executed, "tasks", "runtime");
    sink.counter("runtime.tasks_memoized", c.memoized, "tasks", "runtime");
    sink.counter("runtime.tasks_deferred", c.deferred, "tasks", "runtime");
    // mo: relaxed — racy monitoring gauge.
    sink.gauge("runtime.pending_tasks",
               static_cast<std::int64_t>(pending_tasks_.load(std::memory_order_relaxed)),
               "tasks", "runtime");

    const TaskArenaStats a = arena_stats();
    sink.gauge("arena.slots", static_cast<std::int64_t>(a.slots), "slots", "arena");
    sink.gauge("arena.free_slots", static_cast<std::int64_t>(a.free_slots),
               "slots", "arena");
    sink.gauge("arena.blocks", static_cast<std::int64_t>(a.blocks), "blocks",
               "arena");
    sink.gauge("arena.slab_bytes", static_cast<std::int64_t>(a.slab_bytes),
               "bytes", "arena");

    const DepIndexStats d = dep_index_stats();
    sink.counter("dep.exact_hits", d.exact_hits, "lookups", "dep_index");
    sink.counter("dep.tree_fallbacks", d.tree_fallbacks, "lookups", "dep_index");
    sink.counter("dep.prune_scans", d.prune_scans, "scans", "dep_index");
    sink.gauge("dep.segments", static_cast<std::int64_t>(tracker_segment_count()),
               "segments", "dep_index");

    const SchedulerStats s = sched_stats();
    sink.gauge("sched.depth", static_cast<std::int64_t>(s.depth), "tasks",
               "scheduler");
    sink.gauge("sched.batch_cap", static_cast<std::int64_t>(s.inbox_batch_cap),
               "tasks", "scheduler");
    sink.counter("sched.steal_misses", s.steal_misses, "sweeps", "scheduler");
    sink.counter("sched.steal_attempts", s.steal_attempts, "sweeps", "scheduler");
    sink.counter("sched.steal_fails", s.steal_fails, "sweeps", "scheduler");
    sink.counter("sched.inbox_drains", s.inbox_drains, "drains", "scheduler");
    sink.counter("sched.inbox_drained_tasks", s.inbox_drained_tasks, "tasks",
                 "scheduler");
  });
}

obs::MetricsSampler::Series Runtime::metrics_series() {
  if (sampler_ == nullptr) return {};
  sampler_->stop();
  return sampler_->series();
}

const TaskType* Runtime::register_type(TaskTypeDesc desc) {
  MutexLock lock(types_mutex_);
  const auto id = static_cast<std::uint32_t>(types_.size());
  types_.push_back(std::make_unique<TaskType>(id, std::move(desc)));
  const TaskType* type = types_.back().get();
  if (profile_tasks_ && id < profile_max_types_) {
    // mo: release pairs with process_task's acquire load so a worker seeing
    // the pointer sees a fully-registered histogram.
    exec_hist_[id].store(
        metrics_.histogram("task." + std::string(type->name()) + ".exec_ns",
                           "ns", "profile"),
        std::memory_order_release);
  }
  return type;
}

std::size_t Runtime::type_count() const {
  MutexLock lock(types_mutex_);
  return types_.size();
}

void Runtime::attach_memoizer(MemoizationHook* hook) {
  if (hook_ != nullptr && hook_ != hook) hook_->on_detach(*this);
  hook_ = hook;
  if (hook != nullptr) hook->on_attach(*this);
}

std::size_t Runtime::current_lane() const noexcept {
  return tls_lane >= 0 ? static_cast<std::size_t>(tls_lane) : tracer_->master_lane();
}

void Runtime::submit(const TaskType* type, InlineFunction fn,
                     std::span<const DataAccess> accesses) {
  assert(type != nullptr);
  Task* task = arena_.acquire();
  task->type = type;
  task->fn = std::move(fn);
  task->accesses.assign(accesses.begin(), accesses.end());
  // The submitted counter doubles as the id allocator (ids are dense in
  // submission order, as before — one atomic instead of two).
  // mo: relaxed — only uniqueness matters for id allocation.
  task->id = counters_.submitted.fetch_add(1, std::memory_order_relaxed);

  // Count the task pending before it can possibly complete; the final
  // decrement in complete_task() is what wakes taskwait().
  // mo: relaxed — the increment precedes any completion of this task in
  // program order; the final acq_rel decrement carries the ordering.
  pending_tasks_.fetch_add(1, std::memory_order_relaxed);

  // Submission guard: holds the ready transition until every predecessor is
  // linked, so a predecessor finishing mid-registration cannot double-push.
  // The guard is set before the first link becomes visible; when no link was
  // made, no other thread can touch the count and the task pushes directly.
  // mo: relaxed — the task is not yet visible to any other thread.
  task->pending_preds.store(1, std::memory_order_relaxed);
  std::uint32_t links = 0;
  const std::size_t lane = current_lane();
  {
    TraceScope creation(tracer_.get(), lane, TraceState::Creation);
    tracker_.register_task(*task, [task, &links](Task* dep) {
      // The shard locks pin `dep` (its segment slots hold references); the
      // succ_lock arbitrates against its completion walk.
      dep->succ_lock.lock();
      if (!dep->succ_sealed) {
        dep->successors.push_back(task);
        // mo: relaxed — the submission guard (+1) is still held, so the
        // count cannot reach zero; succ_lock orders the link itself.
        task->pending_preds.fetch_add(1, std::memory_order_relaxed);
        ++links;
      }
      dep->succ_lock.unlock();
    });
  }
  if (links == 0) {
    // mo: relaxed — no predecessor ever saw this task; the scheduler push
    // publishes it.
    task->pending_preds.store(0, std::memory_order_relaxed);
    task->state = TaskState::Ready;
    sched_->push(task, tls_push_lane());
    // mo: acq_rel — dropping the submission guard: release orders the links
    // above, acquire (on the winning decrement) orders the predecessors'
    // completions before the push.
  } else if (task->pending_preds.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    task->state = TaskState::Ready;
    sched_->push(task, tls_push_lane());
  }
}

void Runtime::taskwait() {
  // mo: acquire pairs with complete_task's final acq_rel decrement.
  if (pending_tasks_.load(std::memory_order_acquire) != 0) {
    // Helping barrier: claim the scheduler's single helper slot and drain/
    // steal tasks instead of parking. A second concurrent caller (or a
    // runtime configured with --taskwait=park) falls back to the condvar.
    // mo: acq_rel — winning the exchange orders this claim against the
    // previous helper's release store below.
    if (help_taskwait_ && !helper_active_.exchange(true, std::memory_order_acq_rel)) {
      help_until_done();
      // mo: release hands the helper slot to the next acq_rel exchange.
      helper_active_.store(false, std::memory_order_release);
    } else {
      MutexLock lock(wait_mutex_);
      // mo: acquire pairs with complete_task's final acq_rel decrement so
      // the woken waiter observes every completed task's writes.
      while (pending_tasks_.load(std::memory_order_acquire) != 0) {
        all_done_cv_.wait(wait_mutex_);
      }
    }
  }
  // Barrier semantics: every submitted task finished; future tasks can only
  // depend on finished work, so every task reference the segment slots held
  // goes now — deterministically draining the arena. The segment geometry
  // itself (and the exact-interval index over it) is retained so the next
  // wave's identical regions are O(1) exact hits instead of fresh inserts;
  // ballooned shards clear outright (see reset_after_barrier). A barrier
  // with no submissions since the last one is a no-op: the previous reset
  // already released everything, so the walk is skipped (back-to-back
  // taskwaits and the destructor's implicit one stay O(1)). wait_mutex_
  // serializes the check-and-reset so a second concurrent caller both
  // avoids a data race on the watermark and returns only after a completed
  // reset (it observes the winner's watermark and skips).
  MutexLock lock(wait_mutex_);
  // mo: relaxed — every submission happened-before this barrier by the
  // taskwait contract; the counter read needs no extra ordering.
  const std::uint64_t submitted = counters_.submitted.load(std::memory_order_relaxed);
  if (submitted != last_reset_submitted_) {
    tracker_.reset_after_barrier();
    last_reset_submitted_ = submitted;
  }
}

void Runtime::help_until_done() {
  // Transient worker: successor pushes and nested submissions made while a
  // helped task runs land in the scheduler's helper slot (LIFO-local, and
  // stealable by the real workers), exactly as on a worker lane.
  const std::size_t lane = tracer_->master_lane();
  const std::ptrdiff_t prev_lane = tls_lane;
  tls_lane = static_cast<std::ptrdiff_t>(num_threads_);
  const auto quit = [this] {
    // mo: acquire pairs with complete_task's final acq_rel decrement.
    return pending_tasks_.load(std::memory_order_acquire) == 0;
  };
  help_sessions_->inc();
  for (;;) {
    Task* task = nullptr;
    {
      // Helping, not Idle: in the Figs. 7/8 timelines a master stuck at the
      // barrier executing other people's tasks is a distinct state ('H').
      TraceScope helping(tracer_.get(), lane, TraceState::Helping);
      task = sched_->helper_pop(quit);
    }
    // nullptr means the quit condition held: every pending task completed
    // (the final completion's notify_helpers() is what wakes a parked
    // helper — exactly-once, no timeout polling).
    if (task == nullptr) break;
    help_tasks_->inc();
    process_task(task, lane);
  }
  tls_lane = prev_lane;
}

void Runtime::worker_main(unsigned worker_id) {
  tls_lane = static_cast<std::ptrdiff_t>(worker_id);
  for (;;) {
    Task* task = nullptr;
    {
      TraceScope idle(tracer_.get(), worker_id, TraceState::Idle);
      task = sched_->pop_blocking(worker_id);
    }
    if (task == nullptr) return;
    process_task(task, worker_id);
  }
}

void Runtime::process_task(Task* task, std::size_t lane) {
  MemoizationHook::Decision decision = MemoizationHook::Decision::Execute;
  if (hook_ != nullptr && task->type->memoizable()) {
    decision = hook_->on_task_ready(*task, lane);
  }
  switch (decision) {
    case MemoizationHook::Decision::Hit: {
      task->atm_memoized = true;
      // mo: relaxed — monotonic statistics counter.
      counters_.memoized.fetch_add(1, std::memory_order_relaxed);
      complete_task(*task);
      return;
    }
    case MemoizationHook::Decision::Deferred: {
      // The in-flight twin fulfills the output copy and calls
      // complete_without_execution(); nothing more to do on this worker.
      return;
    }
    case MemoizationHook::Decision::Execute: {
      task->state = TaskState::Running;
      // Per-type latency profile: opt-in (two clock reads ≈ 40ns, real
      // money against microtasks); the histogram pointer is an acquire-load
      // against a concurrent register_type.
      obs::LatencyHistogram* hist = nullptr;
      if (profile_tasks_ && task->type->id() < profile_max_types_) {
        // mo: acquire pairs with register_type's release store.
        hist = exec_hist_[task->type->id()].load(std::memory_order_acquire);
      }
      const std::uint64_t exec_t0 = hist != nullptr ? now_ns() : 0;
      {
        TraceScope exec(tracer_.get(), lane, TraceState::TaskExec);
        task->fn();
      }
      if (hist != nullptr) hist->record(now_ns() - exec_t0);
      if (hook_ != nullptr && task->type->memoizable()) {
        hook_->on_task_executed(*task, lane);
      }
      // mo: relaxed — monotonic statistics counter.
      counters_.executed.fetch_add(1, std::memory_order_relaxed);
      complete_task(*task);
      return;
    }
  }
}

void Runtime::complete_without_execution(Task& task, bool via_ikt) {
  task.atm_memoized = true;
  // mo: relaxed — monotonic statistics counters.
  if (via_ikt) {
    counters_.deferred.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.memoized.fetch_add(1, std::memory_order_relaxed);
  }
  complete_task(task);
}

void Runtime::complete_task(Task& task) {
  // Seal first: once sealed, submitters treat this task as satisfied and no
  // successor can be appended, so the swapped-out list is complete. The
  // Finished store sits inside the same critical section (so succ_lock
  // holders observing Finished also observe the seal) and uses RELEASE:
  // the tracker's prune path drops segments of Finished tasks after only
  // an acquire-load of this state — without the release/acquire pair a
  // later task whose dependence edge was pruned away could run without a
  // happens-before on this task's body writes (real on ARM; invisible on
  // x86-TSO).
  thread_local std::vector<Task*> successors;
  successors.clear();
  task.succ_lock.lock();
  task.succ_sealed = true;
  // mo: release — see the block comment above (prune path acquire-loads it).
  task.state.store(TaskState::Finished, std::memory_order_release);
  successors.assign(task.successors.begin(), task.successors.end());
  task.successors.clear();
  task.succ_lock.unlock();

  // Eager closure release: captures (and whatever they own) go now, not when
  // the record is recycled.
  task.fn = nullptr;

  const std::size_t lane = tls_push_lane();
  for (Task* succ : successors) {
    // Successors still hold our +1 in pending_preds, so they are live; the
    // thread whose decrement reaches zero owns the push (exactly-once wakeup).
    // mo: acq_rel — release orders this predecessor's body writes before the
    // successor's release; acquire on the final decrement inherits every
    // other predecessor's writes before the push.
    if (succ->pending_preds.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      succ->state = TaskState::Ready;
      sched_->push(succ, lane);
    }
  }

  // Drop the in-flight reference before the task is counted done: `task`
  // must not be touched past this line (the record may be recycled by a
  // submitter immediately), and releasing first makes "taskwait returned"
  // imply "every in-flight reference is gone" — after the barrier's
  // tracker clear, the arena is deterministically drained.
  task_release(&task);

  // mo: acq_rel — release orders this task's completion before the barrier
  // opens; acquire on the final decrement hands taskwait every completion.
  if (pending_tasks_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      // The lock orders the notify against a waiter that passed its
      // predicate check but has not yet suspended.
      MutexLock lock(wait_mutex_);
      all_done_cv_.notify_all();
    }
    // A helping master parks inside the scheduler's lot, not on the condvar
    // above: flip its quit condition awake too.
    sched_->notify_helpers();
  }
}

RuntimeCounters Runtime::counters() const {
  RuntimeCounters c;
  // mo: relaxed — racy monitoring snapshot by contract.
  c.submitted = counters_.submitted.load(std::memory_order_relaxed);
  c.executed = counters_.executed.load(std::memory_order_relaxed);
  c.memoized = counters_.memoized.load(std::memory_order_relaxed);
  c.deferred = counters_.deferred.load(std::memory_order_relaxed);
  return c;
}

}  // namespace atm::rt

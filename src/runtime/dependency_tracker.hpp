// Builds the Task Dependence Graph (TDG) from declared data accesses.
//
// OmpSs/OpenMP-4.0 semantics over byte ranges:
//   * `in`  on [s,e)  -> depends on the last writer of every overlapping byte
//   * `out`/`inout`   -> additionally depends on every reader since that
//                        writer (WAR) and becomes the new last writer
//
// Ranges may partially overlap; the tracker keeps a set of disjoint segments
// keyed by start address and splits them on demand, so irregular accesses
// (not just the block-aligned ones of the paper's apps) are handled exactly.
//
// Not thread-safe by itself: the Runtime serializes calls under its graph
// mutex (task submission and the dependence bookkeeping are cheap relative
// to task bodies; see docs/DESIGN.md §4).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "runtime/task.hpp"

namespace atm::rt {

class DependencyTracker {
 public:
  /// Register every access of `task` and append the distinct predecessor
  /// tasks it must wait for to `deps` (possibly including already-finished
  /// tasks; the caller filters on state).
  void register_task(Task& task, std::vector<Task*>& deps);

  /// Drop all segment bookkeeping (legal only at a barrier, when no task is
  /// pending: every future dependence would be on a finished task anyway).
  void clear() noexcept { segments_.clear(); }

  /// Number of live segments (exposed for tests and memory accounting).
  [[nodiscard]] std::size_t segment_count() const noexcept { return segments_.size(); }

 private:
  struct Segment {
    std::uintptr_t begin = 0;
    std::uintptr_t end = 0;
    Task* writer = nullptr;       ///< last writer, may already be Finished
    std::vector<Task*> readers;   ///< readers since the last write
  };

  using SegMap = std::map<std::uintptr_t, Segment>;

  /// Split the segment at `at` (strictly inside it); returns the iterator to
  /// the right half, which starts at `at`.
  SegMap::iterator split(SegMap::iterator it, std::uintptr_t at);

  /// Record deps of `task` accessing `seg` with `mode`, then update the
  /// segment's writer/readers.
  static void apply(Segment& seg, Task& task, AccessMode mode, std::vector<Task*>& deps);

  static void add_dep(std::vector<Task*>& deps, Task* dep, const Task& self);

  SegMap segments_;
};

}  // namespace atm::rt

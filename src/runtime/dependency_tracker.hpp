// Builds the Task Dependence Graph (TDG) from declared data accesses.
//
// OmpSs/OpenMP-4.0 semantics over byte ranges:
//   * `in`  on [s,e)  -> depends on the last writer of every overlapping byte
//   * `out`/`inout`   -> additionally depends on every reader since that
//                        writer (WAR) and becomes the new last writer
//
// Ranges may partially overlap; the tracker keeps a set of disjoint segments
// keyed by start address and splits them on demand, so irregular accesses
// (not just the block-aligned ones of the paper's apps) are handled exactly.
//
// PR 5: the tracker is a two-level dependence index. Level 1 is an
// open-addressed hash table keyed by the exact (begin, length) of a segment;
// it services the dominant "same region re-submitted every iteration" case
// (stencil blocks, kmeans center reads, storm cells) in O(1) without walking
// the interval tree. Level 2 is the interval tree (plus the ascending append
// log), reached only when an access does not exactly match a live segment —
// partial overlaps, splits, and first-touch registrations. The index entries
// point at tree nodes (std::map nodes are address-stable), and every tree
// emplace/erase keeps the two levels coherent. Barrier resets keep the
// segment *geometry* (and the exact index) while releasing the task
// references, so iterative apps re-enter steady state at O(1) per access on
// the very first post-barrier wave.
//
// Lifetime: every segment slot naming a task (last writer or reader set)
// holds one reference on it (task_retain/task_release), so the pointers in
// the map stay dereferenceable even after the task finished and was
// otherwise retired. Slots referencing only Finished tasks carry no
// dependence information — prune_finished() drops them, which both bounds
// the map for streaming address patterns and releases the final references
// that let the arena recycle the task records.
//
// DependencyTracker is not thread-safe by itself; ShardedDependencyTracker
// (below) partitions the address space into granules, maps granules onto a
// small set of lock-protected shard trackers, and two-phase-locks a task's
// whole footprint so concurrent submitters register atomically — the
// de-serialized replacement for the runtime's old single graph mutex.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <memory_resource>
#include <vector>

#include "common/numa.hpp"
#include "common/thread_safety.hpp"
#include "runtime/task.hpp"
#include "runtime/task_arena.hpp"

namespace atm::rt {

/// Observability counters for the two-level index (monotonic; aggregated
/// across shards by ShardedDependencyTracker::stats()). `exact_hits` vs
/// `tree_fallbacks` is the headline ratio: iterative apps should be
/// exact-dominated; `prune_scans` counts amortized prune sweeps so
/// prune-scan pathology is visible without a profiler.
struct DepIndexStats {
  std::uint64_t exact_hits = 0;      ///< accesses served by the (begin,len) table
  std::uint64_t tree_fallbacks = 0;  ///< accesses that walked the interval tree
  std::uint64_t prune_scans = 0;     ///< prune_finished() sweeps executed

  DepIndexStats& operator+=(const DepIndexStats& o) noexcept {
    exact_hits += o.exact_hits;
    tree_fallbacks += o.tree_fallbacks;
    prune_scans += o.prune_scans;
    return *this;
  }
};

class DependencyTracker {
 public:
  ~DependencyTracker() { clear(); }

  /// Register every access of `task` and append the distinct predecessor
  /// tasks it must wait for to `deps` (possibly including already-finished
  /// tasks; the caller filters via the succ_sealed protocol). Each appended
  /// dep carries one reference, which the caller owns (pooled-task callers
  /// must task_release() each entry after consuming the list; standalone
  /// test tasks are unaffected — their counts never reach the release path).
  void register_task(Task& task, std::vector<Task*>& deps);

  /// Register one access clipped to [begin, end) — the sharded wrapper's
  /// entry point (each shard sees only its own granules of an access).
  void register_range(Task& task, AccessMode mode, std::uintptr_t begin,
                      std::uintptr_t end, std::vector<Task*>& deps);

  /// Drop all segment bookkeeping, releasing the task references the slots
  /// held (legal only at a barrier, when no task is pending: every future
  /// dependence would be on a finished task anyway).
  void clear() noexcept;

  /// Barrier reset that keeps the geometry: release every task reference
  /// (all tasks are finished at a barrier) but retain the segments and the
  /// exact index, so the next wave's identical regions are O(1) exact hits
  /// instead of fresh inserts. Retained segments reference no tasks, which
  /// makes them ordinary prune fodder if the address pattern moves on.
  void reset_task_refs() noexcept;

  /// Drop segments whose writer and readers have all Finished: they can
  /// never contribute a dependence again. Returns the surviving count.
  std::size_t prune_finished() noexcept;

  /// Number of live segments, tree + staged log (tests, memory accounting).
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return segments_.size() + log_.size();
  }

  [[nodiscard]] const DepIndexStats& stats() const noexcept { return stats_; }

 private:
  struct Segment {
    std::uintptr_t begin = 0;
    std::uintptr_t end = 0;
    Task* writer = nullptr;       ///< last writer, may already be Finished
    std::vector<Task*> readers;   ///< readers since the last write
  };

  /// Map nodes come from a per-tracker pool: segments churn once per task
  /// in streaming workloads, and the pool recycles nodes without a
  /// malloc/free round trip (and with better locality than the heap).
  using SegMap = std::pmr::map<std::uintptr_t, Segment>;

  /// One slot of the exact-interval side table. `seg == nullptr` marks an
  /// empty slot; live slots point into `segments_` (node addresses are
  /// stable), keyed by the segment's exact (begin, length).
  struct ExactSlot {
    std::uintptr_t begin = 0;
    std::uintptr_t len = 0;
    Segment* seg = nullptr;
  };

  [[nodiscard]] static std::size_t exact_hash(std::uintptr_t begin,
                                              std::uintptr_t len) noexcept {
    // splitmix64-style avalanche over both key words; the table mask picks
    // the low bits, so the multiply must diffuse begin's high entropy down.
    std::uint64_t x = static_cast<std::uint64_t>(begin) ^
                      (static_cast<std::uint64_t>(len) * 0x9e3779b97f4a7c15ull);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    return static_cast<std::size_t>(x);
  }

  [[nodiscard]] Segment* exact_find(std::uintptr_t begin, std::uintptr_t len) noexcept;
  void exact_insert(Segment* seg);
  void exact_erase(const Segment& seg) noexcept;
  void exact_grow();
  void exact_reserve(std::size_t live);
  void exact_rehash(std::size_t cap);

  /// Emplace into the tree AND the exact index (every tree segment is
  /// indexed; log entries are not — they fold in via merge_log).
  SegMap::iterator tree_emplace(SegMap::iterator hint, std::uintptr_t begin,
                                Segment&& seg);

  /// Split the segment at `at` (strictly inside it); returns the iterator to
  /// the right half, which starts at `at`. Both halves keep referencing the
  /// same tasks, so the duplicated slots each retain their targets.
  SegMap::iterator split(SegMap::iterator it, std::uintptr_t at);

  /// Record deps of `task` accessing `seg` with `mode`, then update the
  /// segment's writer/readers (retaining/releasing as slots change hands).
  static void apply(Segment& seg, Task& task, AccessMode mode, std::vector<Task*>& deps);

  static void add_dep(std::vector<Task*>& deps, Task* dep, const Task& self);
  static void release_segment(Segment& seg) noexcept;

  /// Fold the append log into the tree (each entry is rightmost, so every
  /// insert is an O(1) end-hint append). Called before any tree walk.
  void merge_log();

  std::pmr::unsynchronized_pool_resource node_pool_;
  SegMap segments_{&node_pool_};
  /// Staging run for the fast path: strictly ascending, mutually disjoint
  /// segments that all lie at or beyond every tree segment. The dominant
  /// ascending/fresh-address submission patterns only ever push_back here
  /// (and a full clear drops a flat vector, not a tree); the log folds into
  /// the tree the first time an access actually needs an overlap query.
  std::vector<Segment> log_;
  /// Exact-interval side table: open-addressed, linear probing,
  /// backward-shift deletion (no tombstones). Capacity is a power of two;
  /// empty until the first tree emplace.
  std::vector<ExactSlot> exact_;
  std::size_t exact_live_ = 0;
  /// Upper bound on every segment's end address, tree and log (conservative:
  /// never shrinks outside clear()). An access starting at or past it cannot
  /// overlap anything — the O(1) append fast path.
  std::uintptr_t max_end_ = 0;
  DepIndexStats stats_;
};

/// Sharded front of the tracker: the submit-path lock is split by address
/// region so independent submissions proceed in parallel.
///
/// Mapping: the address space is cut into 2^region_shift-byte granules and
/// each granule hashes onto one of the 2^log2_shards shard trackers. A
/// task's accesses are clipped at granule boundaries and each piece is
/// registered in its granule's shard. Registration first collects the
/// shard set of the whole footprint and locks it in ascending index order —
/// classic two-phase locking, so two tasks overlapping in several shards
/// can never observe each other in opposite orders (no dependence cycles).
/// The common single-access single-granule task shape skips the footprint
/// machinery entirely and locks its one shard directly.
class ShardedDependencyTracker {
 public:
  /// Default granule size exponent: 2 MiB granules keep typical app block
  /// accesses in one shard while spreading distinct buffers across the pool.
  static constexpr unsigned kDefaultRegionShift = 21;

  /// Up to 64 shards (the footprint set is a 64-bit mask). `numa` applies
  /// best-effort placement to the shard array: under stealing any worker may
  /// submit against any shard, so interleaving spreads the lock/tree traffic
  /// evenly across nodes (no-op on single-node hosts).
  explicit ShardedDependencyTracker(unsigned log2_shards = 4,
                                    unsigned region_shift = kDefaultRegionShift,
                                    NumaPolicy numa = NumaPolicy::Off);

  /// Register `task`, then call `visit(dep)` for every distinct predecessor
  /// while the footprint's shard locks are still held (the locks pin the
  /// segment references, so dep pointers are safe to link during the visit).
  /// Thread-safety analysis is off here: the slow path acquires a
  /// data-dependent set of shard locks through lock_mask(footprint), which
  /// the static analysis cannot name (the fast path's single lock/unlock
  /// pair is visible but shares the function). The protocol itself —
  /// ascending-index two-phase locking — is documented at lock_mask.
  template <typename DepVisitor>
  void register_task(Task& task, DepVisitor&& visit) ATM_NO_THREAD_SAFETY_ANALYSIS {
    thread_local std::vector<Task*> deps;
    deps.clear();
    // Fast path: one access inside one granule (the dominant task shape in
    // fine-grained storms) locks its single shard directly — no footprint
    // mask, no bit loops, no granule clipping.
    if (task.accesses.size() == 1) {
      const DataAccess& access = task.accesses.front();
      const std::uintptr_t s = access.begin();
      const std::uintptr_t e = access.end();
      if (s != e && ((s ^ (e - 1)) >> region_shift_) == 0) {
        Shard& shard = shards_[shard_index(s)];
        shard.mutex.lock();
        shard.tracker.register_range(task, access.mode, s, e, deps);
        for (Task* dep : deps) visit(dep);
        maybe_prune_shard(shard);
        shard.mutex.unlock();
        for (Task* dep : deps) task_release(dep);
        return;
      }
    }
    const std::uint64_t footprint = footprint_mask(task);
    lock_mask(footprint);
    for (const DataAccess& access : task.accesses) {
      std::uintptr_t cursor = access.begin();
      const std::uintptr_t end = access.end();
      while (cursor < end) {
        const std::uintptr_t granule_end =
            ((cursor >> region_shift_) + 1) << region_shift_;
        const std::uintptr_t piece_end = granule_end < end ? granule_end : end;
        shards_[shard_index(cursor)].tracker.register_range(task, access.mode, cursor,
                                                            piece_end, deps);
        cursor = piece_end;
      }
    }
    for (Task* dep : deps) visit(dep);
    maybe_prune_locked(footprint);
    unlock_mask(footprint);
    // Drop the references add_dep() took on the deps list entries.
    for (Task* dep : deps) task_release(dep);
  }

  /// Barrier reset: every shard releases its task references but keeps its
  /// segment geometry + exact index (so post-barrier waves re-submitting
  /// the same regions hit the O(1) exact table). Shards whose maps grew
  /// past the retention cap are fully cleared instead — retention is a
  /// reuse accelerator, not a leak.
  void reset_after_barrier() noexcept;

  /// Full reset: clears every shard (releasing all segment references and
  /// dropping all geometry). Used by teardown and tests.
  void clear() noexcept;

  [[nodiscard]] std::size_t segment_count() const;
  [[nodiscard]] DepIndexStats stats() const;
  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shard_count_);
  }

 private:
  struct alignas(64) Shard {
    /// Spinlock, not a futex mutex: the critical section is a couple of map
    /// operations and submissions rarely collide on a shard; TaskSpinLock
    /// yields after a bounded burst, so oversubscribed hosts stay live.
    TaskSpinLock mutex;
    DependencyTracker tracker ATM_GUARDED_BY(mutex);
    /// Segment count after the last prune; the next prune triggers once the
    /// map doubles past it (amortized O(1) per registration).
    std::size_t prune_floor ATM_GUARDED_BY(mutex) = 0;
  };

  [[nodiscard]] std::size_t shard_index(std::uintptr_t addr) const noexcept {
    if (log2_shards_ == 0) return 0;
    const std::uint64_t granule = static_cast<std::uint64_t>(addr) >> region_shift_;
    return static_cast<std::size_t>((granule * 0x9e3779b97f4a7c15ull) >>
                                    (64 - log2_shards_));
  }

  [[nodiscard]] std::uint64_t footprint_mask(const Task& task) const noexcept;
  /// Dynamic lock set (one lock per set bit, ascending index): opted out of
  /// the static analysis, which cannot express mask-driven acquisition.
  void lock_mask(std::uint64_t mask) noexcept ATM_NO_THREAD_SAFETY_ANALYSIS;
  void unlock_mask(std::uint64_t mask) noexcept ATM_NO_THREAD_SAFETY_ANALYSIS;
  void maybe_prune_locked(std::uint64_t mask) noexcept ATM_NO_THREAD_SAFETY_ANALYSIS;
  static void maybe_prune_shard(Shard& shard) noexcept ATM_REQUIRES(shard.mutex);

  unsigned log2_shards_;
  unsigned region_shift_;
  std::size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace atm::rt

#include "runtime/dependency_tracker.hpp"

#include <algorithm>
#include <bit>

#include "runtime/task_arena.hpp"

namespace atm::rt {

void DependencyTracker::add_dep(std::vector<Task*>& deps, Task* dep, const Task& self) {
  if (dep == nullptr || dep == &self) return;
  if (std::find(deps.begin(), deps.end(), dep) == deps.end()) {
    // The deps list holds a reference per entry: registering a write access
    // may release the dep's (possibly last) segment slot in the very next
    // statement of apply(), and the caller still needs the pointer alive to
    // link the dependence. The caller releases after consuming the list.
    task_retain(dep);
    deps.push_back(dep);
  }
}

void DependencyTracker::apply(Segment& seg, Task& task, AccessMode mode,
                              std::vector<Task*>& deps) {
  const bool reads = mode != AccessMode::Out;
  const bool writes = mode != AccessMode::In;
  if (reads) {
    add_dep(deps, seg.writer, task);
  }
  if (writes) {
    add_dep(deps, seg.writer, task);
    for (Task* r : seg.readers) add_dep(deps, r, task);
    // Retain the new writer before releasing the old slot holders: when the
    // task already owns the slot (a second overlapping write access) the
    // count must never transiently reach zero.
    task_retain(&task);
    if (seg.writer != nullptr) task_release(seg.writer);
    seg.writer = &task;
    for (Task* r : seg.readers) task_release(r);
    seg.readers.clear();
  } else {
    if (std::find(seg.readers.begin(), seg.readers.end(), &task) == seg.readers.end()) {
      task_retain(&task);
      seg.readers.push_back(&task);
    }
  }
}

void DependencyTracker::release_segment(Segment& seg) noexcept {
  if (seg.writer != nullptr) task_release(seg.writer);
  for (Task* r : seg.readers) task_release(r);
  seg.writer = nullptr;
  seg.readers.clear();
}

DependencyTracker::SegMap::iterator DependencyTracker::split(SegMap::iterator it,
                                                             std::uintptr_t at) {
  Segment left = it->second;
  Segment right = it->second;
  left.end = at;
  right.begin = at;
  // The copy doubled every slot: retain once more per referenced task (the
  // original's references are inherited by one of the halves).
  if (right.writer != nullptr) task_retain(right.writer);
  for (Task* r : right.readers) task_retain(r);
  segments_.erase(it);
  segments_.emplace(left.begin, std::move(left));
  auto [rit, inserted] = segments_.emplace(right.begin, std::move(right));
  (void)inserted;
  return rit;
}

void DependencyTracker::register_range(Task& task, AccessMode mode, std::uintptr_t s,
                                       std::uintptr_t e, std::vector<Task*>& deps) {
  if (s == e) return;

  if (s >= max_end_) {
    // Fast path: [s, e) lies beyond every recorded segment, so it overlaps
    // nothing — stage a fresh segment in the flat log without touching the
    // tree. Streaming and array-order submissions (ascending addresses)
    // live here entirely.
    Segment fresh{s, e, nullptr, {}};
    apply(fresh, task, mode, deps);
    log_.push_back(std::move(fresh));
    max_end_ = e;
    return;
  }
  if (!log_.empty()) merge_log();

  // Locate the first segment that may overlap [s, e).
  auto it = segments_.lower_bound(s);
  if (it != segments_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > s) it = prev;
  }

  std::uintptr_t cursor = s;
  while (cursor < e) {
    if (it == segments_.end() || it->second.begin >= e) {
      // Trailing gap [cursor, e): fresh segment, no dependences.
      Segment fresh{cursor, e, nullptr, {}};
      apply(fresh, task, mode, deps);
      segments_.emplace(cursor, std::move(fresh));
      if (e > max_end_) max_end_ = e;
      cursor = e;
      break;
    }
    if (it->second.end <= cursor) {
      ++it;
      continue;
    }
    if (it->second.begin > cursor) {
      // Gap [cursor, it->begin): fresh segment.
      Segment fresh{cursor, it->second.begin, nullptr, {}};
      apply(fresh, task, mode, deps);
      segments_.emplace(cursor, std::move(fresh));
      cursor = it->second.begin;
      continue;  // `it` stays valid across the insert
    }
    // Segment starts at or before the cursor and overlaps it.
    if (it->second.begin < cursor) it = split(it, cursor);
    if (it->second.end > e) split(it, e), it = segments_.find(cursor);
    apply(it->second, task, mode, deps);
    cursor = it->second.end;
    ++it;
  }
}

void DependencyTracker::register_task(Task& task, std::vector<Task*>& deps) {
  for (const DataAccess& access : task.accesses) {
    register_range(task, access.mode, access.begin(), access.end(), deps);
  }
}

void DependencyTracker::merge_log() {
  // Log entries are ascending and beyond every tree key: each insert lands
  // rightmost, so the end hint makes the fold O(1) per entry.
  for (Segment& seg : log_) {
    const std::uintptr_t begin = seg.begin;
    segments_.emplace_hint(segments_.end(), begin, std::move(seg));
  }
  log_.clear();
}

void DependencyTracker::clear() noexcept {
  for (auto& [begin, seg] : segments_) release_segment(seg);
  segments_.clear();
  for (Segment& seg : log_) release_segment(seg);
  log_.clear();
  max_end_ = 0;
}

std::size_t DependencyTracker::prune_finished() noexcept {
  if (!log_.empty()) merge_log();
  // Acquire-loads pair with the release Finished store in complete_task:
  // erasing a segment deletes the dependence edge a future task would have
  // taken, so the pruning thread must inherit the finished task's body
  // writes here — the succ_lock seal handshake that normally provides the
  // ordering is bypassed once the segment is gone.
  const auto finished = [](Task* t) {
    return t->state.load(std::memory_order_acquire) == TaskState::Finished;
  };
  for (auto it = segments_.begin(); it != segments_.end();) {
    Segment& seg = it->second;
    const bool writer_done = seg.writer == nullptr || finished(seg.writer);
    bool readers_done = writer_done;
    if (readers_done) {
      for (Task* r : seg.readers) {
        if (!finished(r)) {
          readers_done = false;
          break;
        }
      }
    }
    if (readers_done) {
      release_segment(seg);
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
  return segments_.size();
}

// --- ShardedDependencyTracker ----------------------------------------------

ShardedDependencyTracker::ShardedDependencyTracker(unsigned log2_shards,
                                                   unsigned region_shift)
    : log2_shards_(log2_shards > 6 ? 6 : log2_shards),
      region_shift_(region_shift),
      shard_count_(std::size_t{1} << log2_shards_),
      shards_(std::make_unique<Shard[]>(shard_count_)) {}

std::uint64_t ShardedDependencyTracker::footprint_mask(const Task& task) const noexcept {
  std::uint64_t mask = 0;
  for (const DataAccess& access : task.accesses) {
    const std::uintptr_t s = access.begin();
    const std::uintptr_t e = access.end();
    if (s == e) continue;
    for (std::uint64_t g = static_cast<std::uint64_t>(s) >> region_shift_,
                       last = static_cast<std::uint64_t>(e - 1) >> region_shift_;
         g <= last; ++g) {
      mask |= std::uint64_t{1} << shard_index(static_cast<std::uintptr_t>(
                  g << region_shift_));
    }
  }
  return mask;
}

void ShardedDependencyTracker::lock_mask(std::uint64_t mask) noexcept {
  // Ascending-index acquisition (two-phase locking); iterate set bits only.
  while (mask != 0) {
    const int i = std::countr_zero(mask);
    shards_[i].mutex.lock();
    mask &= mask - 1;
  }
}

void ShardedDependencyTracker::unlock_mask(std::uint64_t mask) noexcept {
  while (mask != 0) {
    const int i = std::countr_zero(mask);
    shards_[i].mutex.unlock();
    mask &= mask - 1;
  }
}

void ShardedDependencyTracker::maybe_prune_locked(std::uint64_t mask) noexcept {
  // Called with the masked shards still locked. The doubling rule keeps the
  // map within 2x of its live segments, amortizing the prune scan to O(1)
  // per registration — this is what bounds the segment map for streaming
  // workloads that never revisit an address. The floor is set so barrier-
  // paced workloads (whose maps are cleared at each taskwait anyway) never
  // pay a scan: pruning is a streaming-only safety valve, sized at ~1 MiB
  // of segment nodes per shard before the first scan.
  constexpr std::size_t kPruneMinimum = 8192;
  while (mask != 0) {
    const int i = std::countr_zero(mask);
    mask &= mask - 1;
    Shard& shard = shards_[i];
    const std::size_t count = shard.tracker.segment_count();
    if (count >= kPruneMinimum && count >= 2 * shard.prune_floor) {
      shard.prune_floor = shard.tracker.prune_finished();
    }
  }
}

void ShardedDependencyTracker::clear() noexcept {
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<TaskSpinLock> lock(shards_[i].mutex);
    shards_[i].tracker.clear();
    shards_[i].prune_floor = 0;
  }
}

std::size_t ShardedDependencyTracker::segment_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<TaskSpinLock> lock(shards_[i].mutex);
    n += shards_[i].tracker.segment_count();
  }
  return n;
}

}  // namespace atm::rt

#include "runtime/dependency_tracker.hpp"

#include <algorithm>
#include <bit>

#include "common/spin_lock.hpp"
#include "runtime/task_arena.hpp"

namespace atm::rt {

void DependencyTracker::add_dep(std::vector<Task*>& deps, Task* dep, const Task& self) {
  if (dep == nullptr || dep == &self) return;
  if (std::find(deps.begin(), deps.end(), dep) == deps.end()) {
    // The deps list holds a reference per entry: registering a write access
    // may release the dep's (possibly last) segment slot in the very next
    // statement of apply(), and the caller still needs the pointer alive to
    // link the dependence. The caller releases after consuming the list.
    task_retain(dep);
    deps.push_back(dep);
  }
}

void DependencyTracker::apply(Segment& seg, Task& task, AccessMode mode,
                              std::vector<Task*>& deps) {
  const bool reads = mode != AccessMode::Out;
  const bool writes = mode != AccessMode::In;
  if (reads) {
    add_dep(deps, seg.writer, task);
  }
  if (writes) {
    add_dep(deps, seg.writer, task);
    for (Task* r : seg.readers) add_dep(deps, r, task);
    // Retain the new writer before releasing the old slot holders: when the
    // task already owns the slot (a second overlapping write access) the
    // count must never transiently reach zero.
    task_retain(&task);
    if (seg.writer != nullptr) task_release(seg.writer);
    seg.writer = &task;
    for (Task* r : seg.readers) task_release(r);
    seg.readers.clear();
  } else {
    if (std::find(seg.readers.begin(), seg.readers.end(), &task) == seg.readers.end()) {
      task_retain(&task);
      seg.readers.push_back(&task);
    }
  }
}

void DependencyTracker::release_segment(Segment& seg) noexcept {
  if (seg.writer != nullptr) task_release(seg.writer);
  for (Task* r : seg.readers) task_release(r);
  seg.writer = nullptr;
  seg.readers.clear();
}

// --- exact-interval side table ---------------------------------------------

DependencyTracker::Segment* DependencyTracker::exact_find(std::uintptr_t begin,
                                                          std::uintptr_t len) noexcept {
  if (exact_live_ == 0) return nullptr;
  const std::size_t mask = exact_.size() - 1;
  std::size_t i = exact_hash(begin, len) & mask;
  for (;;) {
    ExactSlot& slot = exact_[i];
    if (slot.seg == nullptr) return nullptr;
    if (slot.begin == begin && slot.len == len) return slot.seg;
    i = (i + 1) & mask;
  }
}

void DependencyTracker::exact_insert(Segment* seg) {
  if (exact_.empty() || (exact_live_ + 1) * 4 > exact_.size() * 3) exact_grow();
  const std::size_t mask = exact_.size() - 1;
  const std::uintptr_t len = seg->end - seg->begin;
  std::size_t i = exact_hash(seg->begin, len) & mask;
  while (exact_[i].seg != nullptr) {
    if (exact_[i].begin == seg->begin && exact_[i].len == len) {
      exact_[i].seg = seg;
      return;
    }
    i = (i + 1) & mask;
  }
  exact_[i] = ExactSlot{seg->begin, len, seg};
  ++exact_live_;
}

void DependencyTracker::exact_erase(const Segment& seg) noexcept {
  if (exact_live_ == 0) return;
  const std::size_t mask = exact_.size() - 1;
  const std::uintptr_t len = seg.end - seg.begin;
  std::size_t i = exact_hash(seg.begin, len) & mask;
  for (;;) {
    if (exact_[i].seg == nullptr) return;  // not indexed (never happens today)
    if (exact_[i].begin == seg.begin && exact_[i].len == len) break;
    i = (i + 1) & mask;
  }
  // Backward-shift deletion: pull every later cluster member whose probe
  // path crossed the hole back over it, so lookups stay tombstone-free
  // (splits and prunes delete constantly; tombstones would decay the table).
  std::size_t hole = i;
  std::size_t j = (i + 1) & mask;
  while (exact_[j].seg != nullptr) {
    const std::size_t home = exact_hash(exact_[j].begin, exact_[j].len) & mask;
    if (((j - home) & mask) >= ((j - hole) & mask)) {
      exact_[hole] = exact_[j];
      hole = j;
    }
    j = (j + 1) & mask;
  }
  exact_[hole] = ExactSlot{};
  --exact_live_;
}

void DependencyTracker::exact_grow() { exact_rehash(exact_.empty() ? 64 : exact_.size() * 2); }

void DependencyTracker::exact_reserve(std::size_t live) {
  // Smallest power-of-two capacity keeping the load factor under 3/4.
  std::size_t cap = exact_.empty() ? 64 : exact_.size();
  while (live * 4 > cap * 3) cap *= 2;
  if (cap != exact_.size()) exact_rehash(cap);
}

void DependencyTracker::exact_rehash(std::size_t cap) {
  std::vector<ExactSlot> old = std::move(exact_);
  exact_.assign(cap, ExactSlot{});
  const std::size_t mask = cap - 1;
  for (const ExactSlot& slot : old) {
    if (slot.seg == nullptr) continue;
    std::size_t i = exact_hash(slot.begin, slot.len) & mask;
    while (exact_[i].seg != nullptr) i = (i + 1) & mask;
    exact_[i] = slot;
  }
}

DependencyTracker::SegMap::iterator DependencyTracker::tree_emplace(
    SegMap::iterator hint, std::uintptr_t begin, Segment&& seg) {
  auto it = segments_.emplace_hint(hint, begin, std::move(seg));
  // Map nodes are address-stable, so the index can point straight at the
  // mapped Segment for the node's whole lifetime.
  exact_insert(&it->second);
  return it;
}

DependencyTracker::SegMap::iterator DependencyTracker::split(SegMap::iterator it,
                                                             std::uintptr_t at) {
  exact_erase(it->second);
  Segment left = it->second;
  Segment right = it->second;
  left.end = at;
  right.begin = at;
  // The copy doubled every slot: retain once more per referenced task (the
  // original's references are inherited by one of the halves).
  if (right.writer != nullptr) task_retain(right.writer);
  for (Task* r : right.readers) task_retain(r);
  auto hint = segments_.erase(it);
  tree_emplace(hint, left.begin, std::move(left));
  return tree_emplace(hint, right.begin, std::move(right));
}

void DependencyTracker::register_range(Task& task, AccessMode mode, std::uintptr_t s,
                                       std::uintptr_t e, std::vector<Task*>& deps) {
  if (s == e) return;

  if (s >= max_end_) {
    // Fast path: [s, e) lies beyond every recorded segment, so it overlaps
    // nothing — stage a fresh segment in the flat log without touching the
    // tree. Streaming and array-order submissions (ascending addresses)
    // live here entirely. (The exact table cannot contain such a range:
    // every indexed segment ends at or below max_end_.)
    Segment fresh{s, e, nullptr, {}};
    apply(fresh, task, mode, deps);
    log_.push_back(std::move(fresh));
    max_end_ = e;
    return;
  }

  // Level 1: exact-interval probe. A segment keyed by exactly (s, e - s)
  // covers the whole access, and — segments being disjoint — nothing else
  // can overlap [s, e): apply in O(1) with no tree walk. This is the
  // "same region re-submitted every iteration" case (stencil blocks,
  // shared read regions, post-barrier re-waves over retained geometry).
  if (Segment* seg = exact_find(s, e - s)) {
    ++stats_.exact_hits;
    apply(*seg, task, mode, deps);
    return;
  }

  // Level 2: the interval tree (partial overlaps, splits, first touches).
  ++stats_.tree_fallbacks;
  if (!log_.empty()) merge_log();

  // Locate the first segment that may overlap [s, e).
  auto it = segments_.lower_bound(s);
  if (it != segments_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > s) it = prev;
  }

  std::uintptr_t cursor = s;
  while (cursor < e) {
    if (it == segments_.end() || it->second.begin >= e) {
      // Trailing gap [cursor, e): fresh segment, no dependences.
      Segment fresh{cursor, e, nullptr, {}};
      apply(fresh, task, mode, deps);
      tree_emplace(it, cursor, std::move(fresh));
      if (e > max_end_) max_end_ = e;
      cursor = e;
      break;
    }
    if (it->second.end <= cursor) {
      ++it;
      continue;
    }
    if (it->second.begin > cursor) {
      // Gap [cursor, it->begin): fresh segment.
      Segment fresh{cursor, it->second.begin, nullptr, {}};
      apply(fresh, task, mode, deps);
      tree_emplace(it, cursor, std::move(fresh));
      cursor = it->second.begin;
      continue;  // `it` stays valid across the insert
    }
    // Segment starts at or before the cursor and overlaps it.
    if (it->second.begin < cursor) it = split(it, cursor);
    if (it->second.end > e) split(it, e), it = segments_.find(cursor);
    apply(it->second, task, mode, deps);
    cursor = it->second.end;
    ++it;
  }
}

void DependencyTracker::register_task(Task& task, std::vector<Task*>& deps) {
  for (const DataAccess& access : task.accesses) {
    register_range(task, access.mode, access.begin(), access.end(), deps);
  }
}

void DependencyTracker::merge_log() {
  // Log entries are ascending and beyond every tree key: each insert lands
  // rightmost, so the end hint makes the fold O(1) per entry — and each
  // folded segment becomes exact-indexable from here on. Presize the index
  // for the whole fold: a 20k-segment first fold would otherwise rehash
  // ~2x the entries across ten growth steps.
  exact_reserve(exact_live_ + log_.size());
  for (Segment& seg : log_) {
    const std::uintptr_t begin = seg.begin;
    tree_emplace(segments_.end(), begin, std::move(seg));
  }
  log_.clear();
}

void DependencyTracker::clear() noexcept {
  for (auto& [begin, seg] : segments_) release_segment(seg);
  segments_.clear();
  for (Segment& seg : log_) release_segment(seg);
  log_.clear();
  exact_ = {};
  exact_live_ = 0;
  max_end_ = 0;
}

void DependencyTracker::reset_task_refs() noexcept {
  // Barrier reset: everything is finished, so the slots' references go, but
  // the geometry stays — fold the log first so every retained segment is
  // reachable through the exact index for the next wave's O(1) hits.
  if (!log_.empty()) merge_log();
  for (auto& [begin, seg] : segments_) release_segment(seg);
}

std::size_t DependencyTracker::prune_finished() noexcept {
  ++stats_.prune_scans;
  if (!log_.empty()) merge_log();
  // mo: acquire — pairs with the release Finished store in complete_task:
  // erasing a segment deletes the dependence edge a future task would have
  // taken, so the pruning thread must inherit the finished task's body
  // writes here — the succ_lock seal handshake that normally provides the
  // ordering is bypassed once the segment is gone.
  const auto finished = [](Task* t) {
    // mo: acquire — see above.
    return t->state.load(std::memory_order_acquire) == TaskState::Finished;
  };
  for (auto it = segments_.begin(); it != segments_.end();) {
    Segment& seg = it->second;
    const bool writer_done = seg.writer == nullptr || finished(seg.writer);
    bool readers_done = writer_done;
    if (readers_done) {
      for (Task* r : seg.readers) {
        if (!finished(r)) {
          readers_done = false;
          break;
        }
      }
    }
    if (readers_done) {
      exact_erase(seg);
      release_segment(seg);
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
  return segments_.size();
}

// --- ShardedDependencyTracker ----------------------------------------------

ShardedDependencyTracker::ShardedDependencyTracker(unsigned log2_shards,
                                                   unsigned region_shift,
                                                   NumaPolicy numa)
    : log2_shards_(log2_shards > 6 ? 6 : log2_shards),
      region_shift_(region_shift),
      shard_count_(std::size_t{1} << log2_shards_),
      shards_(std::make_unique<Shard[]>(shard_count_)) {
  // Every worker may submit against any shard under stealing, so spread the
  // shard cachelines (and the trees they anchor) across nodes. Best effort:
  // a no-op single-node or with the policy off (see common/numa.hpp).
  numa_place(shards_.get(), shard_count_ * sizeof(Shard), numa,
             NumaTopology::system());
}

std::uint64_t ShardedDependencyTracker::footprint_mask(const Task& task) const noexcept {
  std::uint64_t mask = 0;
  for (const DataAccess& access : task.accesses) {
    const std::uintptr_t s = access.begin();
    const std::uintptr_t e = access.end();
    if (s == e) continue;
    for (std::uint64_t g = static_cast<std::uint64_t>(s) >> region_shift_,
                       last = static_cast<std::uint64_t>(e - 1) >> region_shift_;
         g <= last; ++g) {
      mask |= std::uint64_t{1} << shard_index(static_cast<std::uintptr_t>(
                  g << region_shift_));
    }
  }
  return mask;
}

void ShardedDependencyTracker::lock_mask(std::uint64_t mask) noexcept {
  // Ascending-index acquisition (two-phase locking); iterate set bits only.
  while (mask != 0) {
    const int i = std::countr_zero(mask);
    shards_[i].mutex.lock();
    mask &= mask - 1;
  }
}

void ShardedDependencyTracker::unlock_mask(std::uint64_t mask) noexcept {
  while (mask != 0) {
    const int i = std::countr_zero(mask);
    shards_[i].mutex.unlock();
    mask &= mask - 1;
  }
}

void ShardedDependencyTracker::maybe_prune_shard(Shard& shard) noexcept {
  // Called with the shard locked. The doubling rule keeps the map within 2x
  // of its live segments, amortizing the prune scan to O(1) per
  // registration — this is what bounds the segment map for streaming
  // workloads that never revisit an address. The minimum matches the
  // barrier retention cap (kRetainMax): a wave that fits the retained-
  // geometry budget must never be prune-churned mid-wave — the prune would
  // erase segments the next iteration will exact-hit and force the tree to
  // rebuild them. Pruning is a streaming-only safety valve, sized at a few
  // MiB of segment nodes per shard before the first scan.
  constexpr std::size_t kPruneMinimum = std::size_t{1} << 15;
  const std::size_t count = shard.tracker.segment_count();
  if (count >= kPruneMinimum && count >= 2 * shard.prune_floor) {
    shard.prune_floor = shard.tracker.prune_finished();
  }
}

void ShardedDependencyTracker::maybe_prune_locked(std::uint64_t mask) noexcept {
  while (mask != 0) {
    const int i = std::countr_zero(mask);
    mask &= mask - 1;
    maybe_prune_shard(shards_[i]);
  }
}

void ShardedDependencyTracker::reset_after_barrier() noexcept {
  // Retained geometry is a reuse accelerator, not a cache the runtime owes
  // anyone: a shard whose map ballooned past the cap (huge one-shot
  // footprint that will never be re-submitted) clears outright instead of
  // carrying dead segments forever. ~32k segments per shard is far beyond
  // any iterative app's steady footprint and far below streaming peaks.
  constexpr std::size_t kRetainMax = std::size_t{1} << 15;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    SpinLockGuard lock(shards_[i].mutex);
    if (shards_[i].tracker.segment_count() > kRetainMax) {
      shards_[i].tracker.clear();
      shards_[i].prune_floor = 0;
    } else {
      shards_[i].tracker.reset_task_refs();
      // The retained geometry is all-finished (writer-less) by definition —
      // to the prune sweep it looks like pure garbage. Raising the floor to
      // the retained size keeps the doubling rule measuring genuine
      // streaming growth on top of it; without this, the first post-barrier
      // prune would wipe the geometry the reset just preserved and the next
      // wave would pay tree fallbacks to rebuild it.
      shards_[i].prune_floor = shards_[i].tracker.segment_count();
    }
  }
}

void ShardedDependencyTracker::clear() noexcept {
  for (std::size_t i = 0; i < shard_count_; ++i) {
    SpinLockGuard lock(shards_[i].mutex);
    shards_[i].tracker.clear();
    shards_[i].prune_floor = 0;
  }
}

std::size_t ShardedDependencyTracker::segment_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    SpinLockGuard lock(shards_[i].mutex);
    n += shards_[i].tracker.segment_count();
  }
  return n;
}

DepIndexStats ShardedDependencyTracker::stats() const {
  DepIndexStats total;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    SpinLockGuard lock(shards_[i].mutex);
    total += shards_[i].tracker.stats();
  }
  return total;
}

}  // namespace atm::rt

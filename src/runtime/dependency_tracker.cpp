#include "runtime/dependency_tracker.hpp"

#include <algorithm>

namespace atm::rt {

void DependencyTracker::add_dep(std::vector<Task*>& deps, Task* dep, const Task& self) {
  if (dep == nullptr || dep == &self) return;
  if (std::find(deps.begin(), deps.end(), dep) == deps.end()) deps.push_back(dep);
}

void DependencyTracker::apply(Segment& seg, Task& task, AccessMode mode,
                              std::vector<Task*>& deps) {
  const bool reads = mode != AccessMode::Out;
  const bool writes = mode != AccessMode::In;
  if (reads) {
    add_dep(deps, seg.writer, task);
  }
  if (writes) {
    add_dep(deps, seg.writer, task);
    for (Task* r : seg.readers) add_dep(deps, r, task);
    seg.writer = &task;
    seg.readers.clear();
  } else {
    if (std::find(seg.readers.begin(), seg.readers.end(), &task) == seg.readers.end()) {
      seg.readers.push_back(&task);
    }
  }
}

DependencyTracker::SegMap::iterator DependencyTracker::split(SegMap::iterator it,
                                                             std::uintptr_t at) {
  Segment left = it->second;
  Segment right = it->second;
  left.end = at;
  right.begin = at;
  segments_.erase(it);
  segments_.emplace(left.begin, left);
  auto [rit, inserted] = segments_.emplace(right.begin, right);
  (void)inserted;
  return rit;
}

void DependencyTracker::register_task(Task& task, std::vector<Task*>& deps) {
  for (const DataAccess& access : task.accesses) {
    const std::uintptr_t s = access.begin();
    const std::uintptr_t e = access.end();
    if (s == e) continue;

    // Locate the first segment that may overlap [s, e).
    auto it = segments_.lower_bound(s);
    if (it != segments_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > s) it = prev;
    }

    std::uintptr_t cursor = s;
    while (cursor < e) {
      if (it == segments_.end() || it->second.begin >= e) {
        // Trailing gap [cursor, e): fresh segment, no dependences.
        Segment fresh{cursor, e, nullptr, {}};
        apply(fresh, task, access.mode, deps);
        segments_.emplace(cursor, std::move(fresh));
        cursor = e;
        break;
      }
      if (it->second.end <= cursor) {
        ++it;
        continue;
      }
      if (it->second.begin > cursor) {
        // Gap [cursor, it->begin): fresh segment.
        Segment fresh{cursor, it->second.begin, nullptr, {}};
        apply(fresh, task, access.mode, deps);
        segments_.emplace(cursor, std::move(fresh));
        cursor = it->second.begin;
        continue;  // `it` stays valid across the insert
      }
      // Segment starts at or before the cursor and overlaps it.
      if (it->second.begin < cursor) it = split(it, cursor);
      if (it->second.end > e) split(it, e), it = segments_.find(cursor);
      apply(it->second, task, access.mode, deps);
      cursor = it->second.end;
      ++it;
    }
  }
}

}  // namespace atm::rt

// Pooled Task storage: block-allocated slots recycled through a free list.
//
// The runtime used to heap-allocate a fresh Task (plus access/successor
// vectors) per submission and keep every record alive until the next
// taskwait — so the malloc pair sat on the submit hot path and a barrier-free
// task stream grew memory without bound. The arena fixes both: acquire()
// pops a retired slot (its vectors keep their capacity, so steady-state
// submission performs no allocation at all) and release() returns a slot the
// moment its reference count drops to zero (see task.hpp for who holds
// references). Blocks are never freed before the arena itself dies, so raw
// Task* stay dereferenceable for the arena's lifetime; the reference count
// is what guarantees a slot is not *recycled* under a holder.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/numa.hpp"
#include "common/spin_lock.hpp"
#include "common/thread_safety.hpp"
#include "runtime/task.hpp"

namespace atm::rt {

/// Point-in-time arena occupancy (tests, table3-style memory accounting,
/// the streaming-regression RSS guard).
struct TaskArenaStats {
  std::size_t slots = 0;        ///< total slots across all blocks
  std::size_t free_slots = 0;   ///< retired slots awaiting reuse
  std::size_t blocks = 0;
  std::size_t slab_bytes = 0;   ///< sizeof(Task) * slots (vector payloads excluded)

  [[nodiscard]] std::size_t live_slots() const noexcept { return slots - free_slots; }
};

class TaskArena {
 public:
  /// `tasks_per_block == 0` selects the default slab size (the zero-guard
  /// lives here only; callers pass config values through unchecked).
  /// `numa` applies best-effort placement to each carved slab: stolen tasks
  /// are touched from every node, so interleaving the records spreads the
  /// access cost; a no-op on single-node hosts (see common/numa.hpp).
  explicit TaskArena(std::size_t tasks_per_block = 0,
                     NumaPolicy numa = NumaPolicy::Off)
      : tasks_per_block_(tasks_per_block != 0 ? tasks_per_block : 256),
        numa_policy_(numa) {}

  TaskArena(const TaskArena&) = delete;
  TaskArena& operator=(const TaskArena&) = delete;

  /// Pop a retired slot (or carve a new block) and reset it for a fresh
  /// submission: one in-flight reference, vectors cleared but with their
  /// previous capacity retained.
  [[nodiscard]] Task* acquire() {
    Task* task = nullptr;
    {
      SpinLockGuard lock(mutex_);
      if (free_head_ == nullptr) {
        // Refill from the release stack in one exchange: releasers never
        // touch the mutex, so completions on workers cannot bounce a lock
        // against the submitting thread.
        // mo: acquire pairs with release()'s releasing CAS so the drained
        // slots' free_next links are visible.
        free_head_ = recycled_.exchange(nullptr, std::memory_order_acquire);
        if (free_head_ == nullptr) grow_locked();
      }
      task = free_head_;
      free_head_ = task->free_next;
    }
    // mo: relaxed — occupancy gauge, monitoring only.
    free_count_.fetch_sub(1, std::memory_order_relaxed);
    task->id = 0;
    task->type = nullptr;
    task->fn = nullptr;
    task->accesses.clear();
    task->reset_dep_state_unshared();
    task->pending_preds.store(0);
    task->state = TaskState::Created;
    task->refs.store(1);
    task->free_next = nullptr;
    task->inbox_next.store(nullptr);
    task->atm_key = 0;
    task->atm_p = 0.0;
    task->atm_key_valid = false;
    task->atm_memoized = false;
    return task;
  }

  /// Return a slot whose reference count reached zero. Lock-free Treiber
  /// push (push-only, so no ABA); acquire() drains the stack wholesale. The
  /// slot's vectors keep their capacity; the closure was already dropped at
  /// completion.
  void release(Task* task) noexcept {
    // mo: relaxed — head is only a CAS expected value; the CAS re-validates.
    Task* head = recycled_.load(std::memory_order_relaxed);
    do {
      task->free_next = head;
      // mo: release publishes free_next (and the retired slot's state) to
      // acquire()'s draining exchange; relaxed on failure (retry rereads).
    } while (!recycled_.compare_exchange_weak(head, task, std::memory_order_release,
                                              std::memory_order_relaxed));
    // mo: relaxed — occupancy gauge, monitoring only.
    free_count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] TaskArenaStats stats() const {
    TaskArenaStats s;
    // mo: relaxed — racy monitoring snapshot by contract.
    s.slots = slot_count_.load(std::memory_order_relaxed);
    s.free_slots = free_count_.load(std::memory_order_relaxed);
    s.blocks = block_count_.load(std::memory_order_relaxed);
    s.slab_bytes = s.slots * sizeof(Task);
    return s;
  }

 private:
  void grow_locked() ATM_REQUIRES(mutex_) {
    auto block = std::make_unique<Task[]>(tasks_per_block_);
    // Off the hot path (one call per tasks_per_block_ acquires, and only
    // when the release stack was empty too): placement is a syscall at
    // worst, a no-op single-node.
    numa_place(block.get(), tasks_per_block_ * sizeof(Task), numa_policy_,
               NumaTopology::system());
    for (std::size_t i = 0; i < tasks_per_block_; ++i) {
      block[i].pool = this;
      block[i].free_next = free_head_;
      free_head_ = &block[i];
    }
    blocks_.push_back(std::move(block));
    // mo: relaxed — occupancy gauges, monitoring only.
    slot_count_.fetch_add(tasks_per_block_, std::memory_order_relaxed);
    free_count_.fetch_add(tasks_per_block_, std::memory_order_relaxed);
    block_count_.fetch_add(1, std::memory_order_relaxed);
  }

  const std::size_t tasks_per_block_;
  const NumaPolicy numa_policy_;
  /// Release side: lock-free stack of retired slots.
  std::atomic<Task*> recycled_{nullptr};
  /// Acquire side: spinlock-protected stash (submitters only; the critical
  /// section is a pointer pop except when a new block is carved).
  TaskSpinLock mutex_;
  Task* free_head_ ATM_GUARDED_BY(mutex_) = nullptr;
  std::vector<std::unique_ptr<Task[]>> blocks_ ATM_GUARDED_BY(mutex_);
  std::atomic<std::size_t> slot_count_{0};
  std::atomic<std::size_t> free_count_{0};
  std::atomic<std::size_t> block_count_{0};
};

/// Add one lifetime reference to `task` (segment slots, etc.). Legal for
/// standalone tasks too: their count never reaches the release path.
inline void task_retain(Task* task) noexcept {
  // mo: relaxed — taking a reference publishes nothing; the holder already
  // reached the task through a synchronizing edge.
  task->refs.fetch_add(1, std::memory_order_relaxed);
}

/// Drop one lifetime reference; the holder must not touch `task` afterwards.
/// The thread that drops the last reference retires the slot to its arena
/// (standalone tasks — pool == nullptr — are simply left alone).
inline void task_release(Task* task) noexcept {
  // mo: acq_rel — release orders this holder's last use before the drop;
  // acquire on the final decrement orders every other holder's uses before
  // the slot is recycled.
  if (task->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (task->pool != nullptr) task->pool->release(task);
  }
}

}  // namespace atm::rt

// Ready-task scheduling policies behind one seam (the paper's RQ box in
// Figure 1). Two implementations:
//
//  * CentralScheduler — the paper's literal design: one mutex+condvar FIFO
//    (ReadyQueue). Every push and pop crosses the same lock; kept as the
//    A/B baseline (`--sched central`).
//  * StealScheduler — per-worker Chase-Lev deques (LIFO local push/pop,
//    FIFO steals) + per-worker inboxes for external submissions (the master
//    round-robins across them), with a spin-then-steal-then-park idle
//    protocol. This is the default: it removes the central lock from the
//    task hot path.
//
// Depth tracking and trace sampling work identically under both policies so
// Figures 7-8 reproduce regardless of `--sched`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/ready_queue.hpp"
#include "runtime/task.hpp"
#include "runtime/trace.hpp"
#include "runtime/work_steal_deque.hpp"

namespace atm::rt {

/// Which ready-task scheduler a runtime uses.
enum class SchedPolicy : std::uint8_t {
  Central,  ///< one shared FIFO behind a mutex (the paper's RQ)
  Steal,    ///< per-worker Chase-Lev deques with work stealing
};

[[nodiscard]] constexpr const char* sched_policy_name(SchedPolicy s) noexcept {
  switch (s) {
    case SchedPolicy::Central: return "central";
    case SchedPolicy::Steal: return "steal";
  }
  return "?";
}

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Enqueue a ready task. `lane` is the calling thread's lane id: a worker
  /// lane (< worker count) pushes into its own local structure; any other
  /// lane (the master, test threads) submits externally.
  virtual void push(Task* task, std::size_t lane) = 0;

  /// Worker `worker` blocks until a task is available or shutdown() was
  /// called and no task could be acquired; nullptr means "exit".
  virtual Task* pop_blocking(unsigned worker) = 0;

  /// Non-blocking acquire for worker `worker`; nullptr when nothing was
  /// found (possibly transiently, under steal races).
  virtual Task* try_pop(unsigned worker) = 0;

  /// Release all blocked workers; subsequent pops drain remaining tasks and
  /// then return nullptr.
  virtual void shutdown() = 0;

  /// Re-arm after shutdown (used by tests that restart a pool).
  virtual void reset() = 0;

  /// Tasks currently queued across all structures (racy; monitoring only).
  [[nodiscard]] virtual std::size_t depth() const noexcept = 0;

  /// Factory for a policy. `workers` is the worker-thread count; `tracer`
  /// (nullable) receives ready-depth samples when tracing is enabled.
  [[nodiscard]] static std::unique_ptr<Scheduler> make(SchedPolicy policy,
                                                       unsigned workers,
                                                       TraceRecorder* tracer);
};

/// The paper's central RQ wrapped in the Scheduler seam.
class CentralScheduler final : public Scheduler {
 public:
  explicit CentralScheduler(TraceRecorder* tracer) : queue_(tracer) {}

  void push(Task* task, std::size_t lane) override {
    (void)lane;
    queue_.push(task);
  }
  Task* pop_blocking(unsigned worker) override {
    (void)worker;
    return queue_.pop_blocking();
  }
  Task* try_pop(unsigned worker) override {
    (void)worker;
    return queue_.try_pop();
  }
  void shutdown() override { queue_.shutdown(); }
  void reset() override { queue_.reset(); }
  [[nodiscard]] std::size_t depth() const noexcept override { return queue_.depth(); }

 private:
  ReadyQueue queue_;
};

/// Work-stealing scheduler: per-worker Chase-Lev deque + external inbox.
///
/// The inbox is a lock-free intrusive MPSC stack (Treiber push through
/// Task::inbox_next, wholesale exchange-drain, reversed to submission
/// order): an external submission is one fetch_add + one CAS — no mutex
/// anywhere on the submit path.
///
/// Acquire order for worker w (try_pop):
///   1. own deque (LIFO — hottest task first),
///   2. own inbox, drained wholesale into the deque (a burst of master
///      submissions costs one exchange here, not one acquire per task),
///   3. steal: sweep the other workers, first their deque tops (FIFO), then
///      their inboxes — drained into the thief's own deque, so a victim
///      stuck in a long task cannot strand external submissions.
///
/// Idle protocol (pop_blocking): spin a bounded number of acquire rounds
/// (yielding, so oversubscribed containers do not burn the core), then park
/// on the lot. Pushers bump the item count first and only take the lot lock
/// when a sleeper is registered; the seq_cst item/sleeper pair makes the
/// sleep/wake race lose-proof (one side always sees the other).
class StealScheduler final : public Scheduler {
 public:
  StealScheduler(unsigned workers, TraceRecorder* tracer);
  ~StealScheduler() override = default;

  void push(Task* task, std::size_t lane) override;
  Task* pop_blocking(unsigned worker) override;
  Task* try_pop(unsigned worker) override;
  void shutdown() override;
  void reset() override;
  [[nodiscard]] std::size_t depth() const noexcept override {
    return items_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) WorkerSlot {
    WorkStealDeque deque;
    /// MPSC inbox head: producers CAS-push (LIFO); a drainer exchanges the
    /// whole chain out and reverses it back to submission order. Idle
    /// sweeps skip empty inboxes with one relaxed load of this pointer.
    std::atomic<Task*> inbox_head{nullptr};
    /// Owner-private FIFO of drained inbox tasks (chained via inbox_next):
    /// consuming one is two pointer moves — no deque fence. Capped at
    /// kBatchMax per drain; the remainder spills to the deque so thieves
    /// still see a stuck owner's backlog.
    Task* batch_head = nullptr;
    std::uint32_t victim_cursor = 0;  ///< worker-local steal start point
  };

  void note_push();
  Task* acquired(Task* task);
  /// Exchange `victim`'s inbox chain out and return it in submission order
  /// (count in *n). nullptr when empty (or a producer is mid-publish).
  static Task* take_inbox_chain(WorkerSlot& victim, std::size_t* n);
  /// Drain `victim`'s inbox wholesale into `into` (submission order).
  /// Returns the number of tasks moved.
  static std::size_t drain_inbox(WorkerSlot& victim, WorkStealDeque& into);
  [[nodiscard]] Task* acquire_local(unsigned worker);
  [[nodiscard]] Task* acquire_steal(unsigned worker);

  const unsigned workers_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;

  /// Tasks across all deques + inboxes; also the Figure-8 depth signal.
  /// (Worker-private batches are excluded — they are committed to an owner.)
  std::atomic<std::size_t> items_{0};
  std::atomic<bool> shutdown_{false};

  std::atomic<int> sleepers_{0};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;

  TraceRecorder* tracer_;
};

}  // namespace atm::rt

// Ready-task scheduling policies behind one seam (the paper's RQ box in
// Figure 1). Two implementations:
//
//  * CentralScheduler — the paper's literal design: one mutex+condvar FIFO
//    (ReadyQueue). Every push and pop crosses the same lock; kept as the
//    A/B baseline (`--sched central`).
//  * StealScheduler — per-worker Chase-Lev deques (LIFO local push/pop,
//    FIFO steals) + per-worker inboxes for external submissions (the master
//    round-robins across them), with a spin-then-steal-then-park idle
//    protocol. This is the default: it removes the central lock from the
//    task hot path.
//
// PR 5 adds the helper lane: a transient extra slot through which the
// master drains and steals tasks while it sits at a taskwait (helping
// barrier) instead of parking — see Runtime::taskwait. The helper shares
// the workers' parking lot, so push wakeups, shutdown, and the
// all-tasks-done notification use one protocol.
//
// Depth tracking and trace sampling work identically under both policies so
// Figures 7-8 reproduce regardless of `--sched`.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/mutex.hpp"
#include "obs/metrics.hpp"
#include "runtime/ready_queue.hpp"
#include "runtime/task.hpp"
#include "runtime/trace.hpp"
#include "runtime/work_steal_deque.hpp"

namespace atm::rt {

/// Which ready-task scheduler a runtime uses.
enum class SchedPolicy : std::uint8_t {
  Central,  ///< one shared FIFO behind a mutex (the paper's RQ)
  Steal,    ///< per-worker Chase-Lev deques with work stealing
};

[[nodiscard]] constexpr const char* sched_policy_name(SchedPolicy s) noexcept {
  switch (s) {
    case SchedPolicy::Central: return "central";
    case SchedPolicy::Steal: return "steal";
  }
  return "?";
}

/// Point-in-time scheduler observability (gauges + monotonic counters).
struct SchedulerStats {
  std::size_t depth = 0;            ///< tasks queued across all structures
  std::size_t inbox_batch_cap = 0;  ///< adaptive worker-private batch cap (steal only)
  std::uint64_t steal_misses = 0;   ///< full sweeps that found nothing while work existed
  std::uint64_t steal_attempts = 0;     ///< full steal sweeps started (steal only)
  std::uint64_t steal_fails = 0;        ///< sweeps that returned empty-handed
  std::uint64_t inbox_drains = 0;       ///< wholesale inbox-chain drains
  std::uint64_t inbox_drained_tasks = 0;///< tasks moved by those drains
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Enqueue a ready task. `lane` is the calling thread's lane id: a worker
  /// lane (< worker count) pushes into its own local structure; the helper
  /// lane (== worker count, valid only while the master is helping at a
  /// taskwait) pushes into the helper's structure; any other lane (the
  /// master outside taskwait, test threads) submits externally.
  virtual void push(Task* task, std::size_t lane) = 0;

  /// Worker `worker` blocks until a task is available or shutdown() was
  /// called and no task could be acquired; nullptr means "exit".
  virtual Task* pop_blocking(unsigned worker) = 0;

  /// Non-blocking acquire for lane `worker` (a worker lane or the helper
  /// lane); nullptr when nothing was found (possibly transiently, under
  /// steal races).
  virtual Task* try_pop(unsigned worker) = 0;

  /// Helping-barrier acquire for the (single) helper lane: returns a task,
  /// or nullptr once `quit()` is true (or shutdown). Parks in the
  /// scheduler's lot between attempts; a caller whose quit condition
  /// changes asynchronously must arrange a notify_helpers() call.
  virtual Task* helper_pop(const std::function<bool()>& quit) = 0;

  /// Wake any helper parked inside helper_pop (the runtime calls this when
  /// the helper's quit condition — "all tasks done" — flips).
  virtual void notify_helpers() = 0;

  /// Release all blocked workers; subsequent pops drain remaining tasks and
  /// then return nullptr.
  virtual void shutdown() = 0;

  /// Re-arm after shutdown (used by tests that restart a pool).
  virtual void reset() = 0;

  /// Tasks currently queued across all structures (racy; monitoring only).
  [[nodiscard]] virtual std::size_t depth() const noexcept = 0;

  /// Observability snapshot (racy; monitoring only).
  [[nodiscard]] virtual SchedulerStats stats() const noexcept = 0;

  /// Factory for a policy. `workers` is the worker-thread count; `tracer`
  /// (nullable) receives ready-depth samples when tracing is enabled;
  /// `metrics` (nullable) receives the steal histograms
  /// (sched.steal_batch_size, sched.victim_distance).
  [[nodiscard]] static std::unique_ptr<Scheduler> make(
      SchedPolicy policy, unsigned workers, TraceRecorder* tracer,
      obs::MetricsRegistry* metrics = nullptr);
};

/// The paper's central RQ wrapped in the Scheduler seam.
class CentralScheduler final : public Scheduler {
 public:
  explicit CentralScheduler(TraceRecorder* tracer) : queue_(tracer) {}

  void push(Task* task, std::size_t lane) override {
    (void)lane;
    queue_.push(task);
  }
  Task* pop_blocking(unsigned worker) override {
    (void)worker;
    return queue_.pop_blocking();
  }
  Task* try_pop(unsigned worker) override {
    (void)worker;
    return queue_.try_pop();
  }
  Task* helper_pop(const std::function<bool()>& quit) override {
    return queue_.pop_for_helper(quit);
  }
  void notify_helpers() override { queue_.notify_all(); }
  void shutdown() override { queue_.shutdown(); }
  void reset() override { queue_.reset(); }
  [[nodiscard]] std::size_t depth() const noexcept override { return queue_.depth(); }
  [[nodiscard]] SchedulerStats stats() const noexcept override {
    SchedulerStats s;
    s.depth = queue_.depth();
    return s;
  }

 private:
  ReadyQueue queue_;
};

/// Work-stealing scheduler: per-worker Chase-Lev deque + external inbox.
///
/// The inbox is a lock-free intrusive MPSC stack (Treiber push through
/// Task::inbox_next, wholesale exchange-drain, reversed to submission
/// order): an external submission is one fetch_add + one CAS — no mutex
/// anywhere on the submit path.
///
/// Slot layout: `workers` worker slots plus one helper slot (index ==
/// workers) owned by the master while it helps at a taskwait. The helper
/// slot's deque is part of every worker's steal sweep, so work the helping
/// master spawns (successor pushes, nested submissions) never strands if
/// the master blocks inside a long task.
///
/// Acquire order for lane w (try_pop):
///   1. own deque (LIFO — hottest task first),
///   2. own inbox, drained wholesale into a private batch + deque spill (a
///      burst of master submissions costs one exchange here, not one
///      acquire per task),
///   3. steal: sweep the other lanes in the lane's locality ring order,
///      first their deque tops (steal-half: up to half the victim's deque
///      in one CAS, installed as the thief's private batch), then their
///      inboxes — adopted the same way, so a victim stuck in a long task
///      cannot strand external submissions.
///
/// Victim selection walks a per-lane precomputed ring order — nearest lane
/// ids first, then widening rings, direction alternating by lane parity —
/// so thieves prefer neighbors (same core complex / NUMA node under any
/// sane thread layout) and never herd onto lane 0 the way a flat sweep
/// seeded at zero does. A productive victim is remembered (the next sweep
/// starts there); a full miss resets to the nearest ring AND bumps the
/// lane's exponential steal backoff — the next backoff_skip try_pop calls
/// skip the sweep entirely, so at high worker counts idle lanes stop
/// hammering every deque's top cacheline while one producer works.
/// Backoff resets the moment any acquire succeeds.
///
/// The private batch is capped adaptively (kBatchMin..kBatchMax): it grows
/// while no thief has starved recently (fewer deque fences per task) and
/// halves whenever a full steal sweep misses while work exists — batched
/// tasks are invisible to thieves, so starvation is the signal that the
/// batch is hoarding.
///
/// Idle protocol (pop_blocking): spin a bounded number of acquire rounds
/// (yielding, so oversubscribed containers do not burn the core), then park
/// on the lot. Pushers bump the item count first and only take the lot lock
/// when a sleeper is registered; the seq_cst item/sleeper pair makes the
/// sleep/wake race lose-proof (one side always sees the other). The helper
/// parks on the same lot with an extra quit predicate.
class StealScheduler final : public Scheduler {
 public:
  StealScheduler(unsigned workers, TraceRecorder* tracer,
                 obs::MetricsRegistry* metrics = nullptr);
  ~StealScheduler() override = default;

  void push(Task* task, std::size_t lane) override;
  Task* pop_blocking(unsigned worker) override;
  Task* try_pop(unsigned worker) override;
  Task* helper_pop(const std::function<bool()>& quit) override;
  void notify_helpers() override;
  void shutdown() override;
  void reset() override;
  [[nodiscard]] std::size_t depth() const noexcept override {
    // mo: relaxed — racy monitoring gauge by contract.
    return items_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] SchedulerStats stats() const noexcept override;

  /// Adaptive batch-cap bounds (exposed for tests/benches).
  static constexpr std::uint32_t kBatchMin = 64;
  static constexpr std::uint32_t kBatchMax = 512;
  /// Steal-backoff ceiling: after this many consecutive full-miss sweeps'
  /// worth of doubling, a lane skips at most this many sweeps per miss.
  /// Bounded so a lane re-probes within tens of microseconds — liveness
  /// additionally holds because local work is never skipped and pushers
  /// wake parked lanes through the lot.
  static constexpr std::uint32_t kBackoffMaxSkips = 32;

 private:
  struct alignas(64) WorkerSlot {
    WorkStealDeque deque;
    /// MPSC inbox head: producers CAS-push (LIFO); a drainer exchanges the
    /// whole chain out and reverses it back to submission order. Idle
    /// sweeps skip empty inboxes with one relaxed load of this pointer.
    std::atomic<Task*> inbox_head{nullptr};
    /// Owner-private FIFO of drained inbox tasks (chained via inbox_next):
    /// consuming one is two pointer moves — no deque fence. Capped at the
    /// adaptive batch cap per drain; the remainder spills to the deque so
    /// thieves still see a stuck owner's backlog.
    Task* batch_head = nullptr;
    /// Tasks left in the private batch: owner-written (relaxed store per
    /// consume — one cacheline it owns anyway), racily read by thieves to
    /// tell "work is hoarded in a batch" apart from "system is empty".
    AtomicCell<std::uint32_t> batch_size{0};
    /// steal_misses_ snapshot at this owner's last drain: unchanged misses
    /// since then == no thief starved recently == safe to grow the cap.
    std::uint64_t last_misses = 0;
    /// Set by a full steal sweep that missed while work existed (queued or
    /// batch-hoarded); consumed by note_starved when the lane parks.
    bool missed_with_work = false;
    /// Index into victim_order where the next sweep starts: the position of
    /// the last productive victim (keep milking it), reset to 0 (nearest
    /// ring) on a full miss.
    std::uint32_t victim_cursor = 0;
    /// Locality-ordered victim lanes: nearest ring distance first, widening
    /// outward, probe direction alternating by lane parity (the per-lane
    /// seed that stops thieves herding). Built once at construction.
    std::vector<std::uint32_t> victim_order;
    /// Exponential steal backoff (owner-private): current skip budget and
    /// the doubling width it refills from on each consecutive full miss.
    std::uint32_t backoff_skip = 0;
    std::uint32_t backoff_width = 0;
    /// Observability counters, written only by the lane that owns this slot
    /// (the thief/drainer writes its OWN slot, never the victim's), racily
    /// summed by stats(). Same cache line the owner already dirties.
    AtomicCell<std::uint64_t> steal_attempts{0};
    AtomicCell<std::uint64_t> steal_fails{0};
    AtomicCell<std::uint64_t> inbox_drains{0};
    AtomicCell<std::uint64_t> inbox_drained_tasks{0};
  };

  void note_push();
  Task* acquired(Task* task);
  /// Exchange `victim`'s inbox chain out and return it in submission order
  /// (count in *n). nullptr when empty (or a producer is mid-publish).
  static Task* take_inbox_chain(WorkerSlot& victim, std::size_t* n);
  /// Install a drained chain as `me`'s private batch (first `cap` tasks) +
  /// deque spill, account it, and return the first task.
  Task* adopt_chain(WorkerSlot& me, Task* chain, std::size_t n, std::uint32_t cap);
  /// Install a steal_many() batch (age order, exclusively owned) as `me`'s
  /// private batch, account it, and return the first task.
  Task* adopt_batch(WorkerSlot& me, Task* const* tasks, std::size_t n);
  [[nodiscard]] Task* acquire_local(unsigned lane);
  [[nodiscard]] Task* acquire_steal(unsigned lane);
  /// Called when `lane` is about to park: if its last sweep missed while
  /// work existed, count a steal miss and halve the batch cap.
  void note_starved(unsigned lane);

  [[nodiscard]] unsigned lane_count() const noexcept { return workers_ + 1; }

  const unsigned workers_;
  /// workers_ - 1 when workers_ is a power of two (mask the inbox pick
  /// instead of dividing), 0 otherwise.
  const std::size_t inbox_mask_;
  /// workers_ worker slots + the helper slot at index workers_.
  std::vector<std::unique_ptr<WorkerSlot>> slots_;

  /// Tasks across all deques + inboxes; also the Figure-8 depth signal.
  /// (Worker-private batches are excluded — they are committed to an owner;
  /// thieves detect them via the per-slot batch_size gauge instead.)
  std::atomic<std::size_t> items_{0};
  std::atomic<bool> shutdown_{false};

  /// Adaptive private-batch cap shared by all owners (kBatchMin..kBatchMax).
  std::atomic<std::uint32_t> batch_cap_{kBatchMin};
  /// Full steal sweeps that found nothing while work existed (queued or
  /// batch-hoarded): the starvation signal that shrinks batch_cap_.
  std::atomic<std::uint64_t> steal_misses_{0};

  std::atomic<int> sleepers_{0};
  /// Parking lot only — never on the task hot path: pushers touch it solely
  /// when a registered sleeper exists (see note_push).
  Mutex park_mutex_;
  CondVar park_cv_;

  TraceRecorder* tracer_;
  /// Steal observability (nullable; owned by the registry). Recording is
  /// one relaxed increment on a thread-owned shard, and only on successful
  /// steals — amortized over the whole stolen batch.
  obs::LatencyHistogram* steal_batch_hist_ = nullptr;
  obs::LatencyHistogram* victim_distance_hist_ = nullptr;
};

}  // namespace atm::rt

#include "runtime/ready_queue.hpp"

#include "common/timing.hpp"

namespace atm::rt {

void ReadyQueue::sample_locked(std::size_t depth) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->sample_depth(now_ns(), depth);
  }
}

Task* ReadyQueue::pop_front_locked() {
  Task* task = queue_.front();
  queue_.pop_front();
  // mo: relaxed — depth_ is a monitoring mirror; mutex_ orders the queue.
  depth_.store(queue_.size(), std::memory_order_relaxed);
  sample_locked(queue_.size());
  return task;
}

void ReadyQueue::push(Task* task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(task);
    // mo: relaxed — depth_ is a monitoring mirror; mutex_ orders the queue.
    depth_.store(queue_.size(), std::memory_order_relaxed);
    sample_locked(queue_.size());
  }
  cv_.notify_one();
}

Task* ReadyQueue::pop_blocking() {
  MutexLock lock(mutex_);
  while (!shutdown_ && queue_.empty()) cv_.wait(mutex_);
  if (queue_.empty()) return nullptr;
  return pop_front_locked();
}

Task* ReadyQueue::pop_for_helper(const std::function<bool()>& quit) {
  MutexLock lock(mutex_);
  while (!shutdown_ && queue_.empty() && !quit()) cv_.wait(mutex_);
  if (queue_.empty()) return nullptr;
  return pop_front_locked();
}

void ReadyQueue::notify_all() {
  // Empty critical section: orders the notify against a waiter that passed
  // its predicate check but has not yet suspended.
  { MutexLock lock(mutex_); }
  cv_.notify_all();
}

Task* ReadyQueue::try_pop() {
  MutexLock lock(mutex_);
  if (queue_.empty()) return nullptr;
  return pop_front_locked();
}

void ReadyQueue::shutdown() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

void ReadyQueue::reset() {
  MutexLock lock(mutex_);
  shutdown_ = false;
}

}  // namespace atm::rt

#include "runtime/ready_queue.hpp"

#include "common/timing.hpp"

namespace atm::rt {

void ReadyQueue::sample_locked(std::size_t depth) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->sample_depth(now_ns(), depth);
  }
}

void ReadyQueue::push(Task* task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(task);
    depth_.store(queue_.size(), std::memory_order_relaxed);
    sample_locked(queue_.size());
  }
  cv_.notify_one();
}

Task* ReadyQueue::pop_blocking() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
  if (queue_.empty()) return nullptr;
  Task* task = queue_.front();
  queue_.pop_front();
  depth_.store(queue_.size(), std::memory_order_relaxed);
  sample_locked(queue_.size());
  return task;
}

Task* ReadyQueue::pop_for_helper(const std::function<bool()>& quit) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return shutdown_ || !queue_.empty() || quit(); });
  if (queue_.empty()) return nullptr;
  Task* task = queue_.front();
  queue_.pop_front();
  depth_.store(queue_.size(), std::memory_order_relaxed);
  sample_locked(queue_.size());
  return task;
}

void ReadyQueue::notify_all() {
  // Empty critical section: orders the notify against a waiter that passed
  // its predicate check but has not yet suspended.
  { std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_all();
}

Task* ReadyQueue::try_pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return nullptr;
  Task* task = queue_.front();
  queue_.pop_front();
  depth_.store(queue_.size(), std::memory_order_relaxed);
  sample_locked(queue_.size());
  return task;
}

void ReadyQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

void ReadyQueue::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  shutdown_ = false;
}

}  // namespace atm::rt

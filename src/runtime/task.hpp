// A task instance: closure + declared accesses + dependence-graph state +
// the ATM bookkeeping attached while the task flows through the engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/hash.hpp"
#include "runtime/data_access.hpp"
#include "runtime/task_type.hpp"

namespace atm::rt {

using TaskId = std::uint64_t;

/// Lifecycle of a task inside the runtime.
enum class TaskState : std::uint8_t {
  Created,   ///< submitted, waiting on dependences
  Ready,     ///< in the ready queue
  Running,   ///< executing on a worker
  Deferred,  ///< IKT hit: waiting for an in-flight twin to copy outputs
  Finished,  ///< complete; successors released
};

/// Atomic TaskState holder that keeps Task copyable/movable (tests and
/// benches build tasks by value). The dependence-ordering guarantees come
/// from the runtime's graph mutex; the atomic makes the informational
/// Running/Deferred stores — written by workers without that lock — defined
/// behavior against concurrent state reads.
class TaskStateCell {
 public:
  constexpr TaskStateCell() noexcept = default;
  TaskStateCell(TaskState s) noexcept : v_(s) {}
  TaskStateCell(const TaskStateCell& other) noexcept
      : v_(other.v_.load(std::memory_order_relaxed)) {}
  TaskStateCell& operator=(const TaskStateCell& other) noexcept {
    v_.store(other.v_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }
  TaskStateCell& operator=(TaskState s) noexcept {
    v_.store(s, std::memory_order_relaxed);
    return *this;
  }
  operator TaskState() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<TaskState> v_{TaskState::Created};
};

struct Task {
  TaskId id = 0;
  const TaskType* type = nullptr;
  std::function<void()> fn;
  std::vector<DataAccess> accesses;

  // --- dependence graph state (guarded by the Runtime graph mutex) ---
  std::vector<Task*> successors;
  std::uint32_t pending_preds = 0;
  TaskStateCell state;

  // --- ATM state (owned by the engine while the task is in flight) ---
  HashKey atm_key = 0;       ///< hash key over the sampled input bytes
  double atm_p = 0.0;        ///< the p used to compute atm_key
  bool atm_key_valid = false;
  bool atm_memoized = false; ///< outputs provided without executing fn

  [[nodiscard]] std::size_t input_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& a : accesses)
      if (a.is_input()) n += a.bytes;
    return n;
  }
  [[nodiscard]] std::size_t output_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& a : accesses)
      if (a.is_output()) n += a.bytes;
    return n;
  }
};

}  // namespace atm::rt

// A task instance: closure + declared accesses + dependence-graph state +
// the ATM bookkeeping attached while the task flows through the engine.
//
// Lifecycle (PR 4): task records are pooled in a per-runtime TaskArena and
// reference-counted. A task holds one "in-flight" reference from submission
// until its completion has been fully published, plus one reference per
// dependence-tracker segment slot that names it (last writer / reader sets).
// The record is retired — returned to the arena free list, vectors keeping
// their capacity — the moment the last reference drops, which for streaming
// workloads is right after the last successor consumed its completion and
// its segment slots were overwritten, NOT at the next taskwait.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "common/inline_function.hpp"
#include "common/spin_lock.hpp"
#include "runtime/data_access.hpp"
#include "runtime/task_type.hpp"

namespace atm::rt {

using TaskId = std::uint64_t;

class TaskArena;

/// Lifecycle of a task inside the runtime.
enum class TaskState : std::uint8_t {
  Created,   ///< submitted, waiting on dependences
  Ready,     ///< in the ready queue
  Running,   ///< executing on a worker
  Deferred,  ///< IKT hit: waiting for an in-flight twin to copy outputs
  Finished,  ///< complete; successors released
};

/// Copyable atomic cell: keeps Task copyable/movable (tests and benches
/// build tasks by value) while giving concurrent accesses defined behavior.
/// Copies are relaxed snapshots — pooled tasks are never copied; only
/// standalone test/bench tasks are, and those are single-threaded.
template <typename T>
class AtomicCell {
 public:
  constexpr AtomicCell() noexcept = default;
  constexpr AtomicCell(T v) noexcept : v_(v) {}
  // mo: relaxed — copies are single-threaded snapshots by contract (above).
  AtomicCell(const AtomicCell& other) noexcept
      : v_(other.v_.load(std::memory_order_relaxed)) {}
  AtomicCell& operator=(const AtomicCell& other) noexcept {
    // mo: relaxed — copies are single-threaded snapshots by contract.
    v_.store(other.v_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }
  AtomicCell& operator=(T v) noexcept {
    // mo: relaxed — the convenience path is for owner-private cells; callers
    // needing ordering use store() with an explicit order.
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  // mo: relaxed — convenience read mirrors operator=; see above.
  operator T() const noexcept { return v_.load(std::memory_order_relaxed); }

  // mo: relaxed defaults — most cells are owner-private counters/gauges;
  // call sites that publish data pass an explicit stronger order.
  [[nodiscard]] T load(std::memory_order mo = std::memory_order_relaxed) const noexcept {
    return v_.load(mo);
  }
  void store(T v, std::memory_order mo = std::memory_order_relaxed) noexcept {
    v_.store(v, mo);
  }
  T fetch_add(T d, std::memory_order mo = std::memory_order_relaxed) noexcept {
    return v_.fetch_add(d, mo);
  }
  T fetch_sub(T d, std::memory_order mo = std::memory_order_relaxed) noexcept {
    return v_.fetch_sub(d, mo);
  }
  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) noexcept {
    return v_.exchange(v, mo);
  }
  bool compare_exchange_weak(T& expected, T desired, std::memory_order ok,
                             std::memory_order fail) noexcept {
    return v_.compare_exchange_weak(expected, desired, ok, fail);
  }

 private:
  std::atomic<T> v_{};
};

/// Atomic TaskState holder: most transitions (Ready/Running/Deferred) are
/// informational relaxed stores, but the Finished store uses release (see
/// Runtime::complete_task) so the lock-free prune path can acquire-load it
/// and inherit the task body's writes. TaskState::Created is the zero
/// value, so AtomicCell's default construction is correct.
using TaskStateCell = AtomicCell<TaskState>;

/// Spinlock guarding a Task's successor list + sealed flag (and reused by
/// the arena free list and tracker shards): critical sections are a few
/// instructions, so spinning beats a futex. The shared common/spin_lock.hpp
/// primitive carries the bounded spin-then-yield backoff.
using TaskSpinLock = atm::SpinLock;

struct Task {
  TaskId id = 0;
  const TaskType* type = nullptr;
  /// The task body. Inline-only small-buffer callable (PR 10): no heap
  /// allocation per submit, one indirect call to invoke; closures larger
  /// than InlineFunction::kCapacity are a compile error.
  InlineFunction fn;
  std::vector<DataAccess> accesses;

  // --- dependence graph state ---
  TaskSpinLock succ_lock;
  /// Successor tasks to release at completion. Guarded by succ_lock from the
  /// moment the task is visible to other submitters until succ_sealed.
  std::vector<Task*> successors ATM_GUARDED_BY(succ_lock);
  /// Unreleased predecessors + 1 submission guard while registering. The
  /// thread whose decrement reaches zero owns the push to the scheduler.
  AtomicCell<std::uint32_t> pending_preds{0};
  TaskStateCell state;
  /// Set (under succ_lock) when completion swaps the successor list out; a
  /// submitter finding it set treats the dependence as already satisfied.
  bool succ_sealed ATM_GUARDED_BY(succ_lock) = false;

  // --- lifecycle (see TaskArena) ---
  /// 1 in-flight reference + 1 per segment slot naming this task.
  AtomicCell<std::uint32_t> refs{0};
  /// Owning arena; nullptr for standalone tasks (tests, benches) which are
  /// never recycled.
  TaskArena* pool = nullptr;
  /// Arena free-list link (valid only while retired).
  Task* free_next = nullptr;
  /// Intrusive link for the scheduler's lock-free MPSC inboxes (valid only
  /// while the task sits in an inbox).
  AtomicCell<Task*> inbox_next{nullptr};

  // --- ATM state (owned by the engine while the task is in flight) ---
  HashKey atm_key = 0;       ///< hash key over the sampled input bytes
  double atm_p = 0.0;        ///< the p used to compute atm_key
  bool atm_key_valid = false;
  bool atm_memoized = false; ///< outputs provided without executing fn

  /// Reset the dependence-graph state of an exclusively-owned slot (freshly
  /// popped from the arena free list, visible to no other thread yet) — the
  /// one place guarded fields are legally touched without succ_lock.
  void reset_dep_state_unshared() ATM_NO_THREAD_SAFETY_ANALYSIS {
    successors.clear();
    succ_sealed = false;
  }

  [[nodiscard]] std::size_t input_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& a : accesses)
      if (a.is_input()) n += a.bytes;
    return n;
  }
  [[nodiscard]] std::size_t output_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& a : accesses)
      if (a.is_output()) n += a.bytes;
    return n;
  }
};

}  // namespace atm::rt

// Task data-access annotations: the runtime-API equivalent of OmpSs/OpenMP
// `depend(in: ...)` clauses, extended (paper §III-C) with the element type of
// each region so ATM's type-aware input sampler can rank byte significance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

namespace atm::rt {

/// How a task uses a data region. Matches OmpSs `in` / `out` / `inout`.
enum class AccessMode : std::uint8_t { In, Out, InOut };

/// Element type stored in a region (paper §III-C: the compiler was modified
/// to forward this to the runtime; in this library the caller states it, or
/// the typed helpers below deduce it).
enum class ElemType : std::uint8_t { U8, I8, U16, I16, U32, I32, U64, I64, F32, F64 };

/// Size in bytes of one element of the given type.
[[nodiscard]] constexpr std::size_t elem_size(ElemType t) noexcept {
  switch (t) {
    case ElemType::U8:
    case ElemType::I8:
      return 1;
    case ElemType::U16:
    case ElemType::I16:
      return 2;
    case ElemType::U32:
    case ElemType::I32:
    case ElemType::F32:
      return 4;
    case ElemType::U64:
    case ElemType::I64:
    case ElemType::F64:
      return 8;
  }
  return 1;
}

[[nodiscard]] constexpr const char* elem_name(ElemType t) noexcept {
  switch (t) {
    case ElemType::U8: return "u8";
    case ElemType::I8: return "i8";
    case ElemType::U16: return "u16";
    case ElemType::I16: return "i16";
    case ElemType::U32: return "u32";
    case ElemType::I32: return "i32";
    case ElemType::U64: return "u64";
    case ElemType::I64: return "i64";
    case ElemType::F32: return "f32";
    case ElemType::F64: return "f64";
  }
  return "?";
}

/// Deduce the ElemType tag for a C++ arithmetic type.
template <typename T>
[[nodiscard]] constexpr ElemType elem_type_of() noexcept {
  using U = std::remove_cv_t<T>;
  if constexpr (std::is_same_v<U, float>) return ElemType::F32;
  else if constexpr (std::is_same_v<U, double>) return ElemType::F64;
  else if constexpr (std::is_integral_v<U> && sizeof(U) == 1)
    return std::is_signed_v<U> ? ElemType::I8 : ElemType::U8;
  else if constexpr (std::is_integral_v<U> && sizeof(U) == 2)
    return std::is_signed_v<U> ? ElemType::I16 : ElemType::U16;
  else if constexpr (std::is_integral_v<U> && sizeof(U) == 4)
    return std::is_signed_v<U> ? ElemType::I32 : ElemType::U32;
  else if constexpr (std::is_integral_v<U> && sizeof(U) == 8)
    return std::is_signed_v<U> ? ElemType::I64 : ElemType::U64;
  else
    static_assert(std::is_arithmetic_v<U>, "unsupported element type");
  return ElemType::U8;
}

/// One declared data region of a task.
struct DataAccess {
  void* ptr = nullptr;       ///< base address
  std::size_t bytes = 0;     ///< region size in bytes
  AccessMode mode = AccessMode::In;
  ElemType elem = ElemType::U8;

  [[nodiscard]] std::uintptr_t begin() const noexcept {
    return reinterpret_cast<std::uintptr_t>(ptr);
  }
  [[nodiscard]] std::uintptr_t end() const noexcept { return begin() + bytes; }
  [[nodiscard]] bool is_input() const noexcept { return mode != AccessMode::Out; }
  [[nodiscard]] bool is_output() const noexcept { return mode != AccessMode::In; }

  [[nodiscard]] std::span<const std::uint8_t> const_bytes() const noexcept {
    return {static_cast<const std::uint8_t*>(ptr), bytes};
  }
  [[nodiscard]] std::span<std::uint8_t> mutable_bytes() const noexcept {
    return {static_cast<std::uint8_t*>(ptr), bytes};
  }
};

/// Typed annotation helpers: `in(block, n)` reads like the paper's pragmas.
template <typename T>
[[nodiscard]] DataAccess in(const T* p, std::size_t count) noexcept {
  return {const_cast<T*>(p), count * sizeof(T), AccessMode::In, elem_type_of<T>()};
}

template <typename T>
[[nodiscard]] DataAccess out(T* p, std::size_t count) noexcept {
  return {p, count * sizeof(T), AccessMode::Out, elem_type_of<T>()};
}

template <typename T>
[[nodiscard]] DataAccess inout(T* p, std::size_t count) noexcept {
  return {p, count * sizeof(T), AccessMode::InOut, elem_type_of<T>()};
}

}  // namespace atm::rt

// The runtime facade: task submission, dependence tracking, worker pool,
// taskwait, tracing, and the hook through which the ATM engine intercepts
// ready tasks (paper Figure 1: TDG -> RQ -> threads -> THT/IKT).
//
// PR 4 lifecycle: tasks live in a pooled TaskArena and are reference
// counted (see task.hpp / task_arena.hpp). Submission registers the task's
// footprint in a sharded dependence tracker (no global graph mutex), links
// it to unfinished predecessors through each predecessor's succ_lock, and
// publishes it with a pending-predecessor count whose final decrement owns
// the scheduler push. Completion seals the successor list, releases the
// newly-ready successors and drops the in-flight reference — the record is
// recycled as soon as its segment slots are overwritten or pruned, not at
// the next taskwait. Counters are plain atomics; the only mutex left on the
// submit/complete path is the (sharded, mostly uncontended) tracker lock.
//
// PR 5 submit->wave pipeline: the tracker is a two-level dependence index
// (exact-interval hash table over the interval tree, with barrier-retained
// geometry — see dependency_tracker.hpp), and taskwait() is a helping
// barrier: the waiting thread claims the scheduler's helper lane and
// drains/steals tasks instead of parking, sharing the workers' park/wake
// and shutdown protocol (see scheduler.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/numa.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "runtime/dependency_tracker.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"
#include "runtime/task_arena.hpp"
#include "runtime/task_type.hpp"
#include "runtime/trace.hpp"

namespace atm::rt {

class Runtime;

/// Interception point for memoization. The ATM engine implements this; the
/// runtime consults it when an idle worker pulls a memoizable task from the
/// ready queue (paper §III-A).
class MemoizationHook {
 public:
  virtual ~MemoizationHook() = default;

  enum class Decision : std::uint8_t {
    Execute,   ///< no reuse found (or training requires execution): run fn
    Hit,       ///< outputs already provided from the THT: skip execution
    Deferred,  ///< IKT hit: an in-flight twin will copy outputs and complete
  };

  /// Called by a worker before executing `task`. May copy outputs (Hit),
  /// register a postponed copy (Deferred) or request execution.
  virtual Decision on_task_ready(Task& task, std::size_t lane) = 0;

  /// Called by the worker right after `task.fn()` ran (only when
  /// on_task_ready returned Execute). Updates THT/IKT and training state.
  virtual void on_task_executed(Task& task, std::size_t lane) = 0;

  /// Called once when the hook is attached to a runtime.
  virtual void on_attach(Runtime& runtime) { (void)runtime; }

  /// Called when `runtime` lets go of the hook: at runtime destruction or
  /// when attach_memoizer replaces it. Anything the hook registered against
  /// that runtime's state (metrics collectors, registry instruments) must
  /// be released here — the hook and the runtime may be destroyed in either
  /// order, and after this call that runtime's registry is off-limits. A
  /// hook since re-attached elsewhere should ignore the stale detach.
  virtual void on_detach(Runtime& runtime) { (void)runtime; }
};

/// Runtime construction parameters.
struct RuntimeConfig {
  /// Worker thread count (the paper's "number of cores"). 0 = hardware
  /// concurrency.
  unsigned num_threads = 0;
  /// Record per-thread state timelines and RQ depth samples (Figs. 7-8).
  bool enable_tracing = false;
  /// Ready-task scheduling policy. Steal (per-worker deques + work stealing)
  /// is the default; Central is the paper's single mutex+condvar RQ, kept
  /// for A/B comparison (`atm_run --sched central`).
  SchedPolicy sched = SchedPolicy::Steal;
  /// Dependence-tracker shards (log2, capped at 6): the submit-path lock
  /// granularity. More shards = more concurrent submitters on disjoint
  /// footprints; 0 = one shard (the pre-PR-4 single-lock behavior).
  unsigned graph_log2_shards = 4;
  /// Task records carved per arena slab.
  unsigned arena_block_tasks = 256;
  /// Helping barrier: the thread at a taskwait registers as a transient
  /// worker and drains/steals tasks instead of parking on a condvar —
  /// wave-boundary latency on few-core hosts is the payoff. Off = the
  /// paper's parking barrier, kept for A/B (`atm_run --taskwait=park`).
  bool help_taskwait = true;
  /// Export the runtime/scheduler/arena/dep-index counters through the
  /// metrics registry (collector registration at construction; the registry
  /// itself always exists — see Runtime::metrics()).
  bool metrics = true;
  /// >0 starts a background MetricsSampler snapshotting the registry at
  /// this interval into a bounded ring (`atm_run --metrics-json`).
  std::uint64_t metrics_interval_ms = 0;
  /// Echo a one-line gauge summary to stderr on every sampler tick
  /// (`atm_run --stats-interval=MS`).
  bool metrics_live = false;
  /// Record per-task-type execution-latency histograms
  /// (task.<type>.exec_ns). Opt-in: costs two clock reads per executed
  /// task, which is real money against ~250ns microtasks.
  bool profile_tasks = false;
  /// Per-type profile slots: dense type ids at or past this cap silently
  /// skip per-type instruments (both the runtime's exec histograms and an
  /// attached engine's hit/miss/latency profiles). One atomic pointer per
  /// slot, sized at construction (`atm_run --profile-types=N`).
  std::size_t profile_max_types = 256;
  /// Best-effort NUMA placement of task-arena slabs and dependence-tracker
  /// shards (`atm_run --numa`). Off by default; silently a no-op on
  /// single-node hosts — results are bit-identical either way, only page
  /// placement (and thus steal-path memory locality) changes.
  NumaPolicy numa_policy = NumaPolicy::Off;
};

/// Monotonic counters; cheap enough to keep always-on.
struct RuntimeCounters {
  std::uint64_t submitted = 0;
  std::uint64_t executed = 0;
  std::uint64_t memoized = 0;  ///< completed via THT hit (no execution)
  std::uint64_t deferred = 0;  ///< completed via IKT postponed copy
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Register a task type (one per source-level annotation). The returned
  /// pointer stays valid for the lifetime of the runtime.
  const TaskType* register_type(TaskTypeDesc desc);

  /// Attach the memoization engine. Must happen before the first submit.
  void attach_memoizer(MemoizationHook* hook);

  /// Submit one task: `fn` must be a pure function of the declared input
  /// regions writing only the declared output regions (paper §III-E).
  /// `fn` is an InlineFunction: the closure is stored inline in the pooled
  /// task record (no per-submit allocation); closures larger than
  /// InlineFunction::kCapacity fail to compile. The span/initializer_list
  /// overloads copy the accesses into the pooled task's recycled vector —
  /// the no-allocation fast path a brace-enclosed access list takes
  /// automatically.
  void submit(const TaskType* type, InlineFunction fn,
              std::span<const DataAccess> accesses);
  void submit(const TaskType* type, InlineFunction fn,
              std::initializer_list<DataAccess> accesses) {
    submit(type, std::move(fn), std::span<const DataAccess>(accesses.begin(),
                                                            accesses.size()));
  }
  void submit(const TaskType* type, InlineFunction fn,
              const std::vector<DataAccess>& accesses) {
    submit(type, std::move(fn),
           std::span<const DataAccess>(accesses.data(), accesses.size()));
  }

  /// Block until every submitted task completed, then reset the dependence
  /// bookkeeping (the THT inside an attached engine persists; reuse across
  /// taskwait barriers is exactly what the paper's iterative apps need).
  /// With help_taskwait (default) the calling thread becomes a transient
  /// worker — draining and stealing ready tasks through the scheduler's
  /// helper lane — and only parks when nothing is acquirable; otherwise it
  /// parks on a condvar for the whole wait. The barrier reset keeps the
  /// dependence geometry (exact-interval index) while releasing every task
  /// reference, so the next wave's identical regions are O(1) hits.
  /// Must not race with submissions from other threads (same contract as
  /// OmpSs: the thread at the barrier owns the task region); a second
  /// concurrent caller falls back to the parking path.
  void taskwait();

  /// Used by the memoization hook: complete `task` whose outputs were
  /// provided without executing fn (THT hit or fulfilled postponed copy).
  void complete_without_execution(Task& task, bool via_ikt);

  [[nodiscard]] unsigned num_threads() const noexcept { return num_threads_; }
  [[nodiscard]] SchedPolicy sched_policy() const noexcept { return sched_policy_; }
  [[nodiscard]] TraceRecorder& tracer() noexcept { return *tracer_; }
  [[nodiscard]] const TraceRecorder& tracer() const noexcept { return *tracer_; }

  /// Lane id of the calling thread (worker id, or the master lane).
  [[nodiscard]] std::size_t current_lane() const noexcept;

  [[nodiscard]] RuntimeCounters counters() const;

  /// Number of distinct registered task types.
  [[nodiscard]] std::size_t type_count() const;

  /// Task-record pool occupancy (the streaming-regression memory guard).
  [[nodiscard]] TaskArenaStats arena_stats() const { return arena_.stats(); }

  /// Live dependence-tracker segments across all shards.
  [[nodiscard]] std::size_t tracker_segment_count() const {
    return tracker_.segment_count();
  }

  /// Two-level dependence-index counters (exact hits / tree fallbacks /
  /// prune scans) aggregated across shards.
  [[nodiscard]] DepIndexStats dep_index_stats() const { return tracker_.stats(); }

  /// Scheduler observability (adaptive batch cap, steal misses, depth).
  [[nodiscard]] SchedulerStats sched_stats() const { return sched_->stats(); }

  [[nodiscard]] bool helping_taskwait() const noexcept { return help_taskwait_; }

  /// THE unified metrics registry: every telemetry surface in this process
  /// (runtime, scheduler, arena, dep index, an attached ATM engine)
  /// registers here; snapshot() is the one machine-readable export point.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// Stop the background sampler (if configured) and return its series.
  /// Safe to call repeatedly; empty when metrics_interval_ms was 0.
  [[nodiscard]] obs::MetricsSampler::Series metrics_series();

 private:
  void worker_main(unsigned worker_id);
  void process_task(Task* task, std::size_t lane);
  void complete_task(Task& task);
  /// Serve as a transient worker until every pending task completed.
  void help_until_done();
  void register_collectors();

  unsigned num_threads_;
  SchedPolicy sched_policy_;
  bool help_taskwait_;
  bool profile_tasks_;
  /// Declared before every subsystem that registers on it, so it outlives
  /// them all during destruction.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<TraceRecorder> tracer_;
  std::unique_ptr<Scheduler> sched_;

  TaskArena arena_;
  ShardedDependencyTracker tracker_;
  // (both sized from RuntimeConfig in the constructor)
  std::atomic<std::uint64_t> pending_tasks_{0};
  Mutex wait_mutex_;
  CondVar all_done_cv_;
  /// counters_.submitted at the last barrier reset: a taskwait that saw no
  /// submissions since then skips the (idempotent) reset walk entirely
  /// (concurrent taskwait callers serialize on wait_mutex_).
  std::uint64_t last_reset_submitted_ ATM_GUARDED_BY(wait_mutex_) = 0;

  mutable Mutex types_mutex_;
  std::vector<std::unique_ptr<TaskType>> types_ ATM_GUARDED_BY(types_mutex_);

  struct alignas(64) AtomicCounters {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> memoized{0};
    std::atomic<std::uint64_t> deferred{0};
  };
  AtomicCounters counters_;

  /// Per-type execution-latency histograms (profile_tasks only), indexed by
  /// the dense type id. Atomic pointers so process_task reads race-free
  /// against concurrent register_type calls; types past the array just skip
  /// profiling. Sized from RuntimeConfig::profile_max_types at construction.
  std::size_t profile_max_types_;
  std::unique_ptr<std::atomic<obs::LatencyHistogram*>[]> exec_hist_;

  /// Helping-barrier span counters (sched.help_sessions / sched.help_tasks).
  obs::Counter* help_sessions_ = nullptr;
  obs::Counter* help_tasks_ = nullptr;

  /// Background gauge sampler (metrics_interval_ms > 0); stopped before the
  /// worker pool and the registry go away.
  std::unique_ptr<obs::MetricsSampler> sampler_;

  MemoizationHook* hook_ = nullptr;
  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};
  /// The scheduler has exactly one helper slot: the first taskwait caller
  /// claims it; any concurrent caller parks on the condvar instead.
  std::atomic<bool> helper_active_{false};
};

}  // namespace atm::rt

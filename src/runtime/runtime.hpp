// The runtime facade: task submission, dependence tracking, worker pool,
// taskwait, tracing, and the hook through which the ATM engine intercepts
// ready tasks (paper Figure 1: TDG -> RQ -> threads -> THT/IKT).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/dependency_tracker.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"
#include "runtime/task_type.hpp"
#include "runtime/trace.hpp"

namespace atm::rt {

class Runtime;

/// Interception point for memoization. The ATM engine implements this; the
/// runtime consults it when an idle worker pulls a memoizable task from the
/// ready queue (paper §III-A).
class MemoizationHook {
 public:
  virtual ~MemoizationHook() = default;

  enum class Decision : std::uint8_t {
    Execute,   ///< no reuse found (or training requires execution): run fn
    Hit,       ///< outputs already provided from the THT: skip execution
    Deferred,  ///< IKT hit: an in-flight twin will copy outputs and complete
  };

  /// Called by a worker before executing `task`. May copy outputs (Hit),
  /// register a postponed copy (Deferred) or request execution.
  virtual Decision on_task_ready(Task& task, std::size_t lane) = 0;

  /// Called by the worker right after `task.fn()` ran (only when
  /// on_task_ready returned Execute). Updates THT/IKT and training state.
  virtual void on_task_executed(Task& task, std::size_t lane) = 0;

  /// Called once when the hook is attached to a runtime.
  virtual void on_attach(Runtime& runtime) { (void)runtime; }
};

/// Runtime construction parameters.
struct RuntimeConfig {
  /// Worker thread count (the paper's "number of cores"). 0 = hardware
  /// concurrency.
  unsigned num_threads = 0;
  /// Record per-thread state timelines and RQ depth samples (Figs. 7-8).
  bool enable_tracing = false;
  /// Ready-task scheduling policy. Steal (per-worker deques + work stealing)
  /// is the default; Central is the paper's single mutex+condvar RQ, kept
  /// for A/B comparison (`atm_run --sched central`).
  SchedPolicy sched = SchedPolicy::Steal;
};

/// Monotonic counters; cheap enough to keep always-on.
struct RuntimeCounters {
  std::uint64_t submitted = 0;
  std::uint64_t executed = 0;
  std::uint64_t memoized = 0;  ///< completed via THT hit (no execution)
  std::uint64_t deferred = 0;  ///< completed via IKT postponed copy
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Register a task type (one per source-level annotation). The returned
  /// pointer stays valid for the lifetime of the runtime.
  const TaskType* register_type(TaskTypeDesc desc);

  /// Attach the memoization engine. Must happen before the first submit.
  void attach_memoizer(MemoizationHook* hook);

  /// Submit one task: `fn` must be a pure function of the declared input
  /// regions writing only the declared output regions (paper §III-E).
  void submit(const TaskType* type, std::function<void()> fn,
              std::vector<DataAccess> accesses);

  /// Block until every submitted task completed, then reset the dependence
  /// bookkeeping (the THT inside an attached engine persists; reuse across
  /// taskwait barriers is exactly what the paper's iterative apps need).
  void taskwait();

  /// Used by the memoization hook: complete `task` whose outputs were
  /// provided without executing fn (THT hit or fulfilled postponed copy).
  void complete_without_execution(Task& task, bool via_ikt);

  [[nodiscard]] unsigned num_threads() const noexcept { return num_threads_; }
  [[nodiscard]] SchedPolicy sched_policy() const noexcept { return sched_policy_; }
  [[nodiscard]] TraceRecorder& tracer() noexcept { return *tracer_; }
  [[nodiscard]] const TraceRecorder& tracer() const noexcept { return *tracer_; }

  /// Lane id of the calling thread (worker id, or the master lane).
  [[nodiscard]] std::size_t current_lane() const noexcept;

  [[nodiscard]] RuntimeCounters counters() const;

  /// Number of distinct registered task types.
  [[nodiscard]] std::size_t type_count() const;

 private:
  void worker_main(unsigned worker_id);
  void process_task(Task* task, std::size_t lane);
  void complete_task(Task& task);

  unsigned num_threads_;
  SchedPolicy sched_policy_;
  std::unique_ptr<TraceRecorder> tracer_;
  std::unique_ptr<Scheduler> sched_;

  mutable std::mutex graph_mutex_;
  std::condition_variable all_done_cv_;
  DependencyTracker tracker_;
  std::deque<std::unique_ptr<Task>> tasks_;
  std::vector<Task*> deps_scratch_;
  std::uint64_t pending_tasks_ = 0;
  TaskId next_task_id_ = 0;

  mutable std::mutex types_mutex_;
  std::vector<std::unique_ptr<TaskType>> types_;

  mutable std::mutex counters_mutex_;
  RuntimeCounters counters_;

  MemoizationHook* hook_ = nullptr;
  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};
};

}  // namespace atm::rt

// Chase-Lev work-stealing deque (Chase & Lev, SPAA'05) with the C11
// memory-order discipline of Lê et al., "Correct and Efficient Work-Stealing
// for Weak Memory Models" (PPoPP'13).
//
// One owner thread pushes and pops at the bottom (LIFO — the task it just
// made ready is the hottest in cache); any number of thief threads steal from
// the top (FIFO — thieves take the oldest task, which tends to root the
// largest untouched subtree). All three operations are lock-free; only the
// pop/steal race on the last element goes through a CAS.
//
// The circular buffer grows geometrically and never shrinks. Retired buffers
// are kept alive until the deque is destroyed: a thief may still be reading a
// stale buffer pointer, and parking the garbage is far cheaper than hazard
// pointers for the handful of growths a run performs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

// ThreadSanitizer does not model standalone atomic_thread_fence precisely,
// which makes the canonical fence-based Chase-Lev protocol report false
// races. Under TSan every operation is promoted to seq_cst (correct, merely
// slower) so the stress suite runs clean; production builds keep the precise
// weak orders.
#if defined(__SANITIZE_THREAD__)
#define ATM_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ATM_TSAN_BUILD 1
#endif
#endif

namespace atm::rt {

class Task;

namespace detail {
constexpr std::memory_order relax_unless_tsan(std::memory_order order) noexcept {
#ifdef ATM_TSAN_BUILD
  (void)order;
  return std::memory_order_seq_cst;
#else
  return order;
#endif
}

/// Standalone fences are both unsupported by TSan (GCC -Wtsan) and redundant
/// under the seq_cst promotion above, so they compile away in TSan builds.
inline void deque_fence(std::memory_order order) noexcept {
#ifdef ATM_TSAN_BUILD
  (void)order;
#else
  std::atomic_thread_fence(order);
#endif
}
}  // namespace detail

class WorkStealDeque {
 public:
  explicit WorkStealDeque(std::size_t initial_capacity = 256)
      : buffer_(new Buffer(round_up_pow2(initial_capacity))) {}

  ~WorkStealDeque() {
    // mo: relaxed — single-threaded teardown; no concurrent access remains.
    delete buffer_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
  }

  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  /// Owner only: push one task at the bottom.
  void push(Task* task) {
    // mo: relaxed bottom/buffer — owner-private variables (only the owner
    // writes them); mo: acquire top — synchronizes with the thieves' CAS so
    // the owner's capacity check sees freed slots.
    const std::int64_t b = bottom_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    const std::int64_t t = top_.load(detail::relax_unless_tsan(std::memory_order_acquire));
    Buffer* buf = buffer_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    // mo: relaxed slot store — the release fence below orders it before the
    // bottom store that publishes the slot to thieves (Lê et al. Fig. 1).
    buf->slot(b).store(task, detail::relax_unless_tsan(std::memory_order_relaxed));
    // mo: release fence — publish the slot before the new bottom becomes
    // visible to thieves; mo: relaxed bottom store — the fence carries the
    // ordering.
    detail::deque_fence(std::memory_order_release);
    bottom_.store(b + 1, detail::relax_unless_tsan(std::memory_order_relaxed));
  }

  /// Owner only: pop the most recently pushed task; nullptr when empty.
  Task* pop() {
    // mo: relaxed — bottom/buffer are owner-private; the seq_cst fence below
    // provides the only cross-thread ordering pop needs.
    const std::int64_t b = bottom_.load(detail::relax_unless_tsan(std::memory_order_relaxed)) - 1;
    Buffer* buf = buffer_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    bottom_.store(b, detail::relax_unless_tsan(std::memory_order_relaxed));
    // mo: seq_cst fence — the bottom store must be ordered before the top
    // load (store-load), mirroring the fence in steal(): either the owner
    // sees the thief's incremented top, or the thief sees the reserved
    // bottom. mo: relaxed top load — the fence carries the ordering.
    detail::deque_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    if (t > b) {
      // mo: relaxed — deque was empty; undo the owner-private reservation.
      bottom_.store(b + 1, detail::relax_unless_tsan(std::memory_order_relaxed));
      return nullptr;
    }
    // mo: relaxed slot load — the owner published this slot itself.
    Task* task = buf->slot(b).load(detail::relax_unless_tsan(std::memory_order_relaxed));
    if (t != b) return task;  // more than one element: no race possible
    // mo: seq_cst CAS — single element: race the thieves for it via top;
    // relaxed on failure (the value is discarded).
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      detail::relax_unless_tsan(std::memory_order_relaxed))) {
      task = nullptr;  // a thief won
    }
    // mo: relaxed — bottom is owner-private.
    bottom_.store(b + 1, detail::relax_unless_tsan(std::memory_order_relaxed));
    return task;
  }

  /// Thieves: steal the oldest task; nullptr when empty or lost a race.
  Task* steal() {
    // mo: acquire top — pairs with the winning CAS of other thieves.
    std::int64_t t = top_.load(detail::relax_unless_tsan(std::memory_order_acquire));
    // mo: seq_cst fence — order the top load before the bottom load (the
    // load-load mirror of the fence in pop()).
    detail::deque_fence(std::memory_order_seq_cst);
    // mo: acquire bottom/buffer — pair with push()'s release so the slot
    // contents (and a grown buffer) are visible before we read the slot.
    const std::int64_t b = bottom_.load(detail::relax_unless_tsan(std::memory_order_acquire));
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(detail::relax_unless_tsan(std::memory_order_acquire));
    // mo: relaxed slot load — ordered by the acquires above.
    Task* task = buf->slot(t).load(detail::relax_unless_tsan(std::memory_order_relaxed));
    // mo: seq_cst CAS — claims the element against the owner and other
    // thieves; relaxed on failure (the value is discarded).
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      detail::relax_unless_tsan(std::memory_order_relaxed))) {
      return nullptr;  // another thief or the owner won; caller retries
    }
    return task;
  }

  /// Racy size estimate (monitoring/backoff only, never for correctness).
  [[nodiscard]] std::size_t size_estimate() const noexcept {
    // mo: relaxed — racy estimate by contract.
    const std::int64_t b = bottom_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    const std::int64_t t = top_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty_estimate() const noexcept { return size_estimate() == 0; }

  [[nodiscard]] std::size_t capacity() const noexcept {
    // mo: relaxed — monitoring read; capacity is immutable per buffer.
    return buffer_.load(detail::relax_unless_tsan(std::memory_order_relaxed))->capacity;
  }

  /// Resident bytes (buffer + retired garbage), for memory accounting.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    std::size_t n = capacity() * sizeof(std::atomic<Task*>);
    for (const auto& r : retired_) n += r->capacity * sizeof(std::atomic<Task*>);
    return n;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<std::atomic<Task*>[]>(cap)) {}
    [[nodiscard]] std::atomic<Task*>& slot(std::int64_t i) noexcept {
      return slots[static_cast<std::size_t>(i) & mask];
    }
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<Task*>[]> slots;
  };

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 8;
    while (p < n) p <<= 1;
    return p;
  }

  /// Owner only (called from push): double the buffer, copy live slots.
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2);
    // mo: relaxed copy — the old slots were published before this call and
    // the release store below republishes them through the new buffer.
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(detail::relax_unless_tsan(std::memory_order_relaxed)),
                            detail::relax_unless_tsan(std::memory_order_relaxed));
    }
    // mo: release — thieves acquiring buffer_ must see the copied slots.
    buffer_.store(bigger, detail::relax_unless_tsan(std::memory_order_release));
    retired_.emplace_back(old);  // thieves may still hold the old pointer
    return bigger;
  }

  // top_ and bottom_ on separate cache lines: thieves hammer top_, the owner
  // hammers bottom_.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  std::vector<std::unique_ptr<Buffer>> retired_;  // owner-only, freed with the deque
};

}  // namespace atm::rt

// Chase-Lev work-stealing deque (Chase & Lev, SPAA'05) with the C11
// memory-order discipline of Lê et al., "Correct and Efficient Work-Stealing
// for Weak Memory Models" (PPoPP'13).
//
// One owner thread pushes and pops at the bottom (LIFO — the task it just
// made ready is the hottest in cache); any number of thief threads steal from
// the top (FIFO — thieves take the oldest task, which tends to root the
// largest untouched subtree). All three operations are lock-free; only the
// pop/steal race on the last element goes through a CAS.
//
// The circular buffer grows geometrically and never shrinks. Retired buffers
// are kept alive until the deque is destroyed: a thief may still be reading a
// stale buffer pointer, and parking the garbage is far cheaper than hazard
// pointers for the handful of growths a run performs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

// ThreadSanitizer does not model standalone atomic_thread_fence precisely,
// which makes the canonical fence-based Chase-Lev protocol report false
// races. Under TSan every operation is promoted to seq_cst (correct, merely
// slower) so the stress suite runs clean; production builds keep the precise
// weak orders.
#if defined(__SANITIZE_THREAD__)
#define ATM_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ATM_TSAN_BUILD 1
#endif
#endif

namespace atm::rt {

class Task;

namespace detail {
constexpr std::memory_order relax_unless_tsan(std::memory_order order) noexcept {
#ifdef ATM_TSAN_BUILD
  (void)order;
  return std::memory_order_seq_cst;
#else
  return order;
#endif
}

/// Standalone fences are both unsupported by TSan (GCC -Wtsan) and redundant
/// under the seq_cst promotion above, so they compile away in TSan builds.
inline void deque_fence(std::memory_order order) noexcept {
#ifdef ATM_TSAN_BUILD
  (void)order;
#else
  std::atomic_thread_fence(order);
#endif
}
}  // namespace detail

class WorkStealDeque {
 public:
  explicit WorkStealDeque(std::size_t initial_capacity = 256)
      : buffer_(new Buffer(round_up_pow2(initial_capacity))) {}

  ~WorkStealDeque() {
    delete buffer_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
  }

  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  /// Owner only: push one task at the bottom.
  void push(Task* task) {
    const std::int64_t b = bottom_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    const std::int64_t t = top_.load(detail::relax_unless_tsan(std::memory_order_acquire));
    Buffer* buf = buffer_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    buf->slot(b).store(task, detail::relax_unless_tsan(std::memory_order_relaxed));
    // Publish the slot before the new bottom becomes visible to thieves.
    detail::deque_fence(std::memory_order_release);
    bottom_.store(b + 1, detail::relax_unless_tsan(std::memory_order_relaxed));
  }

  /// Owner only: pop the most recently pushed task; nullptr when empty.
  Task* pop() {
    const std::int64_t b = bottom_.load(detail::relax_unless_tsan(std::memory_order_relaxed)) - 1;
    Buffer* buf = buffer_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    bottom_.store(b, detail::relax_unless_tsan(std::memory_order_relaxed));
    // The bottom store must be ordered before the top load (store-load),
    // mirroring the fence in steal(): either the owner sees the thief's
    // incremented top, or the thief sees the reserved bottom.
    detail::deque_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    if (t > b) {
      // Deque was empty; undo the reservation.
      bottom_.store(b + 1, detail::relax_unless_tsan(std::memory_order_relaxed));
      return nullptr;
    }
    Task* task = buf->slot(b).load(detail::relax_unless_tsan(std::memory_order_relaxed));
    if (t != b) return task;  // more than one element: no race possible
    // Single element: race the thieves for it via top.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      detail::relax_unless_tsan(std::memory_order_relaxed))) {
      task = nullptr;  // a thief won
    }
    bottom_.store(b + 1, detail::relax_unless_tsan(std::memory_order_relaxed));
    return task;
  }

  /// Thieves: steal the oldest task; nullptr when empty or lost a race.
  Task* steal() {
    std::int64_t t = top_.load(detail::relax_unless_tsan(std::memory_order_acquire));
    // Order the top load before the bottom load (see pop()).
    detail::deque_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(detail::relax_unless_tsan(std::memory_order_acquire));
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(detail::relax_unless_tsan(std::memory_order_acquire));
    Task* task = buf->slot(t).load(detail::relax_unless_tsan(std::memory_order_relaxed));
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      detail::relax_unless_tsan(std::memory_order_relaxed))) {
      return nullptr;  // another thief or the owner won; caller retries
    }
    return task;
  }

  /// Racy size estimate (monitoring/backoff only, never for correctness).
  [[nodiscard]] std::size_t size_estimate() const noexcept {
    const std::int64_t b = bottom_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    const std::int64_t t = top_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty_estimate() const noexcept { return size_estimate() == 0; }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return buffer_.load(detail::relax_unless_tsan(std::memory_order_relaxed))->capacity;
  }

  /// Resident bytes (buffer + retired garbage), for memory accounting.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    std::size_t n = capacity() * sizeof(std::atomic<Task*>);
    for (const auto& r : retired_) n += r->capacity * sizeof(std::atomic<Task*>);
    return n;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<std::atomic<Task*>[]>(cap)) {}
    [[nodiscard]] std::atomic<Task*>& slot(std::int64_t i) noexcept {
      return slots[static_cast<std::size_t>(i) & mask];
    }
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<Task*>[]> slots;
  };

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 8;
    while (p < n) p <<= 1;
    return p;
  }

  /// Owner only (called from push): double the buffer, copy live slots.
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(detail::relax_unless_tsan(std::memory_order_relaxed)),
                            detail::relax_unless_tsan(std::memory_order_relaxed));
    }
    buffer_.store(bigger, detail::relax_unless_tsan(std::memory_order_release));
    retired_.emplace_back(old);  // thieves may still hold the old pointer
    return bigger;
  }

  // top_ and bottom_ on separate cache lines: thieves hammer top_, the owner
  // hammers bottom_.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  std::vector<std::unique_ptr<Buffer>> retired_;  // owner-only, freed with the deque
};

}  // namespace atm::rt

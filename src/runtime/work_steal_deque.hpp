// Chase-Lev work-stealing deque (Chase & Lev, SPAA'05) with the C11
// memory-order discipline of Lê et al., "Correct and Efficient Work-Stealing
// for Weak Memory Models" (PPoPP'13).
//
// One owner thread pushes and pops at the bottom (LIFO — the task it just
// made ready is the hottest in cache); any number of thief threads steal from
// the top (FIFO — thieves take the oldest task, which tends to root the
// largest untouched subtree). All operations are lock-free.
//
// Steal-half extension (PR 10): steal_many() lets a thief claim up to half
// the deque — bounded by kMaxSteal — with ONE top CAS, amortizing the
// fence/CAS round trip over a batch. Batch claims change the owner/thief
// race: in the classic protocol the owner takes the bottom slot without a
// CAS whenever more than one element remains, because a thief can only claim
// the single top slot. With batch claims of up to kMaxSteal slots, the
// owner's free bottom-take is only safe while the deque holds at least
// kMaxSteal elements (no thief claim, which always starts at top and spans
// at most kMaxSteal slots, can reach the bottom slot). Once the deque is
// shorter than that, pop() switches to consuming from the TOP via the same
// CAS the thieves use, racing them slot-for-slot. The last kMaxSteal tasks
// of a run are therefore popped FIFO instead of LIFO — a cache-warmth
// trade, not a correctness one — while long deques (the storm steady state,
// where inbox spills keep hundreds queued) keep the CAS-free owner path.
//
// The circular buffer grows geometrically and never shrinks. Retired buffers
// are kept alive until the deque is destroyed: a thief may still be reading a
// stale buffer pointer, and parking the garbage is far cheaper than hazard
// pointers for the handful of growths a run performs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

// ThreadSanitizer does not model standalone atomic_thread_fence precisely,
// which makes the canonical fence-based Chase-Lev protocol report false
// races. Under TSan every operation is promoted to seq_cst (correct, merely
// slower) so the stress suite runs clean; production builds keep the precise
// weak orders.
#if defined(__SANITIZE_THREAD__)
#define ATM_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ATM_TSAN_BUILD 1
#endif
#endif

namespace atm::rt {

class Task;

namespace detail {
constexpr std::memory_order relax_unless_tsan(std::memory_order order) noexcept {
#ifdef ATM_TSAN_BUILD
  (void)order;
  return std::memory_order_seq_cst;
#else
  return order;
#endif
}

/// Standalone fences are both unsupported by TSan (GCC -Wtsan) and redundant
/// under the seq_cst promotion above, so they compile away in TSan builds.
inline void deque_fence(std::memory_order order) noexcept {
#ifdef ATM_TSAN_BUILD
  (void)order;
#else
  std::atomic_thread_fence(order);
#endif
}
}  // namespace detail

class WorkStealDeque {
 public:
  /// Hard per-steal batch bound. The owner's CAS-free bottom path (see the
  /// file comment) requires b - t >= kMaxSteal, so raising this makes the
  /// owner pay a top-CAS on longer tails; 32 already amortizes the steal
  /// fence 32x while keeping the owner's CAS tail short.
  static constexpr std::size_t kMaxSteal = 32;

  explicit WorkStealDeque(std::size_t initial_capacity = 256)
      : buffer_(new Buffer(round_up_pow2(initial_capacity))) {}

  ~WorkStealDeque() {
    // mo: relaxed — single-threaded teardown; no concurrent access remains.
    delete buffer_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
  }

  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  /// Owner only: push one task at the bottom.
  void push(Task* task) {
    // mo: relaxed bottom/buffer — owner-private variables (only the owner
    // writes them); mo: acquire top — synchronizes with the thieves' CAS so
    // the owner's capacity check sees freed slots.
    const std::int64_t b = bottom_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    const std::int64_t t = top_.load(detail::relax_unless_tsan(std::memory_order_acquire));
    Buffer* buf = buffer_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    // mo: relaxed slot store — the release fence below orders it before the
    // bottom store that publishes the slot to thieves (Lê et al. Fig. 1).
    buf->slot(b).store(task, detail::relax_unless_tsan(std::memory_order_relaxed));
    // mo: release fence — publish the slot before the new bottom becomes
    // visible to thieves; mo: relaxed bottom store — the fence carries the
    // ordering.
    detail::deque_fence(std::memory_order_release);
    bottom_.store(b + 1, detail::relax_unless_tsan(std::memory_order_relaxed));
  }

  /// Owner only: pop a task; nullptr when empty. LIFO (bottom) while at
  /// least kMaxSteal elements remain, FIFO (top, via CAS) below that — see
  /// the file comment for why batch steals force the switch.
  Task* pop() {
    // mo: relaxed — bottom/buffer are owner-private; the seq_cst fence below
    // provides the only cross-thread ordering pop needs.
    const std::int64_t b = bottom_.load(detail::relax_unless_tsan(std::memory_order_relaxed)) - 1;
    Buffer* buf = buffer_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    bottom_.store(b, detail::relax_unless_tsan(std::memory_order_relaxed));
    // mo: seq_cst fence — the bottom store must be ordered before the top
    // load (store-load), mirroring the fence in steal_many(): either the
    // owner sees a fresh-enough top, or the thief sees the reserved bottom
    // and caps its claim below slot b. mo: relaxed top load — the fence
    // carries the ordering.
    detail::deque_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    if (t > b) {
      // mo: relaxed — deque was empty; undo the owner-private reservation.
      bottom_.store(b + 1, detail::relax_unless_tsan(std::memory_order_relaxed));
      return nullptr;
    }
    if (b - t >= static_cast<std::int64_t>(kMaxSteal)) {
      // Long deque: every batch claim spans [t', t'+k) with k <= kMaxSteal
      // and t' <= t (the fence pair above makes this top read at least as
      // fresh as that of any thief whose bottom read predates our
      // reservation), so no live claim can reach slot b. Take it CAS-free.
      // mo: relaxed slot load — the owner published this slot itself.
      return buf->slot(b).load(detail::relax_unless_tsan(std::memory_order_relaxed));
    }
    // Short deque: slot b may sit inside a thief's batch claim. Give the
    // bottom reservation back and consume from the top instead, claiming
    // slot t with the same CAS the thieves use — every slot is then handed
    // out by exactly one winning top-CAS.
    // mo: relaxed — bottom is owner-private.
    bottom_.store(b + 1, detail::relax_unless_tsan(std::memory_order_relaxed));
    while (t <= b) {
      // mo: relaxed slot load — read before the claiming CAS, the same
      // idiom as steal(): the slot cannot be overwritten while top == t
      // (push bounds b - top below capacity), and a failed CAS discards it.
      Task* task = buf->slot(t).load(detail::relax_unless_tsan(std::memory_order_relaxed));
      // mo: seq_cst CAS — claims slot t against the thieves; relaxed on
      // failure (the reloaded expected value restarts the loop).
      if (top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                       detail::relax_unless_tsan(std::memory_order_relaxed))) {
        return task;
      }
    }
    return nullptr;  // thieves drained the tail
  }

  /// Thieves: steal the oldest task; nullptr when empty or lost a race.
  Task* steal() {
    // mo: acquire top — pairs with the winning CAS of other thieves.
    std::int64_t t = top_.load(detail::relax_unless_tsan(std::memory_order_acquire));
    // mo: seq_cst fence — order the top load before the bottom load (the
    // load-load mirror of the fence in pop()).
    detail::deque_fence(std::memory_order_seq_cst);
    // mo: acquire bottom/buffer — pair with push()'s release so the slot
    // contents (and a grown buffer) are visible before we read the slot.
    const std::int64_t b = bottom_.load(detail::relax_unless_tsan(std::memory_order_acquire));
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(detail::relax_unless_tsan(std::memory_order_acquire));
    // mo: relaxed slot load — ordered by the acquires above.
    Task* task = buf->slot(t).load(detail::relax_unless_tsan(std::memory_order_relaxed));
    // mo: seq_cst CAS — claims the element against the owner and other
    // thieves; relaxed on failure (the value is discarded).
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      detail::relax_unless_tsan(std::memory_order_relaxed))) {
      return nullptr;  // another thief or the owner won; caller retries
    }
    return task;
  }

  /// Thieves: steal up to half the deque (at most min(max_n, kMaxSteal)
  /// tasks, oldest first) with one top CAS. Writes the claimed tasks to
  /// out[0..k) in age order and returns k; 0 when empty or a race was lost.
  /// Claims are all-or-nothing: a lost CAS claims no slots.
  std::size_t steal_many(Task** out, std::size_t max_n) {
    // mo: acquire top — pairs with the winning CAS of other thieves.
    std::int64_t t = top_.load(detail::relax_unless_tsan(std::memory_order_acquire));
    // mo: seq_cst fence — order the top load before the bottom load (the
    // load-load mirror of the fence in pop()); this pairing is what lets
    // the owner's long-deque guard bound every batch claim (see pop()).
    detail::deque_fence(std::memory_order_seq_cst);
    // mo: acquire bottom/buffer — pair with push()'s release so the slot
    // contents (and a grown buffer) are visible before we read the slots.
    const std::int64_t b = bottom_.load(detail::relax_unless_tsan(std::memory_order_acquire));
    const std::int64_t n = b - t;
    if (n <= 0) return 0;
    // Take half (rounded up, so a 1-element deque is still stealable),
    // bounded by the caller's cap and the protocol bound kMaxSteal that the
    // owner's pop() relies on.
    std::int64_t k = (n + 1) / 2;
    if (k > static_cast<std::int64_t>(max_n)) k = static_cast<std::int64_t>(max_n);
    if (k > static_cast<std::int64_t>(kMaxSteal)) k = static_cast<std::int64_t>(kMaxSteal);
    if (k <= 0) return 0;
    // mo: acquire buffer — pair with grow()'s release store so a just-grown
    // buffer's slot array is fully visible before the relaxed slot reads.
    Buffer* buf = buffer_.load(detail::relax_unless_tsan(std::memory_order_acquire));
    for (std::int64_t i = 0; i < k; ++i) {
      // mo: relaxed slot loads — read before the claiming CAS (same idiom
      // as steal()): while top == t none of [t, t+k) can be overwritten
      // (push bounds b - top below capacity), and a failed CAS discards
      // everything read here.
      out[i] = buf->slot(t + i).load(detail::relax_unless_tsan(std::memory_order_relaxed));
    }
    // mo: seq_cst CAS — claims all k slots against the owner and other
    // thieves in one shot; relaxed on failure (the reads are discarded —
    // no partial claim).
    if (!top_.compare_exchange_strong(t, t + k, std::memory_order_seq_cst,
                                      detail::relax_unless_tsan(std::memory_order_relaxed))) {
      return 0;
    }
    return static_cast<std::size_t>(k);
  }

  /// Racy size estimate (monitoring/backoff only, never for correctness).
  [[nodiscard]] std::size_t size_estimate() const noexcept {
    // mo: relaxed — racy estimate by contract.
    const std::int64_t b = bottom_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    const std::int64_t t = top_.load(detail::relax_unless_tsan(std::memory_order_relaxed));
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty_estimate() const noexcept { return size_estimate() == 0; }

  [[nodiscard]] std::size_t capacity() const noexcept {
    // mo: relaxed — monitoring read; capacity is immutable per buffer.
    return buffer_.load(detail::relax_unless_tsan(std::memory_order_relaxed))->capacity;
  }

  /// Resident bytes (buffer + retired garbage), for memory accounting.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    std::size_t n = capacity() * sizeof(std::atomic<Task*>);
    for (const auto& r : retired_) n += r->capacity * sizeof(std::atomic<Task*>);
    return n;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<std::atomic<Task*>[]>(cap)) {}
    [[nodiscard]] std::atomic<Task*>& slot(std::int64_t i) noexcept {
      return slots[static_cast<std::size_t>(i) & mask];
    }
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<Task*>[]> slots;
  };

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 8;
    while (p < n) p <<= 1;
    return p;
  }

  /// Owner only (called from push): double the buffer, copy live slots.
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2);
    // mo: relaxed copy — the old slots were published before this call and
    // the release store below republishes them through the new buffer.
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(detail::relax_unless_tsan(std::memory_order_relaxed)),
                            detail::relax_unless_tsan(std::memory_order_relaxed));
    }
    // mo: release — thieves acquiring buffer_ must see the copied slots.
    buffer_.store(bigger, detail::relax_unless_tsan(std::memory_order_release));
    retired_.emplace_back(old);  // thieves may still hold the old pointer
    return bigger;
  }

  // top_ and bottom_ on separate cache lines: thieves hammer top_, the owner
  // hammers bottom_.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  std::vector<std::unique_ptr<Buffer>> retired_;  // owner-only, freed with the deque
};

}  // namespace atm::rt

// Central FIFO ready queue (the paper's RQ). Tasks whose dependences are all
// satisfied wait here for an idle worker. Depth is tracked so the tracer can
// reproduce Figure 8's ready-task timelines.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>

#include "common/mutex.hpp"
#include "runtime/task.hpp"
#include "runtime/trace.hpp"

namespace atm::rt {

class ReadyQueue {
 public:
  explicit ReadyQueue(TraceRecorder* tracer = nullptr) : tracer_(tracer) {}

  /// Enqueue a ready task; wakes one waiting worker.
  void push(Task* task);

  /// Block until a task is available or shutdown() is called.
  /// Returns nullptr on shutdown with an empty queue.
  Task* pop_blocking();

  /// Helping-barrier pop: like pop_blocking, but also returns nullptr once
  /// `quit()` is true. A caller whose quit condition flips asynchronously
  /// must arrange a notify_all() so the wait re-evaluates.
  Task* pop_for_helper(const std::function<bool()>& quit);

  /// Wake every waiter so predicates (shutdown, helper quit) re-evaluate.
  void notify_all();

  /// Non-blocking pop; nullptr when empty.
  Task* try_pop();

  /// Release all blocked workers; subsequent pops drain the queue then
  /// return nullptr.
  void shutdown();

  /// Re-arm after shutdown (used by tests that restart a pool).
  void reset();

  [[nodiscard]] std::size_t depth() const noexcept {
    // mo: relaxed — monitoring gauge; mutex_ orders the queue itself.
    return depth_.load(std::memory_order_relaxed);
  }

 private:
  void sample_locked(std::size_t depth) ATM_REQUIRES(mutex_);
  Task* pop_front_locked() ATM_REQUIRES(mutex_);

  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<Task*> queue_ ATM_GUARDED_BY(mutex_);
  /// Mirror of queue_.size() readable without the lock (monitoring only).
  std::atomic<std::size_t> depth_{0};
  bool shutdown_ ATM_GUARDED_BY(mutex_) = false;
  TraceRecorder* tracer_;
};

}  // namespace atm::rt

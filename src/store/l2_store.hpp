// L2 capacity tier: a sharded, byte-budgeted in-memory MemoStore.
//
// The hot tier (THT) is sized for lookup speed (2^N buckets x M entries,
// paper §IV-B); this tier is sized in *bytes* and catches what the THT
// evicts. Entries promote back into the THT on hit (the engine calls
// take()) and demote here on THT eviction (the eviction-sink seam calls
// put()). Keys never expire by count — the budget is the only limit, per
// Selective Memoization's "programmer controls memo space" argument.
//
// Sharding: the key hash picks one of 2^S independent shards, each its own
// mutex + FIFO list + index, so demotions from different THT buckets and
// concurrent promotions do not serialize on one lock. The byte budget is
// split evenly across shards (no global atomic on the put path).
#pragma once

#include <list>
#include <unordered_map>

#include "common/mutex.hpp"
#include "store/memo_store.hpp"

namespace atm::store {

struct L2Config {
  std::size_t budget_bytes = std::size_t{64} << 20;
  unsigned log2_shards = 4;
  /// Compress demoted snapshots with the packbits codec (raw fallback when
  /// a region does not shrink).
  bool compress = false;
};

class L2CapacityStore final : public MemoStore {
 public:
  explicit L2CapacityStore(L2Config config);

  void put(MemoEntry&& entry) override;
  bool get(const MemoKey& key, MemoEntry* out) override;
  bool take(const MemoKey& key, MemoEntry* out) override;
  void clear() override;

  [[nodiscard]] std::size_t entry_count() const override;
  [[nodiscard]] std::size_t payload_bytes() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] MemoStoreStats stats() const override;
  void reset_stats() override;
  void for_each(const std::function<void(const MemoEntry&)>& fn) const override;

  [[nodiscard]] const L2Config& config() const noexcept { return config_; }

 private:
  struct Shard {
    mutable Mutex mutex;
    /// FIFO order: front is the demotion-time oldest, evicted first.
    std::list<MemoEntry> entries ATM_GUARDED_BY(mutex);
    std::unordered_map<MemoKey, std::list<MemoEntry>::iterator, MemoKeyHash> index
        ATM_GUARDED_BY(mutex);
    std::size_t cost ATM_GUARDED_BY(mutex) = 0;  ///< sum of entry_cost() for residents
  };

  [[nodiscard]] Shard& shard_for(const MemoKey& key) noexcept {
    return shards_[MemoKeyHash{}(key) & shard_mask_];
  }
  [[nodiscard]] const Shard& shard_for(const MemoKey& key) const noexcept {
    return shards_[MemoKeyHash{}(key) & shard_mask_];
  }
  /// Entry accounting cost: stored payload + fixed index/list overhead.
  [[nodiscard]] static std::size_t entry_cost(const MemoEntry& e) noexcept;
  bool extract(const MemoKey& key, MemoEntry* out, bool erase);

  L2Config config_;
  std::vector<Shard> shards_;
  std::size_t shard_mask_;
  std::size_t shard_budget_;

  mutable Mutex stats_mutex_;
  MemoStoreStats stats_ ATM_GUARDED_BY(stats_mutex_);
};

}  // namespace atm::store

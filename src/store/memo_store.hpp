// Tiered memo store: the capacity tier behind the Task History Table.
//
// The paper's THT is a fixed-size in-memory table whose contents die with
// the process; production services serving heavy repeat traffic need (a) a
// larger capacity tier catching entries the small hot tier evicts, and
// (b) persistence so a restart warm-starts from a trained table instead of
// re-paying the full training + miss cost (cf. AttMEMO's hot/capacity
// split and Selective Memoization's explicit memo-space budgets).
//
// This header is the storage-layer contract. It deliberately knows nothing
// about tasks or the runtime: entries are (type, hash, p) keys mapping to
// byte regions, so backends can live below atm_core in the layering
// (atm_common -> atm_store -> atm_core).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace atm::store {

/// Identity of a memoized result: the THT match tuple. `p` participates
/// because Dynamic ATM must not match keys across p values (paper §III-D).
struct MemoKey {
  std::uint32_t type_id = 0;
  std::uint64_t hash = 0;
  double p = 1.0;

  [[nodiscard]] bool operator==(const MemoKey&) const noexcept = default;
};

struct MemoKeyHash {
  [[nodiscard]] std::size_t operator()(const MemoKey& k) const noexcept {
    // splitmix-style finalizer over the three fields; the hash member is
    // already well mixed but type_id/p must still separate buckets.
    std::uint64_t x = k.hash ^ (static_cast<std::uint64_t>(k.type_id) << 32);
    std::uint64_t pbits = 0;
    static_assert(sizeof(pbits) == sizeof(k.p));
    __builtin_memcpy(&pbits, &k.p, sizeof(pbits));
    x ^= pbits + 0x9e3779b97f4a7c15ull + (x << 6) + (x >> 2);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

/// Region payload encodings understood by every backend and the on-disk
/// snapshot format (src/store/snapshot_io.*).
enum class RegionEncoding : std::uint8_t {
  Raw = 0,  ///< data holds the region bytes verbatim
  Rle = 1,  ///< data holds an rle_codec packbits stream of raw_bytes bytes
};

/// One stored output region of a memoized task.
struct MemoRegion {
  std::vector<std::uint8_t> data;       ///< payload (possibly encoded)
  std::uint64_t raw_bytes = 0;          ///< decoded size
  std::uint8_t elem = 0;                ///< rt::ElemType tag (opaque here)
  RegionEncoding encoding = RegionEncoding::Raw;
};

/// A complete memoized result: key + creator attribution + output regions.
struct MemoEntry {
  MemoKey key;
  std::uint64_t creator = 0;
  std::vector<MemoRegion> regions;

  /// Bytes held by the payloads as stored (post-compression).
  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& r : regions) n += r.data.size();
    return n;
  }
  /// Bytes the decoded regions occupy.
  [[nodiscard]] std::size_t raw_payload_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& r : regions) n += r.raw_bytes;
    return n;
  }
};

/// Counters every backend reports (fed into AtmStatsSnapshot).
struct MemoStoreStats {
  std::uint64_t puts = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;       ///< entries dropped to stay in budget
  std::uint64_t compressed_regions = 0;
};

/// Abstract capacity-tier store. Implementations must be thread-safe:
/// the THT eviction seam calls put() under a bucket lock while lookup
/// threads call take() concurrently.
class MemoStore {
 public:
  virtual ~MemoStore() = default;

  /// Insert (or refresh) an entry. The store owns the moved-in payload and
  /// may encode it; stays within its byte budget by evicting.
  virtual void put(MemoEntry&& entry) = 0;

  /// Copy the entry out with Raw-decoded regions; false on miss.
  virtual bool get(const MemoKey& key, MemoEntry* out) = 0;

  /// Remove and return the entry (promotion into the hot tier; avoids
  /// double residency). Regions are Raw-decoded. False on miss.
  virtual bool take(const MemoKey& key, MemoEntry* out) = 0;

  virtual void clear() = 0;

  [[nodiscard]] virtual std::size_t entry_count() const = 0;
  /// Payload bytes resident as stored (post-compression).
  [[nodiscard]] virtual std::size_t payload_bytes() const = 0;
  /// Payload + index/bookkeeping overhead (the Table-III-style number).
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;
  [[nodiscard]] virtual MemoStoreStats stats() const = 0;
  /// Zero the counters (resident entries are untouched) — keeps per-phase
  /// measurements honest when the engine's reset_stats() is used.
  virtual void reset_stats() = 0;

  /// Visit every resident entry as stored (no decode) — serialization.
  virtual void for_each(const std::function<void(const MemoEntry&)>& fn) const = 0;
};

}  // namespace atm::store

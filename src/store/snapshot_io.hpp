// Persistent memo-store snapshots: a versioned, checksummed binary image of
// the trained memoization state, so `atm_run --save-store/--load-store`
// warm-starts a run from a previous process — steady-state hit rate from
// iteration 1, zero training executions on restart.
//
// On-disk layout (native-endian; snapshots are a same-machine warm-start
// artifact, not an interchange format — which is exactly why the header
// carries an endianness marker: a snapshot carried to a foreign-endian host
// must be rejected with a clear diagnostic, not half-parsed into garbage):
//
//   bytes 0..7   magic "ATMSTOR\0"
//   u32          format version (kFormatVersion)
//   u32          endianness marker (kEndianMarker, byte-order sentinel)
//   u64          payload size in bytes
//   u64          lookup3 checksum of the payload (seed kChecksumSeed)
//   payload:
//     u32 n_controllers { u32 type_id, u8 steady, u64 p_bits, u64 trained }
//     u64 n_l1 entries, u64 n_l2 entries, then each entry:
//       u32 type_id, u64 hash, u64 p_bits, u64 creator, u32 n_regions
//       region: u8 elem, u8 encoding, u64 raw_bytes, u64 size, bytes[size]
//
// load() verifies magic, version, sizes and checksum before touching any
// payload field; every parse is bounds-checked, so a truncated or corrupted
// file fails cleanly instead of warm-starting from garbage.
#pragma once

#include <optional>
#include <string>

#include "store/memo_store.hpp"

namespace atm::store {

inline constexpr char kMagic[8] = {'A', 'T', 'M', 'S', 'T', 'O', 'R', '\0'};
/// v2: hash keys for p < 1 switched from shuffled-order to gather-plan
/// (layout-order) digests — v1 snapshots would load cleanly but never hit,
/// so they are rejected instead (a cold start, reported to the user).
/// v3: the previously-reserved header word became the endianness marker, so
/// a snapshot moved across byte orders fails with a precise diagnostic.
inline constexpr std::uint32_t kFormatVersion = 3;
/// Written native; reads back byte-swapped on a foreign-endian host.
inline constexpr std::uint32_t kEndianMarker = 0x01020304u;
inline constexpr std::uint64_t kChecksumSeed = 0xa7151e57ULL;

/// Per-task-type training-controller state worth persisting: the trained p
/// and whether training finished. Type ids are registration-order dense, so
/// an image is valid for programs registering the same types in the same
/// order (true for every app in this repo; documented in ARCHITECTURE.md).
struct ControllerState {
  std::uint32_t type_id = 0;
  bool steady = false;
  double p = 1.0;
  std::uint64_t trained_tasks = 0;
};

/// Everything a warm start needs: both tiers + the p-controllers.
struct StoreImage {
  std::vector<ControllerState> controllers;
  std::vector<MemoEntry> l1;  ///< hot-tier (THT) entries
  std::vector<MemoEntry> l2;  ///< capacity-tier entries (as stored, maybe Rle)
};

/// Serialize `image` to `path` (atomically enough for a CLI tool: write then
/// flush; partial files fail the checksum on load). False + *error on I/O
/// failure.
bool save(const std::string& path, const StoreImage& image, std::string* error = nullptr);

/// Read and verify an image. std::nullopt + *error when the file is
/// missing, truncated, version-mismatched, foreign-endian, corrupted, or
/// malformed.
[[nodiscard]] std::optional<StoreImage> load(const std::string& path,
                                             std::string* error = nullptr);

/// Container-level verification only: magic, version, endianness marker,
/// payload size and checksum — without materializing any entries. The
/// cheap preflight for CLI tools that want to fail fast on a bad
/// `--load-store` before the engine performs the real load.
[[nodiscard]] bool validate(const std::string& path, std::string* error = nullptr);

}  // namespace atm::store

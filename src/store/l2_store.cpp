#include "store/l2_store.hpp"

#include "store/rle_codec.hpp"

namespace atm::store {

L2CapacityStore::L2CapacityStore(L2Config config)
    : config_(config),
      shards_(std::size_t{1} << config.log2_shards),
      shard_mask_((std::size_t{1} << config.log2_shards) - 1) {
  shard_budget_ = config_.budget_bytes / shards_.size();
  if (shard_budget_ == 0) shard_budget_ = 1;
}

std::size_t L2CapacityStore::entry_cost(const MemoEntry& e) noexcept {
  // Payload as stored + index node + list node + region headers. The fixed
  // costs matter: a budget full of tiny entries must not look free.
  return e.payload_bytes() + sizeof(MemoEntry) + e.regions.size() * sizeof(MemoRegion) +
         64 /* index + list node estimate */;
}

void L2CapacityStore::put(MemoEntry&& entry) {
  std::uint64_t compressed = 0;
  if (config_.compress) {
    for (auto& r : entry.regions) {
      if (encode_region(&r)) ++compressed;
    }
  }
  const std::size_t cost = entry_cost(entry);

  Shard& shard = shard_for(entry.key);
  std::uint64_t evicted = 0;
  {
    MutexLock lock(shard.mutex);
    auto it = shard.index.find(entry.key);
    if (it != shard.index.end()) {
      // Refresh: drop the stale entry, then insert like any new one — the
      // budget check below applies to the replacement payload too, and a
      // re-demotion is the newest arrival, so it moves to the FIFO back.
      shard.cost -= entry_cost(*it->second);
      shard.entries.erase(it->second);
      shard.index.erase(it);
    }
    // An entry larger than the whole shard budget can never fit; storing
    // it would immediately evict everything including itself. Counted as
    // one eviction below (outside the shard lock — never nest stats under
    // a shard).
    if (cost > shard_budget_) {
      evicted = 1;
    } else {
      while (!shard.entries.empty() && shard.cost + cost > shard_budget_) {
        MemoEntry& victim = shard.entries.front();
        shard.cost -= entry_cost(victim);
        shard.index.erase(victim.key);
        shard.entries.pop_front();
        ++evicted;
      }
      shard.cost += cost;
      shard.entries.push_back(std::move(entry));
      shard.index.emplace(shard.entries.back().key, std::prev(shard.entries.end()));
    }
  }
  MutexLock lock(stats_mutex_);
  ++stats_.puts;
  stats_.evictions += evicted;
  stats_.compressed_regions += compressed;
}

bool L2CapacityStore::extract(const MemoKey& key, MemoEntry* out, bool erase) {
  Shard& shard = shard_for(key);
  bool found = false;
  {
    MutexLock lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      found = true;
      if (erase) {
        shard.cost -= entry_cost(*it->second);
        *out = std::move(*it->second);
        shard.entries.erase(it->second);
        shard.index.erase(it);
      } else {
        *out = *it->second;
      }
    }
  }
  {
    MutexLock lock(stats_mutex_);
    found ? ++stats_.hits : ++stats_.misses;
  }
  if (!found) return false;
  for (auto& r : out->regions) {
    if (!decode_region(&r)) return false;  // corrupt payload: treat as miss
  }
  return true;
}

bool L2CapacityStore::get(const MemoKey& key, MemoEntry* out) {
  return extract(key, out, /*erase=*/false);
}

bool L2CapacityStore::take(const MemoKey& key, MemoEntry* out) {
  return extract(key, out, /*erase=*/true);
}

void L2CapacityStore::clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    shard.entries.clear();
    shard.index.clear();
    shard.cost = 0;
  }
}

std::size_t L2CapacityStore::entry_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    n += shard.entries.size();
  }
  return n;
}

std::size_t L2CapacityStore::payload_bytes() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const MemoEntry& e : shard.entries) n += e.payload_bytes();
  }
  return n;
}

std::size_t L2CapacityStore::memory_bytes() const {
  std::size_t n = sizeof(*this) + shards_.size() * sizeof(Shard);
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    n += shard.cost;
  }
  return n;
}

MemoStoreStats L2CapacityStore::stats() const {
  MutexLock lock(stats_mutex_);
  return stats_;
}

void L2CapacityStore::reset_stats() {
  MutexLock lock(stats_mutex_);
  stats_ = MemoStoreStats{};
}

void L2CapacityStore::for_each(const std::function<void(const MemoEntry&)>& fn) const {
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const MemoEntry& e : shard.entries) fn(e);
  }
}

}  // namespace atm::store

#include "store/rle_codec.hpp"

namespace atm::store {

namespace {
constexpr std::size_t kMaxLiteral = 128;  // control 0x00..0x7f => 1..128 bytes
constexpr std::size_t kMinRun = 3;        // shorter runs cost more than literals
constexpr std::size_t kMaxRun = 129;      // control 0x80..0xff => 2..129 repeats
}  // namespace

void rle_encode(std::span<const std::uint8_t> bytes, std::vector<std::uint8_t>* out) {
  std::size_t i = 0;
  const std::size_t n = bytes.size();
  std::size_t literal_start = 0;

  const auto flush_literals = [&](std::size_t end) {
    std::size_t pos = literal_start;
    while (pos < end) {
      const std::size_t chunk = (end - pos < kMaxLiteral) ? end - pos : kMaxLiteral;
      out->push_back(static_cast<std::uint8_t>(chunk - 1));
      out->insert(out->end(), bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                  bytes.begin() + static_cast<std::ptrdiff_t>(pos + chunk));
      pos += chunk;
    }
  };

  while (i < n) {
    std::size_t run = 1;
    while (i + run < n && bytes[i + run] == bytes[i] && run < kMaxRun) ++run;
    if (run >= kMinRun) {
      flush_literals(i);
      out->push_back(static_cast<std::uint8_t>(0x80u + (run - 2)));
      out->push_back(bytes[i]);
      i += run;
      literal_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(n);
}

bool rle_decode(std::span<const std::uint8_t> stream, std::size_t expected_bytes,
                std::vector<std::uint8_t>* out) {
  out->clear();
  out->reserve(expected_bytes);
  std::size_t i = 0;
  const std::size_t n = stream.size();
  while (i < n) {
    const std::uint8_t c = stream[i++];
    if (c < 0x80u) {
      const std::size_t count = static_cast<std::size_t>(c) + 1;
      if (i + count > n || out->size() + count > expected_bytes) return false;
      out->insert(out->end(), stream.begin() + static_cast<std::ptrdiff_t>(i),
                  stream.begin() + static_cast<std::ptrdiff_t>(i + count));
      i += count;
    } else {
      const std::size_t count = static_cast<std::size_t>(c) - 126;
      if (i >= n || out->size() + count > expected_bytes) return false;
      out->insert(out->end(), count, stream[i++]);
    }
  }
  return out->size() == expected_bytes;
}

bool encode_region(MemoRegion* region) {
  if (region->encoding != RegionEncoding::Raw) {
    return region->encoding == RegionEncoding::Rle;
  }
  std::vector<std::uint8_t> encoded;
  encoded.reserve(region->data.size());
  rle_encode(region->data, &encoded);
  if (encoded.size() >= region->data.size()) return false;  // raw fallback
  region->raw_bytes = region->data.size();
  region->data = std::move(encoded);
  region->data.shrink_to_fit();
  region->encoding = RegionEncoding::Rle;
  return true;
}

bool decode_region(MemoRegion* region) {
  if (region->encoding == RegionEncoding::Raw) {
    region->raw_bytes = region->data.size();
    return true;
  }
  std::vector<std::uint8_t> raw;
  if (!rle_decode(region->data, static_cast<std::size_t>(region->raw_bytes), &raw)) {
    return false;
  }
  region->data = std::move(raw);
  region->encoding = RegionEncoding::Raw;
  return true;
}

}  // namespace atm::store

// Byte-wise run-length codec for L2 snapshot payloads (packbits-style).
//
// Stencil/pricing output snapshots contain long byte runs early in a run
// (uniform initial blocks, saturated regions) and near-incompressible float
// soup later; the codec therefore always guards with a raw fallback at the
// region level — encode_region() only switches a region to Rle when the
// stream is strictly smaller than the raw payload.
//
// Stream grammar (one control byte at a time):
//   c in [0x00, 0x7f]: the next c+1 bytes are literals
//   c in [0x80, 0xff]: the next byte repeats c-126 times (2..129)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "store/memo_store.hpp"

namespace atm::store {

/// Encode `bytes` into a packbits stream (appended to `out`).
void rle_encode(std::span<const std::uint8_t> bytes, std::vector<std::uint8_t>* out);

/// Decode a packbits stream; false when the stream is malformed or does not
/// decode to exactly `expected_bytes` bytes.
[[nodiscard]] bool rle_decode(std::span<const std::uint8_t> stream,
                              std::size_t expected_bytes,
                              std::vector<std::uint8_t>* out);

/// Compress a Raw region in place when the encoded stream is smaller; no-op
/// (still Raw) otherwise or when the region is already encoded.
/// Returns true when the region ends up Rle.
bool encode_region(MemoRegion* region);

/// Decode a region back to Raw in place. Returns false (region unchanged)
/// when an Rle payload is malformed. Raw regions are a no-op success.
[[nodiscard]] bool decode_region(MemoRegion* region);

}  // namespace atm::store

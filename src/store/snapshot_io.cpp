#include "store/snapshot_io.hpp"

#include <cstring>
#include <fstream>
#include <type_traits>

#include "common/hash.hpp"

namespace atm::store {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

// --- payload writer --------------------------------------------------------

struct Writer {
  std::vector<std::uint8_t> bytes;

  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = bytes.size();
    bytes.resize(at + sizeof(T));
    std::memcpy(bytes.data() + at, &value, sizeof(T));
  }
  void put_bytes(const std::vector<std::uint8_t>& data) {
    bytes.insert(bytes.end(), data.begin(), data.end());
  }
};

std::uint64_t double_bits(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double d = 0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

std::uint32_t byteswap32(std::uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0x0000ff00u) | ((v << 8) & 0x00ff0000u) | (v << 24);
}

void write_entry(Writer* w, const MemoEntry& e) {
  w->put(e.key.type_id);
  w->put(e.key.hash);
  w->put(double_bits(e.key.p));
  w->put(e.creator);
  w->put(static_cast<std::uint32_t>(e.regions.size()));
  for (const MemoRegion& r : e.regions) {
    w->put(r.elem);
    w->put(static_cast<std::uint8_t>(r.encoding));
    w->put(r.raw_bytes != 0 ? r.raw_bytes
                            : static_cast<std::uint64_t>(r.data.size()));
    w->put(static_cast<std::uint64_t>(r.data.size()));
    w->put_bytes(r.data);
  }
}

// --- bounds-checked payload reader -----------------------------------------

struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  bool ok = true;

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    if (!ok || size - pos < sizeof(T)) {
      ok = false;
      return value;
    }
    std::memcpy(&value, data + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }
  bool get_bytes(std::size_t n, std::vector<std::uint8_t>* out) {
    if (!ok || size - pos < n) {
      ok = false;
      return false;
    }
    out->assign(data + pos, data + pos + n);
    pos += n;
    return true;
  }
};

bool read_entry(Reader* r, MemoEntry* e) {
  e->key.type_id = r->get<std::uint32_t>();
  e->key.hash = r->get<std::uint64_t>();
  e->key.p = bits_double(r->get<std::uint64_t>());
  e->creator = r->get<std::uint64_t>();
  const auto n_regions = r->get<std::uint32_t>();
  if (!r->ok) return false;
  e->regions.clear();
  e->regions.reserve(n_regions);
  for (std::uint32_t i = 0; i < n_regions; ++i) {
    MemoRegion region;
    region.elem = r->get<std::uint8_t>();
    const auto encoding = r->get<std::uint8_t>();
    if (encoding > static_cast<std::uint8_t>(RegionEncoding::Rle)) return false;
    region.encoding = static_cast<RegionEncoding>(encoding);
    region.raw_bytes = r->get<std::uint64_t>();
    const auto stored = r->get<std::uint64_t>();
    if (!r->ok || !r->get_bytes(static_cast<std::size_t>(stored), &region.data)) {
      return false;
    }
    e->regions.push_back(std::move(region));
  }
  return r->ok;
}

}  // namespace

bool save(const std::string& path, const StoreImage& image, std::string* error) {
  Writer payload;
  payload.put(static_cast<std::uint32_t>(image.controllers.size()));
  for (const ControllerState& c : image.controllers) {
    payload.put(c.type_id);
    payload.put(static_cast<std::uint8_t>(c.steady ? 1 : 0));
    payload.put(double_bits(c.p));
    payload.put(c.trained_tasks);
  }
  payload.put(static_cast<std::uint64_t>(image.l1.size()));
  payload.put(static_cast<std::uint64_t>(image.l2.size()));
  for (const MemoEntry& e : image.l1) write_entry(&payload, e);
  for (const MemoEntry& e : image.l2) write_entry(&payload, e);

  const std::uint64_t checksum = hash_bytes(payload.bytes, kChecksumSeed);

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    set_error(error, "cannot open '" + path + "' for writing");
    return false;
  }
  Writer header;
  header.bytes.insert(header.bytes.end(), kMagic, kMagic + sizeof(kMagic));
  header.put(kFormatVersion);
  header.put(kEndianMarker);
  header.put(static_cast<std::uint64_t>(payload.bytes.size()));
  header.put(checksum);
  file.write(reinterpret_cast<const char*>(header.bytes.data()),
             static_cast<std::streamsize>(header.bytes.size()));
  file.write(reinterpret_cast<const char*>(payload.bytes.data()),
             static_cast<std::streamsize>(payload.bytes.size()));
  file.flush();
  if (!file) {
    set_error(error, "write to '" + path + "' failed");
    return false;
  }
  return true;
}

namespace {

/// Verify the container (magic, version, endianness, size, checksum) of a
/// whole snapshot file already read into `bytes`; on success points
/// *payload/*payload_size at the verified payload inside `bytes`.
bool verify_container(const std::string& path, const std::vector<std::uint8_t>& bytes,
                      const std::uint8_t** payload, std::size_t* payload_size,
                      std::string* error) {
  constexpr std::size_t kHeaderBytes = sizeof(kMagic) + 4 + 4 + 8 + 8;
  if (bytes.size() < kHeaderBytes) {
    set_error(error, "'" + path + "' is too short to be a store snapshot");
    return false;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    set_error(error, "'" + path + "' is not a store snapshot (bad magic)");
    return false;
  }
  Reader header{bytes.data() + sizeof(kMagic), bytes.size() - sizeof(kMagic)};
  const auto version = header.get<std::uint32_t>();
  const auto endian = header.get<std::uint32_t>();
  const auto size = header.get<std::uint64_t>();
  const auto checksum = header.get<std::uint64_t>();
  if (version == byteswap32(kFormatVersion) || endian == byteswap32(kEndianMarker)) {
    set_error(error,
              "'" + path +
                  "' was written on a machine with the opposite byte order; "
                  "store snapshots are native-endian and cannot be loaded "
                  "across endianness — regenerate with --save-store on this "
                  "machine");
    return false;
  }
  if (version != kFormatVersion) {
    set_error(error, "'" + path + "' has format version " + std::to_string(version) +
                         ", expected " + std::to_string(kFormatVersion) +
                         " — regenerate with --save-store");
    return false;
  }
  if (endian != kEndianMarker) {
    set_error(error, "'" + path + "' has a corrupt endianness marker");
    return false;
  }
  if (size != bytes.size() - kHeaderBytes) {
    set_error(error, "'" + path + "' payload size mismatch (truncated?)");
    return false;
  }
  const std::uint8_t* data = bytes.data() + kHeaderBytes;
  if (hash_bytes(data, static_cast<std::size_t>(size), kChecksumSeed) != checksum) {
    set_error(error, "'" + path + "' checksum mismatch (corrupted)");
    return false;
  }
  *payload = data;
  *payload_size = static_cast<std::size_t>(size);
  return true;
}

bool read_whole_file(const std::string& path, std::vector<std::uint8_t>* bytes,
                     std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    set_error(error, "cannot open '" + path + "'");
    return false;
  }
  bytes->assign(std::istreambuf_iterator<char>(file),
                std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

bool validate(const std::string& path, std::string* error) {
  std::vector<std::uint8_t> bytes;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_size = 0;
  return read_whole_file(path, &bytes, error) &&
         verify_container(path, bytes, &payload, &payload_size, error);
}

std::optional<StoreImage> load(const std::string& path, std::string* error) {
  std::vector<std::uint8_t> bytes;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_size = 0;
  if (!read_whole_file(path, &bytes, error) ||
      !verify_container(path, bytes, &payload, &payload_size, error)) {
    return std::nullopt;
  }

  Reader r{payload, payload_size};
  StoreImage image;
  const auto n_controllers = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; r.ok && i < n_controllers; ++i) {
    ControllerState c;
    c.type_id = r.get<std::uint32_t>();
    c.steady = r.get<std::uint8_t>() != 0;
    c.p = bits_double(r.get<std::uint64_t>());
    c.trained_tasks = r.get<std::uint64_t>();
    image.controllers.push_back(c);
  }
  const auto n_l1 = r.get<std::uint64_t>();
  const auto n_l2 = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; r.ok && i < n_l1; ++i) {
    MemoEntry e;
    if (!read_entry(&r, &e)) break;
    image.l1.push_back(std::move(e));
  }
  for (std::uint64_t i = 0; r.ok && i < n_l2; ++i) {
    MemoEntry e;
    if (!read_entry(&r, &e)) break;
    image.l2.push_back(std::move(e));
  }
  if (!r.ok || image.l1.size() != n_l1 || image.l2.size() != n_l2 ||
      r.pos != r.size) {
    set_error(error, "'" + path + "' payload is malformed");
    return std::nullopt;
  }
  return image;
}

}  // namespace atm::store

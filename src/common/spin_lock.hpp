// A 1-byte test-and-set spinlock for sub-microsecond critical sections
// (task successor lists, arena free-list pops, tracker shards). Spins are
// bounded by the shared backoff below, so oversubscribed hosts (CI
// containers) make progress when the holder was preempted. Copyable as a
// fresh (unlocked) lock so structs holding one stay copyable.
#pragma once

#include <atomic>
#include <thread>

#include "common/thread_safety.hpp"

namespace atm {

/// Shared bounded-spin backoff: yield after 64 fruitless probes. The single
/// definition keeps every spinning primitive (SpinLock, SharedSpinMutex)
/// tuned together.
inline void spin_backoff(int& spins) noexcept {
  if (++spins >= 64) {
    std::this_thread::yield();
    spins = 0;
  }
}

class ATM_CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() noexcept = default;
  SpinLock(const SpinLock&) noexcept {}
  SpinLock& operator=(const SpinLock&) noexcept { return *this; }

  void lock() noexcept ATM_ACQUIRE() {
    int spins = 0;
    // mo: acquire on the winning exchange orders the critical section after
    // the previous holder's release store.
    while (locked_.exchange(true, std::memory_order_acquire)) {
      do {
        spin_backoff(spins);
        // mo: relaxed — the wait probe carries no data; the next exchange
        // re-synchronizes.
      } while (locked_.load(std::memory_order_relaxed));
    }
  }
  void unlock() noexcept ATM_RELEASE() {
    // mo: release publishes every write of the critical section to the next
    // acquirer.
    locked_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> locked_{false};
};

/// Scoped exclusive lock on a SpinLock (the std::lock_guard shape).
class ATM_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& m) noexcept ATM_ACQUIRE(m) : m_(m) {
    m_.lock();
  }
  ~SpinLockGuard() ATM_RELEASE() { m_.unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& m_;
};

}  // namespace atm

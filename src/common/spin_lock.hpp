// A 1-byte test-and-set spinlock for sub-microsecond critical sections
// (task successor lists, arena free-list pops, tracker shards). Spins are
// bounded by the shared backoff below, so oversubscribed hosts (CI
// containers) make progress when the holder was preempted. Copyable as a
// fresh (unlocked) lock so structs holding one stay copyable.
#pragma once

#include <atomic>
#include <thread>

namespace atm {

/// Shared bounded-spin backoff: yield after 64 fruitless probes. The single
/// definition keeps every spinning primitive (SpinLock, SharedSpinMutex)
/// tuned together.
inline void spin_backoff(int& spins) noexcept {
  if (++spins >= 64) {
    std::this_thread::yield();
    spins = 0;
  }
}

class SpinLock {
 public:
  SpinLock() noexcept = default;
  SpinLock(const SpinLock&) noexcept {}
  SpinLock& operator=(const SpinLock&) noexcept { return *this; }

  void lock() noexcept {
    int spins = 0;
    while (locked_.exchange(true, std::memory_order_acquire)) {
      do {
        spin_backoff(spins);
      } while (locked_.load(std::memory_order_relaxed));
    }
  }
  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace atm

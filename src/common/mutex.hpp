// Annotated blocking-lock vocabulary: thin wrappers over std::mutex /
// std::shared_mutex / std::condition_variable carrying Clang Thread Safety
// capability attributes, plus the RAII guards the rest of the tree uses.
//
// libstdc++'s lock types have no capability annotations, so code locking a
// raw std::mutex through std::lock_guard is invisible to the analysis. All
// blocking locks in src/ go through these wrappers instead (lint rule R5
// enforces it); the wrappers are zero-overhead — every method is a single
// forwarded inline call, and CondVar::wait round-trips through the native
// handle with adopt/release so no second lock operation ever happens.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_safety.hpp"

namespace atm {

/// std::mutex with a capability annotation.
class ATM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ATM_ACQUIRE() { m_.lock(); }
  void unlock() ATM_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() ATM_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped handle — for CondVar only; never lock it directly.
  [[nodiscard]] std::mutex& native() noexcept { return m_; }

 private:
  std::mutex m_;
};

/// Scoped exclusive lock on a Mutex (the std::lock_guard shape).
class ATM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) ATM_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() ATM_RELEASE() { m_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable paired with atm::Mutex. Waits adopt the already-held
/// native mutex and release it back untouched, so the annotation-visible
/// lock state (caller holds `m` across the call) matches reality and the
/// wrapper adds no lock/unlock beyond std::condition_variable's own.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& m) ATM_REQUIRES(m) {
    std::unique_lock<std::mutex> l(m.native(), std::adopt_lock);
    cv_.wait(l);
    l.release();
  }

  template <class Pred>
  void wait(Mutex& m, Pred pred) ATM_REQUIRES(m) {
    std::unique_lock<std::mutex> l(m.native(), std::adopt_lock);
    cv_.wait(l, std::move(pred));
    l.release();
  }

  template <class Rep, class Period, class Pred>
  bool wait_for(Mutex& m, const std::chrono::duration<Rep, Period>& d,
                Pred pred) ATM_REQUIRES(m) {
    std::unique_lock<std::mutex> l(m.native(), std::adopt_lock);
    const bool r = cv_.wait_for(l, d, std::move(pred));
    l.release();
    return r;
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(Mutex& m,
                            const std::chrono::time_point<Clock, Duration>& t)
      ATM_REQUIRES(m) {
    std::unique_lock<std::mutex> l(m.native(), std::adopt_lock);
    const std::cv_status r = cv_.wait_until(l, t);
    l.release();
    return r;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// std::shared_mutex with capability annotations (reader/writer).
class ATM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ATM_ACQUIRE() { m_.lock(); }
  void unlock() ATM_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() ATM_TRY_ACQUIRE(true) { return m_.try_lock(); }

  void lock_shared() ATM_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() ATM_RELEASE_SHARED() { m_.unlock_shared(); }
  [[nodiscard]] bool try_lock_shared() ATM_TRY_ACQUIRE_SHARED(true) {
    return m_.try_lock_shared();
  }

 private:
  std::shared_mutex m_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class ATM_SCOPED_CAPABILITY SharedWriteLock {
 public:
  explicit SharedWriteLock(SharedMutex& m) ATM_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~SharedWriteLock() ATM_RELEASE() { m_.unlock(); }
  SharedWriteLock(const SharedWriteLock&) = delete;
  SharedWriteLock& operator=(const SharedWriteLock&) = delete;

 private:
  SharedMutex& m_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class ATM_SCOPED_CAPABILITY SharedReadLock {
 public:
  explicit SharedReadLock(SharedMutex& m) ATM_ACQUIRE_SHARED(m) : m_(m) {
    m_.lock_shared();
  }
  ~SharedReadLock() ATM_RELEASE_GENERIC() { m_.unlock_shared(); }
  SharedReadLock(const SharedReadLock&) = delete;
  SharedReadLock& operator=(const SharedReadLock&) = delete;

 private:
  SharedMutex& m_;
};

}  // namespace atm

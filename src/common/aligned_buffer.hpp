// Cache-line aligned, zero-initialized buffers for application data blocks.
// Stencil blocks and option arrays are allocated through this so that THT
// output copies and task bodies see consistent alignment.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

namespace atm {

inline constexpr std::size_t kCacheLineSize = 64;

/// Owning, 64-byte aligned array of trivially-copyable T. Movable, non-copyable.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() noexcept = default;

  explicit AlignedBuffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    const std::size_t bytes = (count * sizeof(T) + kCacheLineSize - 1) / kCacheLineSize *
                              kCacheLineSize;
    data_ = static_cast<T*>(::operator new(bytes, std::align_val_t(kCacheLineSize)));
    for (std::size_t i = 0; i < count; ++i) new (data_ + i) T();
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      destroy();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { destroy(); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return size_ * sizeof(T); }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

 private:
  void destroy() noexcept {
    if (data_ != nullptr) {
      for (std::size_t i = size_; i > 0; --i) data_[i - 1].~T();
      ::operator delete(data_, std::align_val_t(kCacheLineSize));
      data_ = nullptr;
      size_ = 0;
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace atm

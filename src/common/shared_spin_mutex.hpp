// A 4-byte reader-writer spinlock for sharded hot structures (the THT
// buckets). std::shared_mutex is a 56-byte pthread rwlock whose acquire is
// a futex-word protocol; for critical sections of a few hundred nanoseconds
// (copy a memo snapshot out of a bucket) the syscall fallback is never worth
// arming, and the size wrecks cacheline budgets once the lock is embedded
// per bucket. This lock is one atomic word: writer bit + reader count.
//
// Writer-preference: a writer parks its intent bit first, which blocks new
// readers, then waits for in-flight readers to drain — inserts cannot be
// starved by a read storm. Spins yield after a bounded burst so
// oversubscribed hosts (CI containers) stay live. Satisfies SharedLockable /
// Lockable, so std::shared_lock / std::unique_lock / std::lock_guard work.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/spin_lock.hpp"

namespace atm {

class SharedSpinMutex {
  static constexpr std::uint32_t kWriter = 1u << 31;

 public:
  SharedSpinMutex() noexcept = default;
  SharedSpinMutex(const SharedSpinMutex&) = delete;
  SharedSpinMutex& operator=(const SharedSpinMutex&) = delete;

  void lock() noexcept {
    // Phase 1: claim the writer bit (mutual exclusion among writers).
    int spins = 0;
    for (;;) {
      std::uint32_t state = state_.load(std::memory_order_relaxed);
      if ((state & kWriter) == 0 &&
          state_.compare_exchange_weak(state, state | kWriter,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        break;
      }
      spin_backoff(spins);
    }
    // Phase 2: wait for in-flight readers to drain (new ones bounce off the
    // writer bit).
    spins = 0;
    while ((state_.load(std::memory_order_acquire) & ~kWriter) != 0) {
      spin_backoff(spins);
    }
  }

  [[nodiscard]] bool try_lock() noexcept {
    std::uint32_t expected = 0;
    return state_.compare_exchange_strong(expected, kWriter,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void unlock() noexcept {
    state_.fetch_and(~kWriter, std::memory_order_release);
  }

  void lock_shared() noexcept {
    int spins = 0;
    for (;;) {
      const std::uint32_t state =
          state_.fetch_add(1, std::memory_order_acquire);
      if ((state & kWriter) == 0) return;
      // A writer holds (or is draining toward) the lock: back out and wait.
      state_.fetch_sub(1, std::memory_order_relaxed);
      while (state_.load(std::memory_order_relaxed) & kWriter) spin_backoff(spins);
    }
  }

  [[nodiscard]] bool try_lock_shared() noexcept {
    const std::uint32_t state = state_.fetch_add(1, std::memory_order_acquire);
    if ((state & kWriter) == 0) return true;
    state_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }

  void unlock_shared() noexcept {
    state_.fetch_sub(1, std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> state_{0};
};

}  // namespace atm

// A 4-byte reader-writer spinlock for sharded hot structures (the THT
// buckets). std::shared_mutex is a 56-byte pthread rwlock whose acquire is
// a futex-word protocol; for critical sections of a few hundred nanoseconds
// (copy a memo snapshot out of a bucket) the syscall fallback is never worth
// arming, and the size wrecks cacheline budgets once the lock is embedded
// per bucket. This lock is one atomic word: writer bit + reader count.
//
// Writer-preference: a writer parks its intent bit first, which blocks new
// readers, then waits for in-flight readers to drain — inserts cannot be
// starved by a read storm. Spins yield after a bounded burst so
// oversubscribed hosts (CI containers) stay live.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/spin_lock.hpp"
#include "common/thread_safety.hpp"

namespace atm {

class ATM_CAPABILITY("shared_mutex") SharedSpinMutex {
  static constexpr std::uint32_t kWriter = 1u << 31;

 public:
  SharedSpinMutex() noexcept = default;
  SharedSpinMutex(const SharedSpinMutex&) = delete;
  SharedSpinMutex& operator=(const SharedSpinMutex&) = delete;

  void lock() noexcept ATM_ACQUIRE() {
    // Phase 1: claim the writer bit (mutual exclusion among writers).
    int spins = 0;
    for (;;) {
      // mo: relaxed pre-read — the CAS below re-validates with acquire.
      std::uint32_t state = state_.load(std::memory_order_relaxed);
      if ((state & kWriter) == 0 &&
          // mo: acquire on success pairs with the releasing unlock;
          // relaxed on failure (the retry loop re-reads).
          state_.compare_exchange_weak(state, state | kWriter,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        break;
      }
      spin_backoff(spins);
    }
    // Phase 2: wait for in-flight readers to drain (new ones bounce off the
    // writer bit).
    spins = 0;
    // mo: acquire so the last reader's release (fetch_sub) happens-before
    // the writer's critical section.
    while ((state_.load(std::memory_order_acquire) & ~kWriter) != 0) {
      spin_backoff(spins);
    }
  }

  [[nodiscard]] bool try_lock() noexcept ATM_TRY_ACQUIRE(true) {
    std::uint32_t expected = 0;
    // mo: acquire on success pairs with the releasing unlock; relaxed on
    // failure (nothing was acquired).
    return state_.compare_exchange_strong(expected, kWriter,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void unlock() noexcept ATM_RELEASE() {
    // mo: release publishes the writer's critical section to the next
    // acquirer (reader or writer).
    state_.fetch_and(~kWriter, std::memory_order_release);
  }

  void lock_shared() noexcept ATM_ACQUIRE_SHARED() {
    int spins = 0;
    for (;;) {
      // mo: acquire pairs with the writer's releasing unlock so readers see
      // its completed writes.
      const std::uint32_t state =
          state_.fetch_add(1, std::memory_order_acquire);
      if ((state & kWriter) == 0) return;
      // A writer holds (or is draining toward) the lock: back out and wait.
      // mo: relaxed — backing out a provisional reader ticket publishes
      // nothing.
      state_.fetch_sub(1, std::memory_order_relaxed);
      // mo: relaxed wait probe; the retry fetch_add re-synchronizes.
      while (state_.load(std::memory_order_relaxed) & kWriter) spin_backoff(spins);
    }
  }

  [[nodiscard]] bool try_lock_shared() noexcept ATM_TRY_ACQUIRE_SHARED(true) {
    // mo: acquire pairs with the writer's releasing unlock (success path).
    const std::uint32_t state = state_.fetch_add(1, std::memory_order_acquire);
    if ((state & kWriter) == 0) return true;
    // mo: relaxed — backing out a provisional reader ticket publishes
    // nothing.
    state_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }

  void unlock_shared() noexcept ATM_RELEASE_SHARED() {
    // mo: release so a draining writer's acquire loop observes this reader's
    // reads as complete.
    state_.fetch_sub(1, std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> state_{0};
};

/// Scoped exclusive (writer) lock on a SharedSpinMutex.
class ATM_SCOPED_CAPABILITY SharedSpinWriteLock {
 public:
  explicit SharedSpinWriteLock(SharedSpinMutex& m) noexcept ATM_ACQUIRE(m)
      : m_(m) {
    m_.lock();
  }
  ~SharedSpinWriteLock() ATM_RELEASE() { m_.unlock(); }
  SharedSpinWriteLock(const SharedSpinWriteLock&) = delete;
  SharedSpinWriteLock& operator=(const SharedSpinWriteLock&) = delete;

 private:
  SharedSpinMutex& m_;
};

/// Scoped shared (reader) lock on a SharedSpinMutex.
class ATM_SCOPED_CAPABILITY SharedSpinReadLock {
 public:
  explicit SharedSpinReadLock(SharedSpinMutex& m) noexcept ATM_ACQUIRE_SHARED(m)
      : m_(m) {
    m_.lock_shared();
  }
  ~SharedSpinReadLock() ATM_RELEASE_GENERIC() { m_.unlock_shared(); }
  SharedSpinReadLock(const SharedSpinReadLock&) = delete;
  SharedSpinReadLock& operator=(const SharedSpinReadLock&) = delete;

 private:
  SharedSpinMutex& m_;
};

}  // namespace atm

#include "common/buffer_arena.hpp"

#include <cstring>

namespace atm {

namespace {
constexpr std::size_t align8(std::size_t n) noexcept { return (n + 7) & ~std::size_t{7}; }
}  // namespace

BufferArena::BufferArena(std::size_t slab_bytes, std::size_t initial_reserve)
    : slab_bytes_(slab_bytes != 0 ? slab_bytes : std::size_t{4} << 20) {
  // No other thread can see the arena yet; the lock only satisfies
  // add_slab's capability requirement.
  MutexLock lock(mutex_);
  if (initial_reserve != 0) add_slab(initial_reserve);
}

void BufferArena::add_slab(std::size_t bytes) {
  auto slab = std::make_unique<std::uint8_t[]>(bytes);
  // Touch every page now so callers never hit a first-touch fault.
  std::memset(slab.get(), 0, bytes);
  slab_cursor_ = slab.get();
  slab_remaining_ = bytes;
  reserved_ += bytes;
  slabs_.push_back(std::move(slab));
}

std::uint8_t* BufferArena::acquire(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  const std::size_t want = align8(bytes);
  MutexLock lock(mutex_);
  auto it = free_lists_.find(want);
  if (it != free_lists_.end() && !it->second.empty()) {
    std::uint8_t* buf = it->second.back();
    it->second.pop_back();
    outstanding_ += want;
    return buf;
  }
  if (slab_remaining_ < want) {
    add_slab(want > slab_bytes_ ? want : slab_bytes_);
  }
  std::uint8_t* buf = slab_cursor_;
  slab_cursor_ += want;
  slab_remaining_ -= want;
  outstanding_ += want;
  return buf;
}

void BufferArena::release(std::uint8_t* buffer, std::size_t bytes) {
  if (buffer == nullptr || bytes == 0) return;
  const std::size_t want = align8(bytes);
  MutexLock lock(mutex_);
  free_lists_[want].push_back(buffer);
  outstanding_ -= want;
}

std::size_t BufferArena::reserved_bytes() const {
  MutexLock lock(mutex_);
  return reserved_;
}

std::size_t BufferArena::outstanding_bytes() const {
  MutexLock lock(mutex_);
  return outstanding_;
}

}  // namespace atm

#include "common/numa.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace atm {

namespace {

constexpr std::size_t kPageSize = 4096;

/// Count the CPUs in a sysfs cpulist ("0-3,8,10-11\n"); 0 on parse failure.
unsigned count_cpulist(const char* path) {
  std::FILE* f = std::fopen(path, "re");
  if (f == nullptr) return 0;
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  unsigned cpus = 0;
  const char* p = buf;
  while (*p != '\0' && *p != '\n') {
    char* end = nullptr;
    const unsigned long lo = std::strtoul(p, &end, 10);
    if (end == p) break;
    p = end;
    if (*p == '-') {
      const unsigned long hi = std::strtoul(p + 1, &end, 10);
      if (end == p + 1 || hi < lo) break;
      cpus += static_cast<unsigned>(hi - lo + 1);
      p = end;
    } else {
      cpus += 1;
    }
    if (*p == ',') ++p;
  }
  return cpus;
}

}  // namespace

bool parse_numa_policy(std::string_view s, NumaPolicy* out) noexcept {
  if (s == "off" || s == "none") {
    *out = NumaPolicy::Off;
  } else if (s == "first-touch" || s == "firsttouch" || s == "local") {
    *out = NumaPolicy::FirstTouch;
  } else if (s == "interleave" || s.empty()) {
    // Bare --numa means interleave: shared slabs under work stealing are
    // touched from every node, so spreading the pages is the safe default.
    *out = NumaPolicy::Interleave;
  } else {
    return false;
  }
  return true;
}

NumaTopology NumaTopology::detect(const std::string& sysfs_node_dir) {
  NumaTopology topo;
  // A missing/unreadable directory leaves ec set and the iterator empty:
  // the single-node fallback (non-Linux hosts, sandboxes) costs nothing.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(
           sysfs_node_dir, std::filesystem::directory_options::skip_permission_denied, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 5 || name.compare(0, 4, "node") != 0) continue;
    bool digits = true;
    for (std::size_t i = 4; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') { digits = false; break; }
    }
    if (!digits) continue;
    const unsigned cpus = count_cpulist((entry.path() / "cpulist").c_str());
    if (cpus == 0) continue;  // memory-only node: no placement benefit
    topo.node_cpus.push_back(cpus);
  }
  if (!topo.node_cpus.empty()) {
    topo.node_count = static_cast<unsigned>(topo.node_cpus.size());
  }
  return topo;
}

const NumaTopology& NumaTopology::system() {
  static const NumaTopology topo = detect();
  return topo;
}

void numa_place(void* ptr, std::size_t bytes, NumaPolicy policy,
                const NumaTopology& topo) noexcept {
  if (policy == NumaPolicy::Off || !topo.multi_node() || ptr == nullptr ||
      bytes == 0) {
    return;  // graceful degradation: single-node hosts pay nothing
  }
  if (policy == NumaPolicy::FirstTouch) {
    // Pre-fault from the allocating thread so the kernel's first-touch
    // policy commits the pages to this thread's node now, not to whichever
    // thief touches a stolen task's record first.
    volatile char* p = static_cast<char*>(ptr);
    for (std::size_t off = 0; off < bytes; off += kPageSize) {
      p[off] = p[off];  // read+write-back: idempotent on fresh allocations
    }
    return;
  }
#if defined(__linux__) && defined(SYS_mbind)
  // Interleave the page-aligned interior across all nodes. Raw syscall: the
  // container has no libnuma headers, and mbind is stable kernel ABI.
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  const std::uintptr_t lo = (addr + kPageSize - 1) & ~(kPageSize - 1);
  const std::uintptr_t hi = (addr + bytes) & ~(kPageSize - 1);
  if (hi <= lo) return;  // sub-page allocation: nothing to bind
  constexpr int kMpolInterleave = 3;  // linux/mempolicy.h MPOL_INTERLEAVE
  const unsigned nodes = topo.node_count < 64 ? topo.node_count : 64;
  const unsigned long nodemask = nodes >= 64 ? ~0UL : (1UL << nodes) - 1;
  // Best-effort: an EPERM/EINVAL (cpuset-restricted hosts, offline nodes)
  // leaves the kernel-default placement in place, which is always correct.
  (void)syscall(SYS_mbind, lo, hi - lo, kMpolInterleave, &nodemask,
                sizeof(nodemask) * 8, 0);
#endif
}

}  // namespace atm

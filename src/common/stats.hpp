// Small statistics toolkit used by the benchmark harnesses: running moments,
// geometric means (the paper reports geomean speedups in Figs. 3 and 6) and
// fixed-bucket histograms for trace analysis.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace atm {

/// Welford running mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Geometric mean of a series of strictly positive values.
[[nodiscard]] double geomean(const std::vector<double>& values) noexcept;

/// Fixed-width histogram over [lo, hi). Out-of-range samples are counted in
/// explicit underflow/overflow tallies rather than silently clamped into the
/// edge buckets, so the edge buckets stay honest and the caller can see when
/// the configured range was too narrow. Used to summarize trace state
/// durations and latency profiles.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept {
    return lo_ + width_ * static_cast<double>(i);
  }
  /// In-range samples (excludes underflow/overflow).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Samples below lo / at-or-above hi, kept out of the buckets.
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  /// Everything ever add()ed, in range or not.
  [[nodiscard]] std::uint64_t samples() const noexcept {
    return total_ + underflow_ + overflow_;
  }

  /// Quantile estimate (q in [0, 1]) over the in-range samples from the
  /// bucket CDF, linearly interpolated within the covering bucket. Returns
  /// 0 when no in-range samples exist. p50/p95/p99 come straight from here.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace atm

// Best-effort NUMA topology detection and memory placement (PR 10).
//
// The container toolchain ships no libnuma headers, so this layer talks to
// the kernel directly: topology comes from sysfs
// (/sys/devices/system/node/node*/cpulist — injectable root so tests can
// mock a multi-node host), placement from the raw mbind(2) syscall for
// interleaving plus allocating-thread pre-faulting for first-touch. Every
// entry point degrades silently to a no-op on single-node hosts, non-Linux
// builds, or kernels that reject the syscall: placement is a performance
// hint, never a correctness dependency, and results are bit-identical with
// the policy on or off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace atm {

/// Slab/shard placement policy (RuntimeConfig::numa_policy, atm_run --numa).
enum class NumaPolicy : std::uint8_t {
  Off,         ///< kernel default (today's behavior)
  FirstTouch,  ///< pre-fault pages from the allocating thread's node
  Interleave,  ///< round-robin pages across all nodes (shared slabs under
               ///< stealing: every node pays the same average distance)
};

[[nodiscard]] constexpr const char* numa_policy_name(NumaPolicy p) noexcept {
  switch (p) {
    case NumaPolicy::Off: return "off";
    case NumaPolicy::FirstTouch: return "first-touch";
    case NumaPolicy::Interleave: return "interleave";
  }
  return "?";
}

/// Parse a --numa value; returns false (and leaves *out alone) on junk.
[[nodiscard]] bool parse_numa_policy(std::string_view s, NumaPolicy* out) noexcept;

/// NUMA node layout, detected once from sysfs.
struct NumaTopology {
  /// Online nodes with at least one CPU; 1 on single-node or unknown hosts.
  unsigned node_count = 1;
  /// CPUs per detected node (empty when detection found nothing).
  std::vector<unsigned> node_cpus;

  [[nodiscard]] bool multi_node() const noexcept { return node_count > 1; }

  /// Parse `sysfs_node_dir` (default: the real sysfs node directory) for
  /// node<N>/cpulist entries. A missing/empty directory yields the
  /// single-node fallback — the graceful-degradation path tests mock.
  [[nodiscard]] static NumaTopology detect(
      const std::string& sysfs_node_dir = "/sys/devices/system/node");

  /// The host topology, detected once per process.
  [[nodiscard]] static const NumaTopology& system();
};

/// Apply `policy` to the freshly-allocated range [ptr, ptr+bytes).
/// Best-effort: no-op unless `topo` is multi-node and the kernel cooperates.
/// Interleave binds the page-aligned interior via mbind(2); FirstTouch
/// pre-faults every page from the calling thread so the kernel's default
/// first-touch policy lands the pages on that thread's node deterministically
/// (instead of wherever the first stealing toucher happens to run).
void numa_place(void* ptr, std::size_t bytes, NumaPolicy policy,
                const NumaTopology& topo) noexcept;

}  // namespace atm

#include "common/hash.hpp"

namespace atm {

HashKey hash_bytes(std::span<const std::uint8_t> bytes, std::uint64_t seed) noexcept {
  HashStream stream(seed);
  stream.update(bytes);
  return stream.finalize();
}

}  // namespace atm

// Monotonic timing helpers shared by the runtime tracer, the ATM statistics
// counters and the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace atm {

/// Nanoseconds on the steady (monotonic) clock.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Simple scope-friendly stopwatch.
class Timer {
 public:
  Timer() noexcept : start_(now_ns()) {}

  void restart() noexcept { start_ = now_ns(); }

  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  [[nodiscard]] double elapsed_us() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-3;
  }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-6;
  }
  [[nodiscard]] double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace atm

// Clang Thread Safety Analysis attribute macros (ATM_ prefix, no-ops on
// compilers without the attributes — GCC builds see empty expansions).
//
// The analysis is purely static: annotations add zero code and zero data.
// The `static-analysis` CI job builds the tree with
// `clang++ -Werror=thread-safety` so a violated lock protocol fails the
// build; see docs/STATIC_ANALYSIS.md for the conventions.
//
// Vocabulary (the usual capability model):
//  * ATM_CAPABILITY("mutex")      — the class IS a lock.
//  * ATM_SCOPED_CAPABILITY        — RAII guard: ctor acquires, dtor releases.
//  * ATM_GUARDED_BY(m)            — field may only be touched with m held.
//  * ATM_PT_GUARDED_BY(m)         — pointee may only be touched with m held.
//  * ATM_ACQUIRE/RELEASE(...)     — function takes/drops the capability.
//  * ATM_ACQUIRE_SHARED/RELEASE_SHARED — reader side of an rwlock.
//  * ATM_TRY_ACQUIRE(b, ...)      — acquires iff the return value equals b.
//  * ATM_REQUIRES(m)              — caller must already hold m (exclusive).
//  * ATM_REQUIRES_SHARED(m)       — caller must hold m at least shared.
//  * ATM_EXCLUDES(m)              — caller must NOT hold m (deadlock guard).
//  * ATM_ASSERT_CAPABILITY(m)     — runtime-checked claim the analysis trusts.
//  * ATM_RETURN_CAPABILITY(m)     — accessor returns a reference to lock m.
//  * ATM_NO_THREAD_SAFETY_ANALYSIS — opt a function out (dynamic lock sets:
//    the dependence tracker's footprint-mask paths acquire a data-dependent
//    set of shard locks the static analysis cannot name).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ATM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#if !defined(ATM_THREAD_ANNOTATION)
#define ATM_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

#define ATM_CAPABILITY(x) ATM_THREAD_ANNOTATION(capability(x))
#define ATM_SCOPED_CAPABILITY ATM_THREAD_ANNOTATION(scoped_lockable)

#define ATM_GUARDED_BY(x) ATM_THREAD_ANNOTATION(guarded_by(x))
#define ATM_PT_GUARDED_BY(x) ATM_THREAD_ANNOTATION(pt_guarded_by(x))

#define ATM_ACQUIRE(...) ATM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ATM_ACQUIRE_SHARED(...) \
  ATM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define ATM_RELEASE(...) ATM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ATM_RELEASE_SHARED(...) \
  ATM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define ATM_RELEASE_GENERIC(...) \
  ATM_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define ATM_TRY_ACQUIRE(...) \
  ATM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ATM_TRY_ACQUIRE_SHARED(...) \
  ATM_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define ATM_REQUIRES(...) ATM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ATM_REQUIRES_SHARED(...) \
  ATM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ATM_EXCLUDES(...) ATM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ATM_ASSERT_CAPABILITY(x) ATM_THREAD_ANNOTATION(assert_capability(x))
#define ATM_ASSERT_SHARED_CAPABILITY(x) \
  ATM_THREAD_ANNOTATION(assert_shared_capability(x))

#define ATM_RETURN_CAPABILITY(x) ATM_THREAD_ANNOTATION(lock_returned(x))

#define ATM_NO_THREAD_SAFETY_ANALYSIS \
  ATM_THREAD_ANNOTATION(no_thread_safety_analysis)

#include "common/stats.hpp"

namespace atm {

double geomean(const std::vector<double>& values) noexcept {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;  // geometric mean undefined; signal with 0
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(buckets ? buckets : 1)),
      counts_(buckets ? buckets : 1, 0) {}

void Histogram::add(double x) noexcept {
  double idx = (x - lo_) / width_;
  std::size_t i;
  if (idx < 0.0) {
    i = 0;
  } else if (idx >= static_cast<double>(counts_.size())) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>(idx);
  }
  ++counts_[i];
  ++total_;
}

}  // namespace atm

#include "common/stats.hpp"

namespace atm {

double geomean(const std::vector<double>& values) noexcept {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;  // geometric mean undefined; signal with 0
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(buckets ? buckets : 1)),
      counts_(buckets ? buckets : 1, 0) {}

void Histogram::add(double x) noexcept {
  const double idx = (x - lo_) / width_;
  if (idx < 0.0) {
    ++underflow_;
    return;
  }
  if (idx >= static_cast<double>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample among the in-range population, then linear
  // interpolation inside the bucket that holds it (samples are assumed
  // uniform within a bucket).
  const double rank = q * static_cast<double>(total_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double first = static_cast<double>(seen);
    seen += counts_[i];
    if (rank >= static_cast<double>(seen)) continue;
    const double frac =
        counts_[i] > 1 ? (rank - first) / static_cast<double>(counts_[i]) : 0.0;
    return bucket_lo(i) + width_ * frac;
  }
  return bucket_lo(counts_.size() - 1) + width_;
}

}  // namespace atm

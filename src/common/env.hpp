// Environment-variable configuration helpers. Bench binaries run without
// arguments (`for b in build/bench/*; do $b; done`), so workload scale and
// thread counts are tuned via ATM_* environment variables instead.
#pragma once

#include <cstdlib>
#include <string>

namespace atm {

/// Read an environment variable; empty string when unset.
[[nodiscard]] inline std::string env_string(const char* name, const std::string& fallback = {}) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

/// Read an integer environment variable with a fallback.
[[nodiscard]] inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

/// Read a double environment variable with a fallback.
[[nodiscard]] inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

/// True when ATM_SCALE=paper: run the paper's full-size inputs instead of the
/// container-friendly defaults.
[[nodiscard]] inline bool paper_scale() { return env_string("ATM_SCALE") == "paper"; }

}  // namespace atm

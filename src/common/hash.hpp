// Jenkins lookup3-style hashing for ATM hash-key generation.
//
// The paper (Section III-B) uses Bob Jenkins' "hash function for hash table
// lookup" to digest the selected subset of task input bytes into an 8-byte
// key stored in the Task History Table. We implement a lookup3-style mixer
// from scratch: 96-bit internal state, 12-byte blocks, the classic
// mix()/final() avalanche schedules, and a 64-bit digest assembled from the
// two final state words (the hashlittle2 convention).
//
// HashStream additionally supports incremental feeding so callers can hash
// scattered (sampled) bytes without first materializing a gathered copy of
// the full selection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace atm {

/// 64-bit digest type used as the THT/IKT key ("8 bytes of storage", §III-B).
using HashKey = std::uint64_t;

namespace detail {
constexpr std::uint32_t rot32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}
}  // namespace detail

/// Incremental lookup3-style hasher.
///
/// Usage:
///   HashStream h(seed);
///   h.update(bytes);          // any number of times, any chunk sizes
///   HashKey k = h.finalize(); // chunking does not affect the digest
class HashStream {
 public:
  explicit HashStream(std::uint64_t seed = 0) noexcept { reset(seed); }

  /// Re-arm the stream for a new message with the given seed.
  void reset(std::uint64_t seed = 0) noexcept {
    a_ = 0xdeadbeefu + static_cast<std::uint32_t>(seed);
    b_ = 0xdeadbeefu + static_cast<std::uint32_t>(seed >> 32);
    c_ = 0xdeadbeefu ^ static_cast<std::uint32_t>(seed * 0x9e3779b97f4a7c15ull >> 29);
    buffered_ = 0;
    total_len_ = 0;
  }

  /// Feed one byte.
  void update(std::uint8_t byte) noexcept {
    buf_[buffered_++] = byte;
    ++total_len_;
    if (buffered_ == kBlock) {
      mix_block();
      buffered_ = 0;
    }
  }

  /// Feed a contiguous span of bytes.
  void update(std::span<const std::uint8_t> bytes) noexcept {
    const std::uint8_t* p = bytes.data();
    std::size_t n = bytes.size();
    total_len_ += n;
    // Top up a partially filled block first.
    if (buffered_ != 0) {
      const std::size_t take = (n < kBlock - buffered_) ? n : kBlock - buffered_;
      std::memcpy(buf_ + buffered_, p, take);
      buffered_ += take;
      p += take;
      n -= take;
      if (buffered_ == kBlock) {
        mix_block();
        buffered_ = 0;
      }
    }
    // Whole blocks straight from the input (no staging copy).
    while (n >= kBlock) {
      mix_words(p);
      p += kBlock;
      n -= kBlock;
    }
    if (n != 0) {
      std::memcpy(buf_, p, n);
      buffered_ = n;
    }
  }

  /// Produce the 64-bit digest. The stream may keep being updated afterwards
  /// only after a reset().
  [[nodiscard]] HashKey finalize() noexcept {
    using detail::rot32;
    std::uint32_t a = a_, b = b_, c = c_;
    if (buffered_ != 0) {
      std::uint8_t tail[kBlock] = {};
      std::memcpy(tail, buf_, buffered_);
      std::uint32_t k0, k1, k2;
      std::memcpy(&k0, tail, 4);
      std::memcpy(&k1, tail + 4, 4);
      std::memcpy(&k2, tail + 8, 4);
      a += k0;
      b += k1;
      c += k2;
    }
    // Bind the digest to the exact message length so that e.g. {0} and
    // {0, 0} hash differently even though the padded tail block matches.
    c ^= static_cast<std::uint32_t>(total_len_);
    b += static_cast<std::uint32_t>(total_len_ >> 32);
    // lookup3 final(): reverse-avalanche schedule.
    c ^= b; c -= rot32(b, 14);
    a ^= c; a -= rot32(c, 11);
    b ^= a; b -= rot32(a, 25);
    c ^= b; c -= rot32(b, 16);
    a ^= c; a -= rot32(c, 4);
    b ^= a; b -= rot32(a, 14);
    c ^= b; c -= rot32(b, 24);
    return (static_cast<std::uint64_t>(b) << 32) | c;
  }

  /// Number of bytes fed since the last reset().
  [[nodiscard]] std::uint64_t message_length() const noexcept { return total_len_; }

 private:
  static constexpr std::size_t kBlock = 12;

  void mix_block() noexcept { mix_words(buf_); }

  void mix_words(const std::uint8_t* block) noexcept {
    using detail::rot32;
    std::uint32_t k0, k1, k2;
    std::memcpy(&k0, block, 4);
    std::memcpy(&k1, block + 4, 4);
    std::memcpy(&k2, block + 8, 4);
    a_ += k0;
    b_ += k1;
    c_ += k2;
    // lookup3 mix(): 6-round forward avalanche.
    a_ -= c_; a_ ^= rot32(c_, 4);  c_ += b_;
    b_ -= a_; b_ ^= rot32(a_, 6);  a_ += c_;
    c_ -= b_; c_ ^= rot32(b_, 8);  b_ += a_;
    a_ -= c_; a_ ^= rot32(c_, 16); c_ += b_;
    b_ -= a_; b_ ^= rot32(a_, 19); a_ += c_;
    c_ -= b_; c_ ^= rot32(b_, 4);  b_ += a_;
  }

  std::uint32_t a_ = 0, b_ = 0, c_ = 0;
  std::uint8_t buf_[kBlock] = {};
  std::size_t buffered_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience: hash a contiguous byte range.
[[nodiscard]] HashKey hash_bytes(std::span<const std::uint8_t> bytes,
                                 std::uint64_t seed = 0) noexcept;

/// One-shot convenience over raw memory.
[[nodiscard]] inline HashKey hash_bytes(const void* data, std::size_t size,
                                        std::uint64_t seed = 0) noexcept {
  return hash_bytes(
      std::span<const std::uint8_t>(static_cast<const std::uint8_t*>(data), size), seed);
}

/// splitmix64: used to derive per-task-type shuffle seeds from a name hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace atm

// Small-buffer-only callable for the task hot path (PR 10, carried from
// PR 5): the submit path used to move a std::function<void()> into every
// Task record, which costs a heap allocation the moment a closure outgrows
// the libstdc++/libc++ SSO buffer (16-24 bytes — three captured pointers
// already spill) plus a virtual-ish dispatch through the manager pointer.
// Task bodies in this codebase are small capture packs (pointers + extents;
// the largest app closure is 64 bytes), so InlineFunction stores the
// callable inline, always: a closure that does not fit is a compile error
// (static_assert), never a silent allocation. Dispatch is one function
// pointer indirection through a per-type static ops table.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace atm {

/// Fixed-capacity type-erased `void()` callable. Copyable (Task records are
/// copyable by contract) and nullable like std::function, but storage is
/// inline-only: construction from a callable larger than kCapacity (or
/// over-aligned beyond kAlign) fails to compile.
class InlineFunction {
 public:
  /// Inline storage. 88 bytes covers every closure in the repo (the largest
  /// app task captures eight 8-byte values) with headroom, and keeps
  /// sizeof(InlineFunction) at 96 — two cache lines of Task instead of a
  /// pointer chase per invocation.
  static constexpr std::size_t kCapacity = 88;
  static constexpr std::size_t kAlign = 16;

  constexpr InlineFunction() noexcept = default;
  constexpr InlineFunction(std::nullptr_t) noexcept {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "InlineFunction requires a callable invocable as void()");
    static_assert(sizeof(Fn) <= kCapacity,
                  "closure exceeds InlineFunction::kCapacity — shrink the "
                  "capture pack (capture pointers, not containers)");
    static_assert(alignof(Fn) <= kAlign,
                  "closure over-aligned beyond InlineFunction::kAlign");
    static_assert(std::is_copy_constructible_v<Fn>,
                  "InlineFunction callables must be copyable (Task is)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &ops_for<Fn>;
  }

  InlineFunction(const InlineFunction& other) : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->copy(storage_, other.storage_);
  }
  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->move(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }
  InlineFunction& operator=(const InlineFunction& other) {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        other.ops_->copy(storage_, other.storage_);
        ops_ = other.ops_;
      }
    }
    return *this;
  }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        other.ops_->move(storage_, other.storage_);
        ops_ = other.ops_;
        other.ops_ = nullptr;
      }
    }
    return *this;
  }
  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  ~InlineFunction() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* self);
    void (*copy)(void* dst, const void* src);
    /// Move-construct dst from src and destroy src.
    void (*move)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  static constexpr Ops ops_for = {
      [](void* self) { (*static_cast<Fn*>(self))(); },
      [](void* dst, const void* src) {
        ::new (dst) Fn(*static_cast<const Fn*>(src));
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* self) noexcept { static_cast<Fn*>(self)->~Fn(); },
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(kAlign) unsigned char storage_[kCapacity];
};

}  // namespace atm

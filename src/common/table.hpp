// ASCII table and series rendering for the benchmark harnesses. Every bench
// binary prints rows in the same shape as the paper's tables/figures; this
// keeps that formatting in one place.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace atm {

/// Column-aligned ASCII table with a header row.
///
///   TablePrinter t({"Benchmark", "Speedup"});
///   t.add_row({"Blackscholes", "5.03x"});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal separator before the next row.
  void add_separator();

  [[nodiscard]] std::string str() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Format helpers shared by bench binaries.
[[nodiscard]] std::string fmt_double(double v, int precision = 2);
[[nodiscard]] std::string fmt_percent(double fraction, int precision = 1);
[[nodiscard]] std::string fmt_speedup(double v);
[[nodiscard]] std::string fmt_bytes(std::size_t bytes);

/// Horizontal ASCII bar: value scaled against `full_scale` over `width`
/// characters; used to sketch the paper's bar figures in terminal output.
[[nodiscard]] std::string ascii_bar(double value, double full_scale, std::size_t width = 40);

}  // namespace atm

#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace atm {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_separator() { rows_.emplace_back(); }

std::string TablePrinter::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto print_rule = [&] {
    out << '+';
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };

  print_rule();
  print_cells(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_cells(row);
    }
  }
  print_rule();
  return out.str();
}

void TablePrinter::print(std::ostream& os) const { os << str(); }

std::string fmt_double(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

std::string fmt_speedup(double v) { return fmt_double(v, 2) + "x"; }

std::string fmt_bytes(std::size_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double v = static_cast<double>(bytes);
  std::size_t u = 0;
  while (v >= 1024.0 && u + 1 < std::size(units)) {
    v /= 1024.0;
    ++u;
  }
  std::ostringstream out;
  out << std::fixed << std::setprecision(u == 0 ? 0 : 1) << v << ' ' << units[u];
  return out.str();
}

std::string ascii_bar(double value, double full_scale, std::size_t width) {
  if (full_scale <= 0.0) full_scale = 1.0;
  double frac = value / full_scale;
  frac = std::clamp(frac, 0.0, 1.0);
  const auto filled = static_cast<std::size_t>(frac * static_cast<double>(width) + 0.5);
  return std::string(filled, '#') + std::string(width - filled, ' ');
}

}  // namespace atm

// Pre-faulted, recycling buffer arena for THT output snapshots.
//
// Why: storing a task's outputs in the THT needs a buffer that lives until
// eviction. Fresh heap memory pays one kernel page fault per 4 KiB on first
// touch — on the evaluation machine that dwarfs the actual copy. The arena
// allocates slabs up front, touches every page once at slab creation (out
// of the measured region), then bump-allocates; released buffers go to an
// exact-size freelist, so steady-state insert/evict churn never touches a
// cold page.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"

namespace atm {

class BufferArena {
 public:
  /// `initial_reserve` bytes are allocated and pre-touched immediately;
  /// further slabs of `slab_bytes` are added (and pre-touched) on demand.
  explicit BufferArena(std::size_t slab_bytes = std::size_t{4} << 20,
                       std::size_t initial_reserve = 0);

  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  /// A buffer of exactly `bytes` bytes (8-byte aligned). Contents are
  /// unspecified (recycled buffers keep old data). Never returns nullptr
  /// for bytes > 0; requests larger than the slab size get their own slab.
  [[nodiscard]] std::uint8_t* acquire(std::size_t bytes);

  /// Return a buffer previously acquired with the same size.
  void release(std::uint8_t* buffer, std::size_t bytes);

  /// Total bytes held in slabs (the arena's resident footprint).
  [[nodiscard]] std::size_t reserved_bytes() const;

  /// Bytes currently handed out to callers.
  [[nodiscard]] std::size_t outstanding_bytes() const;

 private:
  void add_slab(std::size_t bytes) ATM_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::size_t slab_bytes_;
  std::vector<std::unique_ptr<std::uint8_t[]>> slabs_ ATM_GUARDED_BY(mutex_);
  std::size_t slab_remaining_ ATM_GUARDED_BY(mutex_) = 0;
  std::uint8_t* slab_cursor_ ATM_GUARDED_BY(mutex_) = nullptr;
  std::unordered_map<std::size_t, std::vector<std::uint8_t*>> free_lists_
      ATM_GUARDED_BY(mutex_);
  std::size_t reserved_ ATM_GUARDED_BY(mutex_) = 0;
  std::size_t outstanding_ ATM_GUARDED_BY(mutex_) = 0;
};

}  // namespace atm

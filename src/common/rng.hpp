// Deterministic, platform-independent random number generation.
//
// All workload generators and the ATM input-shuffling machinery must be
// reproducible bit-for-bit across runs and platforms (the paper requires
// deterministic tasks; our tests require deterministic workloads), so we
// implement xoshiro256** + Lemire bounded sampling + Fisher-Yates shuffling
// here instead of relying on implementation-defined std::distributions.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"

namespace atm {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference design).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // Expand one 64-bit seed into 256 bits of state via splitmix64, as the
    // xoshiro authors recommend. State must never be all zero.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x = splitmix64(x);
      word = x;
    }
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  /// Uniform over the full 64-bit range.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound), exactly unbiased via rejection sampling.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t x = next_u64();
      if (x >= threshold) return x % bound;
    }
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1) with 24 bits of randomness.
  float next_float() noexcept {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) noexcept {
    return lo + (hi - lo) * next_float();
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace atm

// In-flight Key Table (paper §III-A).
//
// Maps the hash keys of tasks that are currently executing. A ready task
// whose key matches an in-flight twin cannot be served yet — instead it
// registers a postponed output copy (postponeCopyOuts()): when the twin
// finishes, it copies its outputs into every attached consumer and the
// runtime completes them without execution.
//
// The table holds at most one entry per executing task (≈ thread count), so
// a single lock with linear scans is both simple and fast — exactly the
// paper's design ("accesses to this structure are very fast ... we protect
// the IKT with a single lock").
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "common/mutex.hpp"
#include "runtime/task.hpp"

namespace atm {

class InFlightKeyTable {
 public:
  enum class RegisterResult : std::uint8_t {
    Registered,      ///< task is now the in-flight owner of its key
    AttachedToTwin,  ///< a twin is executing; task deferred onto it
    TwinBusy,        ///< twin in flight but attach not possible/allowed
  };

  /// Atomically: if (type,key,p) has an in-flight owner and `allow_attach`,
  /// attach `task` as a postponed copy consumer; otherwise register `task`
  /// as owner. Training-phase callers pass allow_attach=false (tasks must
  /// execute to be measured, §III-D).
  RegisterResult register_or_attach(std::uint32_t type_id, HashKey key, double p,
                                    rt::Task* task, bool allow_attach);

  /// Remove `owner`'s entry (if any) and hand back the consumers waiting for
  /// its outputs. No-op (empty result) if the task never registered.
  [[nodiscard]] std::vector<rt::Task*> retire(const rt::Task* owner);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t pending_count() const;
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct Entry {
    std::uint32_t type_id = 0;
    HashKey key = 0;
    double p = 1.0;
    rt::Task* owner = nullptr;
    std::vector<rt::Task*> pending;
  };

  mutable Mutex mutex_;
  std::vector<Entry> entries_ ATM_GUARDED_BY(mutex_);
};

}  // namespace atm

#include "atm/training.hpp"

namespace atm {

void TrainingController::report_trained(double tau) {
  MutexLock lock(mutex_);
  if (phase_ != TrainingPhase::Training) return;
  if (p_history_.empty()) p_history_.push_back(p_);
  if (tau >= params_.tau_max) {
    if (p_ < 1.0) {
      p_ = p_ * 2.0 > 1.0 ? 1.0 : p_ * 2.0;
      p_history_.push_back(p_);
    }
    success_streak_ = 0;
    return;
  }
  if (++success_streak_ >= params_.l_training) {
    phase_ = TrainingPhase::Steady;
  }
}

void TrainingController::note_trained_task() {
  MutexLock lock(mutex_);
  if (phase_ != TrainingPhase::Training) return;
  ++trained_tasks_;
  if (task_cap_ != 0 && trained_tasks_ >= task_cap_) {
    phase_ = TrainingPhase::Steady;
  }
}

void TrainingController::blacklist_outputs(const rt::Task& task) {
  MutexLock lock(mutex_);
  for (const auto& a : task.accesses) {
    if (a.is_output()) unstable_outputs_.insert(a.ptr);
  }
}

bool TrainingController::is_blacklisted(const rt::Task& task) const {
  MutexLock lock(mutex_);
  if (unstable_outputs_.empty()) return false;
  for (const auto& a : task.accesses) {
    if (a.is_output() && unstable_outputs_.count(a.ptr) != 0) return true;
  }
  return false;
}

}  // namespace atm

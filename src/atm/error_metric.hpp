// Error metrics (paper §III-D and §IV-C).
//
//  * Chebyshev relative error tau (Eq. 1) — the per-task acceptance gate of
//    Dynamic ATM: max|correct_i - atm_i| / max|correct_i|. A max-reduction,
//    so it does not accumulate floating-point noise across large outputs
//    and correlates with whole-program correctness (the paper found the
//    Euclidean form unusable per task).
//  * Euclidean relative error Er (Eq. 3) — the whole-program metric:
//    sum (correct_i - atm_i)^2 / sum correct_i^2.
//  * LU residual (Eq. 4) — |A - L*U|^2 / |A|^2, the app-specific variant.
//  * correctness% = 100 * (1 - Er) clamped to [0, 100] — the mapping used
//    for Figures 4 and 5; consistent with the paper's reported losses
//    (e.g. kmeans -1.2%, swaptions -3.2%). docs/DESIGN.md §1 documents this choice.
#pragma once

#include <cmath>
#include <span>

#include "atm/tht.hpp"
#include "runtime/data_access.hpp"

namespace atm {

/// Chebyshev relative error over typed arrays (Eq. 1).
template <typename T>
[[nodiscard]] double chebyshev_relative_error(std::span<const T> correct,
                                              std::span<const T> approx) noexcept {
  const std::size_t n = correct.size() < approx.size() ? correct.size() : approx.size();
  double max_diff = 0.0;
  double max_abs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double c = static_cast<double>(correct[i]);
    const double a = static_cast<double>(approx[i]);
    const double diff = std::fabs(c - a);
    const double mag = std::fabs(c);
    if (diff > max_diff) max_diff = diff;
    if (mag > max_abs) max_abs = mag;
  }
  if (max_abs == 0.0) return max_diff == 0.0 ? 0.0 : HUGE_VAL;
  return max_diff / max_abs;
}

/// Euclidean (squared-relative-L2) error over typed arrays (Eq. 3).
template <typename T>
[[nodiscard]] double euclidean_relative_error(std::span<const T> correct,
                                              std::span<const T> approx) noexcept {
  const std::size_t n = correct.size() < approx.size() ? correct.size() : approx.size();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double c = static_cast<double>(correct[i]);
    const double a = static_cast<double>(approx[i]);
    num += (c - a) * (c - a);
    den += c * c;
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : HUGE_VAL;
  return num / den;
}

/// Running Chebyshev accumulator across several regions (a task may declare
/// multiple outputs; tau is taken over their concatenation).
struct ChebyshevAccumulator {
  double max_diff = 0.0;
  double max_abs = 0.0;

  template <typename T>
  void add(std::span<const T> correct, std::span<const T> approx) noexcept {
    const std::size_t n = correct.size() < approx.size() ? correct.size() : approx.size();
    for (std::size_t i = 0; i < n; ++i) {
      const double c = static_cast<double>(correct[i]);
      const double a = static_cast<double>(approx[i]);
      const double diff = std::fabs(c - a);
      const double mag = std::fabs(c);
      if (diff > max_diff) max_diff = diff;
      if (mag > max_abs) max_abs = mag;
    }
  }

  /// Raw-byte entry point dispatching on the element type tag.
  void add_bytes(rt::ElemType elem, std::span<const std::uint8_t> correct,
                 std::span<const std::uint8_t> approx) noexcept;

  [[nodiscard]] double value() const noexcept {
    if (max_abs == 0.0) return max_diff == 0.0 ? 0.0 : HUGE_VAL;
    return max_diff / max_abs;
  }
};

/// tau between a task's freshly computed outputs and a THT snapshot of the
/// same shape (the Dynamic ATM training check, §III-D).
[[nodiscard]] double task_output_tau(const rt::Task& task, const OutputSnapshot& snapshot);

/// Whole-program correctness in percent from an Euclidean relative error
/// (Eq. 3 / Eq. 4 value).
[[nodiscard]] inline double correctness_percent(double euclidean_err) noexcept {
  if (!(euclidean_err >= 0.0)) return 0.0;  // NaN/negative guard
  const double pct = 100.0 * (1.0 - euclidean_err);
  return pct < 0.0 ? 0.0 : (pct > 100.0 ? 100.0 : pct);
}

}  // namespace atm

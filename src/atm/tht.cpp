#include "atm/tht.hpp"

#include <cstring>

#include "common/timing.hpp"

namespace atm {

OutputSnapshot OutputSnapshot::capture(const rt::Task& task) {
  OutputSnapshot snap;
  for (const auto& a : task.accesses) {
    if (!a.is_output()) continue;
    Region r;
    r.elem = a.elem;
    // Range-construct: a single copy pass (resize would zero-fill first).
    const auto* p = static_cast<const std::uint8_t*>(a.ptr);
    r.data.assign(p, p + a.bytes);
    snap.regions.push_back(std::move(r));
  }
  return snap;
}

bool OutputSnapshot::matches_shape(const rt::Task& task) const noexcept {
  std::size_t i = 0;
  for (const auto& a : task.accesses) {
    if (!a.is_output()) continue;
    if (i >= regions.size() || regions[i].data.size() != a.bytes) return false;
    ++i;
  }
  return i == regions.size();
}

void OutputSnapshot::copy_to(rt::Task& task) const noexcept {
  std::size_t i = 0;
  for (const auto& a : task.accesses) {
    if (!a.is_output()) continue;
    std::memcpy(a.ptr, regions[i].data.data(), a.bytes);
    ++i;
  }
}

bool output_shapes_match(const rt::Task& a, const rt::Task& b) noexcept {
  std::size_t ia = 0, ib = 0;
  const auto next_out = [](const rt::Task& t, std::size_t& i) -> const rt::DataAccess* {
    while (i < t.accesses.size()) {
      const auto& acc = t.accesses[i++];
      if (acc.is_output()) return &acc;
    }
    return nullptr;
  };
  for (;;) {
    const auto* oa = next_out(a, ia);
    const auto* ob = next_out(b, ib);
    if (oa == nullptr || ob == nullptr) return oa == ob;
    if (oa->bytes != ob->bytes) return false;
  }
}

bool TaskHistoryTable::Entry::matches_shape(const rt::Task& task) const noexcept {
  std::size_t i = 0;
  for (const auto& a : task.accesses) {
    if (!a.is_output()) continue;
    if (i >= outputs.size() || outputs[i].bytes != a.bytes) return false;
    ++i;
  }
  return i == outputs.size();
}

bool TaskHistoryTable::Entry::inputs_equal(const rt::Task& task) const noexcept {
  if (inputs.empty()) return true;  // nothing stored: verification disabled
  std::size_t i = 0;
  for (const auto& a : task.accesses) {
    if (!a.is_input()) continue;
    if (i >= inputs.size() || inputs[i].bytes != a.bytes) return false;
    if (std::memcmp(inputs[i].data, a.ptr, a.bytes) != 0) return false;
    ++i;
  }
  return i == inputs.size();
}

TaskHistoryTable::TaskHistoryTable(unsigned log2_buckets, unsigned bucket_capacity,
                                   std::size_t arena_reserve, bool verify_full_inputs,
                                   EvictionPolicy eviction)
    : buckets_(std::size_t{1} << log2_buckets),
      mask_((HashKey{1} << log2_buckets) - 1),
      capacity_(bucket_capacity != 0 ? bucket_capacity : 1),
      verify_full_inputs_(verify_full_inputs),
      eviction_(eviction),
      arena_(std::size_t{4} << 20, arena_reserve) {
  memory_.store(buckets_.size() * sizeof(Bucket));
}

std::size_t TaskHistoryTable::find_and_copy_locked(Bucket& b, std::uint32_t type_id,
                                                   HashKey key, double p,
                                                   rt::Task& consumer,
                                                   rt::TaskId* creator,
                                                   std::uint64_t* copy_t0,
                                                   std::uint64_t* copy_t1) {
  for (std::size_t idx = 0; idx < b.entries.size(); ++idx) {
    const Entry& e = b.entries[idx];
    if (!entry_matches(e, type_id, key, p)) continue;
    if (!e.matches_shape(consumer)) return kNoEntry;
    if (verify_full_inputs_ && !e.inputs_equal(consumer)) {
      // Hash false positive caught by the SIII-E full-input check.
      // mo: relaxed — standalone statistic; readers need no ordering.
      verification_rejects_.fetch_add(1, std::memory_order_relaxed);
      return kNoEntry;
    }
    const std::uint64_t t0 = now_ns();
    std::size_t i = 0;
    for (const auto& a : consumer.accesses) {
      if (!a.is_output()) continue;
      std::memcpy(a.ptr, e.outputs[i].data, a.bytes);
      ++i;
    }
    const std::uint64_t t1 = now_ns();
    if (creator != nullptr) *creator = e.creator;
    if (copy_t0 != nullptr) *copy_t0 = t0;
    if (copy_t1 != nullptr) *copy_t1 = t1;
    return idx;
  }
  return kNoEntry;
}

bool TaskHistoryTable::lookup_and_copy(std::uint32_t type_id, HashKey key, double p,
                                       rt::Task& consumer, rt::TaskId* creator,
                                       std::uint64_t* copy_t0, std::uint64_t* copy_t1) {
  Bucket& b = bucket_for(key);
  if (eviction_ == EvictionPolicy::Lru) {
    // LRU: the recency update mutates the bucket, forcing an exclusive lock
    // — one reason the paper's FIFO + parallel-read design is the right
    // default.
    SharedSpinWriteLock lock(b.mutex);
    const std::size_t idx =
        find_and_copy_locked(b, type_id, key, p, consumer, creator, copy_t0, copy_t1);
    if (idx == kNoEntry) return false;
    if (idx + 1 != b.entries.size()) {
      // Move-to-back: the eviction end (front) holds the least recent.
      Entry moved = std::move(b.entries[idx]);
      b.entries.erase(b.entries.begin() + static_cast<std::ptrdiff_t>(idx));
      b.entries.push_back(std::move(moved));
    }
    return true;
  }
  // FIFO (paper): shared lock, parallel reads.
  SharedSpinReadLock lock(b.mutex);
  return find_and_copy_locked(b, type_id, key, p, consumer, creator, copy_t0,
                              copy_t1) != kNoEntry;
}

bool TaskHistoryTable::lookup_multi_and_copy(std::uint32_t type_id, const HashKey* keys,
                                             std::size_t nkeys, double p,
                                             rt::Task& consumer, rt::TaskId* creator,
                                             std::uint64_t* copy_t0,
                                             std::uint64_t* copy_t1,
                                             std::size_t* which) {
  for (std::size_t i = 0; i < nkeys; ++i) {
    if (lookup_and_copy(type_id, keys[i], p, consumer, creator, copy_t0, copy_t1)) {
      if (which != nullptr) *which = i;
      return true;
    }
  }
  return false;
}

bool TaskHistoryTable::lookup_snapshot(std::uint32_t type_id, HashKey key, double p,
                                       OutputSnapshot* out, rt::TaskId* creator) const {
  const Bucket& b = bucket_for(key);
  SharedSpinReadLock lock(b.mutex);
  for (const Entry& e : b.entries) {
    if (!entry_matches(e, type_id, key, p)) continue;
    if (out != nullptr) {
      out->regions.clear();
      for (const auto& stored : e.outputs) {
        OutputSnapshot::Region r;
        r.elem = stored.elem;
        r.data.assign(stored.data, stored.data + stored.bytes);
        out->regions.push_back(std::move(r));
      }
    }
    if (creator != nullptr) *creator = e.creator;
    return true;
  }
  return false;
}

bool TaskHistoryTable::contains(std::uint32_t type_id, HashKey key, double p) const {
  const Bucket& b = bucket_for(key);
  SharedSpinReadLock lock(b.mutex);
  for (const Entry& e : b.entries) {
    if (entry_matches(e, type_id, key, p)) return true;
  }
  return false;
}

void TaskHistoryTable::release_entry(Entry& entry) {
  for (auto& r : entry.outputs) arena_.release(r.data, r.bytes);
  for (auto& r : entry.inputs) arena_.release(r.data, r.bytes);
  entry.outputs.clear();
  entry.inputs.clear();
}

void TaskHistoryTable::evict_front_locked(Bucket& b) {
  Entry& victim = b.entries.front();
  memory_.fetch_sub(victim.total_bytes() + sizeof(Entry));
  if (eviction_sink_) {
    // Demotion: hand the L2 tier an owned copy of the outputs before the
    // arena buffers are recycled. Stored inputs (§III-E ablation) are not
    // demoted — the capacity tier serves approximate steady-state traffic.
    EvictedEntry evicted;
    evicted.type_id = victim.type_id;
    evicted.key = victim.key;
    evicted.p = victim.p;
    evicted.creator = victim.creator;
    evicted.snapshot.regions.reserve(victim.outputs.size());
    for (const auto& r : victim.outputs) {
      OutputSnapshot::Region region;
      region.elem = r.elem;
      region.data.assign(r.data, r.data + r.bytes);
      evicted.snapshot.regions.push_back(std::move(region));
    }
    eviction_sink_(std::move(evicted));
  }
  release_entry(victim);
  b.entries.pop_front();
  // mo: relaxed — standalone statistic; readers need no ordering.
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

void TaskHistoryTable::insert_entry(Bucket& b, Entry&& e, std::size_t snap_bytes) {
  {
    SharedSpinWriteLock lock(b.mutex);
    bool duplicate = false;
    for (const Entry& existing : b.entries) {
      if (entry_matches(existing, e.type_id, e.key, e.p)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      if (b.entries.size() >= capacity_) evict_front_locked(b);
      b.entries.push_back(std::move(e));
      memory_.fetch_add(snap_bytes + sizeof(Entry));
      return;
    }
  }
  release_entry(e);  // raced duplicate: recycle our buffers outside the lock
}

void TaskHistoryTable::insert(std::uint32_t type_id, HashKey key, double p,
                              const rt::Task& producer) {
  // Deterministic tasks with the same (key, p) produce the same outputs, so
  // a duplicate insert adds nothing: keep the oldest entry (paper FIFO) and
  // skip the snapshot copy. Cheap shared-lock probe first.
  if (contains(type_id, key, p)) return;

  // Snapshot into arena buffers outside the bucket lock: the copy is the
  // expensive part and must not block readers of the bucket.
  Entry e;
  e.key = key;
  e.p = p;
  e.type_id = type_id;
  e.creator = producer.id;
  std::size_t snap_bytes = 0;
  for (const auto& a : producer.accesses) {
    if (!a.is_output()) continue;
    StoredRegion r;
    r.bytes = a.bytes;
    r.elem = a.elem;
    r.data = arena_.acquire(a.bytes);
    std::memcpy(r.data, a.ptr, a.bytes);
    snap_bytes += a.bytes;
    e.outputs.push_back(r);
  }
  if (verify_full_inputs_ && p >= 1.0) {
    // Exact entries only: for sampled keys, differing inputs are the point.
    for (const auto& a : producer.accesses) {
      if (!a.is_input()) continue;
      StoredRegion r;
      r.bytes = a.bytes;
      r.elem = a.elem;
      r.data = arena_.acquire(a.bytes);
      std::memcpy(r.data, a.ptr, a.bytes);
      snap_bytes += a.bytes;
      e.inputs.push_back(r);
    }
  }

  insert_entry(bucket_for(key), std::move(e), snap_bytes);
}

void TaskHistoryTable::insert_snapshot(std::uint32_t type_id, HashKey key, double p,
                                       rt::TaskId creator,
                                       const OutputSnapshot& snapshot) {
  if (contains(type_id, key, p)) return;

  Entry e;
  e.key = key;
  e.p = p;
  e.type_id = type_id;
  e.creator = creator;
  std::size_t snap_bytes = 0;
  for (const auto& region : snapshot.regions) {
    StoredRegion r;
    r.bytes = region.data.size();
    r.elem = region.elem;
    r.data = arena_.acquire(r.bytes);
    std::memcpy(r.data, region.data.data(), r.bytes);
    snap_bytes += r.bytes;
    e.outputs.push_back(r);
  }
  insert_entry(bucket_for(key), std::move(e), snap_bytes);
}

void TaskHistoryTable::for_each_entry(
    const std::function<void(EvictedEntry&&)>& fn) const {
  for (const Bucket& b : buckets_) {
    SharedSpinReadLock lock(b.mutex);
    for (const Entry& e : b.entries) {
      EvictedEntry out;
      out.type_id = e.type_id;
      out.key = e.key;
      out.p = e.p;
      out.creator = e.creator;
      out.snapshot.regions.reserve(e.outputs.size());
      for (const auto& r : e.outputs) {
        OutputSnapshot::Region region;
        region.elem = r.elem;
        region.data.assign(r.data, r.data + r.bytes);
        out.snapshot.regions.push_back(std::move(region));
      }
      fn(std::move(out));
    }
  }
}

void TaskHistoryTable::clear() {
  for (Bucket& b : buckets_) {
    SharedSpinWriteLock lock(b.mutex);
    for (Entry& e : b.entries) release_entry(e);
    b.entries.clear();
  }
  memory_.store(buckets_.size() * sizeof(Bucket));
}

std::size_t TaskHistoryTable::entry_count() const {
  std::size_t n = 0;
  for (const Bucket& b : buckets_) {
    SharedSpinReadLock lock(b.mutex);
    n += b.entries.size();
  }
  return n;
}

std::size_t TaskHistoryTable::memory_bytes() const { return memory_.load(); }

}  // namespace atm

#include "atm/input_sampler.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/rng.hpp"

namespace atm {

std::uint64_t InputLayout::fingerprint() const noexcept {
  std::uint64_t h = 0x1a7a5ced5eedULL;
  for (const auto& r : regions) {
    h = splitmix64(h ^ r.bytes);
    h = splitmix64(h ^ static_cast<std::uint64_t>(r.elem));
  }
  return h;
}

InputLayout InputLayout::from_task(const rt::Task& task) {
  InputLayout layout;
  for (const auto& a : task.accesses) {
    if (a.is_input()) layout.regions.push_back({a.bytes, a.elem});
  }
  return layout;
}

std::size_t selection_count(std::size_t total_bytes, double p) noexcept {
  if (total_bytes == 0) return 0;
  if (p >= 1.0) return total_bytes;
  const auto n = static_cast<std::size_t>(
      std::ceil(static_cast<double>(total_bytes) * p));
  return std::max<std::size_t>(1, std::min(n, total_bytes));
}

GatherPlan build_gather_plan(const InputLayout& layout,
                             const std::vector<std::uint32_t>& order, double p) {
  GatherPlan plan;
  const std::size_t total = layout.total_bytes();
  const std::size_t count = selection_count(total, p);
  plan.bytes = count;
  if (count == 0) return plan;

  // Sort the selected prefix: the hash no longer needs the shuffled order
  // (any fixed convention works, keys only meet same-plan keys), and sorted
  // indexes coalesce into contiguous runs.
  std::vector<std::uint32_t> selected(order.begin(),
                                      order.begin() + static_cast<std::ptrdiff_t>(count));
  std::sort(selected.begin(), selected.end());

  // Region boundaries as global offsets, for splitting runs per region.
  std::vector<std::size_t> region_begin;
  region_begin.reserve(layout.regions.size());
  std::size_t off = 0;
  for (const auto& r : layout.regions) {
    region_begin.push_back(off);
    off += r.bytes;
  }

  std::size_t region = 0;
  for (std::size_t i = 0; i < selected.size();) {
    // Find the region holding selected[i] (indexes ascend, so the region
    // cursor only moves forward — the whole build is O(count + regions)).
    while (region + 1 < region_begin.size() && selected[i] >= region_begin[region + 1]) {
      ++region;
    }
    const std::size_t region_end =
        region_begin[region] + layout.regions[region].bytes;
    // Extend the run while indexes stay consecutive and inside the region.
    std::size_t j = i + 1;
    while (j < selected.size() && selected[j] == selected[j - 1] + 1 &&
           selected[j] < region_end) {
      ++j;
    }
    plan.runs.push_back({static_cast<std::uint32_t>(region),
                         static_cast<std::uint32_t>(selected[i] - region_begin[region]),
                         static_cast<std::uint32_t>(j - i)});
    i = j;
  }
  plan.runs.shrink_to_fit();
  return plan;
}

const GatherPlan& InputSampler::plan_for(std::uint32_t type_id,
                                         const InputLayout& layout, double p) {
  // p >= 1 selects everything; collapse all such values onto one cache slot.
  const double effective_p = p >= 1.0 ? 1.0 : p;
  const PlanKey key{type_id, layout.fingerprint(),
                    std::bit_cast<std::uint64_t>(effective_p)};
  {
    SharedReadLock lock(plan_mutex_);
    auto it = plans_.find(key);
    if (it != plans_.end()) return *it->second;
  }
  const auto& order = order_for(type_id, layout);
  auto plan = std::make_unique<GatherPlan>(build_gather_plan(layout, order, effective_p));
  SharedWriteLock lock(plan_mutex_);
  auto [it, inserted] = plans_.emplace(key, std::move(plan));
  (void)inserted;  // a racing builder may have won; theirs is equivalent
  return *it->second;
}

const std::vector<std::uint32_t>& InputSampler::order_for(std::uint32_t type_id,
                                                          const InputLayout& layout) {
  const auto key = std::make_pair(type_id, layout.fingerprint());
  {
    SharedReadLock lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return *it->second;
  }
  auto order = std::make_unique<std::vector<std::uint32_t>>(build_order(type_id, layout));
  SharedWriteLock lock(mutex_);
  auto [it, inserted] = cache_.emplace(key, std::move(order));
  (void)inserted;  // a racing builder may have won; theirs is equivalent
  return *it->second;
}

std::vector<std::uint32_t> InputSampler::build_order(std::uint32_t type_id,
                                                     const InputLayout& layout) const {
  const std::size_t total = layout.total_bytes();
  std::vector<std::uint32_t> order(total);
  Rng rng(splitmix64(seed_ ^ (static_cast<std::uint64_t>(type_id) << 32) ^
                     layout.fingerprint()));

  if (!type_aware_) {
    for (std::size_t i = 0; i < total; ++i) order[i] = static_cast<std::uint32_t>(i);
    rng.shuffle(order);
    return order;
  }

  // Type-aware (§III-C): rank 0 = most significant byte of each element.
  // Little-endian: byte (elem_size-1) within an element is the MSB, so
  // rank = elem_size - 1 - offset_within_element.
  std::vector<std::vector<std::uint32_t>> by_rank(8);
  std::size_t base = 0;
  for (const auto& region : layout.regions) {
    const std::size_t esize = rt::elem_size(region.elem);
    for (std::size_t off = 0; off < region.bytes; ++off) {
      const std::size_t within = off % esize;
      // Trailing partial element (region not a multiple of the element
      // size): treat bytes positionally, same formula still applies.
      const std::size_t rank = esize - 1 - within;
      by_rank[rank].push_back(static_cast<std::uint32_t>(base + off));
    }
    base += region.bytes;
  }
  order.clear();
  order.reserve(total);
  for (auto& bucket : by_rank) {
    rng.shuffle(bucket);
    order.insert(order.end(), bucket.begin(), bucket.end());
  }
  return order;
}

std::size_t InputSampler::memory_bytes() const {
  std::size_t n = 0;
  {
    SharedReadLock lock(mutex_);
    for (const auto& [key, vec] : cache_) {
      (void)key;
      n += vec->capacity() * sizeof(std::uint32_t) + sizeof(*vec);
    }
  }
  {
    SharedReadLock lock(plan_mutex_);
    for (const auto& [key, plan] : plans_) {
      (void)key;
      n += plan->memory_bytes();
    }
  }
  return n;
}

std::size_t InputSampler::cache_entries() const {
  SharedReadLock lock(mutex_);
  return cache_.size();
}

std::size_t InputSampler::plan_entries() const {
  SharedReadLock lock(plan_mutex_);
  return plans_.size();
}

}  // namespace atm

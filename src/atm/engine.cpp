#include "atm/engine.hpp"

#include <cassert>
#include <cstring>

#include "atm/error_metric.hpp"
#include "atm/hash_key.hpp"
#include "common/timing.hpp"
#include "store/rle_codec.hpp"

namespace atm {

namespace {

/// THT-side entry -> storage-layer entry (owned byte vectors; Raw encoding,
/// the L2 store compresses on put when configured).
store::MemoEntry to_store_entry(EvictedEntry&& evicted) {
  store::MemoEntry entry;
  entry.key = {evicted.type_id, evicted.key, evicted.p};
  entry.creator = evicted.creator;
  entry.regions.reserve(evicted.snapshot.regions.size());
  for (auto& region : evicted.snapshot.regions) {
    store::MemoRegion r;
    r.raw_bytes = region.data.size();
    r.elem = static_cast<std::uint8_t>(region.elem);
    r.encoding = store::RegionEncoding::Raw;
    r.data = std::move(region.data);
    entry.regions.push_back(std::move(r));
  }
  return entry;
}

/// Storage-layer entry (Raw-decoded) -> THT-side snapshot.
OutputSnapshot to_snapshot(store::MemoEntry&& entry) {
  OutputSnapshot snap;
  snap.regions.reserve(entry.regions.size());
  for (auto& r : entry.regions) {
    OutputSnapshot::Region region;
    region.elem = static_cast<rt::ElemType>(r.elem);
    region.data = std::move(r.data);
    snap.regions.push_back(std::move(region));
  }
  return snap;
}

/// Bytes a hit delivered without execution (the per-type bytes_saved metric).
std::size_t output_bytes(const rt::Task& task) noexcept {
  std::size_t n = 0;
  for (const auto& a : task.accesses) {
    if (a.is_output()) n += a.bytes;
  }
  return n;
}

}  // namespace

AtmEngine::AtmEngine(AtmConfig config)
    : config_(config),
      profile_max_types_(config.profile_max_types),
      profiles_(std::make_unique<std::atomic<TypeProfile*>[]>(config.profile_max_types)),
      tht_(config.log2_buckets, config.bucket_capacity, config.arena_reserve_bytes,
           config.verify_full_inputs, config.eviction),
      ikt_(),
      sampler_(config.type_aware, config.shuffle_seed) {
  stats_.set_reuse_log_cap(config_.reuse_log_cap);
  if (config_.l2_enabled) {
    l2_ = std::make_unique<store::L2CapacityStore>(store::L2Config{
        .budget_bytes = config_.l2_budget_bytes,
        .log2_shards = config_.l2_log2_shards,
        .compress = config_.l2_compress,
    });
    // Demotion seam: every THT capacity eviction lands in the L2 tier.
    tht_.set_eviction_sink([this](EvictedEntry&& evicted) {
      // mo: relaxed — monotonic statistic; snapshot() tolerates races.
      stats_.l2_demotions.fetch_add(1, std::memory_order_relaxed);
      l2_->put(to_store_entry(std::move(evicted)));
    });
  }
}

AtmEngine::~AtmEngine() {
  if (runtime_ != nullptr) {
    // Still attached: have the runtime forget us (it calls back into
    // on_detach, which drops the collector). A runtime that died first
    // already detached us in its destructor, so runtime_ never dangles.
    runtime_->attach_memoizer(nullptr);
  }
}

void AtmEngine::on_detach(rt::Runtime& runtime) {
  // A stale detach from a runtime we have since left must not tear down
  // the registration we hold on the current one.
  if (&runtime != runtime_) return;
  release_registry();
}

void AtmEngine::release_registry() {
  if (collector_registered_ && metrics_ != nullptr) {
    metrics_->remove_collector(collector_id_);
  }
  collector_registered_ = false;
  metrics_ = nullptr;
  runtime_ = nullptr;
  // The profile instruments lived in the departing runtime's registry;
  // drop the cache so a later re-attach recreates them on the new one.
  MutexLock lock(profiles_mutex_);
  for (std::size_t i = 0; i < profile_max_types_; ++i) {
    // mo: release pairs with profile_for()'s acquire load — a reader that
    // sees nullptr simply takes the slow path.
    profiles_[i].store(nullptr, std::memory_order_release);
  }
  profile_storage_.clear();
}

void AtmEngine::on_attach(rt::Runtime& runtime) {
  if (metrics_ != nullptr) release_registry();  // re-attach: leave the old registry
  runtime_ = &runtime;
  // Adopt the runtime's registry: the AtmStats atomics (which remain the
  // engine's C++ view) export by name through one collector, and per-type
  // profiles register their instruments on it lazily.
  metrics_ = &runtime.metrics();
  collector_id_ = metrics_->add_collector([this](obs::SampleSink& sink) {
    const AtmStatsSnapshot s = stats();
    sink.counter("atm.tht_hits", s.tht_hits, "tasks", "engine");
    sink.counter("atm.tht_misses", s.tht_misses, "tasks", "engine");
    sink.counter("atm.ikt_hits", s.ikt_hits, "tasks", "engine");
    sink.counter("atm.training_hits", s.training_hits, "tasks", "engine");
    sink.counter("atm.training_failures", s.training_failures, "tasks", "engine");
    sink.counter("atm.blacklist_skips", s.blacklist_skips, "tasks", "engine");
    sink.counter("atm.keys_computed", s.keys_computed, "keys", "engine");
    sink.counter("atm.hash_ns", s.hash_ns, "ns", "engine");
    sink.counter("atm.hash_bytes", s.hash_bytes, "bytes", "engine");
    sink.counter("atm.key_gather_oob", s.key_gather_oob, "events", "engine");
    sink.counter("atm.copy_out_ns", s.copy_out_ns, "ns", "engine");
    sink.counter("atm.update_ns", s.update_ns, "ns", "engine");
    sink.counter("atm.tolerance_hits", s.tolerance_hits, "tasks", "engine");
    sink.counter("atm.probe_hits", s.probe_hits, "tasks", "engine");
    sink.counter("atm.reuse_log_dropped", s.reuse_log_dropped, "events", "engine");
    sink.counter("atm.l2_hits", s.l2_hits, "tasks", "l2_store");
    sink.counter("atm.l2_promotions", s.l2_promotions, "entries", "l2_store");
    sink.counter("atm.l2_demotions", s.l2_demotions, "entries", "l2_store");
    sink.counter("atm.l2_evictions", s.l2_evictions, "entries", "l2_store");
    sink.gauge("atm.l2_entries", static_cast<std::int64_t>(s.l2_entries),
               "entries", "l2_store");
    sink.gauge("atm.l2_payload_bytes",
               static_cast<std::int64_t>(s.l2_payload_bytes), "bytes", "l2_store");
    sink.gauge("atm.l2_memory_bytes",
               static_cast<std::int64_t>(s.l2_memory_bytes), "bytes", "l2_store");
    sink.gauge("atm.memory_bytes", static_cast<std::int64_t>(memory_bytes()),
               "bytes", "engine");
  });
  collector_registered_ = true;
}

AtmEngine::TypeProfile* AtmEngine::profile_for(const rt::TaskType& type) {
  if (metrics_ == nullptr || type.id() >= profile_max_types_) return nullptr;
  // mo: acquire pairs with the publishing release store below so the
  // TypeProfile's instrument pointers are visible through the slot.
  TypeProfile* p = profiles_[type.id()].load(std::memory_order_acquire);
  if (p != nullptr) return p;
  MutexLock lock(profiles_mutex_);
  // mo: relaxed — the mutex orders this re-check against racing creators.
  p = profiles_[type.id()].load(std::memory_order_relaxed);
  if (p != nullptr) return p;
  auto prof = std::make_unique<TypeProfile>();
  const std::string base = "atm.type." + type.name() + ".";
  prof->hits = metrics_->counter(base + "hits", "tasks", "engine");
  prof->misses = metrics_->counter(base + "misses", "tasks", "engine");
  prof->bytes_saved = metrics_->counter(base + "bytes_saved", "bytes", "engine");
  prof->hash_ns = metrics_->histogram(base + "hash_ns", "ns", "engine");
  prof->copy_ns = metrics_->histogram(base + "copy_ns", "ns", "engine");
  prof->update_ns = metrics_->histogram(base + "update_ns", "ns", "engine");
  p = prof.get();
  profile_storage_.push_back(std::move(prof));
  // mo: release publishes the fully-built TypeProfile to lock-free readers.
  profiles_[type.id()].store(p, std::memory_order_release);
  return p;
}

TrainingController& AtmEngine::controller(const rt::TaskType& type) {
  MutexLock lock(controllers_mutex_);
  auto it = controllers_.find(type.id());
  if (it != controllers_.end()) return *it->second;

  std::unique_ptr<TrainingController> ctl;
  switch (config_.mode) {
    case AtmMode::Static:
      ctl = TrainingController::make_steady(1.0);
      break;
    case AtmMode::FixedP:
      ctl = TrainingController::make_steady(config_.fixed_p);
      break;
    case AtmMode::Dynamic:
    case AtmMode::Off: {
      // A warm-started type resumes at its persisted p and phase instead of
      // re-paying the training phase (zero training executions on restart).
      const auto warm = warm_controllers_.find(type.id());
      if (warm != warm_controllers_.end()) {
        ctl = std::make_unique<TrainingController>(
            type.atm_params(), warm->second.p, config_.training_task_cap,
            warm->second.steady ? TrainingPhase::Steady : TrainingPhase::Training,
            warm->second.trained_tasks);
      } else {
        ctl = std::make_unique<TrainingController>(type.atm_params(), kMinP,
                                                   config_.training_task_cap);
      }
      break;
    }
  }
  auto [ins, ok] = controllers_.emplace(type.id(), std::move(ctl));
  (void)ok;
  return *ins->second;
}

std::uint64_t AtmEngine::key_seed(std::uint32_t type_id,
                                  const InputLayout& layout) const noexcept {
  // Bind the key space to (type, layout): equal byte patterns of different
  // task types or shapes cannot alias in the THT.
  return splitmix64(config_.shuffle_seed ^
                    (static_cast<std::uint64_t>(type_id) * 0x9e3779b97f4a7c15ull) ^
                    layout.fingerprint());
}

ToleranceSpec AtmEngine::resolve_tolerance(const rt::TaskType& type) const noexcept {
  const rt::AtmParams& params = type.atm_params();
  ToleranceSpec spec;
  spec.rel = params.tolerance_rel >= 0.0 ? params.tolerance_rel : config_.tolerance_rel;
  spec.abs = params.tolerance_abs >= 0.0 ? params.tolerance_abs : config_.tolerance_abs;
  spec.probes = config_.tolerance_probes;
  return spec;
}

rt::MemoizationHook::Decision AtmEngine::on_task_ready(rt::Task& task, std::size_t lane) {
  if (config_.mode == AtmMode::Off) return Decision::Execute;
  assert(task.type != nullptr);
  const rt::TaskType& type = *task.type;
  TrainingController& ctl = controller(type);

  // Chaotic outputs identified during training are never memoized (§III-D);
  // skip the hash as well — the key would go unused.
  if (ctl.is_blacklisted(task)) {
    // mo: relaxed — monotonic statistic; snapshot() tolerates races.
    stats_.blacklist_skips.fetch_add(1, std::memory_order_relaxed);
    return Decision::Execute;
  }

  const double p = ctl.current_p();
  const InputLayout layout = InputLayout::from_task(task);
  // Planned gather (cached per type/layout/p): coalesced contiguous spans
  // instead of a per-byte scatter walk over the shuffled order.
  const GatherPlan& plan = sampler_.plan_for(type.id(), layout, p);

  // Tolerance-quantized keys live in a salted key space: a quantized key
  // can never alias an exact key, and changing epsilon retires old entries.
  const ToleranceSpec tol = resolve_tolerance(type);
  const std::uint64_t seed = key_seed(type.id(), layout) ^ tol.fingerprint();

  const std::uint64_t h0 = now_ns();
  const KeyResult key = compute_key(task, plan, seed, tol);
  const std::uint64_t h1 = now_ns();
  if (runtime_ != nullptr) {
    runtime_->tracer().record(lane, rt::TraceState::HashKey, h0, h1);
  }
  // Per-type profile: every record below reuses a timestamp this function
  // takes anyway, so profiling adds relaxed increments only.
  TypeProfile* prof = profile_for(type);
  if (prof != nullptr) prof->hash_ns->record(h1 - h0);
  // mo: relaxed — monotonic statistics; snapshot() tolerates races.
  stats_.keys_computed.fetch_add(1, std::memory_order_relaxed);
  stats_.hash_ns.fetch_add(h1 - h0, std::memory_order_relaxed);
  stats_.hash_bytes.fetch_add(key.bytes_hashed, std::memory_order_relaxed);
  if (key.oob != 0) {
    // mo: relaxed — monotonic statistic; snapshot() tolerates races.
    stats_.key_gather_oob.fetch_add(key.oob, std::memory_order_relaxed);
  }

  task.atm_key = key.key;
  task.atm_p = p;
  task.atm_key_valid = true;

  if (ctl.phase() == TrainingPhase::Steady) {
    rt::TaskId creator = 0;
    std::uint64_t c0 = 0, c1 = 0;
    if (tht_.lookup_and_copy(type.id(), key.key, p, task, &creator, &c0, &c1)) {
      if (runtime_ != nullptr) {
        runtime_->tracer().record(lane, rt::TraceState::Memoize, c0, c1);
      }
      // mo: relaxed — monotonic statistics; snapshot() tolerates races.
      stats_.copy_out_ns.fetch_add(c1 - c0, std::memory_order_relaxed);
      stats_.tht_hits.fetch_add(1, std::memory_order_relaxed);
      if (tol.active()) stats_.tolerance_hits.fetch_add(1, std::memory_order_relaxed);
      stats_.log_reuse(creator);
      if (prof != nullptr) {
        prof->hits->inc();
        prof->bytes_saved->inc(output_bytes(task));
        prof->copy_ns->record(c1 - c0);
      }
      return Decision::Hit;
    }
    // Multi-probe: a near-boundary input may have been stored one
    // quantization cell over — try the neighbor keys before giving up.
    // Probe hits serve the stored entry as-is (nothing is re-inserted, so
    // jittered variants never crowd the THT with near-duplicate entries).
    std::size_t which = 0;
    if (key.probe_count != 0 &&
        tht_.lookup_multi_and_copy(type.id(), key.probes.data(), key.probe_count, p,
                                   task, &creator, &c0, &c1, &which)) {
      if (runtime_ != nullptr) {
        runtime_->tracer().record(lane, rt::TraceState::Memoize, c0, c1);
      }
      // mo: relaxed — monotonic statistics; snapshot() tolerates races.
      stats_.copy_out_ns.fetch_add(c1 - c0, std::memory_order_relaxed);
      stats_.tht_hits.fetch_add(1, std::memory_order_relaxed);
      stats_.tolerance_hits.fetch_add(1, std::memory_order_relaxed);
      stats_.probe_hits.fetch_add(1, std::memory_order_relaxed);
      stats_.log_reuse(creator);
      if (prof != nullptr) {
        prof->hits->inc();
        prof->bytes_saved->inc(output_bytes(task));
        prof->copy_ns->record(c1 - c0);
      }
      return Decision::Hit;
    }
    // mo: relaxed — monotonic statistic; snapshot() tolerates races.
    stats_.tht_misses.fetch_add(1, std::memory_order_relaxed);
    if (prof != nullptr) prof->misses->inc();

    if (l2_ != nullptr) {
      // Fall through to the capacity tier; on hit, promote the entry back
      // into the L1 THT (take() removes it from L2 — no double residency)
      // and serve the outputs directly.
      store::MemoEntry entry;
      if (l2_->take({type.id(), key.key, p}, &entry)) {
        const rt::TaskId entry_creator = entry.creator;
        OutputSnapshot snap = to_snapshot(std::move(entry));
        if (snap.matches_shape(task)) {
          const std::uint64_t c0 = now_ns();
          snap.copy_to(task);
          const std::uint64_t c1 = now_ns();
          if (runtime_ != nullptr) {
            runtime_->tracer().record(lane, rt::TraceState::Memoize, c0, c1);
          }
          tht_.insert_snapshot(type.id(), key.key, p, entry_creator, snap);
          // mo: relaxed — monotonic statistics; snapshot() tolerates races.
          stats_.copy_out_ns.fetch_add(c1 - c0, std::memory_order_relaxed);
          stats_.l2_hits.fetch_add(1, std::memory_order_relaxed);
          stats_.l2_promotions.fetch_add(1, std::memory_order_relaxed);
          stats_.log_reuse(entry_creator);
          if (prof != nullptr) {
            prof->hits->inc();
            prof->bytes_saved->inc(output_bytes(task));
            prof->copy_ns->record(c1 - c0);
          }
          return Decision::Hit;
        }
        // Shape drifted (same key, different output layout): put the entry
        // back — some other consumer may still match it — and miss.
        store::MemoEntry back;
        back.key = {type.id(), key.key, p};
        back.creator = entry_creator;
        for (auto& region : snap.regions) {
          store::MemoRegion r;
          r.raw_bytes = region.data.size();
          r.elem = static_cast<std::uint8_t>(region.elem);
          r.data = std::move(region.data);
          back.regions.push_back(std::move(r));
        }
        l2_->put(std::move(back));
      }
    }

    if (config_.use_ikt) {
      const auto res =
          ikt_.register_or_attach(type.id(), key.key, p, &task, /*allow_attach=*/true);
      if (res == InFlightKeyTable::RegisterResult::AttachedToTwin) {
        // mo: relaxed — monotonic statistic; snapshot() tolerates races.
        stats_.ikt_hits.fetch_add(1, std::memory_order_relaxed);
        return Decision::Deferred;
      }
      // Registered => we own the key while executing. TwinBusy cannot
      // happen on the attach path (shapes matched twins attach), but if it
      // did the task simply executes unregistered — always safe.
    }
    return Decision::Execute;
  }

  // --- Training phase (Dynamic ATM): emulate memoization, then execute ---
  ctl.note_trained_task();
  OutputSnapshot snapshot;
  rt::TaskId creator = 0;
  if (tht_.lookup_snapshot(type.id(), key.key, p, &snapshot, &creator)) {
    if (snapshot.matches_shape(task)) {
      // mo: relaxed — monotonic statistic; snapshot() tolerates races.
      stats_.training_hits.fetch_add(1, std::memory_order_relaxed);
      MutexLock lock(checks_mutex_);
      pending_checks_.emplace(&task, PendingCheck{std::move(snapshot), creator});
    }
  }
  if (config_.use_ikt) {
    // Register as in-flight so steady-state twins could defer on us, but
    // never attach ourselves: training tasks must execute to be measured.
    ikt_.register_or_attach(type.id(), key.key, p, &task, /*allow_attach=*/false);
  }
  return Decision::Execute;
}

void AtmEngine::on_task_executed(rt::Task& task, std::size_t lane) {
  if (config_.mode == AtmMode::Off || !task.atm_key_valid) return;
  const rt::TaskType& type = *task.type;
  TrainingController& ctl = controller(type);

  // 1. Training verification: compare the fresh outputs against the
  //    snapshot the approximation would have delivered.
  bool had_check = false;
  PendingCheck check;
  {
    MutexLock lock(checks_mutex_);
    auto it = pending_checks_.find(&task);
    if (it != pending_checks_.end()) {
      check = std::move(it->second);
      pending_checks_.erase(it);
      had_check = true;
    }
  }
  if (had_check) {
    const double tau = task_output_tau(task, check.snapshot);
    if (tau >= ctl.params().tau_max) {
      // mo: relaxed — monotonic statistic; snapshot() tolerates races.
      stats_.training_failures.fetch_add(1, std::memory_order_relaxed);
      ctl.blacklist_outputs(task);
    }
    ctl.report_trained(tau);
  }

  // 2. updateTHT: store the computed outputs under (key, p).
  const std::uint64_t u0 = now_ns();
  tht_.insert(type.id(), task.atm_key, task.atm_p, task);
  const std::uint64_t u1 = now_ns();
  if (runtime_ != nullptr) {
    runtime_->tracer().record(lane, rt::TraceState::Memoize, u0, u1);
  }
  // mo: relaxed — monotonic statistic; snapshot() tolerates races.
  stats_.update_ns.fetch_add(u1 - u0, std::memory_order_relaxed);
  if (TypeProfile* prof = profile_for(type)) prof->update_ns->record(u1 - u0);

  // 3. Retire from the IKT and fulfill postponed copies: every consumer
  //    that deferred on us gets our outputs and completes now.
  if (config_.use_ikt) {
    const auto pending = ikt_.retire(&task);
    for (rt::Task* consumer : pending) {
      const std::uint64_t c0 = now_ns();
      copy_outputs(task, *consumer);
      const std::uint64_t c1 = now_ns();
      if (runtime_ != nullptr) {
        runtime_->tracer().record(lane, rt::TraceState::Memoize, c0, c1);
      }
      // mo: relaxed — monotonic statistic; snapshot() tolerates races.
      stats_.copy_out_ns.fetch_add(c1 - c0, std::memory_order_relaxed);
      stats_.log_reuse(task.id);
      if (runtime_ != nullptr) {
        runtime_->complete_without_execution(*consumer, /*via_ikt=*/true);
      }
    }
  }
}

void AtmEngine::copy_outputs(const rt::Task& producer, rt::Task& consumer) noexcept {
  std::size_t ci = 0;
  auto next_out = [](const rt::Task& t, std::size_t& i) -> const rt::DataAccess* {
    while (i < t.accesses.size()) {
      const auto& a = t.accesses[i++];
      if (a.is_output()) return &a;
    }
    return nullptr;
  };
  std::size_t pi = 0;
  for (;;) {
    const auto* src = next_out(producer, pi);
    const auto* dst = next_out(consumer, ci);
    if (src == nullptr || dst == nullptr) return;
    // Shapes were validated at attach time; memmove tolerates aliasing.
    std::memmove(dst->ptr, src->ptr, dst->bytes);
  }
}

double AtmEngine::current_p(const rt::TaskType& type) { return controller(type).current_p(); }

TrainingPhase AtmEngine::phase(const rt::TaskType& type) { return controller(type).phase(); }

std::vector<double> AtmEngine::p_history(const rt::TaskType& type) {
  return controller(type).p_history();
}

std::size_t AtmEngine::blacklist_size(const rt::TaskType& type) {
  return controller(type).blacklist_size();
}

AtmStatsSnapshot AtmEngine::stats() const {
  AtmStatsSnapshot s = stats_.snapshot();
  if (l2_ != nullptr) {
    s.l2_evictions = l2_->stats().evictions;
    s.l2_entries = l2_->entry_count();
    s.l2_payload_bytes = l2_->payload_bytes();
    s.l2_memory_bytes = l2_->memory_bytes();
  }
  return s;
}

bool AtmEngine::save_store(const std::string& path, std::string* error) const {
  store::StoreImage image;
  {
    MutexLock lock(controllers_mutex_);
    for (const auto& [id, ctl] : controllers_) {
      store::ControllerState state;
      state.type_id = id;
      state.steady = ctl->phase() == TrainingPhase::Steady;
      state.p = ctl->current_p();
      state.trained_tasks = ctl->trained_tasks();
      image.controllers.push_back(state);
    }
  }
  tht_.for_each_entry([&image](EvictedEntry&& e) {
    image.l1.push_back(to_store_entry(std::move(e)));
  });
  if (l2_ != nullptr) {
    l2_->for_each([&image](const store::MemoEntry& e) { image.l2.push_back(e); });
  }
  return store::save(path, image, error);
}

bool AtmEngine::load_store(const std::string& path, std::string* error) {
  auto image = store::load(path, error);
  if (!image.has_value()) return false;
  {
    MutexLock lock(controllers_mutex_);
    for (const store::ControllerState& state : image->controllers) {
      warm_controllers_[state.type_id] = state;
    }
  }
  // L1 entries re-insert through the normal path: once a bucket fills, the
  // eviction sink (when the L2 tier is on) demotes the overflow instead of
  // losing it.
  for (store::MemoEntry& e : image->l1) {
    const store::MemoKey key = e.key;
    const std::uint64_t creator = e.creator;
    bool decoded = true;
    for (auto& r : e.regions) decoded = decoded && store::decode_region(&r);
    if (!decoded) continue;  // checksummed payloads should never hit this
    tht_.insert_snapshot(key.type_id, key.hash, key.p, creator,
                         to_snapshot(std::move(e)));
  }
  if (l2_ != nullptr) {
    for (store::MemoEntry& e : image->l2) l2_->put(std::move(e));
  }
  return true;
}

std::size_t AtmEngine::memory_bytes() const {
  std::size_t n = tht_.memory_bytes() + ikt_.memory_bytes() + sampler_.memory_bytes();
  if (l2_ != nullptr) n += l2_->memory_bytes();
  {
    MutexLock lock(controllers_mutex_);
    for (const auto& [id, ctl] : controllers_) {
      (void)id;
      n += ctl->memory_bytes();
    }
  }
  {
    MutexLock lock(checks_mutex_);
    for (const auto& [task, check] : pending_checks_) {
      (void)task;
      n += check.snapshot.total_bytes();
    }
  }
  return n;
}

}  // namespace atm

// ATM engine configuration: the modes and sizing knobs evaluated in the
// paper (Static/Dynamic ATM, the Oracle fixed-p configurations, THT sizing
// N/M of §IV-B, IKT on/off, type-aware sampling of §III-C).
#pragma once

#include <cstdint>

namespace atm {

/// Operating mode of the memoization engine.
enum class AtmMode : std::uint8_t {
  Off,     ///< baseline: no memoization (speedup denominators, Eq. 2)
  Static,  ///< p = 100%: exact memoization only (paper "Static ATM")
  Dynamic, ///< training phase picks p automatically (paper "Dynamic ATM")
  FixedP,  ///< constant caller-chosen p, no training (the Oracle runs)
};

[[nodiscard]] constexpr const char* atm_mode_name(AtmMode m) noexcept {
  switch (m) {
    case AtmMode::Off: return "Off";
    case AtmMode::Static: return "Static";
    case AtmMode::Dynamic: return "Dynamic";
    case AtmMode::FixedP: return "FixedP";
  }
  return "?";
}

/// Smallest selected-input percentage explored by Dynamic ATM's training
/// phase: p = 2^-15 (paper §III-D), i.e. 15 doublings to reach 100%.
inline constexpr double kMinP = 1.0 / 32768.0;
/// Number of distinct p configurations (2^-15 ... 2^0).
inline constexpr unsigned kPConfigs = 16;

/// THT replacement policy. The paper uses FIFO ("the oldest task is
/// evicted"); LRU is provided for the ablation study — it requires an
/// exclusive bucket lock on every hit, giving up the paper's parallel-read
/// bucket design.
enum class EvictionPolicy : std::uint8_t { Fifo, Lru };

struct AtmConfig {
  AtmMode mode = AtmMode::Static;

  /// log2 of the THT bucket count (the paper's N; N=8 by default, §IV-B).
  unsigned log2_buckets = 8;
  /// Entries per THT bucket (the paper's M; 128 covers kmeans, §IV-B).
  unsigned bucket_capacity = 128;

  /// Enable the In-flight Key Table (short reuse distances, §III-A).
  bool use_ikt = true;
  /// Type-aware input selection: rank bytes by significance before
  /// shuffling (§III-C). Irrelevant at p = 100%.
  bool type_aware = true;

  /// The constant p used in FixedP mode (ignored otherwise).
  double fixed_p = 1.0;

  /// Seed for the per-task-type index shuffles (deterministic by default).
  std::uint64_t shuffle_seed = 0x5eedULL;

  /// Snapshot-arena bytes pre-faulted at engine construction. Keeps kernel
  /// first-touch page faults out of the measured run; recycled on eviction.
  std::size_t arena_reserve_bytes = std::size_t{8} << 20;

  /// The paper's rejected "original approach" (§III-E), reproduced for the
  /// ablation: store the complete inputs alongside exact (p = 100%) entries
  /// and byte-compare them on every hit, eliminating hash false positives
  /// at the cost of doubled memory and a full input read per hit. The paper
  /// found "the obtained results did not justify such a complex approach".
  bool verify_full_inputs = false;

  /// THT replacement policy (paper: FIFO).
  EvictionPolicy eviction = EvictionPolicy::Fifo;

  /// Safety valve for Dynamic mode: end training unconditionally after this
  /// many executed tasks of a type (0 = no cap). The paper trains with at
  /// most ~5% of the tasks; apps pass explicit L_training instead.
  std::uint64_t training_task_cap = 0;

  // --- tolerance-quantized keys (src/atm/tolerance.hpp, beyond the paper) --
  /// Relative epsilon for key quantization: sampled float/double elements
  /// within ~tolerance_rel of a quantization-cell center share a key cell.
  /// 0 (default) = exact raw-byte keys, bit-identical to the paper's.
  /// Overridable per task type via rt::AtmParams::tolerance_rel.
  double tolerance_rel = 0.0;
  /// Absolute epsilon; takes precedence over tolerance_rel when > 0.
  double tolerance_abs = 0.0;
  /// Neighbor probe keys tried on a THT miss (multi-probe lookup for
  /// near-boundary inputs); capped at kMaxKeyProbes. 0 = primary key only.
  unsigned tolerance_probes = 0;

  // --- L2 capacity tier (src/store/, beyond the paper) ---------------------
  /// Enable the byte-budgeted L2 store behind the THT: capacity evictions
  /// demote into it, steady-state L1 misses probe it and promote on hit.
  bool l2_enabled = false;
  /// Total L2 payload budget in bytes (split evenly across shards).
  std::size_t l2_budget_bytes = std::size_t{64} << 20;
  /// log2 of the L2 shard count (independent locks; 2^4 = 16 shards).
  unsigned l2_log2_shards = 4;
  /// Compress demoted snapshots (byte-wise RLE with raw fallback).
  bool l2_compress = false;

  // --- observability -------------------------------------------------------
  /// Cap on the per-hit reuse-creator log (Figure 9's raw data). Past the
  /// cap, hits count into reuse_log_dropped instead of growing the vector —
  /// long streams previously grew it one entry per hit under a mutex.
  std::size_t reuse_log_cap = 1u << 20;

  /// Cap on distinct task-type ids carrying per-type metric profiles
  /// (atm.type.<name>.*): the profile slot array is sized to this at engine
  /// construction, and types with id >= the cap run unprofiled (memoization
  /// itself is unaffected). Mirrors rt::RuntimeConfig::profile_max_types;
  /// atm_run --profile-types=N sets both.
  std::size_t profile_max_types = 256;
};

}  // namespace atm

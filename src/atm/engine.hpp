// The ATM engine: the MemoizationHook implementation that realizes the
// paper's Figure 1 pipeline on top of the runtime.
//
//   ready task ──► blacklist check ──► hash key (sampled inputs, current p)
//        │
//        ├─ steady state: THT lookup ── hit ──► copyOuts()          => Hit
//        │                 miss │
//        │                      └─ IKT lookup ─ twin in flight ──►
//        │                            postponeCopyOuts()            => Deferred
//        │                            miss ──► register in IKT      => Execute
//        │
//        └─ training (Dynamic): THT hit => remember snapshot, still Execute;
//           after execution compare tau against tau_max, double p on
//           failure, blacklist chaotic outputs, count successes.
//
//   executed task ──► verify training check ──► updateTHT&IKT() ──►
//        fulfill postponed copies ──► complete deferred consumers.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "atm/atm_stats.hpp"
#include "atm/config.hpp"
#include "atm/ikt.hpp"
#include "atm/input_sampler.hpp"
#include "atm/tht.hpp"
#include "atm/training.hpp"
#include "runtime/runtime.hpp"

namespace atm {

class AtmEngine final : public rt::MemoizationHook {
 public:
  explicit AtmEngine(AtmConfig config);
  ~AtmEngine() override = default;

  AtmEngine(const AtmEngine&) = delete;
  AtmEngine& operator=(const AtmEngine&) = delete;

  // --- rt::MemoizationHook ---
  Decision on_task_ready(rt::Task& task, std::size_t lane) override;
  void on_task_executed(rt::Task& task, std::size_t lane) override;
  void on_attach(rt::Runtime& runtime) override;

  // --- observability ---
  [[nodiscard]] const AtmConfig& config() const noexcept { return config_; }
  [[nodiscard]] AtmStatsSnapshot stats() const { return stats_.snapshot(); }
  void reset_stats() { stats_.reset(); }

  [[nodiscard]] TaskHistoryTable& tht() noexcept { return tht_; }
  [[nodiscard]] InFlightKeyTable& ikt() noexcept { return ikt_; }
  [[nodiscard]] InputSampler& sampler() noexcept { return sampler_; }

  /// Current selected-input percentage of a type (the star of Figure 5).
  [[nodiscard]] double current_p(const rt::TaskType& type);
  [[nodiscard]] TrainingPhase phase(const rt::TaskType& type);
  [[nodiscard]] std::vector<double> p_history(const rt::TaskType& type);
  [[nodiscard]] std::size_t blacklist_size(const rt::TaskType& type);

  /// Resident ATM memory: THT + IKT + sampler caches + controllers
  /// (Table III's overhead numerator).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct PendingCheck {
    OutputSnapshot snapshot;
    rt::TaskId creator = 0;
  };

  TrainingController& controller(const rt::TaskType& type);
  [[nodiscard]] std::uint64_t key_seed(std::uint32_t type_id,
                                       const InputLayout& layout) const noexcept;
  static void copy_outputs(const rt::Task& producer, rt::Task& consumer) noexcept;

  AtmConfig config_;
  rt::Runtime* runtime_ = nullptr;
  TaskHistoryTable tht_;
  InFlightKeyTable ikt_;
  InputSampler sampler_;
  AtmStats stats_;

  mutable std::mutex controllers_mutex_;
  std::unordered_map<std::uint32_t, std::unique_ptr<TrainingController>> controllers_;

  mutable std::mutex checks_mutex_;
  std::unordered_map<const rt::Task*, PendingCheck> pending_checks_;
};

}  // namespace atm

// The ATM engine: the MemoizationHook implementation that realizes the
// paper's Figure 1 pipeline on top of the runtime.
//
//   ready task ──► blacklist check ──► hash key (sampled inputs, current p)
//        │
//        ├─ steady state: THT lookup ── hit ──► copyOuts()          => Hit
//        │                 miss │
//        │                      ├─ L2 store lookup ─ hit ──► promote
//        │                      │     into THT + copyOuts()         => Hit
//        │                      └─ IKT lookup ─ twin in flight ──►
//        │                            postponeCopyOuts()            => Deferred
//        │                            miss ──► register in IKT      => Execute
//        │
//        └─ training (Dynamic): THT hit => remember snapshot, still Execute;
//           after execution compare tau against tau_max, double p on
//           failure, blacklist chaotic outputs, count successes.
//
//   executed task ──► verify training check ──► updateTHT&IKT() ──►
//        fulfill postponed copies ──► complete deferred consumers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "atm/atm_stats.hpp"
#include "common/mutex.hpp"
#include "obs/metrics.hpp"
#include "atm/config.hpp"
#include "atm/ikt.hpp"
#include "atm/input_sampler.hpp"
#include "atm/tht.hpp"
#include "atm/tolerance.hpp"
#include "atm/training.hpp"
#include "runtime/runtime.hpp"
#include "store/l2_store.hpp"
#include "store/snapshot_io.hpp"

namespace atm {

class AtmEngine final : public rt::MemoizationHook {
 public:
  explicit AtmEngine(AtmConfig config);
  /// Detaches from the runtime (if still attached), deregistering the
  /// engine's metrics collector: apps routinely destroy the engine and
  /// runtime in either order, and a collector capturing `this` must not
  /// outlive it — nor may the engine touch a registry that died with its
  /// runtime (the runtime calls on_detach() from its destructor).
  ~AtmEngine() override;

  AtmEngine(const AtmEngine&) = delete;
  AtmEngine& operator=(const AtmEngine&) = delete;

  // --- rt::MemoizationHook ---
  Decision on_task_ready(rt::Task& task, std::size_t lane) override;
  void on_task_executed(rt::Task& task, std::size_t lane) override;
  void on_attach(rt::Runtime& runtime) override;
  void on_detach(rt::Runtime& runtime) override;

  // --- observability ---
  [[nodiscard]] const AtmConfig& config() const noexcept { return config_; }
  /// Counter snapshot; when the L2 tier is on, also samples its gauges
  /// (resident entries/bytes) and eviction count into the L2 fields.
  [[nodiscard]] AtmStatsSnapshot stats() const;
  void reset_stats() {
    stats_.reset();
    if (l2_ != nullptr) l2_->reset_stats();
  }

  [[nodiscard]] TaskHistoryTable& tht() noexcept { return tht_; }
  [[nodiscard]] InFlightKeyTable& ikt() noexcept { return ikt_; }
  [[nodiscard]] InputSampler& sampler() noexcept { return sampler_; }
  /// The L2 capacity tier; nullptr unless AtmConfig::l2_enabled.
  [[nodiscard]] store::MemoStore* l2() noexcept { return l2_.get(); }

  // --- persistent warm start (src/store/snapshot_io) ---
  /// Serialize THT + L2 + per-type p-controller state to `path`.
  bool save_store(const std::string& path, std::string* error = nullptr) const;
  /// Restore a saved image: THT entries re-insert (overflow demotes to the
  /// L2 tier when enabled), L2 entries reload as stored, and Dynamic-mode
  /// controllers resume at their trained p/phase — zero training on the
  /// warm run. Call before submitting tasks; type ids must come from the
  /// same registration order as the saving program.
  bool load_store(const std::string& path, std::string* error = nullptr);

  /// Current selected-input percentage of a type (the star of Figure 5).
  [[nodiscard]] double current_p(const rt::TaskType& type);
  [[nodiscard]] TrainingPhase phase(const rt::TaskType& type);
  [[nodiscard]] std::vector<double> p_history(const rt::TaskType& type);
  [[nodiscard]] std::size_t blacklist_size(const rt::TaskType& type);

  /// Resident ATM memory: THT + IKT + sampler caches + controllers
  /// (Table III's overhead numerator).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct PendingCheck {
    OutputSnapshot snapshot;
    rt::TaskId creator = 0;
  };

  /// Per-task-type profile on the unified registry: hit rate, bytes the
  /// hits saved, and the latency distributions of the three engine phases
  /// (all recorded from timestamps the engine already takes — no extra
  /// clock reads). Named atm.type.<name>.{hits,misses,bytes_saved,
  /// hash_ns,copy_ns,update_ns}.
  struct TypeProfile {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* bytes_saved = nullptr;
    obs::LatencyHistogram* hash_ns = nullptr;
    obs::LatencyHistogram* copy_ns = nullptr;
    obs::LatencyHistogram* update_ns = nullptr;
  };

  /// Lazily created profile for `type`; nullptr before on_attach (no
  /// registry yet) or past the AtmConfig::profile_max_types cap.
  TypeProfile* profile_for(const rt::TaskType& type);

  /// Drop everything registered on the current runtime's registry: the
  /// collector and the cached per-type profile instruments.
  void release_registry();

  TrainingController& controller(const rt::TaskType& type);
  [[nodiscard]] std::uint64_t key_seed(std::uint32_t type_id,
                                       const InputLayout& layout) const noexcept;
  /// Effective tolerance for a type: engine-wide AtmConfig epsilons unless
  /// the type's AtmParams override them (>= 0); probes are engine-wide.
  [[nodiscard]] ToleranceSpec resolve_tolerance(const rt::TaskType& type) const noexcept;
  static void copy_outputs(const rt::Task& producer, rt::Task& consumer) noexcept;

  AtmConfig config_;
  rt::Runtime* runtime_ = nullptr;
  /// The runtime's registry, adopted at on_attach.
  obs::MetricsRegistry* metrics_ = nullptr;
  std::size_t collector_id_ = 0;
  bool collector_registered_ = false;

  /// Per-type profile slots, sized to AtmConfig::profile_max_types at
  /// construction. The hot path reads its slot lock-free; the mutex only
  /// serializes lazy creation and teardown of the backing storage.
  std::size_t profile_max_types_;
  std::unique_ptr<std::atomic<TypeProfile*>[]> profiles_;
  Mutex profiles_mutex_;
  std::vector<std::unique_ptr<TypeProfile>> profile_storage_
      ATM_GUARDED_BY(profiles_mutex_);
  TaskHistoryTable tht_;
  InFlightKeyTable ikt_;
  InputSampler sampler_;
  AtmStats stats_;
  std::unique_ptr<store::L2CapacityStore> l2_;

  mutable Mutex controllers_mutex_;
  std::unordered_map<std::uint32_t, std::unique_ptr<TrainingController>> controllers_
      ATM_GUARDED_BY(controllers_mutex_);
  /// Controller states restored by load_store(), consumed lazily when a
  /// Dynamic-mode controller is first created for the type.
  std::unordered_map<std::uint32_t, store::ControllerState> warm_controllers_
      ATM_GUARDED_BY(controllers_mutex_);

  mutable Mutex checks_mutex_;
  std::unordered_map<const rt::Task*, PendingCheck> pending_checks_
      ATM_GUARDED_BY(checks_mutex_);
};

}  // namespace atm

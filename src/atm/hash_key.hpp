// Hash-key computation over the selected subset of a task's input bytes
// (paper §III-B): gathers the bytes named by the shuffled index prefix and
// digests them into the 8-byte key stored in the THT/IKT.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "atm/tolerance.hpp"
#include "common/hash.hpp"
#include "runtime/task.hpp"

namespace atm {

struct GatherPlan;

struct KeyResult {
  HashKey key = 0;
  std::size_t bytes_hashed = 0;
  /// Gather indexes/run bytes that fell outside the task's actual input
  /// bytes (an order or plan built for a different layout). Out-of-range
  /// positions are clamped-and-counted in every build type — never hashed
  /// as out-of-bounds reads. The engine surfaces the count as the
  /// `key_gather_oob` stat; nonzero means a sampler-cache/layout bug.
  std::size_t oob = 0;
  /// Tolerance-mode neighbor keys (near-boundary sampled elements flipped
  /// to their adjacent quantization cell), closest-to-boundary first. Zero
  /// unless computed with an active ToleranceSpec with probes > 0.
  unsigned probe_count = 0;
  std::array<HashKey, kMaxKeyProbes> probes{};
};

/// Compute the hash key of `task` using percentage `p` of its input bytes,
/// in the (cached) shuffled `order`. `seed` should bind the key space to the
/// task type + layout so equal byte patterns of unrelated types cannot
/// collide structurally.
///
/// Fast path: at p >= 1 every byte participates, so regions are streamed
/// contiguously (no gather) — the digest differs from the gathered one, but
/// THT entries store p and only match keys computed with the same p.
[[nodiscard]] KeyResult compute_key(const rt::Task& task,
                                    const std::vector<std::uint32_t>& order, double p,
                                    std::uint64_t seed);

/// Planned variant (the hot path): stream the precomputed coalesced
/// (region, offset, length) runs of `plan` — contiguous HashStream updates,
/// no per-byte region resolution. The digest convention differs from the
/// order-based gather (bytes are fed in ascending layout order, not shuffle
/// order); the two never meet in one THT because the engine uses exactly one
/// convention per run. At p >= 1 the plan is one run per region, making this
/// digest-identical to the order-based full-input fast path.
[[nodiscard]] KeyResult compute_key(const rt::Task& task, const GatherPlan& plan,
                                    std::uint64_t seed);

/// Tolerance-quantized variants (src/atm/tolerance.hpp): every *element*
/// touched by the selected bytes is quantized into an error-bounded cell and
/// XOR-composed into the key, so near-equal inputs produce equal keys and
/// the digest is gather-order independent — the plan and order paths agree
/// bit-for-bit, unlike the exact digests above. Near-boundary elements emit
/// up to spec.probes neighbor keys (KeyResult::probes) for multi-probe THT
/// lookup. An inactive spec delegates to the exact raw-bytes digests (the
/// epsilon = 0 fast path): bit-identical keys, no per-element work.
[[nodiscard]] KeyResult compute_key(const rt::Task& task,
                                    const std::vector<std::uint32_t>& order, double p,
                                    std::uint64_t seed, const ToleranceSpec& spec);

[[nodiscard]] KeyResult compute_key(const rt::Task& task, const GatherPlan& plan,
                                    std::uint64_t seed, const ToleranceSpec& spec);

}  // namespace atm

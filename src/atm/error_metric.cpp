#include "atm/error_metric.hpp"

namespace atm {

namespace {
template <typename T>
std::span<const T> as_typed(std::span<const std::uint8_t> bytes) noexcept {
  return {reinterpret_cast<const T*>(bytes.data()), bytes.size() / sizeof(T)};
}
}  // namespace

void ChebyshevAccumulator::add_bytes(rt::ElemType elem,
                                     std::span<const std::uint8_t> correct,
                                     std::span<const std::uint8_t> approx) noexcept {
  switch (elem) {
    case rt::ElemType::F32:
      add(as_typed<float>(correct), as_typed<float>(approx));
      return;
    case rt::ElemType::F64:
      add(as_typed<double>(correct), as_typed<double>(approx));
      return;
    case rt::ElemType::I32:
      add(as_typed<std::int32_t>(correct), as_typed<std::int32_t>(approx));
      return;
    case rt::ElemType::U32:
      add(as_typed<std::uint32_t>(correct), as_typed<std::uint32_t>(approx));
      return;
    case rt::ElemType::I64:
      add(as_typed<std::int64_t>(correct), as_typed<std::int64_t>(approx));
      return;
    case rt::ElemType::U64:
      add(as_typed<std::uint64_t>(correct), as_typed<std::uint64_t>(approx));
      return;
    case rt::ElemType::I16:
      add(as_typed<std::int16_t>(correct), as_typed<std::int16_t>(approx));
      return;
    case rt::ElemType::U16:
      add(as_typed<std::uint16_t>(correct), as_typed<std::uint16_t>(approx));
      return;
    case rt::ElemType::I8:
      add(as_typed<std::int8_t>(correct), as_typed<std::int8_t>(approx));
      return;
    case rt::ElemType::U8:
      add(as_typed<std::uint8_t>(correct), as_typed<std::uint8_t>(approx));
      return;
  }
}

double task_output_tau(const rt::Task& task, const OutputSnapshot& snapshot) {
  ChebyshevAccumulator acc;
  std::size_t i = 0;
  for (const auto& a : task.accesses) {
    if (!a.is_output()) continue;
    if (i >= snapshot.regions.size()) break;
    const auto& region = snapshot.regions[i];
    acc.add_bytes(a.elem, a.const_bytes(),
                  std::span<const std::uint8_t>(region.data.data(), region.data.size()));
    ++i;
  }
  return acc.value();
}

}  // namespace atm

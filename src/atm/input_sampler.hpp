// Hash-key input selection (paper §III-B and §III-C).
//
// The task's data inputs are viewed as one concatenated vector of N bytes.
// A vector of N indexes is shuffled once per (task type, input layout) and
// cached; every key computation then selects the first ceil(N*p) indexes.
//
// Plain mode shuffles all indexes uniformly. Type-aware mode first orders
// bytes by significance rank (most significant byte of every element first)
// and shuffles within each rank, so the selected prefix always covers signs
// and exponents before mantissa tails — the paper's §III-C refinement.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "common/hash.hpp"
#include "common/mutex.hpp"
#include "runtime/task.hpp"

namespace atm {

/// Shape of a task's concatenated inputs: sizes and element types of the
/// input regions in declaration order. Two tasks share a shuffled index
/// vector iff their type and layout fingerprints match.
struct InputLayout {
  struct Region {
    std::size_t bytes = 0;
    rt::ElemType elem = rt::ElemType::U8;
  };
  std::vector<Region> regions;

  [[nodiscard]] std::size_t total_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& r : regions) n += r.bytes;
    return n;
  }

  /// Order-sensitive fingerprint for cache keying.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Input regions (In + InOut) of a task, in declaration order.
  [[nodiscard]] static InputLayout from_task(const rt::Task& task);
};

/// Number of selected bytes for a given total and percentage p: the first
/// ceil(total*p) shuffled indexes, at least 1 (§III-B; p in (0, 1]).
[[nodiscard]] std::size_t selection_count(std::size_t total_bytes, double p) noexcept;

/// A precomputed gather: the shuffled index prefix for one (type, layout, p)
/// sorted and coalesced into contiguous (region, offset, length) runs. Key
/// hashing then streams whole spans instead of chasing `count x regions`
/// single-byte lookups — the byte *set* is identical to the shuffled prefix,
/// only the digest order changes (THT keys only ever meet keys computed via
/// the same plan, so the digest convention is free to differ from the
/// per-byte gather's).
struct GatherPlan {
  struct Run {
    std::uint32_t region = 0;  ///< index into the task's input regions
    std::uint32_t offset = 0;  ///< byte offset within that region
    std::uint32_t length = 0;  ///< contiguous byte count
  };
  std::vector<Run> runs;
  std::size_t bytes = 0;  ///< total selected bytes (== selection_count)

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return runs.capacity() * sizeof(Run) + sizeof(*this);
  }
};

/// Build a plan from the first selection_count(total, p) entries of `order`.
/// Exposed for tests and benches; production callers use
/// InputSampler::plan_for, which caches the result.
[[nodiscard]] GatherPlan build_gather_plan(const InputLayout& layout,
                                           const std::vector<std::uint32_t>& order,
                                           double p);

class InputSampler {
 public:
  InputSampler(bool type_aware, std::uint64_t seed)
      : type_aware_(type_aware), seed_(seed) {}

  /// The shuffled byte-index order for (type, layout). Built on first use
  /// ("we shuffle the vector of indexes the first time a task type is
  /// executed and store it in the runtime system"), then shared read-only.
  const std::vector<std::uint32_t>& order_for(std::uint32_t type_id,
                                              const InputLayout& layout);

  /// The coalesced gather plan for (type, layout, p). Built once from the
  /// shuffled order on first use, then shared read-only; Dynamic training
  /// touches at most kPConfigs distinct p values per type, so the cache
  /// stays small. The hot path (AtmEngine::on_task_ready) uses this instead
  /// of the raw order.
  const GatherPlan& plan_for(std::uint32_t type_id, const InputLayout& layout,
                             double p);

  [[nodiscard]] bool type_aware() const noexcept { return type_aware_; }

  /// Bytes held by cached index vectors (part of ATM's Table III footprint).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Cached (type, layout) combinations.
  [[nodiscard]] std::size_t cache_entries() const;

  /// Cached (type, layout, p) gather plans.
  [[nodiscard]] std::size_t plan_entries() const;

 private:
  [[nodiscard]] std::vector<std::uint32_t> build_order(std::uint32_t type_id,
                                                       const InputLayout& layout) const;

  bool type_aware_;
  std::uint64_t seed_;
  mutable SharedMutex mutex_;
  std::map<std::pair<std::uint32_t, std::uint64_t>,
           std::unique_ptr<std::vector<std::uint32_t>>>
      cache_ ATM_GUARDED_BY(mutex_);

  /// Plans keyed by (type, layout fingerprint, bit pattern of p). p values
  /// come from the 16-step training ladder or a caller-fixed constant, so
  /// bitwise identity is the right equality.
  using PlanKey = std::tuple<std::uint32_t, std::uint64_t, std::uint64_t>;
  mutable SharedMutex plan_mutex_;
  std::map<PlanKey, std::unique_ptr<GatherPlan>> plans_ ATM_GUARDED_BY(plan_mutex_);
};

}  // namespace atm

// Hash-key input selection (paper §III-B and §III-C).
//
// The task's data inputs are viewed as one concatenated vector of N bytes.
// A vector of N indexes is shuffled once per (task type, input layout) and
// cached; every key computation then selects the first ceil(N*p) indexes.
//
// Plain mode shuffles all indexes uniformly. Type-aware mode first orders
// bytes by significance rank (most significant byte of every element first)
// and shuffles within each rank, so the selected prefix always covers signs
// and exponents before mantissa tails — the paper's §III-C refinement.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/hash.hpp"
#include "runtime/task.hpp"

namespace atm {

/// Shape of a task's concatenated inputs: sizes and element types of the
/// input regions in declaration order. Two tasks share a shuffled index
/// vector iff their type and layout fingerprints match.
struct InputLayout {
  struct Region {
    std::size_t bytes = 0;
    rt::ElemType elem = rt::ElemType::U8;
  };
  std::vector<Region> regions;

  [[nodiscard]] std::size_t total_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& r : regions) n += r.bytes;
    return n;
  }

  /// Order-sensitive fingerprint for cache keying.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Input regions (In + InOut) of a task, in declaration order.
  [[nodiscard]] static InputLayout from_task(const rt::Task& task);
};

/// Number of selected bytes for a given total and percentage p: the first
/// ceil(total*p) shuffled indexes, at least 1 (§III-B; p in (0, 1]).
[[nodiscard]] std::size_t selection_count(std::size_t total_bytes, double p) noexcept;

class InputSampler {
 public:
  InputSampler(bool type_aware, std::uint64_t seed)
      : type_aware_(type_aware), seed_(seed) {}

  /// The shuffled byte-index order for (type, layout). Built on first use
  /// ("we shuffle the vector of indexes the first time a task type is
  /// executed and store it in the runtime system"), then shared read-only.
  const std::vector<std::uint32_t>& order_for(std::uint32_t type_id,
                                              const InputLayout& layout);

  [[nodiscard]] bool type_aware() const noexcept { return type_aware_; }

  /// Bytes held by cached index vectors (part of ATM's Table III footprint).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Cached (type, layout) combinations.
  [[nodiscard]] std::size_t cache_entries() const;

 private:
  [[nodiscard]] std::vector<std::uint32_t> build_order(std::uint32_t type_id,
                                                       const InputLayout& layout) const;

  bool type_aware_;
  std::uint64_t seed_;
  mutable std::shared_mutex mutex_;
  std::map<std::pair<std::uint32_t, std::uint64_t>,
           std::unique_ptr<std::vector<std::uint32_t>>>
      cache_;
};

}  // namespace atm

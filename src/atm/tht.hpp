// Task History Table (paper §III-A, Figure 1).
//
// 2^N buckets indexed by the low N bits of the hash key; each bucket holds
// up to M {key, p, outputs} entries with FIFO eviction. Each bucket carries
// its own 4-byte reader-writer spinlock (SharedSpinMutex) and is padded to
// its own cacheline, so parallel lookups on different buckets never touch a
// shared line and a lookup's lock traffic stays inside the bucket it reads
// — the sharded-locking fix for the "THT bucket locks are the remaining
// serialization point" item. Reads run in parallel under the shared mode
// (lookups copy outputs out); insert/evict take the exclusive mode. Entries
// record the p used to compute their key (§III-D: Dynamic ATM must not
// match keys across p values) and the creator task id (Figure 9's reuse
// attribution).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "atm/config.hpp"
#include "common/buffer_arena.hpp"
#include "common/hash.hpp"
#include "common/shared_spin_mutex.hpp"
#include "runtime/task.hpp"

namespace atm {

/// Deep copy of a task's output regions ("data outputs have to be fully
/// stored in the THT", §III-A).
struct OutputSnapshot {
  struct Region {
    std::vector<std::uint8_t> data;
    rt::ElemType elem = rt::ElemType::U8;
  };
  std::vector<Region> regions;

  [[nodiscard]] std::size_t total_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& r : regions) n += r.data.size();
    return n;
  }

  /// Capture the current contents of `task`'s output regions.
  [[nodiscard]] static OutputSnapshot capture(const rt::Task& task);

  /// True when this snapshot's region sizes line up with `task`'s outputs.
  [[nodiscard]] bool matches_shape(const rt::Task& task) const noexcept;

  /// Write the snapshot into `task`'s output regions (copyOuts()).
  void copy_to(rt::Task& task) const noexcept;
};

/// True when two tasks declare byte-identical output region shapes, so one
/// may provide the other's outputs.
[[nodiscard]] bool output_shapes_match(const rt::Task& a, const rt::Task& b) noexcept;

/// A THT entry leaving (or entering) the table through the tiering seam:
/// the full match tuple + attribution + an owned copy of the outputs.
/// Produced on capacity eviction (demotion to the L2 tier), consumed by
/// insert_snapshot() (promotion from L2 / snapshot load).
struct EvictedEntry {
  std::uint32_t type_id = 0;
  HashKey key = 0;
  double p = 1.0;
  rt::TaskId creator = 0;
  OutputSnapshot snapshot;
};

/// Demotion callback: receives every entry evicted to make room (not
/// entries dropped by clear(), which is a reset, not capacity pressure).
/// Called with the bucket lock held — the sink must not call back into the
/// table. Install before concurrent use; the engine wires this to the L2
/// capacity tier (src/store/).
using EvictionSink = std::function<void(EvictedEntry&&)>;

class TaskHistoryTable {
 public:
  /// `log2_buckets` is the paper's N (0 => a single bucket); `bucket_capacity`
  /// is the paper's M. Snapshot storage comes from a pre-faulted arena:
  /// `arena_reserve` bytes are touched at construction (keeping page-fault
  /// cost out of the measured run) and evicted buffers recycle.
  /// `verify_full_inputs` stores the complete inputs of exact (p = 100%)
  /// entries and byte-compares them on hit (the §III-E ablation);
  /// `eviction` selects FIFO (paper) or LRU replacement.
  TaskHistoryTable(unsigned log2_buckets, unsigned bucket_capacity,
                   std::size_t arena_reserve = 0, bool verify_full_inputs = false,
                   EvictionPolicy eviction = EvictionPolicy::Fifo);

  /// Steady-state hit path: find (type, key, p) and copy the stored outputs
  /// straight into `consumer`'s output regions under the bucket's shared
  /// lock. On success fills `creator` and the copy interval [t0,t1] in ns.
  bool lookup_and_copy(std::uint32_t type_id, HashKey key, double p, rt::Task& consumer,
                       rt::TaskId* creator, std::uint64_t* copy_t0,
                       std::uint64_t* copy_t1);

  /// Multi-probe hit path (tolerance-quantized keys): try `keys[0..nkeys)`
  /// in order, copying outputs from the first match. Each probe is an
  /// independent lookup_and_copy — no cross-bucket lock is ever held, and
  /// the copy happens exactly once, under the matching bucket's shared
  /// lock. On success fills `*which` with the index of the matching key.
  bool lookup_multi_and_copy(std::uint32_t type_id, const HashKey* keys,
                             std::size_t nkeys, double p, rt::Task& consumer,
                             rt::TaskId* creator, std::uint64_t* copy_t0,
                             std::uint64_t* copy_t1, std::size_t* which);

  /// Training path: copy the stored snapshot out (the task will execute and
  /// the engine compares the two afterwards).
  bool lookup_snapshot(std::uint32_t type_id, HashKey key, double p, OutputSnapshot* out,
                       rt::TaskId* creator) const;

  /// Pure membership probe (tests, stats).
  [[nodiscard]] bool contains(std::uint32_t type_id, HashKey key, double p) const;

  /// Store `producer`'s outputs under (type, key, p); evicts per the
  /// configured policy when the bucket is full. Duplicate (type, key, p)
  /// inserts are skipped (the oldest entry wins, as with FIFO order).
  void insert(std::uint32_t type_id, HashKey key, double p, const rt::Task& producer);

  /// Store an already-captured snapshot under (type, key, p) — the
  /// promotion path from the L2 tier and the --load-store warm start.
  /// Same dedup/eviction semantics as insert(). Entries inserted this way
  /// carry no stored inputs, so the §III-E full-input check (when enabled)
  /// accepts them unverified.
  void insert_snapshot(std::uint32_t type_id, HashKey key, double p, rt::TaskId creator,
                       const OutputSnapshot& snapshot);

  /// Install (or clear, with nullptr) the demotion sink fed by capacity
  /// evictions. Not synchronized against in-flight inserts: install during
  /// setup, before the table sees concurrent traffic.
  void set_eviction_sink(EvictionSink sink) { eviction_sink_ = std::move(sink); }

  /// Visit an owned copy of every live entry (serialization /
  /// --save-store); the copy is handed over, so consumers keep it without
  /// another payload pass.
  void for_each_entry(const std::function<void(EvictedEntry&&)>& fn) const;

  /// Hits whose full-input verification failed (hash false positives
  /// caught by the §III-E check; paper §III-E observed none in practice).
  [[nodiscard]] std::uint64_t verification_rejects() const noexcept {
    return verification_rejects_.load();
  }

  void clear();

  [[nodiscard]] std::size_t entry_count() const;
  /// Bytes pinned by live entries: snapshots + entry/bucket overheads
  /// (Table III accounting; arena slack is recyclable and reported
  /// separately by reserved_bytes()).
  [[nodiscard]] std::size_t memory_bytes() const;
  /// Total arena slab bytes resident (>= memory pinned by snapshots).
  [[nodiscard]] std::size_t reserved_bytes() const { return arena_.reserved_bytes(); }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_.load(); }
  [[nodiscard]] unsigned bucket_count() const noexcept {
    return static_cast<unsigned>(buckets_.size());
  }
  [[nodiscard]] unsigned bucket_capacity() const noexcept { return capacity_; }

 private:
  /// Arena-backed copy of a producer's output regions.
  struct StoredRegion {
    std::uint8_t* data = nullptr;
    std::size_t bytes = 0;
    rt::ElemType elem = rt::ElemType::U8;
  };
  struct Entry {
    HashKey key = 0;
    double p = 1.0;
    std::uint32_t type_id = 0;
    rt::TaskId creator = 0;
    std::vector<StoredRegion> outputs;
    std::vector<StoredRegion> inputs;  ///< only with verify_full_inputs

    [[nodiscard]] std::size_t total_bytes() const noexcept {
      std::size_t n = 0;
      for (const auto& r : outputs) n += r.bytes;
      for (const auto& r : inputs) n += r.bytes;
      return n;
    }
    [[nodiscard]] bool matches_shape(const rt::Task& task) const noexcept;
    [[nodiscard]] bool inputs_equal(const rt::Task& task) const noexcept;
  };
  /// Cacheline-isolated: the lock word and the entry deque of one bucket
  /// never share a line with a neighboring bucket, so reader traffic on hot
  /// buckets cannot false-share with inserts elsewhere.
  struct alignas(64) Bucket {
    mutable SharedSpinMutex mutex;
    std::deque<Entry> entries ATM_GUARDED_BY(mutex);
  };

  /// Sentinel returned by find_and_copy_locked() when no entry served the hit.
  static constexpr std::size_t kNoEntry = static_cast<std::size_t>(-1);

  void release_entry(Entry& entry);
  /// Evict the replacement-policy victim of a full bucket (caller holds the
  /// bucket's exclusive lock), feeding the demotion sink when installed.
  void evict_front_locked(Bucket& bucket) ATM_REQUIRES(bucket.mutex);
  /// Shared tail of insert()/insert_snapshot(): dedup-check, evict, append.
  void insert_entry(Bucket& bucket, Entry&& entry, std::size_t snap_bytes);
  /// Scan `bucket` for (type, key, p); on a serving hit copy the stored
  /// outputs into `consumer` and return the entry index (kNoEntry
  /// otherwise). Read-only on the bucket — legal under the shared mode; the
  /// LRU caller holds the exclusive mode and reorders afterwards.
  std::size_t find_and_copy_locked(Bucket& bucket, std::uint32_t type_id, HashKey key,
                                   double p, rt::Task& consumer, rt::TaskId* creator,
                                   std::uint64_t* copy_t0, std::uint64_t* copy_t1)
      ATM_REQUIRES_SHARED(bucket.mutex);

  [[nodiscard]] Bucket& bucket_for(HashKey key) noexcept {
    return buckets_[key & mask_];
  }
  [[nodiscard]] const Bucket& bucket_for(HashKey key) const noexcept {
    return buckets_[key & mask_];
  }

  static bool entry_matches(const Entry& e, std::uint32_t type_id, HashKey key,
                            double p) noexcept {
    return e.key == key && e.type_id == type_id && e.p == p;
  }

  std::vector<Bucket> buckets_;
  HashKey mask_;
  unsigned capacity_;
  bool verify_full_inputs_;
  EvictionPolicy eviction_;
  BufferArena arena_;
  EvictionSink eviction_sink_;
  std::atomic<std::size_t> memory_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> verification_rejects_{0};
};

}  // namespace atm

// Engine statistics: hit/miss counters, hash/copy timing, and the per-
// creator reuse log behind Figure 9's cumulative-reuse curves and the
// paper's "Reuse" metric (§IV-C: percentage of memoized tasks).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/mutex.hpp"
#include "runtime/task.hpp"

namespace atm {

/// Point-in-time copy of the counters (safe to read after a run).
struct AtmStatsSnapshot {
  std::uint64_t tht_hits = 0;          ///< steady-state THT hits (tasks bypassed)
  std::uint64_t tht_misses = 0;
  std::uint64_t ikt_hits = 0;          ///< tasks deferred onto an in-flight twin
  std::uint64_t training_hits = 0;     ///< THT hits during training (still executed)
  std::uint64_t training_failures = 0; ///< tau >= tau_max events (p doubled)
  std::uint64_t blacklist_skips = 0;   ///< tasks skipped due to unstable outputs
  std::uint64_t keys_computed = 0;
  std::uint64_t hash_ns = 0;           ///< total time computing hash keys
  std::uint64_t hash_bytes = 0;        ///< total bytes fed to the hash
  /// Gather positions outside the task's inputs, clamped-and-counted by
  /// compute_key (all build types). Nonzero = sampler/layout bug upstream.
  std::uint64_t key_gather_oob = 0;
  std::uint64_t copy_out_ns = 0;       ///< THT->task and twin->task output copies
  std::uint64_t update_ns = 0;         ///< task->THT snapshot insertion time

  // --- tolerance-quantized keys (zero unless an epsilon is configured) ---
  std::uint64_t tolerance_hits = 0;  ///< steady THT hits under quantized keys
  std::uint64_t probe_hits = 0;      ///< subset served by a neighbor probe key

  // --- L2 capacity tier (zero unless AtmConfig::l2_enabled) ---
  std::uint64_t l2_hits = 0;        ///< L1 misses served from the L2 store
  std::uint64_t l2_promotions = 0;  ///< L2 entries reinstated into the THT
  std::uint64_t l2_demotions = 0;   ///< THT evictions captured by the L2 store
  std::uint64_t l2_evictions = 0;   ///< entries the L2 dropped to hold its budget
  // Gauges sampled when the snapshot is taken (not monotonic counters).
  std::uint64_t l2_entries = 0;         ///< resident L2 entries
  std::uint64_t l2_payload_bytes = 0;   ///< resident L2 payload (post-compression)
  std::uint64_t l2_memory_bytes = 0;    ///< payload + L2 index overhead

  // --- two-level dependence index (runtime-side; filled by
  // apps::finalize_result from Runtime::dep_index_stats, NOT by the engine
  // — so they are populated even in mode Off) -------------------------------
  std::uint64_t dep_exact_hits = 0;      ///< accesses served by the (begin,len) table
  std::uint64_t dep_tree_fallbacks = 0;  ///< accesses that walked the interval tree
  std::uint64_t prune_scans = 0;         ///< amortized prune sweeps executed

  /// Reuse events in completion order: the creator task id whose stored
  /// outputs satisfied a consumer (THT hit, IKT hit, or training hit).
  /// Bounded: at most the configured cap entries; the overflow is counted.
  std::vector<rt::TaskId> reuse_creators;
  /// Reuse events dropped once the log hit its cap (Figure 9 needs the
  /// curve's head, not an unbounded per-hit record of a long stream).
  std::uint64_t reuse_log_dropped = 0;

  [[nodiscard]] std::uint64_t total_hits() const noexcept {
    return tht_hits + ikt_hits + l2_hits;
  }
};

/// Thread-safe counters used by the engine.
class AtmStats {
 public:
  std::atomic<std::uint64_t> tht_hits{0};
  std::atomic<std::uint64_t> tht_misses{0};
  std::atomic<std::uint64_t> ikt_hits{0};
  std::atomic<std::uint64_t> training_hits{0};
  std::atomic<std::uint64_t> training_failures{0};
  std::atomic<std::uint64_t> blacklist_skips{0};
  std::atomic<std::uint64_t> keys_computed{0};
  std::atomic<std::uint64_t> hash_ns{0};
  std::atomic<std::uint64_t> hash_bytes{0};
  std::atomic<std::uint64_t> key_gather_oob{0};
  std::atomic<std::uint64_t> copy_out_ns{0};
  std::atomic<std::uint64_t> update_ns{0};
  std::atomic<std::uint64_t> tolerance_hits{0};
  std::atomic<std::uint64_t> probe_hits{0};
  std::atomic<std::uint64_t> l2_hits{0};
  std::atomic<std::uint64_t> l2_promotions{0};
  std::atomic<std::uint64_t> l2_demotions{0};

  /// Cap on the reuse-creator log. Default keeps every Figure-9-scale run
  /// intact; long streams stop growing (and stop taking the mutex) here.
  static constexpr std::size_t kDefaultReuseLogCap = 1u << 20;

  /// Must be called before the run (not thread-safe against log_reuse).
  void set_reuse_log_cap(std::size_t cap) { reuse_log_cap_ = cap; }
  [[nodiscard]] std::size_t reuse_log_cap() const noexcept { return reuse_log_cap_; }

  void log_reuse(rt::TaskId creator) {
    // Fast path once capped: a relaxed size check keeps a long stream of
    // hits off the mutex entirely (the log can no longer change).
    // mo: relaxed — monotonic gate; the locked re-check below is exact.
    if (reuse_size_.load(std::memory_order_relaxed) >= reuse_log_cap_) {
      // mo: relaxed — monotonic statistic; snapshot() tolerates races.
      reuse_log_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    MutexLock lock(reuse_mutex_);
    if (reuse_creators_.size() >= reuse_log_cap_) {
      // mo: relaxed — monotonic statistic; snapshot() tolerates races.
      reuse_log_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    reuse_creators_.push_back(creator);
    // mo: relaxed — advisory mirror of the locked size for the fast path.
    reuse_size_.store(reuse_creators_.size(), std::memory_order_relaxed);
  }

  [[nodiscard]] AtmStatsSnapshot snapshot() const {
    AtmStatsSnapshot s;
    s.tht_hits = tht_hits.load();
    s.tht_misses = tht_misses.load();
    s.ikt_hits = ikt_hits.load();
    s.training_hits = training_hits.load();
    s.training_failures = training_failures.load();
    s.blacklist_skips = blacklist_skips.load();
    s.keys_computed = keys_computed.load();
    s.hash_ns = hash_ns.load();
    s.hash_bytes = hash_bytes.load();
    s.key_gather_oob = key_gather_oob.load();
    s.copy_out_ns = copy_out_ns.load();
    s.update_ns = update_ns.load();
    s.tolerance_hits = tolerance_hits.load();
    s.probe_hits = probe_hits.load();
    s.l2_hits = l2_hits.load();
    s.l2_promotions = l2_promotions.load();
    s.l2_demotions = l2_demotions.load();
    s.reuse_log_dropped = reuse_log_dropped_.load();
    {
      MutexLock lock(reuse_mutex_);
      s.reuse_creators = reuse_creators_;
    }
    return s;
  }

  void reset() {
    tht_hits = 0;
    tht_misses = 0;
    ikt_hits = 0;
    training_hits = 0;
    training_failures = 0;
    blacklist_skips = 0;
    keys_computed = 0;
    hash_ns = 0;
    hash_bytes = 0;
    key_gather_oob = 0;
    copy_out_ns = 0;
    update_ns = 0;
    tolerance_hits = 0;
    probe_hits = 0;
    l2_hits = 0;
    l2_promotions = 0;
    l2_demotions = 0;
    // mo: relaxed — reset() runs between measured phases, not concurrently
    // with writers; no ordering to preserve.
    reuse_log_dropped_.store(0, std::memory_order_relaxed);
    MutexLock lock(reuse_mutex_);
    reuse_creators_.clear();
    // mo: relaxed — advisory mirror of the locked size for the fast path.
    reuse_size_.store(0, std::memory_order_relaxed);
  }

 private:
  std::size_t reuse_log_cap_ = kDefaultReuseLogCap;
  std::atomic<std::size_t> reuse_size_{0};
  std::atomic<std::uint64_t> reuse_log_dropped_{0};
  mutable Mutex reuse_mutex_;
  std::vector<rt::TaskId> reuse_creators_ ATM_GUARDED_BY(reuse_mutex_);
};

}  // namespace atm

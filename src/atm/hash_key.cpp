#include "atm/hash_key.hpp"

#include "atm/input_sampler.hpp"

namespace atm {

namespace {

/// Resolve a global byte index in the concatenated-inputs view to a concrete
/// byte. Tasks have a handful of regions, so a linear scan beats binary
/// search here.
struct ConcatView {
  struct Piece {
    const std::uint8_t* data;
    std::size_t begin;  // global offset of first byte
    std::size_t end;
  };
  std::vector<Piece> pieces;

  explicit ConcatView(const rt::Task& task) {
    std::size_t off = 0;
    for (const auto& a : task.accesses) {
      if (!a.is_input()) continue;
      pieces.push_back({static_cast<const std::uint8_t*>(a.ptr), off, off + a.bytes});
      off += a.bytes;
    }
  }

  [[nodiscard]] std::uint8_t at(std::size_t global) const noexcept {
    for (const auto& p : pieces) {
      if (global < p.end) return p.data[global - p.begin];
    }
    return 0;  // unreachable for valid indexes
  }

  [[nodiscard]] std::size_t total() const noexcept {
    return pieces.empty() ? 0 : pieces.back().end;
  }
};

}  // namespace

KeyResult compute_key(const rt::Task& task, const std::vector<std::uint32_t>& order,
                      double p, std::uint64_t seed) {
  HashStream stream(seed);

  if (p >= 1.0) {
    // Static ATM / p = 100%: stream whole regions, no gather.
    std::size_t total = 0;
    for (const auto& a : task.accesses) {
      if (!a.is_input()) continue;
      stream.update(a.const_bytes());
      total += a.bytes;
    }
    return {stream.finalize(), total};
  }

  const ConcatView view(task);
  const std::size_t count = selection_count(view.total(), p);
  // Gather selected bytes into a small staging buffer so the hash core can
  // consume whole blocks; the scattered reads dominate anyway (the paper
  // observes hash-key computation is memory-bound, §V-C).
  std::uint8_t staging[512];
  std::size_t fill = 0;
  for (std::size_t i = 0; i < count; ++i) {
    staging[fill++] = view.at(order[i]);
    if (fill == sizeof staging) {
      stream.update(std::span<const std::uint8_t>(staging, fill));
      fill = 0;
    }
  }
  if (fill != 0) stream.update(std::span<const std::uint8_t>(staging, fill));
  return {stream.finalize(), count};
}

}  // namespace atm

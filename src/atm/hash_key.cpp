#include "atm/hash_key.hpp"

#include <cassert>

#include "atm/input_sampler.hpp"

namespace atm {

namespace {

/// Resolve a global byte index in the concatenated-inputs view to a concrete
/// byte. Tasks have a handful of regions, so a linear scan beats binary
/// search here.
struct ConcatView {
  struct Piece {
    const std::uint8_t* data;
    std::size_t begin;  // global offset of first byte
    std::size_t end;
  };
  std::vector<Piece> pieces;

  explicit ConcatView(const rt::Task& task) {
    std::size_t off = 0;
    for (const auto& a : task.accesses) {
      if (!a.is_input()) continue;
      pieces.push_back({static_cast<const std::uint8_t*>(a.ptr), off, off + a.bytes});
      off += a.bytes;
    }
  }

  [[nodiscard]] std::uint8_t at(std::size_t global) const noexcept {
    for (const auto& p : pieces) {
      if (global < p.end) return p.data[global - p.begin];
    }
    // An index past the last region means the caller's order/plan was built
    // for a different layout — the key would silently alias another task's.
    // Fail loudly in Debug instead of hashing fabricated zero bytes.
    assert(false && "ConcatView::at: byte index out of range of the task's inputs");
    return 0;
  }

  [[nodiscard]] std::size_t total() const noexcept {
    return pieces.empty() ? 0 : pieces.back().end;
  }
};

}  // namespace

KeyResult compute_key(const rt::Task& task, const std::vector<std::uint32_t>& order,
                      double p, std::uint64_t seed) {
  HashStream stream(seed);

  if (p >= 1.0) {
    // Static ATM / p = 100%: stream whole regions, no gather.
    std::size_t total = 0;
    for (const auto& a : task.accesses) {
      if (!a.is_input()) continue;
      stream.update(a.const_bytes());
      total += a.bytes;
    }
    return {stream.finalize(), total};
  }

  const ConcatView view(task);
  const std::size_t count = selection_count(view.total(), p);
  // Gather selected bytes into a small staging buffer so the hash core can
  // consume whole blocks; the scattered reads dominate anyway (the paper
  // observes hash-key computation is memory-bound, §V-C).
  std::uint8_t staging[512];
  std::size_t fill = 0;
  for (std::size_t i = 0; i < count; ++i) {
    staging[fill++] = view.at(order[i]);
    if (fill == sizeof staging) {
      stream.update(std::span<const std::uint8_t>(staging, fill));
      fill = 0;
    }
  }
  if (fill != 0) stream.update(std::span<const std::uint8_t>(staging, fill));
  return {stream.finalize(), count};
}

KeyResult compute_key(const rt::Task& task, const GatherPlan& plan,
                      std::uint64_t seed) {
  HashStream stream(seed);

  // Runs are sorted by (region, offset) by construction, so one lockstep
  // walk over the task's input regions consumes them all — no allocation,
  // no per-byte region resolution. Sampled selections produce mostly short
  // runs (type-aware mode picks stride-elem_size MSB positions), so short
  // runs are gathered into a staging block first and hashed in bulk: the
  // HashStream per-call cost is paid per ~4 KiB, not per run.
  std::uint8_t staging[4096];
  std::size_t fill = 0;
  auto flush = [&] {
    stream.update(std::span<const std::uint8_t>(staging, fill));
    fill = 0;
  };

  std::size_t run_idx = 0;
  std::uint32_t region = 0;
  for (const auto& a : task.accesses) {
    if (!a.is_input()) continue;
    const auto* base = static_cast<const std::uint8_t*>(a.ptr);
    while (run_idx < plan.runs.size() && plan.runs[run_idx].region == region) {
      const GatherPlan::Run& run = plan.runs[run_idx++];
      assert(static_cast<std::size_t>(run.offset) + run.length <= a.bytes &&
             "GatherPlan run exceeds its region: plan built for another layout");
      if (run.length == 1) {
        // Dominant case under type-aware sampling: the selection is the MSB
        // of every element, stride elem_size apart — nothing coalesces.
        if (fill == sizeof staging) flush();
        staging[fill++] = base[run.offset];
        continue;
      }
      if (run.length >= sizeof staging / 4) {
        // Long run (contiguous selection / p near 1): stream it directly.
        if (fill != 0) flush();
        stream.update(std::span<const std::uint8_t>(base + run.offset, run.length));
        continue;
      }
      if (fill + run.length > sizeof staging) flush();
      std::memcpy(staging + fill, base + run.offset, run.length);
      fill += run.length;
    }
    ++region;
  }
  if (fill != 0) flush();
  assert(run_idx == plan.runs.size() &&
         "GatherPlan names regions the task does not have");
  return {stream.finalize(), plan.bytes};
}

}  // namespace atm

#include "atm/hash_key.hpp"

#include <cstring>

#include "atm/input_sampler.hpp"

namespace atm {

namespace {

/// Resolve a global byte index in the concatenated-inputs view to a concrete
/// byte. Tasks have a handful of regions, so a linear scan beats binary
/// search here.
struct ConcatView {
  struct Piece {
    const std::uint8_t* data;
    std::size_t begin;  // global offset of first byte
    std::size_t end;
  };
  std::vector<Piece> pieces;

  explicit ConcatView(const rt::Task& task) {
    std::size_t off = 0;
    for (const auto& a : task.accesses) {
      // Zero-length inputs contribute no bytes — and must not become
      // pieces, so the clamp below can rely on pieces.back() being
      // non-empty.
      if (!a.is_input() || a.bytes == 0) continue;
      pieces.push_back({static_cast<const std::uint8_t*>(a.ptr), off, off + a.bytes});
      off += a.bytes;
    }
  }

  /// Resolve `global`, clamping out-of-range indexes to the last input byte
  /// and counting them in *oob: an index past the last region means the
  /// caller's order was built for a different layout. Hashing the clamped
  /// byte keeps the digest deterministic without reading out of bounds —
  /// in every build type, not just when asserts are on.
  [[nodiscard]] std::uint8_t at(std::size_t global, std::size_t* oob) const noexcept {
    for (const auto& p : pieces) {
      if (global < p.end) return p.data[global - p.begin];
    }
    ++*oob;
    if (pieces.empty()) return 0;
    const Piece& last = pieces.back();
    return last.data[last.end - last.begin - 1];
  }

  [[nodiscard]] std::size_t total() const noexcept {
    return pieces.empty() ? 0 : pieces.back().end;
  }
};

}  // namespace

KeyResult compute_key(const rt::Task& task, const std::vector<std::uint32_t>& order,
                      double p, std::uint64_t seed) {
  HashStream stream(seed);

  if (p >= 1.0) {
    // Static ATM / p = 100%: stream whole regions, no gather.
    std::size_t total = 0;
    for (const auto& a : task.accesses) {
      if (!a.is_input()) continue;
      stream.update(a.const_bytes());
      total += a.bytes;
    }
    return {stream.finalize(), total};
  }

  const ConcatView view(task);
  const std::size_t count = selection_count(view.total(), p);
  // Gather selected bytes into a small staging buffer so the hash core can
  // consume whole blocks; the scattered reads dominate anyway (the paper
  // observes hash-key computation is memory-bound, §V-C).
  std::uint8_t staging[512];
  std::size_t fill = 0;
  std::size_t oob = 0;
  for (std::size_t i = 0; i < count; ++i) {
    staging[fill++] = view.at(i < order.size() ? order[i] : view.total(), &oob);
    if (fill == sizeof staging) {
      stream.update(std::span<const std::uint8_t>(staging, fill));
      fill = 0;
    }
  }
  if (fill != 0) stream.update(std::span<const std::uint8_t>(staging, fill));
  return {stream.finalize(), count, oob};
}

KeyResult compute_key(const rt::Task& task, const GatherPlan& plan,
                      std::uint64_t seed) {
  HashStream stream(seed);

  // Runs are sorted by (region, offset) by construction, so one lockstep
  // walk over the task's input regions consumes them all — no allocation,
  // no per-byte region resolution. Sampled selections produce mostly short
  // runs (type-aware mode picks stride-elem_size MSB positions), so short
  // runs are gathered into a staging block first and hashed in bulk: the
  // HashStream per-call cost is paid per ~4 KiB, not per run.
  std::uint8_t staging[4096];
  std::size_t fill = 0;
  auto flush = [&] {
    stream.update(std::span<const std::uint8_t>(staging, fill));
    fill = 0;
  };

  std::size_t run_idx = 0;
  std::size_t oob = 0;
  std::size_t hashed = 0;
  std::uint32_t region = 0;
  for (const auto& a : task.accesses) {
    if (!a.is_input()) continue;
    const auto* base = static_cast<const std::uint8_t*>(a.ptr);
    while (run_idx < plan.runs.size() && plan.runs[run_idx].region == region) {
      const GatherPlan::Run& run = plan.runs[run_idx++];
      // A run reaching past its region means the plan was built for another
      // layout: clamp to the region's real extent and count the shortfall
      // (key_gather_oob) instead of hashing out-of-bounds bytes — in every
      // build type, not just when asserts are on.
      std::size_t offset = run.offset;
      std::size_t length = run.length;
      if (offset >= a.bytes) {
        oob += length;
        continue;
      }
      if (offset + length > a.bytes) {
        oob += offset + length - a.bytes;
        length = a.bytes - offset;
      }
      hashed += length;
      if (length == 1) {
        // Dominant case under type-aware sampling: the selection is the MSB
        // of every element, stride elem_size apart — nothing coalesces.
        if (fill == sizeof staging) flush();
        staging[fill++] = base[offset];
        continue;
      }
      if (length >= sizeof staging / 4) {
        // Long run (contiguous selection / p near 1): stream it directly.
        if (fill != 0) flush();
        stream.update(std::span<const std::uint8_t>(base + offset, length));
        continue;
      }
      if (fill + length > sizeof staging) flush();
      std::memcpy(staging + fill, base + offset, length);
      fill += length;
    }
    ++region;
  }
  if (fill != 0) flush();
  // Leftover runs name regions the task does not have: count, don't touch.
  for (; run_idx < plan.runs.size(); ++run_idx) oob += plan.runs[run_idx].length;
  return {stream.finalize(), hashed, oob};
}

}  // namespace atm

#include "atm/hash_key.hpp"

#include <algorithm>
#include <cstring>

#include "atm/input_sampler.hpp"

namespace atm {

namespace {

/// Resolve a global byte index in the concatenated-inputs view to a concrete
/// byte. Tasks have a handful of regions, so a linear scan beats binary
/// search here.
struct ConcatView {
  struct Piece {
    const std::uint8_t* data;
    std::size_t begin;  // global offset of first byte
    std::size_t end;
  };
  std::vector<Piece> pieces;

  explicit ConcatView(const rt::Task& task) {
    std::size_t off = 0;
    for (const auto& a : task.accesses) {
      // Zero-length inputs contribute no bytes — and must not become
      // pieces, so the clamp below can rely on pieces.back() being
      // non-empty.
      if (!a.is_input() || a.bytes == 0) continue;
      pieces.push_back({static_cast<const std::uint8_t*>(a.ptr), off, off + a.bytes});
      off += a.bytes;
    }
  }

  /// Resolve `global`, clamping out-of-range indexes to the last input byte
  /// and counting them in *oob: an index past the last region means the
  /// caller's order was built for a different layout. Hashing the clamped
  /// byte keeps the digest deterministic without reading out of bounds —
  /// in every build type, not just when asserts are on.
  [[nodiscard]] std::uint8_t at(std::size_t global, std::size_t* oob) const noexcept {
    for (const auto& p : pieces) {
      if (global < p.end) return p.data[global - p.begin];
    }
    ++*oob;
    if (pieces.empty()) return 0;
    const Piece& last = pieces.back();
    return last.data[last.end - last.begin - 1];
  }

  [[nodiscard]] std::size_t total() const noexcept {
    return pieces.empty() ? 0 : pieces.back().end;
  }
};

// --- tolerance-quantized keys (src/atm/tolerance.hpp) ------------------------

/// Only elements whose quantized position is at least this far from the cell
/// center (in cell widths, max 0.5 at the boundary) become probe candidates:
/// an element sitting mid-cell cannot have drifted in from a neighbor cell
/// under any in-tolerance jitter, so probing it would be wasted lookups.
constexpr double kProbeBand = 0.25;

/// Zobrist XOR accumulator for tolerance-mode keys. Elements are fed in
/// ascending layout order by both gather paths; since XOR commutes, the
/// digest would agree even if they were not — but the probe ranking below
/// breaks |frac| ties by feed order, so keeping the order identical makes
/// the full KeyResult (probes included) agree between the plan path and the
/// order path.
class QuantAccumulator {
 public:
  QuantAccumulator(std::uint64_t seed, const ToleranceSpec& spec) noexcept
      : seed_(seed), spec_(spec), max_probes_(spec.clamped_probes()) {}

  /// Feed one element. `global_off` is the byte offset of the element start
  /// in the concatenated-inputs view (the position salt — identical for
  /// both gather paths by construction). Elements of non-float regions and
  /// partial trailing float elements match exactly via their raw bits.
  void add(rt::ElemType elem, const std::uint8_t* data, std::size_t avail,
           std::size_t global_off) noexcept {
    std::uint64_t raw = 0;
    std::memcpy(&raw, data, avail < 8 ? avail : 8);
    const std::uint64_t pos =
        splitmix64(seed_ ^ (static_cast<std::uint64_t>(global_off) *
                            0x9e3779b97f4a7c15ull));
    Quantized q;
    if (elem == rt::ElemType::F64 && avail == 8) {
      double v;
      std::memcpy(&v, data, 8);
      q = quantize_value(v, raw, spec_);
    } else if (elem == rt::ElemType::F32 && avail >= 4) {
      float f;
      std::memcpy(&f, data, 4);
      q = quantize_value(static_cast<double>(f), raw, spec_,
                         std::fpclassify(f) == FP_SUBNORMAL);
    } else {
      q.cell = splitmix64(raw ^ (static_cast<std::uint64_t>(avail) << 56));
    }
    const std::uint64_t contrib = splitmix64(pos ^ splitmix64(q.cell));
    acc_ ^= contrib;
    ++count_;

    if (max_probes_ == 0 || !q.probeable) return;
    const double score = q.frac < 0.0 ? -q.frac : q.frac;
    if (score < kProbeBand) return;
    if (cand_count_ == max_probes_ && score <= cands_[cand_count_ - 1].score) return;
    // Keep the candidate list sorted: closest to the boundary first, feed
    // order breaking ties (insertion into <= kMaxKeyProbes slots).
    const Candidate c{score, contrib ^ splitmix64(pos ^ splitmix64(q.neighbor))};
    unsigned i = cand_count_ < max_probes_ ? cand_count_++ : max_probes_ - 1;
    for (; i > 0 && cands_[i - 1].score < score; --i) cands_[i] = cands_[i - 1];
    cands_[i] = c;
  }

  [[nodiscard]] KeyResult finalize(std::size_t bytes_hashed,
                                   std::size_t oob) const noexcept {
    KeyResult r;
    // Mix the element count into the base so {x} and {x, x-at-same-cell...}
    // style prefix layouts cannot alias; the base is probe-invariant.
    r.key = splitmix64(seed_ ^ splitmix64(count_)) ^ acc_;
    r.bytes_hashed = bytes_hashed;
    r.oob = oob;
    r.probe_count = cand_count_;
    // A probe key flips exactly one near-boundary element to its adjacent
    // cell: XOR out the element's contribution, XOR in the neighbor's.
    for (unsigned i = 0; i < cand_count_; ++i) r.probes[i] = r.key ^ cands_[i].delta;
    return r;
  }

 private:
  struct Candidate {
    double score = 0.0;    ///< |frac|: distance from cell center
    std::uint64_t delta = 0;  ///< contrib(cell) ^ contrib(neighbor)
  };

  std::uint64_t seed_;
  const ToleranceSpec& spec_;
  unsigned max_probes_;
  std::uint64_t acc_ = 0;
  std::uint64_t count_ = 0;
  unsigned cand_count_ = 0;
  std::array<Candidate, kMaxKeyProbes> cands_{};
};

}  // namespace

KeyResult compute_key(const rt::Task& task, const std::vector<std::uint32_t>& order,
                      double p, std::uint64_t seed) {
  HashStream stream(seed);

  if (p >= 1.0) {
    // Static ATM / p = 100%: stream whole regions, no gather.
    std::size_t total = 0;
    for (const auto& a : task.accesses) {
      if (!a.is_input()) continue;
      stream.update(a.const_bytes());
      total += a.bytes;
    }
    return {stream.finalize(), total};
  }

  const ConcatView view(task);
  const std::size_t count = selection_count(view.total(), p);
  // Gather selected bytes into a small staging buffer so the hash core can
  // consume whole blocks; the scattered reads dominate anyway (the paper
  // observes hash-key computation is memory-bound, §V-C).
  std::uint8_t staging[512];
  std::size_t fill = 0;
  std::size_t oob = 0;
  for (std::size_t i = 0; i < count; ++i) {
    staging[fill++] = view.at(i < order.size() ? order[i] : view.total(), &oob);
    if (fill == sizeof staging) {
      stream.update(std::span<const std::uint8_t>(staging, fill));
      fill = 0;
    }
  }
  if (fill != 0) stream.update(std::span<const std::uint8_t>(staging, fill));
  return {stream.finalize(), count, oob};
}

KeyResult compute_key(const rt::Task& task, const GatherPlan& plan,
                      std::uint64_t seed) {
  HashStream stream(seed);

  // Runs are sorted by (region, offset) by construction, so one lockstep
  // walk over the task's input regions consumes them all — no allocation,
  // no per-byte region resolution. Sampled selections produce mostly short
  // runs (type-aware mode picks stride-elem_size MSB positions), so short
  // runs are gathered into a staging block first and hashed in bulk: the
  // HashStream per-call cost is paid per ~4 KiB, not per run.
  std::uint8_t staging[4096];
  std::size_t fill = 0;
  auto flush = [&] {
    stream.update(std::span<const std::uint8_t>(staging, fill));
    fill = 0;
  };

  std::size_t run_idx = 0;
  std::size_t oob = 0;
  std::size_t hashed = 0;
  std::uint32_t region = 0;
  for (const auto& a : task.accesses) {
    if (!a.is_input()) continue;
    const auto* base = static_cast<const std::uint8_t*>(a.ptr);
    while (run_idx < plan.runs.size() && plan.runs[run_idx].region == region) {
      const GatherPlan::Run& run = plan.runs[run_idx++];
      // A run reaching past its region means the plan was built for another
      // layout: clamp to the region's real extent and count the shortfall
      // (key_gather_oob) instead of hashing out-of-bounds bytes — in every
      // build type, not just when asserts are on.
      std::size_t offset = run.offset;
      std::size_t length = run.length;
      if (offset >= a.bytes) {
        oob += length;
        continue;
      }
      if (offset + length > a.bytes) {
        oob += offset + length - a.bytes;
        length = a.bytes - offset;
      }
      hashed += length;
      if (length == 1) {
        // Dominant case under type-aware sampling: the selection is the MSB
        // of every element, stride elem_size apart — nothing coalesces.
        if (fill == sizeof staging) flush();
        staging[fill++] = base[offset];
        continue;
      }
      if (length >= sizeof staging / 4) {
        // Long run (contiguous selection / p near 1): stream it directly.
        if (fill != 0) flush();
        stream.update(std::span<const std::uint8_t>(base + offset, length));
        continue;
      }
      if (fill + length > sizeof staging) flush();
      std::memcpy(staging + fill, base + offset, length);
      fill += length;
    }
    ++region;
  }
  if (fill != 0) flush();
  // Leftover runs name regions the task does not have: count, don't touch.
  for (; run_idx < plan.runs.size(); ++run_idx) oob += plan.runs[run_idx].length;
  return {stream.finalize(), hashed, oob};
}

KeyResult compute_key(const rt::Task& task, const GatherPlan& plan,
                      std::uint64_t seed, const ToleranceSpec& spec) {
  if (!spec.active()) return compute_key(task, plan, seed);  // raw-bytes fast path

  QuantAccumulator acc(seed, spec);
  std::size_t run_idx = 0;
  std::size_t oob = 0;
  std::size_t hashed = 0;
  std::uint32_t region = 0;
  std::size_t region_base = 0;  // global offset of this region's first byte
  for (const auto& a : task.accesses) {
    if (!a.is_input()) continue;
    const auto* base = static_cast<const std::uint8_t*>(a.ptr);
    const std::size_t esize = rt::elem_size(a.elem);
    // First element of this region not yet fed: runs ascend by offset, so a
    // run whose first element was already consumed by the previous run must
    // skip it — feeding an element twice would XOR its contribution away.
    std::size_t next_elem = 0;
    while (run_idx < plan.runs.size() && plan.runs[run_idx].region == region) {
      const GatherPlan::Run& run = plan.runs[run_idx++];
      // Same clamp-and-count discipline as the exact path: a run reaching
      // past the region means the plan was built for another layout.
      std::size_t offset = run.offset;
      std::size_t length = run.length;
      if (offset >= a.bytes) {
        oob += length;
        continue;
      }
      if (offset + length > a.bytes) {
        oob += offset + length - a.bytes;
        length = a.bytes - offset;
      }
      // Widen the sampled byte range to the elements it touches: the cell
      // of an element is a function of its full value, not of which of its
      // bytes the shuffle happened to select.
      std::size_t first = offset / esize;
      const std::size_t last = (offset + length - 1) / esize;
      if (first < next_elem) first = next_elem;
      for (std::size_t e = first; e <= last && e * esize < a.bytes; ++e) {
        const std::size_t start = e * esize;
        const std::size_t avail = std::min(esize, a.bytes - start);
        acc.add(a.elem, base + start, avail, region_base + start);
        hashed += avail;
      }
      if (last + 1 > next_elem) next_elem = last + 1;
    }
    region_base += a.bytes;
    ++region;
  }
  for (; run_idx < plan.runs.size(); ++run_idx) oob += plan.runs[run_idx].length;
  return acc.finalize(hashed, oob);
}

KeyResult compute_key(const rt::Task& task, const std::vector<std::uint32_t>& order,
                      double p, std::uint64_t seed, const ToleranceSpec& spec) {
  if (!spec.active()) return compute_key(task, order, p, seed);  // raw-bytes fast path

  // Cold path (no cached plan): resolve each selected byte to the global
  // offset of the element containing it, dedupe, and feed the elements in
  // ascending order — the same element set, in the same order, as the plan
  // path above, so the keys (probes included) agree bit-for-bit.
  struct Piece {
    const std::uint8_t* data;
    std::size_t begin;
    std::size_t bytes;
    rt::ElemType elem;
  };
  std::vector<Piece> pieces;
  std::size_t total = 0;
  for (const auto& a : task.accesses) {
    if (!a.is_input() || a.bytes == 0) continue;
    pieces.push_back(
        {static_cast<const std::uint8_t*>(a.ptr), total, a.bytes, a.elem});
    total += a.bytes;
  }

  const std::size_t count = selection_count(total, p);
  std::size_t oob = 0;
  std::vector<std::size_t> starts;  // global offsets of selected element starts
  starts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t global = i < order.size() ? order[i] : total;
    if (global >= total) {
      // Mirror the exact path's clamp-and-count: an out-of-layout index
      // resolves to the last input byte (and thus its element).
      ++oob;
      if (total == 0) continue;
      global = total - 1;
    }
    for (const auto& piece : pieces) {
      if (global < piece.begin + piece.bytes) {
        const std::size_t off = global - piece.begin;
        const std::size_t esize = rt::elem_size(piece.elem);
        starts.push_back(piece.begin + off / esize * esize);
        break;
      }
    }
  }
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());

  QuantAccumulator acc(seed, spec);
  std::size_t hashed = 0;
  std::size_t piece_idx = 0;
  for (const std::size_t start : starts) {
    while (start >= pieces[piece_idx].begin + pieces[piece_idx].bytes) ++piece_idx;
    const Piece& piece = pieces[piece_idx];
    const std::size_t off = start - piece.begin;
    const std::size_t avail = std::min(rt::elem_size(piece.elem), piece.bytes - off);
    acc.add(piece.elem, piece.data + off, avail, start);
    hashed += avail;
  }
  return acc.finalize(hashed, oob);
}

}  // namespace atm

// Dynamic ATM's adaptive training phase (paper §III-D).
//
// Per task type:
//   * start at p = 2^-15;
//   * whenever an approximated task's Chebyshev error tau >= tau_max,
//     double p (15 steps to reach 100%) and blacklist the task's output
//     pointers (outputs with chaotic behaviour; Jacobi needs this);
//   * once L_training tasks in a row approximate correctly at the current
//     p, freeze p and enter the steady state.
//
// During training every task still executes, so correctness is measured
// against ground truth at zero risk; speedups only start in steady state.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "atm/config.hpp"
#include "common/mutex.hpp"
#include "runtime/task.hpp"

namespace atm {

enum class TrainingPhase : std::uint8_t { Training, Steady };

class TrainingController {
 public:
  /// Dynamic mode: train from kMinP with the type's parameters. A warm
  /// start (store snapshot load) passes the persisted p/phase and the tasks
  /// already spent training, so the task-cap budget is not re-granted on
  /// every restart.
  explicit TrainingController(rt::AtmParams params, double initial_p = kMinP,
                              std::uint64_t task_cap = 0,
                              TrainingPhase initial_phase = TrainingPhase::Training,
                              std::uint64_t trained_tasks = 0)
      : params_(params),
        phase_(initial_phase),
        p_(initial_p),
        trained_tasks_(trained_tasks),
        task_cap_(task_cap) {}

  /// Static/FixedP modes: a controller already in steady state with the
  /// given constant p (no training ever happens).
  [[nodiscard]] static std::unique_ptr<TrainingController> make_steady(double p) {
    return std::make_unique<TrainingController>(rt::AtmParams{}, p, 0,
                                                TrainingPhase::Steady);
  }

  [[nodiscard]] TrainingPhase phase() const {
    MutexLock lock(mutex_);
    return phase_;
  }

  [[nodiscard]] double current_p() const {
    MutexLock lock(mutex_);
    return p_;
  }

  [[nodiscard]] const rt::AtmParams& params() const noexcept { return params_; }

  /// Record the verification of one training-phase approximation.
  /// Failure (tau >= tau_max) doubles p (capped at 100%) and resets the
  /// success streak; L_training consecutive successes end training.
  void report_trained(double tau);

  /// Count an executed task of this type during training; trips the
  /// optional task cap ("~5% of the tasks suffices", §IV-A).
  void note_trained_task();

  /// Record the output pointers of a task that failed verification: those
  /// outputs behave chaotically and are never memoized again (§III-D).
  void blacklist_outputs(const rt::Task& task);

  /// True when any of the task's output pointers is blacklisted.
  [[nodiscard]] bool is_blacklisted(const rt::Task& task) const;

  [[nodiscard]] std::size_t blacklist_size() const {
    MutexLock lock(mutex_);
    return unstable_outputs_.size();
  }

  /// Every p value the controller has visited (first = initial).
  [[nodiscard]] std::vector<double> p_history() const {
    MutexLock lock(mutex_);
    return p_history_;
  }

  [[nodiscard]] std::uint64_t trained_tasks() const {
    MutexLock lock(mutex_);
    return trained_tasks_;
  }

  [[nodiscard]] std::size_t memory_bytes() const {
    MutexLock lock(mutex_);
    return sizeof(*this) + unstable_outputs_.size() * (sizeof(void*) + 32) +
           p_history_.capacity() * sizeof(double);
  }

 private:
  rt::AtmParams params_;
  mutable Mutex mutex_;
  TrainingPhase phase_ ATM_GUARDED_BY(mutex_) = TrainingPhase::Training;
  double p_ ATM_GUARDED_BY(mutex_);
  std::uint32_t success_streak_ ATM_GUARDED_BY(mutex_) = 0;
  std::uint64_t trained_tasks_ ATM_GUARDED_BY(mutex_) = 0;
  std::uint64_t task_cap_ = 0;
  std::vector<double> p_history_ ATM_GUARDED_BY(mutex_){};
  std::set<const void*> unstable_outputs_ ATM_GUARDED_BY(mutex_);
};

}  // namespace atm

#include "atm/ikt.hpp"

#include "atm/tht.hpp"

namespace atm {

InFlightKeyTable::RegisterResult InFlightKeyTable::register_or_attach(
    std::uint32_t type_id, HashKey key, double p, rt::Task* task, bool allow_attach) {
  MutexLock lock(mutex_);
  for (Entry& e : entries_) {
    if (e.key == key && e.type_id == type_id && e.p == p) {
      if (allow_attach && output_shapes_match(*e.owner, *task)) {
        task->state = rt::TaskState::Deferred;
        e.pending.push_back(task);
        return RegisterResult::AttachedToTwin;
      }
      return RegisterResult::TwinBusy;
    }
  }
  entries_.push_back(Entry{type_id, key, p, task, {}});
  return RegisterResult::Registered;
}

std::vector<rt::Task*> InFlightKeyTable::retire(const rt::Task* owner) {
  MutexLock lock(mutex_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].owner == owner) {
      std::vector<rt::Task*> pending = std::move(entries_[i].pending);
      entries_[i] = std::move(entries_.back());
      entries_.pop_back();
      return pending;
    }
  }
  return {};
}

std::size_t InFlightKeyTable::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

std::size_t InFlightKeyTable::pending_count() const {
  MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const Entry& e : entries_) n += e.pending.size();
  return n;
}

std::size_t InFlightKeyTable::memory_bytes() const {
  MutexLock lock(mutex_);
  std::size_t n = sizeof(*this) + entries_.capacity() * sizeof(Entry);
  for (const Entry& e : entries_) n += e.pending.capacity() * sizeof(rt::Task*);
  return n;
}

}  // namespace atm

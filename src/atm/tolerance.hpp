// Tolerance-quantized hash keys (ROADMAP item 2; beyond the paper's exact
// sampled hashes, following hpacml-style threshold equality).
//
// The exact pipeline hashes sampled input *bytes*, so two inputs differing
// by 1 ulp never meet in the THT — noisy-sensor and iterative-convergence
// workloads see ~0% reuse. Tolerance mode instead quantizes every sampled
// float/double *element* into an error-bounded cell before hashing:
//
//   * absolute epsilon: cells are centered at k * 2*eps_abs — any value
//     within eps_abs of a center shares its cell, values more than 2*eps_abs
//     apart never do.
//   * relative epsilon: a per-sign geometric (log-space) grid with ratio
//     (1 + eps_rel)^2 — values within ~eps_rel of a cell center share it,
//     ratios beyond (1 + eps_rel)^2 never do.
//
// Non-finite and denormal values never share a cell with normal finite
// ones: NaNs collapse into one NaN cell, each infinity gets its own, and
// denormals match bit-exactly (their magnitudes are far below any sane
// epsilon, so grid-quantizing them would alias everything onto cell 0).
//
// Key composition is a Zobrist XOR: each element contributes
// splitmix64(position_hash ^ splitmix64(cell)), and the key is the XOR of
// all contributions over a seed-derived base. XOR commutativity makes the
// digest independent of gather order (the plan path and the order path
// agree, unlike the exact digest), and — the point of the scheme — flipping
// one element to a neighboring cell is an O(1) XOR delta, which is what
// makes cheap multi-probe lookup possible: a near-boundary input publishes
// up to `probes` neighbor keys, so a jittered twin that landed one cell
// over still finds the THT entry.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "common/hash.hpp"

namespace atm {

/// Upper bound on neighbor probes a key computation may emit (KeyResult
/// carries a fixed-size array to keep the hot path allocation-free).
inline constexpr unsigned kMaxKeyProbes = 8;

/// Per-task-class tolerance configuration. Inactive (both epsilons 0) means
/// exact keys — compute_key falls back to the raw-bytes digests unchanged.
struct ToleranceSpec {
  /// Relative epsilon: values within ~rel of a cell center match.
  double rel = 0.0;
  /// Absolute epsilon; takes precedence over `rel` when both are set.
  double abs = 0.0;
  /// Neighbor probe keys emitted per computation (0 = primary key only).
  unsigned probes = 0;

  [[nodiscard]] bool active() const noexcept { return rel > 0.0 || abs > 0.0; }

  [[nodiscard]] unsigned clamped_probes() const noexcept {
    return probes < kMaxKeyProbes ? probes : kMaxKeyProbes;
  }

  /// Salt for the engine's key seed: tolerance keys live in their own key
  /// space, so a quantized key can never alias an exact key of the same
  /// (type, layout), and changing epsilon invalidates prior entries.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    if (!active()) return 0;
    return splitmix64(0x70befa11edULL ^ std::bit_cast<std::uint64_t>(rel) ^
                      splitmix64(std::bit_cast<std::uint64_t>(abs)));
  }
};

/// One value's quantization result.
struct Quantized {
  std::uint64_t cell = 0;      ///< bucket id (tag-mixed for special classes)
  double frac = 0.0;           ///< signed offset from the cell center, in cell
                               ///< widths (in [-0.5, 0.5]; 0 for specials)
  bool probeable = false;      ///< grid value with a meaningful neighbor cell
  std::uint64_t neighbor = 0;  ///< nearest neighboring cell (valid iff probeable)
};

namespace tol_detail {
// Cell-id tags for the value classes that bypass the grid. Mixed through
// splitmix64 with the class payload so they cannot collide with grid cells
// (grid cell ids are also splitmix64-mixed, from a different tag).
inline constexpr std::uint64_t kGridTag = 0x9d1d;
inline constexpr std::uint64_t kNanTag = 0x4a4a;
inline constexpr std::uint64_t kInfTag = 0x14f1;
inline constexpr std::uint64_t kDenormTag = 0xde40;
inline constexpr std::uint64_t kZeroTag = 0x2e80;

[[nodiscard]] inline std::uint64_t grid_cell(std::int64_t index,
                                             bool negative) noexcept {
  // Pack the sign into bit 0 so the relative grid (which quantizes |v|)
  // keeps -v and +v apart.
  return splitmix64(kGridTag ^
                    (static_cast<std::uint64_t>(index) << 1 ^
                     static_cast<std::uint64_t>(negative)));
}
}  // namespace tol_detail

/// Quantize one sampled element value under `spec` (which must be active).
/// `raw_bits` are the element's unmodified bits, used for the exact-match
/// special classes (denormals); pass the zero-extended payload for elements
/// narrower than 8 bytes. `subnormal` forces the denormal class for values
/// whose *source* representation is subnormal (an F32 denormal widens to a
/// perfectly normal double, so the caller must classify before widening).
[[nodiscard]] inline Quantized quantize_value(double v, std::uint64_t raw_bits,
                                              const ToleranceSpec& spec,
                                              bool subnormal = false) noexcept {
  using namespace tol_detail;
  Quantized q;
  switch (subnormal ? FP_SUBNORMAL : std::fpclassify(v)) {
    case FP_NAN:
      // All NaNs share one cell: a NaN input matches exactly the runs that
      // also produced NaN there, and never a finite value.
      q.cell = splitmix64(kNanTag);
      return q;
    case FP_INFINITE:
      q.cell = splitmix64(kInfTag ^ static_cast<std::uint64_t>(v < 0.0));
      return q;
    case FP_SUBNORMAL:
      // Exact matching: denormals are orders of magnitude below any usable
      // epsilon; grid cells would collapse them all (and zero) together.
      q.cell = splitmix64(kDenormTag ^ raw_bits);
      return q;
    default:
      break;
  }

  if (spec.abs > 0.0) {
    // Absolute grid: centers at k * 2*eps (zero is the center of cell 0).
    const double step = 2.0 * spec.abs;
    const double x = v / step;
    const double r = std::nearbyint(x);
    // Values beyond the grid's index range (|x| ~ 2^62) match exactly.
    if (!(std::fabs(r) < 4.6e18)) {
      q.cell = splitmix64(kGridTag ^ raw_bits);
      return q;
    }
    const auto index = static_cast<std::int64_t>(r);
    q.cell = grid_cell(index, false);
    q.frac = x - r;
    q.probeable = true;
    q.neighbor = grid_cell(q.frac >= 0.0 ? index + 1 : index - 1, false);
    return q;
  }

  // Relative grid over |v|, sign kept separately. Cell centers are r^k with
  // r = (1 + eps)^2: a value within eps of a center stays inside the cell's
  // log-space half-width log1p(eps), and two values whose ratio exceeds r
  // are always at least one full cell apart.
  if (v == 0.0) {
    q.cell = splitmix64(kZeroTag);
    return q;
  }
  const bool negative = v < 0.0;
  const double half_width = std::log1p(spec.rel);  // > 0 since spec is active
  const double x = std::log(std::fabs(v)) / (2.0 * half_width);
  const double r = std::nearbyint(x);
  const auto index = static_cast<std::int64_t>(r);
  q.cell = grid_cell(index, negative);
  q.frac = x - r;
  q.probeable = true;
  q.neighbor = grid_cell(q.frac >= 0.0 ? index + 1 : index - 1, negative);
  return q;
}

}  // namespace atm

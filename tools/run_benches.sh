#!/usr/bin/env sh
# Run every ATM bench harness in sequence.
#
#   tools/run_benches.sh [build-dir]
#
# Benches run argument-less; scale comes from the environment:
#   ATM_SCALE    problem-size preset multiplier   (default: harness-defined)
#   ATM_THREADS  worker threads                   (default: 2)
#   ATM_REPS     repetitions for median timing    (default: 3)
#
# Build the binaries first: cmake --build <build-dir> --target bench
set -eu

BUILD_DIR="${1:-build}"

if [ ! -d "$BUILD_DIR" ]; then
  echo "error: build dir '$BUILD_DIR' not found (run cmake -B $BUILD_DIR -S . first)" >&2
  exit 1
fi

BENCHES="table1_workloads table2_params table3_memory \
         fig3_speedup fig4_correctness fig5_p_sensitivity fig6_scalability \
         fig7_trace_gs fig8_trace_blackscholes fig9_reuse_cdf \
         ablation_sizing micro_atm"

failed=0
for b in $BENCHES; do
  bin="$BUILD_DIR/$b"
  if [ ! -x "$bin" ]; then
    echo "--- skipping $b (not built)"
    continue
  fi
  echo ""
  echo "=== $b ==="
  "$bin" || { echo "--- $b FAILED"; failed=1; }
done

exit $failed

#!/usr/bin/env sh
# Run the ATM bench harnesses in sequence.
#
#   tools/run_benches.sh [build-dir] [preset] [json-out]
#
#   preset: full (default)  every harness at its native scale
#           quick           non-timing smoke: ATM_SCALE=test, ATM_REPS=1,
#                           and only the fast inspection/correctness set —
#                           validates that the harnesses run, not timings
#           json            machine-readable results: runs pr10_scale and
#                           writes BENCH_pr10.json (or [json-out]) — bench
#                           name -> ns/op for the continuity storms plus the
#                           oversubscribed/NUMA configs and steal-histogram
#                           stats. Storm bench names match
#                           BENCH_pr7/pr6/pr5/pr4/pr3.json, so the
#                           checked-in files A/B directly across PRs;
#                           earlier BENCH_prN.json files are never
#                           overwritten (append-only history). Also archives
#                           an atm_run metrics-registry snapshot next to the
#                           bench json (<out>.stats.json) when atm_run is
#                           built.
#
# Benches run argument-less; scale comes from the environment:
#   ATM_SCALE    problem-size preset multiplier   (default: harness-defined;
#                preset quick forces "test" unless already set)
#   ATM_THREADS  worker threads                   (default: 2)
#   ATM_REPS     repetitions for median timing    (default: 3; quick: 1)
#
# Build the binaries first: cmake --build <build-dir> --target bench
set -eu

BUILD_DIR="${1:-build}"
PRESET="${2:-full}"

if [ ! -d "$BUILD_DIR" ]; then
  echo "error: build dir '$BUILD_DIR' not found (run cmake -B $BUILD_DIR -S . first)" >&2
  exit 1
fi

case "$PRESET" in
  full)
    BENCHES="table1_workloads table2_params table3_memory table4_tiered_store \
             fig3_speedup fig4_correctness fig5_p_sensitivity fig6_scalability \
             fig7_trace_gs fig8_trace_blackscholes fig9_reuse_cdf \
             ablation_sizing pr3_hotpath pr4_hotpath pr5_hotpath pr6_tolerance \
             pr7_observability pr10_scale micro_atm"
    ;;
  quick)
    # The timing-heavy sweeps (fig5/fig6/ablation run 16+ full configs) are
    # skipped; the rest exercise every subsystem once at test scale.
    BENCHES="table1_workloads table2_params table3_memory table4_tiered_store \
             fig3_speedup fig4_correctness fig9_reuse_cdf"
    ATM_SCALE="${ATM_SCALE:-test}"
    ATM_REPS="${ATM_REPS:-1}"
    export ATM_SCALE ATM_REPS
    ;;
  json)
    OUT="${3:-BENCH_pr10.json}"
    bin="$BUILD_DIR/pr10_scale"
    if [ ! -x "$bin" ]; then
      echo "error: $bin not built (cmake --build $BUILD_DIR --target bench)" >&2
      exit 1
    fi
    "$bin" --out="$OUT"
    echo "wrote $OUT"
    # Archive a full metrics-registry snapshot of a representative run next
    # to the bench json: the registry names are part of the contract
    # (docs/OBSERVABILITY.md) and the archive shows what this build exported.
    if [ -x "$BUILD_DIR/atm_run" ]; then
      STATS_OUT="${OUT%.json}.stats.json"
      "$BUILD_DIR/atm_run" jacobi --preset=test --stats-json="$STATS_OUT" \
        > /dev/null
      echo "wrote $STATS_OUT"
    fi
    exit 0
    ;;
  *)
    echo "error: unknown preset '$PRESET' (full | quick | json)" >&2
    exit 2
    ;;
esac

failed=0
for b in $BENCHES; do
  bin="$BUILD_DIR/$b"
  if [ ! -x "$bin" ]; then
    echo "--- skipping $b (not built)"
    continue
  fi
  echo ""
  echo "=== $b ==="
  "$bin" || { echo "--- $b FAILED"; failed=1; }
done

exit $failed

#!/usr/bin/env python3
"""Project-invariant linter for the ATM repo.

Machine-checks conventions the compiler can't express (and that code review
keeps re-litigating):

  R1  mo-comment        Every atomic operation that names a non-seq_cst
                        memory order carries a `// mo:` rationale comment on
                        the same line or within the 4 lines above it.
  R2  hot-path-mutex    No blocking lock (atm::Mutex/CondVar or the raw std
                        types) in hot-path files: the scheduler, the
                        work-stealing deque, the THT, and the arenas. The
                        scheduler's park path is allowlisted — parking is by
                        definition the cold path.
  R3  obs-compile-out   Every hot-path instrument mutator in obs/metrics.hpp
                        (Counter::inc, Gauge::set/add, LatencyHistogram::
                        record) is gated on `kObsEnabled`, so -DATM_OBS=OFF
                        compiles it to nothing.
  R4  include-hygiene   Headers start with `#pragma once`; files that name
                        the lock wrappers include the defining header; no
                        raw <mutex>/<shared_mutex>/<condition_variable>
                        includes outside src/common/mutex.hpp.
  R5  raw-lock-types    No raw std::mutex / std::lock_guard /
                        std::unique_lock / std::shared_lock /
                        std::shared_mutex / std::condition_variable /
                        std::scoped_lock in src/ outside the wrapper itself
                        (src/common/mutex.hpp). The wrappers carry the
                        Thread Safety annotations; a raw type is a hole in
                        the analysis.

Grandfathered exceptions live in tools/lint/lint_allowlist.txt, one per
line: `<rule> <path-suffix> <line-substring>` — a finding is suppressed when
all three match. Keep that file shrinking, not growing.

Usage: python3 tools/atm_lint.py [--root REPO_ROOT]
Exits 0 on a clean tree, 1 with `path:line: [rule] message` findings.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

MO_RE = re.compile(r"memory_order_(?:relaxed|acquire|release|acq_rel|consume)")
MO_COMMENT_RE = re.compile(r"//.*\bmo:")
# A defaulted memory-order *parameter* is not an operation; the call sites
# that pass (or default) it are.
MO_DEFAULT_ARG_RE = re.compile(r"memory_order\s+\w+\s*=\s*std::memory_order_")
MO_LOOKBACK = 5

# Hot-path files for R2 (path suffixes relative to the repo root). The
# central ReadyQueue is deliberately absent: it IS the paper's locked RQ
# baseline, kept for A/B runs, and is never on the work-stealing hot path.
HOT_PATH_FILES = (
    "src/runtime/scheduler.hpp",
    "src/runtime/scheduler.cpp",
    "src/runtime/work_steal_deque.hpp",
    "src/runtime/task_arena.hpp",
    "src/atm/tht.hpp",
    "src/atm/tht.cpp",
    "src/common/buffer_arena.hpp",
    "src/common/buffer_arena.cpp",
)
BLOCKING_LOCK_RE = re.compile(
    r"\b(?:MutexLock|CondVar|SharedWriteLock|SharedReadLock)\b"
    r"|\b(?:atm::)?(?:Mutex|SharedMutex)\s+\w+"
    r"|std::(?:mutex|shared_mutex|condition_variable)"
)

RAW_LOCK_RE = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex"
    r"|lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable"
    r"|condition_variable_any)\b"
)
RAW_LOCK_EXEMPT = ("src/common/mutex.hpp",)

RAW_LOCK_INCLUDE_RE = re.compile(
    r'#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>'
)

# R4: type name -> header that must be included by any file naming it.
WRAPPER_HEADERS = {
    re.compile(r"\b(?:MutexLock|CondVar|SharedWriteLock|SharedReadLock"
               r"|atm::Mutex|atm::SharedMutex)\b"): "common/mutex.hpp",
    re.compile(r"\bSpinLockGuard\b"): "common/spin_lock.hpp",
    re.compile(r"\b(?:SharedSpinWriteLock|SharedSpinReadLock"
               r"|SharedSpinMutex)\b"): "common/shared_spin_mutex.hpp",
}

# R3: mutator name -> class, all in src/obs/metrics.hpp. The body (up to
# the next blank-brace line) must mention kObsEnabled.
OBS_MUTATORS = ("void inc(", "void set(", "void add(", "void record(")
OBS_BODY_SPAN = 8


def strip_code(lines: list[str]) -> list[str]:
    """Lines with comments and string literals blanked (structure kept)."""
    out = []
    in_block = False
    for line in lines:
        buf = []
        i = 0
        in_str = None
        while i < len(line):
            ch = line[i]
            nxt = line[i + 1] if i + 1 < len(line) else ""
            if in_block:
                if ch == "*" and nxt == "/":
                    in_block = False
                    i += 2
                    continue
                i += 1
                continue
            if in_str:
                if ch == "\\":
                    i += 2
                    continue
                if ch == in_str:
                    in_str = None
                    buf.append(ch)
                i += 1
                continue
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                in_str = ch
                buf.append(ch)
                i += 1
                continue
            buf.append(ch)
            i += 1
        out.append("".join(buf))
    return out


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.findings: list[tuple[str, int, str, str]] = []
        self.allow = self._load_allowlist()

    def _load_allowlist(self):
        allow = []
        path = self.root / "tools" / "lint" / "lint_allowlist.txt"
        if path.is_file():
            for raw in path.read_text().splitlines():
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split(None, 2)
                if len(parts) == 3:
                    allow.append(tuple(parts))
        return allow

    def report(self, path: Path, lineno: int, rule: str, msg: str,
               line: str) -> None:
        rel = path.relative_to(self.root).as_posix()
        for arule, apath, asub in self.allow:
            if arule == rule and rel.endswith(apath) and asub in line:
                return
        self.findings.append((rel, lineno, rule, msg))

    # --- R1 ---------------------------------------------------------------
    def check_mo_comments(self, path: Path, lines: list[str]) -> None:
        for n, line in enumerate(lines, 1):
            if not MO_RE.search(line):
                continue
            if MO_DEFAULT_ARG_RE.search(line):
                continue
            window = lines[max(0, n - 1 - MO_LOOKBACK):n]
            if any(MO_COMMENT_RE.search(w) for w in window):
                continue
            self.report(path, n, "R1",
                        "non-seq_cst atomic op without a `// mo:` rationale "
                        f"comment within {MO_LOOKBACK} lines above", line)

    # --- R2 ---------------------------------------------------------------
    def check_hot_path(self, path: Path, code: list[str]) -> None:
        rel = path.relative_to(self.root).as_posix()
        if rel not in HOT_PATH_FILES:
            return
        for n, line in enumerate(code, 1):
            if BLOCKING_LOCK_RE.search(line):
                self.report(path, n, "R2",
                            "blocking lock in a hot-path file (spinlocks "
                            "only here; allowlist genuinely cold paths)",
                            line)

    # --- R3 ---------------------------------------------------------------
    def check_obs_compile_out(self, path: Path, code: list[str]) -> None:
        if path.relative_to(self.root).as_posix() != "src/obs/metrics.hpp":
            return
        for n, line in enumerate(code, 1):
            if not any(m in line for m in OBS_MUTATORS):
                continue
            if ";" in line.split(")", 1)[-1] and "{" not in line:
                continue  # declaration only
            body = code[n - 1:n - 1 + OBS_BODY_SPAN]
            if not any("kObsEnabled" in b for b in body):
                self.report(path, n, "R3",
                            "instrument mutator not gated on kObsEnabled "
                            "(must compile away under ATM_OBS=OFF)", line)

    # --- R4 ---------------------------------------------------------------
    def check_include_hygiene(self, path: Path, lines: list[str],
                              code: list[str]) -> None:
        rel = path.relative_to(self.root).as_posix()
        text = "\n".join(code)
        # Includes come from the raw lines: strip_code blanks string
        # literals, which would erase every include path.
        raw_text = "\n".join(lines)
        if path.suffix == ".hpp":
            first_directive = next(
                (l.strip() for l in lines if l.strip().startswith("#")), "")
            if first_directive != "#pragma once":
                self.report(path, 1, "R4",
                            "header's first preprocessor directive must be "
                            "`#pragma once`", lines[0] if lines else "")
        includes = set(re.findall(r'#\s*include\s*"([^"]+)"', raw_text))
        if path.suffix == ".cpp":
            # A .cpp is self-contained through its own header: foo.cpp
            # including foo.hpp inherits the wrapper includes the header
            # already carries (headers stay strictly self-contained).
            stem = path.stem
            for inc in list(includes):
                if Path(inc).stem == stem:
                    inc_path = self.root / "src" / inc
                    if inc_path.is_file():
                        includes |= set(re.findall(
                            r'#\s*include\s*"([^"]+)"',
                            inc_path.read_text(encoding="utf-8")))
        for type_re, header in WRAPPER_HEADERS.items():
            if rel.endswith(header):
                continue
            if type_re.search(text) and header not in includes:
                n = next((i for i, l in enumerate(code, 1)
                          if type_re.search(l)), 1)
                self.report(path, n, "R4",
                            f'names {type_re.pattern.split("|")[0]}... but '
                            f'does not include "{header}"', code[n - 1])
        if not rel.endswith(RAW_LOCK_EXEMPT):
            for n, line in enumerate(code, 1):
                if RAW_LOCK_INCLUDE_RE.search(line):
                    self.report(path, n, "R4",
                                "raw lock header include outside "
                                "src/common/mutex.hpp (use the annotated "
                                "wrappers)", line)

    # --- R5 ---------------------------------------------------------------
    def check_raw_lock_types(self, path: Path, code: list[str]) -> None:
        rel = path.relative_to(self.root).as_posix()
        if any(rel.endswith(e) for e in RAW_LOCK_EXEMPT):
            return
        for n, line in enumerate(code, 1):
            if RAW_LOCK_RE.search(line):
                self.report(path, n, "R5",
                            "raw std lock type outside src/common/mutex.hpp "
                            "(use the annotated wrappers so Thread Safety "
                            "Analysis sees it)", line)

    # ----------------------------------------------------------------------
    def run(self) -> int:
        files = sorted((self.root / "src").rglob("*.hpp")) + \
                sorted((self.root / "src").rglob("*.cpp"))
        for path in files:
            lines = path.read_text(encoding="utf-8").splitlines()
            code = strip_code(lines)
            self.check_mo_comments(path, lines)
            self.check_hot_path(path, code)
            self.check_obs_compile_out(path, code)
            self.check_include_hygiene(path, lines, code)
            self.check_raw_lock_types(path, code)
        for rel, lineno, rule, msg in self.findings:
            print(f"{rel}:{lineno}: [{rule}] {msg}")
        if self.findings:
            print(f"atm_lint: {len(self.findings)} finding(s)")
            return 1
        print(f"atm_lint: clean ({len(files)} files)")
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent.parent)
    args = ap.parse_args()
    return Linter(args.root.resolve()).run()


if __name__ == "__main__":
    sys.exit(main())

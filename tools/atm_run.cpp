// atm_run — command-line driver for the ATM benchmarks.
//
//   atm_run [app] [options]
//
//   app                    blackscholes | gauss-seidel | jacobi | kmeans |
//                          lu | swaptions | all            (default: all)
//   --mode=M               off | static | dynamic | fixed  (default: static)
//   --p=F                  fixed-p value for --mode=fixed   (default: 1.0)
//   --threads=N            worker threads                   (default: 2)
//   --sched=S              steal | central ready-task scheduler (default: steal)
//   --taskwait=T           help | park: helping barrier (the master drains/
//                          steals tasks at taskwait) or the paper's parking
//                          condvar barrier                 (default: help)
//   --graph-shards=K       2^K dependence-tracker shards on the submit
//                          path (default: 4; 0 = single lock)
//   --preset=P             test | bench | paper             (default: bench)
//   --no-ikt               disable the In-flight Key Table
//   --no-type-aware        uniform byte shuffling (§III-C off)
//   --verify-full-inputs   §III-E full-input check on exact hits
//   --lru                  LRU eviction instead of FIFO
//   --n=K  --m=K           THT sizing: 2^n buckets, m entries per bucket
//   --l2                   enable the L2 capacity tier behind the THT
//   --l2-budget-mb=K       L2 byte budget in MiB            (default: 64)
//   --l2-shards=K          2^K L2 shards                    (default: 4)
//   --l2-compress          RLE-compress demoted snapshots
//   --save-store=PATH      persist THT + L2 + p-controllers after the run
//   --load-store=PATH      warm-start from a saved store (zero training);
//                          a missing/corrupt/version- or endianness-
//                          mismatched snapshot aborts the run (exit 2)
//   --tolerance[=F]        tolerance-quantized memo keys: relative epsilon F
//                          (bare --tolerance uses each app's preset)
//   --tolerance-abs=F      absolute epsilon (overrides relative on overlap)
//   --probes=K             multi-probe lookups: also try K quantization
//                          neighbors on a primary-key miss   (default: 0)
//   --noise=F              noisy-sensor demo: re-read inputs each iteration
//                          with relative jitter F (deterministic per
//                          iteration, so --baseline stays an exact reference)
//   --trace                print the per-core ASCII timeline
//   --trace-json=FILE      record the full timeline and write it as Chrome
//                          trace-event JSON (chrome://tracing / Perfetto);
//                          with app=all, FILE gains a per-app suffix
//   --stats                print runtime observability per app: two-level
//                          dependence-index counters (exact hits / tree
//                          fallbacks / prune scans) and scheduler gauges
//                          (adaptive inbox batch cap, steal misses)
//   --stats-json=FILE      dump the end-of-run metrics-registry snapshot
//                          (every counter/gauge/histogram by name) as JSON
//   --metrics-json=FILE    run the background sampler and dump its time
//                          series as JSON (starts it at 10ms if no
//                          --stats-interval was given)
//   --metrics-csv=FILE     same series as CSV (counters/gauges only)
//   --stats-interval=MS    sampler period; also echoes one live stderr
//                          line per tick
//   --profile              per-task-type execution-latency histograms
//                          (task.<type>.exec_ns; two extra clock reads
//                          per task)
//   --profile-types=N      cap on distinct task-type ids carrying per-type
//                          profiles; types with id >= N run unprofiled
//                          (default: 256)
//   --numa[=P]             off | first-touch | interleave: best-effort NUMA
//                          placement of task-arena slabs and dependence-
//                          tracker shards (bare --numa = interleave; always
//                          a silent no-op on single-node hosts)
//   --baseline             also run mode=off and report speedup/correctness
#include <cstdio>
#include <cstring>
#include <iostream>
#include <span>
#include <string>

#include "apps/app_registry.hpp"
#include "atm/error_metric.hpp"
#include "common/table.hpp"
#include "obs/trace_export.hpp"
#include "store/snapshot_io.hpp"

namespace {

using namespace atm;
using namespace atm::apps;

struct Options {
  std::string app = "all";
  RunConfig config{.threads = 2, .mode = AtmMode::Static};
  Preset preset = Preset::Bench;
  bool trace = false;
  bool stats = false;
  bool baseline = false;
  bool tol_preset = false;  ///< bare --tolerance: use each app's epsilon preset
  std::string trace_json;   ///< Chrome trace-event output path ("" = off)
  std::string stats_json;   ///< registry-snapshot output path ("" = off)
  std::string metrics_json; ///< sampler-series JSON output path ("" = off)
  std::string metrics_csv;  ///< sampler-series CSV output path ("" = off)
};

/// With app=all every app writes its own file: out.json -> out.jacobi.json.
std::string per_app_path(const std::string& path, const std::string& app_name,
                         bool multi) {
  if (!multi) return path;
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.rfind('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + "." + app_name;
  }
  return path.substr(0, dot) + "." + app_name + path.substr(dot);
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "atm_run: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

/// Every sampled gauge becomes a Chrome counter track next to the lanes, so
/// Perfetto shows e.g. arena occupancy over the same time axis as the states.
std::vector<obs::CounterTrack> sampler_counter_tracks(
    const obs::MetricsSampler::Series& series) {
  std::vector<obs::CounterTrack> tracks;
  for (const obs::RegistrySnapshot& snap : series.samples) {
    for (const obs::MetricSample& m : snap.metrics) {
      if (m.kind != obs::MetricKind::Gauge) continue;
      obs::CounterTrack* track = nullptr;
      for (obs::CounterTrack& t : tracks) {
        if (t.name == m.name) {
          track = &t;
          break;
        }
      }
      if (track == nullptr) {
        tracks.push_back({m.name, {}});
        track = &tracks.back();
      }
      track->points.emplace_back(snap.t_ns, m.value);
    }
  }
  return tracks;
}

bool parse_flag(const char* arg, const char* name, const char** value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = "";
    return true;
  }
  if (arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [app] [--mode=off|static|dynamic|fixed] [--p=F]\n"
               "          [--threads=N] [--sched=steal|central] [--taskwait=help|park]\n"
               "          [--graph-shards=K] [--preset=test|bench|paper] [--no-ikt]\n"
               "          [--no-type-aware] [--verify-full-inputs] [--lru]\n"
               "          [--n=K] [--m=K] [--l2] [--l2-budget-mb=K] [--l2-shards=K]\n"
               "          [--l2-compress] [--save-store=PATH] [--load-store=PATH]\n"
               "          [--tolerance[=F]] [--tolerance-abs=F] [--probes=K] [--noise=F]\n"
               "          [--trace] [--trace-json=FILE] [--stats] [--stats-json=FILE]\n"
               "          [--metrics-json=FILE] [--metrics-csv=FILE]\n"
               "          [--stats-interval=MS] [--profile] [--profile-types=N]\n"
               "          [--numa[=off|first-touch|interleave]] [--baseline]\n",
               argv0);
  return 2;
}

bool parse(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (arg[0] != '-') {
      opts->app = arg;
    } else if (parse_flag(arg, "--mode", &value)) {
      const std::string m = value;
      if (m == "off") opts->config.mode = AtmMode::Off;
      else if (m == "static") opts->config.mode = AtmMode::Static;
      else if (m == "dynamic") opts->config.mode = AtmMode::Dynamic;
      else if (m == "fixed") opts->config.mode = AtmMode::FixedP;
      else return false;
    } else if (parse_flag(arg, "--p", &value)) {
      opts->config.fixed_p = std::strtod(value, nullptr);
    } else if (parse_flag(arg, "--threads", &value)) {
      opts->config.threads = static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (parse_flag(arg, "--sched", &value)) {
      const std::string s = value;
      if (s == "steal") opts->config.sched = rt::SchedPolicy::Steal;
      else if (s == "central") opts->config.sched = rt::SchedPolicy::Central;
      else return false;
    } else if (parse_flag(arg, "--taskwait", &value)) {
      const std::string t = value;
      if (t == "help") opts->config.help_taskwait = true;
      else if (t == "park") opts->config.help_taskwait = false;
      else return false;
    } else if (parse_flag(arg, "--graph-shards", &value)) {
      opts->config.graph_log2_shards =
          static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (parse_flag(arg, "--preset", &value)) {
      const std::string p = value;
      if (p == "test") opts->preset = Preset::Test;
      else if (p == "bench") opts->preset = Preset::Bench;
      else if (p == "paper") opts->preset = Preset::Paper;
      else return false;
    } else if (parse_flag(arg, "--no-ikt", &value)) {
      opts->config.use_ikt = false;
    } else if (parse_flag(arg, "--no-type-aware", &value)) {
      opts->config.type_aware = false;
    } else if (parse_flag(arg, "--verify-full-inputs", &value)) {
      opts->config.verify_full_inputs = true;
    } else if (parse_flag(arg, "--lru", &value)) {
      opts->config.eviction = EvictionPolicy::Lru;
    } else if (parse_flag(arg, "--l2-budget-mb", &value)) {
      opts->config.l2_enabled = true;
      opts->config.l2_budget_bytes =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10)) << 20;
    } else if (parse_flag(arg, "--l2-shards", &value)) {
      opts->config.l2_enabled = true;
      opts->config.l2_log2_shards =
          static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (parse_flag(arg, "--l2-compress", &value)) {
      opts->config.l2_enabled = true;
      opts->config.l2_compress = true;
    } else if (parse_flag(arg, "--l2", &value)) {
      opts->config.l2_enabled = true;
    } else if (parse_flag(arg, "--save-store", &value)) {
      opts->config.save_store_path = value;
    } else if (parse_flag(arg, "--load-store", &value)) {
      opts->config.load_store_path = value;
    } else if (parse_flag(arg, "--n", &value)) {
      opts->config.log2_buckets = static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (parse_flag(arg, "--m", &value)) {
      opts->config.bucket_capacity =
          static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (parse_flag(arg, "--tolerance-abs", &value)) {
      opts->config.tolerance_abs = std::strtod(value, nullptr);
    } else if (parse_flag(arg, "--tolerance", &value)) {
      if (value[0] == '\0') {
        opts->tol_preset = true;  // resolved per app in run_one
      } else {
        opts->config.tolerance_rel = std::strtod(value, nullptr);
      }
    } else if (parse_flag(arg, "--probes", &value)) {
      opts->config.tolerance_probes =
          static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (parse_flag(arg, "--noise", &value)) {
      opts->config.input_noise = std::strtod(value, nullptr);
    } else if (parse_flag(arg, "--numa", &value)) {
      // Bare --numa selects interleave (parse_numa_policy's empty-string
      // default); unknown policies are a usage error.
      if (!parse_numa_policy(value, &opts->config.numa)) return false;
    } else if (parse_flag(arg, "--trace-json", &value)) {
      opts->trace_json = value;
      opts->config.tracing = true;
    } else if (parse_flag(arg, "--trace", &value)) {
      opts->trace = true;
      opts->config.tracing = true;
    } else if (parse_flag(arg, "--stats-json", &value)) {
      opts->stats_json = value;
    } else if (parse_flag(arg, "--stats-interval", &value)) {
      opts->config.metrics_interval_ms = std::strtoull(value, nullptr, 10);
      opts->config.metrics_live = true;
    } else if (parse_flag(arg, "--metrics-json", &value)) {
      opts->metrics_json = value;
    } else if (parse_flag(arg, "--metrics-csv", &value)) {
      opts->metrics_csv = value;
    } else if (parse_flag(arg, "--profile-types", &value)) {
      opts->config.profile_max_types =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (parse_flag(arg, "--profile", &value)) {
      opts->config.profile_tasks = true;
    } else if (parse_flag(arg, "--stats", &value)) {
      opts->stats = true;
    } else if (parse_flag(arg, "--baseline", &value)) {
      opts->baseline = true;
    } else {
      return false;
    }
  }
  // The sampler series is what --metrics-json/--metrics-csv dump; start it
  // at a default period when the caller asked for the dump but no interval.
  if ((!opts->metrics_json.empty() || !opts->metrics_csv.empty()) &&
      opts->config.metrics_interval_ms == 0) {
    opts->config.metrics_interval_ms = 10;
  }
  return true;
}

void run_one(const App& app, const Options& opts, TablePrinter* table,
             TablePrinter* stats_table) {
  RunConfig config = opts.config;
  if (opts.tol_preset && config.tolerance_rel == 0.0) {
    config.tolerance_rel = app.tolerance_preset();
  }
  RunResult baseline;
  if (opts.baseline) {
    // Same inputs (the per-iteration jitter is deterministic), memoization
    // off: the exact reference for speedup and output error.
    RunConfig off = config;
    off.mode = AtmMode::Off;
    off.tracing = false;
    baseline = app.run(off);
  }
  const RunResult run = app.run(config);

  const bool l2 = opts.config.l2_enabled;
  const bool tol = config.tolerance_rel > 0.0 || config.tolerance_abs > 0.0;
  std::string tol_cell = "-";
  if (tol) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.0e/%u",
                  config.tolerance_abs > 0.0 ? config.tolerance_abs
                                             : config.tolerance_rel,
                  config.tolerance_probes);
    tol_cell = buf;
  }
  std::vector<std::string> row{
      app.name(),
      atm_mode_name(opts.config.mode),
      fmt_double(run.wall_seconds * 1e3, 1) + " ms",
      fmt_percent(run.reuse_fraction()),
      std::to_string(run.counters.submitted),
      std::to_string(run.atm.tht_hits),
      std::to_string(run.atm.ikt_hits),
      // L2 traffic: hits (all promoted) / demotions from THT evictions.
      l2 ? std::to_string(run.atm.l2_hits) + "/" + std::to_string(run.atm.l2_demotions)
         : "-",
      run.final_p > 0 ? fmt_percent(run.final_p, 4) : "-",
      fmt_bytes(run.atm_memory_bytes),
      // Resident store bytes (L2 payload + index), inside "ATM mem" above.
      l2 ? fmt_bytes(run.atm.l2_memory_bytes) : "-",
      // Tolerance matching: epsilon/probes and tolerance-path hit counts.
      tol_cell,
      tol ? std::to_string(run.atm.tolerance_hits) + "/" +
                std::to_string(run.atm.probe_hits)
          : "-",
  };
  if (opts.baseline) {
    row.push_back(fmt_speedup(baseline.wall_seconds / run.wall_seconds));
    row.push_back(fmt_double(correctness_percent(app.program_error(baseline, run)), 2) +
                  "%");
    // Measured max relative output error vs the exact reference (the bound
    // the tolerance epsilon promises to respect).
    const double max_rel = chebyshev_relative_error(
        std::span<const double>(baseline.output), std::span<const double>(run.output));
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2e", max_rel);
    row.emplace_back(buf);
  }
  table->add_row(std::move(row));

  if (stats_table != nullptr) {
    // Runtime observability: the two-level dependence-index counters (is
    // the submit path exact-dominated? are prune scans pathological?) and
    // the steal scheduler's adaptive-batch state.
    stats_table->add_row({
        app.name(),
        std::to_string(run.atm.dep_exact_hits),
        std::to_string(run.atm.dep_tree_fallbacks),
        std::to_string(run.atm.prune_scans),
        std::to_string(run.sched.inbox_batch_cap),
        std::to_string(run.sched.steal_misses),
    });
  }

  if (opts.trace && !run.ascii_timeline.empty()) {
    std::printf("\n%s trace (.idle X exec h hash m memoize c create H help):\n%s",
                app.name().c_str(), run.ascii_timeline.c_str());
  }

  const bool multi = opts.app == "all";
  if (!opts.trace_json.empty() && !run.trace_lanes.empty()) {
    const std::string json =
        obs::chrome_trace_json(run.trace_lanes, run.trace_master_lane,
                               run.depth_samples,
                               sampler_counter_tracks(run.metrics_series));
    const std::string path = per_app_path(opts.trace_json, app.name(), multi);
    if (write_file(path, json)) {
      std::fprintf(stderr, "atm_run: wrote Chrome trace %s (load in ui.perfetto.dev)\n",
                   path.c_str());
    }
  }
  if (!opts.stats_json.empty()) {
    write_file(per_app_path(opts.stats_json, app.name(), multi),
               run.metrics.to_json());
  }
  if (!opts.metrics_json.empty()) {
    write_file(per_app_path(opts.metrics_json, app.name(), multi),
               run.metrics_series.to_json());
  }
  if (!opts.metrics_csv.empty()) {
    write_file(per_app_path(opts.metrics_csv, app.name(), multi),
               run.metrics_series.to_csv());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse(argc, argv, &opts)) return usage(argv[0]);

  if (!opts.config.load_store_path.empty()) {
    // Validate the snapshot container up front (magic/version/endianness/
    // checksum — no entry materialization): a missing, truncated,
    // corrupted, version- or endianness-mismatched store must fail the run
    // with a clear diagnostic, not silently degrade into a cold start.
    // The engine performs the real load inside the run; the preflight
    // deliberately re-reads the file — checksumming here is what turns a
    // corrupted payload into exit 2 instead of the engine's warn-and-
    // continue, and the warm-start artifact is small relative to a run.
    std::string err;
    if (!store::validate(opts.config.load_store_path, &err)) {
      std::fprintf(stderr, "atm_run: --load-store failed: %s\n", err.c_str());
      return 2;
    }
  }

  std::vector<std::string> header{"Benchmark", "Mode",     "Wall",      "Reuse",
                                  "Tasks",     "THT hits", "IKT hits",  "L2 h/d",
                                  "p",         "ATM mem",  "Store mem", "Tol/Pr",
                                  "Tol h/p"};
  if (opts.baseline) {
    header.push_back("Speedup");
    header.push_back("Correctness");
    header.push_back("MaxRelErr");
  }
  TablePrinter table(std::move(header));
  TablePrinter stats_table({"Benchmark", "Dep exact", "Dep tree", "Prune scans",
                            "Batch cap", "Steal miss"});

  TablePrinter* stats = opts.stats ? &stats_table : nullptr;
  if (opts.app == "all") {
    for (const auto& app : make_all_apps(opts.preset)) {
      run_one(*app, opts, &table, stats);
    }
  } else {
    const auto app = make_app(opts.app, opts.preset);
    if (app == nullptr) {
      std::fprintf(stderr, "unknown app '%s'\n", opts.app.c_str());
      return usage(argv[0]);
    }
    run_one(*app, opts, &table, stats);
  }
  table.print(std::cout);
  if (opts.stats) {
    std::printf("\nRuntime stats (two-level dependence index / steal scheduler):\n");
    stats_table.print(std::cout);
  }
  return 0;
}

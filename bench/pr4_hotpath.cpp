// PR 4 hot-path benchmark: machine-readable numbers for the task-arena +
// eager-retirement lifecycle and the sharded submit path. Emits JSON
// (bench name -> ns/op plus derived ratios), consumed by
// `tools/run_benches.sh <build> json`, which writes BENCH_pr4.json.
//
//   pr4_hotpath [--out=PATH]     (default: JSON to stdout)
//
// Sections:
//   sched_storm_{central,steal}_tN   fine-grained task storm through the
//                                    full runtime, ns per task — same
//                                    harness and names as BENCH_pr3.json,
//                                    so the two files A/B directly
//   stream_submit_steal_tN           barrier-free 200k-task stream (the
//                                    eager-retirement path), ns per task
//   stream_peak_arena_slots          records resident at the stream's peak
//                                    (gauge; bounded == retirement works)
//   tht_lookup_hit_t{1,4}            THT lookup_and_copy under the per-
//                                    bucket SharedSpinMutex, ns per hit
//   reuse_percent_blackscholes_static  sanity: memoization still reuses
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "atm/tht.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "runtime/scheduler.hpp"

namespace {

using namespace atm;
using namespace atm::bench;

struct Entry {
  std::string name;
  double value = 0.0;
  const char* unit = "ns_per_op";
};

double storm_ns_per_task(rt::SchedPolicy sched, unsigned threads, int reps) {
  const std::size_t tasks = 20'000;
  const int waves = 5;
  const double rate = sched_storm_median(sched, threads, tasks, waves, reps);
  return 1e9 / rate;
}

/// Barrier-free stream: one taskwait at the very end. Measures the eager-
/// retirement submit path and samples the arena's peak occupancy.
double stream_ns_per_task(unsigned threads, int reps, std::size_t* peak_slots) {
  const std::size_t tasks = 200'000;
  const std::size_t kCells = 1024;
  std::vector<double> rates;
  *peak_slots = 0;
  for (int r = 0; r < reps; ++r) {
    rt::Runtime runtime({.num_threads = threads, .sched = rt::SchedPolicy::Steal});
    const auto* type =
        runtime.register_type({.name = "fine", .memoizable = false, .atm = {}});
    std::vector<float> cells(kCells, 1.0f);
    Timer timer;
    for (std::size_t i = 0; i < tasks; ++i) {
      float* cell = &cells[i % kCells];
      runtime.submit(type, [cell] { *cell += 1.0f; }, {rt::inout(cell, 1)});
      if ((i & 0x3fff) == 0) {
        *peak_slots = std::max(*peak_slots, runtime.arena_stats().slots);
      }
    }
    runtime.taskwait();
    const double secs = timer.elapsed_s();
    *peak_slots = std::max(*peak_slots, runtime.arena_stats().slots);
    rates.push_back(static_cast<double>(tasks) / secs);
  }
  std::sort(rates.begin(), rates.end());
  return 1e9 / rates[rates.size() / 2];
}

/// THT steady-state hit path: lookup_and_copy on a prefilled table, with
/// `threads` concurrent readers hammering disjoint key streams.
double tht_lookup_hit_ns(unsigned threads) {
  constexpr std::size_t kEntries = 1024;
  constexpr std::size_t kFloats = 64;  // 256-byte snapshots
  TaskHistoryTable tht(/*log2_buckets=*/8, /*bucket_capacity=*/16);
  std::vector<float> producer_out(kFloats, 1.5f);
  rt::Task producer;
  producer.id = 1;
  producer.accesses.push_back(rt::out(producer_out.data(), producer_out.size()));
  for (std::size_t k = 0; k < kEntries; ++k) {
    tht.insert(/*type_id=*/0, /*key=*/splitmix64(k), /*p=*/0.25, producer);
  }

  constexpr int kOpsPerThread = 200'000;
  std::vector<std::thread> readers;
  Timer timer;
  for (unsigned t = 0; t < threads; ++t) {
    readers.emplace_back([&, t] {
      std::vector<float> sink(kFloats, 0.0f);
      rt::Task consumer;
      consumer.accesses.push_back(rt::out(sink.data(), sink.size()));
      std::uint64_t hits = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const HashKey key = splitmix64((t * 7919 + i) % kEntries);
        rt::TaskId creator = 0;
        std::uint64_t c0 = 0, c1 = 0;
        hits += tht.lookup_and_copy(0, key, 0.25, consumer, &creator, &c0, &c1);
      }
      if (hits != kOpsPerThread) {
        std::fprintf(stderr, "pr4_hotpath: THT lookup missed (%llu/%d)\n",
                     static_cast<unsigned long long>(hits), kOpsPerThread);
      }
    });
  }
  for (auto& t : readers) t.join();
  const double secs = timer.elapsed_s();
  return secs * 1e9 / (static_cast<double>(kOpsPerThread) * threads);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int reps = default_reps();
  std::vector<Entry> entries;

  // --- Scheduler: fine-grained storm (names match BENCH_pr3.json) ----------
  const double central_hw = storm_ns_per_task(rt::SchedPolicy::Central, hw, reps);
  const double steal_hw = storm_ns_per_task(rt::SchedPolicy::Steal, hw, reps);
  entries.push_back({"sched_storm_central_t" + std::to_string(hw), central_hw});
  entries.push_back({"sched_storm_steal_t" + std::to_string(hw), steal_hw});
  const unsigned contended = std::max(4u, hw);
  const double central_c = storm_ns_per_task(rt::SchedPolicy::Central, contended, reps);
  const double steal_c = storm_ns_per_task(rt::SchedPolicy::Steal, contended, reps);
  entries.push_back({"sched_storm_central_t" + std::to_string(contended), central_c});
  entries.push_back({"sched_storm_steal_t" + std::to_string(contended), steal_c});

  // --- Barrier-free stream (eager retirement) -------------------------------
  std::size_t peak_slots = 0;
  const double stream_ns = stream_ns_per_task(hw, reps, &peak_slots);
  entries.push_back({"stream_submit_steal_t" + std::to_string(hw), stream_ns});
  entries.push_back({"stream_peak_arena_slots", static_cast<double>(peak_slots),
                     "slots"});

  // --- THT lookup under the sharded bucket locks ----------------------------
  entries.push_back({"tht_lookup_hit_t1", tht_lookup_hit_ns(1)});
  entries.push_back({"tht_lookup_hit_t4", tht_lookup_hit_ns(4)});

  // --- Reuse sanity: the lifecycle change must not break memoization --------
  const auto app = apps::make_app("blackscholes", apps::Preset::Test);
  RunConfig cfg{.threads = hw, .sched = rt::SchedPolicy::Steal,
                .mode = AtmMode::Static};
  const RunResult run = app->run(cfg);
  entries.push_back(
      {"reuse_percent_blackscholes_static", 100.0 * run.reuse_fraction(), "percent"});
  entries.push_back({"key_gather_oob", static_cast<double>(run.atm.key_gather_oob),
                     "count"});

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "pr4_hotpath: cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"pr\": 4,\n");
  std::fprintf(out, "  \"generated_by\": \"bench/pr4_hotpath\",\n");
  std::fprintf(out, "  \"baseline\": \"BENCH_pr3.json (same bench names A/B)\",\n");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(out, "  \"reps\": %d,\n", reps);
  std::fprintf(out, "  \"benches\": {\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::fprintf(out, "    \"%s\": {\"%s\": %.1f}%s\n", entries[i].name.c_str(),
                 entries[i].unit, entries[i].value,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"derived\": {\n");
  std::fprintf(out,
               "    \"storm_steal_over_central_at_max_hw\": %.2f,\n"
               "    \"storm_steal_over_central_contended_t%u\": %.2f,\n"
               "    \"stream_over_storm_steal\": %.2f\n",
               central_hw / steal_hw, contended, central_c / steal_c,
               steal_hw / stream_ns);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  if (out != stdout) std::fclose(out);

  std::fprintf(stderr,
               "pr4_hotpath: storm steal t%u = %.1f ns/task (central %.1f), "
               "stream = %.1f ns/task (peak %zu slots), THT hit t1/t4 = "
               "%.1f/%.1f ns, reuse = %.1f%%\n",
               hw, steal_hw, central_hw, stream_ns, peak_slots,
               entries[6].value, entries[7].value, 100.0 * run.reuse_fraction());
  return 0;
}

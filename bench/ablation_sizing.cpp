// Regenerates the §IV-B sizing study plus design-choice ablations called
// out in docs/DESIGN.md §6:
//   * THT bucket count N: paper: N=8 is ~46% faster than N=0; more doesn't help.
//   * THT bucket capacity M: paper: M=16 suffices except kmeans (M=128).
//   * Type-aware vs plain input selection (§III-C) on Swaptions.
//   * IKT on/off (§V-A: Jacobi/LU gain 1.8%-15%).
#include "bench_common.hpp"

int main() {
  using namespace atm;
  using namespace atm::bench;

  print_header("Ablation: THT SIZING (N, M), TYPE-AWARE SELECTION, IKT",
               "Paper: Brumar et al., IPDPS'17, §IV-B and §V-A");

  const auto preset = apps::preset_from_env();
  const unsigned threads = default_threads();
  const int reps = default_reps();

  // --- N sweep (lock granularity): Blackscholes static, the most
  // memoization-intensive workload. ---
  {
    std::cout << "\n[N] THT bucket-count sweep (M=128, Blackscholes, Static):\n";
    const auto app = apps::make_app("blackscholes", preset);
    const RunConfig base{.threads = threads, .mode = AtmMode::Off};
    const RunResult reference = run_median(*app, base, reps);
    TablePrinter table({"N (2^N buckets)", "speedup", "vs N=0"});
    double n0_speedup = 0.0;
    for (unsigned n : {0u, 2u, 4u, 8u, 10u}) {
      RunConfig config = base;
      config.mode = AtmMode::Static;
      config.log2_buckets = n;
      const RunResult run = run_median(*app, config, reps);
      const double speedup = reference.wall_seconds / run.wall_seconds;
      if (n == 0) n0_speedup = speedup;
      table.add_row({std::to_string(n), fmt_speedup(speedup),
                     fmt_percent(speedup / n0_speedup - 1.0, 1)});
    }
    table.print(std::cout);
    std::cout << "(paper: N=8 improves ~46% over N=0; larger N flat)\n";
  }

  // --- M sweep: kmeans needs M=128 (its per-iteration working set of
  // distinct keys exceeds small buckets), others saturate at 16. ---
  {
    std::cout << "\n[M] THT bucket-capacity sweep (N=8, Dynamic):\n";
    TablePrinter table({"Benchmark", "M=4", "M=16", "M=64", "M=128"});
    for (const char* name : {"kmeans", "blackscholes"}) {
      const auto app = apps::make_app(name, preset);
      const RunConfig base{.threads = threads, .mode = AtmMode::Off};
      const RunResult reference = run_median(*app, base, reps);
      std::vector<std::string> row{app->name()};
      for (unsigned m : {4u, 16u, 64u, 128u}) {
        RunConfig config = base;
        config.mode = AtmMode::Dynamic;
        config.bucket_capacity = m;
        const RunResult run = run_median(*app, config, reps);
        row.push_back(fmt_speedup(reference.wall_seconds / run.wall_seconds) + " (" +
                      fmt_percent(run.reuse_fraction(), 0) + " reuse)");
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "(paper: kmeans needs M=128; most apps saturate at M=16)\n";
  }

  // --- Type-aware vs plain shuffling: the sampled prefix must cover signs
  // and exponents for near-duplicate swaptions to hit. ---
  {
    std::cout << "\n[type-aware] input selection (Swaptions, Dynamic):\n";
    const auto app = apps::make_app("swaptions", preset);
    const RunConfig base{.threads = threads, .mode = AtmMode::Off};
    const RunResult reference = run_median(*app, base, reps);
    TablePrinter table({"Selection", "speedup", "reuse", "correctness", "final p"});
    for (bool aware : {true, false}) {
      RunConfig config = base;
      config.mode = AtmMode::Dynamic;
      config.type_aware = aware;
      const RunResult run = run_median(*app, config, reps);
      table.add_row({aware ? "type-aware (MSB-first)" : "uniform shuffle",
                     fmt_speedup(reference.wall_seconds / run.wall_seconds),
                     fmt_percent(run.reuse_fraction()),
                     fmt_double(correctness_percent(app->program_error(reference, run)),
                                2) +
                         "%",
                     fmt_p(run.final_p)});
    }
    table.print(std::cout);
    std::cout << "(§III-C: MSB-first selection preserves sign/exponent bytes in the\n"
                 " sampled prefix, unlocking near-duplicate reuse)\n";
  }

  // --- §III-E "original approach": full-input verification on hits. The
  // paper built it and dropped it ("the obtained results did not justify
  // such a complex approach"); reproduce that conclusion. ---
  {
    std::cout << "\n[verify] full-input verification (Gauss-Seidel, Static):\n";
    const auto app = apps::make_app("gauss-seidel", preset);
    const RunConfig base{.threads = threads, .mode = AtmMode::Off};
    const RunResult reference = run_median(*app, base, reps);
    TablePrinter table({"Configuration", "speedup", "ATM memory", "rejects"});
    for (bool verify : {false, true}) {
      RunConfig config = base;
      config.mode = AtmMode::Static;
      config.verify_full_inputs = verify;
      const RunResult run = run_median(*app, config, reps);
      table.add_row({verify ? "hash key + full-input compare" : "hash key only (paper)",
                     fmt_speedup(reference.wall_seconds / run.wall_seconds),
                     fmt_bytes(run.atm_memory_bytes), verify ? "0 expected" : "n/a"});
    }
    table.print(std::cout);
    std::cout << "(paper §III-E: a single hash key gives the best results; no\n"
                 " collisions were ever observed — verification only adds cost)\n";
  }

  // --- Eviction policy: FIFO (paper) vs LRU (exclusive-lock hits). ---
  {
    std::cout << "\n[eviction] FIFO vs LRU (kmeans, Dynamic, M=16):\n";
    const auto app = apps::make_app("kmeans", preset);
    const RunConfig base{.threads = threads, .mode = AtmMode::Off};
    const RunResult reference = run_median(*app, base, reps);
    TablePrinter table({"Policy", "speedup", "reuse", "evictions lock"});
    for (EvictionPolicy policy : {EvictionPolicy::Fifo, EvictionPolicy::Lru}) {
      RunConfig config = base;
      config.mode = AtmMode::Dynamic;
      config.bucket_capacity = 16;
      config.eviction = policy;
      const RunResult run = run_median(*app, config, reps);
      table.add_row({policy == EvictionPolicy::Fifo ? "FIFO (paper)" : "LRU",
                     fmt_speedup(reference.wall_seconds / run.wall_seconds),
                     fmt_percent(run.reuse_fraction()),
                     policy == EvictionPolicy::Fifo ? "shared (parallel reads)"
                                                    : "exclusive per hit"});
    }
    table.print(std::cout);
  }

  // --- IKT contribution (paper §V-A: Jacobi +1.8%/13%, LU +15%/12%). ---
  {
    std::cout << "\n[IKT] in-flight key table on/off (Static):\n";
    TablePrinter table({"Benchmark", "THT only", "THT+IKT", "IKT gain", "IKT hits"});
    for (const char* name : {"jacobi", "lu"}) {
      const auto app = apps::make_app(name, preset);
      const RunConfig base{.threads = threads, .mode = AtmMode::Off};
      const RunResult reference = run_median(*app, base, reps);
      double speedups[2];
      std::uint64_t ikt_hits = 0;
      for (int i = 0; i < 2; ++i) {
        RunConfig config = base;
        config.mode = AtmMode::Static;
        config.use_ikt = i == 1;
        const RunResult run = run_median(*app, config, reps);
        speedups[i] = reference.wall_seconds / run.wall_seconds;
        if (i == 1) ikt_hits = run.atm.ikt_hits;
      }
      table.add_row({app->name(), fmt_speedup(speedups[0]), fmt_speedup(speedups[1]),
                     fmt_percent(speedups[1] / speedups[0] - 1.0, 1),
                     std::to_string(ikt_hits)});
    }
    table.print(std::cout);
    std::cout << "(paper: IKT helps the benchmarks with very short reuse distances)\n";
  }
  return 0;
}

// PR 5 hot-path benchmark: machine-readable numbers for the two-level
// dependence index (exact-interval table over the interval tree, with
// barrier-retained geometry) and the helping taskwait. Emits JSON (bench
// name -> ns/op plus derived ratios), consumed by
// `tools/run_benches.sh <build> json`, which writes BENCH_pr5.json.
//
//   pr5_hotpath [--out=PATH]     (default: JSON to stdout)
//
// Sections:
//   sched_storm_{central,steal}_tN   fine-grained task storm through the
//                                    full runtime, ns per task — same
//                                    harness and names as BENCH_pr4.json /
//                                    BENCH_pr3.json, so the files A/B
//                                    directly (re-measure the older build
//                                    on the same host before comparing
//                                    absolute numbers across machines)
//   wave_boundary_{help,park}_t1     taskwait-heavy few-core wave pattern
//                                    (2000 barriers x 32 tiny tasks) with
//                                    the helping barrier vs the parking
//                                    condvar barrier, ns per task
//   stream_submit_steal_tN           barrier-free 200k-task stream (eager
//                                    retirement + exact-index WAW chains)
//   stream_peak_arena_slots          records resident at the stream's peak
//   dep_{exact,tree}_<app>           two-level index counters from the
//                                    iterative apps (test preset, mode off)
//   sched_inbox_batch_cap_storm      adaptive batch cap after a t1 storm
//   tht_lookup_hit_t{1,4}            THT lookup continuity numbers
//   reuse_percent_blackscholes_static  sanity: memoization still reuses
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "atm/tht.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "runtime/scheduler.hpp"

namespace {

using namespace atm;
using namespace atm::bench;

struct Entry {
  std::string name;
  double value = 0.0;
  const char* unit = "ns_per_op";
};

double storm_ns_per_task(rt::SchedPolicy sched, unsigned threads, int reps) {
  const std::size_t tasks = 20'000;
  const int waves = 5;
  const double rate = sched_storm_median(sched, threads, tasks, waves, reps);
  return 1e9 / rate;
}

/// Taskwait-heavy wave pattern on a few-core configuration: tiny waves, so
/// the barrier turnaround IS the workload. help=true lets the master drain
/// and steal through the scheduler's helper lane; help=false parks it on
/// the PR-4 condvar. Median ns/task over reps.
double wave_boundary_ns_per_task(bool help, int reps) {
  const int waves = 2'000;
  constexpr std::size_t kTasks = 32;
  std::vector<double> rates;
  for (int r = 0; r < reps; ++r) {
    rt::Runtime runtime({.num_threads = 1, .help_taskwait = help});
    const auto* type =
        runtime.register_type({.name = "fine", .memoizable = false, .atm = {}});
    std::vector<float> cells(kTasks, 1.0f);
    Timer timer;
    for (int w = 0; w < waves; ++w) {
      for (std::size_t i = 0; i < kTasks; ++i) {
        float* cell = &cells[i];
        runtime.submit(type,
                       [cell] {
                         float x = *cell;
                         for (int k = 0; k < 16; ++k) x = x * 1.0001f + 0.0001f;
                         *cell = x;
                       },
                       {rt::inout(cell, 1)});
      }
      runtime.taskwait();
    }
    const double secs = timer.elapsed_s();
    rates.push_back(static_cast<double>(kTasks) * waves / secs);
  }
  std::sort(rates.begin(), rates.end());
  return 1e9 / rates[rates.size() / 2];
}

/// Barrier-free stream: one taskwait at the very end. Measures the eager-
/// retirement submit path (every re-touched cell is an exact-index WAW
/// chain) and samples the arena's peak occupancy.
double stream_ns_per_task(unsigned threads, int reps, std::size_t* peak_slots) {
  const std::size_t tasks = 200'000;
  const std::size_t kCells = 1024;
  std::vector<double> rates;
  *peak_slots = 0;
  for (int r = 0; r < reps; ++r) {
    rt::Runtime runtime({.num_threads = threads, .sched = rt::SchedPolicy::Steal});
    const auto* type =
        runtime.register_type({.name = "fine", .memoizable = false, .atm = {}});
    std::vector<float> cells(kCells, 1.0f);
    Timer timer;
    for (std::size_t i = 0; i < tasks; ++i) {
      float* cell = &cells[i % kCells];
      runtime.submit(type, [cell] { *cell += 1.0f; }, {rt::inout(cell, 1)});
      if ((i & 0x3fff) == 0) {
        *peak_slots = std::max(*peak_slots, runtime.arena_stats().slots);
      }
    }
    runtime.taskwait();
    const double secs = timer.elapsed_s();
    *peak_slots = std::max(*peak_slots, runtime.arena_stats().slots);
    rates.push_back(static_cast<double>(tasks) / secs);
  }
  std::sort(rates.begin(), rates.end());
  return 1e9 / rates[rates.size() / 2];
}

/// One t1 storm through a runtime we keep around long enough to read the
/// scheduler's adaptive state (batch cap, steal misses).
rt::SchedulerStats storm_sched_stats() {
  rt::Runtime runtime({.num_threads = 1});
  const auto* type =
      runtime.register_type({.name = "fine", .memoizable = false, .atm = {}});
  std::vector<float> cells(20'000, 1.0f);
  for (int w = 0; w < 2; ++w) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      float* cell = &cells[i];
      runtime.submit(type, [cell] { *cell += 1.0f; }, {rt::inout(cell, 1)});
    }
    runtime.taskwait();
  }
  return runtime.sched_stats();
}

/// THT steady-state hit path: lookup_and_copy on a prefilled table, with
/// `threads` concurrent readers hammering disjoint key streams.
double tht_lookup_hit_ns(unsigned threads) {
  constexpr std::size_t kEntries = 1024;
  constexpr std::size_t kFloats = 64;  // 256-byte snapshots
  TaskHistoryTable tht(/*log2_buckets=*/8, /*bucket_capacity=*/16);
  std::vector<float> producer_out(kFloats, 1.5f);
  rt::Task producer;
  producer.id = 1;
  producer.accesses.push_back(rt::out(producer_out.data(), producer_out.size()));
  for (std::size_t k = 0; k < kEntries; ++k) {
    tht.insert(/*type_id=*/0, /*key=*/splitmix64(k), /*p=*/0.25, producer);
  }

  constexpr int kOpsPerThread = 200'000;
  std::vector<std::thread> readers;
  Timer timer;
  for (unsigned t = 0; t < threads; ++t) {
    readers.emplace_back([&, t] {
      std::vector<float> sink(kFloats, 0.0f);
      rt::Task consumer;
      consumer.accesses.push_back(rt::out(sink.data(), sink.size()));
      std::uint64_t hits = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const HashKey key = splitmix64((t * 7919 + i) % kEntries);
        rt::TaskId creator = 0;
        std::uint64_t c0 = 0, c1 = 0;
        hits += tht.lookup_and_copy(0, key, 0.25, consumer, &creator, &c0, &c1);
      }
      if (hits != kOpsPerThread) {
        std::fprintf(stderr, "pr5_hotpath: THT lookup missed (%llu/%d)\n",
                     static_cast<unsigned long long>(hits), kOpsPerThread);
      }
    });
  }
  for (auto& t : readers) t.join();
  const double secs = timer.elapsed_s();
  return secs * 1e9 / (static_cast<double>(kOpsPerThread) * threads);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int reps = default_reps();
  std::vector<Entry> entries;

  // --- Scheduler: fine-grained storm (names match BENCH_pr4/pr3.json) ------
  const double central_hw = storm_ns_per_task(rt::SchedPolicy::Central, hw, reps);
  const double steal_hw = storm_ns_per_task(rt::SchedPolicy::Steal, hw, reps);
  entries.push_back({"sched_storm_central_t" + std::to_string(hw), central_hw});
  entries.push_back({"sched_storm_steal_t" + std::to_string(hw), steal_hw});
  const unsigned contended = std::max(4u, hw);
  const double central_c = storm_ns_per_task(rt::SchedPolicy::Central, contended, reps);
  const double steal_c = storm_ns_per_task(rt::SchedPolicy::Steal, contended, reps);
  entries.push_back({"sched_storm_central_t" + std::to_string(contended), central_c});
  entries.push_back({"sched_storm_steal_t" + std::to_string(contended), steal_c});

  // --- Wave boundary: helping vs parking taskwait ---------------------------
  const double wave_help = wave_boundary_ns_per_task(/*help=*/true, reps);
  const double wave_park = wave_boundary_ns_per_task(/*help=*/false, reps);
  entries.push_back({"wave_boundary_help_t1", wave_help});
  entries.push_back({"wave_boundary_park_t1", wave_park});

  // --- Barrier-free stream (eager retirement + exact WAW chains) ------------
  std::size_t peak_slots = 0;
  const double stream_ns = stream_ns_per_task(hw, reps, &peak_slots);
  entries.push_back({"stream_submit_steal_t" + std::to_string(hw), stream_ns});
  entries.push_back({"stream_peak_arena_slots", static_cast<double>(peak_slots),
                     "slots"});

  // --- Two-level index on the iterative apps (mode off, test preset) --------
  std::uint64_t exact_total = 0, tree_total = 0;
  const struct { const char* app; const char* key; } kIterative[] = {
      {"gauss-seidel", "gs"}, {"jacobi", "jacobi"}, {"kmeans", "kmeans"}};
  for (const auto& it : kIterative) {
    const auto app = apps::make_app(it.app, apps::Preset::Test);
    RunConfig cfg{.threads = hw, .mode = AtmMode::Off};
    const RunResult run = app->run(cfg);
    entries.push_back({std::string("dep_exact_") + it.key,
                       static_cast<double>(run.atm.dep_exact_hits), "count"});
    entries.push_back({std::string("dep_tree_") + it.key,
                       static_cast<double>(run.atm.dep_tree_fallbacks), "count"});
    exact_total += run.atm.dep_exact_hits;
    tree_total += run.atm.dep_tree_fallbacks;
  }

  // --- Adaptive inbox batching after a t1 storm ------------------------------
  const rt::SchedulerStats sched = storm_sched_stats();
  entries.push_back({"sched_inbox_batch_cap_storm",
                     static_cast<double>(sched.inbox_batch_cap), "tasks"});

  // --- THT lookup continuity -------------------------------------------------
  entries.push_back({"tht_lookup_hit_t1", tht_lookup_hit_ns(1)});
  entries.push_back({"tht_lookup_hit_t4", tht_lookup_hit_ns(4)});

  // --- Reuse sanity: the submit-path rework must not break memoization ------
  const auto app = apps::make_app("blackscholes", apps::Preset::Test);
  RunConfig cfg{.threads = hw, .sched = rt::SchedPolicy::Steal,
                .mode = AtmMode::Static};
  const RunResult run = app->run(cfg);
  entries.push_back(
      {"reuse_percent_blackscholes_static", 100.0 * run.reuse_fraction(), "percent"});
  entries.push_back({"key_gather_oob", static_cast<double>(run.atm.key_gather_oob),
                     "count"});

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "pr5_hotpath: cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"pr\": 5,\n");
  std::fprintf(out, "  \"generated_by\": \"bench/pr5_hotpath\",\n");
  std::fprintf(out,
               "  \"baseline\": \"BENCH_pr4.json (same storm/stream names; re-run "
               "the pr4 build on the same host for drift-free A/B)\",\n");
  std::fprintf(out,
               "  \"drift_note\": \"container clocks drift between merges: do NOT "
               "compare raw ns across BENCH_prN.json files recorded at different "
               "times. The acceptance A/B protocol is interleaved same-host runs "
               "of both builds (see docs/BENCHMARKS.md, pr5 section, for the "
               "merge-time medians: pr4 273.9 ns -> pr5 235.8 ns per storm task, "
               "1.16x, over 10 alternating rounds).\",\n");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(out, "  \"reps\": %d,\n", reps);
  std::fprintf(out, "  \"benches\": {\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::fprintf(out, "    \"%s\": {\"%s\": %.1f}%s\n", entries[i].name.c_str(),
                 entries[i].unit, entries[i].value,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"derived\": {\n");
  std::fprintf(out,
               "    \"storm_steal_over_central_at_max_hw\": %.2f,\n"
               "    \"storm_steal_over_central_contended_t%u\": %.2f,\n"
               "    \"wave_boundary_help_over_park\": %.2f,\n"
               "    \"dep_exact_over_tree_iterative_apps\": %.2f,\n"
               "    \"stream_over_storm_steal\": %.2f\n",
               central_hw / steal_hw, contended, central_c / steal_c,
               wave_park / wave_help,
               tree_total > 0 ? static_cast<double>(exact_total) /
                                    static_cast<double>(tree_total)
                              : 0.0,
               steal_hw / stream_ns);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  if (out != stdout) std::fclose(out);

  std::fprintf(stderr,
               "pr5_hotpath: storm steal t%u = %.1f ns/task (central %.1f), "
               "wave help/park = %.1f/%.1f ns, stream = %.1f ns/task (peak %zu "
               "slots), dep exact/tree = %llu/%llu, reuse = %.1f%%\n",
               hw, steal_hw, central_hw, wave_help, wave_park, stream_ns,
               peak_slots, static_cast<unsigned long long>(exact_total),
               static_cast<unsigned long long>(tree_total),
               100.0 * run.reuse_fraction());
  return 0;
}

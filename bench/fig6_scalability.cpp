// Regenerates Figure 6: Dynamic-ATM and Oracle(95%) speedup as the worker
// count grows 1..8 (per benchmark + geomean). Speedup is always measured
// against the no-ATM run at the SAME thread count (Eq. 2), so the shape
// survives this container's 2 physical cores (threads > cores oversubscribe;
// docs/EXPERIMENTS.md discusses the distortion).
#include "bench_common.hpp"

int main() {
  using namespace atm;
  using namespace atm::bench;

  print_header("Figure 6: SPEEDUP vs NUMBER OF CORES (Dynamic ATM, Oracle(95%))",
               "Paper: Brumar et al., IPDPS'17, Fig. 6 — paper: dynamic geomean "
               "3.0x @1 core -> 2.5x @8 cores (convex)");

  const auto preset = apps::preset_from_env();
  const int reps = default_reps();
  const std::vector<unsigned> thread_counts{1, 2, 4, 8};

  std::vector<std::string> header{"Benchmark", "Config"};
  for (unsigned t : thread_counts) header.push_back(std::to_string(t) + " cores");
  TablePrinter table(std::move(header));

  std::vector<std::vector<double>> dyn_speedups(thread_counts.size());
  std::vector<std::vector<double>> oracle_speedups(thread_counts.size());

  for (const auto& app : apps::make_all_apps(preset)) {
    // Oracle p profiled once at the default thread count (offline profiling
    // in the paper).
    const RunConfig profile_base{.threads = default_threads(), .mode = AtmMode::Off};
    const RunResult profile_ref = app->run(profile_base);
    const double oracle_p =
        oracle_best_p(oracle_sweep(*app, profile_ref, profile_base), 95.0);

    std::vector<std::string> dyn_row{app->name(), "Dynamic ATM"};
    std::vector<std::string> oracle_row{"", "Oracle(95%)"};
    for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
      const RunConfig base{.threads = thread_counts[ti], .mode = AtmMode::Off};
      const RunResult reference = run_median(*app, base, reps);

      RunConfig dy = base;
      dy.mode = AtmMode::Dynamic;
      const RunResult dynamic_run = run_median(*app, dy, reps);
      const double dyn_speedup = reference.wall_seconds / dynamic_run.wall_seconds;
      dyn_speedups[ti].push_back(dyn_speedup);
      dyn_row.push_back(fmt_speedup(dyn_speedup));

      RunConfig oracle = base;
      oracle.mode = AtmMode::FixedP;
      oracle.fixed_p = oracle_p;
      const RunResult oracle_run = run_median(*app, oracle, reps);
      const double oracle_speedup = reference.wall_seconds / oracle_run.wall_seconds;
      oracle_speedups[ti].push_back(oracle_speedup);
      oracle_row.push_back(fmt_speedup(oracle_speedup));
    }
    table.add_row(std::move(dyn_row));
    table.add_row(std::move(oracle_row));
    table.add_separator();
  }

  std::vector<std::string> geo_dyn{"geomean", "Dynamic ATM"};
  std::vector<std::string> geo_oracle{"", "Oracle(95%)"};
  for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
    geo_dyn.push_back(fmt_speedup(geomean(dyn_speedups[ti])));
    geo_oracle.push_back(fmt_speedup(geomean(oracle_speedups[ti])));
  }
  table.add_row(std::move(geo_dyn));
  table.add_row(std::move(geo_oracle));
  table.print(std::cout);

  std::cout << "\nNote: this container has " << std::thread::hardware_concurrency()
            << " hardware threads; counts above that oversubscribe, which\n"
               "flattens absolute scaling but keeps the ATM-on/ATM-off ratio\n"
               "meaningful (both sides share the distortion).\n";

  // --- Scheduler A/B: the central-queue ceiling ----------------------------
  // Fine-grained (small-task) preset: tasks so small the per-task runtime
  // overhead dominates, making the ready-queue path the bottleneck. This is
  // the regime where the central mutex+condvar RQ caps scaling and the
  // work-stealing scheduler (per-worker deques) is expected to lift
  // throughput at every thread count.
  print_header("Figure 6 addendum: SCHEDULER A/B (central RQ vs work stealing)",
               "Fine-grained task storm (64-FLOP tasks); tasks/second, higher "
               "is better");
  {
    const std::size_t storm_tasks = 20'000;
    const int storm_waves = 5;
    TablePrinter sched_table(
        {"Threads", "central [tasks/s]", "steal [tasks/s]", "steal/central"});
    for (unsigned t : thread_counts) {
      const double central = sched_storm_median(rt::SchedPolicy::Central, t,
                                                storm_tasks, storm_waves, reps);
      const double steal = sched_storm_median(rt::SchedPolicy::Steal, t,
                                              storm_tasks, storm_waves, reps);
      sched_table.add_row({std::to_string(t), fmt_double(central / 1e3, 0) + "k",
                           fmt_double(steal / 1e3, 0) + "k",
                           fmt_speedup(steal / central)});
    }
    sched_table.print(std::cout);
    std::cout << "\nThe apps above run under the steal scheduler by default;\n"
                 "rerun with `atm_run --sched central` for the app-level A/B.\n";
  }
  return 0;
}

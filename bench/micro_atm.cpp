// google-benchmark microbenchmarks for ATM's moving parts, including the
// paper's §III-A claim that THT output copies are ~10x faster than
// executing the task they bypass (copies are straight-line SIMD-friendly
// memcpy; the stencil body is not).
#include <benchmark/benchmark.h>

#include <array>
#include <cstring>
#include <memory>
#include <vector>

#include "apps/stencil_common.hpp"
#include "atm_lib.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "runtime/scheduler.hpp"

namespace {

using namespace atm;

constexpr std::size_t kBlockDim = 96;
constexpr std::size_t kBlockBytes = kBlockDim * kBlockDim * sizeof(float);

std::vector<float> random_block(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> block(kBlockDim * kBlockDim);
  for (auto& v : block) v = rng.next_float(0.0f, 4.0f);
  return block;
}

void BM_HashStream_Bulk(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> data(n);
  Rng rng(1);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash_bytes(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HashStream_Bulk)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 22);

void BM_ComputeKey_FullP(benchmark::State& state) {
  auto block = random_block(2);
  rt::Task task;
  task.accesses.push_back(rt::in(block.data(), block.size()));
  InputSampler sampler(true, 3);
  const auto& order = sampler.order_for(0, InputLayout::from_task(task));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_key(task, order, 1.0, 4).key);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlockBytes));
}
BENCHMARK(BM_ComputeKey_FullP);

void BM_ComputeKey_SampledGather(benchmark::State& state) {
  // p = 1% -> scattered gather of ~369 bytes of a 36 KiB block.
  auto block = random_block(2);
  rt::Task task;
  task.accesses.push_back(rt::in(block.data(), block.size()));
  InputSampler sampler(true, 3);
  const auto& order = sampler.order_for(0, InputLayout::from_task(task));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_key(task, order, 0.01, 4).key);
  }
}
BENCHMARK(BM_ComputeKey_SampledGather);

// --- Ready-queue push/pop under contention: central vs steal ---------------
// Each benchmark thread plays worker t: push one task (worker-local lane for
// the steal scheduler), pop one back. Central funnels every op through the
// one mutex+condvar; steal keeps the pair on the thread's own deque.

std::unique_ptr<rt::Scheduler> g_sched;  // set by thread 0; read after the
                                         // state-loop entry barrier only
// Fixed-size and never resized: threads index it before the start barrier,
// so any reallocation here would race thread 0's setup.
std::array<rt::Task, 8> g_sched_tasks;

template <rt::SchedPolicy kPolicy>
void BM_Sched_PushPop(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_sched = rt::Scheduler::make(kPolicy, static_cast<unsigned>(state.threads()),
                                  nullptr);
  }
  const auto me = static_cast<unsigned>(state.thread_index());
  rt::Task* mine = &g_sched_tasks[me];
  for (auto _ : state) {
    g_sched->push(mine, me);
    benchmark::DoNotOptimize(g_sched->try_pop(me));
  }
  if (state.thread_index() == 0) {
    g_sched->shutdown();
    g_sched.reset();
  }
}
BENCHMARK_TEMPLATE(BM_Sched_PushPop, rt::SchedPolicy::Central)
    ->Name("BM_Sched_PushPop_Central")->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_Sched_PushPop, rt::SchedPolicy::Steal)
    ->Name("BM_Sched_PushPop_Steal")->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

// External-submission flavor: every push arrives from a non-worker lane (the
// master's path): round-robin inboxes for steal, the same global lock for
// central.
template <rt::SchedPolicy kPolicy>
void BM_Sched_ExternalPushPop(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_sched = rt::Scheduler::make(kPolicy, static_cast<unsigned>(state.threads()),
                                  nullptr);
  }
  const auto me = static_cast<unsigned>(state.thread_index());
  const auto external_lane = static_cast<std::size_t>(state.threads());
  rt::Task* mine = &g_sched_tasks[me];
  for (auto _ : state) {
    g_sched->push(mine, external_lane);
    benchmark::DoNotOptimize(g_sched->try_pop(me));
  }
  if (state.thread_index() == 0) {
    g_sched->shutdown();
    g_sched.reset();
  }
}
BENCHMARK_TEMPLATE(BM_Sched_ExternalPushPop, rt::SchedPolicy::Central)
    ->Name("BM_Sched_ExternalPushPop_Central")->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_Sched_ExternalPushPop, rt::SchedPolicy::Steal)
    ->Name("BM_Sched_ExternalPushPop_Steal")->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

// --- compute_key: per-byte gather vs precomputed plan ----------------------
// Multi-region task (six float regions, the Blackscholes shape) so the
// per-byte path pays the region scan on every selected byte. range(0) is
// p in permille.

void BM_ComputeKey_GatherPerByte(benchmark::State& state) {
  bench::MultiRegionKeyFixture bench;
  const double p = static_cast<double>(state.range(0)) / 1000.0;
  const auto layout = InputLayout::from_task(bench.task);
  const auto& order = bench.sampler.order_for(0, layout);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_key(bench.task, order, p, 4).key);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(selection_count(layout.total_bytes(), p)));
}
BENCHMARK(BM_ComputeKey_GatherPerByte)->Arg(50)->Arg(100)->Arg(300);

void BM_ComputeKey_Planned(benchmark::State& state) {
  bench::MultiRegionKeyFixture bench;
  const double p = static_cast<double>(state.range(0)) / 1000.0;
  const auto layout = InputLayout::from_task(bench.task);
  const GatherPlan& plan = bench.sampler.plan_for(0, layout, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_key(bench.task, plan, 4).key);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(plan.bytes));
}
BENCHMARK(BM_ComputeKey_Planned)->Arg(50)->Arg(100)->Arg(300);

void BM_Tht_InsertEvictCycle(benchmark::State& state) {
  // Small M so eviction continuously recycles arena buffers (steady state).
  TaskHistoryTable tht(4, 4, /*arena_reserve=*/8 << 20);
  auto block = random_block(5);
  rt::Task producer;
  producer.id = 1;
  producer.accesses.push_back(rt::out(block.data(), block.size()));
  HashKey key = 0;
  for (auto _ : state) {
    tht.insert(0, key++, 1.0, producer);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlockBytes));
}
BENCHMARK(BM_Tht_InsertEvictCycle);

void BM_Tht_LookupHitCopy(benchmark::State& state) {
  TaskHistoryTable tht(4, 8);
  auto block = random_block(6);
  rt::Task producer;
  producer.id = 1;
  producer.accesses.push_back(rt::out(block.data(), block.size()));
  tht.insert(0, 0xFEED, 1.0, producer);
  std::vector<float> sink(block.size());
  rt::Task consumer;
  consumer.accesses.push_back(rt::out(sink.data(), sink.size()));
  for (auto _ : state) {
    bool hit = tht.lookup_and_copy(0, 0xFEED, 1.0, consumer, nullptr, nullptr, nullptr);
    benchmark::DoNotOptimize(hit);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlockBytes));
}
BENCHMARK(BM_Tht_LookupHitCopy);

// --- The §III-A copy-vs-execute claim -------------------------------------
// Paper: copies from/to the THT are 10.75x / 10.31x faster than executing
// the task. Compare one stencil task body against a THT hit copy of the
// same block.

void BM_CopyVsExec_StencilTask(benchmark::State& state) {
  auto block = random_block(7);
  std::vector<float> halo(kBlockDim, 1.0f);
  for (auto _ : state) {
    apps::stencil_sweep_inplace(block.data(), halo.data(), halo.data(), halo.data(),
                                halo.data(), kBlockDim, 4);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlockBytes));
}
BENCHMARK(BM_CopyVsExec_StencilTask);

void BM_CopyVsExec_ThtCopy(benchmark::State& state) {
  auto src = random_block(8);
  std::vector<float> dst(src.size());
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), kBlockBytes);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlockBytes));
}
BENCHMARK(BM_CopyVsExec_ThtCopy);

void BM_Sampler_BuildOrder(benchmark::State& state) {
  // Cold-build of the shuffled index vector for a block layout (cached in
  // production; this measures the one-time cost per task type).
  const auto bytes = static_cast<std::size_t>(state.range(0));
  InputLayout layout;
  layout.regions.push_back({bytes, rt::ElemType::F32});
  std::uint32_t type_id = 0;
  for (auto _ : state) {
    InputSampler sampler(true, 11);
    benchmark::DoNotOptimize(sampler.order_for(type_id++, layout).data());
  }
}
BENCHMARK(BM_Sampler_BuildOrder)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_Ikt_RegisterRetire(benchmark::State& state) {
  InFlightKeyTable ikt;
  float out[4];
  rt::Task task;
  task.id = 1;
  task.accesses.push_back(rt::out(out, 4));
  HashKey key = 0;
  for (auto _ : state) {
    ikt.register_or_attach(0, key++, 1.0, &task, true);
    benchmark::DoNotOptimize(ikt.retire(&task));
  }
}
BENCHMARK(BM_Ikt_RegisterRetire);

void BM_Chebyshev_Tau(benchmark::State& state) {
  auto a = random_block(9);
  auto b = a;
  b[100] += 0.01f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chebyshev_relative_error<float>(a, b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * kBlockBytes));
}
BENCHMARK(BM_Chebyshev_Tau);

}  // namespace

BENCHMARK_MAIN();

// Regenerates Figure 5: program correctness as a function of a *constant*
// percentage p of selected inputs (16 steps, 2^-15 .. 100%), with the p
// that Dynamic ATM picked marked with a star — per benchmark.
#include "bench_common.hpp"

int main() {
  using namespace atm;
  using namespace atm::bench;

  print_header("Figure 5: CORRECTNESS vs PERCENTAGE p OF SELECTED INPUTS",
               "Paper: Brumar et al., IPDPS'17, Fig. 5 (x log-scale; star = "
               "dynamic ATM's chosen p)");

  const auto preset = apps::preset_from_env();
  const unsigned threads = default_threads();
  const auto steps = p_steps();

  // Header row of p labels.
  std::vector<std::string> header{"Benchmark"};
  for (double p : steps) header.push_back(fmt_p(p));
  TablePrinter table(std::move(header));

  for (const auto& app : apps::make_all_apps(preset)) {
    const RunConfig base{.threads = threads, .mode = AtmMode::Off};
    const RunResult reference = app->run(base);

    RunConfig dy = base;
    dy.mode = AtmMode::Dynamic;
    const RunResult dynamic_run = app->run(dy);

    const auto sweep = oracle_sweep(*app, reference, base);
    std::vector<std::string> row{app->name()};
    for (const SweepPoint& point : sweep) {
      std::string cell = fmt_double(point.correctness, 1);
      if (point.p == dynamic_run.final_p) cell += "*";  // the dynamic star
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(* = the p Dynamic ATM selected in training.)\n"
            << "Paper shape to check: correctness ~100 at large p; degrades as p\n"
               "shrinks (Swaptions already by 2^-3; stencils/LU fall below 90 for\n"
               "tiny p); every dynamic star sits in a >= ~97% column.\n";
  return 0;
}

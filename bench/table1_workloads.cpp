// Regenerates Table I: benchmark descriptions — program inputs, task input
// size in bytes, task input types, memoized task type, number of tasks, and
// the object correctness is measured on.
#include "bench_common.hpp"

int main() {
  using namespace atm;
  using namespace atm::bench;

  print_header("Table I: BENCHMARKS DESCRIPTION",
               "Paper: Brumar et al., IPDPS'17, Table I");

  TablePrinter table({"Benchmark", "Program Inputs", "Task Inputs Size (bytes)",
                      "Task Inputs Types", "Memoized Task Type", "Number of tasks",
                      "Correctness Measured on"});

  const auto preset = apps::preset_from_env();
  for (const auto& app : apps::make_all_apps(preset)) {
    // One cheap run (ATM off) to count tasks exactly.
    const RunConfig config{.threads = default_threads(), .mode = AtmMode::Off};
    const RunResult run = app->run(config);
    table.add_row({app->name(), app->program_input_desc(),
                   std::to_string(run.task_input_bytes), app->task_input_types(),
                   app->memoized_task_type(), std::to_string(run.counters.submitted),
                   app->correctness_target()});
  }
  table.print(std::cout);

  std::cout << "\nPaper (native scale) for reference: Blackscholes 393,216 B / 6,109\n"
               "tasks; Gauss-Seidel & Jacobi 4,210,688 B / 20,480 tasks; Kmeans\n"
               "219,716 B / 39,063 tasks; LU 786,432 B / 670 tasks; Swaptions 376 B\n"
               "/ 512 tasks. Run with ATM_SCALE=paper to regenerate those sizes.\n";
  return 0;
}

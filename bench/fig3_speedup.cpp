// Regenerates Figure 3: speedup of Static/Dynamic ATM (THT-only and
// THT+IKT) and the Oracle(100%) / Oracle(95%) configurations over the
// no-ATM baseline, per benchmark plus geomean. Log-scale bar chart printed
// as a table + ASCII bars.
#include "bench_common.hpp"

int main() {
  using namespace atm;
  using namespace atm::bench;

  print_header("Figure 3: SPEEDUP (Static/Dynamic ATM, THT vs THT+IKT, Oracles)",
               "Paper: Brumar et al., IPDPS'17, Fig. 3 — paper geomeans: Static "
               "1.4x, Dynamic 2.5x");

  struct Column {
    const char* name;
    AtmMode mode;
    bool use_ikt;
  };
  const Column columns[] = {
      {"Static ATM (THT)", AtmMode::Static, false},
      {"Dynamic ATM (THT)", AtmMode::Dynamic, false},
      {"Static ATM (THT+IKT)", AtmMode::Static, true},
      {"Dynamic ATM (THT+IKT)", AtmMode::Dynamic, true},
  };

  TablePrinter table({"Benchmark", "Static (THT)", "Dynamic (THT)", "Static (THT+IKT)",
                      "Dynamic (THT+IKT)", "Oracle(100%)", "Oracle(95%)"});

  const auto preset = apps::preset_from_env();
  const unsigned threads = default_threads();
  const int reps = default_reps();

  std::vector<std::vector<double>> speedups(6);
  for (const auto& app : apps::make_all_apps(preset)) {
    const RunConfig base{.threads = threads, .mode = AtmMode::Off};
    const RunResult reference = run_median(*app, base, reps);

    std::vector<std::string> row{app->name()};
    std::size_t col = 0;
    for (const Column& column : columns) {
      RunConfig config = base;
      config.mode = column.mode;
      config.use_ikt = column.use_ikt;
      const RunResult run = run_median(*app, config, reps);
      const double speedup = reference.wall_seconds / run.wall_seconds;
      speedups[col++].push_back(speedup);
      row.push_back(fmt_speedup(speedup));
    }

    // Oracles: offline p-sweep (the paper's profiling step), then rerun at
    // the chosen constant p.
    const auto sweep = oracle_sweep(*app, reference, base);
    for (double min_corr : {100.0 - 1e-9, 95.0}) {
      RunConfig config = base;
      config.mode = AtmMode::FixedP;
      config.fixed_p = oracle_best_p(sweep, min_corr);
      const RunResult run = run_median(*app, config, reps);
      const double speedup = reference.wall_seconds / run.wall_seconds;
      speedups[col++].push_back(speedup);
      row.push_back(fmt_speedup(speedup) + " (p=" + fmt_p(config.fixed_p) + ")");
    }
    table.add_row(std::move(row));
  }

  table.add_separator();
  std::vector<std::string> geo_row{"geomean"};
  std::vector<double> geo_values;
  for (auto& column : speedups) {
    geo_values.push_back(geomean(column));
    geo_row.push_back(fmt_speedup(geo_values.back()));
  }
  table.add_row(std::move(geo_row));
  table.print(std::cout);

  std::cout << "\nGeomean bars (full scale 8x):\n";
  const char* names[] = {"Static(THT)", "Dynamic(THT)", "Static(+IKT)",
                         "Dynamic(+IKT)", "Oracle(100%)", "Oracle(95%)"};
  for (std::size_t i = 0; i < 6; ++i) {
    std::cout << "  " << names[i] << std::string(16 - std::string(names[i]).size(), ' ')
              << "|" << ascii_bar(geo_values[i], 8.0) << "| " << fmt_speedup(geo_values[i])
              << "\n";
  }
  std::cout << "\nPaper shape to check: Dynamic > Static on average; IKT adds on\n"
               "Jacobi/LU; kmeans & Jacobi lose with Static; Oracle(95%) is the\n"
               "upper envelope.\n";
  return 0;
}

// PR 7 observability benchmark: machine-readable numbers for the unified
// MetricsRegistry and its runtime integration. Emits JSON (bench name ->
// value), consumed by `tools/run_benches.sh <build> json`, which writes
// BENCH_pr7.json.
//
//   pr7_observability [--out=PATH]     (default: JSON to stdout)
//
// Sections:
//   sched_storm_{central,steal}_tN    same harness and names as
//                                     BENCH_pr6/pr5.json — the default
//                                     configuration (metrics collectors
//                                     registered). Cross-PR A/B requires
//                                     interleaved same-host runs of both
//                                     builds (see drift_note).
//   sched_storm_steal_nometrics_tN    RuntimeConfig::metrics = false: no
//                                     collectors on the registry. The
//                                     within-file A/B for the "metrics-
//                                     enabled <= 3%" acceptance gate.
//   sched_storm_steal_profile_tN      profile_tasks = true plus a 1ms
//                                     background sampler: the worst-case
//                                     fully-instrumented configuration
//                                     (two clock reads per ~240ns task).
//   obs_counter_inc_ns                one sharded Counter::inc()
//   obs_hist_record_ns                one LatencyHistogram::record()
//   obs_registry_snapshot_ns          full registry snapshot at a realistic
//                                     metric count (the sampler's per-tick
//                                     cost, off the hot path)
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace atm;
using namespace atm::bench;

struct Entry {
  std::string name;
  double value = 0.0;
  const char* unit = "ns_per_op";
};

constexpr std::size_t kStormTasks = 20'000;
constexpr int kStormWaves = 5;

double storm_ns_per_task(const rt::RuntimeConfig& cfg, int reps) {
  const double rate = sched_storm_median(cfg, kStormTasks, kStormWaves, reps);
  return 1e9 / rate;
}

/// The gated A/B: one run of each config per round, interleaved, so drift
/// cancels out of the ratios. Returns ns/task medians, one per config.
std::vector<double> storm_ab_ns_per_task(
    const std::vector<rt::RuntimeConfig>& cfgs, int reps) {
  std::vector<double> medians =
      sched_storm_medians_interleaved(cfgs, kStormTasks, kStormWaves, reps);
  for (double& m : medians) m = 1e9 / m;
  return medians;
}

/// Median ns of one call over `iters` calls, `reps` repetitions.
template <typename Fn>
double op_ns(int reps, std::size_t iters, Fn&& fn) {
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    for (std::size_t i = 0; i < iters; ++i) fn(i);
    times.push_back(timer.elapsed_s() * 1e9 / static_cast<double>(iters));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int reps = default_reps();
  std::vector<Entry> entries;

  // --- storm A/B: default vs collectors-off vs fully instrumented ----------
  const rt::RuntimeConfig central{.num_threads = hw,
                                  .sched = rt::SchedPolicy::Central};
  rt::RuntimeConfig steal{.num_threads = hw, .sched = rt::SchedPolicy::Steal};
  rt::RuntimeConfig nometrics = steal;
  nometrics.metrics = false;
  rt::RuntimeConfig profiled = steal;
  profiled.profile_tasks = true;
  profiled.metrics_interval_ms = 1;

  // Interleave the three gated configurations (one run of each per round);
  // the central storm rides the same rotation for cross-file continuity.
  const std::vector<double> ab =
      storm_ab_ns_per_task({steal, nometrics, profiled, central}, reps);
  const double steal_hw = ab[0];
  const double nometrics_hw = ab[1];
  const double profile_hw = ab[2];
  const double central_hw = ab[3];
  entries.push_back({"sched_storm_central_t" + std::to_string(hw), central_hw});
  entries.push_back({"sched_storm_steal_t" + std::to_string(hw), steal_hw});
  entries.push_back(
      {"sched_storm_steal_nometrics_t" + std::to_string(hw), nometrics_hw});
  entries.push_back(
      {"sched_storm_steal_profile_t" + std::to_string(hw), profile_hw});
  // Oversubscribed (threads > cores on CI): the contended point pr5/6 track.
  const unsigned contended = 4;
  if (contended != hw) {
    rt::RuntimeConfig steal4 = steal;
    steal4.num_threads = contended;
    rt::RuntimeConfig nometrics4 = nometrics;
    nometrics4.num_threads = contended;
    const rt::RuntimeConfig central4{.num_threads = contended,
                                     .sched = rt::SchedPolicy::Central};
    const std::vector<double> ab4 =
        storm_ab_ns_per_task({steal4, nometrics4, central4}, reps);
    entries.push_back(
        {"sched_storm_central_t" + std::to_string(contended), ab4[2]});
    entries.push_back(
        {"sched_storm_steal_t" + std::to_string(contended), ab4[0]});
    entries.push_back(
        {"sched_storm_steal_nometrics_t" + std::to_string(contended), ab4[1]});
  }

  // --- instrument micro-costs ----------------------------------------------
  obs::MetricsRegistry reg;
  obs::Counter* counter = reg.counter("bench.counter");
  obs::LatencyHistogram* hist = reg.histogram("bench.hist");
  const double inc_ns =
      op_ns(reps, 10'000'000, [&](std::size_t) { counter->inc(); });
  const double record_ns =
      op_ns(reps, 10'000'000, [&](std::size_t i) { hist->record(i & 0xffff); });
  entries.push_back({"obs_counter_inc_ns", inc_ns});
  entries.push_back({"obs_hist_record_ns", record_ns});

  // A registry populated like a real run (Runtime + engine collectors export
  // ~50 metrics; give the synthetic one the same order of magnitude).
  for (int i = 0; i < 40; ++i) {
    reg.counter("bench.c" + std::to_string(i));
    reg.gauge("bench.g" + std::to_string(i));
  }
  reg.add_collector([](obs::SampleSink& sink) {
    for (int i = 0; i < 10; ++i) {
      sink.counter("bench.ext" + std::to_string(i), 42);
    }
  });
  double snap_sink = 0.0;
  const double snapshot_ns = op_ns(reps, 2'000, [&](std::size_t) {
    snap_sink += static_cast<double>(reg.snapshot().metrics.size());
  });
  if (snap_sink < 0) std::fprintf(stderr, ".");  // defeat dead-code elimination
  entries.push_back({"obs_registry_snapshot_ns", snapshot_ns});

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "pr7_observability: cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"pr\": 7,\n");
  std::fprintf(out, "  \"generated_by\": \"bench/pr7_observability\",\n");
  std::fprintf(out,
               "  \"baseline\": \"BENCH_pr6.json (same storm names; re-run the "
               "pr6 build on the same host for drift-free A/B)\",\n");
  std::fprintf(out,
               "  \"drift_note\": \"container clocks drift between merges: do NOT "
               "compare raw ns across BENCH_prN.json files recorded at different "
               "times. The acceptance A/B protocol is interleaved same-host runs "
               "of both builds (see docs/BENCHMARKS.md, pr7 section). The "
               "metrics-on/off gates below are within-file, same-run ratios.\",\n");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(out, "  \"reps\": %d,\n", reps);
  std::fprintf(out, "  \"benches\": {\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::fprintf(out, "    \"%s\": {\"%s\": %.6g}%s\n", entries[i].name.c_str(),
                 entries[i].unit, entries[i].value,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"derived\": {\n");
  std::fprintf(out,
               "    \"storm_metrics_over_nometrics\": %.3f,\n"
               "    \"storm_profile_over_metrics\": %.3f,\n"
               "    \"storm_profile_over_nometrics\": %.3f\n",
               steal_hw / nometrics_hw, profile_hw / steal_hw,
               profile_hw / nometrics_hw);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  if (out != stdout) std::fclose(out);

  std::fprintf(stderr,
               "pr7_observability: storm steal t%u = %.1f ns/task (nometrics "
               "%.1f, profiled %.1f; on/off ratio %.3f), counter inc %.2f ns, "
               "hist record %.2f ns, snapshot %.0f ns\n",
               hw, steal_hw, nometrics_hw, profile_hw, steal_hw / nometrics_hw,
               inc_ns, record_ns, snapshot_ns);
  return 0;
}

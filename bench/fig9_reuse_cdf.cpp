// Regenerates Figure 9: cumulative generated reuse vs normalized creator
// task id, per benchmark under Dynamic ATM (plus the Blackscholes single-
// iteration variant). A point (x, y) means: the tasks among the first x% of
// created tasks provided y% of all reuse.
#include "bench_common.hpp"

#include "apps/blackscholes.hpp"

namespace {

// The reuse log holds one creator id per memoization event; the curve is
// the CDF of creator ids normalized by the total task count.
void print_curve(const std::string& name, std::vector<atm::rt::TaskId> creators,
                 std::uint64_t total_tasks, double reuse_fraction) {
  using namespace atm;
  std::sort(creators.begin(), creators.end());
  std::cout << "\n" << name << " (reuse " << fmt_percent(reuse_fraction)
            << ", events " << creators.size() << ")\n";
  if (creators.empty() || total_tasks == 0) {
    std::cout << "  (no reuse events)\n";
    return;
  }
  constexpr int kPoints = 20;
  for (int i = 1; i <= kPoints; ++i) {
    const double x = static_cast<double>(i) / kPoints;  // normalized task id
    const auto limit = static_cast<rt::TaskId>(x * static_cast<double>(total_tasks));
    const auto covered = static_cast<std::size_t>(
        std::upper_bound(creators.begin(), creators.end(), limit) - creators.begin());
    const double y = static_cast<double>(covered) / static_cast<double>(creators.size());
    std::cout << "  x=" << fmt_double(x, 2) << " |" << ascii_bar(y, 1.0, 50) << "| "
              << fmt_percent(y, 1) << "\n";
  }
}

}  // namespace

int main() {
  using namespace atm;
  using namespace atm::bench;

  print_header("Figure 9: REDUNDANCY GENERATION DURING EXECUTION (cumulative reuse)",
               "Paper: Brumar et al., IPDPS'17, Fig. 9");

  const auto preset = apps::preset_from_env();
  const unsigned threads = default_threads();

  // Blackscholes 1-iteration variant first (the paper's extra curve):
  // reuse within a single pricing pass is pure input redundancy (paper: 50%).
  {
    auto params = apps::BlackscholesParams::preset(preset);
    params.iterations = 1;
    const apps::BlackscholesApp one_iter(params);
    const RunResult run = one_iter.run({.threads = threads, .mode = AtmMode::Dynamic});
    print_curve("Blackscholes 1iter", run.atm.reuse_creators, run.counters.submitted,
                run.reuse_fraction());
  }

  for (const auto& app : apps::make_all_apps(preset)) {
    const RunResult run = app->run({.threads = threads, .mode = AtmMode::Dynamic});
    print_curve(app->name(), run.atm.reuse_creators, run.counters.submitted,
                run.reuse_fraction());
  }

  std::cout << "\nPaper shape to check: Blackscholes generates most reuse early\n"
               "(steep initial rise); stencils spread reuse across the whole run;\n"
               "LU reuses at short distances spread over the execution — this is\n"
               "why the THT must keep being updated during the whole run.\n";
  return 0;
}

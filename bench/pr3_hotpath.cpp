// PR 3 hot-path benchmark: machine-readable numbers for the scheduler and
// hash-key changes. Emits JSON (bench name -> ns/op plus derived ratios and
// the reuse check), consumed by `tools/run_benches.sh <build> json`, which
// writes BENCH_pr3.json — the start of the checked-in perf trajectory.
//
//   pr3_hotpath [--out=PATH]     (default: JSON to stdout)
//
// Sections:
//   sched_storm_{central,steal}_tN   fine-grained task storm through the
//                                    full runtime, ns per task
//   sched_pushpop_{central,steal}    raw scheduler push+pop pair, one worker
//   compute_key_{gathered,planned}_pP  per-byte gather vs coalesced plan on
//                                    a six-region task at p = P
//   reuse_percent_blackscholes_static  sanity: memoization still reuses
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "runtime/scheduler.hpp"

namespace {

using namespace atm;
using namespace atm::bench;

struct Entry {
  std::string name;
  double value = 0.0;
  const char* unit = "ns_per_op";
};

double storm_ns_per_task(rt::SchedPolicy sched, unsigned threads, int reps) {
  const std::size_t tasks = 20'000;
  const int waves = 5;
  const double rate = sched_storm_median(sched, threads, tasks, waves, reps);
  return 1e9 / rate;
}

double pushpop_ns(rt::SchedPolicy policy, std::size_t push_lane) {
  auto sched = rt::Scheduler::make(policy, /*workers=*/1, nullptr);
  rt::Task task;
  constexpr int kOps = 400'000;
  Timer timer;
  for (int i = 0; i < kOps; ++i) {
    sched->push(&task, push_lane);
    (void)sched->try_pop(0);
  }
  const double secs = timer.elapsed_s();
  sched->shutdown();
  return secs * 1e9 / kOps;
}

double key_ns(MultiRegionKeyFixture& fx, double p, bool planned) {
  const auto layout = InputLayout::from_task(fx.task);
  const auto& order = fx.sampler.order_for(0, layout);
  const GatherPlan& plan = fx.sampler.plan_for(0, layout, p);
  const std::uint64_t seed = 4;
  // Calibrate the iteration count so each measurement runs ~0.2 s.
  int iters = 64;
  volatile HashKey sink = 0;
  for (;;) {
    Timer timer;
    for (int i = 0; i < iters; ++i) {
      sink = planned ? compute_key(fx.task, plan, seed).key
                     : compute_key(fx.task, order, p, seed).key;
    }
    (void)sink;
    const double secs = timer.elapsed_s();
    if (secs >= 0.2 || iters >= (1 << 20)) return secs * 1e9 / iters;
    iters *= 4;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int reps = default_reps();
  std::vector<Entry> entries;

  // --- Scheduler: fine-grained storm ---------------------------------------
  // Measured at the hardware thread count (the acceptance point) and at a
  // contended count (>= 4 workers; oversubscribed on small machines): the
  // central queue's collapse under contention is the ceiling the steal
  // scheduler removes, and it must be visible even when hw == 1.
  const double central_hw = storm_ns_per_task(rt::SchedPolicy::Central, hw, reps);
  const double steal_hw = storm_ns_per_task(rt::SchedPolicy::Steal, hw, reps);
  entries.push_back({"sched_storm_central_t" + std::to_string(hw), central_hw});
  entries.push_back({"sched_storm_steal_t" + std::to_string(hw), steal_hw});
  const unsigned contended = std::max(4u, hw);
  const double central_c = storm_ns_per_task(rt::SchedPolicy::Central, contended, reps);
  const double steal_c = storm_ns_per_task(rt::SchedPolicy::Steal, contended, reps);
  entries.push_back({"sched_storm_central_t" + std::to_string(contended), central_c});
  entries.push_back({"sched_storm_steal_t" + std::to_string(contended), steal_c});

  // --- Scheduler: raw push/pop pair (1 worker; local + external lanes) ------
  entries.push_back({"sched_pushpop_central", pushpop_ns(rt::SchedPolicy::Central, 0)});
  entries.push_back({"sched_pushpop_steal_local", pushpop_ns(rt::SchedPolicy::Steal, 0)});
  entries.push_back({"sched_pushpop_steal_external",
                     pushpop_ns(rt::SchedPolicy::Steal, 1)});

  // --- Hash key: gathered vs planned ----------------------------------------
  MultiRegionKeyFixture fx;
  double planned_worst_speedup = 1e9;
  for (double p : {0.05, 0.1, 0.3}) {
    const double gathered = key_ns(fx, p, /*planned=*/false);
    const double planned = key_ns(fx, p, /*planned=*/true);
    char label[64];
    std::snprintf(label, sizeof label, "compute_key_gathered_p%.2f", p);
    entries.push_back({label, gathered});
    std::snprintf(label, sizeof label, "compute_key_planned_p%.2f", p);
    entries.push_back({label, planned});
    planned_worst_speedup = std::min(planned_worst_speedup, gathered / planned);
  }

  // --- Reuse sanity: the scheduler change must not break memoization --------
  const auto app = apps::make_app("blackscholes", apps::Preset::Test);
  RunConfig cfg{.threads = hw, .sched = rt::SchedPolicy::Steal,
                .mode = AtmMode::Static};
  const RunResult run = app->run(cfg);
  entries.push_back(
      {"reuse_percent_blackscholes_static", 100.0 * run.reuse_fraction(), "percent"});

  const double storm_speedup = central_hw / steal_hw;

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "pr3_hotpath: cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"pr\": 3,\n");
  std::fprintf(out, "  \"generated_by\": \"bench/pr3_hotpath\",\n");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(out, "  \"reps\": %d,\n", reps);
  std::fprintf(out, "  \"benches\": {\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::fprintf(out, "    \"%s\": {\"%s\": %.1f}%s\n", entries[i].name.c_str(),
                 entries[i].unit, entries[i].value,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"derived\": {\n");
  std::fprintf(out,
               "    \"storm_steal_over_central_at_max_hw\": %.2f,\n"
               "    \"storm_steal_over_central_contended_t%u\": %.2f,\n"
               "    \"planned_gather_min_speedup_p_le_0.3\": %.2f\n",
               storm_speedup, contended, central_c / steal_c,
               planned_worst_speedup);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  if (out != stdout) std::fclose(out);

  std::fprintf(stderr,
               "pr3_hotpath: storm steal/central = %.2fx, planned-gather min "
               "speedup (p<=0.3) = %.2fx, reuse = %.1f%%\n",
               storm_speedup, planned_worst_speedup, 100.0 * run.reuse_fraction());
  return 0;
}

// Regenerates Figure 7: Gauss-Seidel execution traces at 2 and 8 cores
// under an Oracle(95%)-style fixed-p configuration. The paper's finding:
// the ATM:HashKey and ATM:Memoize states are on average ~60% slower at 8
// cores than at 2 — shared memory contention, not lock contention.
#include <thread>

#include "bench_common.hpp"

int main() {
  using namespace atm;
  using namespace atm::bench;
  using rt::TraceState;

  print_header("Figure 7: GAUSS-SEIDEL EXECUTION TRACE (2 vs 8 cores)",
               "Paper: Brumar et al., IPDPS'17, Fig. 7 — memoization states ~60% "
               "slower at 8 cores");

  const auto preset = apps::preset_from_env();
  const auto app = apps::make_app("gauss-seidel", preset);

  double mean_hash[2] = {0, 0};
  double mean_memo[2] = {0, 0};
  const unsigned counts[2] = {2, 8};
  for (int i = 0; i < 2; ++i) {
    RunConfig config{.threads = counts[i], .mode = AtmMode::FixedP};
    config.fixed_p = 0.01;  // a small oracle-like p: heavy reuse phase
    config.tracing = true;
    const RunResult run = app->run(config);

    rt::LaneSummary all;
    for (const auto& lane : run.lane_summaries) {
      for (std::size_t k = 0; k < rt::kTraceStateCount; ++k) {
        all.total_ns[k] += lane.total_ns[k];
        all.event_count[k] += lane.event_count[k];
      }
    }
    mean_hash[i] = all.mean_ns(TraceState::HashKey);
    mean_memo[i] = all.mean_ns(TraceState::Memoize);

    std::cout << "\n--- " << counts[i] << " cores --- (reuse "
              << fmt_percent(run.reuse_fraction()) << ", wall "
              << fmt_double(run.wall_seconds * 1e3, 1) << " ms)\n";
    TablePrinter table({"State", "events", "total ms", "mean us"});
    for (TraceState s : {TraceState::TaskExec, TraceState::HashKey, TraceState::Memoize,
                         TraceState::Idle, TraceState::Creation}) {
      const auto k = static_cast<std::size_t>(s);
      table.add_row({rt::trace_state_name(s), std::to_string(all.event_count[k]),
                     fmt_double(static_cast<double>(all.total_ns[k]) * 1e-6, 2),
                     fmt_double(all.mean_ns(s) * 1e-3, 2)});
    }
    table.print(std::cout);
    std::cout << "Timeline (.idle X exec h hash m memoize c create):\n"
              << run.ascii_timeline;
  }

  const double hash_slowdown = mean_hash[0] > 0 ? mean_hash[1] / mean_hash[0] : 0.0;
  const double memo_slowdown = mean_memo[0] > 0 ? mean_memo[1] / mean_memo[0] : 0.0;
  std::cout << "\nMean ATM:HashKey duration, 8 vs 2 cores: "
            << fmt_double(hash_slowdown, 2) << "x slower\n"
            << "Mean ATM:Memoize duration, 8 vs 2 cores: "
            << fmt_double(memo_slowdown, 2) << "x slower\n"
            << "(paper: ~1.6x for both — shared-memory contention; this container\n"
            << "has " << std::thread::hardware_concurrency()
            << " hardware threads, so 8 workers also oversubscribe)\n";
  return 0;
}

// PR 10 scale-out benchmark: machine-readable numbers for the steal-half
// scheduler (batched steal_many transfer, locality-ordered victim rings,
// per-thief steal backoff) under the configurations the change targets —
// oversubscribed and high-worker-count storms, where wasted steal sweeps
// and one-task-per-CAS transfer used to dominate. Emits JSON consumed by
// `tools/run_benches.sh <build> json`, which writes BENCH_pr10.json.
//
//   pr10_scale [--out=PATH]     (default: JSON to stdout)
//
// Sections:
//   sched_storm_{central,steal}_tN   fine-grained task storm, ns per task —
//                                    same harness and names as
//                                    BENCH_pr5/pr7.json (t1/t4 continuity
//                                    gate: <= 1.03x regression vs PR 9)
//   sched_storm_steal_oversub_tN     2x-hardware and 8-lane storm configs,
//                                    the steal-half/backoff win surface
//                                    (>= 1.15x vs the PR 9 binary in the
//                                    interleaved cross-build A/B)
//   sched_storm_steal_numa_*         oversubscribed storm with --numa
//                                    interleave vs off: single-node hosts
//                                    must measure ~1.0x (silent no-op gate)
//   sched_acquire_storm_lN           scheduler-level contended acquisition
//                                    storm (producer lane + N-1 thieves,
//                                    tasks acquired but never executed):
//                                    ns per acquisition. The runtime-level
//                                    storms are submission-bound on small
//                                    hosts (t1 == t8 ns/task), which hides
//                                    the acquisition path; this config is
//                                    the cross-build A/B surface where the
//                                    steal-half >= 1.15x gate is measured
//   sched_steal_batch_*              steal-batch-size histogram stats from
//                                    an oversubscribed storm (mean > 1
//                                    proves batched transfer engages)
//   sched_victim_distance_p50        victim-distance histogram median (low
//                                    = locality-ordered rings keep steals
//                                    near)
//
// All storm configs within one section run INTERLEAVED (round-robin one rep
// of each config per round) so machine drift lands on every config equally
// — the same protocol the cross-build BENCH A/Bs use.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "runtime/scheduler.hpp"

namespace {

using namespace atm;
using namespace atm::bench;

struct Entry {
  std::string name;
  double value = 0.0;
  const char* unit = "ns_per_op";
};

constexpr std::size_t kStormTasks = 20'000;
constexpr int kStormWaves = 5;

/// Steal-batch/victim-distance histogram stats after an oversubscribed
/// storm through the full runtime (the registry owns the histograms; the
/// scheduler records into them on every successful steal).
struct StealHistStats {
  double batch_mean = 0.0;
  double batch_p95 = 0.0;
  std::uint64_t batch_count = 0;
  double distance_p50 = 0.0;
};

StealHistStats oversub_steal_hist(unsigned workers) {
  rt::Runtime runtime({.num_threads = workers, .sched = rt::SchedPolicy::Steal});
  const auto* type =
      runtime.register_type({.name = "fine", .memoizable = false, .atm = {}});
  // Nested submissions: children are owner pushes into the submitting
  // worker's deque (not the external inboxes), so worker deques build the
  // backlogs steal_many transfers in batches — the path the steal-batch
  // histogram instruments.
  constexpr std::size_t kRoots = 256;
  constexpr int kChildren = 16;
  std::vector<float> cells(kRoots * (kChildren + 1), 1.0f);
  for (int w = 0; w < kStormWaves; ++w) {
    for (std::size_t i = 0; i < kRoots; ++i) {
      float* base = &cells[i * (kChildren + 1)];
      rt::Runtime* rtp = &runtime;
      const rt::TaskType* tp = type;
      runtime.submit(type,
                     [rtp, tp, base] {
                       *base += 1.0f;
                       for (int c = 1; c <= kChildren; ++c) {
                         float* cell = base + c;
                         rtp->submit(tp, [cell] { *cell += 1.0f; },
                                     {rt::inout(cell, 1)});
                       }
                     },
                     {rt::inout(base, 1)});
    }
    runtime.taskwait();
  }
  StealHistStats stats;
  const obs::RegistrySnapshot snap = runtime.metrics().snapshot();
  if (const obs::MetricSample* m = snap.find("sched.steal_batch_size")) {
    stats.batch_mean = m->hist.mean;
    stats.batch_p95 = m->hist.p95;
    stats.batch_count = m->hist.count;
  }
  if (const obs::MetricSample* m = snap.find("sched.victim_distance")) {
    stats.distance_p50 = m->hist.p50;
  }
  return stats;
}

/// Scheduler-level contended acquisition storm: lane 0 owner-pushes a deque
/// backlog; every other lane drains through try_pop (victim-ring sweep +
/// steal transfer + private consume), and lane 0 helps drain its own. Tasks
/// are acquired but never executed, so the measured ns/task IS the
/// acquisition path — the quantity steal-half batching and steal backoff
/// change. One run, ns per acquired task.
double acquire_storm_ns(unsigned lanes) {
  constexpr std::size_t kTasks = 100'000;
  constexpr int kWaves = 5;
  rt::StealScheduler sched(lanes, nullptr);
  std::vector<rt::Task> tasks(kTasks);
  std::atomic<std::size_t> consumed{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  thieves.reserve(lanes - 1);
  for (unsigned lane = 1; lane < lanes; ++lane) {
    thieves.emplace_back([&sched, &consumed, &done, lane] {
      while (!done.load(std::memory_order_relaxed)) {
        if (sched.try_pop(lane) != nullptr) {
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t target = 0;
  for (int w = 0; w < kWaves; ++w) {
    for (std::size_t i = 0; i < kTasks; ++i) sched.push(&tasks[i], 0);
    target += kTasks;
    while (consumed.load(std::memory_order_relaxed) < target) {
      if (sched.try_pop(0) != nullptr) {
        consumed.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  done.store(true, std::memory_order_relaxed);
  for (auto& t : thieves) t.join();
  return 1e9 * secs / (static_cast<double>(kTasks) * kWaves);
}

/// Interleaved medians of the acquisition storm over several lane counts:
/// one rep of each config per round, the same drift-cancelling protocol as
/// the runtime storm blocks.
std::vector<double> acquire_storm_medians(const std::vector<unsigned>& lane_cfgs,
                                          int reps) {
  std::vector<std::vector<double>> samples(lane_cfgs.size());
  for (int r = 0; r < reps; ++r) {
    for (std::size_t c = 0; c < lane_cfgs.size(); ++c) {
      samples[c].push_back(acquire_storm_ns(lane_cfgs[c]));
    }
  }
  std::vector<double> medians(lane_cfgs.size());
  for (std::size_t c = 0; c < lane_cfgs.size(); ++c) {
    std::sort(samples[c].begin(), samples[c].end());
    medians[c] = samples[c][samples[c].size() / 2];
  }
  return medians;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int reps = default_reps();
  std::vector<Entry> entries;

  // --- Continuity storms (t1/t4 names match BENCH_pr5/pr7.json) -------------
  // One interleaved block over all four configs: central/steal at hw and at
  // the contended count, so the continuity ratios are drift-free.
  const unsigned contended = std::max(4u, hw);
  {
    const std::vector<rt::RuntimeConfig> cfgs = {
        {.num_threads = hw, .sched = rt::SchedPolicy::Central},
        {.num_threads = hw, .sched = rt::SchedPolicy::Steal},
        {.num_threads = contended, .sched = rt::SchedPolicy::Central},
        {.num_threads = contended, .sched = rt::SchedPolicy::Steal},
    };
    const std::vector<double> rates =
        sched_storm_medians_interleaved(cfgs, kStormTasks, kStormWaves, reps);
    entries.push_back({"sched_storm_central_t" + std::to_string(hw), 1e9 / rates[0]});
    entries.push_back({"sched_storm_steal_t" + std::to_string(hw), 1e9 / rates[1]});
    entries.push_back(
        {"sched_storm_central_t" + std::to_string(contended), 1e9 / rates[2]});
    entries.push_back(
        {"sched_storm_steal_t" + std::to_string(contended), 1e9 / rates[3]});
  }

  // --- Oversubscribed / high-lane-count storms (the PR 10 win surface) ------
  // workers >= 2x cores: lanes time-slice, so every wasted steal sweep burns
  // a quantum some other lane needed. 8 lanes exercises wide victim rings
  // even on small hosts.
  const unsigned oversub = 2 * hw;
  const unsigned wide = std::max(8u, oversub);
  double oversub_ns = 0.0, wide_ns = 0.0, numa_off_ns = 0.0, numa_on_ns = 0.0;
  {
    rt::RuntimeConfig numa_off{.num_threads = oversub, .sched = rt::SchedPolicy::Steal};
    rt::RuntimeConfig numa_on = numa_off;
    numa_on.numa_policy = NumaPolicy::Interleave;
    const std::vector<rt::RuntimeConfig> cfgs = {
        numa_off,
        {.num_threads = wide, .sched = rt::SchedPolicy::Steal},
        numa_on,
    };
    const std::vector<double> rates =
        sched_storm_medians_interleaved(cfgs, kStormTasks, kStormWaves, reps);
    oversub_ns = 1e9 / rates[0];
    wide_ns = 1e9 / rates[1];
    numa_on_ns = 1e9 / rates[2];
    numa_off_ns = oversub_ns;  // same config, same interleaved block
    entries.push_back(
        {"sched_storm_steal_oversub_t" + std::to_string(oversub), oversub_ns});
    entries.push_back({"sched_storm_steal_oversub_t" + std::to_string(wide), wide_ns});
    entries.push_back({"sched_storm_steal_numa_off_t" + std::to_string(oversub),
                       numa_off_ns});
    entries.push_back({"sched_storm_steal_numa_interleave_t" + std::to_string(oversub),
                       numa_on_ns});
  }

  // --- Contended acquisition storms (scheduler-level A/B surface) -----------
  double acquire_l8 = 0.0, acquire_l16 = 0.0;
  {
    const std::vector<double> medians = acquire_storm_medians({8u, 16u}, reps);
    acquire_l8 = medians[0];
    acquire_l16 = medians[1];
    entries.push_back({"sched_acquire_storm_l8", acquire_l8});
    entries.push_back({"sched_acquire_storm_l16", acquire_l16});
  }

  // --- Steal-batch / victim-distance histograms ------------------------------
  const StealHistStats hist = oversub_steal_hist(wide);
  entries.push_back({"sched_steal_batch_mean", hist.batch_mean, "tasks"});
  entries.push_back({"sched_steal_batch_p95", hist.batch_p95, "tasks"});
  entries.push_back(
      {"sched_steal_batches", static_cast<double>(hist.batch_count), "count"});
  entries.push_back({"sched_victim_distance_p50", hist.distance_p50, "lanes"});

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "pr10_scale: cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"pr\": 10,\n");
  std::fprintf(out, "  \"generated_by\": \"bench/pr10_scale\",\n");
  std::fprintf(out,
               "  \"baseline\": \"BENCH_pr7.json (sched_storm_{central,steal}_tN "
               "continuity names; re-run the older build on the same host for "
               "drift-free A/B)\",\n");
  std::fprintf(out,
               "  \"drift_note\": \"container clocks drift between merges: do NOT "
               "compare raw ns across BENCH_prN.json files recorded at different "
               "times. The acceptance A/B protocol is interleaved same-host runs "
               "of both builds; see docs/BENCHMARKS.md (pr10 section) for the "
               "merge-time medians on the oversubscribed storm configs.\",\n");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(out, "  \"reps\": %d,\n", reps);
  std::fprintf(out, "  \"benches\": {\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::fprintf(out, "    \"%s\": {\"%s\": %.2f}%s\n", entries[i].name.c_str(),
                 entries[i].unit, entries[i].value,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"derived\": {\n");
  std::fprintf(out,
               "    \"oversub_over_wide\": %.2f,\n"
               "    \"numa_interleave_over_off_single_node\": %.3f,\n"
               "    \"steal_batch_mean_tasks\": %.2f\n",
               wide_ns > 0.0 ? oversub_ns / wide_ns : 0.0,
               numa_off_ns > 0.0 ? numa_on_ns / numa_off_ns : 0.0,
               hist.batch_mean);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  if (out != stdout) std::fclose(out);

  std::fprintf(stderr,
               "pr10_scale: oversub t%u = %.1f ns/task, wide t%u = %.1f ns/task, "
               "acquire storm l8 = %.1f ns (l16 = %.1f), numa on/off = %.3f, "
               "steal batches = %llu (mean %.1f tasks, victim-distance p50 "
               "%.1f)\n",
               oversub, oversub_ns, wide, wide_ns, acquire_l8, acquire_l16,
               numa_off_ns > 0.0 ? numa_on_ns / numa_off_ns : 0.0,
               static_cast<unsigned long long>(hist.batch_count), hist.batch_mean,
               hist.distance_p50);
  return 0;
}

// Regenerates Table II: the Dynamic-ATM parameters (L_training, tau_max)
// per benchmark, at paper scale and at the current preset, plus the
// training-budget sanity check the paper reports ("training with <= 5% of
// the total tasks"; average 1.48%).
#include "bench_common.hpp"

int main() {
  using namespace atm;
  using namespace atm::bench;

  print_header("Table II: DYNAMIC ATM PARAMETERS",
               "Paper: Brumar et al., IPDPS'17, Table II");

  TablePrinter table({"Benchmark", "L_training (paper)", "tau_max (paper)",
                      "L_training (this preset)", "tau_max (this preset)",
                      "tasks (this preset)", "L/tasks"});

  const auto preset = apps::preset_from_env();
  auto paper_apps = apps::make_all_apps(apps::Preset::Paper);
  auto preset_apps = apps::make_all_apps(preset);

  double ratio_sum = 0.0;
  for (std::size_t i = 0; i < preset_apps.size(); ++i) {
    const auto paper_params = paper_apps[i]->atm_params();
    const auto params = preset_apps[i]->atm_params();
    const RunResult run =
        preset_apps[i]->run({.threads = default_threads(), .mode = AtmMode::Off});
    const double ratio = static_cast<double>(params.l_training) /
                         static_cast<double>(run.counters.submitted);
    ratio_sum += ratio;
    table.add_row({preset_apps[i]->name(), std::to_string(paper_params.l_training),
                   fmt_percent(paper_params.tau_max, 0),
                   std::to_string(params.l_training), fmt_percent(params.tau_max, 0),
                   std::to_string(run.counters.submitted), fmt_percent(ratio, 2)});
  }
  table.print(std::cout);
  std::cout << "\nAverage L/tasks = "
            << fmt_percent(ratio_sum / static_cast<double>(preset_apps.size()), 2)
            << "  (paper: average 1.48%, upper bound ~5%)\n";
  return 0;
}

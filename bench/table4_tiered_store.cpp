// Table IV (beyond the paper): the tiered memo store.
//
// Part A — capacity tier: Gauss-Seidel under Static ATM with a deliberately
// small L1 THT (one bucket), L1-only vs L1 + byte-budgeted L2 (and L2 with
// RLE compression). The cross-iteration reuse distance of the stencil
// blocks overflows the small L1; the L2 tier catches the evictions and
// promotes them back on recurrence, so the hit rate rises at equal L1 size.
//
// Part B — persistent warm start: Dynamic ATM trains, saves the store
// (THT + L2 + p-controllers), and a fresh process-equivalent run loads it:
// steady state from iteration 1, zero training executions.
#include <cstdio>
#include <cstdlib>

#include "apps/gauss_seidel.hpp"
#include "bench_common.hpp"

namespace {

using namespace atm;
using namespace atm::bench;

struct TierRow {
  const char* label;
  RunConfig config;
};

/// The tiered-store story needs real redundancy: duplicated interior blocks
/// (the paper's initialization patterns) that repeat across iterations. The
/// Test preset's 4x4 grid is all wall-adjacent — every block sees distinct
/// halos and nothing repeats — so at test scale we widen the grid (interior
/// appears) while keeping the small blocks and iteration count cheap.
apps::StencilParams tiered_params(Preset preset) {
  apps::StencilParams p = apps::StencilParams::preset(preset);
  if (preset == Preset::Test) {
    p.grid_blocks = 8;
    p.iterations = 6;
  }
  return p;
}

}  // namespace

int main() {
  print_header("Table IV: TIERED MEMO STORE (L2 CAPACITY TIER + WARM START)",
               "Beyond the paper: AttMEMO-style hot/capacity split, persistent THT");

  const auto preset = apps::preset_from_env();
  const apps::GaussSeidelApp gs(tiered_params(preset));
  const apps::App* app = &gs;
  const int reps = default_reps();

  // --- Part A: hit rate vs store tiering at equal (small) L1 size ---------
  RunConfig small_l1{.threads = default_threads(), .mode = AtmMode::Static};
  small_l1.log2_buckets = 0;   // a single bucket...
  small_l1.bucket_capacity = 24;  // ...deliberately smaller than the working set

  RunConfig with_l2 = small_l1;
  with_l2.l2_enabled = true;
  RunConfig with_l2c = with_l2;
  with_l2c.l2_compress = true;

  TablePrinter tiers({"Config", "Wall", "Hit rate", "THT hits", "L2 hits",
                      "Demotions", "ATM mem", "Store mem"});
  for (const TierRow& row : {TierRow{"L1 only (N=0,M=24)", small_l1},
                             TierRow{"L1 + L2", with_l2},
                             TierRow{"L1 + L2 (RLE)", with_l2c}}) {
    const RunResult run = run_median(*app, row.config, reps);
    // Hit rate over steady-state lookups: tht_hits counts L1 hits and
    // tht_misses counts L1 misses (the L2 probe happens inside a miss).
    const double total = static_cast<double>(run.atm.tht_hits + run.atm.tht_misses);
    const double hit_rate =
        total > 0 ? static_cast<double>(run.atm.tht_hits + run.atm.l2_hits) / total : 0.0;
    tiers.add_row({row.label, fmt_double(run.wall_seconds * 1e3, 1) + " ms",
                   fmt_percent(hit_rate), std::to_string(run.atm.tht_hits),
                   std::to_string(run.atm.l2_hits), std::to_string(run.atm.l2_demotions),
                   fmt_bytes(run.atm_memory_bytes),
                   fmt_bytes(run.atm.l2_memory_bytes)});
  }
  tiers.print(std::cout);

  // --- Part B: save-store / load-store warm start --------------------------
  const std::string store_path = "table4_store.atmstore";
  RunConfig cold{.threads = default_threads(), .mode = AtmMode::Dynamic};
  cold.l2_enabled = true;
  cold.save_store_path = store_path;
  const RunResult cold_run = app->run(cold);

  RunConfig warm = cold;
  warm.save_store_path.clear();
  warm.load_store_path = store_path;
  const RunResult warm_run = app->run(warm);
  std::remove(store_path.c_str());

  TablePrinter warmth({"Run", "Wall", "Reuse", "THT hits", "L2 hits",
                       "Training checks", "p steps", "Final phase"});
  const auto phase_name = [](TrainingPhase ph) {
    return ph == TrainingPhase::Steady ? "steady" : "training";
  };
  warmth.add_row({"cold (trains)", fmt_double(cold_run.wall_seconds * 1e3, 1) + " ms",
                  fmt_percent(cold_run.reuse_fraction()),
                  std::to_string(cold_run.atm.tht_hits),
                  std::to_string(cold_run.atm.l2_hits),
                  std::to_string(cold_run.atm.training_hits),
                  std::to_string(cold_run.p_history.size()),
                  phase_name(cold_run.final_phase)});
  warmth.add_row({"warm (--load-store)",
                  fmt_double(warm_run.wall_seconds * 1e3, 1) + " ms",
                  fmt_percent(warm_run.reuse_fraction()),
                  std::to_string(warm_run.atm.tht_hits),
                  std::to_string(warm_run.atm.l2_hits),
                  std::to_string(warm_run.atm.training_hits),
                  std::to_string(warm_run.p_history.size()),
                  phase_name(warm_run.final_phase)});
  warmth.print(std::cout);

  std::cout << "\nThe warm run starts in steady state (0 training checks, no p moves):\n"
               "the training phase of the cold run is amortized across restarts.\n";
  return 0;
}

// Regenerates Figure 8: Blackscholes executed with and without Dynamic ATM,
// with the number of ready tasks over time. The paper's finding: with ATM,
// workers finish (memoize) tasks faster than the master can create them, so
// the ready queue drains to ~empty — task-creation throughput becomes the
// bottleneck.
#include "bench_common.hpp"

namespace {

/// Time-weighted depth profile: the queue depth is a step function of the
/// (t, depth) samples; integrate it per window. Robust to sampling gaps
/// (e.g. scheduler stalls) — depth carries forward between samples.
/// Returns the overall time-weighted mean depth.
double print_depth_profile(const std::vector<atm::rt::DepthSample>& samples,
                           std::uint64_t t0, std::uint64_t t1, std::size_t buckets) {
  using namespace atm;
  if (samples.empty() || t1 <= t0) {
    std::cout << "  (no samples)\n";
    return 0.0;
  }
  std::vector<double> area(buckets, 0.0);  // integral of depth over time
  const double span = static_cast<double>(t1 - t0);
  const double window = span / static_cast<double>(buckets);

  double current_depth = 0.0;
  std::uint64_t current_t = t0;
  double total_area = 0.0;
  auto advance_to = [&](std::uint64_t t) {
    while (current_t < t) {
      const auto b = std::min(buckets - 1,
                              static_cast<std::size_t>(
                                  static_cast<double>(current_t - t0) / window));
      const std::uint64_t window_end =
          t0 + static_cast<std::uint64_t>(window * static_cast<double>(b + 1));
      const std::uint64_t seg_end = std::min<std::uint64_t>(t, std::max(window_end, current_t + 1));
      area[b] += current_depth * static_cast<double>(seg_end - current_t);
      total_area += current_depth * static_cast<double>(seg_end - current_t);
      current_t = seg_end;
    }
  };
  for (const auto& s : samples) {
    if (s.t < t0) continue;
    advance_to(std::min(s.t, t1));
    current_depth = s.depth;
  }
  advance_to(t1);

  double peak = 1.0;
  std::vector<double> mean(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    mean[b] = area[b] / window;
    peak = std::max(peak, mean[b]);
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    std::cout << "  t=" << fmt_double(static_cast<double>(b) /
                                          static_cast<double>(buckets) * 100.0,
                                      0)
              << "%\t|" << ascii_bar(mean[b], peak, 50) << "| " << fmt_double(mean[b], 1)
              << " ready\n";
  }
  return total_area / span;
}

}  // namespace

int main() {
  using namespace atm;
  using namespace atm::bench;
  using rt::TraceState;

  print_header("Figure 8: BLACKSCHOLES TRACE AND READY-TASK COUNT (with/without ATM)",
               "Paper: Brumar et al., IPDPS'17, Fig. 8 — with ATM the RQ drains: "
               "creation throughput limits");

  const auto preset = apps::preset_from_env();
  const auto app = apps::make_app("blackscholes", preset);
  const unsigned threads = default_threads();

  double mean_depth[2] = {0, 0};
  const char* labels[2] = {"WITHOUT ATM", "WITH Dynamic ATM"};
  for (int i = 0; i < 2; ++i) {
    RunConfig config{.threads = threads,
                     .mode = i == 0 ? AtmMode::Off : AtmMode::Dynamic};
    config.tracing = true;
    const RunResult run = app->run(config);

    std::uint64_t t0 = UINT64_MAX, t1 = 0;
    for (const auto& s : run.depth_samples) {
      t0 = std::min(t0, s.t);
      t1 = std::max(t1, s.t);
    }
    std::cout << "\n--- " << labels[i] << " --- (wall "
              << fmt_double(run.wall_seconds * 1e3, 1) << " ms, reuse "
              << fmt_percent(run.reuse_fraction()) << ")\n";
    std::cout << "Ready-queue depth over time (time-weighted mean per 5% window):\n";
    mean_depth[i] = print_depth_profile(run.depth_samples, t0, t1, 20);

    rt::LaneSummary all;
    for (const auto& lane : run.lane_summaries) {
      for (std::size_t k = 0; k < rt::kTraceStateCount; ++k) {
        all.total_ns[k] += lane.total_ns[k];
        all.event_count[k] += lane.event_count[k];
      }
    }
    std::cout << "State totals: exec "
              << fmt_double(static_cast<double>(
                                all.total_ns[static_cast<int>(TraceState::TaskExec)]) *
                                1e-6,
                            1)
              << " ms, creation "
              << fmt_double(static_cast<double>(
                                all.total_ns[static_cast<int>(TraceState::Creation)]) *
                                1e-6,
                            1)
              << " ms, hash+memoize "
              << fmt_double(static_cast<double>(
                                all.total_ns[static_cast<int>(TraceState::HashKey)] +
                                all.total_ns[static_cast<int>(TraceState::Memoize)]) *
                                1e-6,
                            1)
              << " ms, idle "
              << fmt_double(static_cast<double>(
                                all.total_ns[static_cast<int>(TraceState::Idle)]) *
                                1e-6,
                            1)
              << " ms\n";
    std::cout << "Timeline (.idle X exec h hash m memoize c create):\n"
              << run.ascii_timeline;
  }

  std::cout << "\nMean ready-queue depth: without ATM " << fmt_double(mean_depth[0], 1)
            << " vs with ATM " << fmt_double(mean_depth[1], 1)
            << "\nPaper shape to check: the ATM run's queue stays near empty —\n"
               "memoized tasks retire as fast as the master creates them.\n";
  return 0;
}

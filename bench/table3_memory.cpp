// Regenerates Table III: ATM memory overhead with respect to the
// application footprint (paper: 3.7% .. 21.21%, average 9.4%).
#include "bench_common.hpp"

int main() {
  using namespace atm;
  using namespace atm::bench;

  print_header("Table III: ATM MEMORY OVERHEAD WITH RESPECT TO THE APPLICATION",
               "Paper: Brumar et al., IPDPS'17, Table III (average 9.4%)");

  TablePrinter table({"Benchmark", "App memory", "ATM memory (pinned)",
                      "Overhead", "Paper"});
  const char* paper_overheads[] = {"4.9%", "9.8%", "9.26%", "21.21%", "7.7%", "3.7%"};

  const auto preset = apps::preset_from_env();
  const auto apps_list = apps::make_all_apps(preset);
  double sum = 0.0;
  for (std::size_t i = 0; i < apps_list.size(); ++i) {
    // Dynamic ATM run: the configuration whose footprint the paper reports
    // (N=8, M=128 as in §IV-B).
    const RunConfig config{.threads = default_threads(), .mode = AtmMode::Dynamic};
    const RunResult run = apps_list[i]->run(config);
    const double overhead = static_cast<double>(run.atm_memory_bytes) /
                            static_cast<double>(run.app_memory_bytes);
    sum += overhead;
    table.add_row({apps_list[i]->name(), fmt_bytes(run.app_memory_bytes),
                   fmt_bytes(run.atm_memory_bytes), fmt_percent(overhead),
                   paper_overheads[i]});
  }
  table.print(std::cout);
  std::cout << "\nAverage overhead = "
            << fmt_percent(sum / static_cast<double>(apps_list.size()))
            << "  (paper average: 9.4%)\n"
            << "ATM memory counts THT snapshots + IKT + sampler index caches +\n"
               "training state actually pinned at the end of the run; the\n"
               "pre-faulted arena slack is recyclable and excluded (docs/DESIGN.md §5).\n";
  return 0;
}

// Regenerates Figure 4: program correctness (percent) with Static ATM,
// Dynamic ATM and Oracle(95%). Paper: Static always 100%; Dynamic loses
// 1.2% (kmeans) and 3.2% (swaptions), average degradation 0.7%.
#include "bench_common.hpp"

int main() {
  using namespace atm;
  using namespace atm::bench;

  print_header("Figure 4: CORRECTNESS (Static ATM, Dynamic ATM, Oracle(95%))",
               "Paper: Brumar et al., IPDPS'17, Fig. 4");

  TablePrinter table(
      {"Benchmark", "Static ATM", "Dynamic ATM", "Oracle(95%)", "Dynamic p", "Blacklist"});

  const auto preset = apps::preset_from_env();
  const unsigned threads = default_threads();

  RunningStat dynamic_loss;
  for (const auto& app : apps::make_all_apps(preset)) {
    const RunConfig base{.threads = threads, .mode = AtmMode::Off};
    const RunResult reference = app->run(base);

    RunConfig st = base;
    st.mode = AtmMode::Static;
    const RunResult static_run = app->run(st);
    const double static_corr =
        correctness_percent(app->program_error(reference, static_run));

    RunConfig dy = base;
    dy.mode = AtmMode::Dynamic;
    const RunResult dynamic_run = app->run(dy);
    const double dynamic_corr =
        correctness_percent(app->program_error(reference, dynamic_run));
    dynamic_loss.add(100.0 - dynamic_corr);

    const auto sweep = oracle_sweep(*app, reference, base);
    RunConfig oracle = base;
    oracle.mode = AtmMode::FixedP;
    oracle.fixed_p = oracle_best_p(sweep, 95.0);
    const RunResult oracle_run = app->run(oracle);
    const double oracle_corr =
        correctness_percent(app->program_error(reference, oracle_run));

    table.add_row({app->name(), fmt_double(static_corr, 2) + "%",
                   fmt_double(dynamic_corr, 2) + "%", fmt_double(oracle_corr, 2) + "%",
                   fmt_p(dynamic_run.final_p), std::to_string(dynamic_run.blacklist_size)});
  }
  table.print(std::cout);
  std::cout << "\nAverage Dynamic-ATM correctness loss: "
            << fmt_double(dynamic_loss.mean(), 2) << "% (paper: 0.7% average, 3.2% max)\n"
            << "Invariant to check: Static ATM = 100.00% on every row.\n";
  return 0;
}

// PR 6 tolerance-matching benchmark: machine-readable numbers for the
// tolerance-quantized memo keys and the multi-probe lookup. Emits JSON
// (bench name -> value), consumed by `tools/run_benches.sh <build> json`,
// which writes BENCH_pr6.json.
//
//   pr6_tolerance [--out=PATH]     (default: JSON to stdout)
//
// Sections:
//   sched_storm_{central,steal}_tN   same harness and names as
//                                    BENCH_pr5.json — the epsilon = 0 A/B:
//                                    tolerance support must not tax the
//                                    exact hot path (re-measure the pr5
//                                    build on the same host before
//                                    comparing absolute numbers)
//   key_exact_*, key_tol_*           compute_key ns on the 6-region
//                                    Blackscholes-shaped fixture: exact
//                                    digests vs quantized digests (with and
//                                    without probes) at p = 1 and p = 2^-10
//   tol_reuse_percent_eps*           noisy-sensor Blackscholes reuse as the
//                                    epsilon sweeps 0 -> 1e-2 (the
//                                    accuracy/reuse curve in
//                                    docs/BENCHMARKS.md)
//   tol_maxrelerr_eps*               measured max relative output error of
//                                    the same runs vs an exact (mode Off)
//                                    baseline over identical jittered inputs
//   tol_probe_hits_blackscholes      hits attributed to neighbor probes at
//                                    the preset epsilon
//   key_gather_oob                   sanity: must stay 0
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "atm/error_metric.hpp"
#include "atm/hash_key.hpp"
#include "atm/input_sampler.hpp"
#include "bench_common.hpp"

namespace {

using namespace atm;
using namespace atm::bench;

struct Entry {
  std::string name;
  double value = 0.0;
  const char* unit = "ns_per_op";
};

double storm_ns_per_task(rt::SchedPolicy sched, unsigned threads, int reps) {
  const std::size_t tasks = 20'000;
  const int waves = 5;
  const double rate = sched_storm_median(sched, threads, tasks, waves, reps);
  return 1e9 / rate;
}

/// Median ns per compute_key call over the shared 6-region fixture.
double key_ns(const MultiRegionKeyFixture& fixture, const GatherPlan& plan,
              const ToleranceSpec& spec, bool tolerance, int reps) {
  const int kCalls = 2'000;
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    HashKey sink = 0;
    Timer timer;
    for (int i = 0; i < kCalls; ++i) {
      sink ^= tolerance ? compute_key(fixture.task, plan, 9, spec).key
                        : compute_key(fixture.task, plan, 9).key;
    }
    const double secs = timer.elapsed_s();
    if (sink == 42) std::fprintf(stderr, ".");  // defeat dead-code elimination
    times.push_back(secs * 1e9 / kCalls);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct SweepRow {
  double eps = 0.0;
  double reuse_percent = 0.0;
  double max_rel_err = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int reps = default_reps();
  std::vector<Entry> entries;

  // --- epsilon = 0 A/B: the exact hot path must not regress (vs pr5) -------
  const double central_hw = storm_ns_per_task(rt::SchedPolicy::Central, hw, reps);
  const double steal_hw = storm_ns_per_task(rt::SchedPolicy::Steal, hw, reps);
  entries.push_back({"sched_storm_central_t" + std::to_string(hw), central_hw});
  entries.push_back({"sched_storm_steal_t" + std::to_string(hw), steal_hw});
  // Oversubscribed (threads > cores on CI): the contended point pr5 tracks.
  const unsigned contended = 4;
  if (contended != hw) {
    entries.push_back({"sched_storm_central_t" + std::to_string(contended),
                       storm_ns_per_task(rt::SchedPolicy::Central, contended, reps)});
    entries.push_back({"sched_storm_steal_t" + std::to_string(contended),
                       storm_ns_per_task(rt::SchedPolicy::Steal, contended, reps)});
  }

  // --- key computation: exact vs quantized digests --------------------------
  MultiRegionKeyFixture fixture;
  const InputLayout layout = InputLayout::from_task(fixture.task);
  const GatherPlan& full = fixture.sampler.plan_for(0, layout, 1.0);
  const GatherPlan& sampled = fixture.sampler.plan_for(0, layout, 1.0 / 1024);
  const ToleranceSpec off{};
  const ToleranceSpec tol{.rel = 1e-3};
  const ToleranceSpec tol_probes{.rel = 1e-3, .probes = 4};
  const double exact_full = key_ns(fixture, full, off, false, reps);
  const double tol_full = key_ns(fixture, full, tol, true, reps);
  const double exact_sampled = key_ns(fixture, sampled, off, false, reps);
  const double tol_sampled = key_ns(fixture, sampled, tol, true, reps);
  const double probes_sampled = key_ns(fixture, sampled, tol_probes, true, reps);
  entries.push_back({"key_exact_plan_p1", exact_full});
  entries.push_back({"key_tol_plan_p1", tol_full});
  entries.push_back({"key_exact_plan_p2em10", exact_sampled});
  entries.push_back({"key_tol_plan_p2em10", tol_sampled});
  entries.push_back({"key_tol_probes4_plan_p2em10", probes_sampled});
  // The epsilon = 0 delegate must cost the same as the exact call.
  const double delegate_sampled = key_ns(fixture, sampled, off, true, reps);
  entries.push_back({"key_tol_eps0_delegate_p2em10", delegate_sampled});

  // --- accuracy/reuse curve: noisy Blackscholes epsilon sweep ---------------
  const auto app = apps::make_app("blackscholes", apps::Preset::Test);
  RunConfig base{.threads = hw, .mode = AtmMode::Static};
  base.input_noise = 2e-7;
  base.tolerance_probes = 4;
  RunConfig off_cfg = base;
  off_cfg.mode = AtmMode::Off;
  const RunResult baseline = app->run(off_cfg);

  const struct { double eps; const char* label; } kSweep[] = {
      {0.0, "eps0"}, {1e-4, "eps1em4"}, {1e-3, "eps1em3"}, {1e-2, "eps1em2"}};
  std::vector<SweepRow> sweep;
  for (const auto& point : kSweep) {
    RunConfig cfg = base;
    cfg.tolerance_rel = point.eps;
    const RunResult run = run_median(*app, cfg, reps);
    SweepRow row;
    row.eps = point.eps;
    row.reuse_percent = 100.0 * run.reuse_fraction();
    row.max_rel_err = chebyshev_relative_error(std::span<const double>(baseline.output),
                                               std::span<const double>(run.output));
    sweep.push_back(row);
    entries.push_back({std::string("tol_reuse_percent_") + point.label,
                       row.reuse_percent, "percent"});
    entries.push_back({std::string("tol_maxrelerr_") + point.label, row.max_rel_err,
                       "max_rel_err"});
    if (point.eps == 1e-3) {
      entries.push_back({"tol_probe_hits_blackscholes",
                         static_cast<double>(run.atm.probe_hits), "count"});
      entries.push_back({"key_gather_oob",
                         static_cast<double>(run.atm.key_gather_oob), "count"});
    }
  }

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "pr6_tolerance: cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"pr\": 6,\n");
  std::fprintf(out, "  \"generated_by\": \"bench/pr6_tolerance\",\n");
  std::fprintf(out,
               "  \"baseline\": \"BENCH_pr5.json (same storm names; re-run the "
               "pr5 build on the same host for drift-free A/B)\",\n");
  std::fprintf(out,
               "  \"drift_note\": \"container clocks drift between merges: do NOT "
               "compare raw ns across BENCH_prN.json files recorded at different "
               "times. The acceptance A/B protocol is interleaved same-host runs "
               "of both builds (see docs/BENCHMARKS.md, pr6 section).\",\n");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(out, "  \"reps\": %d,\n", reps);
  std::fprintf(out, "  \"benches\": {\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::fprintf(out, "    \"%s\": {\"%s\": %.6g}%s\n", entries[i].name.c_str(),
                 entries[i].unit, entries[i].value,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"derived\": {\n");
  std::fprintf(out,
               "    \"key_tol_over_exact_p1\": %.2f,\n"
               "    \"key_tol_over_exact_p2em10\": %.2f,\n"
               "    \"key_eps0_delegate_over_exact_p2em10\": %.2f,\n"
               "    \"reuse_gain_eps1em3_over_eps0_percentpoints\": %.1f\n",
               tol_full / exact_full, tol_sampled / exact_sampled,
               delegate_sampled / exact_sampled,
               sweep[2].reuse_percent - sweep[0].reuse_percent);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  if (out != stdout) std::fclose(out);

  std::fprintf(stderr,
               "pr6_tolerance: key exact/tol p1 = %.1f/%.1f ns, p2^-10 = "
               "%.1f/%.1f ns (probes %.1f), reuse eps0/1e-3 = %.1f%%/%.1f%% "
               "(maxrelerr %.2e), storm steal t%u = %.1f ns/task\n",
               exact_full, tol_full, exact_sampled, tol_sampled, probes_sampled,
               sweep[0].reuse_percent, sweep[2].reuse_percent, sweep[2].max_rel_err,
               hw, steal_hw);
  return 0;
}

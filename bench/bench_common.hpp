// Shared infrastructure for the table/figure harnesses: repeated runs with
// median timing (the evaluation container is noisy), oracle p-search, and
// uniform headers. Every bench binary runs argument-less; scale/threads/
// repetitions come from ATM_SCALE, ATM_THREADS and ATM_REPS.
#pragma once

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "apps/app_registry.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"

namespace atm::bench {

using apps::App;
using apps::Preset;
using apps::RunConfig;
using apps::RunResult;

[[nodiscard]] inline unsigned default_threads() {
  return static_cast<unsigned>(env_long("ATM_THREADS", 2));
}

[[nodiscard]] inline int default_reps() {
  return static_cast<int>(env_long("ATM_REPS", 3));
}

/// Run `app` under `config` `reps` times; returns the run whose wall time is
/// the median (ATM state is rebuilt per run, so any repetition is a faithful
/// sample).
[[nodiscard]] inline RunResult run_median(const App& app, const RunConfig& config,
                                          int reps) {
  std::vector<RunResult> runs;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) runs.push_back(app.run(config));
  std::sort(runs.begin(), runs.end(), [](const RunResult& a, const RunResult& b) {
    return a.wall_seconds < b.wall_seconds;
  });
  return std::move(runs[runs.size() / 2]);
}

/// Fine-grained (small-task) scheduler preset: `num_tasks` independent tiny
/// tasks per wave — each a ~64-FLOP kernel, far below the paper's task
/// sizes — across `waves` taskwait barriers. At this grain the per-task
/// runtime overhead IS the workload, so the returned tasks/second measures
/// the scheduler hot path (central RQ vs work stealing), not the kernels.
[[nodiscard]] inline double sched_storm_tasks_per_sec(const rt::RuntimeConfig& cfg,
                                                      std::size_t num_tasks,
                                                      int waves) {
  rt::Runtime runtime(cfg);
  const auto* type =
      runtime.register_type({.name = "fine", .memoizable = false, .atm = {}});
  std::vector<float> cells(num_tasks, 1.0f);
  Timer timer;
  for (int w = 0; w < waves; ++w) {
    for (std::size_t i = 0; i < num_tasks; ++i) {
      float* cell = &cells[i];
      runtime.submit(type,
                     [cell] {
                       float x = *cell;
                       for (int k = 0; k < 16; ++k) x = x * 1.0001f + 0.0001f;
                       *cell = x;
                     },
                     {rt::inout(cell, 1)});
    }
    runtime.taskwait();
  }
  const double secs = timer.elapsed_s();
  return static_cast<double>(num_tasks) * waves / secs;
}

[[nodiscard]] inline double sched_storm_tasks_per_sec(rt::SchedPolicy sched,
                                                      unsigned threads,
                                                      std::size_t num_tasks,
                                                      int waves) {
  return sched_storm_tasks_per_sec({.num_threads = threads, .sched = sched},
                                   num_tasks, waves);
}

/// Median tasks/second of `reps` storm runs under an arbitrary RuntimeConfig
/// (pr7 A/Bs the observability knobs: metrics off, task profiling, sampler).
[[nodiscard]] inline double sched_storm_median(const rt::RuntimeConfig& cfg,
                                               std::size_t num_tasks, int waves,
                                               int reps) {
  std::vector<double> rates;
  for (int r = 0; r < reps; ++r) {
    rates.push_back(sched_storm_tasks_per_sec(cfg, num_tasks, waves));
  }
  std::sort(rates.begin(), rates.end());
  return rates[rates.size() / 2];
}

/// Interleaved storm A/B over N configurations: round-robin one run of each
/// config per round so slow machine drift hits every config equally instead
/// of landing in the ratios (the same protocol the cross-PR BENCH A/Bs use,
/// applied within one process). Returns the per-config medians.
[[nodiscard]] inline std::vector<double> sched_storm_medians_interleaved(
    const std::vector<rt::RuntimeConfig>& cfgs, std::size_t num_tasks,
    int waves, int reps) {
  std::vector<std::vector<double>> rates(cfgs.size());
  for (int r = 0; r < reps; ++r) {
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
      rates[c].push_back(sched_storm_tasks_per_sec(cfgs[c], num_tasks, waves));
    }
  }
  std::vector<double> medians(cfgs.size());
  for (std::size_t c = 0; c < cfgs.size(); ++c) {
    std::sort(rates[c].begin(), rates[c].end());
    medians[c] = rates[c][rates[c].size() / 2];
  }
  return medians;
}

/// Median tasks/second of `reps` storm runs.
[[nodiscard]] inline double sched_storm_median(rt::SchedPolicy sched, unsigned threads,
                                               std::size_t num_tasks, int waves,
                                               int reps) {
  return sched_storm_median({.num_threads = threads, .sched = sched}, num_tasks,
                            waves, reps);
}

/// Six float input regions (the Blackscholes shape) for the gathered-vs-
/// planned compute_key comparison. Shared by micro_atm and pr3_hotpath so
/// both harnesses measure exactly the same workload and their numbers stay
/// comparable.
struct MultiRegionKeyFixture {
  static constexpr std::size_t kRegions = 6;
  static constexpr std::size_t kFloatsPerRegion = 4096;
  std::vector<std::vector<float>> regions{kRegions};
  rt::Task task;
  InputSampler sampler{true, 3};

  MultiRegionKeyFixture() {
    Rng rng(17);
    for (auto& r : regions) {
      r.resize(kFloatsPerRegion);
      for (auto& v : r) v = rng.next_float(0.0f, 4.0f);
      task.accesses.push_back(rt::in(r.data(), r.size()));
    }
  }
};

/// The 16 p configurations of Dynamic ATM: 2^-15 .. 2^0 (§III-D).
[[nodiscard]] inline std::vector<double> p_steps() {
  std::vector<double> steps;
  for (int e = 15; e >= 0; --e) steps.push_back(1.0 / static_cast<double>(1 << e));
  return steps;
}

/// One point of an oracle p-sweep.
struct SweepPoint {
  double p = 1.0;
  double correctness = 0.0;  ///< percent
  double wall_seconds = 0.0;
  double reuse = 0.0;        ///< fraction
};

/// Sweep FixedP over every p step, measuring correctness against the given
/// reference run (the paper's offline Oracle profiling).
[[nodiscard]] inline std::vector<SweepPoint> oracle_sweep(const App& app,
                                                          const RunResult& reference,
                                                          const RunConfig& base) {
  std::vector<SweepPoint> points;
  for (double p : p_steps()) {
    RunConfig config = base;
    config.mode = AtmMode::FixedP;
    config.fixed_p = p;
    const RunResult run = app.run(config);
    SweepPoint point;
    point.p = p;
    point.correctness = correctness_percent(app.program_error(reference, run));
    point.wall_seconds = run.wall_seconds;
    point.reuse = run.reuse_fraction();
    points.push_back(point);
  }
  return points;
}

/// The paper's Oracle(x%): the smallest p whose sweep correctness is at
/// least `min_correctness` percent; falls back to p = 1.
[[nodiscard]] inline double oracle_best_p(const std::vector<SweepPoint>& sweep,
                                          double min_correctness) {
  for (const SweepPoint& point : sweep) {
    if (point.correctness >= min_correctness) return point.p;
  }
  return 1.0;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n================================================================\n"
            << title << "\n"
            << paper_ref << "\n"
            << "preset=" << (apps::preset_from_env() == Preset::Paper
                                 ? "paper"
                                 : (apps::preset_from_env() == Preset::Test ? "test"
                                                                            : "bench"))
            << " threads=" << default_threads() << " reps=" << default_reps()
            << "  (override via ATM_SCALE / ATM_THREADS / ATM_REPS)\n"
            << "================================================================\n";
}

/// Format p as the paper's axis labels (2^-k or %).
[[nodiscard]] inline std::string fmt_p(double p) {
  for (int e = 0; e <= 15; ++e) {
    if (p == 1.0 / static_cast<double>(1 << e)) {
      return e == 0 ? std::string("100%") : ("2^-" + std::to_string(e));
    }
  }
  return fmt_percent(p, 4);
}

}  // namespace atm::bench

// Quickstart: memoize a pure task in ~40 lines.
//
// A "simulation" task is executed for 16 parameter blocks; half the blocks
// are duplicates. With Static ATM the duplicates are served from the Task
// History Table without executing the task body.
//
//   $ ./quickstart
#include <cmath>
#include <cstdio>
#include <vector>

#include "atm_lib.hpp"

int main() {
  using namespace atm;

  // 1. A runtime with 2 workers and a Static-ATM engine attached.
  AtmEngine engine({.mode = AtmMode::Static});
  rt::Runtime runtime({.num_threads = 2});
  runtime.attach_memoizer(&engine);

  // 2. Register the task type and opt it into memoization. The body must be
  //    a pure function of the declared inputs (see README: Limitations).
  const auto* simulate = runtime.register_type(
      {.name = "simulate", .memoizable = true, .atm = {}});

  // 3. Sixteen parameter blocks, every even block equal to block 0.
  constexpr std::size_t kBlocks = 16, kParams = 1024;
  std::vector<std::vector<double>> params(kBlocks);
  std::vector<double> results(kBlocks, 0.0);
  for (std::size_t b = 0; b < kBlocks; ++b) {
    params[b].resize(kParams);
    for (std::size_t i = 0; i < kParams; ++i) {
      params[b][i] = (b % 2 == 0) ? 1.0 + 0.001 * static_cast<double>(i)
                                  : static_cast<double>(b) + 0.001 * static_cast<double>(i);
    }
  }

  // 4. Submit tasks with explicit in/out annotations — the runtime builds
  //    the dependence graph and ATM keys the inputs.
  for (std::size_t b = 0; b < kBlocks; ++b) {
    const double* in_ptr = params[b].data();
    double* out_ptr = &results[b];
    runtime.submit(simulate,
                   [in_ptr, out_ptr] {
                     double acc = 0.0;
                     for (std::size_t i = 0; i < kParams; ++i) {
                       acc += std::sqrt(std::fabs(std::sin(in_ptr[i])));
                     }
                     *out_ptr = acc;
                   },
                   {rt::in(in_ptr, kParams), rt::out(out_ptr, 1)});
  }
  runtime.taskwait();

  // 5. Inspect what happened.
  const auto counters = runtime.counters();
  const auto stats = engine.stats();
  std::printf("tasks submitted : %llu\n", (unsigned long long)counters.submitted);
  std::printf("tasks executed  : %llu\n", (unsigned long long)counters.executed);
  std::printf("tasks memoized  : %llu (THT hits %llu, in-flight hits %llu)\n",
              (unsigned long long)(counters.memoized + counters.deferred),
              (unsigned long long)stats.tht_hits, (unsigned long long)stats.ikt_hits);
  std::printf("result[0] = %.6f, result[2] = %.6f (equal: %s)\n", results[0], results[2],
              results[0] == results[2] ? "yes" : "no");
  return 0;
}

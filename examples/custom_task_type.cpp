// Registering a custom memoizable task type end to end: type-aware input
// annotations, per-type Dynamic-ATM parameters, and reading the training
// diagnostics back. The "simulation" here prices a damped oscillator from
// a parameter record; near-duplicate records (sensor jitter in the low
// mantissa bits) become reusable under Dynamic ATM.
//
//   $ ./custom_task_type
#include <cmath>
#include <cstdio>
#include <vector>

#include "atm_lib.hpp"
#include "common/rng.hpp"

namespace {

struct OscillatorParams {
  double mass = 1.0;
  double damping = 0.1;
  double stiffness = 4.0;
  double dt = 1e-3;
  double steps = 20000;
};

double simulate(const OscillatorParams& p) {
  double x = 1.0, v = 0.0;
  const auto steps = static_cast<std::size_t>(p.steps);
  for (std::size_t s = 0; s < steps; ++s) {
    const double a = (-p.stiffness * x - p.damping * v) / p.mass;
    v += a * p.dt;
    x += v * p.dt;
  }
  return x;
}

}  // namespace

int main() {
  using namespace atm;

  // Dynamic ATM with default THT sizing (N=8, M=128).
  AtmEngine engine({.mode = AtmMode::Dynamic});
  rt::Runtime runtime({.num_threads = 2});
  runtime.attach_memoizer(&engine);

  // Per-type ATM parameters: accept up to 1% per-task Chebyshev error, and
  // require 4 verified approximations before leaving the training phase.
  const auto* oscillator = runtime.register_type(
      {.name = "oscillator", .memoizable = true,
       .atm = {.l_training = 4, .tau_max = 0.01}});

  // 64 parameter records drawn from 8 base configurations with ~1e-13
  // relative jitter: invisible to a type-aware sampled key, and the
  // simulated trajectories differ by far less than tau_max.
  constexpr std::size_t kRuns = 64;
  Rng rng(0xCAFE);
  std::vector<OscillatorParams> params(kRuns);
  std::vector<double> results(kRuns, 0.0);
  for (std::size_t i = 0; i < kRuns; ++i) {
    Rng base_rng(1000 + i % 8);
    params[i].mass = 1.0 + base_rng.next_double(0.0, 1.0);
    params[i].damping = 0.05 + base_rng.next_double(0.0, 0.2);
    params[i].stiffness = 2.0 + base_rng.next_double(0.0, 4.0);
    params[i].mass *= 1.0 + rng.next_double(-1e-13, 1e-13);  // sensor jitter
  }

  for (std::size_t i = 0; i < kRuns; ++i) {
    const OscillatorParams* p = &params[i];
    double* out = &results[i];
    runtime.submit(oscillator, [p, out] { *out = simulate(*p); },
                   {rt::in(reinterpret_cast<const double*>(p),
                           sizeof(OscillatorParams) / sizeof(double)),
                    rt::out(out, 1)});
  }
  runtime.taskwait();

  const auto stats = engine.stats();
  const auto counters = runtime.counters();
  std::printf("submitted %llu | executed %llu | memoized %llu (training checks %llu, "
              "failures %llu)\n",
              (unsigned long long)counters.submitted,
              (unsigned long long)counters.executed,
              (unsigned long long)(counters.memoized + counters.deferred),
              (unsigned long long)stats.training_hits,
              (unsigned long long)stats.training_failures);
  std::printf("trained p = %.5f%%  phase = %s  blacklist = %zu\n",
              100.0 * engine.current_p(*oscillator),
              engine.phase(*oscillator) == TrainingPhase::Steady ? "steady" : "training",
              engine.blacklist_size(*oscillator));
  std::printf("sample results: x[0]=%.9f x[8]=%.9f (near-duplicates)\n", results[0],
              results[8]);
  return 0;
}

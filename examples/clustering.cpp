// Kmeans clustering with approximate task reuse — the paper's machine-
// learning scenario and the cleanest demonstration of *approximate*
// memoization: exact reuse never happens (the centers move every
// iteration), yet once clusters converge the sampled inputs stop changing
// and Dynamic ATM reuses the assignment tasks within the tau_max = 20%
// per-task error budget.
//
//   $ ./clustering
#include <cstdio>

#include "apps/kmeans.hpp"

int main() {
  using namespace atm;
  using namespace atm::apps;

  // Bench scale when run by hand; ATM_SCALE=test keeps CI smoke runs fast.
  KmeansParams params = KmeansParams::preset(preset_from_env());
  KmeansApp app(params);
  std::printf("Kmeans: %s\n", app.program_input_desc().c_str());
  std::printf("tau_max = %.0f%% (Table II), L_training = %u\n\n",
              100.0 * app.atm_params().tau_max, app.atm_params().l_training);

  const RunConfig base{.threads = 2, .mode = AtmMode::Off};
  const RunResult off = app.run(base);
  std::printf("baseline    : %7.1f ms\n", off.wall_seconds * 1e3);

  RunConfig st = base;
  st.mode = AtmMode::Static;
  const RunResult stat = app.run(st);
  std::printf("Static ATM  : %7.1f ms  speedup %.2fx  reuse %.1f%%   <- exact reuse "
              "never fires\n",
              stat.wall_seconds * 1e3, off.wall_seconds / stat.wall_seconds,
              100.0 * stat.reuse_fraction());

  RunConfig dy = base;
  dy.mode = AtmMode::Dynamic;
  const RunResult dyn = app.run(dy);
  std::printf("Dynamic ATM : %7.1f ms  speedup %.2fx  reuse %.1f%%  error %.3g "
              "(correctness %.2f%%)\n",
              dyn.wall_seconds * 1e3, off.wall_seconds / dyn.wall_seconds,
              100.0 * dyn.reuse_fraction(), app.program_error(off, dyn),
              correctness_percent(app.program_error(off, dyn)));
  std::printf("chosen p = %.5f%% of the %zu-byte task inputs\n", 100.0 * dyn.final_p,
              dyn.task_input_bytes);
  std::printf("\nPaper Fig. 3/4: kmeans loses with Static ATM (hash overhead, zero\n"
              "hits) and wins ~3.9x with Dynamic ATM at ~1%% accuracy loss.\n");
  return 0;
}

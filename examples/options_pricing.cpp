// Portfolio pricing (Blackscholes) with Static vs Dynamic ATM — the paper's
// financial-analysis scenario. The input replicates option records (as the
// PARSEC native input does), so whole pricing tasks repeat; re-pricing the
// portfolio every "market tick" multiplies the redundancy.
//
//   $ ./options_pricing
#include <cstdio>

#include "apps/blackscholes.hpp"

int main() {
  using namespace atm;
  using namespace atm::apps;

  // Bench scale when run by hand; ATM_SCALE=test keeps CI smoke runs fast.
  BlackscholesParams params = BlackscholesParams::preset(preset_from_env());
  BlackscholesApp app(params);
  std::printf("Blackscholes portfolio pricing: %s\n", app.program_input_desc().c_str());
  std::printf("memoized task type: %s (%zu option blocks x %u pricing runs)\n\n",
              app.memoized_task_type().c_str(), params.num_options / params.block_size,
              params.iterations);

  const RunConfig base{.threads = 2, .mode = AtmMode::Off};
  const RunResult off = app.run(base);

  for (AtmMode mode : {AtmMode::Static, AtmMode::Dynamic}) {
    RunConfig config = base;
    config.mode = mode;
    const RunResult run = app.run(config);
    std::printf("%-12s: %7.1f ms  speedup %.2fx  reuse %5.1f%%  error %.3g",
                atm_mode_name(mode), run.wall_seconds * 1e3,
                off.wall_seconds / run.wall_seconds, 100.0 * run.reuse_fraction(),
                app.program_error(off, run));
    if (mode == AtmMode::Dynamic) {
      std::printf("  (p=%.4f%%, hash cost %.2f ms)", 100.0 * run.final_p,
                  run.atm.hash_ns * 1e-6);
    }
    std::printf("\n");
  }
  std::printf("baseline    : %7.1f ms\n\n", off.wall_seconds * 1e3);
  std::printf("Dynamic ATM hashes ~%.2f%% of each task's 12 KB of option data and\n"
              "still separates distinct blocks: approximation here removes hash\n"
              "overhead, not accuracy (paper Fig. 3: 5.5x -> 8.8x).\n",
              0.098);
  return 0;
}

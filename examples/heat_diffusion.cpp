// Heat diffusion (Gauss-Seidel stencil) with Dynamic ATM — the paper's
// flagship stencil scenario: a room whose walls emit heat, the interior
// converging from the walls inward. ATM memoizes the stencil tasks whose
// blocks have converged or repeat, and Dynamic ATM picks the input-sampling
// percentage p automatically.
//
//   $ ./heat_diffusion
#include <cstdio>

#include "apps/gauss_seidel.hpp"

int main() {
  using namespace atm;
  using namespace atm::apps;

  // Bench scale when run by hand; ATM_SCALE=test keeps CI smoke runs fast.
  StencilParams params = StencilParams::preset(preset_from_env());
  GaussSeidelApp app(params);
  std::printf("Gauss-Seidel heat diffusion: %s\n", app.program_input_desc().c_str());

  const RunConfig base{.threads = 2, .mode = AtmMode::Off};
  const RunResult off = app.run(base);
  std::printf("baseline (no ATM)    : %7.1f ms\n", off.wall_seconds * 1e3);

  RunConfig st = base;
  st.mode = AtmMode::Static;
  const RunResult stat = app.run(st);
  std::printf("Static ATM (p=100%%)  : %7.1f ms  speedup %.2fx  reuse %.1f%%  "
              "error %.3g\n",
              stat.wall_seconds * 1e3, off.wall_seconds / stat.wall_seconds,
              100.0 * stat.reuse_fraction(), app.program_error(off, stat));

  RunConfig dy = base;
  dy.mode = AtmMode::Dynamic;
  const RunResult dyn = app.run(dy);
  std::printf("Dynamic ATM          : %7.1f ms  speedup %.2fx  reuse %.1f%%  "
              "error %.3g\n",
              dyn.wall_seconds * 1e3, off.wall_seconds / dyn.wall_seconds,
              100.0 * dyn.reuse_fraction(), app.program_error(off, dyn));
  std::printf("Dynamic ATM trained p = %.5f%% of input bytes (%zu p-steps, "
              "%zu blacklisted outputs)\n",
              100.0 * dyn.final_p, dyn.p_history.size(), dyn.blacklist_size);
  std::printf("\nThe redundancy ATM found: wall-adjacent blocks converge quickly\n"
              "and interior blocks repeat each other's states (paper §V-D).\n");
  return 0;
}

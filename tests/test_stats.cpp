// Tests for the statistics toolkit and table/format helpers used by the
// benchmark harnesses.
#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace atm {
namespace {

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Geomean, KnownValues) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geomean({1.0, 2.0, 4.0}), 2.0, 1e-12);
  EXPECT_EQ(geomean({}), 0.0);
  EXPECT_EQ(geomean({1.0, -1.0}), 0.0);  // undefined -> signalled as 0
}

TEST(Histogram, BucketsAndOverflowCounts) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(9.99);
  h.add(-3.0);   // below lo: counted as underflow, not bucket 0
  h.add(100.0);  // at/above hi: counted as overflow, not bucket 9
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.samples(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
}

TEST(Histogram, BoundaryValuesRouteExactly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);   // lo is inclusive
  h.add(10.0);  // hi is exclusive -> overflow
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 0u);
}

TEST(Histogram, QuantileUniform) {
  // 100 samples at bucket centers 0.5, 1.5, ..., 99.5: quantiles should land
  // within one bucket width of the exact order statistics.
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 49.5, 1.0);
  EXPECT_NEAR(h.quantile(0.95), 94.5, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 98.5, 1.0);
  EXPECT_NEAR(h.quantile(0.0), 0.5, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 99.5, 1.0);
}

TEST(Histogram, QuantileSingleBucketAndEmpty) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // no samples
  for (int i = 0; i < 7; ++i) h.add(3.5);
  // All mass in bucket [3, 4): every quantile lands inside that bucket.
  EXPECT_GE(h.quantile(0.5), 3.0);
  EXPECT_LE(h.quantile(0.5), 4.0);
  EXPECT_GE(h.quantile(0.99), 3.0);
  EXPECT_LE(h.quantile(0.99), 4.0);
}

TEST(Histogram, QuantileIgnoresOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(5.5);
  h.add(-100.0);
  h.add(1e9);
  // The out-of-range tallies must not shift the in-range CDF.
  EXPECT_GE(h.quantile(0.5), 5.0);
  EXPECT_LE(h.quantile(0.5), 6.0);
}

TEST(TablePrinter, AlignsAndContainsCells) {
  TablePrinter t({"Benchmark", "Speedup"});
  t.add_row({"Blackscholes", "5.03x"});
  t.add_separator();
  t.add_row({"geomean", "1.40x"});
  const std::string out = t.str();
  EXPECT_NE(out.find("Blackscholes"), std::string::npos);
  EXPECT_NE(out.find("5.03x"), std::string::npos);
  EXPECT_NE(out.find("geomean"), std::string::npos);
  // Header separator lines present.
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(TablePrinter, ShortRowsPad) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.str().find("only"), std::string::npos);
}

TEST(Format, Helpers) {
  EXPECT_EQ(fmt_double(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_percent(0.1234), "12.3%");
  EXPECT_EQ(fmt_speedup(2.5), "2.50x");
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(2048), "2.0 KiB");
  EXPECT_EQ(fmt_bytes(5ull << 20), "5.0 MiB");
}

TEST(AsciiBar, Scales) {
  EXPECT_EQ(ascii_bar(0.0, 10.0, 10), std::string(10, ' '));
  EXPECT_EQ(ascii_bar(10.0, 10.0, 10), std::string(10, '#'));
  EXPECT_EQ(ascii_bar(5.0, 10.0, 10).substr(0, 5), "#####");
  EXPECT_EQ(ascii_bar(20.0, 10.0, 4), "####");  // clamped
}

}  // namespace
}  // namespace atm

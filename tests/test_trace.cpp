// Tests for the trace recorder behind Figures 7 and 8.
#include <gtest/gtest.h>

#include <thread>

#include "common/timing.hpp"
#include "runtime/runtime.hpp"
#include "runtime/trace.hpp"

namespace atm::rt {
namespace {

TEST(Trace, DisabledRecorderIgnoresEverything) {
  TraceRecorder rec(3, /*enabled=*/false);
  rec.record(0, TraceState::TaskExec, 10, 20);
  rec.sample_depth(5, 3);
  EXPECT_TRUE(rec.lane(0).empty());
  EXPECT_TRUE(rec.depth_samples().empty());
}

TEST(Trace, RecordsEventsPerLane) {
  TraceRecorder rec(3, true);
  rec.record(0, TraceState::TaskExec, 10, 30);
  rec.record(0, TraceState::Idle, 30, 40);
  rec.record(1, TraceState::HashKey, 12, 14);
  EXPECT_EQ(rec.lane(0).size(), 2u);
  EXPECT_EQ(rec.lane(1).size(), 1u);
  EXPECT_EQ(rec.lane(2).size(), 0u);
}

TEST(Trace, LaneSummaryAggregates) {
  TraceRecorder rec(2, true);
  rec.record(0, TraceState::TaskExec, 0, 100);
  rec.record(0, TraceState::TaskExec, 100, 150);
  rec.record(0, TraceState::Memoize, 150, 160);
  const LaneSummary s = rec.summarize_lane(0);
  EXPECT_EQ(s.total_ns[static_cast<int>(TraceState::TaskExec)], 150u);
  EXPECT_EQ(s.event_count[static_cast<int>(TraceState::TaskExec)], 2u);
  EXPECT_DOUBLE_EQ(s.mean_ns(TraceState::TaskExec), 75.0);
  EXPECT_EQ(s.total_ns[static_cast<int>(TraceState::Memoize)], 10u);
}

TEST(Trace, SummarizeAllMergesLanes) {
  TraceRecorder rec(2, true);
  rec.record(0, TraceState::TaskExec, 0, 10);
  rec.record(1, TraceState::TaskExec, 0, 20);
  const LaneSummary s = rec.summarize_all();
  EXPECT_EQ(s.total_ns[static_cast<int>(TraceState::TaskExec)], 30u);
}

TEST(Trace, DepthSamplesSortedByTime) {
  TraceRecorder rec(1, true);
  rec.sample_depth(30, 1);
  rec.sample_depth(10, 2);
  rec.sample_depth(20, 3);
  const auto samples = rec.depth_samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_LE(samples[0].t, samples[1].t);
  EXPECT_LE(samples[1].t, samples[2].t);
}

TEST(Trace, FirstLastEventTimes) {
  TraceRecorder rec(2, true);
  rec.record(0, TraceState::TaskExec, 100, 200);
  rec.record(1, TraceState::Idle, 50, 300);
  EXPECT_EQ(rec.first_event_ns(), 50u);
  EXPECT_EQ(rec.last_event_ns(), 300u);
}

TEST(Trace, AsciiTimelineHasOneRowPerLane) {
  TraceRecorder rec(3, true);
  rec.record(0, TraceState::TaskExec, 0, 1000);
  rec.record(1, TraceState::Idle, 0, 1000);
  rec.record(2, TraceState::Creation, 0, 1000);
  const std::string timeline = rec.ascii_timeline(40);
  EXPECT_EQ(std::count(timeline.begin(), timeline.end(), '\n'), 3);
  EXPECT_NE(timeline.find('X'), std::string::npos);  // exec glyph
  EXPECT_NE(timeline.find("master"), std::string::npos);
}

TEST(Trace, ClearResets) {
  TraceRecorder rec(1, true);
  rec.record(0, TraceState::TaskExec, 0, 10);
  rec.sample_depth(1, 1);
  rec.clear();
  EXPECT_TRUE(rec.lane(0).empty());
  EXPECT_TRUE(rec.depth_samples().empty());
}

TEST(Trace, TraceScopeRecordsInterval) {
  TraceRecorder rec(1, true);
  {
    TraceScope scope(&rec, 0, TraceState::HashKey);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(rec.lane(0).size(), 1u);
  const TraceEvent& e = rec.lane(0)[0];
  EXPECT_EQ(e.state, TraceState::HashKey);
  EXPECT_GE(e.t1 - e.t0, 1'000'000u);  // at least 1 ms
}

TEST(Trace, RuntimeProducesTraceWhenEnabled) {
  Runtime rt({.num_threads = 2, .enable_tracing = true});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  int data = 0;
  for (int i = 0; i < 10; ++i) {
    rt.submit(type, [&] { std::this_thread::sleep_for(std::chrono::microseconds(200)); },
              {inout(&data, 1)});
  }
  rt.taskwait();
  const LaneSummary all = rt.tracer().summarize_all();
  EXPECT_EQ(all.event_count[static_cast<int>(TraceState::TaskExec)], 10u);
  EXPECT_GT(all.event_count[static_cast<int>(TraceState::Creation)], 0u);
  EXPECT_FALSE(rt.tracer().depth_samples().empty());
}

TEST(Trace, StateNamesStable) {
  EXPECT_STREQ(trace_state_name(TraceState::Idle), "Idle");
  EXPECT_STREQ(trace_state_name(TraceState::HashKey), "ATM:HashKey");
  EXPECT_STREQ(trace_state_name(TraceState::Memoize), "ATM:Memoize");
}

}  // namespace
}  // namespace atm::rt

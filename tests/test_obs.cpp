// Tests for the unified observability subsystem (src/obs/): the typed
// MetricsRegistry (counters/gauges/histograms, sharded hot paths, collector
// callbacks), the log2 LatencyHistogram quantile estimation, the background
// MetricsSampler, and the runtime/engine integration — every documented
// metric family must actually appear on the registry after a run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "atm_lib.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

namespace atm::obs {
namespace {

TEST(Counter, IncrementsAndSums) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ShardedIncrementsFromManyThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncs = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(Gauge, SetAddValue) {
  Gauge g;
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(LatencyHistogram, CountSumMaxMean) {
  LatencyHistogram h;
  for (std::uint64_t x : {1ull, 2ull, 3ull, 100ull}) h.record(x);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 106u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 106.0 / 4.0);
}

TEST(LatencyHistogram, BucketOfIsLog2) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of(~0ull), LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucket_lo(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_lo(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_lo(4), 8u);
}

TEST(LatencyHistogram, QuantilesOrderedAndBounded) {
  LatencyHistogram h;
  // Heavy mass at ~16ns, a tail at ~1000ns.
  for (int i = 0; i < 900; ++i) h.record(16);
  for (int i = 0; i < 100; ++i) h.record(1000);
  const auto s = h.snapshot();
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  // p50 must sit in the bucket holding 16 ([16, 32)).
  EXPECT_GE(s.p50, 16.0);
  EXPECT_LT(s.p50, 32.0);
  // The top quantiles land in the tail bucket, capped at the observed max.
  EXPECT_LE(s.p99, static_cast<double>(s.max));
  EXPECT_GE(s.p99, 512.0);
}

TEST(LatencyHistogram, EmptySnapshotIsZero) {
  const auto s = LatencyHistogram().snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(Registry, GetOrCreateIsPointerStable) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x.count");
  Counter* b = reg.counter("x.count");
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.metric_count(), 1u);
}

TEST(Registry, KindMismatchReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.counter("m"), nullptr);
  EXPECT_EQ(reg.gauge("m"), nullptr);
  EXPECT_EQ(reg.histogram("m"), nullptr);
  EXPECT_EQ(reg.metric_count(), 1u);
}

TEST(Registry, SnapshotCarriesValuesAndMetadata) {
  MetricsRegistry reg;
  reg.counter("a.count", "events", "test")->inc(5);
  reg.gauge("b.level", "bytes", "test")->set(-7);
  reg.histogram("c.lat")->record(100);

  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  const MetricSample* a = snap.find("a.count");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->kind, MetricKind::Counter);
  EXPECT_EQ(a->unit, "events");
  EXPECT_EQ(a->owner, "test");
  EXPECT_DOUBLE_EQ(a->value, 5.0);
  const MetricSample* b = snap.find("b.level");
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->value, -7.0);
  const MetricSample* c = snap.find("c.lat");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->hist.count, 1u);
  EXPECT_EQ(snap.find("nope"), nullptr);
  // Sorted by name for deterministic dumps.
  EXPECT_EQ(snap.metrics[0].name, "a.count");
  EXPECT_EQ(snap.metrics[2].name, "c.lat");
}

TEST(Registry, CollectorsRunAtSnapshotAndAreRemovable) {
  MetricsRegistry reg;
  std::atomic<int> calls{0};
  const std::size_t id = reg.add_collector([&calls](SampleSink& sink) {
    calls.fetch_add(1);
    sink.counter("ext.hits", 9);
    sink.gauge("ext.depth", 3);
  });
  const RegistrySnapshot snap = reg.snapshot();
  EXPECT_EQ(calls.load(), 1);
  ASSERT_NE(snap.find("ext.hits"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("ext.hits")->value, 9.0);
  ASSERT_NE(snap.find("ext.depth"), nullptr);
  EXPECT_EQ(snap.find("ext.depth")->kind, MetricKind::Gauge);

  reg.remove_collector(id);
  const RegistrySnapshot snap2 = reg.snapshot();
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(snap2.find("ext.hits"), nullptr);
}

TEST(Registry, CollectorMayTouchRegistryDuringSnapshot) {
  // Regression: snapshot() used to hold the registry mutex while invoking
  // collectors, so a collector that created or bumped an instrument on the
  // same registry (the natural way to export a derived metric) deadlocked
  // against its own snapshot. Collectors now run after the registry copy,
  // outside the mutex.
  MetricsRegistry reg;
  reg.counter("pre.existing")->inc();
  reg.add_collector([&reg](SampleSink& sink) {
    reg.counter("made.in.collector")->inc();  // deadlocked before the fix
    sink.counter("collector.sample", 7);
  });
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find("collector.sample"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("collector.sample")->value, 7.0);
  ASSERT_NE(snap.find("pre.existing"), nullptr);
  // The instrument registered mid-snapshot lands on the registry and shows
  // up from the next snapshot on. Each snapshot copies entries BEFORE its
  // collector pass runs, so snap2 sees the value as of snapshot 1's inc.
  const RegistrySnapshot snap2 = reg.snapshot();
  ASSERT_NE(snap2.find("made.in.collector"), nullptr);
  EXPECT_DOUBLE_EQ(snap2.find("made.in.collector")->value, 1.0);
}

TEST(Registry, RemoveCollectorDrainsInFlightSnapshots) {
  // remove_collector must not return while a concurrent snapshot may still
  // be running the collector (the caller destroys captured state right
  // after). Hammer snapshots from one thread while removing from another;
  // the collector flips `alive` off before its captures die.
  MetricsRegistry reg;
  reg.counter("c")->inc();
  std::atomic<bool> alive{true};
  std::atomic<bool> stop{false};
  auto captured = std::make_shared<int>(42);
  const std::size_t id = reg.add_collector(
      [&alive, captured](SampleSink& sink) {
        ASSERT_TRUE(alive.load()) << "collector ran after remove_collector";
        sink.counter("ext.c", static_cast<std::uint64_t>(*captured));
      });
  std::thread snapshotter([&] {
    while (!stop.load()) (void)reg.snapshot();
  });
  for (int i = 0; i < 100; ++i) (void)reg.snapshot();
  reg.remove_collector(id);
  alive.store(false);
  captured.reset();
  for (int i = 0; i < 100; ++i) (void)reg.snapshot();
  stop.store(true);
  snapshotter.join();
}

TEST(Registry, SnapshotToJsonParsesStructurally) {
  MetricsRegistry reg;
  reg.counter("a\"quoted\"")->inc();
  reg.histogram("h")->record(7);
  const std::string json = reg.snapshot().to_json();
  // Escaped quotes and the histogram payload keys must appear.
  EXPECT_NE(json.find("\"a\\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"t_ns\""), std::string::npos);
}

TEST(Sampler, CollectsSeriesAndStops) {
  MetricsRegistry reg;
  Gauge* g = reg.gauge("live.value");
  g->set(1);
  MetricsSampler sampler(reg, {.interval_ms = 1, .ring_capacity = 64});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  g->set(2);
  sampler.stop();
  const auto series = sampler.series();
  EXPECT_EQ(series.interval_ms, 1u);
  ASSERT_GE(series.samples.size(), 1u);
  // stop() takes a final snapshot: the last sample sees the final value.
  const MetricSample* last = series.samples.back().find("live.value");
  ASSERT_NE(last, nullptr);
  EXPECT_DOUBLE_EQ(last->value, 2.0);
  // Timestamps are monotonic.
  for (std::size_t i = 1; i < series.samples.size(); ++i) {
    EXPECT_GE(series.samples[i].t_ns, series.samples[i - 1].t_ns);
  }
  const std::string json = series.to_json();
  EXPECT_NE(json.find("\"interval_ms\":1"), std::string::npos);
  EXPECT_NE(json.find("live.value"), std::string::npos);
  const std::string csv = series.to_csv();
  EXPECT_NE(csv.find("live.value"), std::string::npos);
}

TEST(Sampler, ConcurrentStopIsSafe) {
  // Regression: two threads calling stop() concurrently could both pass
  // the `if (stopped_) return` gate and race thread_.join() — joining one
  // std::thread from two threads is undefined behavior. The first caller
  // now claims the join; the rest block until it completes. Every caller
  // must return with the sampler fully stopped and the final sample taken.
  for (int round = 0; round < 20; ++round) {
    MetricsRegistry reg;
    reg.counter("c")->inc();
    MetricsSampler sampler(reg, {.interval_ms = 1, .ring_capacity = 16});
    std::vector<std::thread> stoppers;
    for (int t = 0; t < 4; ++t) {
      stoppers.emplace_back([&sampler] { sampler.stop(); });
    }
    for (auto& t : stoppers) t.join();
    EXPECT_GE(sampler.series().samples.size(), 1u);
    sampler.stop();  // idempotent after the fact
  }
}

TEST(Sampler, RingBoundsMemoryAndCountsDrops) {
  MetricsRegistry reg;
  reg.gauge("g")->set(1);
  MetricsSampler sampler(reg, {.interval_ms = 0, .ring_capacity = 4});
  // interval 0 clamps to the minimum period; give it time to wrap the ring.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  sampler.stop();
  const auto series = sampler.series();
  EXPECT_LE(series.samples.size(), 4u);
  if (series.samples.size() == 4u) {
    EXPECT_GT(series.dropped, 0u);
  }
}

// --- runtime integration ----------------------------------------------------

TEST(RuntimeMetrics, RegistryExportsAllFamiliesAfterRun) {
  rt::Runtime runtime({.num_threads = 2});
  const auto* type =
      runtime.register_type({.name = "t", .memoizable = false, .atm = {}});
  int cell = 0;
  for (int i = 0; i < 64; ++i) {
    runtime.submit(type, [] {}, {rt::inout(&cell, 1)});
  }
  runtime.taskwait();

  const RegistrySnapshot snap = runtime.metrics().snapshot();
  for (const char* name :
       {"runtime.tasks_submitted", "runtime.tasks_executed",
        "runtime.pending_tasks", "arena.slots", "arena.free_slots",
        "dep.exact_hits", "dep.tree_fallbacks", "dep.prune_scans",
        "sched.depth", "sched.batch_cap", "sched.steal_attempts",
        "sched.steal_fails", "sched.inbox_drains", "sched.inbox_drained_tasks",
        "sched.help_sessions", "sched.help_tasks"}) {
    EXPECT_NE(snap.find(name), nullptr) << name;
  }
  ASSERT_NE(snap.find("runtime.tasks_submitted"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("runtime.tasks_submitted")->value, 64.0);
  EXPECT_DOUBLE_EQ(snap.find("runtime.tasks_executed")->value, 64.0);
}

TEST(RuntimeMetrics, MetricsOffSkipsCollectors) {
  rt::Runtime runtime({.num_threads = 1, .metrics = false});
  const auto* type =
      runtime.register_type({.name = "t", .memoizable = false, .atm = {}});
  int cell = 0;
  runtime.submit(type, [] {}, {rt::inout(&cell, 1)});
  runtime.taskwait();
  const RegistrySnapshot snap = runtime.metrics().snapshot();
  EXPECT_EQ(snap.find("runtime.tasks_submitted"), nullptr);
}

TEST(RuntimeMetrics, HelpingBarrierCountsSessions) {
  rt::Runtime runtime({.num_threads = 2, .help_taskwait = true});
  const auto* type =
      runtime.register_type({.name = "t", .memoizable = false, .atm = {}});
  std::vector<int> cells(128, 0);
  for (int w = 0; w < 4; ++w) {
    for (auto& c : cells) {
      runtime.submit(type, [] {}, {rt::inout(&c, 1)});
    }
    runtime.taskwait();
  }
  const RegistrySnapshot snap = runtime.metrics().snapshot();
  ASSERT_NE(snap.find("sched.help_sessions"), nullptr);
  EXPECT_GE(snap.find("sched.help_sessions")->value, 4.0);
}

TEST(RuntimeMetrics, ProfileTasksRecordsPerTypeHistogram) {
  rt::Runtime runtime({.num_threads = 1, .profile_tasks = true});
  const auto* type =
      runtime.register_type({.name = "kernel", .memoizable = false, .atm = {}});
  int cell = 0;
  for (int i = 0; i < 16; ++i) {
    runtime.submit(type, [] {}, {rt::inout(&cell, 1)});
  }
  runtime.taskwait();
  const RegistrySnapshot snap = runtime.metrics().snapshot();
  const MetricSample* hist = snap.find("task.kernel.exec_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, MetricKind::Histogram);
  EXPECT_EQ(hist->hist.count, 16u);
}

TEST(RuntimeMetrics, ProfileTypeCapSkipsHighTypeIds) {
  // profile_max_types sizes the per-type histogram slot array: the first
  // registered type (id 0) profiles, the second (id 1 >= cap) runs
  // unprofiled but otherwise executes normally.
  rt::Runtime runtime(
      {.num_threads = 1, .profile_tasks = true, .profile_max_types = 1});
  const auto* a =
      runtime.register_type({.name = "a", .memoizable = false, .atm = {}});
  const auto* b =
      runtime.register_type({.name = "b", .memoizable = false, .atm = {}});
  int cell = 0;
  for (int i = 0; i < 4; ++i) {
    runtime.submit(a, [] {}, {rt::inout(&cell, 1)});
    runtime.submit(b, [] {}, {rt::inout(&cell, 1)});
  }
  runtime.taskwait();
  const RegistrySnapshot snap = runtime.metrics().snapshot();
  const MetricSample* hist_a = snap.find("task.a.exec_ns");
  ASSERT_NE(hist_a, nullptr);
  EXPECT_EQ(hist_a->hist.count, 4u);
  EXPECT_EQ(snap.find("task.b.exec_ns"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("runtime.tasks_executed")->value, 8.0);
}

TEST(RuntimeMetrics, SamplerSeriesHarvestable) {
  rt::Runtime runtime({.num_threads = 1, .metrics_interval_ms = 1});
  const auto* type =
      runtime.register_type({.name = "t", .memoizable = false, .atm = {}});
  int cell = 0;
  for (int i = 0; i < 32; ++i) {
    runtime.submit(type, [] {}, {rt::inout(&cell, 1)});
  }
  runtime.taskwait();
  const auto series = runtime.metrics_series();
  ASSERT_GE(series.samples.size(), 1u);
  EXPECT_NE(series.samples.back().find("runtime.tasks_executed"), nullptr);
}

// --- engine integration -----------------------------------------------------

TEST(EngineMetrics, ExportsAtmCountersAndTypeProfiles) {
  AtmEngine engine({.mode = AtmMode::Static});
  rt::Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type =
      runtime.register_type({.name = "square", .memoizable = true, .atm = {}});

  std::vector<double> input{1.0, 2.0, 3.0};
  std::vector<double> out1(3), out2(3);
  auto body = [&](std::vector<double>& out) {
    return [&input, &out] {
      for (std::size_t i = 0; i < input.size(); ++i) out[i] = input[i] * input[i];
    };
  };
  runtime.submit(type, body(out1),
                 {rt::in(input.data(), 3), rt::out(out1.data(), 3)});
  runtime.taskwait();
  runtime.submit(type, body(out2),
                 {rt::in(input.data(), 3), rt::out(out2.data(), 3)});
  runtime.taskwait();

  const RegistrySnapshot snap = runtime.metrics().snapshot();
  ASSERT_NE(snap.find("atm.tht_hits"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("atm.tht_hits")->value, 1.0);
  ASSERT_NE(snap.find("atm.keys_computed"), nullptr);
  EXPECT_GE(snap.find("atm.keys_computed")->value, 2.0);

  // Per-type profile: one hit, one miss, bytes saved = 3 doubles.
  ASSERT_NE(snap.find("atm.type.square.hits"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("atm.type.square.hits")->value, 1.0);
  ASSERT_NE(snap.find("atm.type.square.misses"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("atm.type.square.misses")->value, 1.0);
  ASSERT_NE(snap.find("atm.type.square.bytes_saved"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("atm.type.square.bytes_saved")->value, 24.0);
  const MetricSample* hash = snap.find("atm.type.square.hash_ns");
  ASSERT_NE(hash, nullptr);
  EXPECT_EQ(hash->kind, MetricKind::Histogram);
  EXPECT_GE(hash->hist.count, 2u);
  const MetricSample* copy = snap.find("atm.type.square.copy_ns");
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->hist.count, 1u);
}

TEST(EngineMetrics, ProfileTypeCapSkipsEngineProfiles) {
  // AtmConfig::profile_max_types = 0: no per-type profile slots exist, so
  // atm.type.* instruments never register — memoization itself still works.
  AtmEngine engine({.mode = AtmMode::Static, .profile_max_types = 0});
  rt::Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type =
      runtime.register_type({.name = "square", .memoizable = true, .atm = {}});
  std::vector<double> input{1.0, 2.0, 3.0};
  std::vector<double> out1(3), out2(3);
  auto body = [&](std::vector<double>& out) {
    return [&input, &out] {
      for (std::size_t i = 0; i < input.size(); ++i) out[i] = input[i] * input[i];
    };
  };
  runtime.submit(type, body(out1),
                 {rt::in(input.data(), 3), rt::out(out1.data(), 3)});
  runtime.taskwait();
  runtime.submit(type, body(out2),
                 {rt::in(input.data(), 3), rt::out(out2.data(), 3)});
  runtime.taskwait();

  const RegistrySnapshot snap = runtime.metrics().snapshot();
  ASSERT_NE(snap.find("atm.tht_hits"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("atm.tht_hits")->value, 1.0);
  EXPECT_EQ(snap.find("atm.type.square.hits"), nullptr);
  EXPECT_EQ(snap.find("atm.type.square.hash_ns"), nullptr);
  EXPECT_DOUBLE_EQ(out2[1], 4.0);
}

TEST(EngineMetrics, EngineOutlivedByRuntimeIsSafe) {
  // The engine detaches itself in its destructor (no manual
  // attach_memoizer(nullptr) needed): snapshotting the runtime's registry
  // after the engine died must not touch freed state.
  rt::Runtime runtime({.num_threads = 1});
  {
    AtmEngine engine({.mode = AtmMode::Static});
    runtime.attach_memoizer(&engine);
    const auto* type =
        runtime.register_type({.name = "t", .memoizable = true, .atm = {}});
    double in = 1.0, out = 0.0;
    runtime.submit(type, [&] { out = in; }, {rt::in(&in, 1), rt::out(&out, 1)});
    runtime.taskwait();
  }
  const RegistrySnapshot snap = runtime.metrics().snapshot();
  EXPECT_EQ(snap.find("atm.tht_hits"), nullptr);
  EXPECT_NE(snap.find("runtime.tasks_executed"), nullptr);
}

TEST(EngineMetrics, RuntimeDiesBeforeEngineIsSafe) {
  // The reverse order — a long-lived engine fed by scoped runtimes (the
  // warm-start pattern: run, save_store, run again) — is just as routine.
  // The runtime must detach the engine in its destructor so the engine
  // never touches the dead registry, and a later re-attach must rebuild
  // the collector and per-type profiles on the new runtime's registry.
  AtmEngine engine({.mode = AtmMode::Static});
  auto run_wave = [&engine] {
    rt::Runtime runtime({.num_threads = 1});
    runtime.attach_memoizer(&engine);
    const auto* type = runtime.register_type(
        {.name = "wave", .memoizable = true, .atm = {}});
    double in = 1.0, out = 0.0;
    for (int i = 0; i < 2; ++i) {
      runtime.submit(type, [&] { out = in * 2; },
                     {rt::in(&in, 1), rt::out(&out, 1)});
      runtime.taskwait();
    }
    return runtime.metrics().snapshot();
  };

  const RegistrySnapshot first = run_wave();   // runtime destroyed inside
  const RegistrySnapshot second = run_wave();  // re-attach to a fresh one
  ASSERT_NE(first.find("atm.tht_hits"), nullptr);
  EXPECT_DOUBLE_EQ(first.find("atm.tht_hits")->value, 1.0);
  ASSERT_NE(first.find("atm.type.wave.misses"), nullptr);
  // The engine's THT survived the first runtime, so every wave-2 submit
  // hits; the re-registered collector exports the cumulative view and the
  // per-type profile was rebuilt on the new registry.
  ASSERT_NE(second.find("atm.tht_hits"), nullptr);
  EXPECT_DOUBLE_EQ(second.find("atm.tht_hits")->value, 3.0);
  ASSERT_NE(second.find("atm.type.wave.hits"), nullptr);
  EXPECT_EQ(engine.stats().tht_hits, 3u);
}

// --- reuse-log cap (AtmStats satellite) -------------------------------------

TEST(AtmStatsReuseLog, CapBoundsGrowthAndCountsDrops) {
  AtmStats stats;
  stats.set_reuse_log_cap(4);
  for (rt::TaskId id = 0; id < 10; ++id) stats.log_reuse(id);
  const AtmStatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.reuse_creators.size(), 4u);
  EXPECT_EQ(snap.reuse_log_dropped, 6u);
  // The head of the stream is what survives (Figure 9 reads the curve head).
  EXPECT_EQ(snap.reuse_creators[0], 0u);
  EXPECT_EQ(snap.reuse_creators[3], 3u);
}

TEST(AtmStatsReuseLog, ResetClearsCapState) {
  AtmStats stats;
  stats.set_reuse_log_cap(2);
  for (rt::TaskId id = 0; id < 5; ++id) stats.log_reuse(id);
  stats.reset();
  EXPECT_EQ(stats.snapshot().reuse_log_dropped, 0u);
  EXPECT_TRUE(stats.snapshot().reuse_creators.empty());
  stats.log_reuse(7);
  EXPECT_EQ(stats.snapshot().reuse_creators.size(), 1u);
}

TEST(AtmStatsReuseLog, EngineConfigPlumbsCap) {
  AtmEngine engine({.mode = AtmMode::Static, .reuse_log_cap = 1});
  rt::Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type =
      runtime.register_type({.name = "t", .memoizable = true, .atm = {}});
  double in = 1.0;
  std::vector<double> outs(4, 0.0);
  for (auto& o : outs) {
    runtime.submit(type, [&in, &o] { o = in; }, {rt::in(&in, 1), rt::out(&o, 1)});
    runtime.taskwait();
  }
  const AtmStatsSnapshot snap = engine.stats();
  EXPECT_EQ(snap.tht_hits, 3u);
  EXPECT_EQ(snap.reuse_creators.size(), 1u);
  EXPECT_EQ(snap.reuse_log_dropped, 2u);
}

}  // namespace
}  // namespace atm::obs

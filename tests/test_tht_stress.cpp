// Multithreaded THT stress: concurrent insert / lookup_and_copy / clear
// across buckets under TSan-friendly assertions. The per-bucket
// shared_mutex path (parallel reads, exclusive writes) had no dedicated
// concurrency test; this also hammers the eviction-sink seam, which runs
// under the bucket's exclusive lock and feeds the L2 tier in production.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "atm/tht.hpp"

namespace atm {
namespace {

rt::Task make_task(float* out, std::size_t n, rt::TaskId id) {
  rt::Task t;
  t.id = id;
  t.accesses.push_back(rt::out(out, n));
  return t;
}

/// Payload convention: every float of key k's output equals k, so a torn or
/// cross-entry read is detectable from any element.
constexpr int kKeys = 96;
constexpr std::size_t kPayloadFloats = 48;

TEST(ThtStress, ConcurrentInsertLookupClear) {
  TaskHistoryTable tht(3, 4);  // 8 buckets x 4 entries: constant eviction churn
  std::vector<std::vector<float>> payloads(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    payloads[k].assign(kPayloadFloats, static_cast<float>(k));
  }

  std::atomic<int> torn_reads{0};
  std::atomic<int> hits{0};
  constexpr int kThreads = 4, kIters = 800;

  // Every thread interleaves inserts and lookups over a shifted key walk;
  // lookups right after an insert hit unless a concurrent clear() or
  // eviction raced in — both are legal, so only data integrity is asserted
  // per hit, plus a global sanity check that the test saw real traffic.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<float> sink(kPayloadFloats);
      for (int i = 0; i < kIters; ++i) {
        const int k = (i * 13 + t * 29) % kKeys;
        // Mixed types and p values exercise the full match tuple.
        auto producer = make_task(payloads[k].data(), kPayloadFloats,
                                  static_cast<rt::TaskId>(k));
        tht.insert(static_cast<std::uint32_t>(k % 3), static_cast<HashKey>(k),
                   k % 2 == 0 ? 1.0 : 0.5, producer);
        auto consumer = make_task(sink.data(), kPayloadFloats, 9999);
        rt::TaskId creator = 0;
        if (tht.lookup_and_copy(static_cast<std::uint32_t>(k % 3),
                                static_cast<HashKey>(k), k % 2 == 0 ? 1.0 : 0.5,
                                consumer, &creator, nullptr, nullptr)) {
          hits.fetch_add(1);
          if (creator != static_cast<rt::TaskId>(k)) torn_reads.fetch_add(1);
          for (float f : sink) {
            if (f != static_cast<float>(k)) {
              torn_reads.fetch_add(1);
              break;
            }
          }
        }
      }
    });
  }
  // A clearer thread periodically wipes the table while traffic is live.
  threads.emplace_back([&] {
    for (int i = 0; i < 20; ++i) {
      tht.clear();
      std::this_thread::yield();
    }
  });

  for (auto& th : threads) th.join();
  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_GT(hits.load(), 0);

  // Post-churn invariants: capacity respected, accounting self-consistent.
  EXPECT_LE(tht.entry_count(), 8u * 4u);
  const std::size_t entries = tht.entry_count();
  tht.clear();
  EXPECT_EQ(tht.entry_count(), 0u);
  (void)entries;
}

TEST(ThtStress, ConcurrentChurnWithEvictionSink) {
  TaskHistoryTable tht(2, 2);  // 4 buckets x 2: almost every insert evicts
  std::mutex demoted_mutex;
  std::vector<EvictedEntry> demoted;
  std::atomic<std::uint64_t> demotions{0};
  tht.set_eviction_sink([&](EvictedEntry&& e) {
    demotions.fetch_add(1);
    // The sink runs under the bucket lock: keep it short, validate later.
    std::lock_guard<std::mutex> lock(demoted_mutex);
    if (demoted.size() < 64) demoted.push_back(std::move(e));
  });

  std::vector<std::vector<float>> payloads(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    payloads[k].assign(kPayloadFloats, static_cast<float>(k));
  }

  constexpr int kThreads = 4, kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<float> sink(kPayloadFloats);
      for (int i = 0; i < kIters; ++i) {
        const int k = (i * 11 + t * 17) % kKeys;
        auto producer = make_task(payloads[k].data(), kPayloadFloats,
                                  static_cast<rt::TaskId>(k));
        tht.insert(0, static_cast<HashKey>(k), 1.0, producer);
        auto consumer = make_task(sink.data(), kPayloadFloats, 8888);
        (void)tht.lookup_and_copy(0, static_cast<HashKey>(k), 1.0, consumer, nullptr,
                                  nullptr, nullptr);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_GT(demotions.load(), 0u);
  EXPECT_EQ(demotions.load(), tht.evictions());
  // Demoted entries carry intact payloads (captured before arena recycling).
  std::lock_guard<std::mutex> lock(demoted_mutex);
  for (const EvictedEntry& e : demoted) {
    ASSERT_EQ(e.snapshot.regions.size(), 1u);
    ASSERT_EQ(e.snapshot.regions[0].data.size(), kPayloadFloats * sizeof(float));
    float f0 = 0;
    std::memcpy(&f0, e.snapshot.regions[0].data.data(), sizeof(f0));
    EXPECT_FLOAT_EQ(f0, static_cast<float>(e.key));
  }
}

TEST(ThtStress, MultiProbeConcurrentNeighborHits) {
  // Tolerance-mode lookups probe a primary key plus neighbor keys via
  // lookup_multi_and_copy. Under concurrent insert churn: a hit must report
  // which key matched, copy that entry's payload intact (no blend of two
  // probes' entries — the scan stops at the first hit), and a list whose
  // keys are all absent must miss.
  TaskHistoryTable tht(4, 4);  // 16 buckets x 4: room for most of the keys
  std::vector<std::vector<float>> payloads(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    payloads[k].assign(kPayloadFloats, static_cast<float>(k));
  }
  // Keys never handed to insert: probing them must never hit.
  const auto bogus = [](int k) {
    return static_cast<HashKey>(0xb0b0'0000'0000'0000ULL + static_cast<HashKey>(k));
  };

  std::atomic<int> torn_reads{0};
  std::atomic<int> probe_hits{0};
  std::atomic<int> bogus_hits{0};
  constexpr int kThreads = 4, kIters = 600;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<float> sink(kPayloadFloats);
      for (int i = 0; i < kIters; ++i) {
        const int k = (i * 7 + t * 31) % kKeys;
        auto producer = make_task(payloads[k].data(), kPayloadFloats,
                                  static_cast<rt::TaskId>(k));
        tht.insert(0, static_cast<HashKey>(k), 1.0, producer);

        // The "jittered twin" case: the primary key landed one cell over
        // (absent), the real entry is reachable only through probe 1.
        const HashKey probes[3] = {bogus(k), static_cast<HashKey>(k), bogus(k + 1)};
        auto consumer = make_task(sink.data(), kPayloadFloats, 9999);
        rt::TaskId creator = 0;
        std::size_t which = 99;
        if (tht.lookup_multi_and_copy(0, probes, 3, 1.0, consumer, &creator, nullptr,
                                      nullptr, &which)) {
          probe_hits.fetch_add(1);
          if (which != 1) torn_reads.fetch_add(1);
          if (creator != static_cast<rt::TaskId>(k)) torn_reads.fetch_add(1);
          for (float f : sink) {
            if (f != static_cast<float>(k)) {
              torn_reads.fetch_add(1);
              break;
            }
          }
        }

        // Two live keys in one list: the first match wins — the payload must
        // be k's, never the second key's (exactly one copy-out).
        const int k2 = (k + 1) % kKeys;
        auto producer2 = make_task(payloads[k2].data(), kPayloadFloats,
                                   static_cast<rt::TaskId>(k2));
        tht.insert(0, static_cast<HashKey>(k2), 1.0, producer2);
        const HashKey both[2] = {static_cast<HashKey>(k), static_cast<HashKey>(k2)};
        which = 99;
        if (tht.lookup_multi_and_copy(0, both, 2, 1.0, consumer, &creator, nullptr,
                                      nullptr, &which)) {
          if (which >= 2) {
            torn_reads.fetch_add(1);
            continue;
          }
          const int hit_k = which == 0 ? k : k2;
          if (creator != static_cast<rt::TaskId>(hit_k)) torn_reads.fetch_add(1);
          for (float f : sink) {
            if (f != static_cast<float>(hit_k)) {
              torn_reads.fetch_add(1);
              break;
            }
          }
        }

        // All-absent list: must miss even while inserts race.
        const HashKey absent[3] = {bogus(k), bogus(k + 1), bogus(k + 2)};
        if (tht.lookup_multi_and_copy(0, absent, 3, 1.0, consumer, nullptr, nullptr,
                                      nullptr, &which)) {
          bogus_hits.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(bogus_hits.load(), 0);
  EXPECT_GT(probe_hits.load(), 0);
}

TEST(ThtStress, LruModeConcurrentChurn) {
  // LRU takes the exclusive-lock path on every hit; make sure the
  // move-to-back dance survives concurrent readers and writers.
  TaskHistoryTable tht(2, 4, 0, false, EvictionPolicy::Lru);
  std::vector<std::vector<float>> payloads(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    payloads[k].assign(kPayloadFloats, static_cast<float>(k));
  }
  std::atomic<int> torn_reads{0};
  constexpr int kThreads = 4, kIters = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<float> sink(kPayloadFloats);
      for (int i = 0; i < kIters; ++i) {
        const int k = (i * 5 + t * 23) % kKeys;
        auto producer = make_task(payloads[k].data(), kPayloadFloats,
                                  static_cast<rt::TaskId>(k));
        tht.insert(0, static_cast<HashKey>(k), 1.0, producer);
        auto consumer = make_task(sink.data(), kPayloadFloats, 7777);
        if (tht.lookup_and_copy(0, static_cast<HashKey>(k), 1.0, consumer, nullptr,
                                nullptr, nullptr)) {
          for (float f : sink) {
            if (f != static_cast<float>(k)) {
              torn_reads.fetch_add(1);
              break;
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(torn_reads.load(), 0);
}

}  // namespace
}  // namespace atm

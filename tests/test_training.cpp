// Tests for the Dynamic-ATM training controller (§III-D): p doubling on
// failure, capping at 100%, the L_training success streak, the unstable
// output-pointer blacklist, and the optional task cap.
#include <gtest/gtest.h>

#include "atm/training.hpp"

namespace atm {
namespace {

rt::AtmParams params(std::uint32_t l, double tau) { return {l, tau}; }

TEST(Training, StartsAtMinP) {
  TrainingController ctl(params(15, 0.01));
  EXPECT_EQ(ctl.phase(), TrainingPhase::Training);
  EXPECT_DOUBLE_EQ(ctl.current_p(), kMinP);
}

TEST(Training, FailureDoublesP) {
  TrainingController ctl(params(15, 0.01));
  ctl.report_trained(0.5);  // tau >= tau_max
  EXPECT_DOUBLE_EQ(ctl.current_p(), 2 * kMinP);
  ctl.report_trained(0.5);
  EXPECT_DOUBLE_EQ(ctl.current_p(), 4 * kMinP);
}

TEST(Training, PCapsAtOne) {
  TrainingController ctl(params(15, 0.01));
  for (int i = 0; i < 40; ++i) ctl.report_trained(1.0);
  EXPECT_DOUBLE_EQ(ctl.current_p(), 1.0);
  EXPECT_EQ(ctl.phase(), TrainingPhase::Training);  // still needs successes
}

TEST(Training, FifteenStepsReachFullP) {
  // Paper: "15 possible configurations until we reach the maximum p=100%".
  TrainingController ctl(params(15, 0.01));
  for (int i = 0; i < 15; ++i) ctl.report_trained(1.0);
  EXPECT_DOUBLE_EQ(ctl.current_p(), 1.0);
}

TEST(Training, LSuccessesEndTraining) {
  TrainingController ctl(params(5, 0.01));
  for (int i = 0; i < 4; ++i) {
    ctl.report_trained(0.001);
    EXPECT_EQ(ctl.phase(), TrainingPhase::Training);
  }
  ctl.report_trained(0.001);
  EXPECT_EQ(ctl.phase(), TrainingPhase::Steady);
}

TEST(Training, FailureResetsStreak) {
  TrainingController ctl(params(3, 0.01));
  ctl.report_trained(0.001);
  ctl.report_trained(0.001);
  ctl.report_trained(0.9);  // reset + double
  ctl.report_trained(0.001);
  ctl.report_trained(0.001);
  EXPECT_EQ(ctl.phase(), TrainingPhase::Training);
  ctl.report_trained(0.001);
  EXPECT_EQ(ctl.phase(), TrainingPhase::Steady);
}

TEST(Training, TauExactlyAtThresholdFails) {
  // Paper: "if tau >= tau_max, we double the value of p".
  TrainingController ctl(params(15, 0.01));
  ctl.report_trained(0.01);
  EXPECT_DOUBLE_EQ(ctl.current_p(), 2 * kMinP);
}

TEST(Training, SteadyControllerIgnoresReports) {
  auto ctl = TrainingController::make_steady(0.5);
  EXPECT_EQ(ctl->phase(), TrainingPhase::Steady);
  EXPECT_DOUBLE_EQ(ctl->current_p(), 0.5);
  ctl->report_trained(1.0);
  EXPECT_DOUBLE_EQ(ctl->current_p(), 0.5);  // p frozen
}

TEST(Training, PHistoryRecordsSteps) {
  TrainingController ctl(params(15, 0.01));
  ctl.report_trained(1.0);
  ctl.report_trained(1.0);
  const auto history = ctl.p_history();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_DOUBLE_EQ(history[0], kMinP);
  EXPECT_DOUBLE_EQ(history[1], 2 * kMinP);
  EXPECT_DOUBLE_EQ(history[2], 4 * kMinP);
}

TEST(Training, BlacklistMembership) {
  TrainingController ctl(params(15, 0.01));
  float out1[4], out2[4];
  rt::Task bad;
  bad.accesses.push_back(rt::out(out1, 4));
  rt::Task good;
  good.accesses.push_back(rt::out(out2, 4));

  EXPECT_FALSE(ctl.is_blacklisted(bad));
  ctl.blacklist_outputs(bad);
  EXPECT_TRUE(ctl.is_blacklisted(bad));
  EXPECT_FALSE(ctl.is_blacklisted(good));
  EXPECT_EQ(ctl.blacklist_size(), 1u);
}

TEST(Training, BlacklistChecksAnyOutputPointer) {
  TrainingController ctl(params(15, 0.01));
  float shared[4], other[4];
  rt::Task writer;
  writer.accesses.push_back(rt::out(shared, 4));
  ctl.blacklist_outputs(writer);

  rt::Task multi;
  multi.accesses.push_back(rt::out(other, 4));
  multi.accesses.push_back(rt::out(shared, 4));  // overlaps the bad pointer
  EXPECT_TRUE(ctl.is_blacklisted(multi));
}

TEST(Training, BlacklistIgnoresInputs) {
  TrainingController ctl(params(15, 0.01));
  float buf[4];
  rt::Task writer;
  writer.accesses.push_back(rt::out(buf, 4));
  ctl.blacklist_outputs(writer);

  rt::Task reader;
  reader.accesses.push_back(rt::in(static_cast<const float*>(buf), 4));
  EXPECT_FALSE(ctl.is_blacklisted(reader));
}

TEST(Training, TaskCapEndsTraining) {
  TrainingController ctl(params(1000, 0.01), kMinP, /*task_cap=*/10);
  for (int i = 0; i < 9; ++i) ctl.note_trained_task();
  EXPECT_EQ(ctl.phase(), TrainingPhase::Training);
  ctl.note_trained_task();
  EXPECT_EQ(ctl.phase(), TrainingPhase::Steady);
  EXPECT_EQ(ctl.trained_tasks(), 10u);
}

TEST(Training, MemoryAccountingNonZero) {
  TrainingController ctl(params(15, 0.01));
  EXPECT_GT(ctl.memory_bytes(), 0u);
}

}  // namespace
}  // namespace atm

// Tests for hash-key computation over sampled task inputs (§III-B/C):
// determinism, sensitivity at p=100%, insensitivity of type-aware sampled
// keys to low-order mantissa noise, and sensitivity to MSB changes.
#include <gtest/gtest.h>

#include <vector>

#include <cmath>

#include "atm/hash_key.hpp"
#include "atm/input_sampler.hpp"

namespace atm {
namespace {

rt::Task make_task(const double* data, std::size_t n, double* out, std::size_t m) {
  rt::Task t;
  t.accesses.push_back(rt::in(data, n));
  if (out != nullptr) t.accesses.push_back(rt::out(out, m));
  return t;
}

TEST(HashKey, IdenticalInputsSameKey) {
  std::vector<double> a(64, 1.25), b(64, 1.25);
  double out = 0;
  const auto ta = make_task(a.data(), a.size(), &out, 1);
  const auto tb = make_task(b.data(), b.size(), &out, 1);
  InputSampler sampler(true, 1);
  const auto& order = sampler.order_for(0, InputLayout::from_task(ta));
  for (double p : {1.0, 0.5, 0.25, 1.0 / 32768}) {
    EXPECT_EQ(compute_key(ta, order, p, 9).key, compute_key(tb, order, p, 9).key) << p;
  }
}

TEST(HashKey, FullPKeySensitiveToAnyByte) {
  std::vector<double> a(64, 1.25);
  auto b = a;
  b[63] = std::nextafter(b[63], 2.0);  // single-ulp flip
  const auto ta = make_task(a.data(), a.size(), nullptr, 0);
  const auto tb = make_task(b.data(), b.size(), nullptr, 0);
  InputSampler sampler(true, 1);
  const auto& order = sampler.order_for(0, InputLayout::from_task(ta));
  EXPECT_NE(compute_key(ta, order, 1.0, 9).key, compute_key(tb, order, 1.0, 9).key);
}

TEST(HashKey, TypeAwareSampledKeyIgnoresMantissaTail) {
  // Perturb values by ~1e-12 relative: only low-order mantissa bytes move.
  // A type-aware key at p = 25% (the two most significant bytes of each
  // double) must not see it — the §III-C property Swaptions relies on.
  std::vector<double> a(47);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = 0.05 + 0.001 * static_cast<double>(i);
  auto b = a;
  for (auto& v : b) v *= 1.0 + 1e-12;
  const auto ta = make_task(a.data(), a.size(), nullptr, 0);
  const auto tb = make_task(b.data(), b.size(), nullptr, 0);
  InputSampler sampler(true, 1);
  const auto& order = sampler.order_for(0, InputLayout::from_task(ta));
  EXPECT_EQ(compute_key(ta, order, 0.25, 9).key, compute_key(tb, order, 0.25, 9).key);
  // At p = 100% the keys must differ.
  EXPECT_NE(compute_key(ta, order, 1.0, 9).key, compute_key(tb, order, 1.0, 9).key);
}

TEST(HashKey, SampledKeySeesMsbChange) {
  std::vector<double> a(64, 1.25);
  auto b = a;
  b[10] = -b[10];  // sign flip lives in the MSB
  const auto ta = make_task(a.data(), a.size(), nullptr, 0);
  const auto tb = make_task(b.data(), b.size(), nullptr, 0);
  InputSampler sampler(true, 1);
  const auto& order = sampler.order_for(0, InputLayout::from_task(ta));
  // p = 1/8 selects exactly the MSB of every double: the flip must show.
  EXPECT_NE(compute_key(ta, order, 0.125, 9).key, compute_key(tb, order, 0.125, 9).key);
}

TEST(HashKey, SeedSeparatesKeySpaces) {
  std::vector<double> a(32, 2.5);
  const auto t = make_task(a.data(), a.size(), nullptr, 0);
  InputSampler sampler(true, 1);
  const auto& order = sampler.order_for(0, InputLayout::from_task(t));
  EXPECT_NE(compute_key(t, order, 1.0, 1).key, compute_key(t, order, 1.0, 2).key);
}

TEST(HashKey, BytesHashedMatchesSelection) {
  std::vector<double> a(64, 1.0);
  const auto t = make_task(a.data(), a.size(), nullptr, 0);
  InputSampler sampler(false, 1);
  const auto& order = sampler.order_for(0, InputLayout::from_task(t));
  EXPECT_EQ(compute_key(t, order, 1.0, 9).bytes_hashed, 512u);
  EXPECT_EQ(compute_key(t, order, 0.5, 9).bytes_hashed, 256u);
  EXPECT_EQ(compute_key(t, order, 1.0 / 32768, 9).bytes_hashed, 1u);
}

TEST(HashKey, MultiRegionConcatenation) {
  // Two tasks with the same concatenated bytes split differently must get
  // different keys because the layout fingerprint seeds differ — the
  // engine feeds layout-bound seeds; here we emulate that.
  std::vector<float> x(16, 3.0f);
  rt::Task one;
  one.accesses.push_back(rt::in(x.data(), 16));
  rt::Task two;
  two.accesses.push_back(rt::in(x.data(), 8));
  two.accesses.push_back(rt::in(x.data() + 8, 8));

  InputSampler sampler(false, 1);
  const auto layout1 = InputLayout::from_task(one);
  const auto layout2 = InputLayout::from_task(two);
  const auto& order1 = sampler.order_for(0, layout1);
  const auto& order2 = sampler.order_for(0, layout2);
  const auto k1 = compute_key(one, order1, 1.0, splitmix64(layout1.fingerprint()));
  const auto k2 = compute_key(two, order2, 1.0, splitmix64(layout2.fingerprint()));
  EXPECT_NE(k1.key, k2.key);
}

TEST(HashKey, GatherPathDeterministic) {
  std::vector<double> a(128);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<double>(i) * 0.5;
  const auto t = make_task(a.data(), a.size(), nullptr, 0);
  InputSampler sampler(true, 2);
  const auto& order = sampler.order_for(0, InputLayout::from_task(t));
  const auto k1 = compute_key(t, order, 0.1, 3);
  const auto k2 = compute_key(t, order, 0.1, 3);
  EXPECT_EQ(k1.key, k2.key);
  EXPECT_EQ(k1.bytes_hashed, k2.bytes_hashed);
}

// --- Planned gather (the engine hot path) -----------------------------------

TEST(HashKeyPlanned, MatchesFullStreamDigestAtP1) {
  // At p >= 1 the plan is one run per region in declaration order, so the
  // planned digest must equal the order-based full-input fast path's.
  std::vector<float> x(64, 3.0f), y(32, -1.0f);
  rt::Task t;
  t.accesses.push_back(rt::in(x.data(), x.size()));
  t.accesses.push_back(rt::in(y.data(), y.size()));
  InputSampler sampler(true, 1);
  const auto layout = InputLayout::from_task(t);
  const auto& order = sampler.order_for(0, layout);
  const GatherPlan& plan = sampler.plan_for(0, layout, 1.0);
  const auto via_order = compute_key(t, order, 1.0, 9);
  const auto via_plan = compute_key(t, plan, 9);
  EXPECT_EQ(via_order.key, via_plan.key);
  EXPECT_EQ(via_order.bytes_hashed, via_plan.bytes_hashed);
}

TEST(HashKeyPlanned, SameSelectionSemanticsAsGather) {
  // The planned key must agree/disagree exactly where the gathered key
  // does: identical inputs agree; mantissa-tail noise is invisible at
  // p = 25% type-aware; an MSB flip is visible at p = 1/8.
  std::vector<double> a(47);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = 0.05 + 0.001 * static_cast<double>(i);
  auto tail = a;
  for (auto& v : tail) v *= 1.0 + 1e-12;
  auto msb = a;
  msb[11] = -msb[11];

  const auto ta = make_task(a.data(), a.size(), nullptr, 0);
  const auto tb = make_task(tail.data(), tail.size(), nullptr, 0);
  const auto tc = make_task(msb.data(), msb.size(), nullptr, 0);
  InputSampler sampler(true, 1);
  const auto layout = InputLayout::from_task(ta);
  const GatherPlan& quarter = sampler.plan_for(0, layout, 0.25);
  const GatherPlan& eighth = sampler.plan_for(0, layout, 0.125);

  EXPECT_EQ(compute_key(ta, quarter, 9).key, compute_key(ta, quarter, 9).key);
  EXPECT_EQ(compute_key(ta, quarter, 9).key, compute_key(tb, quarter, 9).key);
  EXPECT_NE(compute_key(ta, eighth, 9).key, compute_key(tc, eighth, 9).key);
}

TEST(HashKeyPlanned, BytesHashedMatchesPlan) {
  std::vector<double> a(64, 1.0);
  const auto t = make_task(a.data(), a.size(), nullptr, 0);
  InputSampler sampler(false, 1);
  const auto layout = InputLayout::from_task(t);
  EXPECT_EQ(compute_key(t, sampler.plan_for(0, layout, 0.5), 9).bytes_hashed, 256u);
  EXPECT_EQ(compute_key(t, sampler.plan_for(0, layout, 1.0 / 32768), 9).bytes_hashed,
            1u);
}

TEST(HashKeyPlanned, StagingBoundariesDoNotChangeDigest) {
  // > 4 KiB of selected stride bytes forces multiple staging flushes; the
  // digest must be chunking-invariant (HashStream property), so a big and
  // a small selection of the same first bytes relate consistently across
  // two identical tasks.
  std::vector<double> a(8192);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<double>(i) * 0.25;
  auto b = a;
  const auto ta = make_task(a.data(), a.size(), nullptr, 0);
  const auto tb = make_task(b.data(), b.size(), nullptr, 0);
  InputSampler sampler(true, 2);
  const auto layout = InputLayout::from_task(ta);
  const GatherPlan& plan = sampler.plan_for(0, layout, 0.125);  // 8192 bytes
  EXPECT_GT(plan.bytes, 4096u);
  EXPECT_EQ(compute_key(ta, plan, 3).key, compute_key(tb, plan, 3).key);
}

// --- out-of-range gathers: clamp-and-count in every build type -------------
// An order or plan built for a different (larger) layout must never read
// out of bounds — not in Release either, where the old Debug-only assert
// was compiled away and the gather silently hashed whatever lay past the
// region. Every out-of-range position is clamped and reported in
// KeyResult::oob (surfaced by the engine as the key_gather_oob stat).

TEST(HashKeyOob, OutOfRangeOrderIndexesClampAndCount) {
  std::vector<double> a(4, 1.0);
  const auto t = make_task(a.data(), a.size(), nullptr, 0);
  std::vector<std::uint32_t> bogus_order(64);
  for (std::size_t i = 0; i < bogus_order.size(); ++i) {
    bogus_order[i] = static_cast<std::uint32_t>(64 + i);  // all out of range
  }
  // p = 0.5 over 32 input bytes selects 16 indexes — all out of range here.
  const KeyResult r = compute_key(t, bogus_order, 0.5, 9);
  EXPECT_EQ(r.oob, 16u);
  EXPECT_EQ(r.bytes_hashed, 16u);  // clamped bytes still feed the digest
  // Deterministic: the clamped gather hashes the same bytes every time.
  EXPECT_EQ(r.key, compute_key(t, bogus_order, 0.5, 9).key);
}

TEST(HashKeyOob, InRangeOrderReportsZeroOob) {
  std::vector<double> a(64, 2.5);
  const auto t = make_task(a.data(), a.size(), nullptr, 0);
  InputSampler sampler(true, 1);
  const auto& order = sampler.order_for(0, InputLayout::from_task(t));
  for (double p : {1.0, 0.5, 1.0 / 128}) {
    EXPECT_EQ(compute_key(t, order, p, 9).oob, 0u) << p;
  }
}

TEST(HashKeyOob, UndersizedOrderVectorCountsMissingIndexes) {
  std::vector<double> a(64, 2.5);
  const auto t = make_task(a.data(), a.size(), nullptr, 0);
  std::vector<std::uint32_t> short_order = {0, 1, 2, 3};  // selection needs 256
  const KeyResult r = compute_key(t, short_order, 0.5, 9);
  EXPECT_EQ(r.oob, 256u - 4u);
}

TEST(HashKeyOob, PlanRunPastRegionTruncatesAndCounts) {
  std::vector<double> a(8, 1.0);  // one 64-byte region
  const auto t = make_task(a.data(), a.size(), nullptr, 0);
  GatherPlan plan;
  plan.runs.push_back({0, 32, 64});   // 32 bytes in range, 32 past the end
  plan.runs.push_back({0, 128, 16});  // entirely past the end
  plan.runs.push_back({3, 0, 8});     // region the task does not have
  plan.bytes = 64 + 16 + 8;
  const KeyResult r = compute_key(t, plan, 9);
  EXPECT_EQ(r.oob, 32u + 16u + 8u);
  EXPECT_EQ(r.bytes_hashed, 32u);
  EXPECT_EQ(r.key, compute_key(t, plan, 9).key);  // deterministic
}

TEST(HashKeyOob, WellFormedPlanReportsZeroOob) {
  std::vector<double> a(64, 2.5);
  const auto t = make_task(a.data(), a.size(), nullptr, 0);
  InputSampler sampler(true, 1);
  const InputLayout layout = InputLayout::from_task(t);
  for (double p : {1.0, 0.25, 1.0 / 128}) {
    const KeyResult r = compute_key(t, sampler.plan_for(0, layout, p), 9);
    EXPECT_EQ(r.oob, 0u) << p;
    EXPECT_GT(r.bytes_hashed, 0u) << p;
  }
}

class HashKeyPSweep : public ::testing::TestWithParam<int> {};

TEST_P(HashKeyPSweep, EveryPStepDistinguishesMsbNoise) {
  // For every dynamic-ATM p step, identical inputs agree and MSB-visible
  // changes disagree (collision would need a 64-bit hash coincidence).
  const double p = 1.0 / static_cast<double>(1 << GetParam());
  std::vector<double> a(512, 7.5);
  auto b = a;
  for (auto& v : b) v = -v;  // flip every sign: visible at any p
  const auto ta = make_task(a.data(), a.size(), nullptr, 0);
  const auto tb = make_task(b.data(), b.size(), nullptr, 0);
  InputSampler sampler(true, 4);
  const auto& order = sampler.order_for(0, InputLayout::from_task(ta));
  EXPECT_EQ(compute_key(ta, order, p, 1).key, compute_key(ta, order, p, 1).key);
  EXPECT_NE(compute_key(ta, order, p, 1).key, compute_key(tb, order, p, 1).key);
}

INSTANTIATE_TEST_SUITE_P(AllPSteps, HashKeyPSweep, ::testing::Range(0, 16));

}  // namespace
}  // namespace atm

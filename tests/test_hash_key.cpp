// Tests for hash-key computation over sampled task inputs (§III-B/C):
// determinism, sensitivity at p=100%, insensitivity of type-aware sampled
// keys to low-order mantissa noise, and sensitivity to MSB changes.
#include <gtest/gtest.h>

#include <vector>

#include <cmath>

#include "atm/hash_key.hpp"
#include "atm/input_sampler.hpp"

namespace atm {
namespace {

rt::Task make_task(const double* data, std::size_t n, double* out, std::size_t m) {
  rt::Task t;
  t.accesses.push_back(rt::in(data, n));
  if (out != nullptr) t.accesses.push_back(rt::out(out, m));
  return t;
}

TEST(HashKey, IdenticalInputsSameKey) {
  std::vector<double> a(64, 1.25), b(64, 1.25);
  double out = 0;
  const auto ta = make_task(a.data(), a.size(), &out, 1);
  const auto tb = make_task(b.data(), b.size(), &out, 1);
  InputSampler sampler(true, 1);
  const auto& order = sampler.order_for(0, InputLayout::from_task(ta));
  for (double p : {1.0, 0.5, 0.25, 1.0 / 32768}) {
    EXPECT_EQ(compute_key(ta, order, p, 9).key, compute_key(tb, order, p, 9).key) << p;
  }
}

TEST(HashKey, FullPKeySensitiveToAnyByte) {
  std::vector<double> a(64, 1.25);
  auto b = a;
  b[63] = std::nextafter(b[63], 2.0);  // single-ulp flip
  const auto ta = make_task(a.data(), a.size(), nullptr, 0);
  const auto tb = make_task(b.data(), b.size(), nullptr, 0);
  InputSampler sampler(true, 1);
  const auto& order = sampler.order_for(0, InputLayout::from_task(ta));
  EXPECT_NE(compute_key(ta, order, 1.0, 9).key, compute_key(tb, order, 1.0, 9).key);
}

TEST(HashKey, TypeAwareSampledKeyIgnoresMantissaTail) {
  // Perturb values by ~1e-12 relative: only low-order mantissa bytes move.
  // A type-aware key at p = 25% (the two most significant bytes of each
  // double) must not see it — the §III-C property Swaptions relies on.
  std::vector<double> a(47);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = 0.05 + 0.001 * static_cast<double>(i);
  auto b = a;
  for (auto& v : b) v *= 1.0 + 1e-12;
  const auto ta = make_task(a.data(), a.size(), nullptr, 0);
  const auto tb = make_task(b.data(), b.size(), nullptr, 0);
  InputSampler sampler(true, 1);
  const auto& order = sampler.order_for(0, InputLayout::from_task(ta));
  EXPECT_EQ(compute_key(ta, order, 0.25, 9).key, compute_key(tb, order, 0.25, 9).key);
  // At p = 100% the keys must differ.
  EXPECT_NE(compute_key(ta, order, 1.0, 9).key, compute_key(tb, order, 1.0, 9).key);
}

TEST(HashKey, SampledKeySeesMsbChange) {
  std::vector<double> a(64, 1.25);
  auto b = a;
  b[10] = -b[10];  // sign flip lives in the MSB
  const auto ta = make_task(a.data(), a.size(), nullptr, 0);
  const auto tb = make_task(b.data(), b.size(), nullptr, 0);
  InputSampler sampler(true, 1);
  const auto& order = sampler.order_for(0, InputLayout::from_task(ta));
  // p = 1/8 selects exactly the MSB of every double: the flip must show.
  EXPECT_NE(compute_key(ta, order, 0.125, 9).key, compute_key(tb, order, 0.125, 9).key);
}

TEST(HashKey, SeedSeparatesKeySpaces) {
  std::vector<double> a(32, 2.5);
  const auto t = make_task(a.data(), a.size(), nullptr, 0);
  InputSampler sampler(true, 1);
  const auto& order = sampler.order_for(0, InputLayout::from_task(t));
  EXPECT_NE(compute_key(t, order, 1.0, 1).key, compute_key(t, order, 1.0, 2).key);
}

TEST(HashKey, BytesHashedMatchesSelection) {
  std::vector<double> a(64, 1.0);
  const auto t = make_task(a.data(), a.size(), nullptr, 0);
  InputSampler sampler(false, 1);
  const auto& order = sampler.order_for(0, InputLayout::from_task(t));
  EXPECT_EQ(compute_key(t, order, 1.0, 9).bytes_hashed, 512u);
  EXPECT_EQ(compute_key(t, order, 0.5, 9).bytes_hashed, 256u);
  EXPECT_EQ(compute_key(t, order, 1.0 / 32768, 9).bytes_hashed, 1u);
}

TEST(HashKey, MultiRegionConcatenation) {
  // Two tasks with the same concatenated bytes split differently must get
  // different keys because the layout fingerprint seeds differ — the
  // engine feeds layout-bound seeds; here we emulate that.
  std::vector<float> x(16, 3.0f);
  rt::Task one;
  one.accesses.push_back(rt::in(x.data(), 16));
  rt::Task two;
  two.accesses.push_back(rt::in(x.data(), 8));
  two.accesses.push_back(rt::in(x.data() + 8, 8));

  InputSampler sampler(false, 1);
  const auto layout1 = InputLayout::from_task(one);
  const auto layout2 = InputLayout::from_task(two);
  const auto& order1 = sampler.order_for(0, layout1);
  const auto& order2 = sampler.order_for(0, layout2);
  const auto k1 = compute_key(one, order1, 1.0, splitmix64(layout1.fingerprint()));
  const auto k2 = compute_key(two, order2, 1.0, splitmix64(layout2.fingerprint()));
  EXPECT_NE(k1.key, k2.key);
}

TEST(HashKey, GatherPathDeterministic) {
  std::vector<double> a(128);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<double>(i) * 0.5;
  const auto t = make_task(a.data(), a.size(), nullptr, 0);
  InputSampler sampler(true, 2);
  const auto& order = sampler.order_for(0, InputLayout::from_task(t));
  const auto k1 = compute_key(t, order, 0.1, 3);
  const auto k2 = compute_key(t, order, 0.1, 3);
  EXPECT_EQ(k1.key, k2.key);
  EXPECT_EQ(k1.bytes_hashed, k2.bytes_hashed);
}

class HashKeyPSweep : public ::testing::TestWithParam<int> {};

TEST_P(HashKeyPSweep, EveryPStepDistinguishesMsbNoise) {
  // For every dynamic-ATM p step, identical inputs agree and MSB-visible
  // changes disagree (collision would need a 64-bit hash coincidence).
  const double p = 1.0 / static_cast<double>(1 << GetParam());
  std::vector<double> a(512, 7.5);
  auto b = a;
  for (auto& v : b) v = -v;  // flip every sign: visible at any p
  const auto ta = make_task(a.data(), a.size(), nullptr, 0);
  const auto tb = make_task(b.data(), b.size(), nullptr, 0);
  InputSampler sampler(true, 4);
  const auto& order = sampler.order_for(0, InputLayout::from_task(ta));
  EXPECT_EQ(compute_key(ta, order, p, 1).key, compute_key(ta, order, p, 1).key);
  EXPECT_NE(compute_key(ta, order, p, 1).key, compute_key(tb, order, p, 1).key);
}

INSTANTIATE_TEST_SUITE_P(AllPSteps, HashKeyPSweep, ::testing::Range(0, 16));

}  // namespace
}  // namespace atm

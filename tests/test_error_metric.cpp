// Tests for the error metrics of §III-D / §IV-C: Chebyshev tau (Eq. 1),
// Euclidean Er (Eq. 3), multi-region accumulation, element-type dispatch,
// and the correctness mapping.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "atm/error_metric.hpp"

namespace atm {
namespace {

TEST(Chebyshev, HandValues) {
  const std::vector<double> correct{1.0, 2.0, -4.0};
  const std::vector<double> approx{1.1, 2.0, -4.2};
  // max diff = 0.2, max |correct| = 4 -> tau = 0.05
  EXPECT_NEAR(chebyshev_relative_error<double>(correct, approx), 0.05, 1e-12);
}

TEST(Chebyshev, IdenticalIsZero) {
  const std::vector<float> v{1.0f, 2.0f, 3.0f};
  EXPECT_EQ(chebyshev_relative_error<float>(v, v), 0.0);
}

TEST(Chebyshev, ZeroReferenceZeroDiff) {
  const std::vector<double> zeros(4, 0.0);
  EXPECT_EQ(chebyshev_relative_error<double>(zeros, zeros), 0.0);
}

TEST(Chebyshev, ZeroReferenceNonzeroDiffIsInfinite) {
  const std::vector<double> zeros(4, 0.0);
  const std::vector<double> ones(4, 1.0);
  EXPECT_TRUE(std::isinf(chebyshev_relative_error<double>(zeros, ones)));
}

TEST(Chebyshev, MaxNotSum) {
  // The whole point of Eq. 1: a million small errors do not accumulate.
  std::vector<double> correct(1'000'000, 1.0);
  std::vector<double> approx(1'000'000, 1.0 + 1e-9);
  EXPECT_NEAR(chebyshev_relative_error<double>(correct, approx), 1e-9, 1e-12);
}

TEST(Euclidean, HandValues) {
  const std::vector<double> correct{3.0, 4.0};   // |c|^2 = 25
  const std::vector<double> approx{3.0, 5.0};    // diff^2 = 1
  EXPECT_NEAR(euclidean_relative_error<double>(correct, approx), 1.0 / 25.0, 1e-12);
}

TEST(Euclidean, ZeroDenominator) {
  const std::vector<double> zeros(3, 0.0);
  const std::vector<double> ones(3, 1.0);
  EXPECT_EQ(euclidean_relative_error<double>(zeros, zeros), 0.0);
  EXPECT_TRUE(std::isinf(euclidean_relative_error<double>(zeros, ones)));
}

TEST(Accumulator, MultiRegionTakesGlobalMax) {
  ChebyshevAccumulator acc;
  const std::vector<double> c1{10.0}, a1{10.5};  // diff .5
  const std::vector<double> c2{2.0}, a2{2.2};    // diff .2
  acc.add<double>(c1, a1);
  acc.add<double>(c2, a2);
  // max diff = 0.5 over max |correct| = 10 -> 0.05
  EXPECT_NEAR(acc.value(), 0.05, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  ChebyshevAccumulator acc;
  EXPECT_EQ(acc.value(), 0.0);
}

TEST(Accumulator, ByteDispatchFloat) {
  const std::vector<float> c{1.0f, -2.0f};
  const std::vector<float> a{1.0f, -2.5f};
  ChebyshevAccumulator acc;
  acc.add_bytes(rt::ElemType::F32,
                {reinterpret_cast<const std::uint8_t*>(c.data()), c.size() * 4},
                {reinterpret_cast<const std::uint8_t*>(a.data()), a.size() * 4});
  EXPECT_NEAR(acc.value(), 0.25, 1e-6);
}

TEST(Accumulator, ByteDispatchInt32) {
  const std::vector<std::int32_t> c{100, -200};
  const std::vector<std::int32_t> a{110, -200};
  ChebyshevAccumulator acc;
  acc.add_bytes(rt::ElemType::I32,
                {reinterpret_cast<const std::uint8_t*>(c.data()), c.size() * 4},
                {reinterpret_cast<const std::uint8_t*>(a.data()), a.size() * 4});
  EXPECT_NEAR(acc.value(), 10.0 / 200.0, 1e-12);
}

TEST(Accumulator, ByteDispatchAllTypesRun) {
  // Smoke over every tag: identical buffers must give tau = 0.
  const std::vector<std::uint8_t> bytes(64, 7);
  for (auto t : {rt::ElemType::U8, rt::ElemType::I8, rt::ElemType::U16,
                 rt::ElemType::I16, rt::ElemType::U32, rt::ElemType::I32,
                 rt::ElemType::U64, rt::ElemType::I64, rt::ElemType::F32,
                 rt::ElemType::F64}) {
    ChebyshevAccumulator acc;
    acc.add_bytes(t, {bytes.data(), bytes.size()}, {bytes.data(), bytes.size()});
    EXPECT_EQ(acc.value(), 0.0) << rt::elem_name(t);
  }
}

TEST(TaskOutputTau, ComparesAgainstSnapshot) {
  std::vector<float> computed{1.0f, 2.0f, 4.0f};
  rt::Task task;
  task.accesses.push_back(rt::out(computed.data(), 3));

  OutputSnapshot snap;
  OutputSnapshot::Region region;
  region.elem = rt::ElemType::F32;
  const std::vector<float> stored{1.0f, 2.0f, 4.4f};
  region.data.assign(reinterpret_cast<const std::uint8_t*>(stored.data()),
                     reinterpret_cast<const std::uint8_t*>(stored.data()) + 12);
  snap.regions.push_back(std::move(region));

  EXPECT_NEAR(task_output_tau(task, snap), 0.4 / 4.0, 1e-6);
}

TEST(Correctness, Mapping) {
  EXPECT_DOUBLE_EQ(correctness_percent(0.0), 100.0);
  EXPECT_DOUBLE_EQ(correctness_percent(0.05), 95.0);
  EXPECT_DOUBLE_EQ(correctness_percent(1.5), 0.0);   // clamped
  EXPECT_DOUBLE_EQ(correctness_percent(-1.0), 0.0);  // guard
  EXPECT_DOUBLE_EQ(correctness_percent(std::nan("")), 0.0);
}

TEST(Metrics, LengthMismatchUsesCommonPrefix) {
  const std::vector<double> c{1.0, 2.0, 3.0};
  const std::vector<double> a{1.0, 2.0};
  EXPECT_EQ(chebyshev_relative_error<double>(c, a), 0.0);
}

}  // namespace
}  // namespace atm

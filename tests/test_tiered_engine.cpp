// Tests for the tiered memo store behind the engine: THT demotion/promotion
// through the eviction-sink seam, the L1 -> L2 fallthrough on steady-state
// lookups, and the --save-store/--load-store warm start — including the two
// acceptance demonstrations: (a) a warm-started gauss-seidel run reaches
// steady state from iteration 1 with zero training executions, and (b) the
// L2 tier lifts the hit rate over L1-only at equal L1 size.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/app_registry.hpp"
#include "atm/engine.hpp"
#include "atm/tht.hpp"

namespace atm {
namespace {

using apps::Preset;
using apps::RunConfig;
using apps::RunResult;

rt::Task make_task(float* out, std::size_t n, rt::TaskId id) {
  rt::Task t;
  t.id = id;
  t.accesses.push_back(rt::out(out, n));
  return t;
}

// --- THT seam --------------------------------------------------------------

TEST(ThtSeam, EvictionSinkReceivesDemotedEntry) {
  TaskHistoryTable tht(0, 1);  // one bucket, one entry: every insert evicts
  std::vector<EvictedEntry> demoted;
  tht.set_eviction_sink([&demoted](EvictedEntry&& e) { demoted.push_back(std::move(e)); });

  std::vector<float> a{1.0f, 2.0f}, b{3.0f, 4.0f};
  auto first = make_task(a.data(), 2, 10);
  auto second = make_task(b.data(), 2, 20);
  tht.insert(5, 0x1, 0.5, first);
  tht.insert(5, 0x2, 0.5, second);

  ASSERT_EQ(demoted.size(), 1u);
  EXPECT_EQ(demoted[0].type_id, 5u);
  EXPECT_EQ(demoted[0].key, 0x1u);
  EXPECT_DOUBLE_EQ(demoted[0].p, 0.5);
  EXPECT_EQ(demoted[0].creator, 10u);
  ASSERT_EQ(demoted[0].snapshot.regions.size(), 1u);
  const auto& bytes = demoted[0].snapshot.regions[0].data;
  ASSERT_EQ(bytes.size(), 2 * sizeof(float));
  float f0 = 0;
  std::memcpy(&f0, bytes.data(), sizeof(f0));
  EXPECT_FLOAT_EQ(f0, 1.0f);
}

TEST(ThtSeam, ClearDoesNotDemote) {
  TaskHistoryTable tht(0, 4);
  int demotions = 0;
  tht.set_eviction_sink([&demotions](EvictedEntry&&) { ++demotions; });
  std::vector<float> v{1.0f};
  auto task = make_task(v.data(), 1, 1);
  tht.insert(0, 0x1, 1.0, task);
  tht.clear();
  EXPECT_EQ(demotions, 0);
}

TEST(ThtSeam, InsertSnapshotRoundtripsThroughLookup) {
  TaskHistoryTable tht(2, 4);
  OutputSnapshot snap;
  OutputSnapshot::Region region;
  region.elem = rt::ElemType::F32;
  const std::vector<float> payload{7.0f, 8.0f, 9.0f};
  region.data.assign(reinterpret_cast<const std::uint8_t*>(payload.data()),
                     reinterpret_cast<const std::uint8_t*>(payload.data() + 3));
  snap.regions.push_back(std::move(region));
  tht.insert_snapshot(2, 0xF00, 0.25, 77, snap);

  std::vector<float> sink(3, 0.0f);
  auto consumer = make_task(sink.data(), 3, 999);
  rt::TaskId creator = 0;
  ASSERT_TRUE(tht.lookup_and_copy(2, 0xF00, 0.25, consumer, &creator, nullptr, nullptr));
  EXPECT_EQ(creator, 77u);
  EXPECT_EQ(sink, payload);
}

TEST(ThtSeam, ForEachEntryExportsLiveContents) {
  TaskHistoryTable tht(2, 4);
  std::vector<float> a{1.0f}, b{2.0f};
  auto t1 = make_task(a.data(), 1, 1);
  auto t2 = make_task(b.data(), 1, 2);
  tht.insert(0, 0x1, 1.0, t1);
  tht.insert(0, 0x2, 0.5, t2);
  std::size_t seen = 0;
  tht.for_each_entry([&seen](const EvictedEntry& e) {
    ++seen;
    EXPECT_EQ(e.snapshot.regions.size(), 1u);
    EXPECT_EQ(e.snapshot.regions[0].data.size(), sizeof(float));
  });
  EXPECT_EQ(seen, 2u);
}

// --- engine tiering --------------------------------------------------------

/// Deterministic scan workload: K distinct input patterns cycled for R
/// rounds, with K chosen above the L1 capacity. FIFO L1 alone thrashes (a
/// key is always evicted before its next use — the classic scan pattern);
/// the L2 tier catches the evictions and serves every revisit.
constexpr std::size_t kPatterns = 32;
constexpr std::size_t kRounds = 3;
constexpr std::size_t kInputWords = 64;   // 512-byte inputs
constexpr std::size_t kOutputWords = 16;  // 128-byte outputs

struct SyntheticResult {
  AtmStatsSnapshot stats;
  std::vector<std::uint64_t> outputs;  // kRounds * kPatterns * kOutputWords
  bool outputs_correct = true;
};

SyntheticResult run_scan_workload(AtmEngine* engine, bool compressible = false) {
  rt::Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(engine);
  const auto* type = runtime.register_type({.name = "scan", .memoizable = true,
                                            .atm = {}});

  std::vector<std::vector<std::uint64_t>> patterns(kPatterns);
  for (std::size_t k = 0; k < kPatterns; ++k) {
    patterns[k].resize(kInputWords);
    for (std::size_t i = 0; i < kInputWords; ++i) {
      // Compressible payloads repeat one word per pattern; incompressible
      // ones mix the indices through splitmix64.
      patterns[k][i] = compressible ? k + 1 : splitmix64(k * 131 + i);
    }
  }

  SyntheticResult result;
  result.outputs.assign(kRounds * kPatterns * kOutputWords, 0);
  for (std::size_t r = 0; r < kRounds; ++r) {
    for (std::size_t k = 0; k < kPatterns; ++k) {
      const std::uint64_t* in = patterns[k].data();
      std::uint64_t* out = result.outputs.data() + (r * kPatterns + k) * kOutputWords;
      runtime.submit(type,
                     [in, out] {
                       for (std::size_t i = 0; i < kOutputWords; ++i) {
                         out[i] = in[i] * 2 + 1;
                       }
                     },
                     {rt::in(in, kInputWords), rt::out(out, kOutputWords)});
    }
    runtime.taskwait();  // one round at a time: revisits are cross-round
  }

  for (std::size_t r = 0; r < kRounds && result.outputs_correct; ++r) {
    for (std::size_t k = 0; k < kPatterns; ++k) {
      const std::uint64_t* out = result.outputs.data() + (r * kPatterns + k) * kOutputWords;
      for (std::size_t i = 0; i < kOutputWords; ++i) {
        if (out[i] != patterns[k][i] * 2 + 1) {
          result.outputs_correct = false;
          break;
        }
      }
    }
  }
  result.stats = engine->stats();
  return result;
}

AtmConfig scan_config(bool l2, bool compress = false) {
  AtmConfig config;
  config.mode = AtmMode::Static;  // steady from task 1: pure tiering behavior
  config.log2_buckets = 0;        // one bucket...
  config.bucket_capacity = 8;     // ...of 8 entries against 32 live keys
  config.use_ikt = false;         // isolate the THT/L2 path
  config.l2_enabled = l2;
  config.l2_budget_bytes = std::size_t{4} << 20;
  config.l2_compress = compress;
  return config;
}

class TieredEngineTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(store_path_.c_str()); }
  std::string store_path_ = "test_tiered_engine.atmstore";
};

// Acceptance (b): with the L2 tier, the same tiny L1 yields a strictly
// higher hit rate — demoted entries come back as promotions, not misses.
TEST_F(TieredEngineTest, L2TierLiftsHitRateAtEqualL1Size) {
  AtmEngine l1_only(scan_config(false));
  const SyntheticResult base = run_scan_workload(&l1_only);
  AtmEngine tiered(scan_config(true));
  const SyntheticResult l2 = run_scan_workload(&tiered);

  // Identical lookup streams at equal L1 size...
  EXPECT_EQ(base.stats.keys_computed, l2.stats.keys_computed);
  // ...but the scan pattern starves the FIFO L1 completely...
  EXPECT_EQ(base.stats.tht_hits + base.stats.l2_hits, 0u);
  // ...while the L2 tier catches the demotions and serves every revisit:
  // (kRounds - 1) * kPatterns lookups come back as promotions.
  EXPECT_GT(l2.stats.l2_demotions, 0u);
  EXPECT_EQ(l2.stats.l2_hits, (kRounds - 1) * kPatterns);
  EXPECT_EQ(l2.stats.l2_hits, l2.stats.l2_promotions);
  EXPECT_GT(l2.stats.tht_hits + l2.stats.l2_hits,
            base.stats.tht_hits + base.stats.l2_hits);

  // Promoted outputs are byte-correct (Static mode: exact reuse only).
  EXPECT_TRUE(base.outputs_correct);
  EXPECT_TRUE(l2.outputs_correct);
}

TEST_F(TieredEngineTest, CompressedL2StillServesCorrectHits) {
  AtmEngine engine(scan_config(true, /*compress=*/true));
  const SyntheticResult run = run_scan_workload(&engine, /*compressible=*/true);
  EXPECT_EQ(run.stats.l2_hits, (kRounds - 1) * kPatterns);
  EXPECT_TRUE(run.outputs_correct);
  EXPECT_GT(engine.l2()->stats().compressed_regions, 0u);
  // Compressible payloads resident in L2 occupy less than their raw size.
  EXPECT_LT(engine.l2()->payload_bytes(),
            engine.l2()->entry_count() * kOutputWords * sizeof(std::uint64_t));
}

// Acceptance (a): save the trained store, reload it, and the warm run does
// zero training — steady state (and hits) from iteration 1. Bench preset:
// the Test stencil is too small to converge, so it has no reuse to warm.
TEST_F(TieredEngineTest, WarmStartSkipsTrainingEntirely) {
  const auto app = apps::make_app("gauss-seidel", Preset::Bench);
  ASSERT_NE(app, nullptr);

  RunConfig cold{.threads = 2, .mode = AtmMode::Dynamic};
  cold.l2_enabled = true;
  cold.save_store_path = store_path_;
  const RunResult cold_run = app->run(cold);
  ASSERT_EQ(cold_run.final_phase, TrainingPhase::Steady);
  EXPECT_GT(cold_run.atm.training_hits, 0u);  // the cold run did train
  EXPECT_GT(cold_run.p_history.size(), 0u);

  RunConfig warm = cold;
  warm.save_store_path.clear();
  warm.load_store_path = store_path_;
  const RunResult warm_run = app->run(warm);

  // Zero training executions: the controller starts steady at the trained
  // p, so no training checks run and p never moves.
  EXPECT_EQ(warm_run.final_phase, TrainingPhase::Steady);
  EXPECT_EQ(warm_run.atm.training_hits, 0u);
  EXPECT_EQ(warm_run.atm.training_failures, 0u);
  EXPECT_LE(warm_run.p_history.size(), 1u);
  EXPECT_DOUBLE_EQ(warm_run.final_p, cold_run.final_p);

  // Steady-state hits from iteration 1: the warm run serves the trained
  // table immediately, so its reuse strictly improves on the cold run
  // (which executed every task of the training prefix).
  EXPECT_GT(warm_run.atm.tht_hits, 0u);
  EXPECT_GT(warm_run.reuse_fraction(), cold_run.reuse_fraction());
}

TEST_F(TieredEngineTest, SaveStoreImageContainsBothTiers) {
  AtmEngine engine(scan_config(true));
  (void)run_scan_workload(&engine);
  ASSERT_TRUE(engine.save_store(store_path_));

  std::string error;
  const auto image = store::load(store_path_, &error);
  ASSERT_TRUE(image.has_value()) << error;
  EXPECT_EQ(image->l1.size(), 8u);  // the L1 capacity
  EXPECT_EQ(image->l1.size() + image->l2.size(), kPatterns);  // nothing lost
}

TEST_F(TieredEngineTest, LoadStoreOverflowDemotesIntoL2) {
  // Save from a roomy L1, load into a tiny L1 + L2: the image's hot tier
  // cannot fit, and the loader must demote the overflow instead of losing it.
  {
    AtmConfig roomy;
    roomy.mode = AtmMode::Static;
    roomy.use_ikt = false;
    AtmEngine engine(roomy);
    (void)run_scan_workload(&engine);
    ASSERT_EQ(engine.tht().entry_count(), kPatterns);
    ASSERT_TRUE(engine.save_store(store_path_));
  }

  AtmEngine tiny(scan_config(true));
  std::string error;
  ASSERT_TRUE(tiny.load_store(store_path_, &error)) << error;
  EXPECT_EQ(tiny.tht().entry_count(), 8u);
  EXPECT_EQ(tiny.l2()->entry_count(), kPatterns - 8u);
}

TEST_F(TieredEngineTest, LoadMissingStoreFailsGracefully) {
  AtmConfig config;
  config.mode = AtmMode::Static;
  AtmEngine engine(config);
  std::string error;
  EXPECT_FALSE(engine.load_store("does_not_exist.atmstore", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(engine.tht().entry_count(), 0u);
}

}  // namespace
}  // namespace atm

// NUMA layer unit tests (PR 10): sysfs topology parsing against a mocked
// node directory, policy parsing, graceful single-node degradation of
// numa_place, and end-to-end result identity with the policy on vs off.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/numa.hpp"
#include "runtime/runtime.hpp"

namespace atm {
namespace {

namespace fs = std::filesystem;

/// Scoped fake /sys/devices/system/node tree under the system temp dir.
class MockSysfs {
 public:
  MockSysfs() : root_(fs::temp_directory_path() / "atm_numa_mock_test") {
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~MockSysfs() { fs::remove_all(root_); }

  void add_node(unsigned id, const std::string& cpulist) {
    const fs::path dir = root_ / ("node" + std::to_string(id));
    fs::create_directories(dir);
    std::ofstream(dir / "cpulist") << cpulist;
  }

  [[nodiscard]] std::string path() const { return root_.string(); }

 private:
  fs::path root_;
};

TEST(NumaTopology, DetectsMockedTwoNodeHost) {
  MockSysfs sysfs;
  sysfs.add_node(0, "0-3\n");
  sysfs.add_node(1, "4-7\n");
  const NumaTopology topo = NumaTopology::detect(sysfs.path());
  EXPECT_EQ(topo.node_count, 2u);
  EXPECT_TRUE(topo.multi_node());
  ASSERT_EQ(topo.node_cpus.size(), 2u);
  EXPECT_EQ(topo.node_cpus[0] + topo.node_cpus[1], 8u);
}

TEST(NumaTopology, ParsesCommaAndRangeCpulists) {
  MockSysfs sysfs;
  sysfs.add_node(0, "0-1,4,6-7\n");  // 2 + 1 + 2 CPUs
  sysfs.add_node(1, "2-3,5\n");      // 2 + 1 CPUs
  const NumaTopology topo = NumaTopology::detect(sysfs.path());
  ASSERT_EQ(topo.node_count, 2u);
  EXPECT_EQ(topo.node_cpus[0] + topo.node_cpus[1], 8u);
}

TEST(NumaTopology, MissingDirectoryFallsBackToSingleNode) {
  const NumaTopology topo = NumaTopology::detect("/nonexistent/numa/path");
  EXPECT_EQ(topo.node_count, 1u);
  EXPECT_FALSE(topo.multi_node());
  EXPECT_TRUE(topo.node_cpus.empty());
}

TEST(NumaTopology, MemoryOnlyNodesAndJunkEntriesAreSkipped) {
  MockSysfs sysfs;
  sysfs.add_node(0, "0-7\n");
  sysfs.add_node(1, "\n");  // memory-only node: no CPUs
  fs::create_directories(fs::path(sysfs.path()) / "nodeX");   // junk name
  fs::create_directories(fs::path(sysfs.path()) / "online");  // non-node file
  const NumaTopology topo = NumaTopology::detect(sysfs.path());
  // Only node0 counts, so the host reads as single-node.
  EXPECT_EQ(topo.node_count, 1u);
  EXPECT_FALSE(topo.multi_node());
}

TEST(NumaPolicyParse, AcceptsAllSpellings) {
  NumaPolicy p = NumaPolicy::Off;
  EXPECT_TRUE(parse_numa_policy("off", &p));
  EXPECT_EQ(p, NumaPolicy::Off);
  EXPECT_TRUE(parse_numa_policy("none", &p));
  EXPECT_EQ(p, NumaPolicy::Off);
  EXPECT_TRUE(parse_numa_policy("first-touch", &p));
  EXPECT_EQ(p, NumaPolicy::FirstTouch);
  EXPECT_TRUE(parse_numa_policy("local", &p));
  EXPECT_EQ(p, NumaPolicy::FirstTouch);
  EXPECT_TRUE(parse_numa_policy("interleave", &p));
  EXPECT_EQ(p, NumaPolicy::Interleave);
  // Bare --numa (empty value) means interleave.
  p = NumaPolicy::Off;
  EXPECT_TRUE(parse_numa_policy("", &p));
  EXPECT_EQ(p, NumaPolicy::Interleave);
  // Junk is rejected and leaves the output alone.
  EXPECT_FALSE(parse_numa_policy("bogus", &p));
  EXPECT_EQ(p, NumaPolicy::Interleave);
  EXPECT_STREQ(numa_policy_name(NumaPolicy::FirstTouch), "first-touch");
}

TEST(NumaPlace, SingleNodeAndOffAreNoOps) {
  std::vector<unsigned char> buf(64 * 1024, 0xAB);
  const NumaTopology single{};  // node_count == 1
  // Off policy, single-node topology, null/empty ranges: all must be inert.
  numa_place(buf.data(), buf.size(), NumaPolicy::Off, single);
  numa_place(buf.data(), buf.size(), NumaPolicy::Interleave, single);
  numa_place(nullptr, 4096, NumaPolicy::Interleave, single);
  numa_place(buf.data(), 0, NumaPolicy::Interleave, single);
  for (unsigned char c : buf) ASSERT_EQ(c, 0xAB);
}

TEST(NumaPlace, MultiNodePoliciesPreserveContents) {
  // A mocked multi-node topology forces the placement paths to run even on
  // a single-node host: first-touch pre-faults every page, interleave
  // issues a best-effort mbind (which may fail — that must be silent).
  NumaTopology topo;
  topo.node_count = 2;
  topo.node_cpus = {4, 4};
  std::vector<unsigned char> buf(64 * 1024);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<unsigned char>(i * 131u);
  }
  std::vector<unsigned char> expect = buf;
  numa_place(buf.data(), buf.size(), NumaPolicy::FirstTouch, topo);
  EXPECT_EQ(std::memcmp(buf.data(), expect.data(), buf.size()), 0);
  numa_place(buf.data(), buf.size(), NumaPolicy::Interleave, topo);
  EXPECT_EQ(std::memcmp(buf.data(), expect.data(), buf.size()), 0);
  // Sub-page range: interleave has no whole page to bind and must return.
  numa_place(buf.data() + 1, 100, NumaPolicy::Interleave, topo);
  EXPECT_EQ(std::memcmp(buf.data(), expect.data(), buf.size()), 0);
}

// End-to-end identity: the same dependence-ordered workload produces the
// same results with placement on or off (placement is a hint, never a
// correctness dependency), through the real arena + tracker plumbing.
TEST(NumaRuntime, PolicyDoesNotChangeResults) {
  auto run = [](NumaPolicy policy) {
    rt::RuntimeConfig cfg{.num_threads = 4, .sched = rt::SchedPolicy::Steal};
    cfg.numa_policy = policy;
    rt::Runtime runtime(cfg);
    const auto* type =
        runtime.register_type({.name = "t", .memoizable = false, .atm = {}});
    std::vector<double> cells(256, 1.0);
    for (int wave = 0; wave < 8; ++wave) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        runtime.submit(type, [&cells, i] { cells[i] = cells[i] * 1.5 + 0.25; },
                       {rt::inout(&cells[i], 1)});
      }
    }
    runtime.taskwait();
    return cells;
  };
  const std::vector<double> off = run(NumaPolicy::Off);
  const std::vector<double> first_touch = run(NumaPolicy::FirstTouch);
  const std::vector<double> interleave = run(NumaPolicy::Interleave);
  EXPECT_EQ(off, first_touch);
  EXPECT_EQ(off, interleave);
}

}  // namespace
}  // namespace atm

// Tests for the optional engine features beyond the paper's final design:
// the §III-E "original approach" full-input verification (stored complete
// inputs byte-compared on hit) and the LRU eviction alternative to the
// paper's FIFO.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "apps/app_registry.hpp"
#include "atm_lib.hpp"

namespace atm {
namespace {

rt::Task make_producer(const float* in, std::size_t n, float* out, std::size_t m,
                       rt::TaskId id) {
  rt::Task t;
  t.id = id;
  t.accesses.push_back(rt::in(in, n));
  t.accesses.push_back(rt::out(out, m));
  return t;
}

TEST(Verification, AcceptsTrueTwin) {
  TaskHistoryTable tht(4, 8, 0, /*verify_full_inputs=*/true);
  std::vector<float> in(64, 1.0f), out(8, 2.0f);
  auto producer = make_producer(in.data(), 64, out.data(), 8, 1);
  tht.insert(0, 0xAB, 1.0, producer);

  std::vector<float> in2 = in, sink(8);
  auto consumer = make_producer(in2.data(), 64, sink.data(), 8, 2);
  EXPECT_TRUE(tht.lookup_and_copy(0, 0xAB, 1.0, consumer, nullptr, nullptr, nullptr));
  EXPECT_EQ(sink, out);
  EXPECT_EQ(tht.verification_rejects(), 0u);
}

TEST(Verification, RejectsForgedKeyCollision) {
  // Same key, different input bytes: without verification this would be a
  // silent false positive; with it, the hit is rejected and counted.
  TaskHistoryTable tht(4, 8, 0, /*verify_full_inputs=*/true);
  std::vector<float> in(64, 1.0f), out(8, 2.0f);
  auto producer = make_producer(in.data(), 64, out.data(), 8, 1);
  tht.insert(0, 0xAB, 1.0, producer);

  std::vector<float> forged(64, 9.0f), sink(8, -1.0f);
  auto consumer = make_producer(forged.data(), 64, sink.data(), 8, 2);
  EXPECT_FALSE(tht.lookup_and_copy(0, 0xAB, 1.0, consumer, nullptr, nullptr, nullptr));
  EXPECT_EQ(tht.verification_rejects(), 1u);
  EXPECT_EQ(sink[0], -1.0f);  // untouched
}

TEST(Verification, SampledEntriesSkipInputStorage) {
  // p < 1 entries must not store/compare inputs — approximation means the
  // inputs legitimately differ.
  TaskHistoryTable tht(4, 8, 0, /*verify_full_inputs=*/true);
  std::vector<float> in(64, 1.0f), out(8, 2.0f);
  auto producer = make_producer(in.data(), 64, out.data(), 8, 1);
  tht.insert(0, 0xAB, 0.25, producer);

  std::vector<float> different(64, 5.0f), sink(8);
  auto consumer = make_producer(different.data(), 64, sink.data(), 8, 2);
  EXPECT_TRUE(tht.lookup_and_copy(0, 0xAB, 0.25, consumer, nullptr, nullptr, nullptr));
  EXPECT_EQ(tht.verification_rejects(), 0u);
}

TEST(Verification, MemoryIncludesStoredInputs) {
  std::vector<float> in(1024, 1.0f), out(8, 2.0f);
  auto producer = make_producer(in.data(), in.size(), out.data(), 8, 1);
  TaskHistoryTable plain(2, 8);
  TaskHistoryTable verifying(2, 8, 0, true);
  plain.insert(0, 0x1, 1.0, producer);
  verifying.insert(0, 0x1, 1.0, producer);
  EXPECT_GE(verifying.memory_bytes(), plain.memory_bytes() + in.size() * sizeof(float));
}

TEST(Verification, EndToEndStaticStillExact) {
  AtmConfig config{.mode = AtmMode::Static};
  config.verify_full_inputs = true;
  AtmEngine engine(config);
  rt::Runtime runtime({.num_threads = 2});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = true, .atm = {}});
  std::vector<double> in{1.0, 2.0};
  double out1 = 0, out2 = 0;
  std::atomic<int> executions{0};
  for (double* o : {&out1, &out2}) {
    runtime.submit(type,
                   [&, o] {
                     executions.fetch_add(1);
                     *o = in[0] + in[1];
                   },
                   {rt::in(in.data(), 2), rt::out(o, 1)});
    runtime.taskwait();
  }
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(out2, 3.0);
  EXPECT_EQ(engine.tht().verification_rejects(), 0u);  // "no false positives"
}

TEST(Lru, HitRefreshesRecency) {
  // Single bucket, M = 2: under LRU a hit on the oldest entry saves it from
  // the next eviction; under FIFO it would die.
  std::vector<float> v1{1.0f}, v2{2.0f}, v3{3.0f};
  rt::Task p1, p2, p3;
  p1.id = 1;
  p1.accesses.push_back(rt::out(v1.data(), 1));
  p2.id = 2;
  p2.accesses.push_back(rt::out(v2.data(), 1));
  p3.id = 3;
  p3.accesses.push_back(rt::out(v3.data(), 1));

  TaskHistoryTable lru(0, 2, 0, false, EvictionPolicy::Lru);
  lru.insert(0, 0x1, 1.0, p1);
  lru.insert(0, 0x2, 1.0, p2);
  // Touch key 1: it becomes most recent.
  std::vector<float> sink(1);
  rt::Task consumer;
  consumer.accesses.push_back(rt::out(sink.data(), 1));
  ASSERT_TRUE(lru.lookup_and_copy(0, 0x1, 1.0, consumer, nullptr, nullptr, nullptr));
  // Inserting key 3 evicts key 2 (the least recently used), not key 1.
  lru.insert(0, 0x3, 1.0, p3);
  EXPECT_TRUE(lru.contains(0, 0x1, 1.0));
  EXPECT_FALSE(lru.contains(0, 0x2, 1.0));
  EXPECT_TRUE(lru.contains(0, 0x3, 1.0));
}

TEST(Lru, FifoEvictsOldestRegardlessOfHits) {
  std::vector<float> v1{1.0f}, v2{2.0f}, v3{3.0f};
  rt::Task p1, p2, p3;
  p1.id = 1;
  p1.accesses.push_back(rt::out(v1.data(), 1));
  p2.id = 2;
  p2.accesses.push_back(rt::out(v2.data(), 1));
  p3.id = 3;
  p3.accesses.push_back(rt::out(v3.data(), 1));

  TaskHistoryTable fifo(0, 2);  // default FIFO
  fifo.insert(0, 0x1, 1.0, p1);
  fifo.insert(0, 0x2, 1.0, p2);
  std::vector<float> sink(1);
  rt::Task consumer;
  consumer.accesses.push_back(rt::out(sink.data(), 1));
  ASSERT_TRUE(fifo.lookup_and_copy(0, 0x1, 1.0, consumer, nullptr, nullptr, nullptr));
  fifo.insert(0, 0x3, 1.0, p3);
  EXPECT_FALSE(fifo.contains(0, 0x1, 1.0));  // oldest dies, hit or not
  EXPECT_TRUE(fifo.contains(0, 0x2, 1.0));
}

TEST(Lru, EndToEndAppRunStaysExact) {
  const auto app = apps::make_app("blackscholes", apps::Preset::Test);
  apps::RunConfig base{.threads = 2, .mode = AtmMode::Off};
  const auto off = app->run(base);
  apps::RunConfig lru = base;
  lru.mode = AtmMode::Static;
  lru.eviction = EvictionPolicy::Lru;
  const auto run = app->run(lru);
  EXPECT_EQ(off.output, run.output);
  EXPECT_GT(run.atm.tht_hits, 0u);
}

TEST(Verification, EndToEndAppRunStaysExact) {
  const auto app = apps::make_app("blackscholes", apps::Preset::Test);
  apps::RunConfig base{.threads = 2, .mode = AtmMode::Off};
  const auto off = app->run(base);
  apps::RunConfig ver = base;
  ver.mode = AtmMode::Static;
  ver.verify_full_inputs = true;
  const auto run = app->run(ver);
  EXPECT_EQ(off.output, run.output);
  // The paper's observation: the check never fires on real workloads.
  EXPECT_GT(run.atm.tht_hits, 0u);
}

}  // namespace
}  // namespace atm

// Cross-module integration tests: randomized task programs executed with
// and without Static ATM must produce byte-identical memory states (the
// paper's "static ATM always achieves a 100% correctness" invariant), and
// the engine's bookkeeping must stay consistent under real concurrency.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "atm_lib.hpp"

namespace atm {
namespace {

// A deterministic task body: every output byte is a hash of all input bytes
// plus the output position — any memoization mistake corrupts it visibly.
struct ProgramState {
  std::vector<std::vector<std::uint8_t>> buffers;

  explicit ProgramState(std::size_t count, std::size_t bytes, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    buffers.resize(count);
    for (auto& b : buffers) {
      b.resize(bytes);
      for (auto& byte : b) byte = static_cast<std::uint8_t>(rng());
    }
  }
};

struct Step {
  std::vector<int> inputs;  // buffer indexes
  int output;
};

std::vector<Step> random_program(std::size_t steps, std::size_t buffers,
                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Step> program;
  for (std::size_t s = 0; s < steps; ++s) {
    if (s > 4 && rng() % 3 == 0) {
      // Repeat an earlier step verbatim: guaranteed redundancy.
      program.push_back(program[rng() % program.size()]);
      continue;
    }
    Step step;
    const std::size_t nin = 1 + rng() % 2;
    for (std::size_t i = 0; i < nin; ++i) step.inputs.push_back(static_cast<int>(rng() % buffers));
    step.output = static_cast<int>(rng() % buffers);
    // Outputs must not alias inputs (pure function of declared inputs).
    while (std::find(step.inputs.begin(), step.inputs.end(), step.output) !=
           step.inputs.end()) {
      step.output = static_cast<int>(rng() % buffers);
    }
    program.push_back(step);
  }
  return program;
}

void run_program(const std::vector<Step>& program, ProgramState& state,
                 AtmMode mode, unsigned threads) {
  auto engine = mode == AtmMode::Off
                    ? nullptr
                    : std::make_unique<AtmEngine>(AtmConfig{.mode = mode});
  rt::Runtime runtime({.num_threads = threads});
  if (engine) runtime.attach_memoizer(engine.get());
  const auto* type = runtime.register_type(
      {.name = "mix", .memoizable = true, .atm = {.l_training = 2, .tau_max = 0.5}});

  for (const Step& step : program) {
    std::vector<rt::DataAccess> accesses;
    std::vector<const std::vector<std::uint8_t>*> ins;
    for (int i : step.inputs) {
      accesses.push_back(rt::in(state.buffers[i].data(), state.buffers[i].size()));
      ins.push_back(&state.buffers[i]);
    }
    auto* out = &state.buffers[step.output];
    accesses.push_back(rt::out(out->data(), out->size()));
    runtime.submit(type,
                   [ins, out] {
                     HashStream h(12345);
                     for (const auto* in : ins) {
                       h.update(std::span<const std::uint8_t>(in->data(), in->size()));
                     }
                     const HashKey base = h.finalize();
                     for (std::size_t i = 0; i < out->size(); ++i) {
                       (*out)[i] = static_cast<std::uint8_t>(splitmix64(base + i));
                     }
                   },
                   std::move(accesses));
  }
  runtime.taskwait();
}

class StaticExactness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StaticExactness, RandomProgramsBitExact) {
  const std::uint64_t seed = GetParam();
  const auto program = random_program(80, 6, seed);

  ProgramState reference(6, 512, seed);
  run_program(program, reference, AtmMode::Off, 4);

  ProgramState memoized(6, 512, seed);
  run_program(program, memoized, AtmMode::Static, 4);

  for (std::size_t b = 0; b < reference.buffers.size(); ++b) {
    EXPECT_EQ(reference.buffers[b], memoized.buffers[b]) << "buffer " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticExactness, ::testing::Range<std::uint64_t>(0, 10));

class DynamicConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicConsistency, ProgramsCompleteWithConsistentCounters) {
  const std::uint64_t seed = GetParam();
  const auto program = random_program(60, 5, seed);
  ProgramState state(5, 256, seed);

  auto engine = std::make_unique<AtmEngine>(AtmConfig{.mode = AtmMode::Dynamic});
  rt::Runtime runtime({.num_threads = 4});
  runtime.attach_memoizer(engine.get());
  const auto* type = runtime.register_type(
      {.name = "mix", .memoizable = true, .atm = {.l_training = 3, .tau_max = 0.5}});

  for (const Step& step : program) {
    std::vector<rt::DataAccess> accesses;
    std::vector<const std::vector<std::uint8_t>*> ins;
    for (int i : step.inputs) {
      accesses.push_back(rt::in(state.buffers[i].data(), state.buffers[i].size()));
      ins.push_back(&state.buffers[i]);
    }
    auto* out = &state.buffers[step.output];
    accesses.push_back(rt::out(out->data(), out->size()));
    runtime.submit(type,
                   [ins, out] {
                     HashStream h(1);
                     for (const auto* in : ins) {
                       h.update(std::span<const std::uint8_t>(in->data(), in->size()));
                     }
                     const HashKey base = h.finalize();
                     for (std::size_t i = 0; i < out->size(); ++i) {
                       (*out)[i] = static_cast<std::uint8_t>(splitmix64(base + i));
                     }
                   },
                   std::move(accesses));
  }
  runtime.taskwait();

  const auto c = runtime.counters();
  EXPECT_EQ(c.submitted, static_cast<std::uint64_t>(program.size()));
  EXPECT_EQ(c.submitted, c.executed + c.memoized + c.deferred);
  const auto stats = engine->stats();
  EXPECT_EQ(stats.tht_hits + stats.ikt_hits, c.memoized + c.deferred);
  // Every reuse event has a creator recorded for Fig. 9.
  EXPECT_EQ(stats.reuse_creators.size(), stats.tht_hits + stats.ikt_hits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicConsistency,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(Integration, MixedMemoizableAndPlainTypes) {
  AtmEngine engine({.mode = AtmMode::Static});
  rt::Runtime runtime({.num_threads = 2});
  runtime.attach_memoizer(&engine);
  const auto* pure = runtime.register_type(
      {.name = "pure", .memoizable = true, .atm = {}});
  const auto* plain = runtime.register_type(
      {.name = "plain", .memoizable = false, .atm = {}});

  std::vector<double> a{1.0}, b(1), c(1);
  // plain produces b from a; pure doubles b into c. Repeat: pure memoizes.
  std::atomic<int> pure_runs{0};
  for (int round = 0; round < 3; ++round) {
    runtime.submit(plain, [&] { b[0] = a[0] + 1.0; },
                   {rt::in(a.data(), 1), rt::out(b.data(), 1)});
    runtime.submit(pure,
                   [&] {
                     pure_runs.fetch_add(1);
                     c[0] = 2.0 * b[0];
                   },
                   {rt::in(b.data(), 1), rt::out(c.data(), 1)});
    runtime.taskwait();
  }
  EXPECT_EQ(c[0], 4.0);
  EXPECT_EQ(pure_runs.load(), 1);  // rounds 2 and 3 memoized
  EXPECT_EQ(runtime.counters().memoized, 2u);
}

TEST(Integration, DeferredTaskReleasesDependents) {
  // A -> (twin of A) -> consumer chain: the deferred twin's completion must
  // release its successors exactly once.
  AtmEngine engine({.mode = AtmMode::Static, .use_ikt = true});
  rt::Runtime runtime({.num_threads = 2});
  runtime.attach_memoizer(&engine);
  const auto* slow = runtime.register_type(
      {.name = "slow", .memoizable = true, .atm = {}});
  const auto* sink_type = runtime.register_type(
      {.name = "sink", .memoizable = false, .atm = {}});

  std::vector<double> input{3.0};
  double out1 = 0, out2 = 0, sum = 0;
  auto body = [&](double* o) {
    return [&input, o] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      *o = input[0] * 2;
    };
  };
  runtime.submit(slow, body(&out1), {rt::in(input.data(), 1), rt::out(&out1, 1)});
  runtime.submit(slow, body(&out2), {rt::in(input.data(), 1), rt::out(&out2, 1)});
  // The sink depends on the deferred twin's output.
  runtime.submit(sink_type, [&] { sum = out1 + out2; },
                 {rt::in(static_cast<const double*>(&out1), 1),
                  rt::in(static_cast<const double*>(&out2), 1), rt::out(&sum, 1)});
  runtime.taskwait();
  EXPECT_EQ(sum, 12.0);
}

}  // namespace
}  // namespace atm

// Eager task retirement + pooled task arena: the regression suite for the
// PR-4 lifecycle overhaul. Covers arena recycling, the 1M-task streaming
// submission bound (no taskwait — the case that used to grow tasks_ and the
// segment map without limit), exactly-once successor wakeups under the
// lock-split submit path, and randomized DAG stress whose write logs verify
// that recycled records never leak a stale dependence. This binary is also
// an ASan+UBSan CI target: any use-after-retire dereferences a recycled (or
// poisoned) record and trips the sanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <mutex>
#include <random>
#include <vector>

#include "runtime/runtime.hpp"
#include "runtime/task_arena.hpp"

namespace atm::rt {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

/// Resident-set size in bytes (Linux); 0 where unavailable.
std::size_t current_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long pages = 0, resident = 0;
  const int got = std::fscanf(f, "%ld %ld", &pages, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::size_t>(resident) * 4096u;
#else
  return 0;
#endif
}

// --- TaskArena unit behavior ------------------------------------------------

TEST(TaskArena, RecyclesSlotsThroughFreeList) {
  TaskArena arena(/*tasks_per_block=*/8);
  Task* a = arena.acquire();
  EXPECT_EQ(a->refs.load(), 1u);
  EXPECT_EQ(a->pool, &arena);
  const auto before = arena.stats();
  EXPECT_EQ(before.live_slots(), 1u);
  task_release(a);
  EXPECT_EQ(arena.stats().live_slots(), 0u);
  // With every slot free again, a fresh acquire must not grow the arena.
  Task* b = arena.acquire();
  EXPECT_EQ(arena.stats().slots, before.slots);
  task_release(b);
}

TEST(TaskArena, ExtraReferencesDeferRecycling) {
  TaskArena arena(/*tasks_per_block=*/4);
  Task* t = arena.acquire();
  task_retain(t);  // e.g. a segment slot
  task_release(t); // in-flight reference drops first
  EXPECT_EQ(arena.stats().live_slots(), 1u) << "slot recycled under a live reference";
  task_release(t);
  EXPECT_EQ(arena.stats().live_slots(), 0u);
}

TEST(TaskArena, RecycledVectorsKeepCapacity) {
  TaskArena arena(/*tasks_per_block=*/1);
  Task* t = arena.acquire();
  int dummy[16] = {};
  for (int i = 0; i < 16; ++i) t->accesses.push_back(out(&dummy[i], 1));
  const std::size_t cap = t->accesses.capacity();
  task_release(t);
  Task* again = arena.acquire();
  ASSERT_EQ(again, t);  // only one slot in the arena
  EXPECT_TRUE(again->accesses.empty());
  EXPECT_GE(again->accesses.capacity(), cap);
  task_release(again);
}

TEST(TaskArena, StandaloneTasksIgnoreReleasePath) {
  Task stack_task;  // pool == nullptr: tests/benches build tasks by value
  task_retain(&stack_task);
  task_release(&stack_task);
  task_release(&stack_task);  // count under/overflow must stay inert
  SUCCEED();
}

// --- Eager retirement semantics --------------------------------------------

// A serial chain on one cell: each new writer replaces the previous task in
// the segment map, dropping its last reference the moment it finished — the
// chain itself stays correct under constant recycling. (How many records
// are live mid-stream depends on how far submission outruns execution, so
// the memory bound is asserted by the multi-timeslice streaming tests.)
TEST(Retirement, SerialChainSurvivesConstantRecycling) {
  Runtime rt({.num_threads = 2});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  int cell = 0;
  constexpr int kTasks = 20'000;
  for (int i = 0; i < kTasks; ++i) {
    rt.submit(type, [&] { ++cell; }, {inout(&cell, 1)});
  }
  rt.taskwait();
  EXPECT_EQ(cell, kTasks);
  EXPECT_EQ(rt.arena_stats().live_slots(), 0u);
}

// After a taskwait, every task reference is dropped (arena drained) while
// the segment GEOMETRY is retained for the next wave's exact-index hits:
// the segment count must equal the footprint (one per cell) and stay flat
// across waves — retention is reuse, not growth.
TEST(Retirement, TaskwaitDrainsArenaAndRetainsGeometry) {
  Runtime rt({.num_threads = 2});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  std::vector<int> cells(256);
  for (int wave = 0; wave < 3; ++wave) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      rt.submit(type, [&, i] { cells[i] += 1; }, {inout(&cells[i], 1)});
    }
    rt.taskwait();
    EXPECT_EQ(rt.arena_stats().live_slots(), 0u) << "wave " << wave;
    EXPECT_EQ(rt.tracker_segment_count(), cells.size()) << "wave " << wave;
  }
  // Waves 2 and 3 re-submitted the exact regions of wave 1: the two-level
  // index must have served them from the exact table, not the tree.
  const DepIndexStats dep = rt.dep_index_stats();
  EXPECT_GE(dep.exact_hits, 2 * cells.size());
  EXPECT_GT(dep.exact_hits, dep.tree_fallbacks);
}

// The headline regression: a 1M-task barrier-free stream must run in
// bounded memory. Before PR 4 every record survived until the next
// taskwait, so this loop grew ~1M Task records + closures + access vectors.
TEST(Retirement, StreamingMillionTasksBoundedMemory) {
  constexpr std::size_t kTasks = kSanitized ? 150'000 : 1'000'000;
  constexpr std::size_t kCells = 4096;

  Runtime rt({.num_threads = 2});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  std::vector<float> cells(kCells, 0.0f);

  const std::size_t rss_before = current_rss_bytes();
  std::size_t peak_slots = 0;
  std::size_t peak_slab_bytes = 0;
  std::size_t peak_segments = 0;
  for (std::size_t i = 0; i < kTasks; ++i) {
    float* cell = &cells[i % kCells];
    rt.submit(type, [cell] { *cell += 1.0f; }, {inout(cell, 1)});
    if ((i & 0xffff) == 0) {
      const TaskArenaStats arena = rt.arena_stats();
      peak_slots = std::max(peak_slots, arena.slots);
      peak_slab_bytes = std::max(peak_slab_bytes, arena.slab_bytes);
      peak_segments = std::max(peak_segments, rt.tracker_segment_count());
    }
  }
  peak_slots = std::max(peak_slots, rt.arena_stats().slots);
  peak_segments = std::max(peak_segments, rt.tracker_segment_count());
  rt.taskwait();
  const std::size_t rss_after = current_rss_bytes();

  EXPECT_EQ(rt.counters().executed, kTasks);
  for (std::size_t c = 0; c < kCells; ++c) {
    const std::size_t expected = kTasks / kCells + (c < kTasks % kCells ? 1 : 0);
    ASSERT_EQ(cells[c], static_cast<float>(expected)) << "cell " << c;
  }
  // Portable memory regression, asserted on every platform (the gauges are
  // the runtime's own accounting, not OS-dependent):
  //  * the record pool must stay pipeline-sized — a generous ceiling that a
  //    retained stream (1M records, tens of MB) exceeds by ~50x;
  //  * the arena slab bytes implied by that ceiling;
  //  * the PEAK segment gauge, sampled throughout the stream: cycling
  //    addresses hit the exact index (no growth) and prune bounds the rest.
  EXPECT_LT(peak_slots, 100'000u);
  EXPECT_LT(peak_slab_bytes, 100'000u * sizeof(Task));
  EXPECT_LT(peak_segments, 200'000u);
  EXPECT_LT(rt.tracker_segment_count(), 200'000u);
  // Cycling over kCells addresses must be exact-index-dominated: only the
  // first touch of each cell (plus stray races) may walk the tree.
  const DepIndexStats dep = rt.dep_index_stats();
  EXPECT_GT(dep.exact_hits, dep.tree_fallbacks);
  if (!kSanitized && rss_before != 0 && rss_after > rss_before) {
    // Additional Linux-only pin: a fixed RSS ceiling for the whole stream
    // (sanitizers excluded: their shadow/quarantine memory is not what
    // this guards; non-Linux platforms rely on the gauge ceilings above).
    EXPECT_LT(rss_after - rss_before, std::size_t{128} << 20)
        << "streaming submission grew memory without bound";
  }
}

// Streaming over always-fresh addresses (never revisited): only the prune
// sweep bounds the segment map here. The peak-gauge ceilings hold on every
// platform (no RSS involved).
TEST(Retirement, StreamingFreshAddressesPrunesSegments) {
  constexpr std::size_t kTasks = kSanitized ? 100'000 : 400'000;
  Runtime rt({.num_threads = 2});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  std::vector<std::uint8_t> heap(kTasks, 0);  // one distinct byte per task
  std::size_t peak_segments = 0;
  std::size_t peak_slots = 0;
  for (std::size_t i = 0; i < kTasks; ++i) {
    std::uint8_t* p = &heap[i];
    rt.submit(type, [p] { *p = 1; }, {out(p, 1)});
    if ((i & 0xffff) == 0) {
      peak_segments = std::max(peak_segments, rt.tracker_segment_count());
      peak_slots = std::max(peak_slots, rt.arena_stats().slots);
    }
  }
  rt.taskwait();
  EXPECT_EQ(rt.counters().executed, kTasks);
  for (std::uint8_t v : heap) ASSERT_EQ(v, 1);
  // Fresh addresses can never hit the exact index, so the prune sweep is
  // the only bound — and it must have run. (The sanitizer scale stays under
  // the per-shard prune floor, so the scan count is only asserted at full
  // scale.)
  if (!kSanitized) {
    EXPECT_GT(rt.dep_index_stats().prune_scans, 0u);
  }
  EXPECT_LT(peak_segments, kTasks);
  EXPECT_LT(peak_slots, 100'000u);
  // Post-barrier, ballooned shards reset outright: retained geometry is
  // capped, not a leak.
  EXPECT_LE(rt.tracker_segment_count(), (std::size_t{1} << 15) * 16);
}

// --- Exactly-once wakeups under the lock-split submit path ------------------

// Diamond fan-out/fan-in repeated many times: every task must execute
// exactly once and the sink must observe all mids (a double wakeup would
// run a task twice; a lost wakeup would hang before the loop bound).
TEST(Retirement, ExactlyOnceSuccessorWakeups) {
  Runtime rt({.num_threads = 4});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  constexpr int kRounds = 500;
  constexpr int kWidth = 8;
  int src = 0;
  int mid[kWidth] = {};
  int sink = 0;
  std::vector<std::atomic<int>> runs(kRounds);
  for (int r = 0; r < kRounds; ++r) {
    rt.submit(type, [&] { src += 1; }, {inout(&src, 1)});
    for (int i = 0; i < kWidth; ++i) {
      rt.submit(type, [&, i] { mid[i] = src; },
                {in(static_cast<const int*>(&src), 1), out(&mid[i], 1)});
    }
    std::vector<DataAccess> sink_acc;
    for (int i = 0; i < kWidth; ++i) {
      sink_acc.push_back(in(static_cast<const int*>(&mid[i]), 1));
    }
    sink_acc.push_back(inout(&sink, 1));
    // src is serialized by inout, so round r's mid snapshot must read r+1.
    // (The sink must NOT read src itself: round r+1's src increment is not
    // ordered behind this sink, only behind the mids.)
    rt.submit(type,
              [&, r] {
                runs[r].fetch_add(1, std::memory_order_relaxed);
                int ok = 0;
                for (int i = 0; i < kWidth; ++i) ok += (mid[i] == r + 1);
                sink += (ok == kWidth);
              },
              std::move(sink_acc));
  }
  rt.taskwait();
  EXPECT_EQ(sink, kRounds) << "a sink observed stale mids (lost ordering)";
  for (int r = 0; r < kRounds; ++r) {
    ASSERT_EQ(runs[r].load(), 1) << "sink " << r << " ran != once";
  }
  EXPECT_EQ(rt.counters().executed,
            static_cast<std::uint64_t>(kRounds) * (kWidth + 2));
}

// --- Randomized stress: no use-after-retire, dependences hold ---------------

class RetireStress : public ::testing::TestWithParam<std::uint64_t> {};

// Random DAG over a small buffer set, streamed WITHOUT intermediate
// taskwaits (so retirement constantly races registration). Per-buffer write
// logs must equal submission order — a recycled record acting as a stale
// writer/reader would break the serialization.
TEST_P(RetireStress, StreamedRandomDagSerializesWriters) {
  std::mt19937_64 rng(GetParam());
  constexpr int kBuffers = 8;
  const int kTasks = kSanitized ? 4'000 : 20'000;

  Runtime rt({.num_threads = 4});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});

  int buffers[kBuffers] = {};
  std::vector<std::vector<int>> logs(kBuffers);
  std::mutex log_mutex[kBuffers];
  std::vector<int> expected[kBuffers];

  for (int i = 0; i < kTasks; ++i) {
    const int b = static_cast<int>(rng() % kBuffers);
    expected[b].push_back(i);
    rt.submit(type,
              [&, i, b] {
                std::lock_guard<std::mutex> lock(log_mutex[b]);
                logs[b].push_back(i);
              },
              {inout(&buffers[b], 1)});
  }
  rt.taskwait();
  for (int b = 0; b < kBuffers; ++b) {
    EXPECT_EQ(logs[b], expected[b]) << "buffer " << b;
  }
  EXPECT_EQ(rt.arena_stats().live_slots(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetireStress, ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace atm::rt

// Helping-taskwait suite (and a TSan CI target): at a barrier the master
// claims the scheduler's helper lane and drains/steals tasks instead of
// parking. These tests pin the protocol's guarantees — exactly-once
// execution under helping, correct termination of every wave (the final
// completion's notify_helpers wakeup), nested submission from helped tasks,
// identical results against the parking barrier, and both scheduler
// policies — under thread counts small enough that the master actually
// executes work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"

namespace atm::rt {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

// The master must actually execute tasks while helping: pin the single
// worker inside a long task, then submit quick tasks that record their
// executing thread — the taskwait caller's id must appear among them
// (whichever side takes the sleeper, the other side owns the rest).
TEST(TaskwaitHelp, MasterExecutesTasksWhileWorkerBusy) {
  Runtime rt({.num_threads = 1, .help_taskwait = true});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  const std::thread::id master_id = std::this_thread::get_id();

  std::mutex mu;
  std::set<std::thread::id> executors;
  std::atomic<bool> blocker_started{false};
  int blocker_cell = 0;
  rt.submit(type,
            [&] {
              {
                std::lock_guard<std::mutex> lock(mu);
                executors.insert(std::this_thread::get_id());
              }
              blocker_started.store(true);
              std::this_thread::sleep_for(std::chrono::milliseconds(100));
            },
            {inout(&blocker_cell, 1)});
  // Let the worker commit to the blocker before the quick tasks exist, so
  // they cannot ride into its private batch — they must sit in the inbox
  // until the helping master (the only runnable lane) steals them.
  while (!blocker_started.load()) std::this_thread::yield();

  constexpr int kQuick = 64;
  std::vector<int> cells(kQuick);
  for (int i = 0; i < kQuick; ++i) {
    rt.submit(type,
              [&, i] {
                cells[i] = 1;
                std::lock_guard<std::mutex> lock(mu);
                executors.insert(std::this_thread::get_id());
              },
              {inout(&cells[i], 1)});
  }
  rt.taskwait();

  for (int i = 0; i < kQuick; ++i) ASSERT_EQ(cells[i], 1) << "task " << i;
  EXPECT_EQ(rt.counters().executed, static_cast<std::uint64_t>(kQuick) + 1);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_TRUE(executors.count(master_id) != 0)
      << "the taskwait caller never executed a task while the worker slept";
}

// Many short waves: every wave must terminate (no lost wakeup when the last
// completion happens on either side) and every task runs exactly once.
TEST(TaskwaitHelp, ManyWavesTerminateExactlyOnce) {
  constexpr int kWaves = kSanitized ? 100 : 400;
  constexpr int kTasksPerWave = 16;
  Runtime rt({.num_threads = 2, .help_taskwait = true});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  std::vector<std::atomic<int>> runs(kWaves * kTasksPerWave);
  std::vector<int> cells(kTasksPerWave);
  for (int w = 0; w < kWaves; ++w) {
    for (int i = 0; i < kTasksPerWave; ++i) {
      const int slot = w * kTasksPerWave + i;
      rt.submit(type, [&, slot, i] { runs[slot].fetch_add(1); cells[i] += 1; },
                {inout(&cells[i], 1)});
    }
    rt.taskwait();
  }
  for (int s = 0; s < kWaves * kTasksPerWave; ++s) {
    ASSERT_EQ(runs[s].load(), 1) << "task " << s << " ran != once";
  }
  for (int i = 0; i < kTasksPerWave; ++i) EXPECT_EQ(cells[i], kWaves);
  EXPECT_EQ(rt.counters().executed,
            static_cast<std::uint64_t>(kWaves) * kTasksPerWave);
}

// Tasks executed by the helping master may submit subtasks: those pushes go
// through the helper lane (and must be drainable by master and workers
// alike), and the barrier must not return before the nested work finished.
TEST(TaskwaitHelp, NestedSubmissionFromHelpedTasks) {
  Runtime rt({.num_threads = 1, .help_taskwait = true});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  constexpr int kOuter = 16;
  constexpr int kInner = 32;
  std::atomic<int> inner_runs{0};
  std::vector<int> outer_cells(kOuter);
  std::vector<int> inner_cells(kOuter * kInner);
  for (int o = 0; o < kOuter; ++o) {
    rt.submit(type,
              [&, o] {
                outer_cells[o] = 1;
                for (int i = 0; i < kInner; ++i) {
                  int* cell = &inner_cells[o * kInner + i];
                  rt.submit(type, [&, cell] { *cell = 1; inner_runs.fetch_add(1); },
                            {inout(cell, 1)});
                }
              },
              {inout(&outer_cells[o], 1)});
  }
  rt.taskwait();
  EXPECT_EQ(inner_runs.load(), kOuter * kInner);
  for (int v : outer_cells) ASSERT_EQ(v, 1);
  for (int v : inner_cells) ASSERT_EQ(v, 1);
  EXPECT_EQ(rt.arena_stats().live_slots(), 0u);
}

// The helping and parking barriers must produce identical program results:
// run the same serialized chains under both and compare the write logs.
TEST(TaskwaitHelp, HelpAndParkProduceIdenticalResults) {
  constexpr int kBuffers = 4;
  constexpr int kTasks = 2'000;
  auto run = [&](bool help) {
    Runtime rt({.num_threads = 2, .help_taskwait = help});
    const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
    int buffers[kBuffers] = {};
    std::vector<std::vector<int>> logs(kBuffers);
    std::mutex log_mutex[kBuffers];
    std::mt19937_64 rng(7);
    for (int i = 0; i < kTasks; ++i) {
      const int b = static_cast<int>(rng() % kBuffers);
      rt.submit(type,
                [&, i, b] {
                  std::lock_guard<std::mutex> lock(log_mutex[b]);
                  logs[b].push_back(i);
                },
                {inout(&buffers[b], 1)});
    }
    rt.taskwait();
    return logs;
  };
  EXPECT_EQ(run(true), run(false));
}

// help_taskwait = false must keep the PR-4 parking behavior intact.
TEST(TaskwaitHelp, ParkingFallbackStillDrains) {
  Runtime rt({.num_threads = 2, .help_taskwait = false});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  std::vector<int> cells(512);
  for (int wave = 0; wave < 5; ++wave) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      rt.submit(type, [&, i] { cells[i] += 1; }, {inout(&cells[i], 1)});
    }
    rt.taskwait();
    EXPECT_EQ(rt.arena_stats().live_slots(), 0u);
  }
  for (int v : cells) ASSERT_EQ(v, 5);
}

// The helping path must work under the central scheduler too (the helper
// pops through ReadyQueue::pop_for_helper, woken by notify_all).
TEST(TaskwaitHelp, CentralSchedulerHelping) {
  Runtime rt({.num_threads = 1, .sched = SchedPolicy::Central, .help_taskwait = true});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  constexpr int kWaves = 50;
  std::vector<int> cells(64);
  for (int wave = 0; wave < kWaves; ++wave) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      rt.submit(type, [&, i] { cells[i] += 1; }, {inout(&cells[i], 1)});
    }
    rt.taskwait();
  }
  for (int v : cells) ASSERT_EQ(v, kWaves);
  EXPECT_EQ(rt.counters().executed, static_cast<std::uint64_t>(kWaves) * cells.size());
}

// Construct/destroy runtimes in a loop with helping barriers in between:
// the shutdown handshake (helper inactive, workers drain, exactly-once
// joins) must hold every time.
TEST(TaskwaitHelp, RepeatedRuntimeTeardownTerminates) {
  constexpr int kRuntimes = kSanitized ? 10 : 40;
  for (int r = 0; r < kRuntimes; ++r) {
    Runtime rt({.num_threads = static_cast<unsigned>(r % 3) + 1, .help_taskwait = true});
    const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
    std::atomic<int> runs{0};
    int cell = 0;
    for (int i = 0; i < 64; ++i) {
      rt.submit(type, [&] { runs.fetch_add(1); ++cell; }, {inout(&cell, 1)});
    }
    rt.taskwait();
    ASSERT_EQ(runs.load(), 64);
    ASSERT_EQ(cell, 64);
    // Destructor taskwait on an empty region + shutdown must also be clean.
  }
}

// Randomized DAG stress under helping (the TSan target): dependences must
// serialize conflicting writers even when the master executes part of the
// graph, across many waves.
class HelpDagStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HelpDagStress, ConflictingWritersSerializedWhileHelping) {
  std::mt19937_64 rng(GetParam());
  constexpr int kBuffers = 8;
  const int kWaves = kSanitized ? 10 : 40;
  const int kTasksPerWave = 250;

  Runtime rt({.num_threads = 2, .help_taskwait = true});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});

  int buffers[kBuffers] = {};
  std::vector<std::vector<int>> logs(kBuffers);
  std::mutex log_mutex[kBuffers];
  std::vector<int> expected[kBuffers];

  int id = 0;
  for (int w = 0; w < kWaves; ++w) {
    for (int i = 0; i < kTasksPerWave; ++i, ++id) {
      const int b = static_cast<int>(rng() % kBuffers);
      expected[b].push_back(id);
      rt.submit(type,
                [&, id, b] {
                  std::lock_guard<std::mutex> lock(log_mutex[b]);
                  logs[b].push_back(id);
                },
                {inout(&buffers[b], 1)});
    }
    rt.taskwait();
  }
  for (int b = 0; b < kBuffers; ++b) {
    EXPECT_EQ(logs[b], expected[b]) << "buffer " << b;
  }
  EXPECT_EQ(rt.counters().executed,
            static_cast<std::uint64_t>(kWaves) * kTasksPerWave);
  EXPECT_EQ(rt.arena_stats().live_slots(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HelpDagStress, ::testing::Range<std::uint64_t>(0, 4));

}  // namespace
}  // namespace atm::rt

// Tests for the input sampler (§III-B/C): index orders are permutations,
// cached per (type, layout), deterministic, and type-aware orders protect
// most-significant bytes first.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "atm/input_sampler.hpp"

namespace atm {
namespace {

using rt::ElemType;

InputLayout layout_of(std::initializer_list<InputLayout::Region> regions) {
  InputLayout l;
  l.regions.assign(regions.begin(), regions.end());
  return l;
}

bool is_permutation_of_iota(const std::vector<std::uint32_t>& order, std::size_t n) {
  if (order.size() != n) return false;
  std::vector<std::uint32_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < n; ++i) {
    if (sorted[i] != i) return false;
  }
  return true;
}

TEST(SelectionCount, EdgeCases) {
  EXPECT_EQ(selection_count(0, 0.5), 0u);
  EXPECT_EQ(selection_count(100, 1.0), 100u);
  EXPECT_EQ(selection_count(100, 2.0), 100u);
  EXPECT_EQ(selection_count(100, 0.5), 50u);
  EXPECT_EQ(selection_count(100, 0.001), 1u);     // at least one byte
  EXPECT_EQ(selection_count(100, 1.0 / 32768), 1u);
  EXPECT_EQ(selection_count(1 << 20, 1.0 / 32768), 32u);
  EXPECT_EQ(selection_count(3, 0.34), 2u);        // ceil
}

TEST(InputLayout, FromTaskTakesInputsOnly) {
  float fa[4];
  double db[2];
  int ic[8];
  rt::Task t;
  t.accesses = {rt::in(static_cast<const float*>(fa), 4), rt::out(db, 2),
                rt::inout(ic, 8)};
  const InputLayout l = InputLayout::from_task(t);
  ASSERT_EQ(l.regions.size(), 2u);  // in + inout, not out
  EXPECT_EQ(l.regions[0].bytes, 16u);
  EXPECT_EQ(l.regions[0].elem, ElemType::F32);
  EXPECT_EQ(l.regions[1].bytes, 32u);
  EXPECT_EQ(l.regions[1].elem, ElemType::I32);
  EXPECT_EQ(l.total_bytes(), 48u);
}

TEST(InputLayout, FingerprintSensitiveToShape) {
  const auto a = layout_of({{16, ElemType::F32}});
  const auto b = layout_of({{16, ElemType::F64}});
  const auto c = layout_of({{32, ElemType::F32}});
  const auto d = layout_of({{8, ElemType::F32}, {8, ElemType::F32}});
  std::set<std::uint64_t> prints{a.fingerprint(), b.fingerprint(), c.fingerprint(),
                                 d.fingerprint()};
  EXPECT_EQ(prints.size(), 4u);
}

TEST(InputSampler, OrderIsPermutation) {
  InputSampler sampler(/*type_aware=*/false, 1);
  const auto layout = layout_of({{100, ElemType::U8}, {60, ElemType::F32}});
  const auto& order = sampler.order_for(0, layout);
  EXPECT_TRUE(is_permutation_of_iota(order, 160));
}

TEST(InputSampler, TypeAwareOrderIsPermutation) {
  InputSampler sampler(/*type_aware=*/true, 1);
  const auto layout = layout_of({{100, ElemType::F32}, {64, ElemType::F64}});
  const auto& order = sampler.order_for(0, layout);
  EXPECT_TRUE(is_permutation_of_iota(order, 164));
}

TEST(InputSampler, CachedPerTypeAndLayout) {
  InputSampler sampler(true, 1);
  const auto layout = layout_of({{64, ElemType::F32}});
  const auto& a = sampler.order_for(0, layout);
  const auto& b = sampler.order_for(0, layout);
  EXPECT_EQ(&a, &b);  // same cached vector
  EXPECT_EQ(sampler.cache_entries(), 1u);
  sampler.order_for(1, layout);  // different type: new entry
  EXPECT_EQ(sampler.cache_entries(), 2u);
}

TEST(InputSampler, DifferentTypesGetDifferentShuffles) {
  InputSampler sampler(false, 1);
  const auto layout = layout_of({{256, ElemType::U8}});
  EXPECT_NE(sampler.order_for(0, layout), sampler.order_for(1, layout));
}

TEST(InputSampler, DeterministicAcrossInstances) {
  const auto layout = layout_of({{256, ElemType::F32}});
  InputSampler a(true, 42), b(true, 42);
  EXPECT_EQ(a.order_for(3, layout), b.order_for(3, layout));
  InputSampler c(true, 43);
  EXPECT_NE(a.order_for(3, layout), c.order_for(3, layout));
}

TEST(InputSampler, TypeAwareMsbFirstForF32) {
  // Little-endian f32: byte 3 of each element is the MSB (sign+exponent).
  InputSampler sampler(true, 7);
  constexpr std::size_t kElems = 64;
  const auto layout = layout_of({{kElems * 4, ElemType::F32}});
  const auto& order = sampler.order_for(0, layout);
  // The first kElems indexes must all be MSB positions (i*4+3).
  for (std::size_t i = 0; i < kElems; ++i) {
    EXPECT_EQ(order[i] % 4, 3u) << "rank-0 slot " << i;
  }
  // The next kElems are the second-most-significant bytes.
  for (std::size_t i = kElems; i < 2 * kElems; ++i) {
    EXPECT_EQ(order[i] % 4, 2u) << "rank-1 slot " << i;
  }
}

TEST(InputSampler, TypeAwareMixedLayoutRanks) {
  // f64 elements have 8 ranks, f32 four: rank 0 slots are the MSBs of both.
  InputSampler sampler(true, 8);
  const auto layout = layout_of({{4 * 4, ElemType::F32}, {2 * 8, ElemType::F64}});
  const auto& order = sampler.order_for(0, layout);
  // rank 0 population: 4 f32 MSBs + 2 f64 MSBs = 6 indexes.
  std::set<std::uint32_t> rank0(order.begin(), order.begin() + 6);
  const std::set<std::uint32_t> expected{3, 7, 11, 15, 16 + 7, 16 + 15};
  EXPECT_EQ(rank0, expected);
}

TEST(InputSampler, TypeAwareU8AllRankZero) {
  InputSampler sampler(true, 9);
  const auto layout = layout_of({{32, ElemType::U8}});
  const auto& order = sampler.order_for(0, layout);
  EXPECT_TRUE(is_permutation_of_iota(order, 32));
}

TEST(InputSampler, MemoryAccountingGrows) {
  InputSampler sampler(true, 10);
  EXPECT_EQ(sampler.memory_bytes(), 0u);
  sampler.order_for(0, layout_of({{1024, ElemType::F32}}));
  EXPECT_GE(sampler.memory_bytes(), 1024 * sizeof(std::uint32_t));
}

class SamplerLayoutSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, bool>> {};

TEST_P(SamplerLayoutSweep, PermutationForAllShapes) {
  const auto [bytes, elem_idx, type_aware] = GetParam();
  const ElemType elems[] = {ElemType::U8, ElemType::I32, ElemType::F32, ElemType::F64};
  InputSampler sampler(type_aware, 11);
  const auto layout = layout_of({{bytes, elems[elem_idx]}});
  const auto& order = sampler.order_for(0, layout);
  EXPECT_TRUE(is_permutation_of_iota(order, bytes));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SamplerLayoutSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 8, 17, 256, 4096),
                       ::testing::Values(0, 1, 2, 3), ::testing::Bool()));

// --- Gather plans -----------------------------------------------------------

/// Expand a plan back into global byte indexes for comparison with the
/// order prefix it was built from.
std::vector<std::uint32_t> plan_indexes(const InputLayout& layout,
                                        const GatherPlan& plan) {
  std::vector<std::size_t> region_begin;
  std::size_t off = 0;
  for (const auto& r : layout.regions) {
    region_begin.push_back(off);
    off += r.bytes;
  }
  std::vector<std::uint32_t> idx;
  for (const auto& run : plan.runs) {
    for (std::uint32_t k = 0; k < run.length; ++k) {
      idx.push_back(
          static_cast<std::uint32_t>(region_begin[run.region] + run.offset + k));
    }
  }
  return idx;
}

TEST(GatherPlan, CoversExactlyTheSelectedPrefixSorted) {
  const auto layout = layout_of({{96, ElemType::F32}, {64, ElemType::F64}});
  InputSampler sampler(true, 5);
  const auto& order = sampler.order_for(0, layout);
  for (double p : {1.0 / 32768, 0.05, 0.25, 0.5, 1.0}) {
    const GatherPlan plan = build_gather_plan(layout, order, p);
    const std::size_t count = selection_count(layout.total_bytes(), p);
    EXPECT_EQ(plan.bytes, count) << p;

    std::vector<std::uint32_t> expected(order.begin(),
                                        order.begin() + static_cast<long>(count));
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(plan_indexes(layout, plan), expected) << p;
  }
}

TEST(GatherPlan, RunsAreCoalescedAndSorted) {
  // A contiguous selection must collapse to one run per region.
  const auto layout = layout_of({{32, ElemType::U8}, {16, ElemType::U8}});
  std::vector<std::uint32_t> order(48);
  std::iota(order.begin(), order.end(), 0);
  const GatherPlan plan = build_gather_plan(layout, order, 1.0);
  ASSERT_EQ(plan.runs.size(), 2u);
  EXPECT_EQ(plan.runs[0].region, 0u);
  EXPECT_EQ(plan.runs[0].offset, 0u);
  EXPECT_EQ(plan.runs[0].length, 32u);
  EXPECT_EQ(plan.runs[1].region, 1u);
  EXPECT_EQ(plan.runs[1].offset, 0u);
  EXPECT_EQ(plan.runs[1].length, 16u);
}

TEST(GatherPlan, RunsNeverCrossRegionBoundaries) {
  const auto layout = layout_of({{8, ElemType::U8}, {8, ElemType::U8}});
  // Selection straddles the boundary: indexes 6,7 (region 0) and 8,9 (1).
  std::vector<std::uint32_t> order{6, 8, 7, 9, 0, 1, 2, 3, 4, 5, 10, 11, 12, 13, 14, 15};
  const GatherPlan plan = build_gather_plan(layout, order, 0.25);
  ASSERT_EQ(plan.runs.size(), 2u);
  EXPECT_EQ(plan.runs[0].region, 0u);
  EXPECT_EQ(plan.runs[0].offset, 6u);
  EXPECT_EQ(plan.runs[0].length, 2u);
  EXPECT_EQ(plan.runs[1].region, 1u);
  EXPECT_EQ(plan.runs[1].offset, 0u);
  EXPECT_EQ(plan.runs[1].length, 2u);
}

TEST(InputSampler, PlanCacheReturnsSameInstance) {
  InputSampler sampler(true, 6);
  const auto layout = layout_of({{256, ElemType::F32}});
  const GatherPlan& a = sampler.plan_for(3, layout, 0.25);
  const GatherPlan& b = sampler.plan_for(3, layout, 0.25);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(sampler.plan_entries(), 1u);
  // Different p, type, or layout each get their own plan.
  sampler.plan_for(3, layout, 0.5);
  sampler.plan_for(4, layout, 0.25);
  sampler.plan_for(3, layout_of({{128, ElemType::F32}}), 0.25);
  EXPECT_EQ(sampler.plan_entries(), 4u);
  // All p >= 1 values collapse onto the same full-selection plan.
  const GatherPlan& full1 = sampler.plan_for(3, layout, 1.0);
  const GatherPlan& full2 = sampler.plan_for(3, layout, 2.0);
  EXPECT_EQ(&full1, &full2);
  EXPECT_EQ(sampler.plan_entries(), 5u);
}

TEST(InputSampler, PlanMemoryIsAccounted) {
  InputSampler sampler(true, 7);
  const auto layout = layout_of({{4096, ElemType::F32}});
  const std::size_t before = sampler.memory_bytes();
  sampler.plan_for(0, layout, 0.25);
  EXPECT_GT(sampler.memory_bytes(), before);
}

}  // namespace
}  // namespace atm

// Scheduler-semantics stress suite (and the TSan target for the CI thread-
// sanitizer job): Chase-Lev deque races, work-stealing spawn storms, steal
// sweeps, shutdown while thieves are active, trace-lane integrity under
// stealing, and A/B determinism between `--sched central` and
// `--sched steal`.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "apps/app_registry.hpp"
#include "runtime/runtime.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/work_steal_deque.hpp"

namespace atm::rt {
namespace {

// --- WorkStealDeque ---------------------------------------------------------

// Owner pushes/pops while thieves hammer steal(): every task is taken exactly
// once, none invented, none lost. Task identity is tracked by pointer.
TEST(WorkStealDeque, OwnerVsThievesExactlyOnce) {
  constexpr int kThieves = 4;
  constexpr int kTasks = 20'000;
  WorkStealDeque deque;
  std::vector<Task> tasks(kTasks);

  std::vector<std::uint8_t> taken(kTasks);  // slot per task; no two writers
  std::atomic<int> taken_count{0};
  std::atomic<bool> done{false};

  auto take = [&](Task* t) {
    const auto idx = static_cast<std::size_t>(t - tasks.data());
    ASSERT_LT(idx, tasks.size());
    // A double-take would race on the slot (TSan) and trip the exchange.
    ASSERT_EQ(taken[idx], 0) << "task stolen/popped twice";
    taken[idx] = 1;
    taken_count.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  std::mutex take_mutex;  // serializes the ASSERT bookkeeping, not the deque
  for (int th = 0; th < kThieves; ++th) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (Task* t = deque.steal()) {
          std::lock_guard<std::mutex> lock(take_mutex);
          take(t);
        }
      }
      // Final drain so nothing is stranded between done and the last steal.
      while (Task* t = deque.steal()) {
        std::lock_guard<std::mutex> lock(take_mutex);
        take(t);
      }
    });
  }

  std::mt19937 rng(7);
  int pushed = 0;
  while (pushed < kTasks) {
    // Push a random burst, then pop some back (LIFO) like a real worker.
    const int burst = 1 + static_cast<int>(rng() % 64);
    for (int i = 0; i < burst && pushed < kTasks; ++i) deque.push(&tasks[pushed++]);
    const int pops = static_cast<int>(rng() % 8);
    for (int i = 0; i < pops; ++i) {
      if (Task* t = deque.pop()) {
        std::lock_guard<std::mutex> lock(take_mutex);
        take(t);
      }
    }
  }
  while (Task* t = deque.pop()) {
    std::lock_guard<std::mutex> lock(take_mutex);
    take(t);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(taken_count.load(), kTasks);
  EXPECT_EQ(deque.steal(), nullptr);
  EXPECT_EQ(deque.pop(), nullptr);
}

// Growth under load: push far beyond the initial capacity while thieves
// drain, exercising grow() with concurrent readers of the old buffer.
TEST(WorkStealDeque, GrowsUnderConcurrentSteals) {
  WorkStealDeque deque(8);
  constexpr int kTasks = 50'000;
  std::vector<Task> tasks(kTasks);
  std::atomic<int> stolen{0};
  std::atomic<bool> done{false};

  std::thread thief([&] {
    while (!done.load(std::memory_order_acquire) || deque.size_estimate() != 0) {
      if (deque.steal() != nullptr) stolen.fetch_add(1, std::memory_order_relaxed);
    }
  });
  int popped = 0;
  for (int i = 0; i < kTasks; ++i) deque.push(&tasks[i]);
  while (deque.pop() != nullptr) ++popped;
  done.store(true, std::memory_order_release);
  thief.join();
  while (deque.steal() != nullptr) stolen.fetch_add(1, std::memory_order_relaxed);

  EXPECT_EQ(stolen.load() + popped, kTasks);
  EXPECT_GE(deque.capacity(), 8u);
}

// --- steal_many (PR 10 steal-half) ------------------------------------------

// Deterministic bounds: steal_many takes half the deque rounded up, clipped
// by the caller's cap and the protocol bound kMaxSteal, oldest tasks first.
TEST(WorkStealDeque, StealManyTakesHalfBounded) {
  WorkStealDeque deque;
  std::vector<Task> tasks(100);
  Task* out[WorkStealDeque::kMaxSteal];

  EXPECT_EQ(deque.steal_many(out, WorkStealDeque::kMaxSteal), 0u);  // empty

  deque.push(&tasks[0]);
  ASSERT_EQ(deque.steal_many(out, WorkStealDeque::kMaxSteal), 1u);  // ceil(1/2)
  EXPECT_EQ(out[0], &tasks[0]);

  for (int i = 0; i < 100; ++i) deque.push(&tasks[i]);
  // ceil(100/2) = 50 clips to kMaxSteal = 32; the batch is the FIFO end.
  ASSERT_EQ(deque.steal_many(out, WorkStealDeque::kMaxSteal),
            WorkStealDeque::kMaxSteal);
  for (std::size_t i = 0; i < WorkStealDeque::kMaxSteal; ++i) {
    EXPECT_EQ(out[i], &tasks[i]) << i;
  }
  // The caller's cap binds when smaller than both half and kMaxSteal.
  ASSERT_EQ(deque.steal_many(out, 3), 3u);
  EXPECT_EQ(out[0], &tasks[WorkStealDeque::kMaxSteal]);

  std::size_t remaining = 0;
  while (deque.pop() != nullptr) ++remaining;
  EXPECT_EQ(remaining, 100u - WorkStealDeque::kMaxSteal - 3u);
}

// The exactly-once property under batched stealing: owner pushes/pops in
// random bursts while thieves hammer steal_many; every task is taken exactly
// once across all batch claims, none lost, none duplicated.
TEST(WorkStealDeque, StealManyOwnerVsThievesExactlyOnce) {
  constexpr int kThieves = 4;
  constexpr int kTasks = 20'000;
  WorkStealDeque deque;
  std::vector<Task> tasks(kTasks);

  std::vector<std::uint8_t> taken(kTasks);
  std::atomic<int> taken_count{0};
  std::atomic<bool> done{false};
  std::mutex take_mutex;  // serializes the ASSERT bookkeeping, not the deque

  auto take = [&](Task* t) {
    const auto idx = static_cast<std::size_t>(t - tasks.data());
    ASSERT_LT(idx, tasks.size());
    ASSERT_EQ(taken[idx], 0) << "task stolen/popped twice";
    taken[idx] = 1;
    taken_count.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  for (int th = 0; th < kThieves; ++th) {
    thieves.emplace_back([&] {
      Task* batch[WorkStealDeque::kMaxSteal];
      auto sweep = [&] {
        const std::size_t got = deque.steal_many(batch, WorkStealDeque::kMaxSteal);
        if (got > 0) {
          std::lock_guard<std::mutex> lock(take_mutex);
          // A batch must never exceed the protocol bound. (EXPECT, not
          // ASSERT: the lambda returns a value, so it cannot early-return.)
          EXPECT_LE(got, WorkStealDeque::kMaxSteal);
          for (std::size_t i = 0; i < got; ++i) take(batch[i]);
        }
        return got;
      };
      while (!done.load(std::memory_order_acquire)) sweep();
      while (sweep() > 0) {  // final drain
      }
    });
  }

  std::mt19937 rng(11);
  int pushed = 0;
  while (pushed < kTasks) {
    const int burst = 1 + static_cast<int>(rng() % 64);
    for (int i = 0; i < burst && pushed < kTasks; ++i) deque.push(&tasks[pushed++]);
    const int pops = static_cast<int>(rng() % 8);
    for (int i = 0; i < pops; ++i) {
      if (Task* t = deque.pop()) {
        std::lock_guard<std::mutex> lock(take_mutex);
        take(t);
      }
    }
  }
  while (Task* t = deque.pop()) {
    std::lock_guard<std::mutex> lock(take_mutex);
    take(t);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(taken_count.load(), kTasks);
  EXPECT_EQ(deque.steal(), nullptr);
  EXPECT_EQ(deque.pop(), nullptr);
}

// Mixed single steals and batch steals against a popping owner: the two
// thief entry points must compose without violating exactly-once.
TEST(WorkStealDeque, MixedStealAndStealManyExactlyOnce) {
  constexpr int kTasks = 20'000;
  WorkStealDeque deque;
  std::vector<Task> tasks(kTasks);
  std::vector<std::uint8_t> taken(kTasks);
  std::atomic<int> taken_count{0};
  std::atomic<bool> done{false};
  std::mutex take_mutex;

  auto take = [&](Task* t) {
    const auto idx = static_cast<std::size_t>(t - tasks.data());
    ASSERT_LT(idx, tasks.size());
    ASSERT_EQ(taken[idx], 0) << "task stolen/popped twice";
    taken[idx] = 1;
    taken_count.fetch_add(1, std::memory_order_relaxed);
  };

  std::thread batch_thief([&] {
    Task* batch[WorkStealDeque::kMaxSteal];
    auto sweep = [&] {
      const std::size_t got = deque.steal_many(batch, 8);
      std::lock_guard<std::mutex> lock(take_mutex);
      for (std::size_t i = 0; i < got; ++i) take(batch[i]);
      return got;
    };
    while (!done.load(std::memory_order_acquire)) sweep();
    while (sweep() > 0) {
    }
  });
  std::thread single_thief([&] {
    auto sweep = [&]() -> Task* {
      Task* t = deque.steal();
      if (t != nullptr) {
        std::lock_guard<std::mutex> lock(take_mutex);
        take(t);
      }
      return t;
    };
    while (!done.load(std::memory_order_acquire)) sweep();
    while (sweep() != nullptr) {
    }
  });

  std::mt19937 rng(13);
  int pushed = 0;
  while (pushed < kTasks) {
    const int burst = 1 + static_cast<int>(rng() % 32);
    for (int i = 0; i < burst && pushed < kTasks; ++i) deque.push(&tasks[pushed++]);
    if (rng() % 2 == 0) {
      if (Task* t = deque.pop()) {
        std::lock_guard<std::mutex> lock(take_mutex);
        take(t);
      }
    }
  }
  while (Task* t = deque.pop()) {
    std::lock_guard<std::mutex> lock(take_mutex);
    take(t);
  }
  done.store(true, std::memory_order_release);
  batch_thief.join();
  single_thief.join();
  EXPECT_EQ(taken_count.load(), kTasks);
}

// --- StealScheduler (scheduler-level, no runtime) ---------------------------

// External pushes land round-robin and every worker can acquire every task
// (own inbox, own deque, or steals); shutdown mid-steal drains exactly.
TEST(StealScheduler, ShutdownDuringStealsDrainsExactlyOnce) {
  constexpr unsigned kWorkers = 4;
  constexpr int kTasks = 10'000;
  auto sched = Scheduler::make(SchedPolicy::Steal, kWorkers, nullptr);
  std::vector<Task> tasks(kTasks);
  std::atomic<int> consumed{0};

  std::vector<std::thread> workers;
  for (unsigned w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      while (sched->pop_blocking(w) != nullptr) {
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Master pushes from a non-worker lane while workers already run, then
  // shuts down while steals are in flight.
  for (int i = 0; i < kTasks; ++i) sched->push(&tasks[i], /*lane=*/kWorkers);
  sched->shutdown();
  for (auto& t : workers) t.join();

  EXPECT_EQ(consumed.load(), kTasks);
  EXPECT_EQ(sched->depth(), 0u);
}

// Workers pushing locally (successor-style) while others only steal: the
// LIFO/FIFO split must not lose tasks.
TEST(StealScheduler, LocalPushesAreStealable) {
  constexpr unsigned kWorkers = 3;
  auto sched = Scheduler::make(SchedPolicy::Steal, kWorkers, nullptr);
  std::vector<Task> tasks(6'000);
  std::atomic<int> consumed{0};

  // Worker 0 produces everything as "local" pushes; workers 1..2 only steal.
  std::thread producer([&] {
    for (auto& t : tasks) sched->push(&t, /*lane=*/0);
    while (sched->pop_blocking(0) != nullptr) {
      consumed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<std::thread> thieves;
  for (unsigned w = 1; w < kWorkers; ++w) {
    thieves.emplace_back([&, w] {
      while (sched->pop_blocking(w) != nullptr) {
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (consumed.load(std::memory_order_relaxed) <
         static_cast<int>(tasks.size())) {
    std::this_thread::yield();
  }
  sched->shutdown();
  producer.join();
  for (auto& t : thieves) t.join();
  EXPECT_EQ(consumed.load(), static_cast<int>(tasks.size()));
}

// --- Victim backoff (PR 10) --------------------------------------------------

// Local work is never skipped: a lane that accumulated maximum steal backoff
// (every sweep missed) must still serve its own pushes on the very next
// try_pop, and the backoff must reset so subsequent steals sweep again.
TEST(StealScheduler, BackoffNeverSkipsLocalWork) {
  auto sched = Scheduler::make(SchedPolicy::Steal, 2, nullptr);
  // Accumulate misses well past the 1 + 2 + ... + kBackoffMaxSkips ramp.
  for (int i = 0; i < 500; ++i) EXPECT_EQ(sched->try_pop(0), nullptr);
  Task local;
  sched->push(&local, /*lane=*/0);
  EXPECT_EQ(sched->try_pop(0), &local);
  sched->shutdown();
}

// Backoff liveness: a thief whose sweeps all missed (so its skip budget is
// maxed) must still acquire remote work within a bounded number of try_pop
// calls — the budget is finite and resets on success.
TEST(StealScheduler, BackoffedThiefStillStealsWithinBudget) {
  constexpr int kTasks = 64;
  auto sched = Scheduler::make(SchedPolicy::Steal, 2, nullptr);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(sched->try_pop(1), nullptr);
  std::vector<Task> tasks(kTasks);
  for (auto& t : tasks) sched->push(&t, /*lane=*/0);  // all work on lane 0
  int got = 0;
  // Worst case the thief skips kBackoffMaxSkips sweeps before each acquire;
  // a generous call budget proves the skip counter cannot wedge the lane.
  for (int i = 0; i < kTasks * (static_cast<int>(StealScheduler::kBackoffMaxSkips) + 2) &&
                  got < kTasks;
       ++i) {
    if (sched->try_pop(1) != nullptr) ++got;
  }
  EXPECT_EQ(got, kTasks);
  sched->shutdown();
}

// Parked lanes must be woken by late pushes even after long idle spells that
// maxed out every lane's backoff (the sleeper protocol, not the skip
// counter, owns parking liveness).
TEST(StealScheduler, LateWorkWakesBackedOffWorkers) {
  constexpr unsigned kWorkers = 4;
  constexpr int kTasks = 10'000;
  auto sched = Scheduler::make(SchedPolicy::Steal, kWorkers, nullptr);
  std::vector<Task> tasks(kTasks);
  std::atomic<int> consumed{0};
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      while (sched->pop_blocking(w) != nullptr) {
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Let the workers run dry (spin through their backoff ramps and park).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < kTasks; ++i) sched->push(&tasks[i], /*lane=*/kWorkers);
  while (consumed.load(std::memory_order_relaxed) < kTasks) {
    std::this_thread::yield();
  }
  sched->shutdown();
  for (auto& t : workers) t.join();
  EXPECT_EQ(consumed.load(), kTasks);
  EXPECT_EQ(sched->depth(), 0u);
}

// --- Runtime-level storms ----------------------------------------------------

RuntimeConfig steal_config(unsigned threads, bool tracing = false) {
  return {.num_threads = threads, .enable_tracing = tracing,
          .sched = SchedPolicy::Steal};
}

// Spawn storm: many independent trivial tasks through the full runtime with
// oversubscribed workers; all must execute exactly once.
TEST(SchedStress, SpawnStormAllTasksExecuteOnce) {
  Runtime rt(steal_config(8));
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  constexpr int kTasks = 5'000;
  std::vector<std::atomic<int>> hits(kTasks);
  std::vector<int> cells(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    rt.submit(type, [&, i] { hits[i].fetch_add(1, std::memory_order_relaxed); },
              {out(&cells[i], 1)});
  }
  rt.taskwait();
  for (int i = 0; i < kTasks; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  EXPECT_EQ(rt.counters().executed, static_cast<std::uint64_t>(kTasks));
}

// Random DAG under stealing: writers to the same buffer must still be
// serialized in submission order (dependences dominate the scheduler).
class StealDagStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StealDagStress, ConflictingWritersSerializedUnderStealing) {
  std::mt19937_64 rng(GetParam());
  constexpr int kBuffers = 8;
  constexpr int kTasks = 400;

  Runtime rt(steal_config(4));
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});

  int buffers[kBuffers] = {};
  std::vector<std::vector<int>> logs(kBuffers);
  std::mutex log_mutex[kBuffers];
  std::vector<int> expected[kBuffers];

  for (int i = 0; i < kTasks; ++i) {
    const int b = static_cast<int>(rng() % kBuffers);
    expected[b].push_back(i);
    rt.submit(type,
              [&, i, b] {
                std::lock_guard<std::mutex> lock(log_mutex[b]);
                logs[b].push_back(i);
              },
              {inout(&buffers[b], 1)});
  }
  rt.taskwait();
  for (int b = 0; b < kBuffers; ++b) EXPECT_EQ(logs[b], expected[b]) << "buffer " << b;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StealDagStress, ::testing::Range<std::uint64_t>(0, 6));

// Workers submitting successors from inside tasks (local pushes) mixed with
// master submissions; repeated across taskwait barriers.
TEST(SchedStress, NestedSubmissionAcrossBarriers) {
  Runtime rt(steal_config(4));
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  std::atomic<int> total{0};
  int cells[64] = {};
  for (int wave = 0; wave < 20; ++wave) {
    for (int i = 0; i < 32; ++i) {
      rt.submit(type,
                [&, i] {
                  total.fetch_add(1, std::memory_order_relaxed);
                  // Child task submitted from a worker thread: exercises the
                  // worker-local push path of the scheduler.
                  rt.submit(type, [&] { total.fetch_add(1, std::memory_order_relaxed); },
                            {out(&cells[32 + i], 1)});
                },
                {out(&cells[i], 1)});
    }
    rt.taskwait();
  }
  EXPECT_EQ(total.load(), 20 * 64);
}

// Trace-lane integrity under stealing: every lane's events are well-formed
// (t0 <= t1) and non-overlapping in record order, regardless of which worker
// stole which task; depth samples exist and their timestamps ascend.
TEST(SchedStress, TraceLanesStayConsistentUnderStealing) {
  Runtime rt(steal_config(4, /*tracing=*/true));
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  std::vector<int> cells(512);
  for (int wave = 0; wave < 4; ++wave) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      rt.submit(type, [&, i] { cells[i] += 1; }, {inout(&cells[i], 1)});
    }
    rt.taskwait();
  }
  const TraceRecorder& tracer = rt.tracer();
  ASSERT_EQ(tracer.lane_count(), 5u);  // 4 workers + master
  std::uint64_t exec_events = 0;
  for (std::size_t lane = 0; lane < tracer.lane_count(); ++lane) {
    const auto& events = tracer.lane(lane);
    for (std::size_t i = 0; i < events.size(); ++i) {
      ASSERT_LE(events[i].t0, events[i].t1) << "lane " << lane << " event " << i;
      if (i > 0) {
        ASSERT_LE(events[i - 1].t1, events[i].t0)
            << "lane " << lane << ": overlapping events " << i - 1 << "," << i;
      }
      if (events[i].state == TraceState::TaskExec) ++exec_events;
    }
  }
  EXPECT_EQ(exec_events, 4u * 512u);  // every task traced exactly once
  const auto depth = tracer.depth_samples();
  ASSERT_FALSE(depth.empty());
  for (std::size_t i = 1; i < depth.size(); ++i) {
    ASSERT_LE(depth[i - 1].t, depth[i].t);
  }
}

// --- MPSC inboxes (lock-free external submission path) ----------------------

// Many producer threads hammer the lock-free inboxes while workers drain
// them (private batch + deque spill + steals): every task is consumed
// exactly once, none lost, none duplicated.
TEST(StealScheduler, MpscInboxManyProducersExactlyOnce) {
  constexpr unsigned kWorkers = 3;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5'000;
  constexpr int kTasks = kProducers * kPerProducer;
  auto sched = Scheduler::make(SchedPolicy::Steal, kWorkers, nullptr);
  std::vector<Task> tasks(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks[i].id = static_cast<TaskId>(i);  // spreads across inboxes
  }
  std::vector<std::atomic<std::uint8_t>> taken(kTasks);
  std::atomic<int> consumed{0};

  std::vector<std::thread> workers;
  for (unsigned w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      while (Task* t = sched->pop_blocking(w)) {
        const auto idx = static_cast<std::size_t>(t - tasks.data());
        ASSERT_LT(idx, tasks.size());
        ASSERT_EQ(taken[idx].exchange(1, std::memory_order_relaxed), 0)
            << "task consumed twice";
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // All producers push from non-worker lanes (external submissions).
        sched->push(&tasks[p * kPerProducer + i], /*lane=*/kWorkers + p);
      }
    });
  }
  for (auto& t : producers) t.join();
  while (consumed.load(std::memory_order_relaxed) < kTasks) {
    std::this_thread::yield();
  }
  sched->shutdown();
  for (auto& t : workers) t.join();
  EXPECT_EQ(consumed.load(), kTasks);
  EXPECT_EQ(sched->depth(), 0u);
}

// --- Eager retirement under stealing -----------------------------------------

// Randomized streamed DAG with NO intermediate taskwait: records retire and
// recycle while thieves, the sharded tracker and submitters race. Per-buffer
// logs must equal submission order, every task runs exactly once, and the
// arena must end fully drained. (This is the suite's TSan money shot: a
// use-after-retire is a data race on a recycled record.)
class RetireUnderStealing : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RetireUnderStealing, StreamedDagExactlyOnceNoUseAfterRetire) {
  std::mt19937_64 rng(GetParam());
  constexpr int kBuffers = 16;
  constexpr int kTasks = 8'000;

  Runtime rt(steal_config(8));  // oversubscribed: steals + park/wake churn
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});

  int buffers[kBuffers] = {};
  std::vector<std::vector<int>> logs(kBuffers);
  std::mutex log_mutex[kBuffers];
  std::vector<int> expected[kBuffers];
  std::vector<std::atomic<std::uint8_t>> hits(kTasks);

  for (int i = 0; i < kTasks; ++i) {
    // Mix single-buffer writers with occasional two-buffer tasks so
    // successor lists and multi-segment footprints both churn.
    const int b0 = static_cast<int>(rng() % kBuffers);
    const bool dual = (rng() % 4) == 0;
    const int b1 = dual ? static_cast<int>(rng() % kBuffers) : b0;
    expected[b0].push_back(i);
    if (b1 != b0) expected[b1].push_back(i);
    std::vector<DataAccess> acc{inout(&buffers[b0], 1)};
    if (b1 != b0) acc.push_back(inout(&buffers[b1], 1));
    rt.submit(type,
              [&, i, b0, b1] {
                ASSERT_EQ(hits[i].exchange(1, std::memory_order_relaxed), 0)
                    << "task " << i << " ran twice";
                {
                  std::lock_guard<std::mutex> lock(log_mutex[b0]);
                  logs[b0].push_back(i);
                }
                if (b1 != b0) {
                  std::lock_guard<std::mutex> lock(log_mutex[b1]);
                  logs[b1].push_back(i);
                }
              },
              std::move(acc));
  }
  rt.taskwait();

  for (int b = 0; b < kBuffers; ++b) {
    EXPECT_EQ(logs[b], expected[b]) << "buffer " << b;
  }
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "task " << i;
  }
  EXPECT_EQ(rt.counters().executed, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(rt.arena_stats().live_slots(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetireUnderStealing,
                         ::testing::Range<std::uint64_t>(0, 6));

// Nested submissions from workers while records recycle: children submitted
// from inside tasks use worker-lane pushes and allocate from the same arena
// the parents are being retired into.
TEST(SchedStress, NestedSubmissionWithEagerRetirement) {
  Runtime rt(steal_config(4));
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  std::atomic<int> total{0};
  int cells[256] = {};
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 64; ++i) {
      rt.submit(type,
                [&, i] {
                  total.fetch_add(1, std::memory_order_relaxed);
                  for (int c = 0; c < 3; ++c) {
                    rt.submit(type,
                              [&] { total.fetch_add(1, std::memory_order_relaxed); },
                              {inout(&cells[64 + (i * 3 + c) % 192], 1)});
                  }
                },
                {inout(&cells[i], 1)});
    }
    rt.taskwait();
    EXPECT_EQ(rt.arena_stats().live_slots(), 0u) << "wave " << wave;
  }
  EXPECT_EQ(total.load(), 10 * 64 * 4);
}

// --- Central/steal A/B determinism ------------------------------------------

// Same app, same seed: the two schedulers must produce bit-identical program
// outputs with ATM off (pure dependence-ordered execution) and with Static
// ATM (exact memoization: hits copy byte-identical outputs, so the schedule
// cannot leak into the results).
class SchedDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(SchedDeterminism, CentralAndStealProduceIdenticalOutputs) {
  const auto app = apps::make_app(GetParam(), apps::Preset::Test);
  ASSERT_NE(app, nullptr);
  for (AtmMode mode : {AtmMode::Off, AtmMode::Static}) {
    apps::RunConfig central{.threads = 4, .sched = SchedPolicy::Central, .mode = mode};
    apps::RunConfig steal{.threads = 4, .sched = SchedPolicy::Steal, .mode = mode};
    const auto a = app->run(central);
    const auto b = app->run(steal);
    ASSERT_EQ(a.output.size(), b.output.size());
    for (std::size_t i = 0; i < a.output.size(); ++i) {
      ASSERT_EQ(a.output[i], b.output[i])
          << app->name() << " mode=" << atm_mode_name(mode) << " index " << i;
    }
    EXPECT_EQ(a.counters.submitted, b.counters.submitted);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, SchedDeterminism,
                         ::testing::Values("blackscholes", "gauss-seidel", "kmeans"));

}  // namespace
}  // namespace atm::rt

// Tests for the Task History Table (§III-A): lookups copy stored outputs,
// p/type/shape mismatches miss, FIFO eviction, memory accounting, and
// concurrent reader/writer stress over the per-bucket shared locks.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "atm/tht.hpp"

namespace atm {
namespace {

rt::Task make_producer(float* out, std::size_t n, rt::TaskId id = 1) {
  rt::Task t;
  t.id = id;
  t.accesses.push_back(rt::out(out, n));
  return t;
}

rt::Task make_consumer(float* out, std::size_t n) {
  rt::Task t;
  t.id = 999;
  t.accesses.push_back(rt::out(out, n));
  return t;
}

TEST(Tht, InsertLookupRoundtrip) {
  TaskHistoryTable tht(4, 8);
  std::vector<float> produced{1, 2, 3, 4};
  auto producer = make_producer(produced.data(), 4, 7);
  tht.insert(0, 0xABC, 1.0, producer);
  EXPECT_TRUE(tht.contains(0, 0xABC, 1.0));
  EXPECT_EQ(tht.entry_count(), 1u);

  std::vector<float> sink(4, 0.0f);
  auto consumer = make_consumer(sink.data(), 4);
  rt::TaskId creator = 0;
  std::uint64_t t0 = 0, t1 = 0;
  ASSERT_TRUE(tht.lookup_and_copy(0, 0xABC, 1.0, consumer, &creator, &t0, &t1));
  EXPECT_EQ(sink, produced);
  EXPECT_EQ(creator, 7u);
  EXPECT_GE(t1, t0);
}

TEST(Tht, MissOnWrongKeyTypeOrP) {
  TaskHistoryTable tht(4, 8);
  std::vector<float> data{1, 2};
  auto producer = make_producer(data.data(), 2);
  tht.insert(0, 0xABC, 0.5, producer);
  std::vector<float> sink(2);
  auto consumer = make_consumer(sink.data(), 2);
  EXPECT_FALSE(tht.lookup_and_copy(0, 0xABD, 0.5, consumer, nullptr, nullptr, nullptr));
  EXPECT_FALSE(tht.lookup_and_copy(1, 0xABC, 0.5, consumer, nullptr, nullptr, nullptr));
  // Same key computed under a different p must not match (§III-D).
  EXPECT_FALSE(tht.lookup_and_copy(0, 0xABC, 1.0, consumer, nullptr, nullptr, nullptr));
  EXPECT_TRUE(tht.lookup_and_copy(0, 0xABC, 0.5, consumer, nullptr, nullptr, nullptr));
}

TEST(Tht, ShapeMismatchMisses) {
  TaskHistoryTable tht(4, 8);
  std::vector<float> data{1, 2, 3, 4};
  auto producer = make_producer(data.data(), 4);
  tht.insert(0, 0xABC, 1.0, producer);
  std::vector<float> small(2);
  auto consumer = make_consumer(small.data(), 2);
  EXPECT_FALSE(tht.lookup_and_copy(0, 0xABC, 1.0, consumer, nullptr, nullptr, nullptr));
}

TEST(Tht, MultiRegionOutputs) {
  TaskHistoryTable tht(4, 8);
  std::vector<float> r1{1, 2}, r2{3, 4, 5};
  rt::Task producer;
  producer.id = 3;
  producer.accesses.push_back(rt::out(r1.data(), 2));
  producer.accesses.push_back(rt::out(r2.data(), 3));
  tht.insert(0, 0x111, 1.0, producer);

  std::vector<float> s1(2), s2(3);
  rt::Task consumer;
  consumer.accesses.push_back(rt::out(s1.data(), 2));
  consumer.accesses.push_back(rt::out(s2.data(), 3));
  ASSERT_TRUE(tht.lookup_and_copy(0, 0x111, 1.0, consumer, nullptr, nullptr, nullptr));
  EXPECT_EQ(s1, r1);
  EXPECT_EQ(s2, r2);
}

TEST(Tht, DuplicateInsertKeepsOriginalCreator) {
  TaskHistoryTable tht(4, 8);
  std::vector<float> a{1.0f}, b{2.0f};
  auto first = make_producer(a.data(), 1, 10);
  auto second = make_producer(b.data(), 1, 20);
  tht.insert(0, 0x5, 1.0, first);
  tht.insert(0, 0x5, 1.0, second);  // skipped: FIFO keeps the oldest
  EXPECT_EQ(tht.entry_count(), 1u);
  std::vector<float> sink(1);
  auto consumer = make_consumer(sink.data(), 1);
  rt::TaskId creator = 0;
  ASSERT_TRUE(tht.lookup_and_copy(0, 0x5, 1.0, consumer, &creator, nullptr, nullptr));
  EXPECT_EQ(creator, 10u);
  EXPECT_FLOAT_EQ(sink[0], 1.0f);
}

TEST(Tht, FifoEvictionWhenBucketFull) {
  TaskHistoryTable tht(0, 3);  // single bucket (N = 0), M = 3
  std::vector<float> vals(4);
  for (std::uint64_t k = 0; k < 4; ++k) {
    vals[k] = static_cast<float>(k);
    auto producer = make_producer(&vals[k], 1, 100 + k);
    tht.insert(0, k, 1.0, producer);
  }
  EXPECT_EQ(tht.entry_count(), 3u);
  EXPECT_EQ(tht.evictions(), 1u);
  EXPECT_FALSE(tht.contains(0, 0, 1.0));  // the oldest was evicted
  EXPECT_TRUE(tht.contains(0, 1, 1.0));
  EXPECT_TRUE(tht.contains(0, 3, 1.0));
}

TEST(Tht, LowBitsIndexBuckets) {
  // Keys differing only above bit N land in the same bucket and both fit.
  TaskHistoryTable tht(2, 1);  // 4 buckets, M = 1
  std::vector<float> v{1.0f};
  auto p1 = make_producer(v.data(), 1);
  tht.insert(0, 0b0000, 1.0, p1);
  tht.insert(0, 0b0100, 1.0, p1);  // same low bits: same bucket, evicts
  EXPECT_EQ(tht.evictions(), 1u);
  tht.insert(0, 0b0001, 1.0, p1);  // different bucket: no eviction
  EXPECT_EQ(tht.evictions(), 1u);
}

TEST(Tht, LookupSnapshotCopies) {
  TaskHistoryTable tht(4, 8);
  std::vector<float> data{9, 8, 7};
  auto producer = make_producer(data.data(), 3, 42);
  tht.insert(0, 0x9, 0.25, producer);
  OutputSnapshot snap;
  rt::TaskId creator = 0;
  ASSERT_TRUE(tht.lookup_snapshot(0, 0x9, 0.25, &snap, &creator));
  EXPECT_EQ(creator, 42u);
  ASSERT_EQ(snap.regions.size(), 1u);
  EXPECT_EQ(snap.regions[0].data.size(), 12u);
  EXPECT_EQ(snap.total_bytes(), 12u);
  const float* f = reinterpret_cast<const float*>(snap.regions[0].data.data());
  EXPECT_FLOAT_EQ(f[0], 9.0f);
  EXPECT_FLOAT_EQ(f[2], 7.0f);
}

TEST(Tht, MemoryAccountingTracksContent) {
  TaskHistoryTable tht(2, 8);
  const std::size_t base = tht.memory_bytes();
  std::vector<float> big(1024, 1.0f);
  auto producer = make_producer(big.data(), big.size());
  tht.insert(0, 0x1, 1.0, producer);
  EXPECT_GE(tht.memory_bytes(), base + 4096);
  tht.clear();
  EXPECT_EQ(tht.memory_bytes(), base);
  EXPECT_EQ(tht.entry_count(), 0u);
}

TEST(Tht, ClearAllowsReinsert) {
  TaskHistoryTable tht(2, 2);
  std::vector<float> v{5.0f};
  auto producer = make_producer(v.data(), 1);
  tht.insert(0, 0x2, 1.0, producer);
  tht.clear();
  EXPECT_FALSE(tht.contains(0, 0x2, 1.0));
  tht.insert(0, 0x2, 1.0, producer);
  EXPECT_TRUE(tht.contains(0, 0x2, 1.0));
}

TEST(Tht, ConcurrentReadersAndWriters) {
  TaskHistoryTable tht(4, 64);
  constexpr int kThreads = 4;
  constexpr int kKeys = 64;
  std::vector<std::vector<float>> payloads(kKeys);
  for (int k = 0; k < kKeys; ++k) payloads[k].assign(64, static_cast<float>(k));

  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<float> sink(64);
      for (int iter = 0; iter < 500; ++iter) {
        const int k = (iter * 7 + t * 13) % kKeys;
        auto producer = make_producer(payloads[k].data(), 64, k);
        tht.insert(0, static_cast<HashKey>(k), 1.0, producer);
        auto consumer = make_consumer(sink.data(), 64);
        if (tht.lookup_and_copy(0, static_cast<HashKey>(k), 1.0, consumer, nullptr,
                                nullptr, nullptr)) {
          // Entry payloads are constant per key: any torn read is a bug.
          for (float f : sink) {
            if (f != static_cast<float>(k)) {
              wrong.fetch_add(1);
              break;
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
}

TEST(OutputSnapshotTest, CaptureMatchCopy) {
  std::vector<double> out1{1.5, 2.5};
  std::vector<float> out2{3.5f};
  rt::Task t;
  t.accesses.push_back(rt::in(out1.data(), 0));  // zero-size input ignored
  t.accesses.push_back(rt::out(out1.data(), 2));
  t.accesses.push_back(rt::out(out2.data(), 1));
  const auto snap = OutputSnapshot::capture(t);
  ASSERT_EQ(snap.regions.size(), 2u);
  EXPECT_TRUE(snap.matches_shape(t));

  std::vector<double> sink1(2);
  std::vector<float> sink2(1);
  rt::Task dst;
  dst.accesses.push_back(rt::out(sink1.data(), 2));
  dst.accesses.push_back(rt::out(sink2.data(), 1));
  EXPECT_TRUE(snap.matches_shape(dst));
  snap.copy_to(dst);
  EXPECT_EQ(sink1, out1);
  EXPECT_EQ(sink2, out2);
}

TEST(OutputShapes, Match) {
  float a[4], b[4], c[2];
  rt::Task x, y, z;
  x.accesses.push_back(rt::out(a, 4));
  y.accesses.push_back(rt::out(b, 4));
  z.accesses.push_back(rt::out(c, 2));
  EXPECT_TRUE(output_shapes_match(x, y));
  EXPECT_FALSE(output_shapes_match(x, z));
}

}  // namespace
}  // namespace atm

// Tests for the In-flight Key Table (§III-A): owner registration, twin
// attachment (postponed copies), training-mode attach refusal, retirement,
// and concurrent register/retire stress.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "atm/ikt.hpp"

namespace atm {
namespace {

rt::Task make_task(float* out, std::size_t n, rt::TaskId id) {
  rt::Task t;
  t.id = id;
  t.accesses.push_back(rt::out(out, n));
  return t;
}

TEST(Ikt, FirstRegistrationOwnsKey) {
  InFlightKeyTable ikt;
  float buf[4];
  auto t = make_task(buf, 4, 1);
  EXPECT_EQ(ikt.register_or_attach(0, 0xA, 1.0, &t, true),
            InFlightKeyTable::RegisterResult::Registered);
  EXPECT_EQ(ikt.size(), 1u);
}

TEST(Ikt, TwinAttaches) {
  InFlightKeyTable ikt;
  float b1[4], b2[4];
  auto owner = make_task(b1, 4, 1);
  auto twin = make_task(b2, 4, 2);
  ikt.register_or_attach(0, 0xA, 1.0, &owner, true);
  EXPECT_EQ(ikt.register_or_attach(0, 0xA, 1.0, &twin, true),
            InFlightKeyTable::RegisterResult::AttachedToTwin);
  EXPECT_EQ(twin.state, rt::TaskState::Deferred);
  EXPECT_EQ(ikt.pending_count(), 1u);
  const auto pending = ikt.retire(&owner);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0], &twin);
  EXPECT_EQ(ikt.size(), 0u);
}

TEST(Ikt, DifferentKeysCoexist) {
  InFlightKeyTable ikt;
  float b1[4], b2[4];
  auto t1 = make_task(b1, 4, 1);
  auto t2 = make_task(b2, 4, 2);
  EXPECT_EQ(ikt.register_or_attach(0, 0xA, 1.0, &t1, true),
            InFlightKeyTable::RegisterResult::Registered);
  EXPECT_EQ(ikt.register_or_attach(0, 0xB, 1.0, &t2, true),
            InFlightKeyTable::RegisterResult::Registered);
  EXPECT_EQ(ikt.size(), 2u);
}

TEST(Ikt, PMismatchDoesNotMatch) {
  InFlightKeyTable ikt;
  float b1[4], b2[4];
  auto t1 = make_task(b1, 4, 1);
  auto t2 = make_task(b2, 4, 2);
  ikt.register_or_attach(0, 0xA, 0.5, &t1, true);
  EXPECT_EQ(ikt.register_or_attach(0, 0xA, 1.0, &t2, true),
            InFlightKeyTable::RegisterResult::Registered);
}

TEST(Ikt, TypeMismatchDoesNotMatch) {
  InFlightKeyTable ikt;
  float b1[4], b2[4];
  auto t1 = make_task(b1, 4, 1);
  auto t2 = make_task(b2, 4, 2);
  ikt.register_or_attach(0, 0xA, 1.0, &t1, true);
  EXPECT_EQ(ikt.register_or_attach(1, 0xA, 1.0, &t2, true),
            InFlightKeyTable::RegisterResult::Registered);
}

TEST(Ikt, TrainingModeRefusesAttach) {
  InFlightKeyTable ikt;
  float b1[4], b2[4];
  auto owner = make_task(b1, 4, 1);
  auto trainee = make_task(b2, 4, 2);
  ikt.register_or_attach(0, 0xA, 1.0, &owner, true);
  EXPECT_EQ(ikt.register_or_attach(0, 0xA, 1.0, &trainee, /*allow_attach=*/false),
            InFlightKeyTable::RegisterResult::TwinBusy);
  EXPECT_EQ(ikt.pending_count(), 0u);
}

TEST(Ikt, ShapeMismatchRefusesAttach) {
  InFlightKeyTable ikt;
  float b1[4], b2[2];
  auto owner = make_task(b1, 4, 1);
  auto other = make_task(b2, 2, 2);
  ikt.register_or_attach(0, 0xA, 1.0, &owner, true);
  EXPECT_EQ(ikt.register_or_attach(0, 0xA, 1.0, &other, true),
            InFlightKeyTable::RegisterResult::TwinBusy);
}

TEST(Ikt, MultipleConsumersAttach) {
  // "we allow multiple A-like tasks to store their petition for output copy
  // in B-like in-flight task" (§III-A).
  InFlightKeyTable ikt;
  float bufs[4][4];
  auto owner = make_task(bufs[0], 4, 1);
  ikt.register_or_attach(0, 0xA, 1.0, &owner, true);
  std::vector<rt::Task> consumers;
  consumers.reserve(3);
  for (int i = 0; i < 3; ++i) consumers.push_back(make_task(bufs[i + 1], 4, 10 + i));
  for (auto& c : consumers) {
    EXPECT_EQ(ikt.register_or_attach(0, 0xA, 1.0, &c, true),
              InFlightKeyTable::RegisterResult::AttachedToTwin);
  }
  const auto pending = ikt.retire(&owner);
  EXPECT_EQ(pending.size(), 3u);
}

TEST(Ikt, RetireUnknownOwnerIsEmpty) {
  InFlightKeyTable ikt;
  float b[4];
  auto t = make_task(b, 4, 1);
  EXPECT_TRUE(ikt.retire(&t).empty());
}

TEST(Ikt, RetireRemovesOnlyOwnEntry) {
  InFlightKeyTable ikt;
  float b1[4], b2[4];
  auto t1 = make_task(b1, 4, 1);
  auto t2 = make_task(b2, 4, 2);
  ikt.register_or_attach(0, 0xA, 1.0, &t1, true);
  ikt.register_or_attach(0, 0xB, 1.0, &t2, true);
  (void)ikt.retire(&t1);
  EXPECT_EQ(ikt.size(), 1u);
  EXPECT_FALSE(ikt.retire(&t2).size());  // t2 had no pending consumers
  EXPECT_EQ(ikt.size(), 0u);
}

TEST(Ikt, AfterRetireKeyIsFreeAgain) {
  InFlightKeyTable ikt;
  float b1[4], b2[4];
  auto t1 = make_task(b1, 4, 1);
  auto t2 = make_task(b2, 4, 2);
  ikt.register_or_attach(0, 0xA, 1.0, &t1, true);
  (void)ikt.retire(&t1);
  EXPECT_EQ(ikt.register_or_attach(0, 0xA, 1.0, &t2, true),
            InFlightKeyTable::RegisterResult::Registered);
}

TEST(Ikt, MemoryBytesNonZero) {
  InFlightKeyTable ikt;
  EXPECT_GT(ikt.memory_bytes(), 0u);
}

TEST(Ikt, ConcurrentRegisterRetire) {
  InFlightKeyTable ikt;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::atomic<int> attached{0};
  std::atomic<int> fulfilled{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      float buf[4];
      for (int i = 0; i < kIters; ++i) {
        rt::Task task = make_task(buf, 4, static_cast<rt::TaskId>(t * kIters + i));
        const HashKey key = static_cast<HashKey>(i % 7);
        const auto res = ikt.register_or_attach(0, key, 1.0, &task, true);
        if (res == InFlightKeyTable::RegisterResult::Registered) {
          fulfilled += static_cast<int>(ikt.retire(&task).size());
        } else if (res == InFlightKeyTable::RegisterResult::AttachedToTwin) {
          attached.fetch_add(1);
          // The owner will retire us; nothing to do — in this stress the
          // task object dies immediately, which is safe because we never
          // dereference pending pointers here.
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ikt.pending_count(), 0u);  // all owners retired
  EXPECT_EQ(attached.load(), fulfilled.load());
}

}  // namespace
}  // namespace atm

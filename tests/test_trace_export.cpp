// Tests for the Chrome trace-event exporter (src/obs/trace_export): golden
// structural checks of the JSON document, event ordering and duration
// validity, counter-track monotonicity, and a full TraceRecorder round-trip
// (record -> export -> parse).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace_export.hpp"
#include "runtime/runtime.hpp"
#include "runtime/trace.hpp"

namespace atm::obs {
namespace {

using rt::TraceEvent;
using rt::TraceState;

std::vector<std::vector<TraceEvent>> two_lane_fixture() {
  // Lane 0 (worker): exec then idle; lane 1 (master): creation.
  std::vector<std::vector<TraceEvent>> lanes(2);
  lanes[0].push_back({1000, 1500, TraceState::TaskExec});
  lanes[0].push_back({1500, 1700, TraceState::Idle});
  lanes[1].push_back({900, 1100, TraceState::Creation});
  return lanes;
}

TEST(ChromeTrace, GoldenStructure) {
  const auto lanes = two_lane_fixture();
  const std::string json = chrome_trace_json(lanes, 1, {});

  // Document envelope.
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["), 0u);
  EXPECT_EQ(json.back(), '}');
  // Thread-name metadata for both lanes, master labeled as such.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"master\""), std::string::npos);
  // Complete events carry the state names and the runtime category.
  EXPECT_NE(json.find("\"TaskExec\""), std::string::npos);
  EXPECT_NE(json.find("\"Creation\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"runtime\""), std::string::npos);
}

TEST(ChromeTrace, TimestampsNormalizedToEarliestEvent) {
  const auto lanes = two_lane_fixture();
  ParsedChromeTrace parsed;
  ASSERT_TRUE(parse_chrome_trace(chrome_trace_json(lanes, 1, {}), parsed));

  // Earliest event (master creation at 900ns) lands at ts=0; the worker
  // exec span starts 100ns = 0.1us later.
  double min_ts = 1e18;
  for (const auto& e : parsed.events) {
    if (e.ph == "X") min_ts = std::min(min_ts, e.ts);
  }
  EXPECT_DOUBLE_EQ(min_ts, 0.0);
  bool found_exec = false;
  for (const auto& e : parsed.events) {
    if (e.ph == "X" && e.name == "TaskExec") {
      found_exec = true;
      EXPECT_DOUBLE_EQ(e.ts, 0.1);
      EXPECT_DOUBLE_EQ(e.dur, 0.5);
      EXPECT_EQ(e.tid, 0u);
    }
  }
  EXPECT_TRUE(found_exec);
}

TEST(ChromeTrace, EventsOrderedAndNonOverlappingPerLane) {
  const auto lanes = two_lane_fixture();
  ParsedChromeTrace parsed;
  ASSERT_TRUE(parse_chrome_trace(chrome_trace_json(lanes, 1, {}), parsed));

  // Within a tid, X events must be time-ordered and non-overlapping (lanes
  // are single-threaded timelines — Perfetto renders overlap as nesting,
  // which a flat state machine must never produce).
  for (std::uint32_t tid = 0; tid < 2; ++tid) {
    double prev_end = -1.0;
    for (const auto& e : parsed.events) {
      if (e.ph != "X" || e.tid != tid) continue;
      EXPECT_GE(e.ts, prev_end) << "overlap on tid " << tid;
      EXPECT_GE(e.dur, 0.0);
      prev_end = e.ts + e.dur;
    }
  }
}

TEST(ChromeTrace, CounterTrackEmitsMonotonicTimestamps) {
  std::vector<rt::DepthSample> depth;
  for (std::uint32_t i = 0; i < 10; ++i) {
    depth.push_back({1000 + std::uint64_t{i} * 100, i % 4});
  }
  CounterTrack gauge{"arena.free_slots", {{1000, 256.0}, {1500, 192.0}}};
  ParsedChromeTrace parsed;
  ASSERT_TRUE(parse_chrome_trace(chrome_trace_json({}, 0, depth, {gauge}), parsed));

  EXPECT_EQ(parsed.count("C"), 12u);
  double prev_ready = -1.0, prev_gauge = -1.0;
  std::size_t gauge_points = 0;
  for (const auto& e : parsed.events) {
    if (e.ph != "C") continue;
    if (e.name == "ready_tasks") {
      EXPECT_GT(e.ts, prev_ready);
      prev_ready = e.ts;
    } else {
      EXPECT_EQ(e.name, "arena.free_slots");
      EXPECT_GT(e.ts, prev_gauge);
      prev_gauge = e.ts;
      ++gauge_points;
    }
  }
  EXPECT_EQ(gauge_points, 2u);
}

TEST(ChromeTrace, EmptyInputStillValidDocument) {
  ParsedChromeTrace parsed;
  const std::string json = chrome_trace_json({}, 0, {});
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
  // An empty event array parses to "no events" = false by contract.
  EXPECT_FALSE(parse_chrome_trace(json, parsed));
}

TEST(ChromeTrace, RecorderRoundTrip) {
  // Drive a real traced runtime, then export its recorder and parse back.
  rt::Runtime runtime({.num_threads = 2, .enable_tracing = true});
  const auto* type =
      runtime.register_type({.name = "t", .memoizable = false, .atm = {}});
  std::vector<int> cells(64, 0);
  for (auto& c : cells) {
    runtime.submit(type, [&c] { ++c; }, {rt::inout(&c, 1)});
  }
  runtime.taskwait();

  const rt::TraceRecorder& rec = runtime.tracer();
  std::vector<std::vector<TraceEvent>> lanes;
  std::size_t recorded = 0;
  for (std::size_t i = 0; i < rec.lane_count(); ++i) {
    lanes.push_back(rec.lane(i));
    recorded += lanes.back().size();
  }
  ASSERT_GT(recorded, 0u);

  const std::string json =
      chrome_trace_json(lanes, rec.master_lane(), rec.depth_samples());
  ParsedChromeTrace parsed;
  ASSERT_TRUE(parse_chrome_trace(json, parsed));

  // Every recorded span and depth sample survives; one M record per lane.
  EXPECT_EQ(parsed.count("X"), recorded);
  EXPECT_EQ(parsed.count("C"), rec.depth_samples().size());
  EXPECT_EQ(parsed.count("M"), rec.lane_count());
  // All tids reference real lanes and some TaskExec spans made it through.
  std::size_t exec_spans = 0;
  for (const auto& e : parsed.events) {
    EXPECT_LT(e.tid, rec.lane_count());
    if (e.ph == "X" && e.name == "TaskExec") ++exec_spans;
  }
  EXPECT_GE(exec_spans, cells.size());
}

TEST(ChromeTrace, ParserRejectsGarbage) {
  ParsedChromeTrace parsed;
  EXPECT_FALSE(parse_chrome_trace("not json at all", parsed));
  EXPECT_FALSE(parse_chrome_trace("{\"foo\": 1}", parsed));
}

}  // namespace
}  // namespace atm::obs

// Tests that the synthetic workload generators reproduce the redundancy
// structure the paper's §V-D attributes to each benchmark — the property
// every speedup in Figs. 3-6 depends on. These tests pin the *source* of
// reuse, not just its amount.
#include <gtest/gtest.h>

#include "apps/app_registry.hpp"
#include "apps/blackscholes.hpp"
#include "apps/kmeans.hpp"
#include "apps/stencil_common.hpp"
#include "apps/swaptions.hpp"

namespace atm::apps {
namespace {

TEST(Redundancy, BlackscholesInputReplicationYieldsExactReuse) {
  // "Embarrassingly parallel algorithms such as Blackscholes have their
  // redundancy in the program's inputs."
  BlackscholesParams params = BlackscholesParams::preset(Preset::Test);
  const BlackscholesApp app(params);
  const auto run = app.run({.threads = 2, .mode = AtmMode::Static});
  // 1 iteration prices every distinct block once; later iterations reuse
  // everything: overall reuse must comfortably exceed the 1-iter level.
  const double reuse = run.reuse_fraction();
  EXPECT_GT(reuse, 0.5);
  EXPECT_LT(run.counters.executed, run.counters.submitted);
}

TEST(Redundancy, BlackscholesOneIterationReuseIsHalf) {
  // With distinct = num/2 and aligned blocks, exactly half the first
  // iteration's blocks are replicas (the paper's 1-iter reuse is 50%).
  BlackscholesParams params = BlackscholesParams::preset(Preset::Test);
  params.iterations = 1;
  const BlackscholesApp app(params);
  const auto run = app.run({.threads = 1, .mode = AtmMode::Static});
  EXPECT_NEAR(run.reuse_fraction(), 0.5, 0.05);
}

TEST(Redundancy, StencilConvergenceGeneratesReuseOverTime) {
  // "The temperature near the walls converges faster than in the interior"
  // — interior blocks with repeated patterns memoize while the heat front
  // has not reached them.
  const auto app = make_app("gauss-seidel", Preset::Bench);
  const auto run = app->run({.threads = 2, .mode = AtmMode::Static});
  EXPECT_GT(run.atm.tht_hits, 0u);
  // Reuse must keep being generated during the whole run (Fig. 9): the
  // creator ids of reuse events span a wide range of the task id space.
  ASSERT_FALSE(run.atm.reuse_creators.empty());
  const auto [min_it, max_it] = std::minmax_element(run.atm.reuse_creators.begin(),
                                                    run.atm.reuse_creators.end());
  EXPECT_GT(*max_it - *min_it, run.counters.submitted / 4);
}

TEST(Redundancy, KmeansHasNoExactReuseButApproximates) {
  // "The centers change in all the iterations, preventing exact
  // memoization" — yet Dynamic ATM approximates once clusters converge.
  const auto app = make_app("kmeans", Preset::Test);
  const auto exact = app->run({.threads = 2, .mode = AtmMode::Static});
  EXPECT_EQ(exact.atm.tht_hits, 0u);  // no exact twin ever
  const auto approx = app->run({.threads = 2, .mode = AtmMode::Dynamic});
  EXPECT_GT(approx.atm.tht_hits, 0u);  // approximation unlocks reuse
  EXPECT_LT(approx.final_p, 0.01);     // with a tiny sampled fraction
}

TEST(Redundancy, SwaptionsExactDupesFoundByStatic) {
  SwaptionsParams params = SwaptionsParams::preset(Preset::Test);
  const SwaptionsApp app(params);
  const auto run = app.run({.threads = 1, .mode = AtmMode::Static});
  // Every byte-identical replica (and only those) hits exactly.
  EXPECT_EQ(run.counters.memoized + run.counters.deferred, params.exact_dupes);
}

TEST(Redundancy, SwaptionsNearDupesNeedApproximation) {
  // The perturbed records differ in low-order mantissa bytes only: Static
  // ATM cannot reuse them, Dynamic ATM (type-aware, p < 1) can.
  SwaptionsParams params = SwaptionsParams::preset(Preset::Test);
  const SwaptionsApp app(params);
  const auto st = app.run({.threads = 1, .mode = AtmMode::Static});
  const auto dy = app.run({.threads = 1, .mode = AtmMode::Dynamic});
  EXPECT_GT(dy.atm.tht_hits + dy.atm.training_hits,
            st.counters.memoized + st.counters.deferred)
      << "dynamic must find strictly more reuse than the exact dupes";
}

TEST(Redundancy, SwaptionsPerturbedPricesAreClose) {
  // tau of a near-duplicate approximation stays far below tau_max = 20%.
  SwaptionsParams params = SwaptionsParams::preset(Preset::Test);
  const SwaptionsApp app(params);
  const auto off = app.run({.threads = 1, .mode = AtmMode::Off});
  const auto dy = app.run({.threads = 1, .mode = AtmMode::Dynamic});
  EXPECT_LT(app.program_error(off, dy), 0.04);  // paper: -3.2% worst case
}

TEST(Redundancy, LuPooledPatternsCreateRepeatedTriples) {
  const auto app = make_app("lu", Preset::Bench);
  const auto run = app->run({.threads = 1, .mode = AtmMode::Static});
  EXPECT_GT(run.atm.tht_hits + run.atm.ikt_hits, 0u)
      << "pooled block contents must produce identical bmod triples";
}

TEST(Redundancy, JacobiBlacklistIdentifiesUnstableOutputs) {
  // "A reduced set of task output pointers is responsible for this
  // instability, which is identified by dynamic ATM in the training phase."
  const auto app = make_app("jacobi", Preset::Bench);
  const auto run = app->run({.threads = 2, .mode = AtmMode::Dynamic});
  // Bounded: a reduced set, not a wholesale rejection of the grid.
  EXPECT_LT(run.blacklist_size, 40u);
  // And accuracy stays bounded thanks to it.
  const auto off = app->run({.threads = 2, .mode = AtmMode::Off});
  EXPECT_LT(app->program_error(off, run), 0.05);
}

TEST(Redundancy, DynamicChoosesSmallerPForLargerInputs) {
  // The stencil tasks (38 KB inputs) settle at a much smaller p than the
  // tiny swaption records (384 B): the selection is about absolute sampled
  // bytes, which the adaptive algorithm discovers by itself.
  const auto gs = make_app("gs", Preset::Bench);
  const auto sw = make_app("swaptions", Preset::Bench);
  const auto gs_run = gs->run({.threads = 2, .mode = AtmMode::Dynamic});
  const auto sw_run = sw->run({.threads = 2, .mode = AtmMode::Dynamic});
  EXPECT_LT(gs_run.final_p, sw_run.final_p);
}

}  // namespace
}  // namespace atm::apps

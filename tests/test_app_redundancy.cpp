// Tests that the synthetic workload generators reproduce the redundancy
// structure the paper's §V-D attributes to each benchmark — the property
// every speedup in Figs. 3-6 depends on. These tests pin the *source* of
// reuse, not just its amount.
#include <gtest/gtest.h>

#include <span>

#include "apps/app_registry.hpp"
#include "apps/blackscholes.hpp"
#include "apps/jacobi.hpp"
#include "apps/kmeans.hpp"
#include "apps/stencil_common.hpp"
#include "apps/swaptions.hpp"
#include "atm/error_metric.hpp"

namespace atm::apps {
namespace {

TEST(Redundancy, BlackscholesInputReplicationYieldsExactReuse) {
  // "Embarrassingly parallel algorithms such as Blackscholes have their
  // redundancy in the program's inputs."
  BlackscholesParams params = BlackscholesParams::preset(Preset::Test);
  const BlackscholesApp app(params);
  const auto run = app.run({.threads = 2, .mode = AtmMode::Static});
  // 1 iteration prices every distinct block once; later iterations reuse
  // everything: overall reuse must comfortably exceed the 1-iter level.
  const double reuse = run.reuse_fraction();
  EXPECT_GT(reuse, 0.5);
  EXPECT_LT(run.counters.executed, run.counters.submitted);
}

TEST(Redundancy, BlackscholesOneIterationReuseIsHalf) {
  // With distinct = num/2 and aligned blocks, exactly half the first
  // iteration's blocks are replicas (the paper's 1-iter reuse is 50%).
  BlackscholesParams params = BlackscholesParams::preset(Preset::Test);
  params.iterations = 1;
  const BlackscholesApp app(params);
  const auto run = app.run({.threads = 1, .mode = AtmMode::Static});
  EXPECT_NEAR(run.reuse_fraction(), 0.5, 0.05);
}

TEST(Redundancy, StencilConvergenceGeneratesReuseOverTime) {
  // "The temperature near the walls converges faster than in the interior"
  // — interior blocks with repeated patterns memoize while the heat front
  // has not reached them.
  const auto app = make_app("gauss-seidel", Preset::Bench);
  const auto run = app->run({.threads = 2, .mode = AtmMode::Static});
  EXPECT_GT(run.atm.tht_hits, 0u);
  // Reuse must keep being generated during the whole run (Fig. 9): the
  // creator ids of reuse events span a wide range of the task id space.
  ASSERT_FALSE(run.atm.reuse_creators.empty());
  const auto [min_it, max_it] = std::minmax_element(run.atm.reuse_creators.begin(),
                                                    run.atm.reuse_creators.end());
  EXPECT_GT(*max_it - *min_it, run.counters.submitted / 4);
}

TEST(Redundancy, KmeansHasNoExactReuseButApproximates) {
  // "The centers change in all the iterations, preventing exact
  // memoization" — yet Dynamic ATM approximates once clusters converge.
  const auto app = make_app("kmeans", Preset::Test);
  const auto exact = app->run({.threads = 2, .mode = AtmMode::Static});
  EXPECT_EQ(exact.atm.tht_hits, 0u);  // no exact twin ever
  const auto approx = app->run({.threads = 2, .mode = AtmMode::Dynamic});
  EXPECT_GT(approx.atm.tht_hits, 0u);  // approximation unlocks reuse
  EXPECT_LT(approx.final_p, 0.01);     // with a tiny sampled fraction
}

TEST(Redundancy, SwaptionsExactDupesFoundByStatic) {
  SwaptionsParams params = SwaptionsParams::preset(Preset::Test);
  const SwaptionsApp app(params);
  const auto run = app.run({.threads = 1, .mode = AtmMode::Static});
  // Every byte-identical replica (and only those) hits exactly.
  EXPECT_EQ(run.counters.memoized + run.counters.deferred, params.exact_dupes);
}

TEST(Redundancy, SwaptionsNearDupesNeedApproximation) {
  // The perturbed records differ in low-order mantissa bytes only: Static
  // ATM cannot reuse them, Dynamic ATM (type-aware, p < 1) can.
  SwaptionsParams params = SwaptionsParams::preset(Preset::Test);
  const SwaptionsApp app(params);
  const auto st = app.run({.threads = 1, .mode = AtmMode::Static});
  const auto dy = app.run({.threads = 1, .mode = AtmMode::Dynamic});
  EXPECT_GT(dy.atm.tht_hits + dy.atm.training_hits,
            st.counters.memoized + st.counters.deferred)
      << "dynamic must find strictly more reuse than the exact dupes";
}

TEST(Redundancy, SwaptionsPerturbedPricesAreClose) {
  // tau of a near-duplicate approximation stays far below tau_max = 20%.
  SwaptionsParams params = SwaptionsParams::preset(Preset::Test);
  const SwaptionsApp app(params);
  const auto off = app.run({.threads = 1, .mode = AtmMode::Off});
  const auto dy = app.run({.threads = 1, .mode = AtmMode::Dynamic});
  EXPECT_LT(app.program_error(off, dy), 0.04);  // paper: -3.2% worst case
}

TEST(Redundancy, LuPooledPatternsCreateRepeatedTriples) {
  const auto app = make_app("lu", Preset::Bench);
  const auto run = app->run({.threads = 1, .mode = AtmMode::Static});
  EXPECT_GT(run.atm.tht_hits + run.atm.ikt_hits, 0u)
      << "pooled block contents must produce identical bmod triples";
}

TEST(Redundancy, JacobiBlacklistIdentifiesUnstableOutputs) {
  // "A reduced set of task output pointers is responsible for this
  // instability, which is identified by dynamic ATM in the training phase."
  const auto app = make_app("jacobi", Preset::Bench);
  const auto run = app->run({.threads = 2, .mode = AtmMode::Dynamic});
  // Bounded: a reduced set, not a wholesale rejection of the grid.
  EXPECT_LT(run.blacklist_size, 40u);
  // And accuracy stays bounded thanks to it.
  const auto off = app->run({.threads = 2, .mode = AtmMode::Off});
  EXPECT_LT(app->program_error(off, run), 0.05);
}

// --- tolerance-matching acceptance (noisy-sensor demos) --------------------
// The ISSUE-6 acceptance criterion: with the per-app epsilon preset, a
// noisy-input run reports >= 50% memo reuse on the memoized type where exact
// keys report < 5%, and the measured max relative output error against an
// exact baseline over the *same* jittered inputs stays within the app's
// configured bound.

TEST(ToleranceAcceptance, JacobiNoisyFramesReuseWithBoundedError) {
  StencilParams params = StencilParams::preset(Preset::Test);
  const JacobiApp app(params);
  const auto stencil_tasks = static_cast<double>(
      params.grid_blocks * params.grid_blocks * params.iterations);

  RunConfig config{.threads = 2, .mode = AtmMode::Static};
  config.input_noise = 5e-7;  // per-frame sensor jitter, fresh every iteration

  // Exact keys: every jittered frame hashes differently — no reuse.
  const RunResult exact = app.run(config);
  EXPECT_LT(static_cast<double>(exact.atm.tht_hits) / stencil_tasks, 0.05);

  // Tolerance keys at the app preset + neighbor probes: frames match.
  config.tolerance_rel = app.tolerance_preset();
  config.tolerance_probes = 4;
  const RunResult tol = app.run(config);
  // reuse_fraction() would be diluted by the non-memoizable halo-copy
  // tasks; measure reuse of the memoized stencil type directly.
  EXPECT_GE(static_cast<double>(tol.atm.tht_hits) / stencil_tasks, 0.5);
  EXPECT_GT(tol.atm.tolerance_hits, 0u);

  // Error bound: an exact (mode Off) run over the same deterministic noisy
  // frames is the correctness reference.
  RunConfig off = config;
  off.mode = AtmMode::Off;
  const RunResult baseline = app.run(off);
  const double max_rel = chebyshev_relative_error(
      std::span<const double>(baseline.output), std::span<const double>(tol.output));
  EXPECT_LE(max_rel, app.tolerance_error_bound());
  EXPECT_GT(app.tolerance_error_bound(), 0.0);
}

TEST(ToleranceAcceptance, BlackscholesNoisyPortfolioReuseWithBoundedError) {
  BlackscholesParams params = BlackscholesParams::preset(Preset::Test);
  const BlackscholesApp app(params);
  const auto bs_tasks = static_cast<double>(
      (params.num_options / params.block_size) * params.iterations);

  RunConfig config{.threads = 2, .mode = AtmMode::Static};
  config.input_noise = 2e-7;

  const RunResult exact = app.run(config);
  EXPECT_LT(static_cast<double>(exact.atm.tht_hits) / bs_tasks, 0.05);

  config.tolerance_rel = app.tolerance_preset();
  config.tolerance_probes = 4;
  const RunResult tol = app.run(config);
  EXPECT_GE(static_cast<double>(tol.atm.tht_hits) / bs_tasks, 0.5);
  EXPECT_GT(tol.atm.tolerance_hits, 0u);

  RunConfig off = config;
  off.mode = AtmMode::Off;
  const RunResult baseline = app.run(off);
  const double max_rel = chebyshev_relative_error(
      std::span<const double>(baseline.output), std::span<const double>(tol.output));
  EXPECT_LE(max_rel, app.tolerance_error_bound());
}

TEST(ToleranceAcceptance, ProbesRecoverNearBoundaryFrames) {
  // Same noisy blackscholes run with and without neighbor probes: probes
  // can only add hits, and the probe-hit counter attributes them.
  BlackscholesParams params = BlackscholesParams::preset(Preset::Test);
  const BlackscholesApp app(params);
  RunConfig config{.threads = 2, .mode = AtmMode::Static};
  config.input_noise = 2e-7;
  config.tolerance_rel = app.tolerance_preset();

  config.tolerance_probes = 0;
  const RunResult no_probes = app.run(config);
  EXPECT_EQ(no_probes.atm.probe_hits, 0u);

  config.tolerance_probes = 4;
  const RunResult probes = app.run(config);
  EXPECT_GE(probes.atm.tht_hits, no_probes.atm.tht_hits);
}

TEST(Redundancy, DynamicChoosesSmallerPForLargerInputs) {
  // The stencil tasks (38 KB inputs) settle at a much smaller p than the
  // tiny swaption records (384 B): the selection is about absolute sampled
  // bytes, which the adaptive algorithm discovers by itself.
  const auto gs = make_app("gs", Preset::Bench);
  const auto sw = make_app("swaptions", Preset::Bench);
  const auto gs_run = gs->run({.threads = 2, .mode = AtmMode::Dynamic});
  const auto sw_run = sw->run({.threads = 2, .mode = AtmMode::Dynamic});
  EXPECT_LT(gs_run.final_p, sw_run.final_p);
}

}  // namespace
}  // namespace atm::apps

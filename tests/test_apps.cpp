// Application-level tests (Table I benchmarks, Test preset): determinism
// across thread counts, Static-ATM bit-exactness, Dynamic-ATM sanity,
// kernel-level correctness checks, and metadata used by the harnesses.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/app_registry.hpp"
#include "apps/blackscholes.hpp"
#include "apps/sparse_lu.hpp"
#include "apps/stencil_common.hpp"
#include "apps/swaptions.hpp"

namespace atm::apps {
namespace {

const char* kAppNames[] = {"blackscholes", "gauss-seidel", "jacobi",
                           "kmeans",       "lu",           "swaptions"};

class PerApp : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<App> app() { return make_app(GetParam(), Preset::Test); }
};

TEST_P(PerApp, MetadataPopulated) {
  auto a = app();
  ASSERT_NE(a, nullptr);
  EXPECT_FALSE(a->name().empty());
  EXPECT_FALSE(a->domain().empty());
  EXPECT_FALSE(a->program_input_desc().empty());
  EXPECT_FALSE(a->task_input_types().empty());
  EXPECT_FALSE(a->memoized_task_type().empty());
  EXPECT_FALSE(a->correctness_target().empty());
  EXPECT_GT(a->atm_params().l_training, 0u);
  EXPECT_GT(a->atm_params().tau_max, 0.0);
}

TEST_P(PerApp, DeterministicAcrossThreadCounts) {
  auto a = app();
  const auto r1 = a->run({.threads = 1, .mode = AtmMode::Off});
  const auto r2 = a->run({.threads = 2, .mode = AtmMode::Off});
  ASSERT_EQ(r1.output.size(), r2.output.size());
  EXPECT_EQ(r1.output, r2.output);  // bit-exact dataflow execution
}

TEST_P(PerApp, StaticAtmIsBitExact) {
  auto a = app();
  const auto off = a->run({.threads = 2, .mode = AtmMode::Off});
  const auto st = a->run({.threads = 2, .mode = AtmMode::Static});
  ASSERT_EQ(off.output.size(), st.output.size());
  EXPECT_EQ(off.output, st.output);  // "static ATM always achieves 100%"
  EXPECT_EQ(a->program_error(off, st), st.app_specific_error >= 0
                                           ? st.app_specific_error
                                           : 0.0);
}

TEST_P(PerApp, CountersAreConsistent) {
  auto a = app();
  const auto r = a->run({.threads = 2, .mode = AtmMode::Static});
  EXPECT_EQ(r.counters.submitted,
            r.counters.executed + r.counters.memoized + r.counters.deferred);
  EXPECT_GE(r.reuse_fraction(), 0.0);
  EXPECT_LE(r.reuse_fraction(), 1.0);
  EXPECT_GT(r.task_input_bytes, 0u);
  EXPECT_GT(r.app_memory_bytes, 0u);
  EXPECT_GT(r.atm_memory_bytes, 0u);
}

TEST_P(PerApp, DynamicAtmRunsWithinPRange) {
  auto a = app();
  const auto dy = a->run({.threads = 2, .mode = AtmMode::Dynamic});
  EXPECT_GE(dy.final_p, kMinP);
  EXPECT_LE(dy.final_p, 1.0);
  // p history is a doubling chain starting at kMinP.
  for (std::size_t i = 1; i < dy.p_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(dy.p_history[i], std::min(1.0, dy.p_history[i - 1] * 2.0));
  }
}

TEST_P(PerApp, OracleFixedPFullInputsMatchesStatic) {
  auto a = app();
  const auto st = a->run({.threads = 2, .mode = AtmMode::Static});
  const auto oracle = a->run({.threads = 2, .mode = AtmMode::FixedP, .fixed_p = 1.0});
  EXPECT_EQ(st.output, oracle.output);  // both hash all input bytes
}

TEST_P(PerApp, TracingProducesLaneSummaries) {
  auto a = app();
  const auto r = a->run({.threads = 2, .mode = AtmMode::Static, .tracing = true});
  ASSERT_EQ(r.lane_summaries.size(), 3u);  // 2 workers + master
  std::uint64_t exec_events = 0;
  for (const auto& lane : r.lane_summaries) {
    exec_events += lane.event_count[static_cast<int>(rt::TraceState::TaskExec)];
  }
  EXPECT_EQ(exec_events, r.counters.executed);
  EXPECT_FALSE(r.ascii_timeline.empty());
}

INSTANTIATE_TEST_SUITE_P(AllApps, PerApp, ::testing::ValuesIn(kAppNames));

TEST(AppRegistry, MakeAllReturnsSixInTableOrder) {
  const auto apps = make_all_apps(Preset::Test);
  ASSERT_EQ(apps.size(), 6u);
  EXPECT_EQ(apps[0]->name(), "Blackscholes");
  EXPECT_EQ(apps[1]->name(), "Gauss-Seidel");
  EXPECT_EQ(apps[2]->name(), "Jacobi");
  EXPECT_EQ(apps[3]->name(), "Kmeans");
  EXPECT_EQ(apps[4]->name(), "LU");
  EXPECT_EQ(apps[5]->name(), "Swaptions");
}

TEST(AppRegistry, UnknownNameIsNull) {
  EXPECT_EQ(make_app("nope", Preset::Test), nullptr);
}

TEST(AppRegistry, JacobiTrainsLongerThanGs) {
  const auto gs = make_app("gs", Preset::Paper);
  const auto jacobi = make_app("jacobi", Preset::Paper);
  EXPECT_EQ(gs->atm_params().l_training, 100u);      // Table II
  EXPECT_EQ(jacobi->atm_params().l_training, 150u);  // Table II
}

// --- kernel-level checks ----------------------------------------------------

TEST(Blackscholes, CallPutParity) {
  const float s = 100.0f, k = 95.0f, r = 0.05f, v = 0.3f, t = 1.0f;
  const float call = black_scholes_price(s, k, r, v, t, 0.0f);
  const float put = black_scholes_price(s, k, r, v, t, 1.0f);
  // C - P = S - K e^{-rT}
  const float rhs = s - k * std::exp(-r * t);
  EXPECT_NEAR(call - put, rhs, 0.05f);
  EXPECT_GT(call, 0.0f);
  EXPECT_GT(put, 0.0f);
}

TEST(Blackscholes, DeeperInTheMoneyCostsMore) {
  const float call_itm = black_scholes_price(120.0f, 100.0f, 0.05f, 0.2f, 1.0f, 0.0f);
  const float call_otm = black_scholes_price(80.0f, 100.0f, 0.05f, 0.2f, 1.0f, 0.0f);
  EXPECT_GT(call_itm, call_otm);
}

TEST(SparseLuKernels, Lu0FactorsDiagonallyDominantBlock) {
  constexpr std::size_t b = 8;
  std::vector<float> a(b * b);
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t j = 0; j < b; ++j) {
      a[i * b + j] = (i == j) ? 20.0f : 1.0f / static_cast<float>(1 + i + j);
    }
  }
  auto lu = a;
  lu0_kernel(lu.data(), b);
  // Rebuild A from L (unit lower) * U (upper) and compare.
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t j = 0; j < b; ++j) {
      double sum = 0;
      for (std::size_t k = 0; k <= std::min(i, j); ++k) {
        const double l = (k == i) ? 1.0 : lu[i * b + k];
        sum += l * lu[k * b + j] * ((k <= j) ? 1.0 : 0.0);
      }
      EXPECT_NEAR(sum, a[i * b + j], 1e-3) << i << "," << j;
    }
  }
}

TEST(SparseLuKernels, BmodSubtractsProduct) {
  constexpr std::size_t b = 4;
  std::vector<float> row(b * b, 1.0f), col(b * b, 2.0f), inner(b * b, 100.0f);
  bmod_kernel(row.data(), col.data(), inner.data(), b);
  // inner -= row*col: each element of row*col = sum_k 1*2 = 8.
  for (float v : inner) EXPECT_FLOAT_EQ(v, 92.0f);
}

TEST(Swaptions, PriceDeterministic) {
  std::vector<double> record(kSwaptionRecordDoubles, 0.0);
  record[0] = 0.01;   // strike deep in the money for a payer
  record[1] = 5.0;    // maturity
  record[2] = 10.0;   // tenor
  record[3] = 100.0;  // notional
  record[4] = 1.0;    // payer
  for (std::size_t i = 5; i < 37; ++i) record[i] = 0.04;
  for (std::size_t i = 37; i < 43; ++i) record[i] = 0.2;
  const double p1 = price_swaption(record.data(), 42, 500, 20);
  const double p2 = price_swaption(record.data(), 42, 500, 20);
  EXPECT_EQ(p1, p2);
  const double p3 = price_swaption(record.data(), 43, 500, 20);
  EXPECT_NE(p1, p3);  // the seed is part of the task input
}

TEST(Swaptions, SmoothInParameters) {
  std::vector<double> record(kSwaptionRecordDoubles, 0.0);
  record[0] = 0.01;
  record[1] = 5.0;
  record[2] = 10.0;
  record[3] = 100.0;
  record[4] = 1.0;
  for (std::size_t i = 5; i < 37; ++i) record[i] = 0.04;
  for (std::size_t i = 37; i < 43; ++i) record[i] = 0.2;
  const double base = price_swaption(record.data(), 42, 2000, 20);
  auto nearby = record;
  for (auto& v : nearby) v *= 1.0 + 1e-12;
  nearby[2] = record[2];  // keep integral fields exact
  nearby[4] = record[4];
  const double perturbed = price_swaption(nearby.data(), 42, 2000, 20);
  EXPECT_NEAR(perturbed, base, std::abs(base) * 1e-6 + 1e-9);
}

TEST(Stencil, GridPatternsRepeatAcrossBlocks) {
  BlockedGrid grid(4, 8);
  grid.initialize(/*seed=*/1, /*patterns=*/4, /*wall_temp=*/100.0f);
  // Pattern index = (bi*gb + bj) % 4: blocks (0,0) and (1,0) share pattern 0.
  const float* a = grid.block(0, 0);
  const float* b = grid.block(1, 0);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(a[i], b[i]);
  // Blocks with different pattern indexes differ.
  const float* c = grid.block(0, 1);
  bool any_diff = false;
  for (std::size_t i = 0; i < 64; ++i) any_diff |= a[i] != c[i];
  EXPECT_TRUE(any_diff);
}

TEST(Stencil, WallHalosCarryEmissionTemperature) {
  BlockedGrid grid(3, 4);
  grid.initialize(1, 2, 75.0f);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(grid.halo_top(0, 1)[k], 75.0f);
    EXPECT_EQ(grid.halo_bottom(2, 1)[k], 75.0f);
    EXPECT_EQ(grid.halo_left(1, 0)[k], 75.0f);
    EXPECT_EQ(grid.halo_right(1, 2)[k], 75.0f);
    EXPECT_EQ(grid.halo_top(1, 1)[k], 0.0f);  // interior halo starts cold
  }
}

TEST(Stencil, SweepConservesConstantField) {
  // A constant field with matching halos is a fixed point of the stencil.
  constexpr std::size_t bd = 6;
  std::vector<float> block(bd * bd, 3.0f);
  std::vector<float> halo(bd, 3.0f);
  stencil_sweep_inplace(block.data(), halo.data(), halo.data(), halo.data(),
                        halo.data(), bd, 3);
  for (float v : block) EXPECT_FLOAT_EQ(v, 3.0f);
}

TEST(Stencil, JacobiMatchesManualAverage) {
  constexpr std::size_t bd = 2;
  // src = [[1,2],[3,4]], halos all zero.
  std::vector<float> src{1, 2, 3, 4};
  std::vector<float> dst(4, -1.0f);
  std::vector<float> zero(bd, 0.0f);
  stencil_sweep_jacobi(src.data(), zero.data(), zero.data(), zero.data(), zero.data(),
                       dst.data(), bd, 1);
  EXPECT_FLOAT_EQ(dst[0], 0.25f * (0 + 3 + 0 + 2));
  EXPECT_FLOAT_EQ(dst[1], 0.25f * (0 + 4 + 1 + 0));
  EXPECT_FLOAT_EQ(dst[2], 0.25f * (1 + 0 + 0 + 4));
  EXPECT_FLOAT_EQ(dst[3], 0.25f * (2 + 0 + 3 + 0));
}

TEST(Stencil, CopyEdgeHelpers) {
  constexpr std::size_t bd = 3;
  std::vector<float> block{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> halo(3);
  copy_edge_row(block.data(), 2, halo.data(), bd);
  EXPECT_EQ(halo, (std::vector<float>{7, 8, 9}));
  copy_edge_col(block.data(), 0, halo.data(), bd);
  EXPECT_EQ(halo, (std::vector<float>{1, 4, 7}));
}

TEST(SparseLu, ResidualSmallWithoutAtm) {
  const auto app = make_app("lu", Preset::Test);
  const auto r = app->run({.threads = 2, .mode = AtmMode::Off});
  ASSERT_GE(r.app_specific_error, 0.0);
  EXPECT_LT(r.app_specific_error, 1e-8);  // numerically exact factorization
}

}  // namespace
}  // namespace atm::apps

// Two-level dependence index under concurrency (a TSan/ASan CI target):
// exact-table hits, tree fallbacks, prune sweeps and eager retirement all
// racing across shards. The unit semantics live in test_dependency_tracker;
// this binary drives the index through the full runtime where segments are
// inserted, exact-hit, pruned and their tasks retired concurrently — a
// stale index entry or a mis-pruned segment shows up as a lost/extra
// dependence edge (broken write order) or a sanitizer hit on a recycled
// record.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"

namespace atm::rt {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

// Several submitter threads stream concurrently, each over its own cell set
// (exact-index traffic after the first round) — while workers retire
// records eagerly. Per-cell write logs must equal the owner's submission
// order: a stale exact entry would route a dependence to a dead segment and
// break the serialization.
TEST(DepIndexStress, ConcurrentExactHitsSerializePerCellChains) {
  constexpr int kSubmitters = 4;
  constexpr int kCellsPerSubmitter = 64;
  const int kTasksPerSubmitter = kSanitized ? 4'000 : 20'000;

  Runtime rt({.num_threads = 2});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});

  struct Cell {
    int value = 0;
    std::mutex mu;
    std::vector<int> log;
  };
  std::vector<std::vector<Cell>> cells(kSubmitters);
  for (auto& v : cells) v = std::vector<Cell>(kCellsPerSubmitter);

  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(s) * 7919 + 1);
      for (int i = 0; i < kTasksPerSubmitter; ++i) {
        const int c = static_cast<int>(rng() % kCellsPerSubmitter);
        Cell* cell = &cells[s][c];
        rt.submit(type,
                  [cell, i] {
                    std::lock_guard<std::mutex> lock(cell->mu);
                    cell->log.push_back(i);
                  },
                  {inout(&cell->value, 1)});
      }
    });
  }
  for (auto& t : submitters) t.join();
  rt.taskwait();

  for (int s = 0; s < kSubmitters; ++s) {
    for (int c = 0; c < kCellsPerSubmitter; ++c) {
      const auto& log = cells[s][c].log;
      ASSERT_TRUE(std::is_sorted(log.begin(), log.end()))
          << "submitter " << s << " cell " << c << " writes out of order";
      ASSERT_TRUE(std::adjacent_find(log.begin(), log.end()) == log.end())
          << "submitter " << s << " cell " << c << " duplicate write";
    }
  }
  EXPECT_EQ(rt.counters().executed,
            static_cast<std::uint64_t>(kSubmitters) * kTasksPerSubmitter);
  EXPECT_EQ(rt.arena_stats().live_slots(), 0u);
  EXPECT_GT(rt.dep_index_stats().exact_hits, rt.dep_index_stats().tree_fallbacks);
}

// Insert-then-prune coherence: fresh-address streams big enough to trigger
// the prune sweep, racing task retirement on the workers, interleaved with
// exact-hit traffic on a recycled cell set. Any index entry outliving its
// pruned segment is a dangling Segment* — ASan food — and any wrongly
// pruned live segment loses an edge (serialization break on the cells).
TEST(DepIndexStress, PruneUnderConcurrentRetirementStaysCoherent) {
  const std::size_t kFresh = kSanitized ? 120'000 : 600'000;
  constexpr std::size_t kCells = 512;

  Runtime rt({.num_threads = 2});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  std::vector<std::uint8_t> heap(kFresh, 0);
  std::vector<int> cells(kCells, 0);

  std::thread fresh_submitter([&] {
    for (std::size_t i = 0; i < kFresh; ++i) {
      std::uint8_t* p = &heap[i];
      rt.submit(type, [p] { *p = 1; }, {out(p, 1)});
    }
  });
  std::thread cycling_submitter([&] {
    const std::size_t rounds = kFresh / 8;
    for (std::size_t i = 0; i < rounds; ++i) {
      int* cell = &cells[i % kCells];
      rt.submit(type, [cell] { *cell += 1; }, {inout(cell, 1)});
    }
  });
  fresh_submitter.join();
  cycling_submitter.join();
  rt.taskwait();

  for (std::uint8_t v : heap) ASSERT_EQ(v, 1);
  const std::size_t rounds = kFresh / 8;
  for (std::size_t c = 0; c < kCells; ++c) {
    const int expected = static_cast<int>(rounds / kCells + (c < rounds % kCells ? 1 : 0));
    ASSERT_EQ(cells[c], expected) << "cell " << c;
  }
  const DepIndexStats dep = rt.dep_index_stats();
  if (!kSanitized) {
    EXPECT_GT(dep.prune_scans, 0u) << "the fresh stream never triggered a prune";
  }
  EXPECT_GT(dep.exact_hits, 0u);
  EXPECT_EQ(rt.arena_stats().live_slots(), 0u);
}

// Barrier retention vs prune vs re-registration, repeatedly: iterate waves
// over a fixed footprint with helping barriers in between, asserting the
// geometry count stays flat and hits keep dominating — then mix in a
// one-shot fresh spike and check the next barrier stays correct.
TEST(DepIndexStress, RetainedGeometryStableAcrossWaves) {
  constexpr int kWaves = 12;
  constexpr std::size_t kCells = 1024;
  Runtime rt({.num_threads = 2, .help_taskwait = true});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  std::vector<double> cells(kCells, 0.0);

  std::size_t settled_segments = 0;
  for (int w = 0; w < kWaves; ++w) {
    for (std::size_t i = 0; i < kCells; ++i) {
      rt.submit(type, [&, i] { cells[i] += 1.0; }, {inout(&cells[i], 1)});
    }
    rt.taskwait();
    const std::size_t segs = rt.tracker_segment_count();
    if (w == 0) {
      settled_segments = segs;
    } else {
      ASSERT_EQ(segs, settled_segments) << "geometry churned at wave " << w;
    }
  }
  for (double v : cells) ASSERT_EQ(v, static_cast<double>(kWaves));

  // One-shot spike of fresh addresses, then back to the iterative pattern.
  // The spike may push its shard past the retention cap, clearing whatever
  // geometry shares that shard (the cap is a leak guard, not a promise) —
  // but correctness must hold immediately and the exact hits must be fully
  // re-established one wave later.
  std::vector<std::uint8_t> spike(50'000, 0);
  for (auto& b : spike) {
    rt.submit(type, [&b] { b = 1; }, {out(&b, 1)});
  }
  rt.taskwait();
  for (int w = 0; w < 2; ++w) {
    for (std::size_t i = 0; i < kCells; ++i) {
      rt.submit(type, [&, i] { cells[i] += 1.0; }, {inout(&cells[i], 1)});
    }
    rt.taskwait();
  }
  const auto hits_before = rt.dep_index_stats().exact_hits;
  for (std::size_t i = 0; i < kCells; ++i) {
    rt.submit(type, [&, i] { cells[i] += 1.0; }, {inout(&cells[i], 1)});
  }
  rt.taskwait();
  EXPECT_EQ(rt.dep_index_stats().exact_hits - hits_before, kCells)
      << "exact hits not re-established after the spike";
  for (double v : cells) ASSERT_EQ(v, static_cast<double>(kWaves) + 3.0);
}

}  // namespace
}  // namespace atm::rt

// Tests for the pre-faulted recycling buffer arena backing THT snapshots.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "common/buffer_arena.hpp"

namespace atm {
namespace {

TEST(BufferArena, AcquireNonNullAndAligned) {
  BufferArena arena(1 << 16);
  for (std::size_t n : {1u, 7u, 8u, 63u, 4096u}) {
    std::uint8_t* p = arena.acquire(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
    p[0] = 1;         // writable
    p[n - 1] = 2;     // full extent writable
  }
}

TEST(BufferArena, ZeroBytesIsNull) {
  BufferArena arena;
  EXPECT_EQ(arena.acquire(0), nullptr);
}

TEST(BufferArena, ReleaseRecyclesSameSize) {
  BufferArena arena(1 << 16);
  std::uint8_t* a = arena.acquire(1024);
  arena.release(a, 1024);
  std::uint8_t* b = arena.acquire(1024);
  EXPECT_EQ(a, b);  // freelist hit
}

TEST(BufferArena, DifferentSizesDoNotAlias) {
  BufferArena arena(1 << 16);
  std::uint8_t* a = arena.acquire(100);
  std::uint8_t* b = arena.acquire(100);
  EXPECT_NE(a, b);
}

TEST(BufferArena, LargeRequestGetsOwnSlab) {
  BufferArena arena(1 << 12);  // 4 KiB slabs
  std::uint8_t* big = arena.acquire(1 << 16);
  ASSERT_NE(big, nullptr);
  big[(1 << 16) - 1] = 1;
  EXPECT_GE(arena.reserved_bytes(), std::size_t{1} << 16);
}

TEST(BufferArena, InitialReservePrefaults) {
  BufferArena arena(1 << 16, 1 << 20);
  EXPECT_GE(arena.reserved_bytes(), std::size_t{1} << 20);
  EXPECT_EQ(arena.outstanding_bytes(), 0u);
}

TEST(BufferArena, OutstandingAccounting) {
  BufferArena arena(1 << 16);
  std::uint8_t* a = arena.acquire(100);
  EXPECT_EQ(arena.outstanding_bytes(), 104u);  // 8-byte aligned
  arena.release(a, 100);
  EXPECT_EQ(arena.outstanding_bytes(), 0u);
}

TEST(BufferArena, SlabGrowth) {
  BufferArena arena(4096);
  std::vector<std::uint8_t*> ptrs;
  std::set<std::uint8_t*> unique;
  for (int i = 0; i < 100; ++i) {
    std::uint8_t* p = arena.acquire(1000);
    ptrs.push_back(p);
    unique.insert(p);
  }
  EXPECT_EQ(unique.size(), 100u);  // all distinct while outstanding
  EXPECT_GE(arena.reserved_bytes(), 100u * 1000u);
}

TEST(BufferArena, ConcurrentAcquireRelease) {
  BufferArena arena(1 << 20);
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t n = 64 + 8 * ((t + i) % 16);
        std::uint8_t* p = arena.acquire(n);
        p[0] = static_cast<std::uint8_t>(t);
        p[n - 1] = static_cast<std::uint8_t>(i);
        arena.release(p, n);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(arena.outstanding_bytes(), 0u);
}

}  // namespace
}  // namespace atm

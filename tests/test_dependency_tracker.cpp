// Tests for the interval-splitting dependence tracker: OmpSs semantics
// (RAW, WAR, WAW), partial-overlap splitting, the two-level exact-interval
// index (O(1) hits for re-submitted regions, coherent fallback on splits,
// prune/reset interplay), and randomized property tests checking that every
// conflicting pair of tasks is ordered by the reported dependence graph
// (possibly transitively) — including an exact-heavy block-aligned variant
// that keeps the hash table and the tree disagreeing if either goes stale.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <vector>

#include "runtime/dependency_tracker.hpp"

namespace atm::rt {
namespace {

class TrackerFixture : public ::testing::Test {
 protected:
  Task* make_task(std::vector<DataAccess> accesses) {
    auto t = std::make_unique<Task>();
    t->id = next_id_++;
    t->accesses = std::move(accesses);
    tasks_.push_back(std::move(t));
    return tasks_.back().get();
  }

  std::vector<Task*> deps_of(Task* t) {
    std::vector<Task*> deps;
    tracker_.register_task(*t, deps);
    return deps;
  }

  DependencyTracker tracker_;
  std::vector<std::unique_ptr<Task>> tasks_;
  TaskId next_id_ = 0;
  float buf_[1024] = {};
};

TEST_F(TrackerFixture, ReadAfterWrite) {
  Task* w = make_task({out(buf_, 100)});
  EXPECT_TRUE(deps_of(w).empty());
  Task* r = make_task({in(static_cast<const float*>(buf_), 100)});
  const auto deps = deps_of(r);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0], w);
}

TEST_F(TrackerFixture, WriteAfterRead) {
  Task* w0 = make_task({out(buf_, 100)});
  deps_of(w0);
  Task* r = make_task({in(static_cast<const float*>(buf_), 100)});
  deps_of(r);
  Task* w1 = make_task({out(buf_, 100)});
  const auto deps = deps_of(w1);
  // WAR on the reader and WAW on the previous writer.
  EXPECT_NE(std::find(deps.begin(), deps.end(), r), deps.end());
  EXPECT_NE(std::find(deps.begin(), deps.end(), w0), deps.end());
}

TEST_F(TrackerFixture, WriteAfterWrite) {
  Task* w0 = make_task({out(buf_, 100)});
  deps_of(w0);
  Task* w1 = make_task({out(buf_, 100)});
  const auto deps = deps_of(w1);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0], w0);
}

TEST_F(TrackerFixture, ReadersDoNotDependOnEachOther) {
  Task* w = make_task({out(buf_, 100)});
  deps_of(w);
  Task* r1 = make_task({in(static_cast<const float*>(buf_), 100)});
  Task* r2 = make_task({in(static_cast<const float*>(buf_), 100)});
  const auto d1 = deps_of(r1);
  const auto d2 = deps_of(r2);
  EXPECT_EQ(d1, std::vector<Task*>{w});
  EXPECT_EQ(d2, std::vector<Task*>{w});  // not on r1
}

TEST_F(TrackerFixture, DisjointRangesIndependent) {
  Task* a = make_task({out(buf_, 100)});
  deps_of(a);
  Task* b = make_task({out(buf_ + 100, 100)});
  EXPECT_TRUE(deps_of(b).empty());
}

TEST_F(TrackerFixture, PartialOverlapSplits) {
  Task* a = make_task({out(buf_, 100)});       // [0, 100)
  deps_of(a);
  Task* b = make_task({out(buf_ + 50, 100)});  // [50, 150): overlaps tail
  const auto deps = deps_of(b);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0], a);
  // A reader of the untouched prefix [0, 50) still depends on a only.
  Task* r = make_task({in(static_cast<const float*>(buf_), 50)});
  const auto rdeps = deps_of(r);
  ASSERT_EQ(rdeps.size(), 1u);
  EXPECT_EQ(rdeps[0], a);
  // A reader of [50, 100) depends on the newest writer b.
  Task* r2 = make_task({in(static_cast<const float*>(buf_) + 50, 50)});
  const auto r2deps = deps_of(r2);
  ASSERT_EQ(r2deps.size(), 1u);
  EXPECT_EQ(r2deps[0], b);
}

TEST_F(TrackerFixture, InOutActsAsBoth) {
  Task* w = make_task({out(buf_, 100)});
  deps_of(w);
  Task* io = make_task({inout(buf_, 100)});
  const auto deps = deps_of(io);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0], w);
  // A subsequent reader sees io as the last writer.
  Task* r = make_task({in(static_cast<const float*>(buf_), 100)});
  const auto rdeps = deps_of(r);
  ASSERT_EQ(rdeps.size(), 1u);
  EXPECT_EQ(rdeps[0], io);
}

TEST_F(TrackerFixture, SelfDependenciesSkipped) {
  Task* t = make_task({in(static_cast<const float*>(buf_), 100), out(buf_, 100)});
  EXPECT_TRUE(deps_of(t).empty());
}

TEST_F(TrackerFixture, NoDuplicateDeps) {
  Task* w = make_task({out(buf_, 100)});
  deps_of(w);
  // Reader touches two sub-ranges of w's segment: dep reported once.
  Task* r = make_task({in(static_cast<const float*>(buf_), 30),
                       in(static_cast<const float*>(buf_) + 40, 30)});
  EXPECT_EQ(deps_of(r).size(), 1u);
}

TEST_F(TrackerFixture, EmptyRangeIgnored) {
  Task* t = make_task({out(buf_, 0)});
  EXPECT_TRUE(deps_of(t).empty());
  EXPECT_EQ(tracker_.segment_count(), 0u);
}

TEST_F(TrackerFixture, ClearForgetsHistory) {
  Task* w = make_task({out(buf_, 100)});
  deps_of(w);
  tracker_.clear();
  Task* r = make_task({in(static_cast<const float*>(buf_), 100)});
  EXPECT_TRUE(deps_of(r).empty());
}

TEST_F(TrackerFixture, GapAndOverlapMix) {
  Task* a = make_task({out(buf_, 10)});         // [0,10)
  Task* b = make_task({out(buf_ + 20, 10)});    // [20,30)
  deps_of(a);
  deps_of(b);
  // c spans [0,30): depends on both, gap [10,20) is fresh.
  Task* c = make_task({out(buf_, 30)});
  auto deps = deps_of(c);
  EXPECT_EQ(deps.size(), 2u);
  EXPECT_NE(std::find(deps.begin(), deps.end(), a), deps.end());
  EXPECT_NE(std::find(deps.begin(), deps.end(), b), deps.end());
}

// --- Two-level index: exact-interval hits, split coherence, prune/reset ----

// Re-submitting an identical region: the first registration stages in the
// append log (neither counter), the second folds the log and walks the tree
// (fallback), every later one is an O(1) exact hit — with identical deps.
TEST_F(TrackerFixture, ExactIndexServesResubmittedRegion) {
  Task* w0 = make_task({out(buf_, 100)});
  deps_of(w0);
  EXPECT_EQ(tracker_.stats().exact_hits, 0u);
  EXPECT_EQ(tracker_.stats().tree_fallbacks, 0u);

  Task* w1 = make_task({out(buf_, 100)});
  const auto d1 = deps_of(w1);
  ASSERT_EQ(d1.size(), 1u);
  EXPECT_EQ(d1[0], w0);
  EXPECT_EQ(tracker_.stats().exact_hits, 0u);
  EXPECT_EQ(tracker_.stats().tree_fallbacks, 1u);

  Task* w2 = make_task({out(buf_, 100)});
  const auto d2 = deps_of(w2);
  ASSERT_EQ(d2.size(), 1u);
  EXPECT_EQ(d2[0], w1);
  EXPECT_EQ(tracker_.stats().exact_hits, 1u);
  EXPECT_EQ(tracker_.stats().tree_fallbacks, 1u);
}

// Splitting an indexed segment must drop its (begin,len) entry: a later
// access with the ORIGINAL extent may not shortcut to the dead node.
TEST_F(TrackerFixture, SplitInvalidatesExactEntry) {
  Task* a = make_task({out(buf_, 100)});      // [0,100)
  deps_of(a);
  Task* a2 = make_task({out(buf_, 100)});     // folds + indexes (0,100)
  deps_of(a2);
  Task* b = make_task({out(buf_ + 50, 100)}); // [50,150): splits (0,100)
  deps_of(b);
  // [0,100) no longer exists as one segment; the registration must fall
  // back, cover [0,50) (writer a2) and [50,100) (writer b), and dep on both.
  Task* c = make_task({out(buf_, 100)});
  const auto deps = deps_of(c);
  EXPECT_EQ(deps.size(), 2u);
  EXPECT_NE(std::find(deps.begin(), deps.end(), a2), deps.end());
  EXPECT_NE(std::find(deps.begin(), deps.end(), b), deps.end());
  // The split halves were re-indexed under their own keys: re-touching the
  // left half exactly is a hit on the coherent entry.
  const auto hits_before = tracker_.stats().exact_hits;
  Task* r = make_task({in(static_cast<const float*>(buf_), 50)});
  const auto rdeps = deps_of(r);
  ASSERT_EQ(rdeps.size(), 1u);
  EXPECT_EQ(rdeps[0], c);
  EXPECT_GT(tracker_.stats().exact_hits, hits_before);
}

// prune_finished must erase index entries along with their segments: a
// fresh registration of the pruned region reports no (stale) dependence.
TEST_F(TrackerFixture, PruneErasesIndexEntries) {
  Task* w = make_task({out(buf_, 100)});
  deps_of(w);
  Task* w2 = make_task({out(buf_, 100)});  // fold + index; slot holds w2
  deps_of(w2);
  w2->state.store(TaskState::Finished, std::memory_order_release);
  EXPECT_EQ(tracker_.prune_finished(), 0u);
  EXPECT_EQ(tracker_.stats().prune_scans, 1u);
  EXPECT_EQ(tracker_.segment_count(), 0u);
  // Pruned: the region is fresh again — no dependence, no dangling hit.
  Task* r = make_task({in(static_cast<const float*>(buf_), 100)});
  EXPECT_TRUE(deps_of(r).empty());
}

// Barrier reset keeps the geometry but releases the slots: the next wave's
// identical region is an exact hit that carries NO dependence.
TEST_F(TrackerFixture, ResetRetainsGeometryWithoutDeps) {
  Task* w = make_task({out(buf_, 100)});
  deps_of(w);
  tracker_.reset_task_refs();
  EXPECT_EQ(tracker_.segment_count(), 1u);
  const auto hits_before = tracker_.stats().exact_hits;
  Task* r = make_task({in(static_cast<const float*>(buf_), 100)});
  EXPECT_TRUE(deps_of(r).empty());
  EXPECT_GT(tracker_.stats().exact_hits, hits_before);
  // And the retained segment works as a live slot again: a writer after the
  // reader picks up the WAR edge through the same retained segment.
  Task* w2 = make_task({out(buf_, 100)});
  const auto deps = deps_of(w2);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0], r);
}

// A partial overlap with an exactly-indexed segment must NOT hit: the probe
// key includes the length, so [0,50) against an indexed (0,100) falls back.
TEST_F(TrackerFixture, PartialOverlapBypassesExactIndex) {
  Task* w = make_task({out(buf_, 100)});
  deps_of(w);
  Task* w2 = make_task({out(buf_, 100)});  // index (0,100)
  deps_of(w2);
  const auto hits_before = tracker_.stats().exact_hits;
  Task* r = make_task({in(static_cast<const float*>(buf_), 50)});  // prefix only
  const auto deps = deps_of(r);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0], w2);
  EXPECT_EQ(tracker_.stats().exact_hits, hits_before);
}

// ---------------------------------------------------------------------------
// Property test: for random access sequences, every conflicting pair (i, j)
// (overlapping ranges, at least one writer) must be ordered by the reported
// dependence graph, possibly transitively.
// ---------------------------------------------------------------------------

class TrackerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrackerPropertyTest, ConflictingPairsAreOrdered) {
  const std::uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  auto rnd = [&](std::uint64_t bound) { return rng() % bound; };

  constexpr std::size_t kTasks = 60;
  static float arena[512];

  DependencyTracker tracker;
  std::vector<std::unique_ptr<Task>> tasks;
  std::vector<std::vector<std::size_t>> succ(kTasks);

  for (std::size_t i = 0; i < kTasks; ++i) {
    auto t = std::make_unique<Task>();
    t->id = i;
    const std::size_t naccesses = 1 + rnd(3);
    for (std::size_t a = 0; a < naccesses; ++a) {
      const std::size_t start = rnd(480);
      const std::size_t len = 1 + rnd(32);
      const auto mode = static_cast<AccessMode>(rnd(3));
      t->accesses.push_back(
          {arena + start, len * sizeof(float), mode, ElemType::F32});
    }
    std::vector<Task*> deps;
    tracker.register_task(*t, deps);
    for (Task* d : deps) succ[d->id].push_back(i);
    tasks.push_back(std::move(t));
  }

  // Reachability via DFS from each node (small graph).
  std::vector<std::vector<bool>> reach(kTasks, std::vector<bool>(kTasks, false));
  for (std::size_t i = kTasks; i-- > 0;) {
    for (std::size_t s : succ[i]) {
      reach[i][s] = true;
      for (std::size_t k = 0; k < kTasks; ++k) {
        if (reach[s][k]) reach[i][k] = true;
      }
    }
  }

  auto conflicts = [&](const Task& x, const Task& y) {
    for (const auto& ax : x.accesses) {
      for (const auto& ay : y.accesses) {
        const bool overlap = ax.begin() < ay.end() && ay.begin() < ax.end();
        if (overlap && (ax.is_output() || ay.is_output())) return true;
      }
    }
    return false;
  };

  for (std::size_t i = 0; i < kTasks; ++i) {
    for (std::size_t j = i + 1; j < kTasks; ++j) {
      if (conflicts(*tasks[i], *tasks[j])) {
        EXPECT_TRUE(reach[i][j]) << "conflicting tasks " << i << " -> " << j
                                 << " not ordered (seed " << seed << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, TrackerPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 12));

// Exact-heavy variant: block-aligned regions drawn from a small set, with
// occasional straddling ranges and barrier resets mixed in. Most
// registrations are exact-index hits, the straddlers force splits that must
// invalidate entries, and the resets exercise retained geometry — if either
// level of the index goes stale, some conflicting pair loses its ordering.
class ExactHeavyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactHeavyPropertyTest, BlockAlignedConflictsStayOrdered) {
  const std::uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  auto rnd = [&](std::uint64_t bound) { return rng() % bound; };

  constexpr std::size_t kBlocks = 8;
  constexpr std::size_t kBlockFloats = 32;
  constexpr std::size_t kTasks = 200;
  static float arena[kBlocks * kBlockFloats];

  DependencyTracker tracker;
  std::vector<std::unique_ptr<Task>> tasks;
  std::vector<std::vector<std::size_t>> succ(kTasks);
  // Conflicts are only required to be ordered when no reset intervened
  // (a reset models a barrier: everything before it is finished).
  std::vector<std::size_t> epoch_of(kTasks, 0);
  std::size_t epoch = 0;

  for (std::size_t i = 0; i < kTasks; ++i) {
    if (i > 0 && rnd(40) == 0) {
      tracker.reset_task_refs();
      ++epoch;
    }
    auto t = std::make_unique<Task>();
    t->id = i;
    epoch_of[i] = epoch;
    const std::size_t naccesses = 1 + rnd(2);
    for (std::size_t a = 0; a < naccesses; ++a) {
      const auto mode = static_cast<AccessMode>(rnd(3));
      if (rnd(8) == 0) {
        // Straddler: spans a block boundary, forcing splits.
        const std::size_t start = kBlockFloats / 2 + rnd(kBlocks - 1) * kBlockFloats;
        t->accesses.push_back(
            {arena + start, kBlockFloats * sizeof(float), mode, ElemType::F32});
      } else {
        const std::size_t b = rnd(kBlocks);
        t->accesses.push_back({arena + b * kBlockFloats,
                               kBlockFloats * sizeof(float), mode, ElemType::F32});
      }
    }
    std::vector<Task*> deps;
    tracker.register_task(*t, deps);
    for (Task* d : deps) succ[d->id].push_back(i);
    tasks.push_back(std::move(t));
  }
  // The straddlers progressively split every block, so late traffic
  // legitimately walks the tree; the exact table must still have carried
  // hits while blocks were whole (clean iterative patterns assert full
  // dominance in test_retirement / the app harnesses).
  EXPECT_GT(tracker.stats().exact_hits, 0u) << "seed " << seed;

  std::vector<std::vector<bool>> reach(kTasks, std::vector<bool>(kTasks, false));
  for (std::size_t i = kTasks; i-- > 0;) {
    for (std::size_t s : succ[i]) {
      reach[i][s] = true;
      for (std::size_t k = 0; k < kTasks; ++k) {
        if (reach[s][k]) reach[i][k] = true;
      }
    }
  }

  auto conflicts = [&](const Task& x, const Task& y) {
    for (const auto& ax : x.accesses) {
      for (const auto& ay : y.accesses) {
        const bool overlap = ax.begin() < ay.end() && ay.begin() < ax.end();
        if (overlap && (ax.is_output() || ay.is_output())) return true;
      }
    }
    return false;
  };

  for (std::size_t i = 0; i < kTasks; ++i) {
    for (std::size_t j = i + 1; j < kTasks; ++j) {
      if (epoch_of[i] == epoch_of[j] && conflicts(*tasks[i], *tasks[j])) {
        EXPECT_TRUE(reach[i][j]) << "conflicting tasks " << i << " -> " << j
                                 << " not ordered (seed " << seed << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomBlockPrograms, ExactHeavyPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace atm::rt

// Tests for the interval-splitting dependence tracker: OmpSs semantics
// (RAW, WAR, WAW), partial-overlap splitting, and a randomized property
// test checking that every conflicting pair of tasks is ordered by the
// reported dependence graph (possibly transitively).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <vector>

#include "runtime/dependency_tracker.hpp"

namespace atm::rt {
namespace {

class TrackerFixture : public ::testing::Test {
 protected:
  Task* make_task(std::vector<DataAccess> accesses) {
    auto t = std::make_unique<Task>();
    t->id = next_id_++;
    t->accesses = std::move(accesses);
    tasks_.push_back(std::move(t));
    return tasks_.back().get();
  }

  std::vector<Task*> deps_of(Task* t) {
    std::vector<Task*> deps;
    tracker_.register_task(*t, deps);
    return deps;
  }

  DependencyTracker tracker_;
  std::vector<std::unique_ptr<Task>> tasks_;
  TaskId next_id_ = 0;
  float buf_[1024] = {};
};

TEST_F(TrackerFixture, ReadAfterWrite) {
  Task* w = make_task({out(buf_, 100)});
  EXPECT_TRUE(deps_of(w).empty());
  Task* r = make_task({in(static_cast<const float*>(buf_), 100)});
  const auto deps = deps_of(r);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0], w);
}

TEST_F(TrackerFixture, WriteAfterRead) {
  Task* w0 = make_task({out(buf_, 100)});
  deps_of(w0);
  Task* r = make_task({in(static_cast<const float*>(buf_), 100)});
  deps_of(r);
  Task* w1 = make_task({out(buf_, 100)});
  const auto deps = deps_of(w1);
  // WAR on the reader and WAW on the previous writer.
  EXPECT_NE(std::find(deps.begin(), deps.end(), r), deps.end());
  EXPECT_NE(std::find(deps.begin(), deps.end(), w0), deps.end());
}

TEST_F(TrackerFixture, WriteAfterWrite) {
  Task* w0 = make_task({out(buf_, 100)});
  deps_of(w0);
  Task* w1 = make_task({out(buf_, 100)});
  const auto deps = deps_of(w1);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0], w0);
}

TEST_F(TrackerFixture, ReadersDoNotDependOnEachOther) {
  Task* w = make_task({out(buf_, 100)});
  deps_of(w);
  Task* r1 = make_task({in(static_cast<const float*>(buf_), 100)});
  Task* r2 = make_task({in(static_cast<const float*>(buf_), 100)});
  const auto d1 = deps_of(r1);
  const auto d2 = deps_of(r2);
  EXPECT_EQ(d1, std::vector<Task*>{w});
  EXPECT_EQ(d2, std::vector<Task*>{w});  // not on r1
}

TEST_F(TrackerFixture, DisjointRangesIndependent) {
  Task* a = make_task({out(buf_, 100)});
  deps_of(a);
  Task* b = make_task({out(buf_ + 100, 100)});
  EXPECT_TRUE(deps_of(b).empty());
}

TEST_F(TrackerFixture, PartialOverlapSplits) {
  Task* a = make_task({out(buf_, 100)});       // [0, 100)
  deps_of(a);
  Task* b = make_task({out(buf_ + 50, 100)});  // [50, 150): overlaps tail
  const auto deps = deps_of(b);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0], a);
  // A reader of the untouched prefix [0, 50) still depends on a only.
  Task* r = make_task({in(static_cast<const float*>(buf_), 50)});
  const auto rdeps = deps_of(r);
  ASSERT_EQ(rdeps.size(), 1u);
  EXPECT_EQ(rdeps[0], a);
  // A reader of [50, 100) depends on the newest writer b.
  Task* r2 = make_task({in(static_cast<const float*>(buf_) + 50, 50)});
  const auto r2deps = deps_of(r2);
  ASSERT_EQ(r2deps.size(), 1u);
  EXPECT_EQ(r2deps[0], b);
}

TEST_F(TrackerFixture, InOutActsAsBoth) {
  Task* w = make_task({out(buf_, 100)});
  deps_of(w);
  Task* io = make_task({inout(buf_, 100)});
  const auto deps = deps_of(io);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0], w);
  // A subsequent reader sees io as the last writer.
  Task* r = make_task({in(static_cast<const float*>(buf_), 100)});
  const auto rdeps = deps_of(r);
  ASSERT_EQ(rdeps.size(), 1u);
  EXPECT_EQ(rdeps[0], io);
}

TEST_F(TrackerFixture, SelfDependenciesSkipped) {
  Task* t = make_task({in(static_cast<const float*>(buf_), 100), out(buf_, 100)});
  EXPECT_TRUE(deps_of(t).empty());
}

TEST_F(TrackerFixture, NoDuplicateDeps) {
  Task* w = make_task({out(buf_, 100)});
  deps_of(w);
  // Reader touches two sub-ranges of w's segment: dep reported once.
  Task* r = make_task({in(static_cast<const float*>(buf_), 30),
                       in(static_cast<const float*>(buf_) + 40, 30)});
  EXPECT_EQ(deps_of(r).size(), 1u);
}

TEST_F(TrackerFixture, EmptyRangeIgnored) {
  Task* t = make_task({out(buf_, 0)});
  EXPECT_TRUE(deps_of(t).empty());
  EXPECT_EQ(tracker_.segment_count(), 0u);
}

TEST_F(TrackerFixture, ClearForgetsHistory) {
  Task* w = make_task({out(buf_, 100)});
  deps_of(w);
  tracker_.clear();
  Task* r = make_task({in(static_cast<const float*>(buf_), 100)});
  EXPECT_TRUE(deps_of(r).empty());
}

TEST_F(TrackerFixture, GapAndOverlapMix) {
  Task* a = make_task({out(buf_, 10)});         // [0,10)
  Task* b = make_task({out(buf_ + 20, 10)});    // [20,30)
  deps_of(a);
  deps_of(b);
  // c spans [0,30): depends on both, gap [10,20) is fresh.
  Task* c = make_task({out(buf_, 30)});
  auto deps = deps_of(c);
  EXPECT_EQ(deps.size(), 2u);
  EXPECT_NE(std::find(deps.begin(), deps.end(), a), deps.end());
  EXPECT_NE(std::find(deps.begin(), deps.end(), b), deps.end());
}

// ---------------------------------------------------------------------------
// Property test: for random access sequences, every conflicting pair (i, j)
// (overlapping ranges, at least one writer) must be ordered by the reported
// dependence graph, possibly transitively.
// ---------------------------------------------------------------------------

class TrackerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrackerPropertyTest, ConflictingPairsAreOrdered) {
  const std::uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  auto rnd = [&](std::uint64_t bound) { return rng() % bound; };

  constexpr std::size_t kTasks = 60;
  static float arena[512];

  DependencyTracker tracker;
  std::vector<std::unique_ptr<Task>> tasks;
  std::vector<std::vector<std::size_t>> succ(kTasks);

  for (std::size_t i = 0; i < kTasks; ++i) {
    auto t = std::make_unique<Task>();
    t->id = i;
    const std::size_t naccesses = 1 + rnd(3);
    for (std::size_t a = 0; a < naccesses; ++a) {
      const std::size_t start = rnd(480);
      const std::size_t len = 1 + rnd(32);
      const auto mode = static_cast<AccessMode>(rnd(3));
      t->accesses.push_back(
          {arena + start, len * sizeof(float), mode, ElemType::F32});
    }
    std::vector<Task*> deps;
    tracker.register_task(*t, deps);
    for (Task* d : deps) succ[d->id].push_back(i);
    tasks.push_back(std::move(t));
  }

  // Reachability via DFS from each node (small graph).
  std::vector<std::vector<bool>> reach(kTasks, std::vector<bool>(kTasks, false));
  for (std::size_t i = kTasks; i-- > 0;) {
    for (std::size_t s : succ[i]) {
      reach[i][s] = true;
      for (std::size_t k = 0; k < kTasks; ++k) {
        if (reach[s][k]) reach[i][k] = true;
      }
    }
  }

  auto conflicts = [&](const Task& x, const Task& y) {
    for (const auto& ax : x.accesses) {
      for (const auto& ay : y.accesses) {
        const bool overlap = ax.begin() < ay.end() && ay.begin() < ax.end();
        if (overlap && (ax.is_output() || ay.is_output())) return true;
      }
    }
    return false;
  };

  for (std::size_t i = 0; i < kTasks; ++i) {
    for (std::size_t j = i + 1; j < kTasks; ++j) {
      if (conflicts(*tasks[i], *tasks[j])) {
        EXPECT_TRUE(reach[i][j]) << "conflicting tasks " << i << " -> " << j
                                 << " not ordered (seed " << seed << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, TrackerPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace atm::rt

// MUST NOT COMPILE under -Werror=thread-safety: acquires a capability on
// one path and returns without releasing it on another. The compile_fail
// CMake harness inverts the build result — this file failing to build is
// the test passing.
#include "common/mutex.hpp"

namespace {

atm::Mutex g_mutex;
int g_value ATM_GUARDED_BY(g_mutex) = 0;

int take_and_maybe_leak(bool leak) {
  g_mutex.lock();
  const int v = g_value;
  if (leak) {
    return v;  // BUG: returns with g_mutex still held
  }
  g_mutex.unlock();
  return v;
}

}  // namespace

int compile_fail_missing_release() { return take_and_maybe_leak(false); }

// MUST NOT COMPILE under -Werror=thread-safety: reads and writes a
// GUARDED_BY member without holding its mutex. The compile_fail CMake
// harness inverts the build result — this file failing to build is the
// test passing.
#include "common/mutex.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    balance_ += amount;  // BUG: mutex_ not held
  }

  int balance() const {
    return balance_;  // BUG: mutex_ not held
  }

 private:
  mutable atm::Mutex mutex_;
  int balance_ ATM_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int compile_fail_guarded_by_violation() {
  Account a;
  a.deposit(1);
  return a.balance();
}

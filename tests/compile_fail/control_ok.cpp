// Control case: the same wrappers used correctly MUST compile under
// -Werror=thread-safety, proving the sibling compile-fail cases break
// because of their violations, not because of flag or include breakage.
#include "common/mutex.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    atm::MutexLock lock(mutex_);
    balance_ += amount;
  }

  int balance() const {
    atm::MutexLock lock(mutex_);
    return balance_;
  }

 private:
  mutable atm::Mutex mutex_;
  int balance_ ATM_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int compile_fail_control_case() {
  Account a;
  a.deposit(1);
  return a.balance();
}

// End-to-end tests of the ATM engine attached to the runtime: exact
// memoization (Static), in-flight deferral (IKT), the Dynamic training
// phase with tau-gated p doubling and output blacklisting, FixedP oracle
// behaviour, and statistics/memory accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "atm_lib.hpp"

namespace atm {
namespace {

using rt::Runtime;
using rt::RuntimeConfig;
using rt::TaskTypeDesc;

TEST(Engine, StaticMemoizesExactTwin) {
  AtmEngine engine({.mode = AtmMode::Static});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "square", .memoizable = true, .atm = {}});

  std::vector<double> input{1.0, 2.0, 3.0};
  std::vector<double> out1(3), out2(3);
  std::atomic<int> executions{0};

  auto body = [&](std::vector<double>& out) {
    return [&input, &out, &executions] {
      executions.fetch_add(1);
      for (std::size_t i = 0; i < input.size(); ++i) out[i] = input[i] * input[i];
    };
  };
  runtime.submit(type, body(out1), {rt::in(input.data(), 3), rt::out(out1.data(), 3)});
  runtime.taskwait();
  runtime.submit(type, body(out2), {rt::in(input.data(), 3), rt::out(out2.data(), 3)});
  runtime.taskwait();

  EXPECT_EQ(executions.load(), 1);  // the twin was served from the THT
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(runtime.counters().memoized, 1u);
  EXPECT_EQ(engine.stats().tht_hits, 1u);
  ASSERT_EQ(engine.stats().reuse_creators.size(), 1u);
  EXPECT_EQ(engine.stats().reuse_creators[0], 0u);  // created by task id 0
}

TEST(Engine, StaticDistinguishesDifferentInputs) {
  AtmEngine engine({.mode = AtmMode::Static});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "copy", .memoizable = true, .atm = {}});

  double in1 = 5.0, in2 = 6.0, out1 = 0, out2 = 0;
  runtime.submit(type, [&] { out1 = in1; },
                 {rt::in(&in1, 1), rt::out(&out1, 1)});
  runtime.taskwait();
  runtime.submit(type, [&] { out2 = in2; },
                 {rt::in(&in2, 1), rt::out(&out2, 1)});
  runtime.taskwait();
  EXPECT_EQ(out1, 5.0);
  EXPECT_EQ(out2, 6.0);
  EXPECT_EQ(runtime.counters().memoized, 0u);
}

TEST(Engine, OffModeNeverInterferes) {
  AtmEngine engine({.mode = AtmMode::Off});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = true, .atm = {}});
  double in = 1.0, out = 0;
  std::atomic<int> executions{0};
  for (int i = 0; i < 3; ++i) {
    runtime.submit(type, [&] { executions.fetch_add(1); out = in; },
                   {rt::in(&in, 1), rt::out(&out, 1)});
    runtime.taskwait();
  }
  EXPECT_EQ(executions.load(), 3);
  EXPECT_EQ(engine.stats().keys_computed, 0u);
}

TEST(Engine, NonMemoizableTypeBypassed) {
  AtmEngine engine({.mode = AtmMode::Static});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = false, .atm = {}});
  double in = 1.0, out = 0;
  std::atomic<int> executions{0};
  for (int i = 0; i < 2; ++i) {
    runtime.submit(type, [&] { executions.fetch_add(1); out = in; },
                   {rt::in(&in, 1), rt::out(&out, 1)});
    runtime.taskwait();
  }
  EXPECT_EQ(executions.load(), 2);
  EXPECT_EQ(engine.stats().keys_computed, 0u);
}

TEST(Engine, IktDefersOntoInFlightTwin) {
  AtmEngine engine({.mode = AtmMode::Static, .use_ikt = true});
  Runtime runtime({.num_threads = 2});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "slow", .memoizable = true, .atm = {}});

  std::vector<double> input{4.0};
  double out1 = 0, out2 = 0;
  std::atomic<int> executions{0};
  auto slow_body = [&](double* out) {
    return [&input, out, &executions] {
      executions.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      *out = input[0] * 10.0;
    };
  };
  // Both submitted back to back: the second finds the first in flight.
  runtime.submit(type, slow_body(&out1), {rt::in(input.data(), 1), rt::out(&out1, 1)});
  runtime.submit(type, slow_body(&out2), {rt::in(input.data(), 1), rt::out(&out2, 1)});
  runtime.taskwait();

  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(out1, 40.0);
  EXPECT_EQ(out2, 40.0);
  EXPECT_EQ(runtime.counters().deferred, 1u);
  EXPECT_EQ(engine.stats().ikt_hits, 1u);
}

TEST(Engine, IktDisabledExecutesTwinsConcurrently) {
  AtmEngine engine({.mode = AtmMode::Static, .use_ikt = false});
  Runtime runtime({.num_threads = 2});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "slow", .memoizable = true, .atm = {}});
  std::vector<double> input{4.0};
  double out1 = 0, out2 = 0;
  std::atomic<int> executions{0};
  auto body = [&](double* out) {
    return [&input, out, &executions] {
      executions.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      *out = input[0];
    };
  };
  runtime.submit(type, body(&out1), {rt::in(input.data(), 1), rt::out(&out1, 1)});
  runtime.submit(type, body(&out2), {rt::in(input.data(), 1), rt::out(&out2, 1)});
  runtime.taskwait();
  EXPECT_EQ(executions.load(), 2);  // redundant execution, but correct
  EXPECT_EQ(out1, out2);
}

TEST(Engine, DynamicTrainsThenMemoizes) {
  AtmEngine engine({.mode = AtmMode::Dynamic});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = true, .atm = {.l_training = 1, .tau_max = 0.01}});

  std::vector<double> input{2.0, 3.0};
  std::vector<double> outs(4, 0.0);
  std::atomic<int> executions{0};
  auto submit_one = [&](int i) {
    double* out = &outs[i];
    runtime.submit(type,
                   [&input, out, &executions] {
                     executions.fetch_add(1);
                     *out = input[0] + input[1];
                   },
                   {rt::in(input.data(), 2), rt::out(out, 1)});
    runtime.taskwait();
  };
  submit_one(0);  // miss, executes, inserts
  EXPECT_EQ(engine.phase(*type), TrainingPhase::Training);
  submit_one(1);  // training hit: executes, verifies, streak -> steady
  EXPECT_EQ(executions.load(), 2);
  EXPECT_EQ(engine.phase(*type), TrainingPhase::Steady);
  submit_one(2);  // steady hit: memoized
  EXPECT_EQ(executions.load(), 2);
  EXPECT_EQ(outs[2], 5.0);
  EXPECT_EQ(engine.stats().training_hits, 1u);
  EXPECT_EQ(engine.stats().tht_hits, 1u);
  EXPECT_DOUBLE_EQ(engine.current_p(*type), kMinP);  // never had to grow
}

TEST(Engine, DynamicFailureDoublesPAndBlacklists) {
  AtmEngine engine({.mode = AtmMode::Dynamic, .type_aware = true});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "chaotic", .memoizable = true, .atm = {.l_training = 100, .tau_max = 0.01}});

  // Two inputs that differ only in low-order mantissa bytes: at p = 2^-15
  // (1 sampled byte, the MSB) their keys collide, but the task output
  // amplifies the difference -> tau >> tau_max.
  std::vector<double> in_a(8, 1.0);
  std::vector<double> in_b(8, 1.0);
  in_b[7] = 1.0 + 1e-13;
  double out_a = 0, out_b = 0;

  runtime.submit(type, [&] { out_a = (in_a[7] - 1.0) * 1e15; },
                 {rt::in(in_a.data(), 8), rt::out(&out_a, 1)});
  runtime.taskwait();
  runtime.submit(type, [&] { out_b = (in_b[7] - 1.0) * 1e15; },
                 {rt::in(in_b.data(), 8), rt::out(&out_b, 1)});
  runtime.taskwait();

  EXPECT_EQ(engine.stats().training_hits, 1u);
  EXPECT_EQ(engine.stats().training_failures, 1u);
  EXPECT_DOUBLE_EQ(engine.current_p(*type), 2 * kMinP);
  EXPECT_EQ(engine.blacklist_size(*type), 1u);

  // The blacklisted output pointer is never memoized again.
  runtime.submit(type, [&] { out_b = 7.0; },
                 {rt::in(in_b.data(), 8), rt::out(&out_b, 1)});
  runtime.taskwait();
  EXPECT_GE(engine.stats().blacklist_skips, 1u);
  EXPECT_EQ(out_b, 7.0);
}

TEST(Engine, FixedPUsesConstantPImmediately) {
  AtmEngine engine({.mode = AtmMode::FixedP, .fixed_p = 0.25});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = true, .atm = {}});
  std::vector<double> input{1.0, 2.0, 3.0, 4.0};
  double out1 = 0, out2 = 0;
  std::atomic<int> executions{0};
  auto body = [&](double* o) {
    return [&input, o, &executions] {
      executions.fetch_add(1);
      *o = input[0];
    };
  };
  runtime.submit(type, body(&out1), {rt::in(input.data(), 4), rt::out(&out1, 1)});
  runtime.taskwait();
  runtime.submit(type, body(&out2), {rt::in(input.data(), 4), rt::out(&out2, 1)});
  runtime.taskwait();
  EXPECT_EQ(executions.load(), 1);  // no training phase: hit right away
  EXPECT_EQ(engine.phase(*type), TrainingPhase::Steady);
  EXPECT_DOUBLE_EQ(engine.current_p(*type), 0.25);
}

TEST(Engine, ThtPersistsAcrossTaskwait) {
  // The paper's iterative apps rely on reuse across barriers.
  AtmEngine engine({.mode = AtmMode::Static});
  Runtime runtime({.num_threads = 2});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = true, .atm = {}});
  std::vector<float> input(256, 1.5f);
  std::vector<float> out(256);
  std::atomic<int> executions{0};
  for (int round = 0; round < 5; ++round) {
    runtime.submit(type,
                   [&] {
                     executions.fetch_add(1);
                     for (std::size_t i = 0; i < input.size(); ++i) out[i] = 2 * input[i];
                   },
                   {rt::in(input.data(), input.size()), rt::out(out.data(), out.size())});
    runtime.taskwait();
  }
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(runtime.counters().memoized, 4u);
}

TEST(Engine, MemoryAccountingIncludesAllStructures) {
  AtmEngine engine({.mode = AtmMode::Static, .arena_reserve_bytes = 0});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = true, .atm = {}});
  const std::size_t before = engine.memory_bytes();
  std::vector<float> input(1024, 1.0f);
  std::vector<float> out(1024);
  runtime.submit(type,
                 [&] {
                   for (std::size_t i = 0; i < out.size(); ++i) out[i] = input[i];
                 },
                 {rt::in(input.data(), 1024), rt::out(out.data(), 1024)});
  runtime.taskwait();
  EXPECT_GE(engine.memory_bytes(), before + 4096);  // snapshot + sampler order
}

TEST(Engine, StatsResetClearsCounters) {
  AtmEngine engine({.mode = AtmMode::Static});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = true, .atm = {}});
  double in = 1, out = 0;
  runtime.submit(type, [&] { out = in; }, {rt::in(&in, 1), rt::out(&out, 1)});
  runtime.taskwait();
  EXPECT_GT(engine.stats().keys_computed, 0u);
  engine.reset_stats();
  EXPECT_EQ(engine.stats().keys_computed, 0u);
  EXPECT_TRUE(engine.stats().reuse_creators.empty());
}

}  // namespace
}  // namespace atm
